# Developer and CI entry points. `make ci` is exactly what the GitHub
# workflow runs; `make bench` and `make bench-core` track the perf
# trajectory in BENCH_conn.json / BENCH_core.json.

GO ?= go

.PHONY: build fmt vet test short race chaos cover bench bench-core bench-depth bench-server bench-shard bench-store bench-dblp bench-obs bench-smoke fuzz serve docs-check ci

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt required on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Full suite, including the slow experiment reproductions and torture tests.
test:
	$(GO) test ./...

# The fast path CI runs on every push (< ~2 minutes).
short:
	$(GO) test -short ./...

# Race detector over the concurrency-bearing packages (the statistical
# conformance harness exercises server+shard+conn together, so it rides
# in this gate too).
race:
	$(GO) test -race -short ./internal/worldstore ./internal/conn ./internal/sampler ./internal/core ./internal/server ./internal/shard ./internal/stattest ./internal/faultinject ./internal/obs

# Seeded chaos suite under the race detector: fault-injection proxies
# (internal/faultinject) kill, delay and corrupt the coordinator-worker
# path while the suite asserts every query either fails loudly or
# answers bit-identically to a fault-free run. Each run logs its seed;
# replay any failure exactly with CHAOS_SEED=<seed> make chaos.
chaos:
	$(GO) test -race -v -count=1 ./internal/faultinject
	$(GO) test -race -v -count=1 ./internal/shard -run 'TestChaos|TestBreaker|TestFlapQuarantine|TestCorruptFrame|TestAudit|TestWorkerDrain'
	$(GO) test -race -v -count=1 ./internal/stattest -run 'TestAdaptiveSurvives|TestAdaptiveAllWorkersDead|TestDrainCompletes'

# Coverage floor on the packages the adaptive path runs through. Fails
# if either package's total statement coverage drops below $(COVER_MIN)%.
COVER_MIN ?= 70
cover:
	@for pkg in ./internal/conn ./internal/server; do \
		$(GO) test -short -coverprofile=cover.out $$pkg >/dev/null || exit 1; \
		pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "$$pkg coverage: $$pct% (floor $(COVER_MIN)%)"; \
		awk -v p="$$pct" -v min="$(COVER_MIN)" 'BEGIN { exit !(p+0 < min+0) }' && \
			{ echo "FAIL: $$pkg below $(COVER_MIN)% statement coverage"; rm -f cover.out; exit 1; } || true; \
	done
	@rm -f cover.out

# Run the query daemon on a built-in dataset (see docs/SERVER.md).
serve:
	$(GO) run ./cmd/ucserve -synthetic collins

# Documentation gate: no broken relative links, and the runnable examples
# still print exactly what their pinned output says.
docs-check:
	$(GO) run ./cmd/docscheck
	$(GO) test ./examples/...

# Estimator-level benchmarks -> BENCH_conn.json so later changes can
# compare runs.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' . | tee bench.out
	$(GO) run ./cmd/benchjson -suite conn < bench.out > BENCH_conn.json
	@rm -f bench.out
	@echo "wrote BENCH_conn.json"

# Algorithm-level benchmarks (MCP/ACP end to end, batched vs serial
# candidate scoring) -> BENCH_core.json.
bench-core:
	$(GO) test -bench='EndToEnd|FromCenters|MinPartial' -benchmem -run='^$$' ./internal/core | tee bench-core.out
	$(GO) run ./cmd/benchjson -suite core < bench-core.out > BENCH_core.json
	@rm -f bench-core.out
	@echo "wrote BENCH_core.json"

# Depth-limited scoring benchmarks (alpha=64, depth=2: the batched
# edge-bitmap engine vs the per-center BFS loop), merged into
# BENCH_core.json without disturbing the rest of the core suite.
bench-depth:
	$(GO) test -bench='FromCentersDepth2|MinPartialDepth2' -benchmem -run='^$$' ./internal/core | tee bench-depth.out
	$(GO) run ./cmd/benchjson -suite core -update BENCH_core.json < bench-depth.out
	@rm -f bench-depth.out
	@echo "merged depth suite into BENCH_core.json"

# Compile-and-run-once smoke over every benchmark, so bench code cannot
# rot between recorded runs. -benchtime=1x keeps it to seconds.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -short ./...

# Sharding benchmarks (coordinator scatter/gather over loopback workers
# vs in-process execution) -> BENCH_shard.json, merged in place so partial
# reruns keep the rest of the suite.
bench-shard:
	$(GO) test -bench='Scatter' -benchmem -run='^$$' ./internal/shard | tee bench-shard.out
	$(GO) run ./cmd/benchjson -suite shard -update BENCH_shard.json < bench-shard.out
	@rm -f bench-shard.out
	@echo "merged scatter suite into BENCH_shard.json"

# Tracing-overhead benchmark: the warm 4-worker scatter with a live
# trace per query (span tree + wire trace sections) next to the
# untraced ScatterWorkers/workers=4 baseline, merged into
# BENCH_shard.json. The acceptance bar is <5% overhead.
bench-obs:
	$(GO) test -bench='ScatterWorkers' -benchmem -run='^$$' ./internal/shard | tee bench-obs.out
	$(GO) run ./cmd/benchjson -suite shard -update BENCH_shard.json < bench-obs.out
	@rm -f bench-obs.out
	@echo "merged tracing-overhead suite into BENCH_shard.json"

# Storage-tier benchmarks (cold vs spilled-warm vs recompute block
# materialization, bit-sliced vs flat accumulate kernels) ->
# BENCH_store.json, merged in place.
bench-store:
	$(GO) test -bench='BlockMaterialize' -benchmem -run='^$$' ./internal/worldstore | tee bench-store.out
	$(GO) test -bench='Accum' -benchmem -run='^$$' ./internal/sampler | tee -a bench-store.out
	$(GO) run ./cmd/benchjson -suite store -update BENCH_store.json < bench-store.out
	@rm -f bench-store.out
	@echo "merged store suite into BENCH_store.json"

# Paper-scale smoke: one pass of the full-size DBLP instance (636751
# authors) through the disk-backed store, merged into BENCH_store.json.
# Slow (graph generation alone takes several seconds).
bench-dblp:
	$(GO) test -bench='DBLPPaperScale' -benchmem -run='^$$' -benchtime=1x -timeout=30m ./internal/worldstore | tee bench-dblp.out
	$(GO) run ./cmd/benchjson -suite store -update BENCH_store.json < bench-dblp.out
	@rm -f bench-dblp.out
	@echo "merged paper-scale DBLP into BENCH_store.json"

# Fuzz the shard wire codec beyond the checked-in corpus (the corpus
# itself runs as seeds in every plain `go test`). FUZZTIME extends a run.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/shard -run='^$$' -fuzz=FuzzWireRequest -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/shard -run='^$$' -fuzz=FuzzWireFrame -fuzztime=$(FUZZTIME)

# Daemon-level benchmarks (cold vs warm world store behind /v1/conn) ->
# BENCH_server.json.
bench-server:
	$(GO) test -bench='ConnColdStore|ConnWarmStore|ConnAdaptive' -benchmem -run='^$$' ./internal/server | tee bench-server.out
	$(GO) run ./cmd/benchjson -suite server < bench-server.out > BENCH_server.json
	@rm -f bench-server.out
	@echo "wrote BENCH_server.json"

ci: build fmt vet short race cover bench-smoke docs-check
