# Developer and CI entry points. `make ci` is exactly what the GitHub
# workflow runs; `make bench` tracks the perf trajectory in BENCH_conn.json.

GO ?= go

.PHONY: build fmt vet test short race bench ci

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt required on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Full suite, including the slow experiment reproductions and torture tests.
test:
	$(GO) test ./...

# The fast path CI runs on every push (< ~2 minutes).
short:
	$(GO) test -short ./...

# Race detector over the concurrency-bearing packages.
race:
	$(GO) test -race -short ./internal/conn ./internal/sampler ./internal/core

# Benchmarks -> BENCH_conn.json so later changes can compare runs.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' . | tee bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_conn.json
	@rm -f bench.out
	@echo "wrote BENCH_conn.json"

ci: build fmt vet short race
