package ucgraph

import (
	"testing"
)

// communityTestGraph builds a small two-community graph with mixed edge
// probabilities: enough structure that different worlds differ.
func communityTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(12)
	add := func(u, v NodeID, p float64) {
		t.Helper()
		if err := b.AddEdge(u, v, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := NodeID(0); i < 5; i++ {
		for j := i + 1; j <= 5; j++ {
			add(i, j, 0.6)
		}
	}
	for i := NodeID(6); i < 11; i++ {
		for j := i + 1; j <= 11; j++ {
			add(i, j, 0.45)
		}
	}
	add(5, 6, 0.2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCrossConsumerWorldIdentity is the shared-substrate contract: the
// connection-probability estimator, the k-NN distance sampler and
// representative-world extraction must all observe the SAME world i for
// the same (seed, i), through the shared store — not three private
// resamplings that merely agree in distribution.
func TestCrossConsumerWorldIdentity(t *testing.T) {
	g := communityTestGraph(t)
	const seed = 1234
	const r = 160
	const src = NodeID(2)

	ws := Worlds(g, seed)
	est := NewEstimator(g, seed)
	if est.Store() != ws {
		t.Fatal("estimator answers from a different store than Worlds(g, seed)")
	}

	// Reference per-world connectivity-to-src, straight off the store.
	connected := make([][]bool, r)
	ws.Scan(0, r, func(i int, lab []int32) {
		row := make([]bool, len(lab))
		for u := range lab {
			row[u] = lab[u] == lab[src]
		}
		connected[i] = row
	})

	// 1. The estimator's tallies must equal exact counts over those worlds
	// (not statistically — exactly).
	probs := est.FromCenter(src, Unlimited, r)
	for u := 0; u < g.NumNodes(); u++ {
		cnt := 0
		for i := 0; i < r; i++ {
			if connected[i][u] {
				cnt++
			}
		}
		// Same float expression the estimator uses: count times 1/r.
		if want := float64(cnt) * (1 / float64(r)); probs[u] != want {
			t.Fatalf("estimator node %d: %v != exact store count %v", u, probs[u], want)
		}
	}

	// 2. The k-NN sampler's reachability must match the store's labels
	// world for world: reliability is an exact count over the same stream.
	dd := SampleDistances(g, src, seed, r)
	for u := 0; u < g.NumNodes(); u++ {
		cnt := 0
		for i := 0; i < r; i++ {
			if connected[i][u] {
				cnt++
			}
		}
		// Same float expression Reliability uses: 1 - unreachable/r.
		if want := 1 - float64(r-cnt)/float64(r); dd.Reliability(NodeID(u)) != want {
			t.Fatalf("knn node %d: reliability %v != store count %v",
				u, dd.Reliability(NodeID(u)), want)
		}
	}

	// 3. The sampled representative world must be an actual world of the
	// stream: its edge set must equal the implicit world at the returned
	// index, edge for edge.
	rep, idx, err := SampledRepresentativeWorld(g, seed, r)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx >= r {
		t.Fatalf("representative index %d outside sampled range [0, %d)", idx, r)
	}
	world := ws.World(idx)
	for id := int32(0); id < int32(g.NumEdges()); id++ {
		e := g.EdgeByID(id)
		_, inRep := rep.HasEdge(e.U, e.V)
		if inRep != world.Contains(id) {
			t.Fatalf("representative world edge {%d,%d}: materialized=%v stream=%v",
				e.U, e.V, inRep, world.Contains(id))
		}
	}

	// 4. Pairwise estimates and reliability metrics ride the same stream.
	pair := ConnectionProbability(g, 0, 11, seed, r)
	cnt := 0
	ws.Scan(0, r, func(i int, lab []int32) {
		if lab[0] == lab[11] {
			cnt++
		}
	})
	if want := float64(cnt) / r; pair != want {
		t.Fatalf("ConnectionProbability %v != exact store count %v", pair, want)
	}

	// Growing happened on one store: every consumer above shares it, so
	// the stream length reflects the max request, not the sum.
	if got := ws.Worlds(); got < r {
		t.Fatalf("shared store holds %d worlds, consumers requested %d", got, r)
	}
}

// TestWorldStoreBudgetPublicAPI smoke-tests the public memory-budget knobs:
// a budgeted store must return identical metric values.
func TestWorldStoreBudgetPublicAPI(t *testing.T) {
	g := communityTestGraph(t)
	const seed, r = 7, 300

	cl, _, err := MCP(g, 2, Options{Seed: 3, Schedule: Schedule{Min: 32, Max: 128, Coef: 8}})
	if err != nil {
		t.Fatal(err)
	}
	wantMin := MinProb(g, cl, seed, r)
	wantInner, wantOuter := AVPR(g, cl, seed, r)

	// A second graph value gets its own store; bound it to one block.
	g2, err := FromEdges(g.NumNodes(), g.Edges())
	if err != nil {
		t.Fatal(err)
	}
	ws := Worlds(g2, seed)
	ws.SetBudget(int64(4 * g2.NumNodes() * ws.Stats().BlockWorlds))
	if got := MinProb(g2, cl, seed, r); got != wantMin {
		t.Fatalf("bounded MinProb %v != unbounded %v", got, wantMin)
	}
	gotInner, gotOuter := AVPR(g2, cl, seed, r)
	if gotInner != wantInner || gotOuter != wantOuter {
		t.Fatalf("bounded AVPR (%v, %v) != unbounded (%v, %v)",
			gotInner, gotOuter, wantInner, wantOuter)
	}
	if st := ws.Stats(); st.Evictions == 0 {
		t.Fatalf("budgeted store never evicted: %+v", st)
	}

	// The process-wide default budget knob applies to stores created later.
	SetWorldMemoryBudget(1 << 20)
	defer SetWorldMemoryBudget(0)
	g3, err := FromEdges(g.NumNodes(), g.Edges())
	if err != nil {
		t.Fatal(err)
	}
	if got := MinProb(g3, cl, seed, r); got != wantMin {
		t.Fatalf("default-budget MinProb %v != unbounded %v", got, wantMin)
	}
}
