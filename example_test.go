package ucgraph_test

import (
	"fmt"
	"sort"

	"ucgraph"
)

// Two certain triangles joined by nothing: the canonical deterministic
// clustering input for examples.
func twoTriangles() *ucgraph.Graph {
	b := ucgraph.NewBuilder(6)
	for c := 0; c < 2; c++ {
		base := ucgraph.NodeID(c * 3)
		b.AddEdge(base, base+1, 1)
		b.AddEdge(base+1, base+2, 1)
		b.AddEdge(base, base+2, 1)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// printPartition renders a clustering as a canonical partition (clusters
// sorted by smallest member), independent of center randomization.
func printPartition(cl *ucgraph.Clustering) {
	clusters := cl.Clusters()
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	for _, members := range clusters {
		fmt.Println(members)
	}
}

func ExampleMCP() {
	g := twoTriangles()
	cl, _, err := ucgraph.MCP(g, 2, ucgraph.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	printPartition(cl)
	fmt.Printf("min-prob: %.1f\n", cl.MinProb())
	// Output:
	// [0 1 2]
	// [3 4 5]
	// min-prob: 1.0
}

func ExampleACP() {
	g := twoTriangles()
	cl, _, err := ucgraph.ACP(g, 2, ucgraph.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	printPartition(cl)
	fmt.Printf("avg-prob: %.1f\n", cl.AvgProb())
	// Output:
	// [0 1 2]
	// [3 4 5]
	// avg-prob: 1.0
}

func ExampleNewBuilder() {
	b := ucgraph.NewBuilder(3)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.5)
	if err := b.AddEdge(2, 2, 0.5); err != nil {
		fmt.Println("rejected:", err)
	}
	g, _ := b.Build()
	fmt.Println(g.NumNodes(), "nodes,", g.NumEdges(), "edges")
	// Output:
	// rejected: graph: self loop on node 2
	// 3 nodes, 2 edges
}

func ExampleConnectionProbability() {
	// On a graph of certain edges the connection probability is exactly 1.
	g := twoTriangles()
	same := ucgraph.ConnectionProbability(g, 0, 2, 1, 1000)
	cross := ucgraph.ConnectionProbability(g, 0, 5, 1, 1000)
	fmt.Printf("same triangle: %.1f, different triangles: %.1f\n", same, cross)
	// Output:
	// same triangle: 1.0, different triangles: 0.0
}

func ExampleMCL() {
	g := twoTriangles()
	res := ucgraph.MCL(g, ucgraph.MCLOptions{})
	fmt.Println("clusters:", res.Clustering.K())
	fmt.Println("converged:", res.Converged)
	// Output:
	// clusters: 2
	// converged: true
}

func ExampleKPT() {
	// All edge probabilities above 1/2: every pivot absorbs its whole
	// triangle, so pKwikCluster finds the two triangles.
	g := twoTriangles()
	cl := ucgraph.KPT(g, 7)
	fmt.Println("clusters:", cl.K())
	// Output:
	// clusters: 2
}

func ExampleSampleDistances() {
	b := ucgraph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(ucgraph.NodeID(i), ucgraph.NodeID(i+1), 1)
	}
	g, _ := b.Build()
	dd := ucgraph.SampleDistances(g, 0, 1, 100)
	for _, nb := range dd.KNN(2, ucgraph.MedianDistance) {
		fmt.Printf("node %d at median distance %d\n", nb.Node, nb.Distance)
	}
	// Output:
	// node 1 at median distance 1
	// node 2 at median distance 2
}

func ExampleMostProbableWorld() {
	b := ucgraph.NewBuilder(3)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.2)
	g, _ := b.Build()
	world, _ := ucgraph.MostProbableWorld(g)
	fmt.Println("edges kept:", world.NumEdges())
	// Output:
	// edges kept: 1
}

func ExampleSetReliability() {
	g := twoTriangles()
	fmt.Printf("within triangle: %.1f\n", ucgraph.SetReliability(g, []ucgraph.NodeID{0, 1, 2}, 1, 500))
	fmt.Printf("across triangles: %.1f\n", ucgraph.SetReliability(g, []ucgraph.NodeID{0, 3}, 1, 500))
	// Output:
	// within triangle: 1.0
	// across triangles: 0.0
}

func ExampleInfluenceSpread() {
	g := twoTriangles()
	// One seed reaches its own certain triangle: spread exactly 3.
	fmt.Printf("%.1f\n", ucgraph.InfluenceSpread(g, []ucgraph.NodeID{0}, 1, 200))
	// Two seeds in different triangles reach everything.
	fmt.Printf("%.1f\n", ucgraph.InfluenceSpread(g, []ucgraph.NodeID{0, 3}, 1, 200))
	// Output:
	// 3.0
	// 6.0
}

func ExampleMaximizeInfluence() {
	g := twoTriangles()
	res, _ := ucgraph.MaximizeInfluence(g, 2, 1, 200)
	fmt.Printf("spread after 2 seeds: %.1f\n", res.Spread[1])
	// Output:
	// spread after 2 seeds: 6.0
}
