package ucgraph

// End-to-end pipeline test: synthesize a dataset, round-trip it through
// the file formats, cluster it with every algorithm, persist and reload
// the clustering, and score everything — the full workflow a downstream
// user runs, in one test.

import (
	"os"
	"path/filepath"
	"testing"

	"ucgraph/internal/gio"
)

func TestFullPipeline(t *testing.T) {
	dir := t.TempDir()

	// 1. Synthesize and persist a dataset with ground truth.
	ds, err := SyntheticKrogan(5)
	if err != nil {
		t.Fatal(err)
	}
	graphPath := filepath.Join(dir, "krogan.txt")
	truthPath := filepath.Join(dir, "mips.txt")
	if err := SaveGraph(graphPath, ds.Graph); err != nil {
		t.Fatal(err)
	}
	if err := gio.SaveGroundTruth(truthPath, ds.Curated); err != nil {
		t.Fatal(err)
	}

	// 2. Reload and verify identity.
	g, err := LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != ds.Graph.NumNodes() || g.NumEdges() != ds.Graph.NumEdges() {
		t.Fatalf("graph round trip: %d/%d -> %d/%d",
			ds.Graph.NumNodes(), ds.Graph.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	truth, err := gio.LoadGroundTruth(truthPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != len(ds.Curated) {
		t.Fatalf("truth round trip: %d -> %d complexes", len(ds.Curated), len(truth))
	}

	// 3. Cluster with every algorithm at a shared k.
	mclRes := MCL(g, MCLOptions{Inflation: 2.0, MaxNNZPerColumn: 64})
	k := mclRes.Clustering.K()
	if k < 2 || k >= g.NumNodes() {
		t.Fatalf("mcl granularity k = %d unusable", k)
	}
	sched := Schedule{Min: 32, Max: 128, Coef: 4}
	est := NewEstimator(g, 1)
	mcpCl, _, err := MCPWithOracle(est, k, Options{Seed: 1, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	acpCl, _, err := ACPWithOracle(est, k, Options{Seed: 1, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	gmmCl, err := GMM(g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	kptCl := KPT(g, 1)

	// 4. Persist and reload the MCP clustering.
	clPath := filepath.Join(dir, "clusters.txt")
	if err := gio.SaveClusters(clPath, mcpCl); err != nil {
		t.Fatal(err)
	}
	reloaded, err := gio.LoadClusters(clPath, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	for u := range mcpCl.Assign {
		if mcpCl.Assign[u] != reloaded.Assign[u] {
			t.Fatalf("clustering round trip changed node %d", u)
		}
	}

	// 5. Score everything on shared worlds; mcp must win p_min, and the
	// uncertainty-aware algorithms must separate inner from outer AVPR.
	const r = 64
	pm := map[string]float64{
		"mcp": MinProb(g, mcpCl, 9, r),
		"acp": MinProb(g, acpCl, 9, r),
		"gmm": MinProb(g, gmmCl, 9, r),
		"mcl": MinProb(g, mclRes.Clustering, 9, r),
		"kpt": MinProb(g, kptCl, 9, r),
	}
	for algo, v := range pm {
		if v < 0 || v > 1 {
			t.Fatalf("%s p_min out of range: %v", algo, v)
		}
	}
	if pm["mcp"] < pm["gmm"] || pm["mcp"] < pm["mcl"] {
		t.Fatalf("mcp p_min %v not best (gmm %v, mcl %v)", pm["mcp"], pm["gmm"], pm["mcl"])
	}
	inner, outer := AVPR(g, mcpCl, 9, r)
	if inner <= outer {
		t.Fatalf("mcp inner-AVPR %v <= outer-AVPR %v", inner, outer)
	}

	// 6. Prediction quality against the reloaded ground truth.
	conf := PairConfusion(mcpCl, truth)
	if conf.TPR() <= 0 {
		t.Fatal("pipeline TPR is zero")
	}
	if conf.TP+conf.FN == 0 {
		t.Fatal("no positive pairs in reloaded ground truth")
	}

	// 7. The written files are non-trivial.
	for _, p := range []string{graphPath, truthPath, clPath} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("artifact %s missing or empty", p)
		}
	}
}
