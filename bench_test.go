package ucgraph

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 5). Each benchmark regenerates its
// table/figure through internal/experiments at a laptop-friendly scale and
// reports the headline quantities via b.ReportMetric, so `go test -bench=.`
// both times the reproduction and surfaces the measured values.
//
// The full-size reproduction (all graphs, more sampled worlds, bigger DBLP)
// is `go run ./cmd/ucexp`.

import (
	"testing"

	"ucgraph/internal/conn"
	"ucgraph/internal/core"
	"ucgraph/internal/experiments"
)

// benchCfg is the shared laptop-scale experiment configuration.
func benchCfg(graphs ...string) experiments.Config {
	return experiments.Config{
		Seed:          1,
		MetricSamples: 96,
		ScheduleMax:   384,
		DBLPAuthors:   2500,
		Graphs:        graphs,
	}
}

// BenchmarkTable1Datasets regenerates Table 1: synthesizing the four
// datasets and measuring their largest connected components.
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Nodes), r.Name+"_nodes")
				b.ReportMetric(float64(r.Edges), r.Name+"_edges")
			}
		}
	}
}

// reportGridMetric surfaces per-algorithm aggregates of a grid run.
func reportGridMetric(b *testing.B, cells []experiments.Cell, name string, value func(experiments.Cell) float64) {
	agg := map[string][]float64{}
	for _, c := range cells {
		agg[c.Algo] = append(agg[c.Algo], value(c))
	}
	for algo, vals := range agg {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		b.ReportMetric(s/float64(len(vals)), algo+"_"+name)
	}
}

// BenchmarkFigure1Quality regenerates the p_min / p_avg comparison of
// Figure 1 on the Collins-like graph (all four algorithms, three k values).
func BenchmarkFigure1Quality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.QualityGrid(benchCfg("collins"))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportGridMetric(b, cells, "pmin", func(c experiments.Cell) float64 { return c.PMin })
			reportGridMetric(b, cells, "pavg", func(c experiments.Cell) float64 { return c.PAvg })
		}
	}
}

// BenchmarkFigure2AVPR regenerates the inner/outer-AVPR comparison of
// Figure 2 on the Gavin-like graph.
func BenchmarkFigure2AVPR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.QualityGrid(benchCfg("gavin"))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportGridMetric(b, cells, "inner", func(c experiments.Cell) float64 { return c.InnerAVPR })
			reportGridMetric(b, cells, "outer", func(c experiments.Cell) float64 { return c.OuterAVPR })
		}
	}
}

// BenchmarkFigure3Times regenerates the running-time comparison of
// Figure 3 on the Krogan-like graph.
func BenchmarkFigure3Times(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.QualityGrid(benchCfg("krogan"))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportGridMetric(b, cells, "ms", func(c experiments.Cell) float64 { return c.Millis })
		}
	}
}

// BenchmarkFigure4DBLPScaling regenerates the time-versus-k comparison of
// Figure 4 on a scaled DBLP instance.
func BenchmarkFigure4DBLPScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(pts) > 0 {
			first, last := pts[0], pts[len(pts)-1]
			b.ReportMetric(first.MCPMillis, "mcp_ms_smallk")
			b.ReportMetric(first.MCLMillis, "mcl_ms_smallk")
			b.ReportMetric(last.MCPMillis, "mcp_ms_largek")
			b.ReportMetric(last.MCLMillis, "mcl_ms_largek")
		}
	}
}

// BenchmarkTable2ComplexPrediction regenerates the protein-complex
// prediction comparison of Table 2 (depth-limited mcp/acp vs mcl and kpt
// on the Krogan-like graph against the curated ground truth).
func BenchmarkTable2ComplexPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				suffix := r.Algo
				if r.Depth > 0 {
					suffix = r.Algo + "_d" + string(rune('0'+r.Depth))
				}
				b.ReportMetric(r.TPR, suffix+"_tpr")
			}
		}
	}
}

// --- Per-algorithm microbenchmarks on a fixed Krogan-like instance ---

func kroganGraph(b *testing.B) *Graph {
	b.Helper()
	ds, err := SyntheticKrogan(1)
	if err != nil {
		b.Fatal(err)
	}
	return ds.Graph
}

// BenchmarkMCPKrogan times one full MCP run (k = 100) on the Krogan-like
// graph, including Monte Carlo sampling.
func BenchmarkMCPKrogan(b *testing.B) {
	g := kroganGraph(b)
	sched := Schedule{Min: 50, Max: 384, Coef: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := conn.NewMonteCarlo(g, uint64(i))
		if _, _, err := core.MCP(oracle, 100, Options{Seed: uint64(i), Schedule: sched}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACPKrogan times one full ACP run (k = 100).
func BenchmarkACPKrogan(b *testing.B) {
	g := kroganGraph(b)
	sched := Schedule{Min: 50, Max: 384, Coef: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := conn.NewMonteCarlo(g, uint64(i))
		if _, _, err := core.ACP(oracle, 100, Options{Seed: uint64(i), Schedule: sched}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCLKrogan times one MCL run at inflation 2.0.
func BenchmarkMCLKrogan(b *testing.B) {
	g := kroganGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MCL(g, MCLOptions{Inflation: 2.0, MaxNNZPerColumn: 128})
	}
}

// BenchmarkGMMKrogan times one GMM run (k = 100).
func BenchmarkGMMKrogan(b *testing.B) {
	g := kroganGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GMM(g, 100, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKPTKrogan times one pKwikCluster run.
func BenchmarkKPTKrogan(b *testing.B) {
	g := kroganGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KPT(g, uint64(i))
	}
}

// BenchmarkEstimatorFromCenter times one oracle query (256 worlds) on the
// Krogan-like graph — the inner loop of the clustering algorithms.
func BenchmarkEstimatorFromCenter(b *testing.B) {
	g := kroganGraph(b)
	est := NewEstimator(g, 1)
	est.FromCenter(0, Unlimited, 256) // warm the world cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.FromCenter(NodeID(i%g.NumNodes()), Unlimited, 256)
	}
}

// benchFromCenterWorkers times fresh-center oracle queries (1024 worlds,
// world cache pre-warmed so tally accumulation dominates) at a fixed
// engine worker count. Once every center has been queried the estimator
// is rebuilt off the clock: otherwise iterations beyond NumNodes-1 are
// pure tally-cache hits and would skew the serial-vs-parallel comparison.
func benchFromCenterWorkers(b *testing.B, workers, depth int) {
	g := kroganGraph(b)
	newEst := func() *Estimator {
		est := NewEstimator(g, 1)
		est.SetParallelism(workers)
		est.FromCenter(0, Unlimited, 1024) // materialize the worlds
		return est
	}
	est := newEst()
	cycle := g.NumNodes() - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % cycle
		if i > 0 && j == 0 {
			b.StopTimer()
			est = newEst()
			b.StartTimer()
		}
		est.FromCenter(NodeID(1+j), depth, 1024)
	}
}

// BenchmarkFromCenterSerial is the single-threaded engine baseline —
// compare against BenchmarkFromCenterParallel for the speedup trajectory.
func BenchmarkFromCenterSerial(b *testing.B)   { benchFromCenterWorkers(b, 1, Unlimited) }
func BenchmarkFromCenterParallel(b *testing.B) { benchFromCenterWorkers(b, 0, Unlimited) }

// Depth-bounded BFS variants of the same comparison.
func BenchmarkFromCenterDepth3Serial(b *testing.B)   { benchFromCenterWorkers(b, 1, 3) }
func BenchmarkFromCenterDepth3Parallel(b *testing.B) { benchFromCenterWorkers(b, 0, 3) }

// benchMCPWorkers times one full MCP run (k = 100) at a fixed worker count
// for both the oracle engine and the candidate fan-out.
func benchMCPWorkers(b *testing.B, par int) {
	g := kroganGraph(b)
	sched := Schedule{Min: 50, Max: 384, Coef: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := conn.NewMonteCarlo(g, uint64(i))
		oracle.SetParallelism(par)
		if _, _, err := core.MCP(oracle, 100, Options{Seed: uint64(i), Schedule: sched, Parallelism: par}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCPKroganSerial pins everything to one worker — the
// single-threaded seed behaviour; BenchmarkMCPKrogan above uses the
// defaults (all CPUs).
func BenchmarkMCPKroganSerial(b *testing.B) { benchMCPWorkers(b, 1) }

// BenchmarkWorldSampling times materializing one possible world's
// component labels on the Krogan-like graph.
func BenchmarkWorldSampling(b *testing.B) {
	g := kroganGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est := NewEstimator(g, uint64(i))
		est.FromCenter(0, Unlimited, 16)
	}
}
