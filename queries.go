package ucgraph

// This file exposes the companion query primitives built on the same
// possible-world machinery as the clustering algorithms: k-nearest
// neighbors under probabilistic distances (Potamias et al., the paper that
// introduced the uncertain-graph model), influence-spread maximization
// (Kempe et al., discussed in Section 1.1), representative-world
// extraction (Parchas et al.), network-reliability statistics, and the
// pL-free adaptive estimation sketched in Section 4.2.

import (
	"context"

	"ucgraph/internal/conn"
	"ucgraph/internal/core"
	"ucgraph/internal/graph"
	"ucgraph/internal/influence"
	"ucgraph/internal/knn"
	"ucgraph/internal/metrics"
	"ucgraph/internal/repworld"
	"ucgraph/internal/worldstore"
)

// DistanceDistribution is the sampled hop-distance distribution from one
// source node, supporting the probabilistic distance measures of the
// uncertain-graph k-NN literature.
type DistanceDistribution = knn.DistanceDistribution

// KNNMeasure selects a node-ranking criterion for nearest-neighbor queries.
type KNNMeasure = knn.Measure

// Nearest-neighbor ranking criteria.
const (
	// MedianDistance ranks by the median hop distance.
	MedianDistance = knn.MedianDistance
	// MajorityDistance ranks by the most probable finite hop distance.
	MajorityDistance = knn.MajorityDistance
	// ExpectedReliableDistance ranks by expected distance conditioned on
	// connectivity (reliability >= 1/2 required).
	ExpectedReliableDistance = knn.ExpectedReliableDistance
	// ByReliability ranks by Pr(s ~ v) descending.
	ByReliability = knn.ByReliability
)

// Neighbor is one ranked nearest-neighbor answer.
type Neighbor = knn.Neighbor

// InfiniteDistance marks an unreachable hop distance.
const InfiniteDistance = knn.Infinite

// SampleDistances computes the hop-distance distribution from src over r
// sampled possible worlds, the basis for KNN queries:
//
//	dd := ucgraph.SampleDistances(g, src, seed, 1000)
//	nearest := dd.KNN(10, ucgraph.MedianDistance)
func SampleDistances(g *Graph, src NodeID, seed uint64, r int) *DistanceDistribution {
	return knn.Sample(g, src, seed, r)
}

// SampleDistancesCtx is SampleDistances with cooperative cancellation:
// the per-world BFS loop aborts once ctx is done, returning ctx's error.
func SampleDistancesCtx(ctx context.Context, g *Graph, src NodeID, seed uint64, r int) (*DistanceDistribution, error) {
	return knn.SampleCtx(ctx, g, src, seed, r)
}

// InfluenceResult is the outcome of greedy influence maximization.
type InfluenceResult = influence.Result

// InfluenceSpread estimates sigma(S): the expected number of nodes
// connected to at least one seed in a random possible world (the
// live-edge view of the Independent Cascade model on undirected graphs).
func InfluenceSpread(g *Graph, seeds []NodeID, seed uint64, r int) float64 {
	return influence.Spread(worldstore.Shared(g, seed), seeds, r)
}

// MaximizeInfluence greedily selects k seeds maximizing the expected
// spread, with CELF lazy evaluation; the result is a (1 - 1/e - eps)
// approximation of the optimal seed set by submodularity.
func MaximizeInfluence(g *Graph, k int, seed uint64, r int) (*InfluenceResult, error) {
	return influence.Greedy(worldstore.Shared(g, seed), k, r)
}

// MaximizeInfluenceCtx is MaximizeInfluence with cooperative cancellation:
// the greedy selection aborts at the next world scan once ctx is done,
// returning ctx's error.
func MaximizeInfluenceCtx(ctx context.Context, g *Graph, k int, seed uint64, r int) (*InfluenceResult, error) {
	return influence.GreedyCtx(ctx, worldstore.Shared(g, seed), k, r)
}

// MostProbableWorld returns the deterministic graph keeping exactly the
// edges with p >= 1/2 — the single most likely possible world.
func MostProbableWorld(g *Graph) (*Graph, error) {
	return repworld.Materialize(g, repworld.MostProbable(g))
}

// RepresentativeWorld returns a deterministic instance of g whose node
// degrees track the expected degrees of the uncertain graph (the
// ADR-style greedy of Parchas et al.), a better proxy than the most
// probable world when low-probability regions are dense.
func RepresentativeWorld(g *Graph) (*Graph, error) {
	return repworld.Materialize(g, repworld.AverageDegree(g))
}

// SampledRepresentativeWorld returns the possible world with the smallest
// degree discrepancy among the first r worlds of the shared (g, seed)
// stream, plus that world's stream index. The result is an actual sample —
// the exact world every other query on the same (g, seed) pair observes at
// that index — unlike the synthesized MostProbableWorld and
// RepresentativeWorld instances.
func SampledRepresentativeWorld(g *Graph, seed uint64, r int) (*Graph, int, error) {
	kept, idx := repworld.BestSampled(worldstore.Shared(g, seed), r)
	world, err := repworld.Materialize(g, kept)
	return world, idx, err
}

// DegreeDiscrepancy returns sum over nodes of |deg_world(v) -
// E[deg_g(v)]| for a deterministic instance world of g (world must have
// the same node set).
func DegreeDiscrepancy(g *Graph, world *Graph) float64 {
	kept := make([]int32, 0, world.NumEdges())
	for _, e := range world.Edges() {
		// Map world edges back onto g's edge IDs by endpoints.
		if _, ok := g.HasEdge(e.U, e.V); ok {
			kept = append(kept, findEdgeID(g, e.U, e.V))
		}
	}
	return repworld.Discrepancy(g, kept)
}

// findEdgeID locates the edge ID of {u, v} in g (which must exist).
func findEdgeID(g *Graph, u, v NodeID) int32 {
	var id int32 = -1
	g.Neighbors(u, func(w graph.NodeID, edgeID int32, _ float64) {
		if w == v {
			id = edgeID
		}
	})
	return id
}

// ExpectedComponents estimates the expected number of connected components
// of a random possible world.
func ExpectedComponents(g *Graph, seed uint64, r int) float64 {
	return metrics.ExpectedComponents(worldstore.Shared(g, seed), r)
}

// SetReliability estimates the probability that all nodes of set lie in a
// single connected component of a random possible world (k-terminal
// reliability).
func SetReliability(g *Graph, set []NodeID, seed uint64, r int) float64 {
	return metrics.SetReliability(worldstore.Shared(g, seed), set, r)
}

// AllTerminalReliability estimates the probability that a random possible
// world is connected.
func AllTerminalReliability(g *Graph, seed uint64, r int) float64 {
	return metrics.AllTerminalReliability(worldstore.Shared(g, seed), r)
}

// AdaptiveResult reports an adaptive (stopping-rule) estimation outcome.
type AdaptiveResult = conn.AdaptiveResult

// AdaptiveParams is an additive (eps, delta) confidence target for
// adaptive estimation: with probability at least 1-Delta, every tracked
// estimate lands within Eps of the truth.
type AdaptiveParams = conn.AdaptiveParams

// AdaptiveStats accounts an adaptive run: worlds consumed vs budget,
// rounds, the final certified half-width, and whether the run converged.
type AdaptiveStats = conn.AdaptiveStats

// AdaptiveSnapshot is one refinement round of an adaptive run, delivered
// to the progress callback of AdaptiveFromCenters.
type AdaptiveSnapshot = conn.AdaptiveSnapshot

// AdaptiveScoring switches MCP/ACP candidate scoring to adaptive racing:
// set it on Options.Adaptive to prune dominated candidate centers early
// instead of spending the full sample budget on each (see
// Options.Adaptive for the determinism contract).
type AdaptiveScoring = core.AdaptiveScoring

// AdaptiveConnectionProbability estimates Pr(u ~ v) to relative error eps
// with confidence 1-delta using the Dagum-Karp-Luby-Ross stopping rule —
// the pL-free progressive sampling sketched at the end of Section 4.2 of
// the paper. The sample count adapts to the unknown probability
// (~ln(1/delta)/(eps^2 Pr)), capped at maxSamples (<= 0 for the default).
func AdaptiveConnectionProbability(g *Graph, u, v NodeID, eps, delta float64, seed uint64, maxSamples int) AdaptiveResult {
	return conn.NewMonteCarlo(g, seed).AdaptivePair(u, v, eps, delta, maxSamples)
}

// ConnectionProbabilityInterval estimates Pr(u ~ v) to ADDITIVE error eps
// with confidence 1-delta: worlds are consumed in block-aligned doubling
// rounds from the shared store and the run stops as soon as the
// Hoeffding/empirical-Bernstein interval closes to eps. Unlike the
// relative-error AdaptiveConnectionProbability, the additive target never
// needs many worlds for rare events — extreme probabilities converge
// FASTER (the empirical variance vanishes). Deterministic for fixed
// (graph, seed, params); the estimate at the stopping point is
// bit-identical to a fixed-budget run of the same world count.
func ConnectionProbabilityInterval(ctx context.Context, g *Graph, u, v NodeID, p AdaptiveParams, seed uint64) (float64, AdaptiveStats, error) {
	return conn.AdaptivePairInterval(ctx, conn.NewMonteCarlo(g, seed), u, v, conn.Unlimited, p, nil)
}

// AdaptiveFromCenters answers "Pr(c ~ u) for every u" for each center to
// an additive (eps, delta) target, refining all centers together over
// doubling world rounds until the widest tracked interval closes (targets
// restricts which nodes count; nil tracks all). The progress callback, if
// non-nil, observes every refinement round; returning an error from it
// aborts the run. est may be shared — rounds extend its per-center tally
// cache exactly like fixed-budget queries do.
func AdaptiveFromCenters(ctx context.Context, est *Estimator, cs []NodeID, depth int, targets []NodeID, p AdaptiveParams, progress func(AdaptiveSnapshot) error) ([][]float64, AdaptiveStats, error) {
	return conn.AdaptiveFromCenters(ctx, est, cs, depth, targets, p, progress)
}
