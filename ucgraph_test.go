package ucgraph

import (
	"bytes"
	"math"
	"testing"
)

// buildTwoBlobs returns two dense 0.9-blobs of the given size joined by a
// 0.1 bridge.
func buildTwoBlobs(t *testing.T, size int) *Graph {
	t.Helper()
	b := NewBuilder(2 * size)
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if err := b.AddEdge(NodeID(base+i), NodeID(base+j), 0.9); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(0, NodeID(size), 0.1); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicMCPEndToEnd(t *testing.T) {
	g := buildTwoBlobs(t, 5)
	cl, stats, err := MCP(g, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.K() != 2 || !cl.IsFull() {
		t.Fatalf("K=%d full=%v", cl.K(), cl.IsFull())
	}
	if stats.Invocations < 1 {
		t.Fatal("stats empty")
	}
	// The two blobs must separate.
	if cl.Assign[0] == cl.Assign[5] {
		t.Fatal("blobs merged")
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestPublicACPEndToEnd(t *testing.T) {
	g := buildTwoBlobs(t, 5)
	cl, _, err := ACP(g, 2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.IsFull() {
		t.Fatal("ACP returned partial clustering")
	}
	if avg := AvgProb(g, cl, 99, 400); avg < 0.8 {
		t.Fatalf("AvgProb = %v, want > 0.8 on dense blobs", avg)
	}
}

func TestPublicReproducibility(t *testing.T) {
	g := buildTwoBlobs(t, 4)
	a, _, err := MCP(g, 2, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := MCP(g, 2, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Assign {
		if a.Assign[u] != b.Assign[u] {
			t.Fatal("same seed, different clusterings")
		}
	}
}

func TestPublicSharedOracle(t *testing.T) {
	g := buildTwoBlobs(t, 4)
	est := NewEstimator(g, 3)
	if _, _, err := MCPWithOracle(est, 2, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ACPWithOracle(est, 2, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if est.WorldsMaterialized() == 0 {
		t.Fatal("shared oracle sampled no worlds")
	}
}

func TestPublicBaselines(t *testing.T) {
	g := buildTwoBlobs(t, 5)
	mclRes := MCL(g, MCLOptions{})
	if mclRes.Clustering.K() < 1 {
		t.Fatal("MCL found no clusters")
	}
	gmmCl, err := GMM(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gmmCl.K() != 2 {
		t.Fatalf("GMM K = %d", gmmCl.K())
	}
	kptCl := KPT(g, 1)
	if kptCl.K() < 1 {
		t.Fatal("KPT found no clusters")
	}
}

func TestPublicMetrics(t *testing.T) {
	g := buildTwoBlobs(t, 4)
	cl, _, err := MCP(g, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pmin := MinProb(g, cl, 11, 400)
	pavg := AvgProb(g, cl, 11, 400)
	if pmin <= 0 || pmin > 1 || pavg < pmin || pavg > 1 {
		t.Fatalf("pmin=%v pavg=%v", pmin, pavg)
	}
	inner, outer := AVPR(g, cl, 11, 400)
	if inner <= outer {
		t.Fatalf("inner-AVPR %v should exceed outer-AVPR %v on separable blobs", inner, outer)
	}
}

func TestPublicConnectionProbability(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1, 0.37); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := ConnectionProbability(g, 0, 1, 1, 30000)
	if math.Abs(got-0.37) > 0.02 {
		t.Fatalf("ConnectionProbability = %v, want ~0.37", got)
	}
}

func TestPublicIO(t *testing.T) {
	g := buildTwoBlobs(t, 3)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
}

func TestPublicDepthLimit(t *testing.T) {
	// A certain 5-path with Depth 1 and k=2 has the centers-1,3 solution.
	b := NewBuilder(5)
	for i := 0; i < 4; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cl, _, err := MCP(g, 2, Options{Seed: 1, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.IsFull() {
		t.Fatal("depth-1 clustering should cover the 5-path")
	}
}

func TestPublicErrNoClustering(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3, 0.9); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MCP(g, 1, Options{Seed: 1}); err != ErrNoClustering {
		t.Fatalf("err = %v, want ErrNoClustering", err)
	}
}

func TestPublicSyntheticDatasets(t *testing.T) {
	ds, err := SyntheticKrogan(1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.NumNodes() < 2000 || len(ds.Complexes) == 0 || len(ds.Curated) == 0 {
		t.Fatalf("krogan dataset incomplete: n=%d complexes=%d curated=%d",
			ds.Graph.NumNodes(), len(ds.Complexes), len(ds.Curated))
	}
	small, err := SyntheticDBLP(DBLPConfig{Authors: 800, PapersPerAuthor: 1.4, CommunitySize: 30, CrossCommunity: 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if small.Graph.NumNodes() < 300 {
		t.Fatalf("dblp too small: %d", small.Graph.NumNodes())
	}
}

func TestPublicPairConfusion(t *testing.T) {
	ds, err := SyntheticKrogan(2)
	if err != nil {
		t.Fatal(err)
	}
	// Depth-limited MCP at moderate k, scored against curated truth.
	est := NewEstimator(ds.Graph, 4)
	cl, _, err := MCPWithOracle(est, 400, Options{Seed: 4, Depth: 3, Schedule: Schedule{Min: 32, Max: 128, Coef: 4}})
	if err != nil {
		t.Fatal(err)
	}
	conf := PairConfusion(cl, ds.Curated)
	if conf.TPR() <= 0 {
		t.Fatal("TPR should be positive for depth-limited MCP on planted complexes")
	}
	if conf.FPR() > 0.2 {
		t.Fatalf("FPR = %v unexpectedly high", conf.FPR())
	}
}
