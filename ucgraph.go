// Package ucgraph clusters uncertain graphs with provable guarantees.
//
// It is a Go implementation of "Clustering Uncertain Graphs" (Ceccarello,
// Fantozzi, Pietracaprina, Pucci, Vandin — VLDB 2017). An uncertain graph
// G = (V, E, p) is a probability space whose outcomes (possible worlds) are
// subgraphs of G in which each edge e materializes independently with
// probability p(e). The library partitions V into k clusters around k
// center nodes so as to maximize either
//
//   - the minimum connection probability of a node to its cluster center
//     (the MCP problem), or
//   - the average connection probability of a node to its cluster center
//     (the ACP problem),
//
// where the connection probability Pr(u ~ v) is the probability that u and
// v fall in the same connected component of a random possible world. Both
// algorithms carry approximation guarantees relative to the optimal
// k-clustering and keep the number of clusters under exact control, unlike
// earlier uncertain-graph clustering heuristics.
//
// # Quick start
//
//	b := ucgraph.NewBuilder(4)
//	b.AddEdge(0, 1, 0.9)
//	b.AddEdge(1, 2, 0.8)
//	b.AddEdge(2, 3, 0.9)
//	g, _ := b.Build()
//	cl, stats, err := ucgraph.MCP(g, 2, ucgraph.Options{Seed: 1})
//
// The returned Clustering lists the k centers, each node's cluster and the
// estimated connection probability of each node to its center.
//
// # Depth-limited clustering
//
// Setting Options.Depth = d restricts connection probabilities to paths of
// at most d hops (the d-connection probability of Section 3.4), useful when
// topological proximity matters alongside reliability — e.g. protein
// complex prediction in PPI networks.
//
// # Baselines
//
// The package also ships the three comparison algorithms of the paper's
// evaluation: MCL (Markov Cluster), GMM (k-center on most-probable-path
// distances) and KPT (pKwikCluster), plus the quality metrics used to
// compare them (MinProb/AvgProb, inner/outer AVPR, pair confusion against
// ground-truth communities).
//
// # Deadlines and cancellation
//
// The long-running entry points have Ctx variants (MCPCtx, ACPCtx,
// ConnectionProbabilityCtx, SampleDistancesCtx, MaximizeInfluenceCtx)
// that honor context cancellation and deadlines: estimation aborts at the
// next chunk of sampled worlds and the context's error is returned. A
// call that returns without error is bit-identical to its context-free
// twin — cancellation never degrades an answer, it only withholds one.
// The ucserve daemon (cmd/ucserve) serves every request through these
// variants; see docs/SERVER.md.
package ucgraph

import (
	"context"
	"io"

	"ucgraph/internal/conn"
	"ucgraph/internal/core"
	"ucgraph/internal/datasets"
	"ucgraph/internal/gio"
	"ucgraph/internal/gmm"
	"ucgraph/internal/graph"
	"ucgraph/internal/kpt"
	"ucgraph/internal/mcl"
	"ucgraph/internal/metrics"
	"ucgraph/internal/worldstore"
)

// NodeID identifies a node; the nodes of an n-node graph are 0..n-1.
type NodeID = graph.NodeID

// Edge is one undirected uncertain edge with survival probability P.
type Edge = graph.Edge

// Graph is an immutable uncertain graph.
type Graph = graph.Uncertain

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// Clustering is a k-clustering: centers, per-node cluster assignment and
// per-node estimated connection probability to the assigned center.
type Clustering = core.Clustering

// Options configures the MCP and ACP drivers; the zero value selects the
// defaults used in the paper's experiments (gamma 0.1, floor 1e-4,
// alpha 1, accelerated guess schedule with binary search).
// Options.Parallelism bounds the worker pool of both the Monte Carlo
// estimator and the candidate-scoring fan-out (<= 0 selects GOMAXPROCS,
// 1 forces serial execution) when MCP/ACP build the estimator themselves;
// the WithOracle variants apply it to the fan-out only. Results are
// bit-identical for every setting up to the estimator's tally-cache
// overflow boundary (see Estimator).
type Options = core.Options

// Stats reports the work performed by an MCP/ACP run.
type Stats = core.Stats

// Schedule maps probability guesses to Monte Carlo sample sizes
// (progressive sampling, Section 4 of the paper).
type Schedule = conn.Schedule

// Estimator is the Monte Carlo connection-probability oracle. It answers
// from the shared world store of its (graph, seed) pair, so all queries
// against it — and against every other consumer of that pair — are
// mutually consistent and reproducible. Estimators are safe for concurrent
// use and internally parallel: estimates do not depend on the worker count
// (see Estimator.SetParallelism) or the store's memory budget.
type Estimator = conn.MonteCarlo

// WorldStore is the shared, memory-bounded store of sampled possible
// worlds that all estimators, metrics and companion queries of one
// (graph, seed) pair answer from. See Worlds and SetWorldMemoryBudget.
type WorldStore = worldstore.Store

// MCLOptions configures the MCL baseline.
type MCLOptions = mcl.Options

// MCLResult is the outcome of an MCL run.
type MCLResult = mcl.Result

// Confusion is a pair-level confusion matrix against ground-truth
// communities.
type Confusion = metrics.Confusion

// Dataset is a synthetic uncertain graph with optional planted ground
// truth, emulating one of the paper's evaluation datasets.
type Dataset = datasets.Dataset

// DBLPConfig sizes the synthetic DBLP co-authorship generator.
type DBLPConfig = datasets.DBLPConfig

// Unassigned marks a node not covered by any cluster in a partial
// clustering.
const Unassigned = core.Unassigned

// Unlimited disables the path-length limit on connection probabilities.
const Unlimited = conn.Unlimited

// ErrNoClustering is returned when no full k-clustering exists above the
// probability floor (e.g. the graph has more than k connected components).
var ErrNoClustering = core.ErrNoClustering

// NewBuilder returns a Builder for a graph with n nodes; AddEdge grows the
// node set as needed.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n nodes from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadGraph parses a graph from "u v p" edge lines.
func ReadGraph(r io.Reader) (*Graph, error) { return gio.ReadGraph(r) }

// WriteGraph writes a graph as "u v p" edge lines.
func WriteGraph(w io.Writer, g *Graph) error { return gio.WriteGraph(w, g) }

// LoadGraph reads a graph from a file.
func LoadGraph(path string) (*Graph, error) { return gio.LoadGraph(path) }

// SaveGraph writes a graph to a file.
func SaveGraph(path string, g *Graph) error { return gio.SaveGraph(path, g) }

// NewEstimator returns a Monte Carlo connection-probability estimator over
// g's possible worlds under the given seed.
func NewEstimator(g *Graph, seed uint64) *Estimator { return conn.NewMonteCarlo(g, seed) }

// Worlds returns the shared world store for (g, seed): the single
// materialization of that world stream which every estimator, metric and
// companion query built from the pair answers from. Use it for
// observability (Stats) or to bound its label memory (SetBudget).
func Worlds(g *Graph, seed uint64) *WorldStore { return worldstore.Shared(g, seed) }

// SetWorldMemoryBudget bounds the label memory, in bytes, of world stores
// created afterwards (0 restores the unbounded default). Bounded stores
// evict least-recently-used label blocks and recompute them on demand;
// estimates are bit-identical either way, only speed varies. Existing
// stores keep their budgets; use WorldStore.SetBudget for those.
func SetWorldMemoryBudget(bytes int64) { worldstore.SetDefaultBudget(bytes) }

// MCP partitions g into k clusters maximizing the minimum connection
// probability of a node to its cluster center (Algorithm 2 of the paper,
// with the Section 4 progressive-sampling oracle). The result satisfies,
// with high probability,
//
//	min-prob(C) >= (1-eps) * p_opt-min(k)^2 / (1+gamma).
func MCP(g *Graph, k int, opt Options) (*Clustering, Stats, error) {
	oracle := conn.NewMonteCarlo(g, estimatorSeed(opt.Seed))
	oracle.SetParallelism(opt.Parallelism)
	return core.MCP(oracle, k, opt)
}

// MCPCtx is MCP with cooperative cancellation: the run aborts at the next
// chunk of sampled worlds once ctx is cancelled or past its deadline,
// returning ctx's error. A nil-error run is bit-identical to MCP.
func MCPCtx(ctx context.Context, g *Graph, k int, opt Options) (*Clustering, Stats, error) {
	oracle := conn.NewMonteCarlo(g, estimatorSeed(opt.Seed))
	oracle.SetParallelism(opt.Parallelism)
	return core.MCPCtx(ctx, oracle, k, opt)
}

// MCPWithOracle runs MCP against a caller-supplied estimator, so repeated
// runs can share sampled worlds. The estimator's own parallelism setting
// is left untouched — opt.Parallelism only governs the candidate fan-out;
// configure the estimator with SetParallelism if you want both pinned.
func MCPWithOracle(oracle *Estimator, k int, opt Options) (*Clustering, Stats, error) {
	return core.MCP(oracle, k, opt)
}

// ACP partitions g into k clusters maximizing the average connection
// probability of a node to its cluster center (Algorithm 3). The result
// satisfies, with high probability,
//
//	avg-prob(C) >= (1-eps) * (p_opt-avg(k) / ((1+gamma) H(n)))^3.
func ACP(g *Graph, k int, opt Options) (*Clustering, Stats, error) {
	oracle := conn.NewMonteCarlo(g, estimatorSeed(opt.Seed))
	oracle.SetParallelism(opt.Parallelism)
	return core.ACP(oracle, k, opt)
}

// ACPCtx is ACP with cooperative cancellation, under the same contract as
// MCPCtx: ctx's error on abort, bit-identical results on success.
func ACPCtx(ctx context.Context, g *Graph, k int, opt Options) (*Clustering, Stats, error) {
	oracle := conn.NewMonteCarlo(g, estimatorSeed(opt.Seed))
	oracle.SetParallelism(opt.Parallelism)
	return core.ACPCtx(ctx, oracle, k, opt)
}

// ACPWithOracle runs ACP against a caller-supplied estimator. Like
// MCPWithOracle, it leaves the estimator's own parallelism untouched.
func ACPWithOracle(oracle *Estimator, k int, opt Options) (*Clustering, Stats, error) {
	return core.ACP(oracle, k, opt)
}

// estimatorSeed derives the estimator's world-stream seed from the driver
// seed so that MCP(g, k, opt) is fully reproducible.
func estimatorSeed(seed uint64) uint64 { return seed ^ 0x77c11a9d5f3b2e01 }

// MCL clusters g with the Markov Cluster algorithm, using edge
// probabilities as similarity weights. The number of clusters is an
// emergent property of Options.Inflation.
func MCL(g *Graph, opt MCLOptions) *MCLResult { return mcl.Cluster(g, opt) }

// GMM clusters g with the Gonzalez k-center baseline on the shortest-path
// metric w(e) = ln(1/p(e)).
func GMM(g *Graph, k int, seed uint64) (*Clustering, error) { return gmm.Cluster(g, k, seed) }

// KPT clusters g with pKwikCluster (Kollios, Potamias, Terzi); the number
// of clusters is an outcome of the random pivot order.
func KPT(g *Graph, seed uint64) *Clustering { return kpt.Cluster(g, seed) }

// MinProb estimates the minimum connection probability of a node to its
// cluster center (Equation 1) over r sampled worlds.
func MinProb(g *Graph, cl *Clustering, seed uint64, r int) float64 {
	return metrics.PMin(cl, worldstore.Shared(g, seed), r)
}

// AvgProb estimates the average connection probability of nodes to their
// cluster centers (Equation 2) over r sampled worlds.
func AvgProb(g *Graph, cl *Clustering, seed uint64, r int) float64 {
	return metrics.PAvg(cl, worldstore.Shared(g, seed), r)
}

// AVPR estimates the inner and outer Average Vertex Pairwise Reliability of
// a clustering over r sampled worlds: the mean connection probability of
// same-cluster pairs and of cross-cluster pairs.
func AVPR(g *Graph, cl *Clustering, seed uint64, r int) (inner, outer float64) {
	return metrics.AVPR(cl, worldstore.Shared(g, seed), r)
}

// PairConfusion scores a clustering against ground-truth communities at the
// node-pair level (Section 5.2): pairs co-clustered and co-complexed are
// true positives.
func PairConfusion(cl *Clustering, truth [][]NodeID) Confusion {
	return metrics.PairConfusion(cl, truth)
}

// ConnectionProbability estimates Pr(u ~ v) with r sampled worlds.
func ConnectionProbability(g *Graph, u, v NodeID, seed uint64, r int) float64 {
	return conn.NewMonteCarlo(g, seed).Pair(u, v, r)
}

// ConnectionProbabilityCtx is ConnectionProbability with cooperative
// cancellation: the world scan aborts once ctx is done, returning ctx's
// error.
func ConnectionProbabilityCtx(ctx context.Context, g *Graph, u, v NodeID, seed uint64, r int) (float64, error) {
	return conn.NewMonteCarlo(g, seed).PairCtx(ctx, u, v, r)
}

// SyntheticCollins generates the Collins-like PPI dataset (Table 1 row 1):
// ~1004 nodes, ~8323 edges, mostly high-probability edges, with planted
// protein complexes as ground truth.
func SyntheticCollins(seed uint64) (*Dataset, error) { return datasets.Collins(seed) }

// SyntheticGavin generates the Gavin-like PPI dataset: ~1727 nodes, ~7534
// edges, mostly low-probability edges.
func SyntheticGavin(seed uint64) (*Dataset, error) { return datasets.Gavin(seed) }

// SyntheticKrogan generates the Krogan-like PPI dataset: ~2559 nodes,
// ~7031 edges, a quarter of them above probability 0.9. Its Curated field
// carries a MIPS-like ground-truth subset for prediction experiments.
func SyntheticKrogan(seed uint64) (*Dataset, error) { return datasets.Krogan(seed) }

// SyntheticDBLP generates a DBLP-like co-authorship uncertain graph with
// p = 1 - exp(-x/2) for x co-authored papers. The zero config is a
// laptop-scale default; set Authors to 636751 for the paper-scale graph.
func SyntheticDBLP(cfg DBLPConfig, seed uint64) (*Dataset, error) {
	return datasets.DBLP(cfg, seed)
}
