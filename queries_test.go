package ucgraph

import (
	"context"
	"math"
	"testing"
)

func certainPath(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicKNN(t *testing.T) {
	g := certainPath(t, 7)
	dd := SampleDistances(g, 3, 1, 50)
	nb := dd.KNN(2, MedianDistance)
	if len(nb) != 2 {
		t.Fatalf("got %d neighbors", len(nb))
	}
	for _, x := range nb {
		if x.Node != 2 && x.Node != 4 {
			t.Fatalf("unexpected neighbor %d", x.Node)
		}
		if x.Distance != 1 {
			t.Fatalf("neighbor distance %d, want 1", x.Distance)
		}
	}
	// All measures run without error.
	for _, m := range []KNNMeasure{MedianDistance, MajorityDistance, ExpectedReliableDistance, ByReliability} {
		if got := dd.KNN(3, m); len(got) == 0 {
			t.Fatalf("measure %v returned nothing", m)
		}
	}
}

func TestPublicInfluence(t *testing.T) {
	// Star: hub is the best single seed.
	b := NewBuilder(5)
	for i := 1; i < 5; i++ {
		if err := b.AddEdge(0, NodeID(i), 0.8); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaximizeInfluence(g, 1, 1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("best seed = %d, want hub 0", res.Seeds[0])
	}
	spread := InfluenceSpread(g, res.Seeds, 1, 4000)
	if math.Abs(spread-res.Spread[0]) > 1e-9 {
		t.Fatalf("InfluenceSpread %v != greedy's record %v (same seed/worlds)", spread, res.Spread[0])
	}
	if math.Abs(spread-4.2) > 0.2 { // 1 + 4*0.8
		t.Fatalf("hub spread = %v, want ~4.2", spread)
	}
}

func TestPublicRepresentativeWorlds(t *testing.T) {
	// 0.4-clique: most probable world empty, representative world not.
	b := NewBuilder(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if err := b.AddEdge(NodeID(i), NodeID(j), 0.4); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mp, err := MostProbableWorld(g)
	if err != nil {
		t.Fatal(err)
	}
	if mp.NumEdges() != 0 {
		t.Fatalf("most probable world kept %d edges", mp.NumEdges())
	}
	rep, err := RepresentativeWorld(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumEdges() < 4 {
		t.Fatalf("representative world kept only %d edges", rep.NumEdges())
	}
	if DegreeDiscrepancy(g, rep) > DegreeDiscrepancy(g, mp) {
		t.Fatal("representative world has worse degree discrepancy than most probable")
	}
}

func TestPublicReliabilityStats(t *testing.T) {
	g := certainPath(t, 4)
	if got := ExpectedComponents(g, 1, 100); got != 1 {
		t.Fatalf("E[components] = %v, want 1 on a certain path", got)
	}
	if got := AllTerminalReliability(g, 1, 100); got != 1 {
		t.Fatalf("all-terminal = %v, want 1", got)
	}
	if got := SetReliability(g, []NodeID{0, 3}, 1, 100); got != 1 {
		t.Fatalf("SetReliability = %v, want 1", got)
	}
	// Uncertain case: two-node p=0.5.
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := ExpectedComponents(g2, 3, 30000)
	if math.Abs(got-1.5) > 0.03 {
		t.Fatalf("E[components] = %v, want ~1.5", got)
	}
}

func TestPublicAdaptiveEstimation(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1, 0.3); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := AdaptiveConnectionProbability(g, 0, 1, 0.1, 0.01, 5, 0)
	if !res.Converged {
		t.Fatal("adaptive estimation did not converge")
	}
	if math.Abs(res.P-0.3)/0.3 > 0.2 {
		t.Fatalf("adaptive estimate %v, want ~0.3", res.P)
	}
	if res.Samples < 100 {
		t.Fatalf("suspiciously few samples: %d", res.Samples)
	}
}

func TestPublicConnectionProbabilityInterval(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 0.6); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, st, err := ConnectionProbabilityInterval(context.Background(), g, 0, 2,
		AdaptiveParams{Eps: 0.05, Delta: 0.05, MaxWorlds: 1 << 16}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged || st.HalfWidth > 0.05 {
		t.Fatalf("interval did not close: %+v", st)
	}
	if math.Abs(p-0.48) > 0.05 {
		t.Fatalf("estimate %v, want 0.48 +- 0.05", p)
	}

	// The batched form tracks every node by default and reports each
	// refinement round through the callback.
	rounds := 0
	ests, st2, err := AdaptiveFromCenters(context.Background(), NewEstimator(g, 5),
		[]NodeID{0}, Unlimited, nil,
		AdaptiveParams{Eps: 0.05, Delta: 0.05, MaxWorlds: 1 << 16},
		func(AdaptiveSnapshot) error { rounds++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 || !st2.Converged {
		t.Fatalf("no refinement rounds observed (%d) or unconverged: %+v", rounds, st2)
	}
	if math.Abs(ests[0][2]-0.48) > 0.05 {
		t.Fatalf("batched estimate %v, want 0.48 +- 0.05", ests[0][2])
	}
}
