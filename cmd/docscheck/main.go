// Command docscheck fails when the repository's documentation contains
// broken relative links — so README/docs references cannot rot silently —
// or orphaned docs pages no reader can reach.
//
// Usage:
//
//	go run ./cmd/docscheck            # check README.md, ROADMAP.md, docs/
//	go run ./cmd/docscheck a.md b.md  # check specific files
//
// It scans markdown inline links `[text](target)` outside fenced code
// blocks; targets that are absolute URLs (http/https/mailto) or pure
// in-page anchors are skipped, every other target must exist on disk
// relative to the file containing the link (anchors and query strings
// stripped). In the default (no-arguments) mode it additionally walks the
// relative-link graph from README.md and reports any page under docs/ that
// is unreachable from it — a new docs page must be linked (directly or
// transitively) from the README, or no reader will find it. Exit status 1
// lists every broken link and orphaned page.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// defaultTargets are the documents the CI docs job guards.
var defaultTargets = []string{"README.md", "ROADMAP.md", "docs"}

// linkRE matches markdown inline links, capturing the target. It
// deliberately ignores reference-style links (unused in this repo) and
// images (same syntax with a leading "!", still worth checking — the
// pattern matches those too since the bracket text is unconstrained).
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// fenceRE matches code-fence delimiters.
var fenceRE = regexp.MustCompile("^\\s*```")

// checkFile returns a description of every broken relative link in path,
// plus the (cleaned, repo-relative) paths of the relative links that do
// resolve — the edges of the reachability walk.
func checkFile(path string) (broken, resolved []string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	inFence := false
	for ln, line := range strings.Split(string(data), "\n") {
		if fenceRE.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			// Strip in-page anchors and query strings.
			if i := strings.IndexAny(target, "#?"); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			r := filepath.Clean(filepath.Join(filepath.Dir(path), filepath.FromSlash(target)))
			if _, err := os.Stat(r); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: broken link %q (%s)", path, ln+1, m[1], r))
			} else {
				resolved = append(resolved, r)
			}
		}
	}
	return broken, resolved, nil
}

// orphans returns the docs pages unreachable from README.md over the
// relative-link graph. files is the full markdown set under check; only
// members under docsDir can be orphans (the README itself and ROADMAP.md
// are roots of their own).
func orphans(files []string, docsDir string) []string {
	reachable := map[string]bool{"README.md": true, "ROADMAP.md": true}
	queue := []string{"README.md", "ROADMAP.md"}
	for len(queue) > 0 {
		page := queue[0]
		queue = queue[1:]
		_, links, err := checkFile(page)
		if err != nil {
			continue // unreadable roots are reported by the link pass
		}
		for _, l := range links {
			if strings.HasSuffix(l, ".md") && !reachable[l] {
				reachable[l] = true
				queue = append(queue, l)
			}
		}
	}
	var out []string
	prefix := filepath.Clean(docsDir) + string(filepath.Separator)
	for _, f := range files {
		if strings.HasPrefix(filepath.Clean(f), prefix) && !reachable[filepath.Clean(f)] {
			out = append(out, f)
		}
	}
	return out
}

// expand turns a target into the markdown files it names: files pass
// through, directories are walked for *.md.
func expand(target string) ([]string, error) {
	info, err := os.Stat(target)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{target}, nil
	}
	var files []string
	err = filepath.WalkDir(target, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

func main() {
	targets := os.Args[1:]
	defaultMode := len(targets) == 0
	if defaultMode {
		targets = defaultTargets
	}
	var files []string
	for _, t := range targets {
		fs, err := expand(t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(1)
		}
		files = append(files, fs...)
	}
	problems := 0
	for _, f := range files {
		bs, _, err := checkFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(1)
		}
		for _, b := range bs {
			fmt.Fprintln(os.Stderr, b)
			problems++
		}
	}
	if defaultMode {
		for _, o := range orphans(files, "docs") {
			fmt.Fprintf(os.Stderr, "%s: orphaned page — not reachable by relative links from README.md\n", o)
			problems++
		}
	}
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s) in %d file(s)\n", problems, len(files))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d file(s) clean\n", len(files))
}
