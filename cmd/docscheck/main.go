// Command docscheck fails when the repository's documentation contains
// broken relative links, so README/docs references cannot rot silently.
//
// Usage:
//
//	go run ./cmd/docscheck            # check README.md, ROADMAP.md, docs/
//	go run ./cmd/docscheck a.md b.md  # check specific files
//
// It scans markdown inline links `[text](target)` outside fenced code
// blocks; targets that are absolute URLs (http/https/mailto) or pure
// in-page anchors are skipped, every other target must exist on disk
// relative to the file containing the link (anchors and query strings
// stripped). Exit status 1 lists every broken link.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// defaultTargets are the documents the CI docs job guards.
var defaultTargets = []string{"README.md", "ROADMAP.md", "docs"}

// linkRE matches markdown inline links, capturing the target. It
// deliberately ignores reference-style links (unused in this repo) and
// images (same syntax with a leading "!", still worth checking — the
// pattern matches those too since the bracket text is unconstrained).
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// fenceRE matches code-fence delimiters.
var fenceRE = regexp.MustCompile("^\\s*```")

// checkFile returns a description of every broken relative link in path.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	inFence := false
	for ln, line := range strings.Split(string(data), "\n") {
		if fenceRE.MatchString(line) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"):
				continue
			}
			// Strip in-page anchors and query strings.
			if i := strings.IndexAny(target, "#?"); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: broken link %q (%s)", path, ln+1, m[1], resolved))
			}
		}
	}
	return broken, nil
}

// expand turns a target into the markdown files it names: files pass
// through, directories are walked for *.md.
func expand(target string) ([]string, error) {
	info, err := os.Stat(target)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{target}, nil
	}
	var files []string
	err = filepath.WalkDir(target, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

func main() {
	targets := os.Args[1:]
	if len(targets) == 0 {
		targets = defaultTargets
	}
	var files []string
	for _, t := range targets {
		fs, err := expand(t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(1)
		}
		files = append(files, fs...)
	}
	broken := 0
	for _, f := range files {
		bs, err := checkFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(1)
		}
		for _, b := range bs {
			fmt.Fprintln(os.Stderr, b)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s) in %d file(s)\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d file(s) clean\n", len(files))
}
