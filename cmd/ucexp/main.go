// Command ucexp reproduces the tables and figures of "Clustering Uncertain
// Graphs" (Ceccarello et al., VLDB 2017) on the synthetic stand-in
// datasets.
//
// Usage:
//
//	ucexp -exp all                 # everything (Table 1-2, Figures 1-4)
//	ucexp -exp table1
//	ucexp -exp figures             # the quality grid behind Figures 1-3
//	ucexp -exp figure4
//	ucexp -exp table2
//	ucexp -exp figures -graphs collins,gavin -seed 7
//
// Flags tune the scale so the full reproduction also runs on small
// machines; -dblp 636751 approaches the paper's original instance (slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ucgraph/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table1, figures, figure4, table2")
		seed     = flag.Uint64("seed", 1, "random seed for datasets and algorithms")
		samples  = flag.Int("samples", 192, "possible worlds used to score clusterings")
		schedMx  = flag.Int("schedmax", 768, "cap on per-phase Monte Carlo samples in mcp/acp")
		dblp     = flag.Int("dblp", 6000, "authors in the synthetic DBLP instance")
		graphs   = flag.String("graphs", "", "comma-separated dataset subset (default all)")
		runs     = flag.Int("runs", 1, "average randomized algorithms over this many runs")
		par      = flag.Int("par", 0, "worker pool size for mcp/acp (0 = all CPUs, 1 = serial)")
		worldmem = flag.Int("worldmem", 0, "world-label memory budget per store in MiB (0 = unbounded); results are identical either way")
	)
	flag.Parse()

	cfg := experiments.Config{
		Seed:             *seed,
		MetricSamples:    *samples,
		ScheduleMax:      *schedMx,
		DBLPAuthors:      *dblp,
		Runs:             *runs,
		Parallelism:      *par,
		WorldMemBudgetMB: *worldmem,
	}
	if *graphs != "" {
		cfg.Graphs = strings.Split(*graphs, ",")
	}

	run := func(name string, f func() error) {
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "ucexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	ran := false
	if want("table1") {
		ran = true
		run("table1", func() error {
			rows, err := experiments.Table1(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable1(rows))
			return nil
		})
	}
	if want("figures") {
		ran = true
		run("figures 1-3", func() error {
			cells, err := experiments.QualityGrid(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFigure1(cells))
			fmt.Println()
			fmt.Print(experiments.FormatFigure2(cells))
			fmt.Println()
			fmt.Print(experiments.FormatFigure3(cells))
			return nil
		})
	}
	if want("figure4") {
		ran = true
		run("figure4", func() error {
			pts, err := experiments.Figure4(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFigure4(pts))
			return nil
		})
	}
	if want("table2") {
		ran = true
		run("table2", func() error {
			rows, err := experiments.Table2(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable2(rows))
			return nil
		})
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ucexp: unknown experiment %q (want all, table1, figures, figure4, table2)\n", *exp)
		os.Exit(2)
	}
}
