// Command ucluster clusters an uncertain graph read from an edge-list file
// and reports the clustering and its quality metrics.
//
// Usage:
//
//	ucluster -in graph.txt -algo mcp -k 50
//	ucluster -in graph.txt -algo acp -k 50 -depth 3
//	ucluster -in graph.txt -algo mcl -inflation 1.5
//	ucluster -in graph.txt -algo gmm -k 50
//	ucluster -in graph.txt -algo kpt
//	ucluster -in graph.txt -algo mcp -k 20 -out clusters.txt
//
// The optional -out file lists one cluster per line: the center first,
// then the members.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/core"
	"ucgraph/internal/gio"
	"ucgraph/internal/gmm"
	"ucgraph/internal/kpt"
	"ucgraph/internal/mcl"
	"ucgraph/internal/metrics"
	"ucgraph/internal/worldstore"
)

func main() {
	var (
		in        = flag.String("in", "", "input edge-list file (required)")
		algo      = flag.String("algo", "mcp", "algorithm: mcp, acp, gmm, mcl, kpt")
		k         = flag.Int("k", 10, "number of clusters (mcp, acp, gmm)")
		depth     = flag.Int("depth", -1, "path-length limit d (mcp, acp); -1 = unlimited")
		inflation = flag.Float64("inflation", 2.0, "mcl inflation parameter")
		seed      = flag.Uint64("seed", 1, "random seed")
		samples   = flag.Int("samples", 256, "worlds used to score the clustering")
		par       = flag.Int("par", 0, "worker pool size for mcp/acp (0 = all CPUs, 1 = serial)")
		worldmem  = flag.Int("worldmem", 0, "world-label memory budget per store in MiB (0 = unbounded); results are identical either way")
		eps       = flag.Float64("eps", 0, "adaptive candidate scoring: stop refining a selection once its score interval is narrower than eps (mcp, acp; 0 = fixed budget)")
		delta     = flag.Float64("delta", 0, "confidence for -eps intervals (default 0.05 when -eps is set)")
		out       = flag.String("out", "", "write clusters to this file")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ucluster: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	worldstore.SetDefaultBudget(int64(*worldmem) << 20)

	g, err := gio.LoadGraph(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucluster: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	t0 := time.Now()
	var cl *core.Clustering
	switch *algo {
	case "mcp", "acp":
		oracle := conn.NewMonteCarlo(g, *seed)
		oracle.SetParallelism(*par)
		opts := core.Options{Seed: *seed, Depth: *depth, Parallelism: *par}
		if *depth == 0 {
			opts.Depth = conn.Unlimited
		}
		if *eps > 0 {
			d := *delta
			if d == 0 {
				d = 0.05
			}
			opts.Adaptive = &core.AdaptiveScoring{Eps: *eps, Delta: d}
		}
		if *algo == "mcp" {
			cl, _, err = core.MCP(oracle, *k, opts)
		} else {
			cl, _, err = core.ACP(oracle, *k, opts)
		}
	case "gmm":
		cl, err = gmm.Cluster(g, *k, *seed)
	case "mcl":
		res := mcl.Cluster(g, mcl.Options{Inflation: *inflation})
		cl = res.Clustering
		fmt.Printf("mcl: %d iterations, converged=%v\n", res.Iterations, res.Converged)
	case "kpt":
		cl = kpt.Cluster(g, *seed)
	default:
		fmt.Fprintf(os.Stderr, "ucluster: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucluster: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(t0)

	ws := worldstore.Shared(g, *seed+0x5eed)
	pmin := metrics.PMin(cl, ws, *samples)
	pavg := metrics.PAvg(cl, ws, *samples)
	inner, outer := metrics.AVPR(cl, ws, *samples)
	fmt.Printf("algorithm   %s\n", *algo)
	fmt.Printf("clusters    %d\n", cl.K())
	fmt.Printf("covered     %d/%d\n", cl.Covered(), cl.N())
	fmt.Printf("time        %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("p_min       %.4f\n", pmin)
	fmt.Printf("p_avg       %.4f\n", pavg)
	fmt.Printf("inner-AVPR  %.4f\n", inner)
	fmt.Printf("outer-AVPR  %.4f\n", outer)

	if *out != "" {
		if err := gio.SaveClusters(*out, cl); err != nil {
			fmt.Fprintf(os.Stderr, "ucluster: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote clusters to %s\n", *out)
	}
}
