// Command ucgen generates the synthetic stand-in datasets (Collins, Gavin,
// Krogan, DBLP) as edge-list files, plus ground-truth complex files for the
// PPI networks.
//
// Usage:
//
//	ucgen -dataset krogan -out krogan.txt -truth krogan_complexes.txt
//	ucgen -dataset krogan -curated -truth mips.txt -out krogan.txt
//	ucgen -dataset dblp -authors 25000 -out dblp.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"ucgraph/internal/datasets"
	"ucgraph/internal/gio"
)

func main() {
	var (
		dataset = flag.String("dataset", "krogan", "dataset: collins, gavin, krogan, dblp")
		out     = flag.String("out", "", "output edge-list file (default <dataset>.txt)")
		truth   = flag.String("truth", "", "also write ground-truth complexes to this file")
		curated = flag.Bool("curated", false, "write the curated (MIPS-like) subset instead of all complexes (krogan only)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		authors = flag.Int("authors", 25000, "authors for the dblp dataset")
	)
	flag.Parse()

	var (
		ds  *datasets.Dataset
		err error
	)
	switch *dataset {
	case "collins":
		ds, err = datasets.Collins(*seed)
	case "gavin":
		ds, err = datasets.Gavin(*seed)
	case "krogan":
		ds, err = datasets.Krogan(*seed)
	case "dblp":
		cfg := datasets.DefaultDBLPConfig()
		cfg.Authors = *authors
		ds, err = datasets.DBLP(cfg, *seed)
	default:
		fmt.Fprintf(os.Stderr, "ucgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ucgen: %v\n", err)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = *dataset + ".txt"
	}
	if err := gio.SaveGraph(path, ds.Graph); err != nil {
		fmt.Fprintf(os.Stderr, "ucgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: wrote %d nodes, %d edges to %s\n",
		ds.Name, ds.Graph.NumNodes(), ds.Graph.NumEdges(), path)

	if *truth != "" {
		complexes := ds.Complexes
		if *curated {
			complexes = ds.Curated
		}
		if len(complexes) == 0 {
			fmt.Fprintf(os.Stderr, "ucgen: dataset %s has no %scomplexes\n",
				ds.Name, map[bool]string{true: "curated ", false: ""}[*curated])
			os.Exit(1)
		}
		if err := gio.SaveGroundTruth(*truth, complexes); err != nil {
			fmt.Fprintf(os.Stderr, "ucgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: wrote %d complexes to %s\n", ds.Name, len(complexes), *truth)
	}
}
