// Command ucserve is the long-running query daemon: it loads one or more
// uncertain graphs, owns their shared possible-world stores, and serves
// the estimator surface over HTTP so that many clients amortize one store
// (see docs/SERVER.md for the endpoint reference).
//
// Usage:
//
//	ucserve -graph social=social.txt -graph ppi=collins.txt
//	ucserve -synthetic collins -synthetic gavin -worldmem 256 -listen :8080
//	ucserve -graph g=graph.txt -seed 7 -gate 4 -par 8
//
// Each -graph flag is name=path with path a "u v p" edge-list file; each
// -synthetic flag serves a built-in dataset (collins, gavin, krogan, dblp)
// under its own name. All graphs share the -seed world-stream seed, the
// -worldmem per-store label budget (MiB, 0 = unbounded) and the -gate
// admission bound on concurrently materializing requests. -worldcache
// names a directory for the world-store disk tier: blocks evicted under
// -worldmem spill to <dir>/<graph>/ instead of being forgotten, and a
// restarted daemon (or shard worker) pointed at the same directory comes
// back hot. Answers are bit-identical with or without either flag.
//
// The same binary is both halves of a sharded deployment:
//
//	ucserve -shard-worker -synthetic collins -listen :9001
//	ucserve -shard-worker -synthetic collins -listen :9002
//	ucserve -synthetic collins -shards localhost:9001,localhost:9002
//
// A -shard-worker process serves the binary tally wire protocol of
// internal/shard (persistent streams on POST /shard/v2/stream; see
// docs/SHARD_PROTOCOL.md) over its own world store; a daemon started with
// -shards becomes the scatter/gather coordinator, fanning /v1/conn,
// /v1/cluster, /v1/knn, /v1/influence and /v1/reliability out across the
// workers with answers bit-identical to a single-process run. Workers and
// coordinator must be started with the same graphs, names and -seed (the
// coordinator's /healthz verifies and reports not-ready until every worker
// agrees). -shard-hedge arms hedged requests against stragglers,
// -shard-ping sets the membership-refresh cadence, and POST /v1/shards
// adds or removes workers at runtime without a restart.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /healthz flips to
// 503 "draining", in-flight requests — including open SSE refinement
// streams and hijacked shard v2 streams — finish under -drain-timeout,
// and only then are connections severed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ucgraph/internal/datasets"
	"ucgraph/internal/gio"
	"ucgraph/internal/obs"
	"ucgraph/internal/server"
	"ucgraph/internal/shard"
	"ucgraph/internal/worldstore"
)

func main() {
	var (
		listen     = flag.String("listen", ":8080", "address to serve HTTP on")
		seed       = flag.Uint64("seed", 1, "world-stream seed shared by all served graphs")
		par        = flag.Int("par", 0, "estimator worker pool size (0 = all CPUs, 1 = serial)")
		worldmem   = flag.Int("worldmem", 0, "world-label memory budget per store in MiB (0 = unbounded); results are identical either way")
		worldcache = flag.String("worldcache", "", "directory for the world-store disk tier: evicted blocks spill to <dir>/<graph>/ and a restart re-attaches them; results are identical either way")
		gate       = flag.Int("gate", 2, "max concurrent world-materializing requests per graph")
		samples    = flag.Int("samples", 1000, "default per-request sample budget")
		maxSamp    = flag.Int("max-samples", 1<<20, "hard cap on per-request sample budgets")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTime    = flag.Duration("max-timeout", 5*time.Minute, "hard cap on per-request deadlines")

		maxCost      = flag.Int64("max-cost", 0, "reject any single request costing more world-extensions (worlds x centers) than this (0 = package default)")
		clientConc   = flag.Int("client-concurrent", 0, "max concurrent estimating requests per client (0 = unlimited)")
		clientWorlds = flag.Int64("client-worlds-per-min", 0, "per-client world-extension budget refilled per minute (0 = unlimited)")

		shardWorker = flag.Bool("shard-worker", false, "serve the shard-worker tally protocol instead of the query API")
		shards      = flag.String("shards", "", "comma-separated shard-worker addresses; the daemon becomes the scatter/gather coordinator")

		shardHedge   = flag.Duration("shard-hedge", 0, "hedge a scatter group to a second worker after this delay (0 = no hedging); results are identical either way")
		shardPing    = flag.Duration("shard-ping", 5*time.Second, "background worker ping/membership-refresh interval (0 = on-demand only)")
		shardRetries = flag.Int("shard-retries", 0, "scatter retry rounds against re-striped workers (0 = package default)")
		shardTimeout = flag.Duration("shard-timeout", 0, "per-worker-request deadline (0 = package default)")

		shardBreaker = flag.Int("shard-breaker", 0, "consecutive tally failures tripping a worker's circuit breaker (0 = package default)")
		shardBudget  = flag.Int("shard-retry-budget", 0, "total block re-scatters one query may spend (0 = package default)")
		shardAudit   = flag.Float64("shard-audit", 0, "fraction of scatter groups re-executed on a second worker and compared byte-for-byte (0 = no auditing); results are identical either way")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long a SIGINT/SIGTERM shutdown waits for in-flight queries, SSE streams and shard streams to finish")

		version   = flag.Bool("version", false, "print build information and exit")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off); applies to coordinators and shard workers")
		slowQuery = flag.Duration("slow-query", 0, "log any query (or worker tally) slower than this as one-line JSON via slog (0 = off)")
	)
	var graphs []server.GraphConfig
	flag.Func("graph", "serve a graph from an edge-list file, as name=path (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		g, err := gio.LoadGraph(path)
		if err != nil {
			return err
		}
		graphs = append(graphs, server.GraphConfig{Name: name, Graph: g})
		return nil
	})
	// Synthetic datasets are only generated after flag.Parse, so that the
	// -seed flag applies regardless of flag order on the command line.
	var synthetics []string
	flag.Func("synthetic", "serve a built-in synthetic dataset: collins, gavin, krogan or dblp (repeatable)", func(v string) error {
		switch v {
		case "collins", "gavin", "krogan", "dblp":
			synthetics = append(synthetics, v)
			return nil
		}
		return fmt.Errorf("unknown synthetic dataset %q", v)
	})
	flag.Parse()
	if *version {
		b := obs.BuildInfo()
		fmt.Printf("ucserve %s (commit %s, %s)\n", b.Version, b.Commit, b.GoVersion)
		return
	}
	for _, v := range synthetics {
		var (
			ds  *datasets.Dataset
			err error
		)
		switch v {
		case "collins":
			ds, err = datasets.Collins(*seed)
		case "gavin":
			ds, err = datasets.Gavin(*seed)
		case "krogan":
			ds, err = datasets.Krogan(*seed)
		case "dblp":
			ds, err = datasets.DBLP(datasets.DefaultDBLPConfig(), *seed)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucserve: %s: %v\n", v, err)
			os.Exit(1)
		}
		graphs = append(graphs, server.GraphConfig{Name: v, Graph: ds.Graph})
	}

	if len(graphs) == 0 {
		fmt.Fprintln(os.Stderr, "ucserve: nothing to serve; pass at least one -graph or -synthetic")
		flag.Usage()
		os.Exit(2)
	}
	if *shardWorker && *shards != "" {
		fmt.Fprintln(os.Stderr, "ucserve: -shard-worker and -shards are mutually exclusive (a process is a worker or a coordinator, not both)")
		os.Exit(2)
	}
	worldstore.SetDefaultBudget(int64(*worldmem) << 20)
	for i := range graphs {
		graphs[i].Seed = *seed
	}
	slowLog := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	// -debug-addr serves pprof on its own listener (and mux, so the
	// profiling surface never leaks onto the query port) for both roles.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				fmt.Fprintf(os.Stderr, "ucserve: debug listener: %v\n", err)
			}
		}()
		fmt.Printf("pprof on %s/debug/pprof/\n", *debugAddr)
	}

	var handler http.Handler
	var closeServer func()
	var wrk *shard.Worker
	var srv *server.Server
	if *shardWorker {
		wgs := make([]shard.WorkerGraph, len(graphs))
		for i, gc := range graphs {
			wgs[i] = shard.WorkerGraph{Name: gc.Name, Graph: gc.Graph, Seed: gc.Seed}
		}
		var err error
		wrk, err = shard.NewWorker(wgs, shard.WorkerOptions{
			MaxWorlds:     *maxSamp,
			WorldCacheDir: *worldcache,
			SlowTally:     *slowQuery,
			SlowLog:       slowLog,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucserve: %v\n", err)
			os.Exit(1)
		}
		handler = wrk
	} else {
		var shardAddrs []string
		for _, a := range strings.Split(*shards, ",") {
			if a = strings.TrimSpace(a); a != "" {
				shardAddrs = append(shardAddrs, a)
			}
		}
		var err error
		srv, err = server.New(graphs, server.Options{
			DefaultSamples:        *samples,
			MaxSamples:            *maxSamp,
			DefaultTimeout:        *timeout,
			MaxTimeout:            *maxTime,
			Gate:                  *gate,
			Parallelism:           *par,
			Shards:                shardAddrs,
			ShardRetries:          *shardRetries,
			ShardRequestTimeout:   *shardTimeout,
			ShardHedge:            *shardHedge,
			ShardPingInterval:     *shardPing,
			ShardBreakerThreshold: *shardBreaker,
			ShardRetryBudget:      *shardBudget,
			ShardAuditFraction:    *shardAudit,
			WorldCacheDir:         *worldcache,
			MaxCost:               *maxCost,
			ClientConcurrent:      *clientConc,
			ClientWorldsPerMin:    *clientWorlds,
			SlowQuery:             *slowQuery,
			SlowLog:               slowLog,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucserve: %v\n", err)
			os.Exit(1)
		}
		if len(shardAddrs) > 0 {
			fmt.Printf("coordinating %d shard worker(s): %s\n", len(shardAddrs), strings.Join(shardAddrs, ", "))
		}
		handler = srv
		closeServer = srv.Close
	}
	role := "serving"
	if *shardWorker {
		role = "shard-worker for"
	}
	for _, gc := range graphs {
		fmt.Printf("%s %-12s %7d nodes %8d edges (seed %d)\n",
			role, gc.Name, gc.Graph.NumNodes(), gc.Graph.NumEdges(), gc.Seed)
	}

	httpSrv := &http.Server{Addr: *listen, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Printf("listening on %s\n", *listen)

	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "ucserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
		fmt.Println("draining...")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Graceful drain under -drain-timeout: /healthz flips to 503
		// "draining" immediately so load balancers route away, in-flight
		// work — regular requests, open SSE refinement streams, and the
		// hijacked shard v2 streams — runs to completion, and only then
		// are connections severed. See docs/OPERATIONS.md.
		if wrk != nil {
			// Worker: stop admitting stream requests, flush in-flight
			// tallies, sever the (hijacked) streams Shutdown cannot see.
			if err := wrk.Drain(drainCtx); err != nil {
				fmt.Fprintf(os.Stderr, "ucserve: drain: %v\n", err)
			}
		}
		if srv != nil {
			srv.StartDrain()
		}
		if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "ucserve: shutdown: %v\n", err)
			os.Exit(1)
		}
		if srv != nil {
			if err := srv.Drain(drainCtx); err != nil {
				fmt.Fprintf(os.Stderr, "ucserve: drain: %v\n", err)
			}
		}
		if closeServer != nil {
			closeServer()
		}
	}
}
