// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document on stdout, so benchmark runs can be
// committed (BENCH_conn.json, BENCH_core.json) and diffed across changes.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | go run ./cmd/benchjson -suite conn
//
// The -suite flag labels the document, so multiple benchmark files (the
// estimator-level conn suite, the algorithm-level core suite) stay
// distinguishable after archiving. Standard columns (ns/op, B/op,
// allocs/op) get dedicated fields; every other "value unit" pair —
// including b.ReportMetric custom metrics — lands in the metrics map keyed
// by unit.
//
// With -update FILE, the parsed benchmarks are merged into an existing
// report file instead of emitted on stdout: entries whose names match are
// replaced, new names are appended, and everything else in the file is
// preserved. This is how partial benchmark targets (`make bench-depth`)
// refresh their slice of BENCH_core.json without rerunning — or
// discarding — the rest of the suite.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Suite      string      `json:"suite,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-P  N  v unit  v unit ..." line;
// ok is false for non-benchmark lines.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark")}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// mergeInto folds parsed benchmarks into the report stored at path,
// replacing same-name entries and appending new ones, and rewrites the
// file in place. A missing file starts from an empty report.
func mergeInto(path string, report Report) error {
	existing := Report{Suite: report.Suite}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &existing); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	byName := make(map[string]int, len(existing.Benchmarks))
	for i, b := range existing.Benchmarks {
		byName[b.Name] = i
	}
	for _, b := range report.Benchmarks {
		if i, ok := byName[b.Name]; ok {
			existing.Benchmarks[i] = b
		} else {
			byName[b.Name] = len(existing.Benchmarks)
			existing.Benchmarks = append(existing.Benchmarks, b)
		}
	}
	// Environment fields describe the freshest run.
	existing.GoVersion = report.GoVersion
	existing.GOOS = report.GOOS
	existing.GOARCH = report.GOARCH
	out, err := json.MarshalIndent(existing, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	suite := flag.String("suite", "", "label recorded in the emitted document")
	update := flag.String("update", "", "merge results into this report file instead of writing stdout")
	flag.Parse()
	report := Report{
		Suite:     *suite,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *update != "" {
		if err := mergeInto(*update, report); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
