package worldstore

import (
	"context"
	"math"
	"sync"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
	"ucgraph/internal/sampler"
)

func mustGraph(t testing.TB, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathGraph(t testing.TB, n int, p float64) *graph.Uncertain {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1), P: p})
	}
	return mustGraph(t, n, edges)
}

// ringGraph builds a ring with a few chords, sized so that several label
// blocks exist at small block sizes.
func ringGraph(t testing.TB, n int, seed uint64) *graph.Uncertain {
	t.Helper()
	x := rng.NewXoshiro256(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(int32(i), int32((i+1)%n), 0.2+0.7*x.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/4; i++ {
		u, v := int32(x.Intn(n)), int32(x.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v, 0.1+0.8*x.Float64())
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// snapshotLabels collects the labels of worlds [0, r) into a copy.
func snapshotLabels(s *Store, r int) [][]int32 {
	out := make([][]int32, r)
	s.Scan(0, r, func(i int, lab []int32) {
		cp := make([]int32, len(lab))
		copy(cp, lab)
		out[i] = cp
	})
	return out
}

func TestScanDeterministicAndLazy(t *testing.T) {
	g := ringGraph(t, 40, 1)
	a := New(g, 7)
	b := New(g, 7)
	if st := a.Stats(); st.ResidentBlocks != 0 || st.Materializations != 0 {
		t.Fatalf("fresh store already materialized: %+v", st)
	}
	a.Grow(500)
	if st := a.Stats(); st.Materializations != 0 {
		t.Fatalf("Grow materialized blocks eagerly: %+v", st)
	}
	la := snapshotLabels(a, 500)
	lb := snapshotLabels(b, 500)
	for i := range la {
		for u := range la[i] {
			if la[i][u] != lb[i][u] {
				t.Fatalf("world %d node %d: labels differ across stores", i, u)
			}
		}
	}
	if a.Worlds() != 500 {
		t.Fatalf("Worlds() = %d, want 500", a.Worlds())
	}
	a.Grow(100)
	if a.Worlds() != 500 {
		t.Fatalf("Grow never shrinks; Worlds() = %d", a.Worlds())
	}
}

func TestBoundedModeBitIdentical(t *testing.T) {
	// The headline guarantee of bounded-memory mode: evicting and
	// recomputing label blocks returns bit-identical labels and counts.
	g := ringGraph(t, 60, 3)
	const r = 400

	unbounded := New(g, 11)
	want := snapshotLabels(unbounded, r)
	wantCounts := make([]int32, g.NumNodes())
	unbounded.CountConnectedFrom(0, 0, r, wantCounts)

	bounded := New(g, 11)
	bounded.SetBudget(1) // degenerate budget: one resident block
	if bounded.Stats().BlockWorlds >= r {
		t.Skip("graph too small for multiple blocks at this r")
	}
	// Two full passes plus interleaved re-reads force eviction churn.
	for pass := 0; pass < 2; pass++ {
		got := snapshotLabels(bounded, r)
		for i := range want {
			for u := range want[i] {
				if got[i][u] != want[i][u] {
					t.Fatalf("pass %d world %d node %d: bounded label %d != unbounded %d",
						pass, i, u, got[i][u], want[i][u])
				}
			}
		}
	}
	gotCounts := make([]int32, g.NumNodes())
	bounded.CountConnectedFrom(0, 0, r, gotCounts)
	for u := range wantCounts {
		if gotCounts[u] != wantCounts[u] {
			t.Fatalf("node %d: bounded count %d != unbounded %d", u, gotCounts[u], wantCounts[u])
		}
	}
	st := bounded.Stats()
	if st.Evictions == 0 {
		t.Fatalf("bounded run evicted nothing (stats %+v); budget not exercised", st)
	}
	if st.ResidentBlocks > 1 {
		t.Fatalf("budget of one block left %d resident", st.ResidentBlocks)
	}
}

func TestSetBudgetShrinkEvictsImmediately(t *testing.T) {
	g := ringGraph(t, 50, 5)
	s := New(g, 9)
	snapshotLabels(s, 600)
	before := s.Stats()
	if before.ResidentBlocks < 2 {
		t.Skipf("only %d blocks materialized", before.ResidentBlocks)
	}
	s.SetBudget(int64(4 * g.NumNodes() * before.BlockWorlds)) // exactly one block
	after := s.Stats()
	if after.ResidentBlocks != 1 {
		t.Fatalf("shrink left %d blocks resident", after.ResidentBlocks)
	}
}

func TestCountConnectedFromMultiMatchesSingle(t *testing.T) {
	g := ringGraph(t, 35, 13)
	s := New(g, 17)
	const hi = 300
	centers := []graph.NodeID{0, 5, 5, 12, 34, 1} // includes a duplicate
	lo := []int{0, 40, 0, 250, 7, 299}
	multi := make([][]int32, len(centers))
	for j := range multi {
		multi[j] = make([]int32, g.NumNodes())
	}
	s.CountConnectedFromMulti(centers, lo, hi, multi)
	for j, c := range centers {
		single := make([]int32, g.NumNodes())
		s.CountConnectedFrom(c, lo[j], hi, single)
		for u := range single {
			if multi[j][u] != single[u] {
				t.Fatalf("center %d (lo %d) node %d: multi %d != single %d",
					c, lo[j], u, multi[j][u], single[u])
			}
		}
	}
}

func TestCountConnectedFromMultiEmptyRanges(t *testing.T) {
	g := pathGraph(t, 6, 0.5)
	s := New(g, 1)
	counts := [][]int32{make([]int32, 6)}
	s.CountConnectedFromMulti([]graph.NodeID{2}, []int{100}, 100, counts)
	for u, c := range counts[0] {
		if c != 0 {
			t.Fatalf("empty range counted node %d: %d", u, c)
		}
	}
	s.CountConnectedFromMulti(nil, nil, 50, nil)
}

func TestEstimatePairSingleEdge(t *testing.T) {
	g := pathGraph(t, 2, 0.42)
	s := New(g, 123)
	got := s.EstimatePair(0, 1, 30000)
	sigma := math.Sqrt(0.42 * 0.58 / 30000)
	if math.Abs(got-0.42) > 6*sigma {
		t.Fatalf("EstimatePair = %v, want ~0.42", got)
	}
}

func TestEstimateFromPathProduct(t *testing.T) {
	// On a tree, Pr(u ~ v) is the product of edge probabilities on the
	// unique path. Check the estimator against the closed form.
	g := pathGraph(t, 4, 0.8)
	s := New(g, 99)
	const r = 40000
	est := s.EstimateFrom(0, r)
	for i, want := range []float64{1, 0.8, 0.64, 0.512} {
		sigma := math.Sqrt(want*(1-want)/r) + 1e-9
		if math.Abs(est[i]-want) > 6*sigma {
			t.Fatalf("est[%d] = %v, want ~%v", i, est[i], want)
		}
	}
	if est[0] != 1 {
		t.Fatalf("Pr(c ~ c) estimated as %v, want 1", est[0])
	}
}

func TestSharedReturnsSameStore(t *testing.T) {
	g := pathGraph(t, 8, 0.5)
	a := Shared(g, 42)
	b := Shared(g, 42)
	if a != b {
		t.Fatal("Shared returned two stores for one (graph, seed)")
	}
	if c := Shared(g, 43); c == a {
		t.Fatal("different seeds share a store")
	}
	g2 := pathGraph(t, 8, 0.5)
	if d := Shared(g2, 42); d == a {
		t.Fatal("different graph values share a store")
	}
}

func TestConcurrentScansShareOneMaterialization(t *testing.T) {
	g := ringGraph(t, 30, 21)
	s := New(g, 33)
	const r = 500
	want := snapshotLabels(New(g, 33), r)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Scan(0, r, func(i int, lab []int32) {
				for u := range lab {
					if lab[u] != want[i][u] {
						select {
						case errs <- "concurrent scan observed wrong labels":
						default:
						}
						return
					}
				}
			})
		}()
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	blocks := (r + s.bw - 1) / s.bw
	if st := s.Stats(); st.Materializations != uint64(blocks) {
		t.Fatalf("8 concurrent scans materialized %d blocks, want %d (one per block)",
			st.Materializations, blocks)
	}
}

func TestConnectedMatchesLabels(t *testing.T) {
	g := ringGraph(t, 20, 8)
	s := New(g, 2)
	lab := snapshotLabels(s, 50)
	for i := 0; i < 50; i += 7 {
		for u := int32(0); u < 20; u += 3 {
			for v := int32(0); v < 20; v += 5 {
				want := lab[i][u] == lab[i][v]
				if got := s.Connected(i, u, v); got != want {
					t.Fatalf("world %d (%d,%d): Connected=%v labels=%v", i, u, v, got, want)
				}
			}
		}
	}
}

func TestScanBitsMatchesImplicitWorlds(t *testing.T) {
	// Bitmap blocks are just materializations of the implicit world
	// stream: every bit must agree with World.Contains, in fresh stores
	// and after partial-prefix extension.
	g := ringGraph(t, 40, 2)
	s := New(g, 7)
	check := func(lo, hi int) {
		s.ScanBits(lo, hi, func(i int, bits []uint64) {
			w := s.World(i)
			for id := int32(0); id < int32(g.NumEdges()); id++ {
				if sampler.BitmapContains(bits, id) != w.Contains(id) {
					t.Fatalf("world %d edge %d: bitmap disagrees with coin", i, id)
				}
			}
		})
	}
	check(0, 3)   // partial prefix
	check(0, 40)  // extended prefix of the same block
	check(37, 90) // crossing a block boundary
}

func TestCountWithinMultiMatchesReachCounter(t *testing.T) {
	// The batched depth-limited counts must be bit-identical to a serial
	// per-center ReachCounter over the same (seed, range), including
	// per-center lo offsets and duplicate centers.
	g := ringGraph(t, 35, 13)
	const seed, hi = 17, 300
	s := New(g, seed)
	centers := []graph.NodeID{0, 5, 5, 12, 34, 1} // includes a duplicate
	lo := []int{0, 40, 0, 250, 7, 299}
	for _, depth := range []int{0, 1, 2, 5, -1} {
		multi := make([][]int32, len(centers))
		for j := range multi {
			multi[j] = make([]int32, g.NumNodes())
		}
		s.CountWithinMulti(centers, depth, lo, hi, multi)
		rc := sampler.NewReachCounter(g, seed)
		for j, c := range centers {
			single := make([]int32, g.NumNodes())
			rc.CountWithin(c, depth, lo[j], hi, single)
			for u := range single {
				if multi[j][u] != single[u] {
					t.Fatalf("depth %d center %d (lo %d) node %d: multi %d != single %d",
						depth, c, lo[j], u, multi[j][u], single[u])
				}
			}
		}
	}
}

// TestCountWithinMultiUsesAccumKernel pins the wiring of the
// accumulate-mode bit-sliced kernel into the production batched
// depth-limited path: on a graph small enough for the flat accumulator,
// CountWithinMulti tallies every world through accumulate mode — the
// Stats counters prove it, and the direct fallback stays untouched. A
// regression here (the kernel silently unhooked) would cost the batched
// path its main speedup without failing any correctness test, since both
// modes produce bit-identical counts.
func TestCountWithinMultiUsesAccumKernel(t *testing.T) {
	g := ringGraph(t, 35, 13)
	const seed, hi = 17, 300
	s := New(g, seed)
	centers := []graph.NodeID{0, 5, 12}
	lo := []int{0, 40, 0}
	counts := make([][]int32, len(centers))
	for j := range counts {
		counts[j] = make([]int32, g.NumNodes())
	}
	s.CountWithinMulti(centers, 2, lo, hi, counts)
	st := s.Stats()
	// The distinct-lo segments partition [0, hi) and each world is
	// accumulated exactly once, so the counter equals the range length.
	if st.AccumWorlds != hi {
		t.Fatalf("AccumWorlds = %d, want %d (accumulate-mode kernel not driving the batched path)", st.AccumWorlds, hi)
	}
	if st.AccumFlushes == 0 {
		t.Fatal("AccumFlushes = 0: accumulate mode never flushed its planes")
	}
	if st.DirectWorlds != 0 {
		t.Fatalf("DirectWorlds = %d: direct fallback used on an accumulator-sized graph", st.DirectWorlds)
	}
}

func TestCountWithinMultiEmptyRanges(t *testing.T) {
	g := pathGraph(t, 6, 0.5)
	s := New(g, 1)
	counts := [][]int32{make([]int32, 6)}
	s.CountWithinMulti([]graph.NodeID{2}, 2, []int{100}, 100, counts)
	for u, c := range counts[0] {
		if c != 0 {
			t.Fatalf("empty range counted node %d: %d", u, c)
		}
	}
	s.CountWithinMulti(nil, 2, nil, 50, nil)
}

func TestBoundedModeBitmapsBitIdentical(t *testing.T) {
	// The bounded-memory guarantee extends to the edge-bitmap family:
	// evicting and recomputing bitmap blocks returns bit-identical counts,
	// with label and bitmap blocks churning under ONE shared byte budget.
	g := ringGraph(t, 60, 3)
	const seed, hi = 11, 400
	centers := []graph.NodeID{0, 17, 33, 58}
	lo := make([]int, len(centers))
	const depth = 2

	unbounded := New(g, seed)
	want := make([][]int32, len(centers))
	for j := range want {
		want[j] = make([]int32, g.NumNodes())
	}
	unbounded.CountWithinMulti(centers, depth, lo, hi, want)

	bounded := New(g, seed)
	bounded.SetBudget(1) // degenerate budget: one resident block of any family
	for pass := 0; pass < 2; pass++ {
		got := make([][]int32, len(centers))
		for j := range got {
			got[j] = make([]int32, g.NumNodes())
		}
		bounded.CountWithinMulti(centers, depth, lo, hi, got)
		// Interleave label scans so both families compete for the budget.
		bounded.CountConnectedFrom(0, 0, hi, make([]int32, g.NumNodes()))
		for j := range want {
			for u := range want[j] {
				if got[j][u] != want[j][u] {
					t.Fatalf("pass %d center %d node %d: bounded %d != unbounded %d",
						pass, centers[j], u, got[j][u], want[j][u])
				}
			}
		}
	}
	st := bounded.Stats()
	if st.Evictions == 0 {
		t.Fatalf("bounded run evicted nothing (stats %+v)", st)
	}
	if st.ResidentBlocks > 1 {
		t.Fatalf("budget of one block left %d resident (stats %+v)", st.ResidentBlocks, st)
	}
}

func TestStatsSplitsFamilies(t *testing.T) {
	g := ringGraph(t, 50, 5)
	s := New(g, 9)
	s.Scan(0, 10, func(int, []int32) {})
	s.ScanBits(0, 10, func(int, []uint64) {})
	st := s.Stats()
	if st.ResidentLabelBlocks != 1 || st.ResidentBitmapBlocks != 1 {
		t.Fatalf("family split wrong: %+v", st)
	}
	if st.ResidentBlocks != 2 {
		t.Fatalf("ResidentBlocks must cover both families: %+v", st)
	}
	if st.ResidentBytes != s.blockBytes(famLabels)+s.blockBytes(famBits) {
		t.Fatalf("ResidentBytes %d != sum of nominal block sizes", st.ResidentBytes)
	}
}

func BenchmarkScan(b *testing.B) {
	x := rng.NewXoshiro256(1)
	gb := graph.NewBuilder(1000)
	for i := 0; i < 1000; i++ {
		_ = gb.AddEdge(int32(i), int32((i+1)%1000), 0.5)
		_ = gb.AddEdge(int32(i), int32((i+37)%1000), 0.3+0.4*x.Float64())
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	s := New(g, 1)
	snapshotLabels(s, 256) // materialize outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		s.Scan(0, 256, func(_ int, lab []int32) { total += int(lab[0]) })
	}
}

func TestStatsHitsAndRecomputes(t *testing.T) {
	g := ringGraph(t, 4096, 11) // large n -> minBlockWorlds-sized blocks
	s := New(g, 1)
	bw := s.Stats().BlockWorlds

	// First pass over two blocks: two materializations, zero hits.
	s.Scan(0, 2*bw, func(int, []int32) {})
	st := s.Stats()
	if st.Materializations != 2 || st.Hits != 0 || st.Recomputes != 0 {
		t.Fatalf("after cold scan: %+v", st)
	}

	// Second pass: both blocks resident, two hits.
	s.Scan(0, 2*bw, func(int, []int32) {})
	if st = s.Stats(); st.Hits != 2 || st.Materializations != 2 {
		t.Fatalf("after warm scan: %+v", st)
	}

	// Shrink to one block, touch the evicted one again: a recompute.
	s.SetBudget(int64(4 * s.n * bw))
	if st = s.Stats(); st.Evictions != 1 {
		t.Fatalf("after shrink: %+v", st)
	}
	s.Scan(0, bw, func(int, []int32) {})
	st = s.Stats()
	if st.Recomputes != 1 {
		t.Fatalf("after re-touch: %+v", st)
	}
	if st.Materializations != 3 {
		t.Fatalf("recomputes must count inside materializations: %+v", st)
	}
}

func TestScanCtxCancellation(t *testing.T) {
	g := ringGraph(t, 4096, 12)
	s := New(g, 1)
	bw := s.Stats().BlockWorlds

	// A cancelled context stops the scan at a block boundary.
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	err := s.ScanCtx(ctx, 0, 3*bw, func(i int, _ []int32) {
		seen++
		if i == 0 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if seen == 0 || seen > bw {
		t.Fatalf("scan should stop after the first block, saw %d worlds", seen)
	}

	// A live context delivers everything and reports nil.
	seen = 0
	if err := s.ScanCtx(context.Background(), 0, 3*bw, func(int, []int32) { seen++ }); err != nil {
		t.Fatal(err)
	}
	if seen != 3*bw {
		t.Fatalf("full scan saw %d of %d worlds", seen, 3*bw)
	}
}

// TestBitsResident: the residency probe tracks bitmap-block
// materialization, prefix extension and eviction — and never reports a
// range the store could not answer warm.
func TestBitsResident(t *testing.T) {
	g := ringGraph(t, 48, 3)
	s := New(g, 5)
	bw := s.BlockWorlds()
	if s.BitsResident(0, 1) {
		t.Fatal("fresh store should have no resident bitmaps")
	}
	// Materialize a partial first block.
	s.ScanBits(0, bw/2, func(int, []uint64) {})
	if !s.BitsResident(0, bw/2) {
		t.Fatal("materialized prefix should be resident")
	}
	if s.BitsResident(0, bw/2+1) || s.BitsResident(bw, bw+1) {
		t.Fatal("unmaterialized worlds reported resident")
	}
	// Extend across two full blocks.
	s.ScanBits(0, 2*bw, func(int, []uint64) {})
	if !s.BitsResident(bw/3, 2*bw) {
		t.Fatal("full range should be resident")
	}
	// Label blocks must not satisfy a bitmap probe.
	s2 := New(g, 5)
	s2.Scan(0, bw, func(int, []int32) {})
	if s2.BitsResident(0, bw) {
		t.Fatal("label blocks satisfied a bitmap residency probe")
	}
	// Eviction clears residency.
	s.SetBudget(1)
	if s.BitsResident(0, 2*bw) {
		t.Fatal("evicted blocks reported resident")
	}
	// Degenerate ranges are never "resident".
	if s.BitsResident(5, 5) || s.BitsResident(-3, 0) {
		t.Fatal("empty range reported resident")
	}
}
