package worldstore

import (
	"os"
	"path/filepath"
	"testing"

	"ucgraph/internal/graph"
)

// The disk-tier invariants: spilled blocks are bit-identical to computed
// ones, a persisted cache directory warm-restarts a fresh store, and a
// truncated or bit-flipped payload is detected, dropped and recomputed —
// never served wrong.

// snapshotBits collects the edge bitmaps of worlds [0, r) into a copy.
func snapshotBits(s *Store, r int) [][]uint64 {
	out := make([][]uint64, r)
	s.ScanBits(0, r, func(i int, bits []uint64) {
		cp := make([]uint64, len(bits))
		copy(cp, bits)
		out[i] = cp
	})
	return out
}

// countsWithin runs a small CountWithinMulti batch and returns the counts.
func countsWithin(s *Store, cs []graph.NodeID, depth, r int) [][]int32 {
	counts := make([][]int32, len(cs))
	lo := make([]int, len(cs))
	for j := range cs {
		counts[j] = make([]int32, s.NumNodes())
	}
	s.CountWithinMulti(cs, depth, lo, r, counts)
	return counts
}

func sameLabels(t *testing.T, tag string, want, got [][]int32) {
	t.Helper()
	for i := range want {
		for u := range want[i] {
			if got[i][u] != want[i][u] {
				t.Fatalf("%s: world %d node %d: label %d != %d", tag, i, u, got[i][u], want[i][u])
			}
		}
	}
}

func sameCounts(t *testing.T, tag string, want, got [][]int32) {
	t.Helper()
	for j := range want {
		for u := range want[j] {
			if got[j][u] != want[j][u] {
				t.Fatalf("%s: center %d node %d: count %d != %d", tag, j, u, got[j][u], want[j][u])
			}
		}
	}
}

// TestSpillBitIdenticalAcrossTiers: the same seed yields bit-identical
// labels and tallies whether misses are served from RAM (unbounded), from
// the disk tier (bounded + cache), or by recomputation (bounded, no
// cache) — the tier only changes the price of a miss.
func TestSpillBitIdenticalAcrossTiers(t *testing.T) {
	g := ringGraph(t, 60, 3)
	const seed, r, depth = 11, 400, 2
	cs := []graph.NodeID{0, 7, 31}

	ref := New(g, seed)
	wantLabels := snapshotLabels(ref, r)
	wantWithin := countsWithin(ref, cs, depth, r)

	spilled := New(g, seed)
	if err := spilled.AttachCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	spilled.SetBudget(1) // degenerate budget: every block evicts (and spills) immediately
	for pass := 0; pass < 2; pass++ {
		sameLabels(t, "spilled labels", wantLabels, snapshotLabels(spilled, r))
		sameCounts(t, "spilled within", wantWithin, countsWithin(spilled, cs, depth, r))
	}
	st := spilled.Stats()
	if st.SpillWrites == 0 {
		t.Fatalf("bounded store with a cache never spilled: %+v", st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("second pass never hit the disk tier: %+v", st)
	}
	if st.DiskBytes == 0 {
		t.Fatalf("spilled cache reports no live bytes: %+v", st)
	}
	if st.CorruptDropped != 0 || st.PostSpillRecomputes != 0 {
		t.Fatalf("healthy cache dropped entries: %+v", st)
	}
	if st.Recomputes != st.ColdRecomputes+st.PostSpillRecomputes {
		t.Fatalf("recompute split does not add up: %+v", st)
	}

	recomputed := New(g, seed)
	recomputed.SetBudget(1)
	sameLabels(t, "recomputed labels", wantLabels, snapshotLabels(recomputed, r))
	sameCounts(t, "recomputed within", wantWithin, countsWithin(recomputed, cs, depth, r))
	if st := recomputed.Stats(); st.DiskHits != 0 || st.Recomputes == 0 {
		t.Fatalf("cacheless bounded store should recompute, not disk-hit: %+v", st)
	}
}

// spillAll materializes worlds [0, r) of both families and then forces
// every block out to the disk tier via a degenerate budget.
func spillAll(t *testing.T, s *Store, r int) {
	t.Helper()
	snapshotLabels(s, r)
	snapshotBits(s, r)
	s.SetBudget(1)
	if st := s.Stats(); st.SpillWrites == 0 {
		t.Fatalf("nothing spilled: %+v", st)
	}
	s.SetBudget(0) // lift the bound again; the spilled copies remain
}

// TestSpillWarmRestart: a fresh store attached to the cache directory a
// previous store persisted serves its blocks from disk — bit-identical,
// with zero recomputes — which is the warm-restart contract of -worldcache.
func TestSpillWarmRestart(t *testing.T) {
	g := ringGraph(t, 60, 4)
	const seed, r = 5, 300
	dir := t.TempDir()

	first := New(g, seed)
	if err := first.AttachCache(dir); err != nil {
		t.Fatal(err)
	}
	wantLabels := snapshotLabels(first, r)
	wantBits := snapshotBits(first, r)
	spillAll(t, first, r)

	second := New(g, seed)
	if err := second.AttachCache(dir); err != nil {
		t.Fatalf("warm re-attach failed: %v", err)
	}
	sameLabels(t, "restart labels", wantLabels, snapshotLabels(second, r))
	gotBits := snapshotBits(second, r)
	for i := range wantBits {
		for w := range wantBits[i] {
			if gotBits[i][w] != wantBits[i][w] {
				t.Fatalf("restart bits: world %d word %d: %#x != %#x", i, w, gotBits[i][w], wantBits[i][w])
			}
		}
	}
	st := second.Stats()
	if st.DiskHits == 0 {
		t.Fatalf("warm restart never hit the disk tier: %+v", st)
	}
	if st.Recomputes != 0 {
		t.Fatalf("warm restart recomputed %d blocks with a full cache: %+v", st.Recomputes, st)
	}
	if st.CacheDir != dir {
		t.Fatalf("CacheDir = %q, want %q", st.CacheDir, dir)
	}

	// A store with a different identity must reject the directory instead
	// of serving another stream's worlds.
	if err := New(g, seed+1).AttachCache(dir); err == nil {
		t.Fatal("cache for seed 5 attached to a seed-6 store")
	}
	other := ringGraph(t, 61, 4)
	if err := New(other, seed).AttachCache(dir); err == nil {
		t.Fatal("cache attached to a store over a different graph")
	}
}

// TestSpillCorruptPayloadRecomputed: a bit flip in a spilled payload fails
// the load-time checksum; the entry is dropped and the block recomputed,
// so answers stay exact and the corruption is visible in the counters.
func TestSpillCorruptPayloadRecomputed(t *testing.T) {
	g := ringGraph(t, 60, 6)
	const seed, r = 9, 300
	dir := t.TempDir()

	want := snapshotLabels(New(g, seed), r)

	first := New(g, seed)
	if err := first.AttachCache(dir); err != nil {
		t.Fatal(err)
	}
	snapshotLabels(first, r)
	first.SetBudget(1)

	seg := filepath.Join(dir, "labels.seg")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	second := New(g, seed)
	if err := second.AttachCache(dir); err != nil {
		t.Fatal(err)
	}
	sameLabels(t, "post-corruption labels", want, snapshotLabels(second, r))
	st := second.Stats()
	if st.CorruptDropped == 0 {
		t.Fatalf("bit flip went undetected: %+v", st)
	}
	if st.PostSpillRecomputes == 0 {
		t.Fatalf("corrupt block was not recomputed: %+v", st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("intact blocks should still load from disk: %+v", st)
	}
	if st.Recomputes != st.ColdRecomputes+st.PostSpillRecomputes {
		t.Fatalf("recompute split does not add up: %+v", st)
	}
}

// TestSpillTruncatedSegmentDroppedAtAttach: a segment file cut short
// behind the directory's back (crash, partial copy) invalidates the
// entries whose extents outrun it at attach time; the store recomputes
// those blocks and serves exact answers.
func TestSpillTruncatedSegmentDroppedAtAttach(t *testing.T) {
	g := ringGraph(t, 60, 8)
	const seed, r = 13, 300
	dir := t.TempDir()

	want := snapshotLabels(New(g, seed), r)

	first := New(g, seed)
	if err := first.AttachCache(dir); err != nil {
		t.Fatal(err)
	}
	snapshotLabels(first, r)
	first.SetBudget(1)

	seg := filepath.Join(dir, "labels.seg")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	second := New(g, seed)
	if err := second.AttachCache(dir); err != nil {
		t.Fatal(err)
	}
	if st := second.Stats(); st.CorruptDropped == 0 {
		t.Fatalf("truncated segment dropped no entries at attach: %+v", st)
	}
	sameLabels(t, "post-truncation labels", want, snapshotLabels(second, r))
}

// TestSpillTornDirectoryTail: a torn write at the tail of the directory
// log (half a record) is truncated away on replay; the records before it
// stay live.
func TestSpillTornDirectoryTail(t *testing.T) {
	g := ringGraph(t, 60, 10)
	const seed, r = 17, 300
	dir := t.TempDir()

	first := New(g, seed)
	if err := first.AttachCache(dir); err != nil {
		t.Fatal(err)
	}
	snapshotLabels(first, r)
	first.SetBudget(1)

	log := filepath.Join(dir, "cache.dir")
	fi, err := os.Stat(log)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(log, fi.Size()-spillRecordSize/2); err != nil {
		t.Fatal(err)
	}

	second := New(g, seed)
	if err := second.AttachCache(dir); err != nil {
		t.Fatal(err)
	}
	want := snapshotLabels(New(g, seed), r)
	sameLabels(t, "torn-tail labels", want, snapshotLabels(second, r))
	if st := second.Stats(); st.DiskHits == 0 {
		t.Fatalf("records before the torn tail should still serve: %+v", st)
	}
}

// TestAttachCacheOnce: a store accepts at most one cache directory.
func TestAttachCacheOnce(t *testing.T) {
	g := ringGraph(t, 40, 2)
	s := New(g, 3)
	if err := s.AttachCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachCache(t.TempDir()); err == nil {
		t.Fatal("second AttachCache succeeded")
	}
}

// TestReleaseAfterShrinkRestoresBudget: a pinned block survives a
// concurrent SetBudget shrink (eviction must skip it), but the moment its
// last pin drops the store evicts back under the budget — ResidentBytes
// does not drift above the bound beyond the pin's lifetime.
func TestReleaseAfterShrinkRestoresBudget(t *testing.T) {
	g := ringGraph(t, 60, 5)
	s := New(g, 21)
	bw := s.BlockWorlds()
	snapshotLabels(s, 3*bw) // several resident blocks

	b, _ := s.acquire(0, 1) // pin block 0
	budget := s.blockBytes(famLabels) / 2
	s.SetBudget(budget)
	if st := s.Stats(); st.ResidentBytes <= budget {
		t.Fatalf("pinned block should hold ResidentBytes (%d) above the shrunk budget (%d)",
			st.ResidentBytes, budget)
	} else if st.ResidentBlocks != 1 {
		t.Fatalf("shrink should have evicted every unpinned block: %+v", st)
	}
	s.release(b)
	if st := s.Stats(); st.ResidentBytes > budget {
		t.Fatalf("ResidentBytes %d still above budget %d after the pin released", st.ResidentBytes, budget)
	}
}

// TestBitsWarmDiskTier: BitsWarm extends the residency probe to spilled
// bitmap blocks — warm after eviction with a cache attached, cold without.
func TestBitsWarmDiskTier(t *testing.T) {
	g := ringGraph(t, 60, 7)
	const seed = 25
	cold := New(g, seed)
	bw := cold.BlockWorlds()
	snapshotBits(cold, bw)
	if !cold.BitsWarm(0, bw) {
		t.Fatal("resident bitmap block should be warm")
	}
	cold.SetBudget(1)
	if cold.BitsWarm(0, bw) {
		t.Fatal("evicted bitmap block with no cache should be cold")
	}

	spilled := New(g, seed)
	if err := spilled.AttachCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	snapshotBits(spilled, bw)
	spilled.SetBudget(1)
	if spilled.BitsResident(0, bw) {
		t.Fatal("evicted block should not report RAM-resident")
	}
	if !spilled.BitsWarm(0, bw) {
		t.Fatal("spilled bitmap block should be warm")
	}
	if spilled.BitsWarm(0, 2*bw) {
		t.Fatal("worlds never materialized should not be warm")
	}
}
