//go:build unix

package worldstore

import (
	"os"
	"syscall"
)

// mmapView is a read-only memory mapping of the leading size bytes of a
// segment file. The zero value (no mapping) is valid and empty.
type mmapView struct {
	data []byte
}

// mmapFile maps the first size bytes of f read-only, shared with the page
// cache, so appended bytes written through the file descriptor before the
// mapping was taken are visible. A failed or zero-length mapping returns
// the empty view and the caller falls back to pread.
func mmapFile(f *os.File, size int64) mmapView {
	if size <= 0 || int64(int(size)) != size {
		return mmapView{}
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return mmapView{}
	}
	return mmapView{data: data}
}

func (m *mmapView) close() {
	if m.data != nil {
		_ = syscall.Munmap(m.data)
		m.data = nil
	}
}
