//go:build !unix

package worldstore

import "os"

// mmapView is the no-mmap fallback: always empty, so segment reads use
// pread (os.File.ReadAt) instead.
type mmapView struct {
	data []byte
}

func mmapFile(_ *os.File, _ int64) mmapView { return mmapView{} }

func (m *mmapView) close() { m.data = nil }
