package worldstore

import (
	"testing"

	"ucgraph/internal/datasets"
	"ucgraph/internal/graph"
)

// Paper-scale coverage for the tiered store: the DBLP-shaped instances of
// Section 5 are the workloads the disk tier exists for — label and bitmap
// blocks that cannot all stay resident. The smoke test runs a scaled-down
// DBLP through a budget-squeezed, cache-attached store and demands
// bit-identical worlds; the benchmark materializes worlds of the full
// 636751-author instance for BENCH_store.json (make bench-dblp).

// dblpGraph generates the DBLP co-authorship emulation at the given author
// count and returns its largest connected component.
func dblpGraph(tb testing.TB, authors int) *graph.Uncertain {
	tb.Helper()
	ds, err := datasets.DBLP(datasets.DBLPConfig{
		Authors:         authors,
		PapersPerAuthor: 1.45,
		CommunitySize:   55,
		CrossCommunity:  0.12,
	}, 41)
	if err != nil {
		tb.Fatal(err)
	}
	return ds.Graph
}

// TestPaperScaleTieredSmoke drives a DBLP-shaped graph through the full
// tier order — spill on eviction, reload from disk, recompute on miss —
// and checks the worlds stay bit-identical to an unbounded RAM store.
func TestPaperScaleTieredSmoke(t *testing.T) {
	authors := 20000
	if testing.Short() {
		authors = 4000
	}
	g := dblpGraph(t, authors)
	const seed = 23

	ref := New(g, seed)
	// Span several blocks (plus a partial tail) so a two-block budget has
	// to evict, spill and reload no matter how many worlds fit per block.
	worlds := 4*ref.BlockWorlds() + 3
	refLabels := make([][]int32, 0, worlds)
	ref.Scan(0, worlds, func(_ int, labels []int32) {
		refLabels = append(refLabels, append([]int32(nil), labels...))
	})
	refBits := make([][]uint64, 0, worlds)
	ref.ScanBits(0, worlds, func(_ int, bits []uint64) {
		refBits = append(refBits, append([]uint64(nil), bits...))
	})

	tiered := New(g, seed)
	if err := tiered.AttachCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	// Two blocks' worth of budget: the scan constantly evicts, spills and
	// reloads instead of settling into residency.
	tiered.SetBudget(2 * int64(g.NumNodes()) * 4 * int64(tiered.BlockWorlds()))
	for pass := 0; pass < 2; pass++ {
		i := 0
		tiered.Scan(0, worlds, func(_ int, labels []int32) {
			for v, l := range labels {
				if l != refLabels[i][v] {
					t.Fatalf("pass %d world %d node %d: label %d != ref %d", pass, i, v, l, refLabels[i][v])
				}
			}
			i++
		})
		i = 0
		tiered.ScanBits(0, worlds, func(_ int, bits []uint64) {
			for w, word := range bits {
				if word != refBits[i][w] {
					t.Fatalf("pass %d world %d word %d: bits %x != ref %x", pass, i, w, word, refBits[i][w])
				}
			}
			i++
		})
	}
	st := tiered.Stats()
	if st.SpillWrites == 0 || st.DiskHits == 0 {
		t.Fatalf("tiered scan never exercised the disk tier: %+v", st)
	}
	if st.CorruptDropped != 0 {
		t.Fatalf("clean cache reported corruption: %+v", st)
	}
}

// BenchmarkDBLPPaperScale materializes component-label worlds of the
// paper's full-size DBLP instance (636751 authors before LCC restriction)
// through a disk-backed store whose budget holds a single block — the
// single-process paper-scale configuration -worldmem/-worldcache are sized
// for. Generation cost is paid once outside the timer; each op streams one
// block's worth of fresh worlds and re-reads one spilled block warm.
func BenchmarkDBLPPaperScale(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale DBLP generation skipped with -short")
	}
	g := dblpGraph(b, 636751)
	s := New(g, 23)
	if err := s.AttachCache(b.TempDir()); err != nil {
		b.Fatal(err)
	}
	bw := s.BlockWorlds()
	s.SetBudget(int64(g.NumNodes()) * 4 * int64(bw))
	s.Scan(0, bw, func(int, []int32) {}) // materialize block 0...
	s.SetBudget(1)                       // ...and force it through the spill path
	s.SetBudget(int64(g.NumNodes()) * 4 * int64(bw))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i + 1) * bw
		s.Scan(lo, lo+bw, func(int, []int32) {}) // cold: hash + union-find
		s.Scan(0, bw, func(int, []int32) {})     // spilled block, warm reload
	}
	b.StopTimer()
	st := s.Stats()
	if st.DiskHits == 0 {
		b.Fatalf("paper-scale scan never hit the disk tier: %+v", st)
	}
	b.ReportMetric(float64(2*bw), "worlds/op")
	b.ReportMetric(float64(g.NumNodes()), "nodes")
}
