// Package worldstore is the shared possible-world substrate of the library:
// one memory-bounded store of sampled worlds per (graph, seed), reused by
// every consumer — the Monte Carlo connection-probability oracle, k-NN
// distance distributions, influence spread, representative-world extraction
// and the reliability metrics — so that a run pays the sampling and
// label-computation bill once instead of once per subsystem.
//
// A Store owns the implicit world stream of its (graph, seed) pair: world i
// is defined by stateless hash coins (see internal/rng and sampler.World),
// so any world can be re-materialized at any time. On top of the stream the
// store lazily materializes per-world connected-component labels into
// block/columnar storage: worlds are grouped into fixed-size blocks, and
// within a block labels are stored world-major in one contiguous slice, so
// scanning a block touches memory sequentially. Blocks are materialized on
// first access and, in bounded-memory mode, evicted least-recently-used and
// recomputed on the next access. Because labels are a pure function of
// (graph, seed, world index), eviction and recomputation never change an
// estimate: bounded and unbounded runs are bit-identical.
//
// Stores are safe for concurrent use by multiple consumers: block
// materialization is coordinated so exactly one goroutine computes a block
// while others wait, readers pin blocks against eviction for the duration
// of a scan, and the logical stream length only grows.
//
// The package-level Shared registry hands out one Store per (graph, seed)
// so independent consumers — built at different layers of the library —
// transparently converge on the same worlds. The registry holds weak
// references only: it neither keeps graphs nor stores alive.
package worldstore

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"weak"

	"ucgraph/internal/graph"
	"ucgraph/internal/sampler"
)

// targetBlockBytes sizes label blocks: blocks hold as many worlds as fit in
// roughly this many bytes of labels, clamped to [minBlockWorlds,
// maxBlockWorlds]. Block size is a performance knob only — estimates never
// depend on it, because each world's labels are computed independently.
const (
	targetBlockBytes = 1 << 20
	minBlockWorlds   = 8
	maxBlockWorlds   = 256
)

// Store is a memory-bounded cache of per-world component labels over the
// deterministic world stream of one (graph, seed) pair. The zero value is
// invalid; use New or Shared.
type Store struct {
	g    *graph.Uncertain
	seed uint64
	n    int
	bw   int // worlds per block

	length atomic.Int64 // logical stream length: max world count requested

	mu           sync.Mutex
	blocks       map[int]*block
	built        map[int]bool // block indices ever materialized (recompute detection)
	maxResident  int          // max materialized blocks; <= 0 means unbounded
	clock        uint64
	hits         uint64
	materialized uint64
	recomputed   uint64
	evicted      uint64
}

// block is one materialized run of up to bw consecutive worlds. labels
// holds the component labels world-major: world (base + i) occupies
// labels[i*n : (i+1)*n]. Blocks fill front to back: worlds [0, done) are
// materialized, and a reader needing more extends the prefix under mu —
// so a request for a few worlds never pays for the whole block, while a
// full scan still enjoys one contiguous, cache-friendly buffer.
// Materialized prefixes are immutable: extension appends, and when it
// must reallocate, earlier captured buffers keep their (identical,
// immutable) prefix — see acquire.
type block struct {
	idx     int
	mu      sync.Mutex // serializes prefix extension
	done    int        // worlds [0, done) of the block are materialized
	labels  []int32    // grows toward bw*n; valid up to done*n
	pins    int        // readers currently holding the block; guarded by Store.mu
	lastUse uint64
}

// Stats reports store observability counters. It is the snapshot the
// server daemon's /statsz endpoint exposes per graph.
type Stats struct {
	// Worlds is the logical stream length (max worlds any consumer asked for).
	Worlds int
	// ResidentBlocks is the number of label blocks currently materialized.
	ResidentBlocks int
	// BlockWorlds is the number of worlds per block.
	BlockWorlds int
	// Hits counts block acquisitions answered by an already-resident block
	// (no label computation needed).
	Hits uint64
	// Materializations counts block computations, including recomputations
	// after eviction.
	Materializations uint64
	// Recomputes counts the subset of Materializations that rebuilt a block
	// previously dropped by eviction — the price paid for staying under the
	// memory budget.
	Recomputes uint64
	// Evictions counts blocks dropped under memory pressure.
	Evictions uint64
}

// defaultBudget is applied to stores created after SetDefaultBudget.
var defaultBudget atomic.Int64

// SetDefaultBudget sets the label-memory budget, in bytes, applied to
// stores created afterwards (0 restores the unbounded default). Existing
// stores are unaffected; use Store.SetBudget for those. This is the hook
// the CLI memory-budget flags use.
func SetDefaultBudget(bytes int64) { defaultBudget.Store(bytes) }

// New returns a private store over g's possible worlds under seed. Most
// callers want Shared instead, so that consumers of the same (graph, seed)
// converge on the same materialized worlds.
func New(g *graph.Uncertain, seed uint64) *Store {
	n := g.NumNodes()
	bw := targetBlockBytes / (4 * n)
	if bw < minBlockWorlds {
		bw = minBlockWorlds
	}
	if bw > maxBlockWorlds {
		bw = maxBlockWorlds
	}
	s := &Store{
		g:      g,
		seed:   seed,
		n:      n,
		bw:     bw,
		blocks: make(map[int]*block),
		built:  make(map[int]bool),
	}
	if b := defaultBudget.Load(); b > 0 {
		s.SetBudget(b)
	}
	return s
}

// registryKey identifies a shared store. The graph is held weakly so the
// registry does not extend its lifetime.
type registryKey struct {
	g    weak.Pointer[graph.Uncertain]
	seed uint64
}

var (
	registryMu sync.Mutex
	registry   = make(map[registryKey]weak.Pointer[Store])
)

// Shared returns the store for (g, seed), creating it on first use. All
// callers passing the same graph value and seed receive the same store, so
// the world stream — and the label blocks materialized over it — are shared
// across subsystems. The registry holds only weak references: once every
// consumer drops a store it is garbage collected (taking its blocks with
// it) and a later Shared call builds a fresh, deterministic replacement.
func Shared(g *graph.Uncertain, seed uint64) *Store {
	key := registryKey{g: weak.Make(g), seed: seed}
	registryMu.Lock()
	defer registryMu.Unlock()
	if wp, ok := registry[key]; ok {
		if s := wp.Value(); s != nil {
			return s
		}
	}
	s := New(g, seed)
	registry[key] = weak.Make(s)
	runtime.AddCleanup(s, func(key registryKey) {
		registryMu.Lock()
		if wp, ok := registry[key]; ok && wp.Value() == nil {
			delete(registry, key)
		}
		registryMu.Unlock()
	}, key)
	return s
}

// Graph returns the underlying graph.
func (s *Store) Graph() *graph.Uncertain { return s.g }

// Seed returns the world-stream seed.
func (s *Store) Seed() uint64 { return s.seed }

// NumNodes returns the node count of the underlying graph.
func (s *Store) NumNodes() int { return s.n }

// World returns the implicit view of world i: the same world the label
// blocks index, usable for edge queries and per-world BFS.
func (s *Store) World(i int) sampler.World {
	return sampler.World{G: s.g, Seed: s.seed, Index: uint64(i)}
}

// Grow raises the logical stream length to at least r worlds. Labels are
// materialized lazily, block by block, on first scan; Grow itself is cheap.
// The stream never shrinks.
func (s *Store) Grow(r int) {
	for {
		cur := s.length.Load()
		if int64(r) <= cur || s.length.CompareAndSwap(cur, int64(r)) {
			return
		}
	}
}

// Worlds returns the logical stream length: the largest world count any
// consumer has requested so far.
func (s *Store) Worlds() int { return int(s.length.Load()) }

// SetBudget bounds the memory spent on materialized label blocks to
// roughly bytes (at least one block is always allowed, so scans make
// progress). bytes <= 0 removes the bound. Shrinking evicts immediately.
// Estimates are identical in bounded and unbounded mode: evicted blocks
// are recomputed, not approximated.
func (s *Store) SetBudget(bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bytes <= 0 {
		s.maxResident = 0
		return
	}
	blockBytes := int64(4 * s.n * s.bw)
	max := int(bytes / blockBytes)
	if max < 1 {
		max = 1
	}
	s.maxResident = max
	s.evictLocked(s.maxResident)
}

// Stats returns observability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Worlds:           int(s.length.Load()),
		ResidentBlocks:   len(s.blocks),
		BlockWorlds:      s.bw,
		Hits:             s.hits,
		Materializations: s.materialized,
		Recomputes:       s.recomputed,
		Evictions:        s.evicted,
	}
}

// acquire returns block bi with at least the first need worlds
// materialized, pinned against eviction, along with the label buffer
// captured under the block's mutex. Prefix extension serializes on that
// mutex, so exactly one goroutine computes each world while later
// arrivals reuse it. The buffer is sized to the materialized prefix
// (doubling up to the full block), so a request for a few worlds never
// allocates the whole block. A reallocation during a later extension
// leaves earlier captured buffers intact — their materialized prefix is
// immutable — which is why callers must read through the returned slice,
// not through b.labels. Callers must release the block.
func (s *Store) acquire(bi, need int) (*block, []int32) {
	s.mu.Lock()
	b, ok := s.blocks[bi]
	if !ok {
		b = &block{idx: bi}
		if s.maxResident > 0 {
			s.evictLocked(s.maxResident - 1)
		}
		s.blocks[bi] = b
		s.materialized++
		if s.built[bi] {
			s.recomputed++
		} else {
			s.built[bi] = true
		}
	} else {
		s.hits++
	}
	b.pins++
	s.clock++
	b.lastUse = s.clock
	s.mu.Unlock()

	b.mu.Lock()
	if b.done < need {
		if len(b.labels) < need*s.n {
			worlds := 2 * b.done
			if worlds < need {
				worlds = need
			}
			if worlds > s.bw {
				worlds = s.bw
			}
			grown := make([]int32, worlds*s.n)
			copy(grown, b.labels[:b.done*s.n])
			b.labels = grown
		}
		s.computeWorlds(bi, b.done, need, b.labels)
		b.done = need
	}
	labels := b.labels
	b.mu.Unlock()
	return b, labels
}

// matSem bounds the extra goroutines spawned by concurrent block
// materializations across ALL stores in the process, so consumers that
// already fan block accesses out (the oracle's sharded tally workers) do
// not multiply into workers^2 goroutines. A token shortage degrades to
// fewer, larger shares of the block — never to blocking.
var (
	matSemOnce sync.Once
	matSem     chan struct{}
)

func materializeSem() chan struct{} {
	matSemOnce.Do(func() {
		capacity := runtime.GOMAXPROCS(0)
		matSem = make(chan struct{}, capacity)
		for i := 0; i < capacity; i++ {
			matSem <- struct{}{}
		}
	})
	return matSem
}

// computeWorlds materializes worlds [lo, hi) of block bi into labels,
// fanning the worlds out across available workers. Each world's labels are
// computed independently into a disjoint slice of the buffer, so the bits
// do not depend on the worker count.
func (s *Store) computeWorlds(bi, lo, hi int, labels []int32) {
	base := bi * s.bw
	compute := func(uf *graph.UnionFind, i int) {
		w := sampler.World{G: s.g, Seed: s.seed, Index: uint64(base + i)}
		w.ComponentLabels(uf, labels[i*s.n:(i+1)*s.n])
	}
	span := hi - lo
	workers := runtime.GOMAXPROCS(0)
	if workers > span {
		workers = span
	}
	extra := 0
	if workers > 1 {
		sem := materializeSem()
		for extra < workers-1 {
			select {
			case <-sem:
				extra++
				continue
			default:
			}
			break
		}
	}
	if extra == 0 {
		uf := graph.NewUnionFind(s.n)
		for i := lo; i < hi; i++ {
			compute(uf, i)
		}
		return
	}
	var next atomic.Int64
	next.Store(int64(lo))
	var wg sync.WaitGroup
	for w := 0; w < extra; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { matSem <- struct{}{} }()
			uf := graph.NewUnionFind(s.n)
			for {
				i := int(next.Add(1)) - 1
				if i >= hi {
					return
				}
				compute(uf, i)
			}
		}()
	}
	uf := graph.NewUnionFind(s.n)
	for {
		i := int(next.Add(1)) - 1
		if i >= hi {
			break
		}
		compute(uf, i)
	}
	wg.Wait()
}

// release unpins a block acquired with acquire.
func (s *Store) release(b *block) {
	s.mu.Lock()
	b.pins--
	s.mu.Unlock()
}

// evictLocked drops least-recently-used unpinned blocks until at most max
// remain. Blocks still being materialized or pinned by readers are never
// dropped; if everything is pinned the budget is temporarily overshot
// rather than blocking. Caller holds s.mu.
func (s *Store) evictLocked(max int) {
	if max < 0 {
		max = 0
	}
	for len(s.blocks) > max {
		var victim *block
		for _, b := range s.blocks {
			// pins == 0 implies no goroutine is reading or extending the
			// block: extension happens while its requester holds a pin.
			if b.pins > 0 {
				continue
			}
			if victim == nil || b.lastUse < victim.lastUse {
				victim = b
			}
		}
		if victim == nil {
			return
		}
		delete(s.blocks, victim.idx)
		s.evicted++
	}
}

// Scan calls fn(i, labels) for every world i in [lo, hi), in increasing
// order, where labels is the world's component-label slice (length
// NumNodes). The slice is only valid during the callback and must not be
// modified. Blocks are pinned for the duration of their worlds' callbacks,
// acquired one at a time, so a scan holds at most one block against
// eviction. Scan grows the logical stream to hi.
func (s *Store) Scan(lo, hi int, fn func(i int, labels []int32)) {
	_ = s.ScanCtx(context.Background(), lo, hi, fn)
}

// ScanCtx is Scan with cooperative cancellation: the context is checked
// before each block is acquired (the unit of expensive work), and the first
// cancellation or deadline error is returned with the scan abandoned.
// Worlds already delivered to fn are exact; a scan that returns nil
// delivered every world in [lo, hi) and is bit-identical to Scan.
func (s *Store) ScanCtx(ctx context.Context, lo, hi int, fn func(i int, labels []int32)) error {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return nil
	}
	s.Grow(hi)
	for bi := lo / s.bw; bi*s.bw < hi; bi++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		base := bi * s.bw
		start, end := lo, hi
		if start < base {
			start = base
		}
		if end > base+s.bw {
			end = base + s.bw
		}
		b, labels := s.acquire(bi, end-base)
		for i := start; i < end; i++ {
			off := (i - base) * s.n
			fn(i, labels[off:off+s.n:off+s.n])
		}
		s.release(b)
	}
	return nil
}

// Connected reports whether u and v share a component in world i.
func (s *Store) Connected(i int, u, v graph.NodeID) bool {
	conn := false
	s.Scan(i, i+1, func(_ int, lab []int32) { conn = lab[u] == lab[v] })
	return conn
}

// CountConnectedFrom adds, for every node u, the number of worlds in
// [lo, hi) where u and c share a component, into counts (length NumNodes).
// counts is not cleared, so callers can accumulate across ranges.
func (s *Store) CountConnectedFrom(c graph.NodeID, lo, hi int, counts []int32) {
	s.Scan(lo, hi, func(_ int, lab []int32) {
		lc := lab[c]
		for u, lu := range lab {
			if lu == lc {
				counts[u]++
			}
		}
	})
}

// CountConnectedFromMulti is the batched form of CountConnectedFrom: for
// each center cs[j] it adds, into counts[j], the per-node connection counts
// over worlds [lo[j], hi). All centers are answered in ONE pass over each
// world block: per world the centers are grouped by their component label,
// and a single scan of the label vector dispatches each node's increments
// to every center sharing its component. The cost per world is
// O(n + centers + increments) instead of the O(n * centers) of repeated
// single-center scans, and each block is acquired (and, under a memory
// budget, potentially recomputed) once instead of once per center.
//
// Counts are plain integer accumulations over a deterministic world range,
// so the result is bit-identical to looping CountConnectedFrom per center.
func (s *Store) CountConnectedFromMulti(cs []graph.NodeID, lo []int, hi int, counts [][]int32) {
	if len(cs) == 0 {
		return
	}
	minLo := hi
	for _, l := range lo {
		if l < minLo {
			minLo = l
		}
	}
	if minLo >= hi {
		return
	}
	// byLabel[l] lists the (indices of) centers whose component label in
	// the current world is l; touched tracks which entries to reset.
	byLabel := make([][]int32, s.n)
	touched := make([]int32, 0, len(cs))
	s.Scan(minLo, hi, func(i int, lab []int32) {
		for _, l := range touched {
			byLabel[l] = byLabel[l][:0]
		}
		touched = touched[:0]
		for j, c := range cs {
			if lo[j] > i {
				continue
			}
			l := lab[c]
			if len(byLabel[l]) == 0 {
				touched = append(touched, l)
			}
			byLabel[l] = append(byLabel[l], int32(j))
		}
		if len(touched) == 0 {
			return
		}
		for u, l := range lab {
			for _, j := range byLabel[l] {
				counts[j][u]++
			}
		}
	})
}

// EstimateFrom returns the Monte Carlo estimates of Pr(u ~ c) for all
// nodes u over the first r worlds.
func (s *Store) EstimateFrom(c graph.NodeID, r int) []float64 {
	counts := make([]int32, s.n)
	s.CountConnectedFrom(c, 0, r, counts)
	out := make([]float64, s.n)
	inv := 1 / float64(r)
	for u, cnt := range counts {
		out[u] = float64(cnt) * inv
	}
	return out
}

// EstimatePair returns the Monte Carlo estimate of Pr(u ~ v) over the
// first r worlds.
func (s *Store) EstimatePair(u, v graph.NodeID, r int) float64 {
	p, _ := s.EstimatePairCtx(context.Background(), u, v, r)
	return p
}

// EstimatePairCtx is EstimatePair with cooperative cancellation: the scan
// aborts at the next block boundary once ctx is done, returning ctx's
// error.
func (s *Store) EstimatePairCtx(ctx context.Context, u, v graph.NodeID, r int) (float64, error) {
	cnt := 0
	if err := s.ScanCtx(ctx, 0, r, func(_ int, lab []int32) {
		if lab[u] == lab[v] {
			cnt++
		}
	}); err != nil {
		return 0, err
	}
	return float64(cnt) / float64(r), nil
}
