// Package worldstore is the shared possible-world substrate of the library:
// one memory-bounded store of sampled worlds per (graph, seed), reused by
// every consumer — the Monte Carlo connection-probability oracle, k-NN
// distance distributions, influence spread, representative-world extraction
// and the reliability metrics — so that a run pays the sampling and
// label-computation bill once instead of once per subsystem.
//
// A Store owns the implicit world stream of its (graph, seed) pair: world i
// is defined by stateless hash coins (see internal/rng and sampler.World),
// so any world can be re-materialized at any time. On top of the stream the
// store lazily materializes two per-world artifacts into block/columnar
// storage: connected-component labels (the unlimited-depth connectivity
// index) and present-edge bitmaps (one bit per edge, the substrate of
// batched depth-limited BFS — every edge coin of a world is evaluated once,
// then a whole center batch traverses bitmap tests). Worlds are grouped
// into fixed-size blocks, and within a block each artifact is stored
// world-major in one contiguous slice, so scanning a block touches memory
// sequentially. Blocks of both families are materialized on first access
// and, in bounded-memory mode, evicted least-recently-used — under one
// shared byte budget — and recomputed on the next access. Because labels
// and bitmaps are pure functions of (graph, seed, world index), eviction
// and recomputation never change an estimate: bounded and unbounded runs
// are bit-identical.
//
// Stores are safe for concurrent use by multiple consumers: block
// materialization is coordinated so exactly one goroutine computes a block
// while others wait, readers pin blocks against eviction for the duration
// of a scan, and the logical stream length only grows.
//
// The package-level Shared registry hands out one Store per (graph, seed)
// so independent consumers — built at different layers of the library —
// transparently converge on the same worlds. The registry holds weak
// references only: it neither keeps graphs nor stores alive.
package worldstore

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"weak"

	"ucgraph/internal/graph"
	"ucgraph/internal/sampler"
)

// targetBlockBytes sizes label blocks: blocks hold as many worlds as fit in
// roughly this many bytes of labels, clamped to [minBlockWorlds,
// maxBlockWorlds]. Edge-bitmap blocks cover the same world ranges (same
// worlds-per-block), so one block index addresses both artifacts of a run
// of worlds. Block size is a performance knob only — estimates never
// depend on it, because each world's artifacts are computed independently.
const (
	targetBlockBytes = 1 << 20
	minBlockWorlds   = 8
	maxBlockWorlds   = 256
)

// family distinguishes the two block-cached per-world artifacts.
type family int

const (
	famLabels family = iota // component labels, []int32, n per world
	famBits                 // present-edge bitmaps, []uint64, wpw per world
	numFamilies
)

// Store is a memory-bounded cache of per-world artifacts — component
// labels and present-edge bitmaps — over the deterministic world stream of
// one (graph, seed) pair. The zero value is invalid; use New or Shared.
type Store struct {
	g    *graph.Uncertain
	seed uint64
	n    int
	wpw  int // uint64 words per world edge bitmap
	bw   int // worlds per block (both families)

	length atomic.Int64 // logical stream length: max world count requested

	mu            sync.Mutex
	blocks        [numFamilies]map[int]*block
	built         [numFamilies]map[int]bool // block indices ever materialized (recompute detection)
	budget        int64                     // byte budget across both families; <= 0 means unbounded
	residentBytes int64                     // nominal bytes of resident blocks
	clock         uint64
	hits          uint64
	materialized  uint64
	recomputed    uint64
	evicted       uint64
	pendingSpill  []*block // evicted blocks awaiting a disk-tier write, drained outside mu

	// spill is the optional disk tier (AttachCache): evicted blocks spill
	// to checksummed segment files and a miss tries RAM → disk → recompute.
	// Attached at most once; loaded lock-free on the miss path.
	spill atomic.Pointer[spillCache]

	// Disk-tier counters (atomic: bumped on paths that hold block locks
	// but not mu).
	diskHits        atomic.Uint64
	spillWrites     atomic.Uint64
	corruptDropped  atomic.Uint64
	coldRecomputes  atomic.Uint64
	spillRecomputes atomic.Uint64

	// Batched depth-limited kernel counters (atomic: bumped outside mu on
	// the CountWithinMulti path): which mode tallied how many worlds, and
	// how many bit-sliced plane flushes the accumulate mode performed.
	accumWorlds  atomic.Uint64
	accumFlushes atomic.Uint64
	directWorlds atomic.Uint64

	// reachPool recycles the batched BFS scratch CountWithinMulti uses;
	// sampler.MultiReachCounter is single-goroutine, so each call checks
	// one out for its duration.
	reachPool sync.Pool
}

// block is one materialized run of up to bw consecutive worlds of one
// artifact family. labels (famLabels) holds component labels world-major:
// world (base + i) occupies labels[i*n : (i+1)*n]; bits (famBits) holds
// edge bitmaps world-major: world (base + i) occupies
// bits[i*wpw : (i+1)*wpw]. Blocks fill front to back: worlds [0, done) are
// materialized, and a reader needing more extends the prefix under mu —
// so a request for a few worlds never pays for the whole block, while a
// full scan still enjoys one contiguous, cache-friendly buffer.
// Materialized prefixes are immutable: extension appends, and when it
// must reallocate, earlier captured buffers keep their (identical,
// immutable) prefix — see acquire.
type block struct {
	fam     family
	idx     int
	bytes   int64      // nominal full-block bytes, accounted in residentBytes
	mu      sync.Mutex // serializes prefix extension
	done    int        // worlds [0, done) of the block are materialized
	labels  []int32    // famLabels payload; grows toward bw*n, valid up to done*n
	bits    []uint64   // famBits payload; grows toward bw*wpw, valid up to done*wpw
	pins    int        // readers currently holding the block; guarded by Store.mu
	lastUse uint64
	fresh   bool // no load/compute attempt since insertion (disk probe pending); guarded by mu (the block's)
	rebuilt bool // this block index was materialized before in this process; set at insertion
	// ready mirrors done for lock-free residency probes. Only the bitmap
	// family maintains it (acquireBits stores it after an extension), and
	// only BitsResident reads it: a probe observing ready >= w knows
	// worlds [0, w) of the bitmap block are materialized. Label blocks
	// leave it zero — there is no label residency probe.
	ready atomic.Int32
}

// Stats reports store observability counters. It is the snapshot the
// server daemon's /statsz endpoint exposes per graph.
type Stats struct {
	// Worlds is the logical stream length (max worlds any consumer asked for).
	Worlds int
	// ResidentBlocks is the number of blocks currently materialized across
	// both artifact families (labels + edge bitmaps).
	ResidentBlocks int
	// ResidentLabelBlocks / ResidentBitmapBlocks split ResidentBlocks by
	// artifact family.
	ResidentLabelBlocks  int
	ResidentBitmapBlocks int
	// ResidentBytes is the nominal memory of the resident blocks — the
	// quantity the SetBudget byte budget bounds.
	ResidentBytes int64
	// BlockWorlds is the number of worlds per block.
	BlockWorlds int
	// Hits counts block acquisitions answered by an already-resident block
	// (no label computation needed).
	Hits uint64
	// Materializations counts block instantiations — computed fresh,
	// recomputed after eviction, or loaded back from the disk tier.
	Materializations uint64
	// Recomputes counts blocks computed again after having been
	// materialized before (in this process, or — when a load from the disk
	// tier fails — in the one that wrote the cache): the price paid for a
	// miss the disk tier could not absorb. Recomputes is split into
	// ColdRecomputes + PostSpillRecomputes.
	Recomputes uint64
	// ColdRecomputes counts Recomputes with no spilled copy to try: no
	// cache attached, or the block was evicted before it ever spilled.
	ColdRecomputes uint64
	// PostSpillRecomputes counts Recomputes where a spilled copy existed
	// but failed validation (truncated or corrupt payload) — each also
	// increments CorruptDropped. A healthy disk tier keeps this at zero.
	PostSpillRecomputes uint64
	// Evictions counts blocks dropped under memory pressure (spilled to
	// the disk tier first when a cache is attached).
	Evictions uint64
	// DiskHits counts block misses answered by the disk tier instead of
	// recomputation — including blocks persisted by a previous process
	// (warm restart).
	DiskHits uint64
	// DiskBytes is the live payload volume of the disk tier: the bytes a
	// re-attaching process could load instead of recompute.
	DiskBytes int64
	// SpillWrites counts evicted blocks written to the disk tier (blocks
	// whose spilled copy already covered their worlds are skipped).
	SpillWrites uint64
	// CorruptDropped counts spilled entries discarded on checksum or
	// extent validation failure — at attach (truncated segments) or on
	// load (bit rot). Dropped entries are recomputed, never served.
	CorruptDropped uint64
	// AccumWorlds counts worlds tallied by the accumulate-mode bit-sliced
	// reach kernel on the batched depth-limited path (CountWithinMulti);
	// DirectWorlds counts worlds the same path tallied through the
	// per-world direct fallback (graphs too large for the flat
	// accumulator). Both modes add identical per-world reach indicators,
	// so the split is an observability fact, never a results fact.
	AccumWorlds  uint64
	DirectWorlds uint64
	// AccumFlushes counts bit-sliced plane flushes (one per
	// capacity-sized sub-range per active segment).
	AccumFlushes uint64
	// CacheDir is the attached disk-tier directory ("" when the store has
	// no disk tier).
	CacheDir string
}

// defaultBudget is applied to stores created after SetDefaultBudget.
var defaultBudget atomic.Int64

// SetDefaultBudget sets the label-memory budget, in bytes, applied to
// stores created afterwards (0 restores the unbounded default). Existing
// stores are unaffected; use Store.SetBudget for those. This is the hook
// the CLI memory-budget flags use.
func SetDefaultBudget(bytes int64) { defaultBudget.Store(bytes) }

// New returns a private store over g's possible worlds under seed. Most
// callers want Shared instead, so that consumers of the same (graph, seed)
// converge on the same materialized worlds.
func New(g *graph.Uncertain, seed uint64) *Store {
	n := g.NumNodes()
	bw := targetBlockBytes / (4 * n)
	if bw < minBlockWorlds {
		bw = minBlockWorlds
	}
	if bw > maxBlockWorlds {
		bw = maxBlockWorlds
	}
	s := &Store{
		g:    g,
		seed: seed,
		n:    n,
		wpw:  sampler.EdgeBitmapWords(g.NumEdges()),
		bw:   bw,
	}
	for f := range s.blocks {
		s.blocks[f] = make(map[int]*block)
		s.built[f] = make(map[int]bool)
	}
	s.reachPool.New = func() any { return sampler.NewMultiReachCounter(g) }
	if b := defaultBudget.Load(); b > 0 {
		s.SetBudget(b)
	}
	return s
}

// blockBytes returns the nominal full-block byte size of one family's
// block — the unit the byte budget is accounted in.
func (s *Store) blockBytes(f family) int64 {
	if f == famBits {
		return int64(8 * s.wpw * s.bw)
	}
	return int64(4 * s.n * s.bw)
}

// registryKey identifies a shared store. The graph is held weakly so the
// registry does not extend its lifetime.
type registryKey struct {
	g    weak.Pointer[graph.Uncertain]
	seed uint64
}

var (
	registryMu sync.Mutex
	registry   = make(map[registryKey]weak.Pointer[Store])
)

// Shared returns the store for (g, seed), creating it on first use. All
// callers passing the same graph value and seed receive the same store, so
// the world stream — and the label blocks materialized over it — are shared
// across subsystems. The registry holds only weak references: once every
// consumer drops a store it is garbage collected (taking its blocks with
// it) and a later Shared call builds a fresh, deterministic replacement.
func Shared(g *graph.Uncertain, seed uint64) *Store {
	key := registryKey{g: weak.Make(g), seed: seed}
	registryMu.Lock()
	defer registryMu.Unlock()
	if wp, ok := registry[key]; ok {
		if s := wp.Value(); s != nil {
			return s
		}
	}
	s := New(g, seed)
	registry[key] = weak.Make(s)
	runtime.AddCleanup(s, func(key registryKey) {
		registryMu.Lock()
		if wp, ok := registry[key]; ok && wp.Value() == nil {
			delete(registry, key)
		}
		registryMu.Unlock()
	}, key)
	return s
}

// Graph returns the underlying graph.
func (s *Store) Graph() *graph.Uncertain { return s.g }

// Seed returns the world-stream seed.
func (s *Store) Seed() uint64 { return s.seed }

// NumNodes returns the node count of the underlying graph.
func (s *Store) NumNodes() int { return s.n }

// World returns the implicit view of world i: the same world the label
// blocks index, usable for edge queries and per-world BFS.
func (s *Store) World(i int) sampler.World {
	return sampler.World{G: s.g, Seed: s.seed, Index: uint64(i)}
}

// Grow raises the logical stream length to at least r worlds. Labels are
// materialized lazily, block by block, on first scan; Grow itself is cheap.
// The stream never shrinks.
func (s *Store) Grow(r int) {
	for {
		cur := s.length.Load()
		if int64(r) <= cur || s.length.CompareAndSwap(cur, int64(r)) {
			return
		}
	}
}

// Worlds returns the logical stream length: the largest world count any
// consumer has requested so far.
func (s *Store) Worlds() int { return int(s.length.Load()) }

// BlockWorlds returns the number of worlds per block — the granularity at
// which blocks of either artifact family are materialized and evicted. It
// is a pure function of the graph's node count, so every store over the
// same graph (in this process or another) agrees on it; the shard
// coordinator relies on that to cut block-aligned world ranges that map
// cleanly onto worker-side blocks.
func (s *Store) BlockWorlds() int { return s.bw }

// BitsResident reports whether every edge-bitmap block covering worlds
// [lo, hi) is currently resident with the needed world prefix
// materialized — i.e. whether a depth-limited scan over the range can be
// answered from warm bitmaps without computing anything. It is a
// performance hint only: a block may be evicted between the probe and a
// subsequent ScanBits (which then recomputes it, bit-identically), so
// callers use it to choose between equivalent paths, never for
// correctness.
func (s *Store) BitsResident(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for bi := lo / s.bw; bi*s.bw < hi; bi++ {
		b, ok := s.blocks[famBits][bi]
		if !ok {
			return false
		}
		need := hi - bi*s.bw
		if need > s.bw {
			need = s.bw
		}
		if int(b.ready.Load()) < need {
			return false
		}
	}
	return true
}

// BitsWarm is BitsResident extended by the disk tier: it reports whether
// every edge-bitmap block covering worlds [lo, hi) is either resident
// with the needed prefix or persisted in the attached spill cache — i.e.
// whether a depth-limited scan can be answered without re-evaluating edge
// coins (a disk load is a sequential read plus checksum, orders of
// magnitude cheaper than re-hashing every edge of every world). Like
// BitsResident it is a performance hint only, never used for correctness.
func (s *Store) BitsWarm(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return false
	}
	type miss struct{ bi, need int }
	var missing []miss
	s.mu.Lock()
	for bi := lo / s.bw; bi*s.bw < hi; bi++ {
		need := hi - bi*s.bw
		if need > s.bw {
			need = s.bw
		}
		if b, ok := s.blocks[famBits][bi]; ok && int(b.ready.Load()) >= need {
			continue
		}
		missing = append(missing, miss{bi, need})
	}
	s.mu.Unlock()
	if len(missing) == 0 {
		return true
	}
	c := s.spill.Load()
	if c == nil {
		return false
	}
	for _, m := range missing {
		if c.entryDone(famBits, m.bi) < m.need {
			return false
		}
	}
	return true
}

// SetBudget bounds the memory spent on materialized blocks — label and
// edge-bitmap families together — to roughly bytes (a block being acquired
// is always allowed in even when it alone overshoots, so scans make
// progress). bytes <= 0 removes the bound. Shrinking evicts immediately.
// Estimates are identical in bounded and unbounded mode: evicted blocks
// are recomputed, not approximated.
func (s *Store) SetBudget(bytes int64) {
	s.mu.Lock()
	if bytes <= 0 {
		s.budget = 0
		s.mu.Unlock()
		return
	}
	s.budget = bytes
	s.evictLocked(s.budget)
	victims := s.takePendingLocked()
	s.mu.Unlock()
	s.writeSpills(victims)
}

// Stats returns observability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Worlds:               int(s.length.Load()),
		ResidentBlocks:       len(s.blocks[famLabels]) + len(s.blocks[famBits]),
		ResidentLabelBlocks:  len(s.blocks[famLabels]),
		ResidentBitmapBlocks: len(s.blocks[famBits]),
		ResidentBytes:        s.residentBytes,
		BlockWorlds:          s.bw,
		Hits:                 s.hits,
		Materializations:     s.materialized,
		Recomputes:           s.recomputed,
		Evictions:            s.evicted,
	}
	s.mu.Unlock()
	st.DiskHits = s.diskHits.Load()
	st.SpillWrites = s.spillWrites.Load()
	st.CorruptDropped = s.corruptDropped.Load()
	st.ColdRecomputes = s.coldRecomputes.Load()
	st.PostSpillRecomputes = s.spillRecomputes.Load()
	st.AccumWorlds = s.accumWorlds.Load()
	st.AccumFlushes = s.accumFlushes.Load()
	st.DirectWorlds = s.directWorlds.Load()
	if c := s.spill.Load(); c != nil {
		st.DiskBytes = c.bytes()
		st.CacheDir = c.dir
	}
	return st
}

// TierDelta is the tier-activity difference between two Stats snapshots:
// which storage tier (resident RAM block, disk-tier load, recompute from
// the stream) served the block acquisitions in between. It exists for
// per-request trace attribution — a shard worker snapshots Stats around
// one tally and ships the delta back to the coordinator. On a store
// shared by concurrent requests the delta attributes the store's total
// activity during the window, not the single request's share; it informs
// operators, never estimates.
type TierDelta struct {
	Hits             uint64 // acquisitions served by resident blocks
	DiskHits         uint64 // block misses answered by the disk tier
	Recomputes       uint64 // blocks rebuilt from the stream after eviction
	Materializations uint64 // block instantiations (fresh, recomputed or disk-loaded)
}

// TierDelta reports the tier-activity counters of s relative to the
// earlier snapshot prev.
func (s Stats) TierDelta(prev Stats) TierDelta {
	return TierDelta{
		Hits:             s.Hits - prev.Hits,
		DiskHits:         s.DiskHits - prev.DiskHits,
		Recomputes:       s.Recomputes - prev.Recomputes,
		Materializations: s.Materializations - prev.Materializations,
	}
}

// AttachCache attaches the disk tier rooted at dir: evicted blocks spill
// to checksummed segment files under dir and misses try disk before
// recomputing. An existing directory written by a previous process for
// the same (graph digest, seed, shape) is re-attached as-is — that is the
// warm-restart path — while a directory belonging to a different store is
// rejected. At most one cache can be attached per store; entries dropped
// while replaying a truncated directory are counted in CorruptDropped.
func (s *Store) AttachCache(dir string) error {
	h := spillHeader{
		digest: s.g.Digest(),
		seed:   s.seed,
		n:      s.n,
		wpw:    s.wpw,
		bw:     s.bw,
	}
	var rows [numFamilies]int64
	rows[famLabels] = int64(4 * s.n)
	rows[famBits] = int64(8 * s.wpw)
	c, dropped, err := openSpillCache(dir, h, rows, s.bw)
	if err != nil {
		return err
	}
	if !s.spill.CompareAndSwap(nil, c) {
		c.close()
		return errors.New("worldstore: store already has a cache attached")
	}
	s.corruptDropped.Add(uint64(dropped))
	// The cache holds OS resources (fds, mmaps) but no reference back to
	// the store, so it is reclaimed with the store.
	runtime.AddCleanup(s, func(c *spillCache) { c.close() }, c)
	return nil
}

// CacheDir returns the attached disk-tier directory, "" if none.
func (s *Store) CacheDir() string {
	if c := s.spill.Load(); c != nil {
		return c.dir
	}
	return ""
}

// acquireBlock returns family f's block bi, pinned against eviction,
// inserting (and budget-accounting) a fresh one if absent. Before an
// insertion, enough LRU unpinned blocks of either family are evicted to
// make room under the byte budget; the new block is admitted even when
// the budget cannot be met, so progress never blocks on memory pressure.
// Caller must not hold s.mu.
func (s *Store) acquireBlock(f family, bi int) *block {
	s.mu.Lock()
	b, ok := s.blocks[f][bi]
	if !ok {
		// Whether the miss ends up a disk hit or a recompute is decided at
		// first extension (primeBlock), when the disk tier is probed —
		// insertion only records whether this index was materialized before.
		b = &block{fam: f, idx: bi, bytes: s.blockBytes(f), fresh: true, rebuilt: s.built[f][bi]}
		if s.budget > 0 {
			s.evictLocked(s.budget - b.bytes)
		}
		s.blocks[f][bi] = b
		s.residentBytes += b.bytes
		s.materialized++
		s.built[f][bi] = true
	} else {
		s.hits++
	}
	b.pins++
	s.clock++
	b.lastUse = s.clock
	victims := s.takePendingLocked()
	s.mu.Unlock()
	s.writeSpills(victims)
	return b
}

// acquire returns the label block bi with at least the first need worlds
// materialized, pinned against eviction, along with the label buffer
// captured under the block's mutex. Prefix extension serializes on that
// mutex, so exactly one goroutine computes each world while later
// arrivals reuse it. The buffer is sized to the materialized prefix
// (doubling up to the full block), so a request for a few worlds never
// allocates the whole block. A reallocation during a later extension
// leaves earlier captured buffers intact — their materialized prefix is
// immutable — which is why callers must read through the returned slice,
// not through b.labels. Callers must release the block.
func (s *Store) acquire(bi, need int) (*block, []int32) {
	b := s.acquireBlock(famLabels, bi)
	b.mu.Lock()
	if b.fresh {
		s.primeBlock(b)
	}
	if b.done < need {
		if len(b.labels) < need*s.n {
			worlds := 2 * b.done
			if worlds < need {
				worlds = need
			}
			if worlds > s.bw {
				worlds = s.bw
			}
			grown := make([]int32, worlds*s.n)
			copy(grown, b.labels[:b.done*s.n])
			b.labels = grown
		}
		s.computeWorlds(bi, b.done, need, b.labels)
		b.done = need
	}
	labels := b.labels
	b.mu.Unlock()
	return b, labels
}

// acquireBits is acquire for the edge-bitmap family: it returns bitmap
// block bi with at least the first need worlds filled, pinned, along with
// the bitmap buffer captured under the block's mutex. The same prefix
// immutability contract as acquire applies: read through the returned
// slice, never through b.bits.
func (s *Store) acquireBits(bi, need int) (*block, []uint64) {
	b := s.acquireBlock(famBits, bi)
	b.mu.Lock()
	if b.fresh {
		s.primeBlock(b)
	}
	if b.done < need {
		if len(b.bits) < need*s.wpw {
			worlds := 2 * b.done
			if worlds < need {
				worlds = need
			}
			if worlds > s.bw {
				worlds = s.bw
			}
			grown := make([]uint64, worlds*s.wpw)
			copy(grown, b.bits[:b.done*s.wpw])
			b.bits = grown
		}
		s.computeBitmaps(bi, b.done, need, b.bits)
		b.done = need
		b.ready.Store(int32(need))
	}
	bits := b.bits
	b.mu.Unlock()
	return b, bits
}

// primeBlock resolves a freshly inserted block's first extension against
// the disk tier: a valid spilled prefix is loaded (disk hit), a spilled
// entry that fails validation is dropped and counted (the block falls
// through to recomputation), and a miss with no entry is classified cold
// or recompute by whether this index was materialized before. Called
// under b's mutex, before the compute path looks at b.done.
func (s *Store) primeBlock(b *block) {
	b.fresh = false
	c := s.spill.Load()
	var loaded, hadEntry bool
	if c != nil {
		loaded, hadEntry = c.load(b)
	}
	switch {
	case loaded:
		s.diskHits.Add(1)
	case hadEntry:
		s.corruptDropped.Add(1)
		s.noteRecompute(true)
	case b.rebuilt:
		s.noteRecompute(false)
	}
}

// noteRecompute counts one block recomputation, split by whether a
// spilled copy existed (and failed) or there was nothing on disk to try.
func (s *Store) noteRecompute(postSpill bool) {
	s.mu.Lock()
	s.recomputed++
	s.mu.Unlock()
	if postSpill {
		s.spillRecomputes.Add(1)
	} else {
		s.coldRecomputes.Add(1)
	}
}

// takePendingLocked claims the evicted blocks queued for a disk-tier
// write. Caller holds s.mu; the returned blocks are privately owned (out
// of the block map, zero pins), so the caller writes them after unlocking.
func (s *Store) takePendingLocked() []*block {
	if len(s.pendingSpill) == 0 {
		return nil
	}
	victims := s.pendingSpill
	s.pendingSpill = nil
	return victims
}

// writeSpills persists evicted blocks to the disk tier. Runs without
// store locks: the victims are unreachable, and the spill cache has its
// own mutex.
func (s *Store) writeSpills(victims []*block) {
	if len(victims) == 0 {
		return
	}
	c := s.spill.Load()
	if c == nil {
		return
	}
	for _, b := range victims {
		if c.store(b) {
			s.spillWrites.Add(1)
		}
	}
}

// matSem bounds the extra goroutines spawned by concurrent block
// materializations across ALL stores in the process, so consumers that
// already fan block accesses out (the oracle's sharded tally workers) do
// not multiply into workers^2 goroutines. A token shortage degrades to
// fewer, larger shares of the block — never to blocking.
var (
	matSemOnce sync.Once
	matSem     chan struct{}
)

func materializeSem() chan struct{} {
	matSemOnce.Do(func() {
		capacity := runtime.GOMAXPROCS(0)
		matSem = make(chan struct{}, capacity)
		for i := 0; i < capacity; i++ {
			matSem <- struct{}{}
		}
	})
	return matSem
}

// fanOutWorlds runs a per-world computation for every index in [lo, hi),
// fanning across available workers. Each worker calls worker() once to
// bind its private scratch and then invokes the returned function for the
// indices it steals off a shared cursor. Extra workers draw tokens from
// the process-wide materialization semaphore; a token shortage degrades to
// fewer workers — never to blocking. Stealing only changes which worker
// computes a world, never the result: every world writes a disjoint slice
// of the output.
func fanOutWorlds(lo, hi int, worker func() func(i int)) {
	span := hi - lo
	workers := runtime.GOMAXPROCS(0)
	if workers > span {
		workers = span
	}
	extra := 0
	if workers > 1 {
		sem := materializeSem()
		for extra < workers-1 {
			select {
			case <-sem:
				extra++
				continue
			default:
			}
			break
		}
	}
	if extra == 0 {
		compute := worker()
		for i := lo; i < hi; i++ {
			compute(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(int64(lo))
	var wg sync.WaitGroup
	for w := 0; w < extra; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { matSem <- struct{}{} }()
			compute := worker()
			for {
				i := int(next.Add(1)) - 1
				if i >= hi {
					return
				}
				compute(i)
			}
		}()
	}
	compute := worker()
	for {
		i := int(next.Add(1)) - 1
		if i >= hi {
			break
		}
		compute(i)
	}
	wg.Wait()
}

// computeWorlds materializes worlds [lo, hi) of block bi into labels.
// Each world's labels are computed independently into a disjoint slice of
// the buffer, so the bits do not depend on the worker count.
func (s *Store) computeWorlds(bi, lo, hi int, labels []int32) {
	base := bi * s.bw
	fanOutWorlds(lo, hi, func() func(int) {
		uf := graph.NewUnionFind(s.n)
		return func(i int) {
			w := sampler.World{G: s.g, Seed: s.seed, Index: uint64(base + i)}
			w.ComponentLabels(uf, labels[i*s.n:(i+1)*s.n])
		}
	})
}

// computeBitmaps materializes the edge bitmaps of worlds [lo, hi) of block
// bi into bits. Each world's bitmap is filled independently into a
// disjoint slice of the buffer, so the bits do not depend on the worker
// count.
func (s *Store) computeBitmaps(bi, lo, hi int, bits []uint64) {
	base := bi * s.bw
	fanOutWorlds(lo, hi, func() func(int) {
		return func(i int) {
			w := sampler.World{G: s.g, Seed: s.seed, Index: uint64(base + i)}
			w.FillEdgeBitmap(bits[i*s.wpw : (i+1)*s.wpw])
		}
	})
}

// release unpins a block acquired with acquire. When the last pin drops
// while the store is over budget — a SetBudget shrink that ran while this
// block was pinned had to skip it — eviction resumes here, so pinned
// blocks outliving a shrink only overshoot the budget for the duration of
// the pin, and ResidentBytes settles back under the bound.
func (s *Store) release(b *block) {
	s.mu.Lock()
	b.pins--
	if b.pins == 0 && s.budget > 0 && s.residentBytes > s.budget {
		s.evictLocked(s.budget)
	}
	victims := s.takePendingLocked()
	s.mu.Unlock()
	s.writeSpills(victims)
}

// evictLocked drops least-recently-used unpinned blocks — across both
// artifact families — until at most maxBytes of nominal block memory
// remain. Blocks still being materialized or pinned by readers are never
// dropped; if everything is pinned the budget is temporarily overshot
// rather than blocking. Caller holds s.mu.
func (s *Store) evictLocked(maxBytes int64) {
	if maxBytes < 0 {
		maxBytes = 0
	}
	for s.residentBytes > maxBytes {
		var victim *block
		for f := range s.blocks {
			for _, b := range s.blocks[f] {
				// pins == 0 implies no goroutine is reading or extending the
				// block: extension happens while its requester holds a pin.
				if b.pins > 0 {
					continue
				}
				if victim == nil || b.lastUse < victim.lastUse {
					victim = b
				}
			}
		}
		if victim == nil {
			return
		}
		delete(s.blocks[victim.fam], victim.idx)
		s.residentBytes -= victim.bytes
		s.evicted++
		// With a disk tier attached, the victim spills instead of being
		// forgotten. The write happens after s.mu is released (the victim is
		// privately owned once out of the map): callers that can evict drain
		// the queue via takePendingLocked + writeSpills.
		if victim.done > 0 && s.spill.Load() != nil {
			s.pendingSpill = append(s.pendingSpill, victim)
		}
	}
}

// Scan calls fn(i, labels) for every world i in [lo, hi), in increasing
// order, where labels is the world's component-label slice (length
// NumNodes). The slice is only valid during the callback and must not be
// modified. Blocks are pinned for the duration of their worlds' callbacks,
// acquired one at a time, so a scan holds at most one block against
// eviction. Scan grows the logical stream to hi.
func (s *Store) Scan(lo, hi int, fn func(i int, labels []int32)) {
	_ = s.ScanCtx(context.Background(), lo, hi, fn)
}

// ScanCtx is Scan with cooperative cancellation: the context is checked
// before each block is acquired (the unit of expensive work), and the first
// cancellation or deadline error is returned with the scan abandoned.
// Worlds already delivered to fn are exact; a scan that returns nil
// delivered every world in [lo, hi) and is bit-identical to Scan.
func (s *Store) ScanCtx(ctx context.Context, lo, hi int, fn func(i int, labels []int32)) error {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return nil
	}
	s.Grow(hi)
	for bi := lo / s.bw; bi*s.bw < hi; bi++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		base := bi * s.bw
		start, end := lo, hi
		if start < base {
			start = base
		}
		if end > base+s.bw {
			end = base + s.bw
		}
		b, labels := s.acquire(bi, end-base)
		for i := start; i < end; i++ {
			off := (i - base) * s.n
			fn(i, labels[off:off+s.n:off+s.n])
		}
		s.release(b)
	}
	return nil
}

// Connected reports whether u and v share a component in world i.
func (s *Store) Connected(i int, u, v graph.NodeID) bool {
	conn := false
	s.Scan(i, i+1, func(_ int, lab []int32) { conn = lab[u] == lab[v] })
	return conn
}

// CountConnectedFrom adds, for every node u, the number of worlds in
// [lo, hi) where u and c share a component, into counts (length NumNodes).
// counts is not cleared, so callers can accumulate across ranges.
func (s *Store) CountConnectedFrom(c graph.NodeID, lo, hi int, counts []int32) {
	s.Scan(lo, hi, func(_ int, lab []int32) {
		lc := lab[c]
		for u, lu := range lab {
			if lu == lc {
				counts[u]++
			}
		}
	})
}

// CountConnectedFromMulti is the batched form of CountConnectedFrom: for
// each center cs[j] it adds, into counts[j], the per-node connection counts
// over worlds [lo[j], hi). All centers are answered in ONE pass over each
// world block: per world the centers are grouped by their component label,
// and a single scan of the label vector dispatches each node's increments
// to every center sharing its component. The cost per world is
// O(n + centers + increments) instead of the O(n * centers) of repeated
// single-center scans, and each block is acquired (and, under a memory
// budget, potentially recomputed) once instead of once per center.
//
// Counts are plain integer accumulations over a deterministic world range,
// so the result is bit-identical to looping CountConnectedFrom per center.
func (s *Store) CountConnectedFromMulti(cs []graph.NodeID, lo []int, hi int, counts [][]int32) {
	if len(cs) == 0 {
		return
	}
	minLo := hi
	for _, l := range lo {
		if l < minLo {
			minLo = l
		}
	}
	if minLo >= hi {
		return
	}
	// byLabel[l] lists the (indices of) centers whose component label in
	// the current world is l; touched tracks which entries to reset.
	byLabel := make([][]int32, s.n)
	touched := make([]int32, 0, len(cs))
	s.Scan(minLo, hi, func(i int, lab []int32) {
		for _, l := range touched {
			byLabel[l] = byLabel[l][:0]
		}
		touched = touched[:0]
		for j, c := range cs {
			if lo[j] > i {
				continue
			}
			l := lab[c]
			if len(byLabel[l]) == 0 {
				touched = append(touched, l)
			}
			byLabel[l] = append(byLabel[l], int32(j))
		}
		if len(touched) == 0 {
			return
		}
		for u, l := range lab {
			for _, j := range byLabel[l] {
				counts[j][u]++
			}
		}
	})
}

// ScanBits calls fn(i, bits) for every world i in [lo, hi), in increasing
// order, where bits is the world's present-edge bitmap (length
// sampler.EdgeBitmapWords(NumEdges); bit e set iff edge e is present —
// test with sampler.BitmapContains). The slice is only valid during the
// callback and must not be modified. Bitmap blocks are pinned one at a
// time, exactly like label blocks in Scan, and count against the same
// byte budget. ScanBits grows the logical stream to hi.
func (s *Store) ScanBits(lo, hi int, fn func(i int, bits []uint64)) {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return
	}
	s.Grow(hi)
	for bi := lo / s.bw; bi*s.bw < hi; bi++ {
		base := bi * s.bw
		start, end := lo, hi
		if start < base {
			start = base
		}
		if end > base+s.bw {
			end = base + s.bw
		}
		b, bits := s.acquireBits(bi, end-base)
		for i := start; i < end; i++ {
			off := (i - base) * s.wpw
			fn(i, bits[off:off+s.wpw:off+s.wpw])
		}
		s.release(b)
	}
}

// CountWithinMulti is the depth-limited mirror of CountConnectedFromMulti:
// for each center cs[j] it adds, into counts[j] (length NumNodes, not
// cleared), the number of worlds in [lo[j], hi) where each node is within
// depth hops of cs[j]. depth < 0 means unconstrained reachability (callers
// with unlimited depth should prefer the label-scan path, which is O(n)
// per world instead of BFS).
//
// All centers are answered in ONE pass over each world's edge bitmap: the
// world's edge coins are evaluated once, when its bitmap block is
// materialized, and every center's depth-bounded BFS tests bits instead of
// re-hashing — so a batch pays the edge-coin bill once per world instead
// of once per (world, center), and each block is acquired (and, under a
// memory budget, potentially recomputed) once instead of once per center.
//
// Each (world, center) BFS visit set is a pure function of the world's
// edge set, so the result is bit-identical to looping a per-center
// sampler.ReachCounter over the same ranges.
func (s *Store) CountWithinMulti(cs []graph.NodeID, depth int, lo []int, hi int, counts [][]int32) {
	if len(cs) == 0 {
		return
	}
	mrc := s.reachPool.Get().(*sampler.MultiReachCounter)
	defer s.reachPool.Put(mrc)
	// Mask groups of <= 64 centers, each answered over the same bitmap
	// blocks (re-acquisitions after the first group are cache hits).
	for base := 0; base < len(cs); base += 64 {
		end := base + 64
		if end > len(cs) {
			end = len(cs)
		}
		s.countWithinGroup(mrc, cs[base:end], depth, lo[base:end], hi, counts[base:end])
	}
}

// countWithinGroup answers one <= 64-center group. The world range is split
// at the distinct lo values into segments on which the active center set
// is constant, so the counter's accumulate mode (one flat add per reach,
// flushed per segment) keeps a stable bit-to-center mapping; graphs too
// large for the flat accumulator fall back to per-world direct counting.
// Either mode adds the same per-world reach indicators, so the counts are
// bit-identical regardless of mode, segmentation, or group split.
func (s *Store) countWithinGroup(mrc *sampler.MultiReachCounter, cs []graph.NodeID, depth int, lo []int, hi int, counts [][]int32) {
	// Distinct segment starts: every lo value below hi, ascending.
	starts := make([]int, 0, len(lo))
	for _, l := range lo {
		if l < 0 {
			l = 0
		}
		if l >= hi {
			continue
		}
		starts = append(starts, l)
	}
	if len(starts) == 0 {
		return
	}
	sort.Ints(starts)
	accum := mrc.BeginAccum()
	activeCs := make([]graph.NodeID, 0, len(cs))
	activeCounts := make([][]int32, 0, len(cs))
	for k := 0; k < len(starts); k++ {
		a := starts[k]
		if k > 0 && a == starts[k-1] {
			continue // duplicate lo value
		}
		b := hi
		for _, nl := range starts[k+1:] {
			if nl > a {
				b = nl
				break
			}
		}
		activeCs = activeCs[:0]
		activeCounts = activeCounts[:0]
		for j, c := range cs {
			if lo[j] > a {
				continue
			}
			activeCs = append(activeCs, c)
			activeCounts = append(activeCounts, counts[j])
		}
		if accum {
			// Flush on the accumulator's capacity cadence: the bit-sliced
			// planes hold at most AccumCapacity worlds of counts, so long
			// segments accumulate in capacity-sized sub-ranges. Flushing
			// more often only regroups exact integer additions — the counts
			// are bit-identical for any cadence.
			capacity := mrc.AccumCapacity()
			for x := a; x < b; x += capacity {
				y := x + capacity
				if y > b {
					y = b
				}
				s.ScanBits(x, y, func(_ int, bits []uint64) {
					mrc.AccumWorld(bits, activeCs, depth)
				})
				mrc.FlushAccum(activeCounts)
				s.accumWorlds.Add(uint64(y - x))
				s.accumFlushes.Add(1)
			}
		} else {
			s.ScanBits(a, b, func(_ int, bits []uint64) {
				mrc.CountWithinWorld(bits, activeCs, depth, activeCounts)
			})
			s.directWorlds.Add(uint64(b - a))
		}
	}
}

// EstimateFrom returns the Monte Carlo estimates of Pr(u ~ c) for all
// nodes u over the first r worlds.
func (s *Store) EstimateFrom(c graph.NodeID, r int) []float64 {
	counts := make([]int32, s.n)
	s.CountConnectedFrom(c, 0, r, counts)
	out := make([]float64, s.n)
	inv := 1 / float64(r)
	for u, cnt := range counts {
		out[u] = float64(cnt) * inv
	}
	return out
}

// EstimatePair returns the Monte Carlo estimate of Pr(u ~ v) over the
// first r worlds.
func (s *Store) EstimatePair(u, v graph.NodeID, r int) float64 {
	p, _ := s.EstimatePairCtx(context.Background(), u, v, r)
	return p
}

// EstimatePairCtx is EstimatePair with cooperative cancellation: the scan
// aborts at the next block boundary once ctx is done, returning ctx's
// error.
func (s *Store) EstimatePairCtx(ctx context.Context, u, v graph.NodeID, r int) (float64, error) {
	cnt := 0
	if err := s.ScanCtx(ctx, 0, r, func(_ int, lab []int32) {
		if lab[u] == lab[v] {
			cnt++
		}
	}); err != nil {
		return 0, err
	}
	return float64(cnt) / float64(r), nil
}
