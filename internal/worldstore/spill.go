// Disk tier of the world store: spilled label and edge-bitmap blocks.
//
// A Store with an attached cache directory (AttachCache) gains a tier
// between residency and recompute: blocks dropped by the evictor are
// appended to per-family segment files instead of being forgotten, and a
// later miss tries RAM → disk → recompute. Because blocks are pure
// functions of (graph, seed, world index), a spilled block re-validated by
// checksum is bit-identical to a recomputed one — the disk tier changes
// only the price of a miss, never an estimate.
//
// On-disk layout (one directory per store):
//
//	labels.seg   label block payloads, append-only
//	bits.seg     edge-bitmap block payloads, append-only
//	cache.dir    directory log: one header + fixed-size entry records
//
// The directory log starts with a header binding the cache to its store —
// graph digest, seed, node count, bitmap words per world, worlds per block,
// format version, native byte order — so a warm restart re-attaches an
// existing directory only when every parameter matches, and a cache from a
// different graph, seed or architecture is rejected instead of silently
// corrupting estimates. Each entry record names a (family, block index)
// pair, the number of worlds persisted, the payload offset in the family's
// segment and a CRC32-C of the payload; records carry their own CRC so a
// torn tail from a crash is detected and discarded on replay. Re-spilling a
// block with more worlds appends a superseding record — last record wins —
// and payload checksums are verified on every load: a truncated or
// bit-flipped payload is dropped (Stats.CorruptDropped) and the block is
// recomputed, never served wrong.
//
// Segment reads go through a lazily grown read-only mmap of the segment
// file where the platform supports it (falling back to pread elsewhere), so
// a warm-restarted store faults spilled blocks straight from the page cache
// without a read syscall per block.
package worldstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"unsafe"
)

const (
	spillMagic   = "UCWSPILL"
	spillVersion = 1

	spillHeaderSize = 64
	spillRecordSize = 32

	spillDirName    = "cache.dir"
	spillLabelsName = "labels.seg"
	spillBitsName   = "bits.seg"
)

// crcTable is the CRC32-C (Castagnoli) table shared by header, record and
// payload checksums; hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// nativeEndianProbe returns the native byte encoding of a fixed probe
// value. Payloads are written in host byte order (zero-copy views over
// []int32 / []uint64), so a cache is only portable between hosts of equal
// endianness; the probe in the header turns a mismatch into a clean
// rejection.
func nativeEndianProbe() [4]byte {
	probe := uint32(0x01020304)
	return *(*[4]byte)(unsafe.Pointer(&probe))
}

// int32Bytes returns the raw bytes of s, zero-copy, in host byte order.
func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// uint64Bytes returns the raw bytes of s, zero-copy, in host byte order.
func uint64Bytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// spillEntry is the in-memory directory entry of one spilled block: the
// latest persisted prefix of (family, block index).
type spillEntry struct {
	done int    // worlds of the block persisted
	off  int64  // payload offset in the family segment
	crc  uint32 // CRC32-C of the payload bytes
}

// segment is one append-only payload file plus its lazily grown read mmap.
type segment struct {
	f      *os.File
	size   int64    // append offset == file size
	mapped mmapView // read view of [0, len(mapped.data)); grown on demand
}

// append writes data at the segment tail, returning its offset.
func (sg *segment) append(data []byte) (int64, error) {
	off := sg.size
	if _, err := sg.f.WriteAt(data, off); err != nil {
		return 0, err
	}
	sg.size += int64(len(data))
	return off, nil
}

// read returns the payload bytes at [off, off+length), served from the
// mmap view when available (remapping once when the segment has grown past
// the view) and falling back to pread. The returned slice is only valid
// until the next remap; callers copy out of it under the cache mutex.
func (sg *segment) read(off, length int64) ([]byte, error) {
	if off < 0 || length < 0 || off+length > sg.size {
		return nil, fmt.Errorf("worldstore: spill payload [%d,+%d) beyond segment size %d", off, length, sg.size)
	}
	if length == 0 {
		return nil, nil
	}
	if int64(len(sg.mapped.data)) < off+length {
		sg.mapped.close()
		sg.mapped = mmapFile(sg.f, sg.size)
	}
	if int64(len(sg.mapped.data)) >= off+length {
		return sg.mapped.data[off : off+length], nil
	}
	buf := make([]byte, length)
	if _, err := sg.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (sg *segment) close() {
	sg.mapped.close()
	_ = sg.f.Close()
}

// spillCache is the disk tier of one store. All fields are guarded by mu;
// disk IO happens under mu but never under the store's block or map locks,
// so spilling and loading serialize with each other without stalling
// readers of resident blocks.
type spillCache struct {
	mu        sync.Mutex
	dir       string
	dirf      *os.File
	dirSize   int64
	segs      [numFamilies]*segment
	entries   [numFamilies]map[int]spillEntry
	rowBytes  [numFamilies]int64 // payload bytes per world
	liveBytes int64              // payload bytes referenced by current entries
	broken    bool               // a write failed (e.g. disk full); stop spilling
}

// header is the directory-log header binding a cache to its store.
type spillHeader struct {
	digest uint64
	seed   uint64
	n      int
	wpw    int
	bw     int
}

func encodeHeader(h spillHeader) []byte {
	buf := make([]byte, spillHeaderSize)
	copy(buf[0:8], spillMagic)
	binary.LittleEndian.PutUint32(buf[8:12], spillVersion)
	probe := nativeEndianProbe()
	copy(buf[12:16], probe[:])
	binary.LittleEndian.PutUint64(buf[16:24], h.digest)
	binary.LittleEndian.PutUint64(buf[24:32], h.seed)
	binary.LittleEndian.PutUint32(buf[32:36], uint32(h.n))
	binary.LittleEndian.PutUint32(buf[36:40], uint32(h.wpw))
	binary.LittleEndian.PutUint32(buf[40:44], uint32(h.bw))
	binary.LittleEndian.PutUint32(buf[48:52], crc32.Checksum(buf[:48], crcTable))
	return buf
}

// errCorruptHeader marks an unreadable header (as opposed to a valid
// header for a different store, which is a hard mismatch error).
var errCorruptHeader = errors.New("worldstore: corrupt spill-cache header")

func decodeHeader(buf []byte) (spillHeader, error) {
	var h spillHeader
	if len(buf) < spillHeaderSize || string(buf[0:8]) != spillMagic {
		return h, errCorruptHeader
	}
	if crc32.Checksum(buf[:48], crcTable) != binary.LittleEndian.Uint32(buf[48:52]) {
		return h, errCorruptHeader
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != spillVersion {
		return h, fmt.Errorf("worldstore: spill-cache format version %d, want %d", v, spillVersion)
	}
	probe := nativeEndianProbe()
	if *(*[4]byte)(unsafe.Pointer(&buf[12])) != probe {
		return h, errors.New("worldstore: spill cache written with different byte order")
	}
	h.digest = binary.LittleEndian.Uint64(buf[16:24])
	h.seed = binary.LittleEndian.Uint64(buf[24:32])
	h.n = int(binary.LittleEndian.Uint32(buf[32:36]))
	h.wpw = int(binary.LittleEndian.Uint32(buf[36:40]))
	h.bw = int(binary.LittleEndian.Uint32(buf[40:44]))
	return h, nil
}

func encodeRecord(fam family, idx, done int, off int64, payloadCRC uint32) []byte {
	buf := make([]byte, spillRecordSize)
	buf[0] = byte(fam)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(idx))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(done))
	binary.LittleEndian.PutUint32(buf[12:16], payloadCRC)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(off))
	binary.LittleEndian.PutUint32(buf[28:32], crc32.Checksum(buf[:28], crcTable))
	return buf
}

// decodeRecord parses one directory record, reporting ok=false for a torn
// or corrupt record (replay stops there).
func decodeRecord(buf []byte) (fam family, idx, done int, off int64, payloadCRC uint32, ok bool) {
	if len(buf) < spillRecordSize {
		return 0, 0, 0, 0, 0, false
	}
	if crc32.Checksum(buf[:28], crcTable) != binary.LittleEndian.Uint32(buf[28:32]) {
		return 0, 0, 0, 0, 0, false
	}
	fam = family(buf[0])
	idx = int(binary.LittleEndian.Uint32(buf[4:8]))
	done = int(binary.LittleEndian.Uint32(buf[8:12]))
	payloadCRC = binary.LittleEndian.Uint32(buf[12:16])
	off = int64(binary.LittleEndian.Uint64(buf[16:24]))
	return fam, idx, done, off, payloadCRC, true
}

// openSpillCache opens (or initializes) the cache directory for a store
// with the given identity, replaying the directory log. dropped reports
// entries discarded during replay because their payload extents outrun a
// (truncated) segment file.
func openSpillCache(dir string, h spillHeader, rowBytes [numFamilies]int64, bw int) (c *spillCache, dropped int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	c = &spillCache{dir: dir, rowBytes: rowBytes}
	defer func() {
		if err != nil {
			c.close()
		}
	}()
	for f, name := range map[family]string{famLabels: spillLabelsName, famBits: spillBitsName} {
		fh, ferr := os.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE, 0o644)
		if ferr != nil {
			return nil, 0, ferr
		}
		st, ferr := fh.Stat()
		if ferr != nil {
			fh.Close()
			return nil, 0, ferr
		}
		c.segs[f] = &segment{f: fh, size: st.Size()}
		c.entries[f] = make(map[int]spillEntry)
	}
	c.dirf, err = os.OpenFile(filepath.Join(dir, spillDirName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	raw, err := os.ReadFile(filepath.Join(dir, spillDirName))
	if err != nil {
		return nil, 0, err
	}
	if len(raw) == 0 {
		// Fresh cache: write the binding header.
		hdr := encodeHeader(h)
		if _, err := c.dirf.WriteAt(hdr, 0); err != nil {
			return nil, 0, err
		}
		c.dirSize = spillHeaderSize
		return c, 0, nil
	}
	got, herr := decodeHeader(raw)
	if herr != nil {
		return nil, 0, fmt.Errorf("%s: %w", dir, herr)
	}
	if got != h {
		return nil, 0, fmt.Errorf("worldstore: spill cache %s belongs to a different store (digest/seed/shape mismatch)", dir)
	}
	// Replay entry records; a torn or corrupt record ends the valid log and
	// the tail after it is truncated away.
	pos := spillHeaderSize
	for pos+spillRecordSize <= len(raw) {
		fam, idx, done, off, crc, ok := decodeRecord(raw[pos : pos+spillRecordSize])
		if !ok {
			break
		}
		pos += spillRecordSize
		if fam < 0 || fam >= numFamilies || idx < 0 || done <= 0 || done > bw {
			dropped++
			continue
		}
		length := int64(done) * rowBytes[fam]
		if off < 0 || off+length > c.segs[fam].size {
			// Segment truncated behind the directory's back: drop this
			// record. An earlier, shorter entry for the same block (whose
			// extent was validated when replayed) stays usable — spilled
			// prefixes are pure functions of the stream, so serving the
			// older prefix is still exact.
			dropped++
			continue
		}
		if old, exists := c.entries[fam][idx]; exists {
			c.liveBytes -= int64(old.done) * rowBytes[fam]
		}
		c.entries[fam][idx] = spillEntry{done: done, off: off, crc: crc}
		c.liveBytes += length
	}
	c.dirSize = int64(pos)
	if pos < len(raw) {
		if err := c.dirf.Truncate(c.dirSize); err != nil {
			return nil, 0, err
		}
	}
	return c, dropped, nil
}

func (c *spillCache) close() {
	if c == nil {
		return
	}
	for _, sg := range c.segs {
		if sg != nil {
			sg.close()
		}
	}
	if c.dirf != nil {
		_ = c.dirf.Close()
	}
}

// store persists block b's materialized prefix, superseding any shorter
// entry for the same (family, index). It reports whether a write happened;
// an entry already covering b.done worlds (or a previous IO failure) skips
// the write. The caller guarantees b is unreachable by readers (evicted,
// zero pins), so its payload is stable without holding block locks.
func (c *spillCache) store(b *block) bool {
	var data []byte
	switch b.fam {
	case famLabels:
		data = int32Bytes(b.labels[:b.done*int(c.rowBytes[famLabels]/4)])
	case famBits:
		data = uint64Bytes(b.bits[:b.done*int(c.rowBytes[famBits]/8)])
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return false
	}
	if e, ok := c.entries[b.fam][b.idx]; ok && e.done >= b.done {
		return false
	}
	off, err := c.segs[b.fam].append(data)
	if err != nil {
		c.broken = true
		return false
	}
	crc := crc32.Checksum(data, crcTable)
	rec := encodeRecord(b.fam, b.idx, b.done, off, crc)
	if _, err := c.dirf.WriteAt(rec, c.dirSize); err != nil {
		c.broken = true
		return false
	}
	c.dirSize += spillRecordSize
	if old, ok := c.entries[b.fam][b.idx]; ok {
		c.liveBytes -= int64(old.done) * c.rowBytes[b.fam]
	}
	c.entries[b.fam][b.idx] = spillEntry{done: b.done, off: off, crc: crc}
	c.liveBytes += int64(len(data))
	return true
}

// load tries to fill block b's payload from the disk tier, verifying the
// payload checksum. It returns loaded=true when b now holds the spilled
// prefix, and hadEntry=true when a directory entry existed at all — a
// failed load (truncated or corrupt payload) drops the entry so the block
// is recomputed, and the caller counts it. Called under b's block mutex.
func (c *spillCache) load(b *block) (loaded, hadEntry bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[b.fam][b.idx]
	if !ok {
		return false, false
	}
	length := int64(e.done) * c.rowBytes[b.fam]
	data, err := c.segs[b.fam].read(e.off, length)
	if err == nil && crc32.Checksum(data, crcTable) != e.crc {
		err = errors.New("worldstore: spill payload checksum mismatch")
	}
	if err != nil {
		delete(c.entries[b.fam], b.idx)
		c.liveBytes -= length
		return false, true
	}
	switch b.fam {
	case famLabels:
		b.labels = make([]int32, int(length)/4)
		copy(int32Bytes(b.labels), data)
	case famBits:
		b.bits = make([]uint64, int(length)/8)
		copy(uint64Bytes(b.bits), data)
	}
	b.done = e.done
	if b.fam == famBits {
		b.ready.Store(int32(e.done))
	}
	return true, true
}

// entryDone returns the persisted world count of (fam, idx), 0 if absent.
func (c *spillCache) entryDone(fam family, idx int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[fam][idx].done
}

// bytes returns the live payload bytes referenced by the directory.
func (c *spillCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveBytes
}
