package worldstore

import (
	"testing"
)

// The tier-order benchmarks behind BENCH_store.json (make bench-store):
// materializing the same depth-limited bitmap workload cold (hash every
// edge coin), spilled-warm (load checksummed blocks from the disk tier)
// and recompute-after-eviction (the price the tier removes). The spilled
// path reads sequential bytes and verifies a CRC; the recompute paths
// re-evaluate one hash per edge per world — which is why a warm restart
// from -worldcache beats recomputation by well over the 5x target.

const (
	benchNodes  = 4000
	benchWorlds = 128
)

// scanAll drives both families over [0, r): the bitmap blocks of a
// depth-limited workload plus the label blocks of an unlimited one.
func scanAll(s *Store, r int) {
	s.ScanBits(0, r, func(int, []uint64) {})
	s.Scan(0, r, func(int, []int32) {})
}

func BenchmarkBlockMaterializeCold(b *testing.B) {
	g := ringGraph(b, benchNodes, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(g, 7)
		scanAll(s, benchWorlds)
	}
	b.ReportMetric(benchWorlds, "worlds/op")
}

func BenchmarkBlockMaterializeRecompute(b *testing.B) {
	g := ringGraph(b, benchNodes, 1)
	s := New(g, 7)
	scanAll(s, benchWorlds) // prime: later passes are recomputes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetBudget(1) // evict everything
		s.SetBudget(0)
		scanAll(s, benchWorlds)
	}
	b.ReportMetric(benchWorlds, "worlds/op")
}

func BenchmarkBlockMaterializeSpilledWarm(b *testing.B) {
	g := ringGraph(b, benchNodes, 1)
	s := New(g, 7)
	if err := s.AttachCache(b.TempDir()); err != nil {
		b.Fatal(err)
	}
	scanAll(s, benchWorlds)
	s.SetBudget(1) // spill everything once; re-evictions skip the write
	s.SetBudget(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetBudget(1)
		s.SetBudget(0)
		scanAll(s, benchWorlds)
	}
	b.StopTimer()
	st := s.Stats()
	if st.DiskHits == 0 || st.PostSpillRecomputes != 0 {
		b.Fatalf("spilled-warm pass did not serve from disk: %+v", st)
	}
	b.ReportMetric(benchWorlds, "worlds/op")
}
