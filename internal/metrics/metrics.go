// Package metrics evaluates clusterings of uncertain graphs with the
// measures used in the paper's experimental section:
//
//   - p_min: the minimum connection probability of a node to its cluster
//     center (Equation 1, reported in Figure 1 top);
//   - p_avg: the average connection probability of nodes to their cluster
//     centers (Equation 2, Figure 1 bottom);
//   - inner-AVPR / outer-AVPR: the average pairwise reliability of node
//     pairs inside the same cluster / across clusters (Figure 2);
//   - the pair confusion matrix (TPR/FPR) against protein-complex ground
//     truth (Table 2).
//
// All probability metrics are Monte Carlo estimates computed world-by-world
// over a shared worldstore.Store, so different algorithms can be scored on
// the exact same sample of possible worlds — the same worlds the clustering
// oracle itself sampled, when store seeds coincide.
package metrics

import (
	"context"

	"ucgraph/internal/core"
	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

// ClusterProbs estimates, for every node u, the connection probability
// Pr(center(u) ~ u) over the first r worlds of ws. Unassigned nodes get 0.
//
// The computation is world-wise — one O(n) scan per world over the
// component labels — so its cost is independent of the number of clusters.
func ClusterProbs(cl *core.Clustering, ws *worldstore.Store, r int) []float64 {
	out, _ := ClusterProbsCtx(context.Background(), cl, ws, r)
	return out
}

// ClusterProbsCtx is ClusterProbs with cooperative cancellation: the world
// scan aborts at the next block boundary once ctx is done, returning ctx's
// error. A nil-error call is bit-identical to ClusterProbs.
func ClusterProbsCtx(ctx context.Context, cl *core.Clustering, ws *worldstore.Store, r int) ([]float64, error) {
	n := cl.N()
	counts := make([]int32, n)
	centerOf := make([]graph.NodeID, n)
	for u := 0; u < n; u++ {
		if a := cl.Assign[u]; a != core.Unassigned {
			centerOf[u] = cl.Centers[a]
		} else {
			centerOf[u] = -1
		}
	}
	if err := ws.ScanCtx(ctx, 0, r, func(_ int, lab []int32) {
		for u := 0; u < n; u++ {
			c := centerOf[u]
			if c >= 0 && lab[u] == lab[c] {
				counts[u]++
			}
		}
	}); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	inv := 1 / float64(r)
	for u, cnt := range counts {
		if centerOf[u] >= 0 {
			out[u] = float64(cnt) * inv
		}
	}
	return out, nil
}

// PMin returns the estimated minimum connection probability of any node to
// its cluster center (p_min of Figure 1). Unassigned nodes count as 0, so a
// partial clustering scores 0.
func PMin(cl *core.Clustering, ws *worldstore.Store, r int) float64 {
	v, _ := PMinCtx(context.Background(), cl, ws, r)
	return v
}

// PMinCtx is PMin with cooperative cancellation.
func PMinCtx(ctx context.Context, cl *core.Clustering, ws *worldstore.Store, r int) (float64, error) {
	probs, err := ClusterProbsCtx(ctx, cl, ws, r)
	if err != nil {
		return 0, err
	}
	min := 1.0
	for u, p := range probs {
		if cl.Assign[u] == core.Unassigned {
			return 0, nil
		}
		if p < min {
			min = p
		}
	}
	return min, nil
}

// PAvg returns the estimated average connection probability of nodes to
// their cluster centers (p_avg of Figure 1); unassigned nodes contribute 0.
func PAvg(cl *core.Clustering, ws *worldstore.Store, r int) float64 {
	v, _ := PAvgCtx(context.Background(), cl, ws, r)
	return v
}

// PAvgCtx is PAvg with cooperative cancellation.
func PAvgCtx(ctx context.Context, cl *core.Clustering, ws *worldstore.Store, r int) (float64, error) {
	probs, err := ClusterProbsCtx(ctx, cl, ws, r)
	if err != nil {
		return 0, err
	}
	if len(probs) == 0 {
		return 0, nil
	}
	s := 0.0
	for _, p := range probs {
		s += p
	}
	return s / float64(len(probs)), nil
}

// AVPR returns the inner and outer Average Vertex Pairwise Reliability of
// the clustering (Section 5.1):
//
//	inner-AVPR = avg over same-cluster pairs   of Pr(u ~ v)
//	outer-AVPR = avg over cross-cluster pairs  of Pr(u ~ v)
//
// Estimated over the first r worlds of ws. A clustering with no
// same-cluster (resp. cross-cluster) pairs reports 0 for that component.
func AVPR(cl *core.Clustering, ws *worldstore.Store, r int) (inner, outer float64) {
	inner, outer, _ = AVPRCtx(context.Background(), cl, ws, r)
	return inner, outer
}

// AVPRCtx is AVPR with cooperative cancellation.
func AVPRCtx(ctx context.Context, cl *core.Clustering, ws *worldstore.Store, r int) (inner, outer float64, err error) {
	n := cl.N()

	// Static pair counts.
	k := cl.K()
	clusterSize := make([]int64, k)
	assigned := int64(0)
	for _, a := range cl.Assign {
		if a != core.Unassigned {
			clusterSize[a]++
			assigned++
		}
	}
	var innerPairs int64
	for _, s := range clusterSize {
		innerPairs += s * (s - 1) / 2
	}
	totalPairs := assigned * (assigned - 1) / 2
	outerPairs := totalPairs - innerPairs

	// Per-world connected-pair counts, grouped by (cluster, component) for
	// the inner count and by component alone for the total count.
	var innerConnected, totalConnected int64
	compCount := make([]int64, n)  // indexed by component label
	groupCount := make([]int64, n) // per-cluster scratch, epoch-free via touched lists
	compTouched := make([]int32, 0, n)
	groupTouched := make([]int32, 0, n)
	clusters := cl.Clusters()
	err = ws.ScanCtx(ctx, 0, r, func(_ int, lab []int32) {
		// Total connected pairs among assigned nodes.
		compTouched = compTouched[:0]
		for u := 0; u < n; u++ {
			if cl.Assign[u] == core.Unassigned {
				continue
			}
			l := lab[u]
			if compCount[l] == 0 {
				compTouched = append(compTouched, l)
			}
			compCount[l]++
		}
		for _, l := range compTouched {
			c := compCount[l]
			totalConnected += c * (c - 1) / 2
			compCount[l] = 0
		}
		// Inner connected pairs, cluster by cluster.
		for _, members := range clusters {
			groupTouched = groupTouched[:0]
			for _, u := range members {
				l := lab[u]
				if groupCount[l] == 0 {
					groupTouched = append(groupTouched, l)
				}
				groupCount[l]++
			}
			for _, l := range groupTouched {
				c := groupCount[l]
				innerConnected += c * (c - 1) / 2
				groupCount[l] = 0
			}
		}
	})
	if err != nil {
		return 0, 0, err
	}

	if innerPairs > 0 {
		inner = float64(innerConnected) / (float64(innerPairs) * float64(r))
	}
	if outerPairs > 0 {
		outer = float64(totalConnected-innerConnected) / (float64(outerPairs) * float64(r))
	}
	return inner, outer, nil
}

// Confusion is a pair-level confusion matrix against ground-truth
// complexes: a pair of nodes placed in the same cluster is a true positive
// if some ground-truth complex contains both, a false positive otherwise
// (Section 5.2).
type Confusion struct {
	TP, FP, FN, TN int64
}

// TPR returns the true positive rate TP / (TP + FN); 0 when undefined.
func (c Confusion) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns the false positive rate FP / (FP + TN); 0 when undefined.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Precision returns TP / (TP + FP); 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// pairKey canonicalizes an unordered node pair.
func pairKey(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// PairConfusion scores a clustering against ground-truth complexes.
// Following Section 5.2, the evaluation is restricted to nodes that appear
// in at least one complex (the MIPS-covered proteins): positive pairs are
// pairs co-occurring in some complex, negatives are all other pairs of
// covered nodes.
func PairConfusion(cl *core.Clustering, complexes [][]graph.NodeID) Confusion {
	covered := map[graph.NodeID]bool{}
	positive := map[uint64]bool{}
	for _, cx := range complexes {
		for i, u := range cx {
			covered[u] = true
			for _, v := range cx[i+1:] {
				if u != v {
					positive[pairKey(u, v)] = true
				}
			}
		}
	}
	nCovered := int64(len(covered))
	totalPairs := nCovered * (nCovered - 1) / 2
	totalPositive := int64(len(positive))

	var conf Confusion
	// Predicted-positive pairs: same-cluster pairs of covered nodes.
	for _, members := range cl.Clusters() {
		var cov []graph.NodeID
		for _, u := range members {
			if covered[u] {
				cov = append(cov, u)
			}
		}
		for i, u := range cov {
			for _, v := range cov[i+1:] {
				if positive[pairKey(u, v)] {
					conf.TP++
				} else {
					conf.FP++
				}
			}
		}
	}
	conf.FN = totalPositive - conf.TP
	conf.TN = totalPairs - totalPositive - conf.FP
	return conf
}
