package metrics

import (
	"math"
	"testing"

	"ucgraph/internal/core"
	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathGraph(t *testing.T, n int, p float64) *graph.Uncertain {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1), P: p})
	}
	return mustGraph(t, n, edges)
}

func TestClusterProbsPath(t *testing.T) {
	// 4-path with p = 0.8, one cluster centered at node 0: the true
	// probabilities are 1, 0.8, 0.64, 0.512.
	g := pathGraph(t, 4, 0.8)
	ws := worldstore.New(g, 1)
	cl := &core.Clustering{
		Centers: []graph.NodeID{0},
		Assign:  []int32{0, 0, 0, 0},
		Prob:    []float64{1, 0, 0, 0},
	}
	const r = 40000
	probs := ClusterProbs(cl, ws, r)
	wants := []float64{1, 0.8, 0.64, 0.512}
	for u, want := range wants {
		sigma := math.Sqrt(want*(1-want)/r) + 1e-9
		if math.Abs(probs[u]-want) > 6*sigma {
			t.Fatalf("probs[%d] = %v, want ~%v", u, probs[u], want)
		}
	}
}

func TestClusterProbsUnassignedZero(t *testing.T) {
	g := pathGraph(t, 3, 0.9)
	ws := worldstore.New(g, 2)
	cl := &core.Clustering{
		Centers: []graph.NodeID{0},
		Assign:  []int32{0, 0, core.Unassigned},
		Prob:    []float64{1, 0.9, 0},
	}
	probs := ClusterProbs(cl, ws, 200)
	if probs[2] != 0 {
		t.Fatalf("unassigned node probability = %v, want 0", probs[2])
	}
}

func TestPMinAndPAvg(t *testing.T) {
	// Two certain cliques, clustered correctly: p_min = p_avg = 1.
	var edges []graph.Edge
	for c := 0; c < 2; c++ {
		b := int32(c * 3)
		edges = append(edges,
			graph.Edge{U: b, V: b + 1, P: 1}, graph.Edge{U: b + 1, V: b + 2, P: 1},
			graph.Edge{U: b, V: b + 2, P: 1})
	}
	g := mustGraph(t, 6, edges)
	ws := worldstore.New(g, 3)
	cl := &core.Clustering{
		Centers: []graph.NodeID{0, 3},
		Assign:  []int32{0, 0, 0, 1, 1, 1},
		Prob:    []float64{1, 1, 1, 1, 1, 1},
	}
	if got := PMin(cl, ws, 100); got != 1 {
		t.Fatalf("PMin = %v, want 1", got)
	}
	if got := PAvg(cl, ws, 100); got != 1 {
		t.Fatalf("PAvg = %v, want 1", got)
	}
	// Clustered wrongly (cross-clique), p_min = 0: the cliques are never
	// connected to each other.
	bad := &core.Clustering{
		Centers: []graph.NodeID{0, 1},
		Assign:  []int32{0, 1, 0, 1, 0, 1},
		Prob:    []float64{1, 1, 1, 1, 1, 1},
	}
	if got := PMin(bad, ws, 100); got != 0 {
		t.Fatalf("PMin of cross-clique clustering = %v, want 0", got)
	}
	// p_avg: nodes 0,1,2 connected to their centers (same clique), 3,4,5
	// never -> avg = 0.5.
	if got := PAvg(bad, ws, 100); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("PAvg = %v, want 0.5", got)
	}
}

func TestPMinPartialClusteringIsZero(t *testing.T) {
	g := pathGraph(t, 3, 0.9)
	ws := worldstore.New(g, 5)
	cl := &core.Clustering{
		Centers: []graph.NodeID{0},
		Assign:  []int32{0, 0, core.Unassigned},
		Prob:    []float64{1, 0.9, 0},
	}
	if got := PMin(cl, ws, 100); got != 0 {
		t.Fatalf("PMin of partial clustering = %v, want 0", got)
	}
}

func TestAVPRCertainCliques(t *testing.T) {
	// Two certain triangles, correct clustering: inner = 1, outer = 0.
	var edges []graph.Edge
	for c := 0; c < 2; c++ {
		b := int32(c * 3)
		edges = append(edges,
			graph.Edge{U: b, V: b + 1, P: 1}, graph.Edge{U: b + 1, V: b + 2, P: 1},
			graph.Edge{U: b, V: b + 2, P: 1})
	}
	g := mustGraph(t, 6, edges)
	ws := worldstore.New(g, 7)
	cl := &core.Clustering{
		Centers: []graph.NodeID{0, 3},
		Assign:  []int32{0, 0, 0, 1, 1, 1},
		Prob:    []float64{1, 1, 1, 1, 1, 1},
	}
	inner, outer := AVPR(cl, ws, 200)
	if inner != 1 {
		t.Fatalf("inner-AVPR = %v, want 1", inner)
	}
	if outer != 0 {
		t.Fatalf("outer-AVPR = %v, want 0", outer)
	}
}

func TestAVPRSingleEdgeExact(t *testing.T) {
	// Two nodes, p = 0.3, same cluster: inner-AVPR must estimate 0.3; no
	// cross pairs -> outer = 0.
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1, P: 0.3}})
	ws := worldstore.New(g, 11)
	cl := &core.Clustering{
		Centers: []graph.NodeID{0},
		Assign:  []int32{0, 0},
		Prob:    []float64{1, 0.3},
	}
	const r = 30000
	inner, outer := AVPR(cl, ws, r)
	sigma := math.Sqrt(0.3 * 0.7 / r)
	if math.Abs(inner-0.3) > 6*sigma {
		t.Fatalf("inner-AVPR = %v, want ~0.3", inner)
	}
	if outer != 0 {
		t.Fatalf("outer-AVPR = %v, want 0 (no cross pairs)", outer)
	}
}

func TestAVPRCrossPair(t *testing.T) {
	// Two nodes with p = 0.4 split into two singleton clusters:
	// outer-AVPR ~ 0.4, inner undefined -> 0.
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1, P: 0.4}})
	ws := worldstore.New(g, 13)
	cl := &core.Clustering{
		Centers: []graph.NodeID{0, 1},
		Assign:  []int32{0, 1},
		Prob:    []float64{1, 1},
	}
	const r = 30000
	inner, outer := AVPR(cl, ws, r)
	if inner != 0 {
		t.Fatalf("inner-AVPR = %v, want 0 (no inner pairs)", inner)
	}
	sigma := math.Sqrt(0.4 * 0.6 / r)
	if math.Abs(outer-0.4) > 6*sigma {
		t.Fatalf("outer-AVPR = %v, want ~0.4", outer)
	}
}

func TestAVPRHandComputedMixed(t *testing.T) {
	// Path 0-1-2 with p=0.5 each; clusters {0,1} and {2}.
	// Pairs: (0,1) inner, Pr = 0.5. (0,2): Pr = 0.25, (1,2): Pr = 0.5 outer.
	// inner = 0.5; outer = (0.25+0.5)/2 = 0.375.
	g := pathGraph(t, 3, 0.5)
	ws := worldstore.New(g, 17)
	cl := &core.Clustering{
		Centers: []graph.NodeID{0, 2},
		Assign:  []int32{0, 0, 1},
		Prob:    []float64{1, 0.5, 1},
	}
	const r = 60000
	inner, outer := AVPR(cl, ws, r)
	if math.Abs(inner-0.5) > 0.02 {
		t.Fatalf("inner-AVPR = %v, want ~0.5", inner)
	}
	if math.Abs(outer-0.375) > 0.02 {
		t.Fatalf("outer-AVPR = %v, want ~0.375", outer)
	}
}

func TestAVPRIgnoresUnassigned(t *testing.T) {
	// Unassigned nodes must not contribute to either metric.
	g := pathGraph(t, 4, 1.0)
	ws := worldstore.New(g, 19)
	cl := &core.Clustering{
		Centers: []graph.NodeID{0},
		Assign:  []int32{0, 0, core.Unassigned, core.Unassigned},
		Prob:    []float64{1, 1, 0, 0},
	}
	inner, outer := AVPR(cl, ws, 100)
	if inner != 1 {
		t.Fatalf("inner-AVPR = %v, want 1", inner)
	}
	if outer != 0 {
		t.Fatalf("outer-AVPR = %v, want 0 (no assigned cross pairs)", outer)
	}
}

func TestConfusionRates(t *testing.T) {
	c := Confusion{TP: 30, FP: 10, FN: 20, TN: 40}
	if got := c.TPR(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("TPR = %v, want 0.6", got)
	}
	if got := c.FPR(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("FPR = %v, want 0.2", got)
	}
	if got := c.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Precision = %v, want 0.75", got)
	}
	zero := Confusion{}
	if zero.TPR() != 0 || zero.FPR() != 0 || zero.Precision() != 0 {
		t.Fatal("zero confusion must report 0 rates")
	}
}

func TestPairConfusionPerfectClustering(t *testing.T) {
	// Clusters exactly match the complexes.
	cl := &core.Clustering{
		Centers: []graph.NodeID{0, 3},
		Assign:  []int32{0, 0, 0, 1, 1},
		Prob:    []float64{1, 1, 1, 1, 1},
	}
	complexes := [][]graph.NodeID{{0, 1, 2}, {3, 4}}
	conf := PairConfusion(cl, complexes)
	if conf.TP != 4 || conf.FP != 0 { // C(3,2)+C(2,2) = 3+1
		t.Fatalf("TP=%d FP=%d, want 4, 0", conf.TP, conf.FP)
	}
	if conf.TPR() != 1 || conf.FPR() != 0 {
		t.Fatalf("TPR=%v FPR=%v, want 1, 0", conf.TPR(), conf.FPR())
	}
}

func TestPairConfusionAllInOneCluster(t *testing.T) {
	// One big cluster: every positive pair found (TPR 1) but all negative
	// pairs reported too (FPR 1).
	cl := &core.Clustering{
		Centers: []graph.NodeID{0},
		Assign:  []int32{0, 0, 0, 0},
		Prob:    []float64{1, 1, 1, 1},
	}
	complexes := [][]graph.NodeID{{0, 1}, {2, 3}}
	conf := PairConfusion(cl, complexes)
	if conf.TPR() != 1 {
		t.Fatalf("TPR = %v, want 1", conf.TPR())
	}
	if conf.FPR() != 1 {
		t.Fatalf("FPR = %v, want 1", conf.FPR())
	}
	// 4 covered nodes -> 6 pairs; 2 positive, 4 negative.
	if conf.TP != 2 || conf.FP != 4 || conf.FN != 0 || conf.TN != 0 {
		t.Fatalf("confusion = %+v", conf)
	}
}

func TestPairConfusionSingletons(t *testing.T) {
	// All singleton clusters: nothing predicted positive.
	cl := &core.Clustering{
		Centers: []graph.NodeID{0, 1, 2},
		Assign:  []int32{0, 1, 2},
		Prob:    []float64{1, 1, 1},
	}
	complexes := [][]graph.NodeID{{0, 1, 2}}
	conf := PairConfusion(cl, complexes)
	if conf.TP != 0 || conf.FP != 0 {
		t.Fatalf("TP=%d FP=%d, want 0, 0", conf.TP, conf.FP)
	}
	if conf.FN != 3 {
		t.Fatalf("FN = %d, want 3", conf.FN)
	}
}

func TestPairConfusionIgnoresUncoveredNodes(t *testing.T) {
	// Node 9 is clustered with 0 and 1 but appears in no complex: pairs
	// involving it must not count at all.
	cl := &core.Clustering{
		Centers: []graph.NodeID{0},
		Assign: []int32{0, 0, core.Unassigned, core.Unassigned, core.Unassigned,
			core.Unassigned, core.Unassigned, core.Unassigned, core.Unassigned, 0},
		Prob: []float64{1, 1, 0, 0, 0, 0, 0, 0, 0, 1},
	}
	complexes := [][]graph.NodeID{{0, 1}}
	conf := PairConfusion(cl, complexes)
	if conf.TP != 1 || conf.FP != 0 || conf.FN != 0 || conf.TN != 0 {
		t.Fatalf("confusion = %+v, want TP=1 only", conf)
	}
}

func TestPairConfusionOverlappingComplexes(t *testing.T) {
	// Overlapping complexes must not double-count pairs: {0,1,2} and
	// {1,2,3} share the pair (1,2).
	cl := &core.Clustering{
		Centers: []graph.NodeID{0},
		Assign:  []int32{0, 0, 0, 0},
		Prob:    []float64{1, 1, 1, 1},
	}
	complexes := [][]graph.NodeID{{0, 1, 2}, {1, 2, 3}}
	conf := PairConfusion(cl, complexes)
	// Positive pairs: (0,1),(0,2),(1,2),(1,3),(2,3) = 5; (0,3) negative.
	if conf.TP != 5 || conf.FP != 1 {
		t.Fatalf("TP=%d FP=%d, want 5, 1", conf.TP, conf.FP)
	}
}
