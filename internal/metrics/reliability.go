package metrics

import (
	"context"

	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

// This file provides classical network-reliability statistics (Section 1.1
// of the paper traces the uncertain-graph model back to this literature),
// estimated over the same shared possible-world streams as the clustering
// metrics. Every statistic comes in a plain and a Ctx form; the Ctx forms
// abort the world scan at the next block boundary once the context is done
// and are otherwise bit-identical.

// ExpectedComponents estimates the expected number of connected components
// of a random possible world, over the first r worlds of ws.
func ExpectedComponents(ws *worldstore.Store, r int) float64 {
	v, _ := ExpectedComponentsCtx(context.Background(), ws, r)
	return v
}

// ExpectedComponentsCtx is ExpectedComponents with cooperative
// cancellation.
func ExpectedComponentsCtx(ctx context.Context, ws *worldstore.Store, r int) (float64, error) {
	n := ws.NumNodes()
	seen := make([]bool, n)
	total := 0
	if err := ws.ScanCtx(ctx, 0, r, func(_ int, lab []int32) {
		count := 0
		for _, l := range lab {
			if !seen[l] {
				seen[l] = true
				count++
			}
		}
		for _, l := range lab {
			seen[l] = false
		}
		total += count
	}); err != nil {
		return 0, err
	}
	return float64(total) / float64(r), nil
}

// SetReliability estimates the probability that all nodes of set lie in
// one connected component of a random possible world (k-terminal
// reliability). An empty or singleton set has reliability 1.
func SetReliability(ws *worldstore.Store, set []graph.NodeID, r int) float64 {
	v, _ := SetReliabilityCtx(context.Background(), ws, set, r)
	return v
}

// SetReliabilityCtx is SetReliability with cooperative cancellation.
func SetReliabilityCtx(ctx context.Context, ws *worldstore.Store, set []graph.NodeID, r int) (float64, error) {
	if len(set) <= 1 {
		return 1, ctx.Err()
	}
	hits := 0
	if err := ws.ScanCtx(ctx, 0, r, func(_ int, lab []int32) {
		l0 := lab[set[0]]
		for _, u := range set[1:] {
			if lab[u] != l0 {
				return
			}
		}
		hits++
	}); err != nil {
		return 0, err
	}
	return float64(hits) / float64(r), nil
}

// AllTerminalReliability estimates the probability that a random possible
// world is connected (all nodes in one component).
func AllTerminalReliability(ws *worldstore.Store, r int) float64 {
	v, _ := AllTerminalReliabilityCtx(context.Background(), ws, r)
	return v
}

// AllTerminalReliabilityCtx is AllTerminalReliability with cooperative
// cancellation.
func AllTerminalReliabilityCtx(ctx context.Context, ws *worldstore.Store, r int) (float64, error) {
	n := ws.NumNodes()
	set := make([]graph.NodeID, n)
	for i := range set {
		set[i] = graph.NodeID(i)
	}
	return SetReliabilityCtx(ctx, ws, set, r)
}

// LargestComponentFraction estimates the expected fraction of nodes in the
// largest component of a random possible world.
func LargestComponentFraction(ws *worldstore.Store, r int) float64 {
	v, _ := LargestComponentFractionCtx(context.Background(), ws, r)
	return v
}

// LargestComponentFractionCtx is LargestComponentFraction with cooperative
// cancellation.
func LargestComponentFractionCtx(ctx context.Context, ws *worldstore.Store, r int) (float64, error) {
	n := ws.NumNodes()
	count := make([]int32, n)
	total := 0.0
	if err := ws.ScanCtx(ctx, 0, r, func(_ int, lab []int32) {
		max := int32(0)
		for _, l := range lab {
			count[l]++
			if count[l] > max {
				max = count[l]
			}
		}
		for _, l := range lab {
			count[l] = 0
		}
		total += float64(max) / float64(n)
	}); err != nil {
		return 0, err
	}
	return total / float64(r), nil
}
