package metrics

import (
	"context"

	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

// This file provides classical network-reliability statistics (Section 1.1
// of the paper traces the uncertain-graph model back to this literature),
// estimated over the same shared possible-world streams as the clustering
// metrics. Every statistic comes in a plain and a Ctx form; the Ctx forms
// abort the world scan at the next block boundary once the context is done
// and are otherwise bit-identical.
//
// Each statistic also has a *TallyCtx form returning the raw integer tally
// over an arbitrary world range [lo, hi). The estimators are thin wrappers
// over the tallies, and the shard fabric scatters the same tallies across
// workers — integer sums are order-free, so a distributed estimate built
// from per-range tallies is bit-identical to the local one as long as both
// sides finish with the same float operations (see the estimator bodies
// below; internal/shard mirrors them exactly).

// ComponentsTallyCtx counts connected components summed over worlds
// [lo, hi) of ws.
func ComponentsTallyCtx(ctx context.Context, ws *worldstore.Store, lo, hi int) (int64, error) {
	seen := make([]bool, ws.NumNodes())
	var total int64
	if err := ws.ScanCtx(ctx, lo, hi, func(_ int, lab []int32) {
		count := int64(0)
		for _, l := range lab {
			if !seen[l] {
				seen[l] = true
				count++
			}
		}
		for _, l := range lab {
			seen[l] = false
		}
		total += count
	}); err != nil {
		return 0, err
	}
	return total, nil
}

// SetReliabilityTallyCtx counts the worlds in [lo, hi) where all nodes of
// set share one connected component. A set of fewer than two nodes is
// connected in every world, so the tally is hi-lo without a scan.
func SetReliabilityTallyCtx(ctx context.Context, ws *worldstore.Store, set []graph.NodeID, lo, hi int) (int64, error) {
	if len(set) <= 1 {
		return int64(hi - lo), ctx.Err()
	}
	var hits int64
	if err := ws.ScanCtx(ctx, lo, hi, func(_ int, lab []int32) {
		l0 := lab[set[0]]
		for _, u := range set[1:] {
			if lab[u] != l0 {
				return
			}
		}
		hits++
	}); err != nil {
		return 0, err
	}
	return hits, nil
}

// AllTerminalReliabilityTallyCtx counts the worlds in [lo, hi) that are
// connected (all nodes in one component).
func AllTerminalReliabilityTallyCtx(ctx context.Context, ws *worldstore.Store, lo, hi int) (int64, error) {
	n := ws.NumNodes()
	set := make([]graph.NodeID, n)
	for i := range set {
		set[i] = graph.NodeID(i)
	}
	return SetReliabilityTallyCtx(ctx, ws, set, lo, hi)
}

// LargestComponentTallyCtx sums the size of the largest component over
// worlds [lo, hi) of ws.
func LargestComponentTallyCtx(ctx context.Context, ws *worldstore.Store, lo, hi int) (int64, error) {
	count := make([]int32, ws.NumNodes())
	var total int64
	if err := ws.ScanCtx(ctx, lo, hi, func(_ int, lab []int32) {
		max := int32(0)
		for _, l := range lab {
			count[l]++
			if count[l] > max {
				max = count[l]
			}
		}
		for _, l := range lab {
			count[l] = 0
		}
		total += int64(max)
	}); err != nil {
		return 0, err
	}
	return total, nil
}

// ExpectedComponents estimates the expected number of connected components
// of a random possible world, over the first r worlds of ws.
func ExpectedComponents(ws *worldstore.Store, r int) float64 {
	v, _ := ExpectedComponentsCtx(context.Background(), ws, r)
	return v
}

// ExpectedComponentsCtx is ExpectedComponents with cooperative
// cancellation.
func ExpectedComponentsCtx(ctx context.Context, ws *worldstore.Store, r int) (float64, error) {
	tally, err := ComponentsTallyCtx(ctx, ws, 0, r)
	if err != nil {
		return 0, err
	}
	return float64(tally) / float64(r), nil
}

// SetReliability estimates the probability that all nodes of set lie in
// one connected component of a random possible world (k-terminal
// reliability). An empty or singleton set has reliability 1.
func SetReliability(ws *worldstore.Store, set []graph.NodeID, r int) float64 {
	v, _ := SetReliabilityCtx(context.Background(), ws, set, r)
	return v
}

// SetReliabilityCtx is SetReliability with cooperative cancellation.
func SetReliabilityCtx(ctx context.Context, ws *worldstore.Store, set []graph.NodeID, r int) (float64, error) {
	if len(set) <= 1 {
		return 1, ctx.Err()
	}
	hits, err := SetReliabilityTallyCtx(ctx, ws, set, 0, r)
	if err != nil {
		return 0, err
	}
	return float64(hits) / float64(r), nil
}

// AllTerminalReliability estimates the probability that a random possible
// world is connected (all nodes in one component).
func AllTerminalReliability(ws *worldstore.Store, r int) float64 {
	v, _ := AllTerminalReliabilityCtx(context.Background(), ws, r)
	return v
}

// AllTerminalReliabilityCtx is AllTerminalReliability with cooperative
// cancellation.
func AllTerminalReliabilityCtx(ctx context.Context, ws *worldstore.Store, r int) (float64, error) {
	hits, err := AllTerminalReliabilityTallyCtx(ctx, ws, 0, r)
	if err != nil {
		return 0, err
	}
	return float64(hits) / float64(r), nil
}

// LargestComponentFraction estimates the expected fraction of nodes in the
// largest component of a random possible world.
func LargestComponentFraction(ws *worldstore.Store, r int) float64 {
	v, _ := LargestComponentFractionCtx(context.Background(), ws, r)
	return v
}

// LargestComponentFractionCtx is LargestComponentFraction with cooperative
// cancellation.
func LargestComponentFractionCtx(ctx context.Context, ws *worldstore.Store, r int) (float64, error) {
	tally, err := LargestComponentTallyCtx(ctx, ws, 0, r)
	if err != nil {
		return 0, err
	}
	return float64(tally) / float64(r) / float64(ws.NumNodes()), nil
}
