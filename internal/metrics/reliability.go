package metrics

import (
	"ucgraph/internal/graph"
	"ucgraph/internal/sampler"
)

// This file provides classical network-reliability statistics (Section 1.1
// of the paper traces the uncertain-graph model back to this literature),
// estimated over the same shared possible-world streams as the clustering
// metrics.

// ExpectedComponents estimates the expected number of connected components
// of a random possible world, over the first r worlds of ls.
func ExpectedComponents(ls *sampler.LabelSet, r int) float64 {
	ls.Grow(r)
	n := ls.Graph().NumNodes()
	seen := make([]bool, n)
	total := 0
	for w := 0; w < r; w++ {
		lab := ls.WorldLabels(w)
		count := 0
		for _, l := range lab {
			if !seen[l] {
				seen[l] = true
				count++
			}
		}
		for _, l := range lab {
			seen[l] = false
		}
		total += count
	}
	return float64(total) / float64(r)
}

// SetReliability estimates the probability that all nodes of set lie in
// one connected component of a random possible world (k-terminal
// reliability). An empty or singleton set has reliability 1.
func SetReliability(ls *sampler.LabelSet, set []graph.NodeID, r int) float64 {
	if len(set) <= 1 {
		return 1
	}
	ls.Grow(r)
	hits := 0
	for w := 0; w < r; w++ {
		lab := ls.WorldLabels(w)
		l0 := lab[set[0]]
		ok := true
		for _, u := range set[1:] {
			if lab[u] != l0 {
				ok = false
				break
			}
		}
		if ok {
			hits++
		}
	}
	return float64(hits) / float64(r)
}

// AllTerminalReliability estimates the probability that a random possible
// world is connected (all nodes in one component).
func AllTerminalReliability(ls *sampler.LabelSet, r int) float64 {
	n := ls.Graph().NumNodes()
	set := make([]graph.NodeID, n)
	for i := range set {
		set[i] = graph.NodeID(i)
	}
	return SetReliability(ls, set, r)
}

// LargestComponentFraction estimates the expected fraction of nodes in the
// largest component of a random possible world.
func LargestComponentFraction(ls *sampler.LabelSet, r int) float64 {
	ls.Grow(r)
	n := ls.Graph().NumNodes()
	count := make([]int32, n)
	total := 0.0
	for w := 0; w < r; w++ {
		lab := ls.WorldLabels(w)
		max := int32(0)
		for _, l := range lab {
			count[l]++
			if count[l] > max {
				max = count[l]
			}
		}
		for _, l := range lab {
			count[l] = 0
		}
		total += float64(max) / float64(n)
	}
	return total / float64(r)
}
