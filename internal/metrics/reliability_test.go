package metrics

import (
	"math"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

func TestExpectedComponentsSingleEdge(t *testing.T) {
	// Two nodes, edge p: E[components] = 2 - p.
	for _, p := range []float64{0.2, 0.5, 0.9} {
		g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1, P: p}})
		ws := worldstore.New(g, uint64(10*p))
		const r = 30000
		got := ExpectedComponents(ws, r)
		want := 2 - p
		sigma := math.Sqrt(p*(1-p)/r) + 1e-9
		if math.Abs(got-want) > 6*sigma {
			t.Fatalf("p=%v: E[components] = %v, want %v", p, got, want)
		}
	}
}

func TestExpectedComponentsCertainGraph(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1, P: 1}, {U: 1, V: 2, P: 1}, {U: 3, V: 4, P: 1},
	})
	ws := worldstore.New(g, 1)
	if got := ExpectedComponents(ws, 100); got != 2 {
		t.Fatalf("E[components] = %v, want exactly 2", got)
	}
}

func TestSetReliabilityPath(t *testing.T) {
	// {0, 2} on a 0.8-path: both edges needed -> 0.64.
	g := pathGraph(t, 3, 0.8)
	ws := worldstore.New(g, 3)
	const r = 30000
	got := SetReliability(ws, []graph.NodeID{0, 2}, r)
	sigma := math.Sqrt(0.64 * 0.36 / r)
	if math.Abs(got-0.64) > 6*sigma {
		t.Fatalf("SetReliability = %v, want ~0.64", got)
	}
}

func TestSetReliabilityTrivialSets(t *testing.T) {
	g := pathGraph(t, 3, 0.5)
	ws := worldstore.New(g, 5)
	if got := SetReliability(ws, nil, 100); got != 1 {
		t.Fatalf("empty set reliability = %v", got)
	}
	if got := SetReliability(ws, []graph.NodeID{1}, 100); got != 1 {
		t.Fatalf("singleton reliability = %v", got)
	}
}

func TestAllTerminalReliabilityPath(t *testing.T) {
	// 3-path with p = 0.9: connected iff both edges live -> 0.81.
	g := pathGraph(t, 3, 0.9)
	ws := worldstore.New(g, 7)
	const r = 30000
	got := AllTerminalReliability(ws, r)
	sigma := math.Sqrt(0.81 * 0.19 / r)
	if math.Abs(got-0.81) > 6*sigma {
		t.Fatalf("all-terminal reliability = %v, want ~0.81", got)
	}
}

func TestAllTerminalCertain(t *testing.T) {
	g := pathGraph(t, 4, 1.0)
	ws := worldstore.New(g, 9)
	if got := AllTerminalReliability(ws, 50); got != 1 {
		t.Fatalf("certain path reliability = %v, want 1", got)
	}
}

func TestLargestComponentFraction(t *testing.T) {
	// Two nodes, p=0.5: largest component fraction = 1 (connected) or 0.5
	// (split) -> expectation 0.75.
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1, P: 0.5}})
	ws := worldstore.New(g, 11)
	const r = 30000
	got := LargestComponentFraction(ws, r)
	sigma := math.Sqrt(0.25*0.25/float64(r)) + 1e-9
	if math.Abs(got-0.75) > 8*sigma {
		t.Fatalf("largest component fraction = %v, want ~0.75", got)
	}
}

func TestLargestComponentFractionCertain(t *testing.T) {
	g := pathGraph(t, 6, 1.0)
	ws := worldstore.New(g, 13)
	if got := LargestComponentFraction(ws, 50); got != 1 {
		t.Fatalf("fraction = %v, want 1", got)
	}
}
