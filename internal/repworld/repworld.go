// Package repworld extracts representative possible worlds from uncertain
// graphs, after Parchas, Gullo, Papadias and Bonchi, "Uncertain graph
// processing through representative instances" (TODS 2015) — reference
// [27] of the paper under reproduction, which surveys it as the main
// alternative to querying the possible-world distribution directly: pick
// one deterministic instance that preserves key expected properties, then
// run classical graph algorithms on it.
//
// Three extractors are provided:
//
//   - MostProbable: keep each edge iff p(e) >= 1/2 — the mode of the
//     distribution under edge independence, the baseline in [27];
//   - AverageDegree: the ADR-style greedy that repairs the most-probable
//     world toward the expected degrees, eliminating its systematic bias
//     (dense regions of low-probability edges vanish entirely from the
//     most-probable world even though they are never empty in expectation);
//   - BestSampled: the sampled world with the smallest discrepancy among
//     the first r worlds of a shared world store — a representative that
//     is an actual outcome of the distribution, drawn from the same stream
//     every other subsystem queries.
//
// The discrepancy measure is sum_v |deg_G'(v) - expdeg_G(v)|, the objective
// of [27].
package repworld

import (
	"math"
	"sort"

	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

// Discrepancy returns sum over nodes of |deg(v) in world - expected
// deg(v) in g|, where the world is given by its kept edge IDs.
func Discrepancy(g *graph.Uncertain, kept []int32) float64 {
	deg := make([]float64, g.NumNodes())
	for _, id := range kept {
		e := g.EdgeByID(id)
		deg[e.U]++
		deg[e.V]++
	}
	total := 0.0
	for v := 0; v < g.NumNodes(); v++ {
		total += math.Abs(deg[v] - g.ExpectedDegree(graph.NodeID(v)))
	}
	return total
}

// MostProbable returns the edge IDs of the most probable possible world:
// every edge with p(e) >= 1/2.
func MostProbable(g *graph.Uncertain) []int32 {
	var kept []int32
	for id, e := range g.Edges() {
		if e.P >= 0.5 {
			kept = append(kept, int32(id))
		}
	}
	return kept
}

// AverageDegree extracts a representative world whose node degrees track
// the expected degrees. Starting from the most probable world, it greedily
// flips the edge (add an absent edge / drop a present one) that most
// reduces the degree discrepancy, preferring more (resp. less) probable
// edges on ties, until no flip improves. This is the greedy core of the
// ADR algorithm of [27].
func AverageDegree(g *graph.Uncertain) []int32 {
	n := g.NumNodes()
	m := g.NumEdges()
	present := make([]bool, m)
	deg := make([]float64, n)
	expDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		expDeg[v] = g.ExpectedDegree(graph.NodeID(v))
	}
	for _, id := range MostProbable(g) {
		present[id] = true
		e := g.EdgeByID(id)
		deg[e.U]++
		deg[e.V]++
	}

	// gain of flipping edge id: reduction in |deg-exp| at both endpoints.
	gain := func(id int32) float64 {
		e := g.EdgeByID(id)
		du, dv := deg[e.U]-expDeg[e.U], deg[e.V]-expDeg[e.V]
		var ndu, ndv float64
		if present[id] {
			ndu, ndv = du-1, dv-1
		} else {
			ndu, ndv = du+1, dv+1
		}
		return (math.Abs(du) + math.Abs(dv)) - (math.Abs(ndu) + math.Abs(ndv))
	}

	// Greedy passes over edges sorted by probability (descending for
	// additions, ascending for removals folds into one ordering by
	// |p - 0.5|: the most "wrongly decided" edges first).
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		pa := math.Abs(g.EdgeByID(order[a]).P - 0.5)
		pb := math.Abs(g.EdgeByID(order[b]).P - 0.5)
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	for pass := 0; pass < 16; pass++ {
		improved := false
		for _, id := range order {
			if gain(id) > 1e-12 {
				e := g.EdgeByID(id)
				if present[id] {
					present[id] = false
					deg[e.U]--
					deg[e.V]--
				} else {
					present[id] = true
					deg[e.U]++
					deg[e.V]++
				}
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	var kept []int32
	for id := int32(0); id < int32(m); id++ {
		if present[id] {
			kept = append(kept, id)
		}
	}
	return kept
}

// BestSampled returns the kept edge IDs of the world with the smallest
// degree discrepancy among the first r worlds of ws, together with that
// world's stream index (ties break to the smaller index). Unlike
// MostProbable and AverageDegree, which synthesize an instance, the result
// is an actual sampled possible world — the exact world any other consumer
// of ws observes at the returned index, which makes downstream analyses on
// the representative instance consistent with the Monte Carlo estimates
// computed over the same stream.
func BestSampled(ws *worldstore.Store, r int) (kept []int32, index int) {
	if r < 1 {
		r = 1
	}
	ws.Grow(r)
	best := math.Inf(1)
	index = 0
	for i := 0; i < r; i++ {
		edges := ws.World(i).PresentEdges()
		if d := Discrepancy(ws.Graph(), edges); d < best {
			best, kept, index = d, edges, i
		}
	}
	return kept, index
}

// Materialize builds the deterministic graph of a representative world
// (all kept edges with probability 1), suitable for classical graph
// algorithms.
func Materialize(g *graph.Uncertain, kept []int32) (*graph.Uncertain, error) {
	b := graph.NewBuilder(g.NumNodes())
	for _, id := range kept {
		e := g.EdgeByID(id)
		if err := b.AddEdge(e.U, e.V, 1); err != nil {
			return nil, err
		}
	}
	if len(kept) == 0 {
		// Builder requires >= 1 node; ensure the node set survives.
		b.EnsureNode(graph.NodeID(g.NumNodes() - 1))
	}
	return b.Build()
}
