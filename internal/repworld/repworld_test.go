package repworld

import (
	"math"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
	"ucgraph/internal/worldstore"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMostProbableKeepsMajorityEdges(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.5}, {U: 2, V: 3, P: 0.2},
	})
	kept := MostProbable(g)
	if len(kept) != 2 {
		t.Fatalf("kept %d edges, want 2 (p >= 0.5)", len(kept))
	}
	for _, id := range kept {
		if g.EdgeByID(id).P < 0.5 {
			t.Fatalf("kept an edge with p = %v", g.EdgeByID(id).P)
		}
	}
}

func TestDiscrepancyHandComputed(t *testing.T) {
	// Single edge p=0.4: most-probable world drops it. Expected degrees
	// are 0.4 and 0.4 -> discrepancy 0.8 for the empty world, 1.2 for the
	// full world.
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1, P: 0.4}})
	if got := Discrepancy(g, nil); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("empty-world discrepancy = %v, want 0.8", got)
	}
	if got := Discrepancy(g, []int32{0}); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("full-world discrepancy = %v, want 1.2", got)
	}
}

func TestAverageDegreeFixesLowProbDenseBias(t *testing.T) {
	// A 6-clique of p=0.4 edges: the most-probable world is empty (every
	// node loses its expected degree of 2), while the expected degree
	// profile wants each node to keep ~2 incident edges. The ADR greedy
	// must keep a substantial number of edges and beat the most-probable
	// world's discrepancy by a wide margin.
	var edges []graph.Edge
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j), P: 0.4})
		}
	}
	g := mustGraph(t, 6, edges)
	mp := MostProbable(g)
	if len(mp) != 0 {
		t.Fatalf("most-probable world of a 0.4-clique kept %d edges", len(mp))
	}
	adr := AverageDegree(g)
	if len(adr) < 4 {
		t.Fatalf("ADR kept only %d edges", len(adr))
	}
	dMP := Discrepancy(g, mp)
	dADR := Discrepancy(g, adr)
	if dADR > dMP/2 {
		t.Fatalf("ADR discrepancy %v not far below most-probable %v", dADR, dMP)
	}
}

func TestAverageDegreeNeverWorseThanMostProbable(t *testing.T) {
	x := rng.NewXoshiro256(5)
	for iter := 0; iter < 20; iter++ {
		n := 6 + x.Intn(10)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := int32(x.Intn(n)), int32(x.Intn(n))
			if u != v {
				_ = b.AddEdge(u, v, 0.05+0.9*x.Float64())
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		dMP := Discrepancy(g, MostProbable(g))
		dADR := Discrepancy(g, AverageDegree(g))
		if dADR > dMP+1e-9 {
			t.Fatalf("iter %d: ADR discrepancy %v exceeds most-probable %v", iter, dADR, dMP)
		}
	}
}

func TestAverageDegreeKeepsHighProbEdges(t *testing.T) {
	// Certain edges must always stay: dropping an edge with p = 1 can
	// never reduce the discrepancy.
	g := mustGraph(t, 4, []graph.Edge{
		{U: 0, V: 1, P: 1}, {U: 1, V: 2, P: 1}, {U: 2, V: 3, P: 0.1},
	})
	kept := AverageDegree(g)
	has := map[int32]bool{}
	for _, id := range kept {
		has[id] = true
	}
	for id := int32(0); id < int32(g.NumEdges()); id++ {
		if g.EdgeByID(id).P == 1 && !has[id] {
			t.Fatalf("ADR dropped a certain edge (id %d)", id)
		}
	}
}

func TestMaterialize(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.6}, {U: 2, V: 3, P: 0.2},
	})
	world, err := Materialize(g, MostProbable(g))
	if err != nil {
		t.Fatal(err)
	}
	if world.NumNodes() != 4 {
		t.Fatalf("materialized world has %d nodes, want 4", world.NumNodes())
	}
	if world.NumEdges() != 2 {
		t.Fatalf("materialized world has %d edges, want 2", world.NumEdges())
	}
	for _, e := range world.Edges() {
		if e.P != 1 {
			t.Fatalf("materialized edge has p = %v, want 1", e.P)
		}
	}
}

func TestMaterializeEmptyWorld(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1, P: 0.2}})
	world, err := Materialize(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if world.NumNodes() != 3 || world.NumEdges() != 0 {
		t.Fatalf("empty world = %d nodes %d edges", world.NumNodes(), world.NumEdges())
	}
}

func TestBestSampledIsActualWorldWithMinDiscrepancy(t *testing.T) {
	x := rng.NewXoshiro256(4)
	b := graph.NewBuilder(10)
	for i := int32(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if x.Float64() < 0.6 {
				if err := b.AddEdge(i, j, 0.2+0.6*x.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	const r = 64
	ws := worldstore.New(g, 21)
	kept, idx := BestSampled(ws, r)
	if idx < 0 || idx >= r {
		t.Fatalf("index %d outside [0, %d)", idx, r)
	}
	// The returned edge set must be exactly the stream's world at idx.
	want := ws.World(idx).PresentEdges()
	if len(kept) != len(want) {
		t.Fatalf("kept %d edges, world %d has %d", len(kept), idx, len(want))
	}
	for i := range kept {
		if kept[i] != want[i] {
			t.Fatalf("edge list mismatch at %d: %d != %d", i, kept[i], want[i])
		}
	}
	// And no sampled world may beat its discrepancy.
	best := Discrepancy(g, kept)
	for i := 0; i < r; i++ {
		if d := Discrepancy(g, ws.World(i).PresentEdges()); d < best {
			t.Fatalf("world %d has discrepancy %v < returned %v", i, d, best)
		}
	}
}
