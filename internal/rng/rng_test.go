package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the splitmix64 reference
	// implementation (Vigna).
	sm := NewSplitMix64(1234567)
	want := []uint64{
		6457827717110365317, 3203168211198807973, 9817491932198370423,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("SplitMix64(1234567) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a, b := NewXoshiro256(99), NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a, b := NewXoshiro256(1), NewXoshiro256(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(7)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := NewXoshiro256(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	x := NewXoshiro256(13)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 1000; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	x := NewXoshiro256(17)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[x.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Intn(%d): value %d drawn %d times, want ~%.0f", n, v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewXoshiro256(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	x := NewXoshiro256(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	x := NewXoshiro256(29)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	x.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed the multiset: sum %d -> %d", sum, got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	x := NewXoshiro256(31)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := x.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	x := NewXoshiro256(37)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += x.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestMix64Bijective(t *testing.T) {
	// Sampled injectivity check: distinct inputs map to distinct outputs.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestStreamIndependence(t *testing.T) {
	// Different stream indices from the same parent must yield different
	// seeds, and the same (seed, stream) pair must be reproducible.
	if Stream(5, 1) == Stream(5, 2) {
		t.Fatal("Stream(5,1) == Stream(5,2)")
	}
	if Stream(5, 1) != Stream(5, 1) {
		t.Fatal("Stream is not deterministic")
	}
	if Stream(5, 1) == Stream(6, 1) {
		t.Fatal("Stream ignores the parent seed")
	}
}

func TestEdgeCoinDeterministic(t *testing.T) {
	th := CoinThreshold(0.5)
	for i := 0; i < 100; i++ {
		a := EdgeCoin(1, uint64(i), 7, th)
		b := EdgeCoin(1, uint64(i), 7, th)
		if a != b {
			t.Fatalf("EdgeCoin not deterministic at world %d", i)
		}
	}
}

func TestEdgeCoinFrequency(t *testing.T) {
	for _, p := range []float64{0.1, 0.39, 0.5, 0.9, 0.99} {
		th := CoinThreshold(p)
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if EdgeCoin(123, uint64(i), 42, th) {
				hits++
			}
		}
		got := float64(hits) / n
		sigma := math.Sqrt(p * (1 - p) / n)
		if math.Abs(got-p) > 6*sigma+1e-9 {
			t.Fatalf("EdgeCoin frequency for p=%v: got %v (|diff| > 6 sigma)", p, got)
		}
	}
}

func TestCoinThresholdExtremes(t *testing.T) {
	if CoinThreshold(1) != ^uint64(0) {
		t.Fatal("CoinThreshold(1) must be max uint64")
	}
	if CoinThreshold(0) != 0 {
		t.Fatal("CoinThreshold(0) must be 0")
	}
	// p=1 edges must always be present.
	th := CoinThreshold(1)
	for i := 0; i < 1000; i++ {
		if !EdgeCoin(9, uint64(i), 1, th) {
			t.Fatal("edge with p=1 absent from a world")
		}
	}
	// p=0 edges never present. (The library never stores p=0 edges, but the
	// coin must still behave.)
	th = CoinThreshold(0)
	for i := 0; i < 1000; i++ {
		if EdgeCoin(9, uint64(i), 1, th) {
			t.Fatal("edge with p=0 present in a world")
		}
	}
}

func TestEdgeCoinIndependentAcrossEdges(t *testing.T) {
	// Correlation between the coins of two edges should be ~0.
	th := CoinThreshold(0.5)
	const n = 100000
	var a, b, ab int
	for i := 0; i < n; i++ {
		ca := EdgeCoin(77, uint64(i), 1, th)
		cb := EdgeCoin(77, uint64(i), 2, th)
		if ca {
			a++
		}
		if cb {
			b++
		}
		if ca && cb {
			ab++
		}
	}
	pa, pb, pab := float64(a)/n, float64(b)/n, float64(ab)/n
	if math.Abs(pab-pa*pb) > 0.01 {
		t.Fatalf("edge coins correlated: P(a,b)=%v, P(a)P(b)=%v", pab, pa*pb)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	x := NewXoshiro256(101)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := x.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoinThresholdMonotone(t *testing.T) {
	// Larger probabilities must never get smaller thresholds.
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return CoinThreshold(pa) <= CoinThreshold(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = x.Uint64()
	}
	_ = sink
}

func BenchmarkEdgeCoin(b *testing.B) {
	th := CoinThreshold(0.4)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = EdgeCoin(1, uint64(i), uint64(i*7), th)
	}
	_ = sink
}
