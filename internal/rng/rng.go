// Package rng provides the deterministic random-number substrate used by
// every randomized component of the library: possible-world sampling,
// dataset synthesis and the randomized baselines.
//
// Two generators are provided. SplitMix64 is a tiny, fast generator that is
// primarily used to derive seeds for independent streams. Xoshiro256 is the
// main generator (xoshiro256** by Blackman and Vigna), giving high-quality
// 64-bit outputs with a 256-bit state.
//
// The package also exposes stateless hash "coins" (EdgeCoin) that decide the
// presence of an edge in a given possible world without storing the world.
// This is what makes implicit worlds (see internal/sampler) possible: world i
// of an uncertain graph is fully determined by (seed, i) and can be
// re-materialized at any time.
package rng

import "math"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. Its main
// use here is seeding: it turns any 64-bit seed into a stream of
// well-distributed values, so correlated user seeds (0, 1, 2, ...) still
// yield uncorrelated generator states.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value of the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a strong 64-bit mixing
// function (bijective, full avalanche) used to build stateless coins.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements xoshiro256**. The zero value is invalid; use
// NewXoshiro256.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is derived from seed via
// splitmix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// An all-zero state is a fixed point; splitmix64 cannot produce four
	// zeros from any seed, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value of the stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := x.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	w1 := t & mask32
	w2 := t >> 32
	t = aLo*bHi + w1
	hi = aHi*bHi + w2 + t>>32
	lo |= t << 32
	return hi, lo
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of the first n elements using swap.
func (x *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (x *Xoshiro256) NormFloat64() float64 {
	for {
		u := 2*x.Float64() - 1
		v := 2*x.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (x *Xoshiro256) ExpFloat64() float64 {
	for {
		u := x.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Stream derives the seed of an independent substream. Combining the parent
// seed with the stream index through two rounds of mixing keeps substreams
// (world samplers, parallel workers, dataset generators) uncorrelated.
func Stream(seed uint64, stream uint64) uint64 {
	return Mix64(Mix64(seed^0x6a09e667f3bcc909) + stream*0x9e3779b97f4a7c15)
}

// EdgeHash returns the raw 64-bit hash behind EdgeCoin: the edge is present
// iff EdgeHash(seed, world, edge) < CoinThreshold(p). Exposing the hash lets
// bulk materializers (per-world edge bitmaps) compare against the threshold
// branchlessly; EdgeCoin(seed, w, e, t) == (EdgeHash(seed, w, e) < t) by
// construction.
func EdgeHash(seed uint64, world uint64, edge uint64) uint64 {
	return Mix64(seed ^ Mix64(world*0xd1342543de82ef95+edge*0xaf251af3b0f025b5))
}

// EdgeCoin reports whether an edge with survival threshold thresh is present
// in world i of the stream identified by seed. thresh must be the value
// returned by CoinThreshold(p).
//
// The coin is a pure function of (seed, world, edge): re-evaluating it always
// yields the same answer, which lets callers traverse a possible world
// without storing it.
func EdgeCoin(seed uint64, world uint64, edge uint64, thresh uint64) bool {
	return EdgeHash(seed, world, edge) < thresh
}

// CoinThreshold converts an edge probability p in [0, 1] into the uint64
// threshold used by EdgeCoin. p = 1 maps to the maximum threshold so that the
// coin always succeeds.
func CoinThreshold(p float64) uint64 {
	if p >= 1 {
		return ^uint64(0)
	}
	if p <= 0 {
		return 0
	}
	return uint64(p * float64(1<<63) * 2)
}
