package influence

import (
	"math"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpreadSingleEdge(t *testing.T) {
	// sigma({0}) on a single 0.4 edge = 1 + 0.4.
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1, P: 0.4}})
	ws := worldstore.New(g, 1)
	const r = 30000
	got := Spread(ws, []graph.NodeID{0}, r)
	sigma := math.Sqrt(0.4 * 0.6 / r)
	if math.Abs(got-1.4) > 6*sigma {
		t.Fatalf("Spread = %v, want ~1.4", got)
	}
}

func TestSpreadEmptySeeds(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1, P: 0.4}})
	ws := worldstore.New(g, 1)
	if got := Spread(ws, nil, 100); got != 0 {
		t.Fatalf("Spread(empty) = %v", got)
	}
}

func TestSpreadUnionNotSum(t *testing.T) {
	// Two seeds in the same certain component cover it once.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1, P: 1}, {U: 1, V: 2, P: 1}})
	ws := worldstore.New(g, 2)
	if got := Spread(ws, []graph.NodeID{0, 2}, 100); got != 3 {
		t.Fatalf("Spread = %v, want 3 (no double counting)", got)
	}
}

func TestSpreadMonotone(t *testing.T) {
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 3, V: 4, P: 0.5}, {U: 4, V: 5, P: 0.5},
	})
	ws := worldstore.New(g, 3)
	const r = 2000
	s1 := Spread(ws, []graph.NodeID{0}, r)
	s2 := Spread(ws, []graph.NodeID{0, 3}, r)
	if s2 < s1 {
		t.Fatalf("spread not monotone: %v -> %v", s1, s2)
	}
}

func TestGreedyPicksHub(t *testing.T) {
	// Star with strong edges: the hub has the largest spread and must be
	// the first seed.
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1, P: 0.8}, {U: 0, V: 2, P: 0.8}, {U: 0, V: 3, P: 0.8},
		{U: 0, V: 4, P: 0.8}, {U: 0, V: 5, P: 0.8},
	})
	ws := worldstore.New(g, 5)
	res, err := Greedy(ws, 1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("first seed = %d, want hub 0", res.Seeds[0])
	}
	// sigma(hub) = 1 + 5*0.8 = 5.
	if math.Abs(res.Spread[0]-5) > 0.2 {
		t.Fatalf("hub spread = %v, want ~5", res.Spread[0])
	}
}

func TestGreedyCoversComponents(t *testing.T) {
	// Two certain components: with k=2 greedy must take one seed in each.
	g := mustGraph(t, 7, []graph.Edge{
		{U: 0, V: 1, P: 1}, {U: 1, V: 2, P: 1}, {U: 2, V: 3, P: 1}, // size 4
		{U: 4, V: 5, P: 1}, {U: 5, V: 6, P: 1}, // size 3
	})
	ws := worldstore.New(g, 7)
	res, err := Greedy(ws, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	inA := func(u graph.NodeID) bool { return u <= 3 }
	if inA(res.Seeds[0]) == inA(res.Seeds[1]) {
		t.Fatalf("seeds %v land in the same component", res.Seeds)
	}
	if math.Abs(res.Spread[1]-7) > 1e-9 {
		t.Fatalf("total spread = %v, want 7", res.Spread[1])
	}
	// First pick must be the bigger component.
	if !inA(res.Seeds[0]) {
		t.Fatalf("greedy picked the smaller component first: %v", res.Seeds)
	}
}

func TestGreedySpreadNondecreasingMarginals(t *testing.T) {
	// Submodularity: recorded marginal gains must be non-increasing.
	g := mustGraph(t, 10, []graph.Edge{
		{U: 0, V: 1, P: 0.6}, {U: 1, V: 2, P: 0.6}, {U: 2, V: 3, P: 0.6},
		{U: 3, V: 4, P: 0.6}, {U: 4, V: 5, P: 0.6}, {U: 5, V: 6, P: 0.6},
		{U: 6, V: 7, P: 0.6}, {U: 7, V: 8, P: 0.6}, {U: 8, V: 9, P: 0.6},
	})
	ws := worldstore.New(g, 9)
	res, err := Greedy(ws, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for i, s := range res.Spread {
		gain := s
		if i > 0 {
			gain = s - res.Spread[i-1]
		}
		if gain > prev+1e-9 {
			t.Fatalf("marginal gains increased at pick %d: %v after %v", i, gain, prev)
		}
		prev = gain
	}
}

func TestGreedyCELFSavesEvaluations(t *testing.T) {
	// CELF must evaluate far fewer than n*k marginals on a graph with many
	// nodes. n=60 path, k=4: naive greedy would do 60*4=240 evaluations.
	edges := make([]graph.Edge, 0, 59)
	for i := 0; i < 59; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1), P: 0.4})
	}
	g := mustGraph(t, 60, edges)
	ws := worldstore.New(g, 11)
	res, err := Greedy(ws, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations >= 240 {
		t.Fatalf("CELF did %d evaluations, naive would do 240", res.Evaluations)
	}
	if len(res.Seeds) != 4 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
}

func TestGreedyRejectsBadK(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1, P: 0.5}})
	ws := worldstore.New(g, 1)
	if _, err := Greedy(ws, 0, 100); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Greedy(ws, 4, 100); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestGreedySeedsDistinct(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.9}, {U: 2, V: 3, P: 0.9}, {U: 3, V: 4, P: 0.9},
	})
	ws := worldstore.New(g, 13)
	res, err := Greedy(ws, 5, 300)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
}
