// Package influence implements influence-spread estimation and greedy
// influence maximization on uncertain graphs under the Independent Cascade
// model of Kempe, Kleinberg and Tardos [20].
//
// Section 1.1 of the paper under reproduction observes that influence
// maximization on a social network "can be reformulated as the search of k
// nodes that maximize the expected number of nodes reachable from them on
// an uncertain graph", and leaves open whether those k seeds make good
// cluster centers for the MCP/ACP objectives. This package provides the
// machinery to ask that question: the expected-spread function sigma(S),
// its Monte Carlo estimator over the shared possible-world store, and the
// (1 - 1/e)-approximate greedy maximizer with CELF-style lazy evaluation.
//
// On undirected uncertain graphs the live-edge view of Independent Cascade
// coincides with possible-world reachability, so sigma(S) is the expected
// number of nodes connected to S in a random world — computable directly
// from the per-world component labels of the worldstore.Store every other
// subsystem shares.
package influence

import (
	"container/heap"
	"context"
	"fmt"

	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

// Spread estimates sigma(S): the expected number of nodes in the same
// component as at least one seed, over the first r worlds of ws.
func Spread(ws *worldstore.Store, seeds []graph.NodeID, r int) float64 {
	v, _ := SpreadCtx(context.Background(), ws, seeds, r)
	return v
}

// SpreadCtx is Spread with cooperative cancellation: the world scan aborts
// at the next block boundary once ctx is done, returning ctx's error. A
// nil-error call is bit-identical to Spread.
func SpreadCtx(ctx context.Context, ws *worldstore.Store, seeds []graph.NodeID, r int) (float64, error) {
	if len(seeds) == 0 {
		return 0, ctx.Err()
	}
	total, err := SpreadTallyCtx(ctx, ws, seeds, 0, r)
	if err != nil {
		return 0, err
	}
	return float64(total) / float64(r), nil
}

// SpreadTallyCtx returns the raw integer spread tally over the world range
// [lo, hi): the number of (world, node) pairs where the node shares a
// component with at least one seed. Tallies over disjoint ranges sum to
// the tally of the union — the order-free merge the shard workers rely on;
// SpreadCtx is exactly SpreadTallyCtx over [0, r) divided by r.
func SpreadTallyCtx(ctx context.Context, ws *worldstore.Store, seeds []graph.NodeID, lo, hi int) (int64, error) {
	n := ws.NumNodes()
	var total int64
	live := make(map[int32]struct{}, len(seeds))
	if err := ws.ScanCtx(ctx, lo, hi, func(_ int, lab []int32) {
		for k := range live {
			delete(live, k)
		}
		for _, s := range seeds {
			live[lab[s]] = struct{}{}
		}
		for u := 0; u < n; u++ {
			if _, ok := live[lab[u]]; ok {
				total++
			}
		}
	}); err != nil {
		return 0, err
	}
	return total, nil
}

// MarginalTallyCtx returns, for every candidate, the raw integer marginal
// spread tally over worlds [lo, hi) given the current seed set: the sum
// over worlds of the size of the candidate's component in worlds where no
// seed already covers that component. With an empty seed set it is the
// initial-round tally of the greedy maximization (the full component size
// of each candidate in every world). Like every other tally in this
// package, disjoint ranges sum — the shard workers each contribute their
// range and the coordinator's merged totals equal a single-range scan
// bit for bit.
func MarginalTallyCtx(ctx context.Context, ws *worldstore.Store, seeds, candidates []graph.NodeID, lo, hi int) ([]int64, error) {
	totals := make([]int64, len(candidates))
	sizes := make(map[int32]int32)
	covered := make(map[int32]struct{}, len(seeds))
	if err := ws.ScanCtx(ctx, lo, hi, func(_ int, lab []int32) {
		clear(sizes)
		for _, l := range lab {
			sizes[l]++
		}
		clear(covered)
		for _, s := range seeds {
			covered[lab[s]] = struct{}{}
		}
		for i, v := range candidates {
			l := lab[v]
			if _, ok := covered[l]; !ok {
				totals[i] += int64(sizes[l])
			}
		}
	}); err != nil {
		return nil, err
	}
	return totals, nil
}

// celfEntry is a lazily evaluated marginal gain.
type celfEntry struct {
	node  graph.NodeID
	gain  float64
	round int // seed-set size at which gain was computed
}

type celfHeap []celfEntry

func (h celfHeap) Len() int            { return len(h) }
func (h celfHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Result is the outcome of a greedy maximization.
type Result struct {
	// Seeds are the selected nodes in pick order.
	Seeds []graph.NodeID
	// Spread[i] is the estimated sigma of the first i+1 seeds.
	Spread []float64
	// Evaluations counts sigma evaluations (CELF efficiency metric).
	Evaluations int
}

// Greedy picks k seeds maximizing expected spread with the lazy-forward
// (CELF) optimization: marginal gains are re-evaluated only when a stale
// maximum surfaces, which is valid because sigma is submodular. Spread is
// estimated over the first r worlds of ws. The initial round — the
// marginal gain of every node against the empty seed set — is computed for
// all nodes in one pass over the world blocks instead of one scan per
// node.
func Greedy(ws *worldstore.Store, k, r int) (*Result, error) {
	return GreedyCtx(context.Background(), ws, k, r)
}

// GreedyCtx is Greedy with cooperative cancellation: ctx is checked by
// every world scan (the initial batched round, each CELF re-evaluation and
// each coverage update), so a deadline aborts the maximization promptly
// with ctx's error. A nil-error run is bit-identical to Greedy.
func GreedyCtx(ctx context.Context, ws *worldstore.Store, k, r int) (*Result, error) {
	return GreedyEval(ctx, ws.NumNodes(), k, r, &storeEvaluator{ws: ws, r: r})
}

// Evaluator supplies the integer marginal-gain tallies GreedyEval drives
// the CELF loop with. The three methods see the seed set grow in pick
// order: MarginalGain is always asked against the seeds acknowledged by
// prior Picked calls. All tallies are world counts over the same fixed
// sample of r worlds, so any two evaluators that agree on the integer
// tallies make GreedyEval produce bit-identical results — the property the
// sharded coordinator's evaluator (scattered tallies, gathered sums) is
// tested for against the local store-backed one.
type Evaluator interface {
	// InitialGains returns, per node, the empty-seed-set spread tally: the
	// summed size of the node's component over all sampled worlds.
	InitialGains(ctx context.Context) ([]int64, error)
	// MarginalGain returns v's marginal spread tally given the current
	// seed set.
	MarginalGain(ctx context.Context, v graph.NodeID) (int64, error)
	// Picked informs the evaluator that v joined the seed set.
	Picked(ctx context.Context, v graph.NodeID) error
}

// storeEvaluator answers gain tallies from a local world store, caching
// per-world component sizes and the covered-component sets so each
// re-evaluation is one O(1)-per-world scan.
type storeEvaluator struct {
	ws       *worldstore.Store
	r        int
	compSize []map[int32]int32
	covered  []map[int32]struct{}
}

func (ev *storeEvaluator) InitialGains(ctx context.Context) ([]int64, error) {
	n := ev.ws.NumNodes()
	ev.compSize = make([]map[int32]int32, ev.r)
	gain0 := make([]int64, n)
	if err := ev.ws.ScanCtx(ctx, 0, ev.r, func(w int, lab []int32) {
		sizes := make(map[int32]int32)
		for _, l := range lab {
			sizes[l]++
		}
		ev.compSize[w] = sizes
		for v := 0; v < n; v++ {
			gain0[v] += int64(sizes[lab[v]])
		}
	}); err != nil {
		return nil, err
	}
	ev.covered = make([]map[int32]struct{}, ev.r)
	for w := range ev.covered {
		ev.covered[w] = make(map[int32]struct{})
	}
	return gain0, nil
}

func (ev *storeEvaluator) MarginalGain(ctx context.Context, v graph.NodeID) (int64, error) {
	sum := int64(0)
	if err := ev.ws.ScanCtx(ctx, 0, ev.r, func(w int, lab []int32) {
		l := lab[v]
		if _, ok := ev.covered[w][l]; !ok {
			sum += int64(ev.compSize[w][l])
		}
	}); err != nil {
		return 0, err
	}
	return sum, nil
}

func (ev *storeEvaluator) Picked(ctx context.Context, v graph.NodeID) error {
	return ev.ws.ScanCtx(ctx, 0, ev.r, func(w int, lab []int32) {
		ev.covered[w][lab[v]] = struct{}{}
	})
}

// GreedyEval runs the CELF greedy maximization over an abstract gain
// evaluator: the lazy-forward loop (pop the stalest maximum, re-evaluate
// or select) lives here, the tallies come from ev — the local store for
// GreedyCtx, scattered shard workers for the coordinator. n is the node
// count, k the seed budget, r the sample size the integer tallies are
// divided by. Two evaluators that return identical integer tallies yield
// identical Seeds, Spread and Evaluations, because every selection
// decision compares floats derived from those integers by the same
// operations in the same order.
func GreedyEval(ctx context.Context, n, k, r int, ev Evaluator) (*Result, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("influence: k = %d out of range [1, %d]", k, n)
	}
	gain0, err := ev.InitialGains(ctx)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	h := make(celfHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, celfEntry{node: graph.NodeID(v), gain: float64(gain0[v]) / float64(r), round: 0})
	}
	res.Evaluations += n // the batched initial round evaluated every node
	heap.Init(&h)

	total := 0.0
	for len(res.Seeds) < k && h.Len() > 0 {
		top := heap.Pop(&h).(celfEntry)
		if top.round != len(res.Seeds) {
			// Stale: re-evaluate under the current seed set and reinsert.
			sum, err := ev.MarginalGain(ctx, top.node)
			if err != nil {
				return nil, err
			}
			res.Evaluations++
			top.gain = float64(sum) / float64(r)
			top.round = len(res.Seeds)
			heap.Push(&h, top)
			continue
		}
		// Fresh maximum: select it.
		res.Seeds = append(res.Seeds, top.node)
		total += top.gain
		res.Spread = append(res.Spread, total)
		if err := ev.Picked(ctx, top.node); err != nil {
			return nil, err
		}
	}
	return res, nil
}
