// Package influence implements influence-spread estimation and greedy
// influence maximization on uncertain graphs under the Independent Cascade
// model of Kempe, Kleinberg and Tardos [20].
//
// Section 1.1 of the paper under reproduction observes that influence
// maximization on a social network "can be reformulated as the search of k
// nodes that maximize the expected number of nodes reachable from them on
// an uncertain graph", and leaves open whether those k seeds make good
// cluster centers for the MCP/ACP objectives. This package provides the
// machinery to ask that question: the expected-spread function sigma(S),
// its Monte Carlo estimator over the shared possible-world store, and the
// (1 - 1/e)-approximate greedy maximizer with CELF-style lazy evaluation.
//
// On undirected uncertain graphs the live-edge view of Independent Cascade
// coincides with possible-world reachability, so sigma(S) is the expected
// number of nodes connected to S in a random world — computable directly
// from the per-world component labels of the worldstore.Store every other
// subsystem shares.
package influence

import (
	"container/heap"
	"context"
	"fmt"

	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

// Spread estimates sigma(S): the expected number of nodes in the same
// component as at least one seed, over the first r worlds of ws.
func Spread(ws *worldstore.Store, seeds []graph.NodeID, r int) float64 {
	v, _ := SpreadCtx(context.Background(), ws, seeds, r)
	return v
}

// SpreadCtx is Spread with cooperative cancellation: the world scan aborts
// at the next block boundary once ctx is done, returning ctx's error. A
// nil-error call is bit-identical to Spread.
func SpreadCtx(ctx context.Context, ws *worldstore.Store, seeds []graph.NodeID, r int) (float64, error) {
	if len(seeds) == 0 {
		return 0, ctx.Err()
	}
	n := ws.NumNodes()
	total := 0
	live := make(map[int32]struct{}, len(seeds))
	if err := ws.ScanCtx(ctx, 0, r, func(_ int, lab []int32) {
		for k := range live {
			delete(live, k)
		}
		for _, s := range seeds {
			live[lab[s]] = struct{}{}
		}
		for u := 0; u < n; u++ {
			if _, ok := live[lab[u]]; ok {
				total++
			}
		}
	}); err != nil {
		return 0, err
	}
	return float64(total) / float64(r), nil
}

// celfEntry is a lazily evaluated marginal gain.
type celfEntry struct {
	node  graph.NodeID
	gain  float64
	round int // seed-set size at which gain was computed
}

type celfHeap []celfEntry

func (h celfHeap) Len() int            { return len(h) }
func (h celfHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Result is the outcome of a greedy maximization.
type Result struct {
	// Seeds are the selected nodes in pick order.
	Seeds []graph.NodeID
	// Spread[i] is the estimated sigma of the first i+1 seeds.
	Spread []float64
	// Evaluations counts sigma evaluations (CELF efficiency metric).
	Evaluations int
}

// Greedy picks k seeds maximizing expected spread with the lazy-forward
// (CELF) optimization: marginal gains are re-evaluated only when a stale
// maximum surfaces, which is valid because sigma is submodular. Spread is
// estimated over the first r worlds of ws. The initial round — the
// marginal gain of every node against the empty seed set — is computed for
// all nodes in one pass over the world blocks instead of one scan per
// node.
func Greedy(ws *worldstore.Store, k, r int) (*Result, error) {
	return GreedyCtx(context.Background(), ws, k, r)
}

// GreedyCtx is Greedy with cooperative cancellation: ctx is checked by
// every world scan (the initial batched round, each CELF re-evaluation and
// each coverage update), so a deadline aborts the maximization promptly
// with ctx's error. A nil-error run is bit-identical to Greedy.
func GreedyCtx(ctx context.Context, ws *worldstore.Store, k, r int) (*Result, error) {
	n := ws.NumNodes()
	if k < 1 || k > n {
		return nil, fmt.Errorf("influence: k = %d out of range [1, %d]", k, n)
	}

	// Precompute per-world component sizes so that the marginal gain of a
	// single node given the covered-component set is O(r), and batch the
	// empty-set gains of all nodes into the same block pass.
	compSize := make([]map[int32]int32, r)
	gain0 := make([]int64, n)
	if err := ws.ScanCtx(ctx, 0, r, func(w int, lab []int32) {
		sizes := make(map[int32]int32)
		for _, l := range lab {
			sizes[l]++
		}
		compSize[w] = sizes
		for v := 0; v < n; v++ {
			gain0[v] += int64(sizes[lab[v]])
		}
	}); err != nil {
		return nil, err
	}
	// covered[w] holds the component labels already reached by the seed
	// set in world w.
	covered := make([]map[int32]struct{}, r)
	for w := range covered {
		covered[w] = make(map[int32]struct{})
	}

	res := &Result{}
	marginal := func(v graph.NodeID) (float64, error) {
		sum := int64(0)
		if err := ws.ScanCtx(ctx, 0, r, func(w int, lab []int32) {
			l := lab[v]
			if _, ok := covered[w][l]; !ok {
				sum += int64(compSize[w][l])
			}
		}); err != nil {
			return 0, err
		}
		res.Evaluations++
		return float64(sum) / float64(r), nil
	}

	h := make(celfHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, celfEntry{node: graph.NodeID(v), gain: float64(gain0[v]) / float64(r), round: 0})
	}
	res.Evaluations += n // the batched initial round evaluated every node
	heap.Init(&h)

	total := 0.0
	for len(res.Seeds) < k && h.Len() > 0 {
		top := heap.Pop(&h).(celfEntry)
		if top.round != len(res.Seeds) {
			// Stale: re-evaluate under the current seed set and reinsert.
			gain, err := marginal(top.node)
			if err != nil {
				return nil, err
			}
			top.gain = gain
			top.round = len(res.Seeds)
			heap.Push(&h, top)
			continue
		}
		// Fresh maximum: select it.
		res.Seeds = append(res.Seeds, top.node)
		total += top.gain
		res.Spread = append(res.Spread, total)
		if err := ws.ScanCtx(ctx, 0, r, func(w int, lab []int32) {
			covered[w][lab[top.node]] = struct{}{}
		}); err != nil {
			return nil, err
		}
	}
	return res, nil
}
