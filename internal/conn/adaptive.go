package conn

import (
	"math"

	"ucgraph/internal/graph"
)

// This file implements the progressive sampling variant sketched at the end
// of Section 4.2 of the paper: estimating connection probabilities with
// relative-error guarantees *without* a prior lower bound pL. It follows
// the optimal stopping-rule approach of Dagum, Karp, Luby and Ross ("An
// optimal algorithm for Monte Carlo estimation"), which the progressive
// schedule of Pietracaprina et al. [28] generalizes: keep sampling until
// the number of successes reaches a threshold that depends only on
// (eps, delta), at which point successes/samples is an (eps, delta)
// relative approximation of the true probability. The expected sample
// count is O(ln(1/delta) / (eps^2 p)) — within a constant factor of the
// best possible — and no knowledge of p is needed in advance.

// StoppingRuleThreshold returns the success-count threshold Upsilon of the
// Dagum-Karp-Luby-Ross stopping rule for an (eps, delta) relative-error
// guarantee:
//
//	Upsilon = 1 + 4(e-2)(1+eps) ln(2/delta) / eps^2
//
// The constant 4(e-2) ~ 2.873 comes from the generalized Bernstein
// inequality the DKLR analysis rests on: for zero-mean increments bounded
// by 1, the moment generating function is controlled via
// e^x <= 1 + x + (e-2) x^2 on x <= 1, and the resulting tail bound
// 2 exp(-t^2 eps^2 / (2 (e-2) (1+eps) rho)) needs the leading factor 4 so
// that both the early-stop and late-stop failure modes stay under delta/2
// each. Shrinking the constant invalidates the proof; growing it only
// wastes samples.
//
// eps and delta must both lie strictly inside (0, 1); anything else —
// including NaN, which a plain range comparison would let through since
// NaN fails every ordered comparison — panics, because a silent garbage
// threshold would void the guarantee of every caller above.
func StoppingRuleThreshold(eps, delta float64) int {
	if !validEpsDelta(eps, delta) {
		panic("conn: StoppingRuleThreshold needs eps, delta in (0,1)")
	}
	const e2 = math.E - 2
	return int(math.Ceil(1 + 4*e2*(1+eps)*math.Log(2/delta)/(eps*eps)))
}

// AdaptiveResult reports an adaptive estimation outcome.
type AdaptiveResult struct {
	// P is the estimated probability.
	P float64
	// Samples is the number of worlds consumed.
	Samples int
	// Successes is the number of worlds where the event held.
	Successes int
	// Converged is false only if MaxSamples was hit before the stopping
	// rule fired; P is then the plain frequency estimate (an upper
	// confidence argument still bounds the true probability by roughly
	// Upsilon/MaxSamples).
	Converged bool
}

// AdaptivePair estimates Pr(u ~ v) to relative error eps with confidence
// 1-delta using the stopping rule, consuming worlds from the estimator's
// stream until the success threshold is reached or maxSamples worlds have
// been inspected (maxSamples <= 0 selects 2^22). Unlike Pair, it needs no
// lower bound on the probability: cheap for well-connected pairs,
// gracefully capped for nearly-disconnected ones.
func (mc *MonteCarlo) AdaptivePair(u, v graph.NodeID, eps, delta float64, maxSamples int) AdaptiveResult {
	if maxSamples <= 0 {
		maxSamples = 1 << 22
	}
	upsilon := StoppingRuleThreshold(eps, delta)
	successes, samples := 0, 0
	stopAt := -1 // world index where the success threshold fired
	const chunk = 64
	for samples < maxSamples && stopAt < 0 {
		batch := chunk
		if samples+batch > maxSamples {
			batch = maxSamples - samples
		}
		mc.store.Scan(samples, samples+batch, func(w int, lab []int32) {
			if stopAt >= 0 {
				return
			}
			if lab[u] == lab[v] {
				successes++
				if successes >= upsilon {
					stopAt = w
				}
			}
		})
		samples += batch
	}
	if stopAt >= 0 {
		n := stopAt + 1
		return AdaptiveResult{
			P:         float64(upsilon) / float64(n),
			Samples:   n,
			Successes: successes,
			Converged: true,
		}
	}
	p := 0.0
	if samples > 0 {
		p = float64(successes) / float64(samples)
	}
	return AdaptiveResult{P: p, Samples: samples, Successes: successes}
}

// DecideThreshold reports whether Pr(u ~ v) >= q, distinguishing the cases
// Pr >= q and Pr < (1-eps)q with confidence 1-delta (outcomes in the
// indifference band may go either way). It is the decision primitive a
// pL-free min-partial would use: the sample count adapts to the distance
// between the true probability and the threshold.
func (mc *MonteCarlo) DecideThreshold(u, v graph.NodeID, q, eps, delta float64) bool {
	if q <= 0 {
		return true
	}
	if q > 1 {
		return false
	}
	// Sequential test on a doubling schedule with confidence split across
	// rounds: at round t, r_t = r0 * 2^t samples and delta_t = delta/2^(t+1).
	// Accept when the empirical estimate clears the midpoint of the band
	// with margin, reject when it falls below with margin; the margins
	// shrink as sqrt(ln(1/delta_t)/r_t), so the test terminates once they
	// are smaller than eps*q/4.
	mid := q * (1 - eps/2)
	r := 64
	round := 0
	for {
		successes := 0
		mc.store.Scan(0, r, func(_ int, lab []int32) {
			if lab[u] == lab[v] {
				successes++
			}
		})
		est := float64(successes) / float64(r)
		deltaT := delta / math.Pow(2, float64(round+1))
		margin := math.Sqrt(math.Log(2/deltaT) / (2 * float64(r))) // Hoeffding
		if est >= mid+margin {
			return true
		}
		if est <= mid-margin {
			return false
		}
		if margin <= eps*q/4 {
			// Band resolved to within the indifference region.
			return est >= mid
		}
		r *= 2
		round++
	}
}
