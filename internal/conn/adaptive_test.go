package conn

import (
	"math"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

func TestStoppingRuleThreshold(t *testing.T) {
	// Known shape: Upsilon ~ 1 + 4(e-2)(1+eps)ln(2/delta)/eps^2.
	got := StoppingRuleThreshold(0.1, 0.05)
	want := 1 + 4*(math.E-2)*1.1*math.Log(40)/0.01
	if math.Abs(float64(got)-want) > 1.5 {
		t.Fatalf("threshold = %d, want ~%.0f", got, want)
	}
	// Tighter eps costs quadratically more.
	if StoppingRuleThreshold(0.05, 0.05) < 3*got {
		t.Fatal("halving eps should roughly quadruple the threshold")
	}
}

func TestStoppingRulePanics(t *testing.T) {
	for _, args := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for eps=%v delta=%v", args[0], args[1])
				}
			}()
			StoppingRuleThreshold(args[0], args[1])
		}()
	}
}

func TestAdaptivePairAccuracy(t *testing.T) {
	for _, p := range []float64{0.8, 0.4, 0.1} {
		g, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, P: p}})
		if err != nil {
			t.Fatal(err)
		}
		mc := NewMonteCarlo(g, uint64(100*p))
		res := mc.AdaptivePair(0, 1, 0.1, 0.01, 0)
		if !res.Converged {
			t.Fatalf("p=%v: did not converge", p)
		}
		if math.Abs(res.P-p)/p > 0.2 { // eps=0.1 plus slack for delta
			t.Fatalf("p=%v: estimate %v outside relative error", p, res.P)
		}
	}
}

func TestAdaptivePairSampleCountScales(t *testing.T) {
	// The expected sample count is ~Upsilon/p: the p=0.05 pair should take
	// roughly 10x the samples of the p=0.5 pair.
	build := func(p float64) *MonteCarlo {
		g, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, P: p}})
		if err != nil {
			t.Fatal(err)
		}
		return NewMonteCarlo(g, 7)
	}
	hi := build(0.5).AdaptivePair(0, 1, 0.2, 0.05, 0)
	lo := build(0.05).AdaptivePair(0, 1, 0.2, 0.05, 0)
	if !hi.Converged || !lo.Converged {
		t.Fatal("adaptive estimation did not converge")
	}
	ratio := float64(lo.Samples) / float64(hi.Samples)
	if ratio < 4 || ratio > 30 {
		t.Fatalf("sample ratio %v, want ~10 (adaptive cost must track 1/p)", ratio)
	}
}

func TestAdaptivePairCapsOnDisconnected(t *testing.T) {
	// Nodes in different components never connect: the stopping rule can't
	// fire, so the cap applies and Converged is false with P = 0.
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, P: 0.9}, {U: 2, V: 3, P: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(g, 3)
	res := mc.AdaptivePair(0, 2, 0.1, 0.01, 2000)
	if res.Converged {
		t.Fatal("converged on a disconnected pair")
	}
	if res.P != 0 || res.Samples != 2000 {
		t.Fatalf("result = %+v, want P=0 after 2000 samples", res)
	}
}

func TestAdaptivePairSelfIsImmediate(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(g, 5)
	res := mc.AdaptivePair(0, 0, 0.1, 0.01, 0)
	if !res.Converged {
		t.Fatal("self pair did not converge")
	}
	if math.Abs(res.P-1) > 0.15 {
		t.Fatalf("Pr(u ~ u) estimated as %v", res.P)
	}
}

func TestDecideThresholdClearCases(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, P: 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(g, 11)
	if !mc.DecideThreshold(0, 1, 0.3, 0.1, 0.01) {
		t.Fatal("p=0.6 not accepted at threshold 0.3")
	}
	if mc.DecideThreshold(0, 1, 0.9, 0.1, 0.01) {
		t.Fatal("p=0.6 accepted at threshold 0.9")
	}
	// Degenerate thresholds.
	if !mc.DecideThreshold(0, 1, 0, 0.1, 0.01) {
		t.Fatal("q=0 must always accept")
	}
	if mc.DecideThreshold(0, 1, 1.5, 0.1, 0.01) {
		t.Fatal("q>1 must always reject")
	}
}

func TestDecideThresholdNearBand(t *testing.T) {
	// Probability exactly at the threshold: either answer is legal, but
	// the test must terminate.
	g, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(g, 13)
	_ = mc.DecideThreshold(0, 1, 0.5, 0.2, 0.05) // must return
}

func TestDecideThresholdMatchesExactOnRandomGraphs(t *testing.T) {
	// On tiny graphs, compare decisions against the exact oracle for
	// thresholds well away from the true probability.
	x := rng.NewXoshiro256(17)
	for iter := 0; iter < 10; iter++ {
		g := randomTinyGraph(x)
		ex, err := NewExact(g)
		if err != nil {
			t.Fatal(err)
		}
		mc := NewMonteCarlo(g, uint64(iter))
		n := g.NumNodes()
		for u := 0; u < n; u++ {
			f := ex.FromCenter(int32(u), Unlimited, 0)
			for v := u + 1; v < n; v++ {
				p := f[v]
				if p > 0.15 {
					if !mc.DecideThreshold(int32(u), int32(v), p/2, 0.1, 0.01) {
						t.Fatalf("rejected threshold %v for true p %v", p/2, p)
					}
				}
				if p < 0.7 {
					if mc.DecideThreshold(int32(u), int32(v), (1+p)/2+0.15, 0.1, 0.01) {
						t.Fatalf("accepted threshold %v for true p %v", (1+p)/2+0.15, p)
					}
				}
			}
		}
	}
}
