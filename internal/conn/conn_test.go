package conn

import (
	"math"
	"testing"
	"testing/quick"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathGraph(t *testing.T, n int, p float64) *graph.Uncertain {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1), P: p})
	}
	return mustGraph(t, n, edges)
}

// randomTinyGraph builds a random graph with <= 10 edges for exact checks.
func randomTinyGraph(x *rng.Xoshiro256) *graph.Uncertain {
	n := 4 + x.Intn(4)
	b := graph.NewBuilder(n)
	m := 3 + x.Intn(7)
	for i := 0; i < m; i++ {
		u, v := int32(x.Intn(n)), int32(x.Intn(n))
		if u == v {
			continue
		}
		p := 0.05 + 0.9*x.Float64()
		_ = b.AddEdge(u, v, p)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestExactSingleEdge(t *testing.T) {
	g := pathGraph(t, 2, 0.37)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Pair(0, 1); math.Abs(got-0.37) > 1e-12 {
		t.Fatalf("Pair(0,1) = %v, want 0.37", got)
	}
	if got := ex.Pair(0, 0); got != 1 {
		t.Fatalf("Pair(0,0) = %v, want 1", got)
	}
}

func TestExactSeriesPath(t *testing.T) {
	// Path probabilities multiply on a tree.
	g := pathGraph(t, 4, 0.5)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{1, 0.5, 0.25, 0.125}
	got := ex.FromCenter(0, Unlimited, 0)
	for i, w := range wants {
		if math.Abs(got[i]-w) > 1e-12 {
			t.Fatalf("FromCenter[%d] = %v, want %v", i, got[i], w)
		}
	}
}

func TestExactParallelEdgesViaTriangle(t *testing.T) {
	// Triangle 0-1, 1-2, 0-2 each with p: Pr(0~2) = p + p^2 - p^3 ... compute
	// by inclusion-exclusion: direct edge present (p) OR (direct absent,
	// both hops present): p + (1-p)p^2. For p=0.5: 0.5 + 0.5*0.25 = 0.625.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 0, V: 2, P: 0.5}})
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Pair(0, 2); math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("triangle Pair(0,2) = %v, want 0.625", got)
	}
}

func TestExactSymmetry(t *testing.T) {
	x := rng.NewXoshiro256(5)
	for iter := 0; iter < 20; iter++ {
		g := randomTinyGraph(x)
		ex, err := NewExact(g)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumNodes()
		for u := 0; u < n; u++ {
			fu := ex.FromCenter(int32(u), Unlimited, 0)
			for v := u + 1; v < n; v++ {
				fv := ex.FromCenter(int32(v), Unlimited, 0)
				if math.Abs(fu[v]-fv[u]) > 1e-12 {
					t.Fatalf("Pr(%d~%d)=%v but Pr(%d~%d)=%v", u, v, fu[v], v, u, fv[u])
				}
			}
		}
	}
}

// TestExactTriangleInequality verifies Theorem 1:
// Pr(u ~ z) >= Pr(u ~ v) * Pr(v ~ z) for all triplets, on random tiny graphs.
func TestExactTriangleInequality(t *testing.T) {
	x := rng.NewXoshiro256(42)
	for iter := 0; iter < 30; iter++ {
		g := randomTinyGraph(x)
		ex, err := NewExact(g)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumNodes()
		from := make([][]float64, n)
		for u := 0; u < n; u++ {
			from[u] = ex.FromCenter(int32(u), Unlimited, 0)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for z := 0; z < n; z++ {
					if from[u][z] < from[u][v]*from[v][z]-1e-9 {
						t.Fatalf("Theorem 1 violated: Pr(%d~%d)=%v < Pr(%d~%d)*Pr(%d~%d) = %v*%v",
							u, z, from[u][z], u, v, v, z, from[u][v], from[v][z])
					}
				}
			}
		}
	}
}

// TestExactDepthTriangleInequality verifies Inequality (6):
// Pr(u ~d z) >= Pr(u ~d1 v) * Pr(v ~d2 z) with d = d1 + d2.
func TestExactDepthTriangleInequality(t *testing.T) {
	x := rng.NewXoshiro256(43)
	for iter := 0; iter < 20; iter++ {
		g := randomTinyGraph(x)
		ex, err := NewExact(g)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumNodes()
		for _, d1 := range []int{1, 2} {
			for _, d2 := range []int{1, 2} {
				d := d1 + d2
				for u := 0; u < n; u++ {
					fu1 := ex.FromCenter(int32(u), d1, 0)
					fud := ex.FromCenter(int32(u), d, 0)
					for v := 0; v < n; v++ {
						fv2 := ex.FromCenter(int32(v), d2, 0)
						for z := 0; z < n; z++ {
							if fud[z] < fu1[v]*fv2[z]-1e-9 {
								t.Fatalf("Ineq. 6 violated: Pr(u~%dz)=%v < %v (d1=%d d2=%d)",
									d, fud[z], fu1[v]*fv2[z], d1, d2)
							}
						}
					}
				}
			}
		}
	}
}

func TestExactDepthMonotoneAndConvergent(t *testing.T) {
	x := rng.NewXoshiro256(44)
	for iter := 0; iter < 20; iter++ {
		g := randomTinyGraph(x)
		ex, err := NewExact(g)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumNodes()
		for u := 0; u < n; u++ {
			unlimited := ex.FromCenter(int32(u), Unlimited, 0)
			prev := ex.FromCenter(int32(u), 0, 0)
			for d := 1; d <= n; d++ {
				cur := ex.FromCenter(int32(u), d, 0)
				for v := 0; v < n; v++ {
					if cur[v] < prev[v]-1e-12 {
						t.Fatalf("depth monotonicity violated at d=%d", d)
					}
				}
				prev = cur
			}
			// Depth n-1 suffices to reach anything reachable.
			for v := 0; v < n; v++ {
				if math.Abs(prev[v]-unlimited[v]) > 1e-12 {
					t.Fatalf("depth-n limit differs from unlimited at node %d", v)
				}
			}
		}
	}
}

func TestExactRejectsBigGraphs(t *testing.T) {
	g := pathGraph(t, MaxExactEdges+2, 0.5)
	if _, err := NewExact(g); err == nil {
		t.Fatal("NewExact accepted a graph with too many edges")
	}
}

func TestExactDepthZero(t *testing.T) {
	g := pathGraph(t, 3, 0.9)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	got := ex.FromCenter(0, 0, 0)
	if got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("depth-0 connection probabilities = %v, want [1 0 0]", got)
	}
}

func TestMonteCarloMatchesExact(t *testing.T) {
	x := rng.NewXoshiro256(7)
	for iter := 0; iter < 10; iter++ {
		g := randomTinyGraph(x)
		ex, err := NewExact(g)
		if err != nil {
			t.Fatal(err)
		}
		mc := NewMonteCarlo(g, uint64(iter))
		const r = 20000
		for c := int32(0); c < int32(g.NumNodes()); c += 2 {
			want := ex.FromCenter(c, Unlimited, 0)
			got := mc.FromCenter(c, Unlimited, r)
			for u := range want {
				sigma := math.Sqrt(want[u]*(1-want[u])/r) + 1e-9
				if math.Abs(got[u]-want[u]) > 6*sigma {
					t.Fatalf("MC vs exact at center %d node %d: %v vs %v", c, u, got[u], want[u])
				}
			}
		}
	}
}

func TestMonteCarloDepthMatchesExact(t *testing.T) {
	x := rng.NewXoshiro256(8)
	for iter := 0; iter < 5; iter++ {
		g := randomTinyGraph(x)
		ex, err := NewExact(g)
		if err != nil {
			t.Fatal(err)
		}
		mc := NewMonteCarlo(g, uint64(100+iter))
		const r = 20000
		for _, d := range []int{1, 2, 3} {
			want := ex.FromCenter(0, d, 0)
			got := mc.FromCenter(0, d, r)
			for u := range want {
				sigma := math.Sqrt(want[u]*(1-want[u])/r) + 1e-9
				if math.Abs(got[u]-want[u]) > 6*sigma {
					t.Fatalf("depth-%d MC vs exact at node %d: %v vs %v", d, u, got[u], want[u])
				}
			}
		}
	}
}

func TestMonteCarloPair(t *testing.T) {
	g := pathGraph(t, 3, 0.5)
	mc := NewMonteCarlo(g, 9)
	got := mc.Pair(0, 2, 30000)
	want := 0.25
	sigma := math.Sqrt(want * (1 - want) / 30000)
	if math.Abs(got-want) > 6*sigma {
		t.Fatalf("Pair(0,2) = %v, want ~%v", got, want)
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	g := pathGraph(t, 10, 0.4)
	a := NewMonteCarlo(g, 55)
	b := NewMonteCarlo(g, 55)
	ea := a.FromCenter(0, Unlimited, 500)
	eb := b.FromCenter(0, Unlimited, 500)
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same-seed estimators disagree")
		}
	}
}

func TestMonteCarloGrowsMonotonically(t *testing.T) {
	g := pathGraph(t, 5, 0.5)
	mc := NewMonteCarlo(g, 3)
	mc.FromCenter(0, Unlimited, 100)
	if mc.WorldsMaterialized() != 100 {
		t.Fatalf("materialized %d worlds, want 100", mc.WorldsMaterialized())
	}
	mc.FromCenter(0, Unlimited, 50)
	if mc.WorldsMaterialized() != 100 {
		t.Fatalf("shrank to %d worlds", mc.WorldsMaterialized())
	}
}

func TestTreePathProbability(t *testing.T) {
	// A small star-plus-path tree.
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 0, V: 2, P: 0.25},
		{U: 2, V: 3, P: 0.8}, {U: 3, V: 4, P: 0.1},
	})
	cases := []struct {
		u, v graph.NodeID
		want float64
	}{
		{0, 0, 1},
		{0, 1, 0.5},
		{1, 2, 0.125},
		{0, 4, 0.02},
		{1, 4, 0.01},
		{0, 5, 0}, // isolated node
	}
	for _, c := range cases {
		if got := TreePathProbability(g, c.u, c.v); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("TreePathProbability(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestTreePathMatchesExact(t *testing.T) {
	x := rng.NewXoshiro256(11)
	for iter := 0; iter < 20; iter++ {
		// Random tree on n nodes.
		n := 3 + x.Intn(8)
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			if err := b.AddEdge(int32(x.Intn(i)), int32(i), 0.1+0.85*x.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ex, err := NewExact(g)
		if err != nil {
			t.Fatal(err)
		}
		for u := int32(0); u < int32(n); u++ {
			f := ex.FromCenter(u, Unlimited, 0)
			for v := int32(0); v < int32(n); v++ {
				if math.Abs(f[v]-TreePathProbability(g, u, v)) > 1e-9 {
					t.Fatalf("tree closed form vs exact at (%d,%d): %v vs %v",
						u, v, TreePathProbability(g, u, v), f[v])
				}
			}
		}
	}
}

func TestHarmonic(t *testing.T) {
	if Harmonic(1) != 1 {
		t.Fatalf("H(1) = %v", Harmonic(1))
	}
	if math.Abs(Harmonic(2)-1.5) > 1e-12 {
		t.Fatalf("H(2) = %v", Harmonic(2))
	}
	// H(n) ~ ln n + gamma.
	const n = 100000
	want := math.Log(n) + 0.5772156649
	if math.Abs(Harmonic(n)-want) > 1e-4 {
		t.Fatalf("H(%d) = %v, want ~%v", n, Harmonic(n), want)
	}
}

func TestSampleSizeFormula(t *testing.T) {
	// r >= 3 ln(2/delta) / (eps^2 q); spot check one value.
	got := SampleSize(0.1, 0.5, 0.01)
	want := int(math.Ceil(3 * math.Log(200) / (0.25 * 0.1)))
	if got != want {
		t.Fatalf("SampleSize = %d, want %d", got, want)
	}
	// Decreasing q increases r.
	if SampleSize(0.01, 0.5, 0.01) <= got {
		t.Fatal("SampleSize must grow as q shrinks")
	}
}

func TestSampleSizePanics(t *testing.T) {
	for _, f := range []func(){
		func() { SampleSize(0, 0.5, 0.1) },
		func() { SampleSize(0.5, 0, 0.1) },
		func() { SampleSize(0.5, 0.5, 0) },
		func() { MCPSamples(0, 0.5, 0.1, 0.01, 10) },
		func() { ACPSamples(0.5, 0.5, 0.1, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on invalid arguments")
				}
			}()
			f()
		}()
	}
}

func TestMCPAndACPSampleGrowth(t *testing.T) {
	// Eq. 9 grows like 1/q, Eq. 10 like 1/q^3.
	a1 := MCPSamples(0.5, 0.5, 0.1, 1e-4, 1000)
	a2 := MCPSamples(0.25, 0.5, 0.1, 1e-4, 1000)
	if a2 < 2*a1-2 || a2 > 2*a1+2 {
		t.Fatalf("MCPSamples not ~linear in 1/q: r(0.5)=%d r(0.25)=%d", a1, a2)
	}
	b1 := ACPSamples(0.5, 0.5, 0.1, 1e-4, 1000)
	b2 := ACPSamples(0.25, 0.5, 0.1, 1e-4, 1000)
	if b2 < 8*b1-8 || b2 > 8*b1+8 {
		t.Fatalf("ACPSamples not ~cubic in 1/q: r(0.5)=%d r(0.25)=%d", b1, b2)
	}
}

func TestScheduleClamping(t *testing.T) {
	s := DefaultSchedule(1000)
	if r := s.Samples(1); r != s.Min {
		t.Fatalf("Samples(1) = %d, want the Min %d", r, s.Min)
	}
	if r := s.Samples(1e-9); r != s.Max {
		t.Fatalf("Samples(1e-9) = %d, want the Max %d", r, s.Max)
	}
	// Monotone nonincreasing in q.
	prev := s.Samples(1)
	for _, q := range []float64{0.5, 0.2, 0.1, 0.05, 0.01, 0.001} {
		cur := s.Samples(q)
		if cur < prev {
			t.Fatalf("schedule not monotone: r(%v) = %d < previous %d", q, cur, prev)
		}
		prev = cur
	}
}

func TestScheduleRigorous(t *testing.T) {
	s := RigorousSchedule(100, 0.5, 0.1, 1e-4, false)
	if got, want := s.Samples(0.5), MCPSamples(0.5, 0.5, 0.1, 1e-4, 100); got != want {
		t.Fatalf("rigorous schedule = %d, want MCPSamples = %d", got, want)
	}
	sc := RigorousSchedule(100, 0.5, 0.1, 1e-4, true)
	if got, want := sc.Samples(0.5), ACPSamples(0.5, 0.5, 0.1, 1e-4, 100); got != want {
		t.Fatalf("rigorous cubic schedule = %d, want ACPSamples = %d", got, want)
	}
}

func TestScheduleCubicGrowsFaster(t *testing.T) {
	lin := Schedule{Min: 1, Max: 1 << 30, Coef: 1}
	cub := Schedule{Min: 1, Max: 1 << 30, Coef: 1, Cubic: true}
	if cub.Samples(0.1) <= lin.Samples(0.1) {
		t.Fatal("cubic schedule must exceed linear schedule for q < 1")
	}
}

// TestQuickMCWithinConfidence: the (eps, delta) bound of Eq. (5) holds
// empirically — with r = SampleSize(q, eps, delta) samples the estimate of a
// single-edge probability q lands within eps*q of q (checked with margin).
func TestQuickMCWithinConfidence(t *testing.T) {
	f := func(seed uint64) bool {
		q := 0.2 + float64(seed%60)/100 // q in [0.2, 0.8)
		g, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, P: q}})
		if err != nil {
			return false
		}
		mc := NewMonteCarlo(g, seed)
		r := SampleSize(q, 0.3, 0.01)
		got := mc.Pair(0, 1, r)
		return math.Abs(got-q)/q <= 0.45 // eps=0.3 plus slack for delta failures
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
