// Package conn estimates connection probabilities in uncertain graphs.
//
// The connection probability Pr(u ~ v) is the probability that u and v lie
// in the same connected component of a random possible world; the
// d-connection probability Pr(u ~d v) additionally requires hop distance at
// most d (Section 3.4 of the paper). Exact computation is #P-complete, so
// the practical estimator is Monte Carlo sampling over possible worlds
// (Equations 3–5), with the progressive sample-size schedules of Section 4
// (Equations 9–10).
//
// The package provides:
//
//   - Oracle: the interface consumed by the clustering algorithms in
//     internal/core. An oracle answers "estimate Pr(c ~d u) for every u",
//     for one center (FromCenter) or a whole candidate batch (FromCenters).
//   - MonteCarlo: the sampling estimator (the real implementation), built
//     on the shared world store of internal/worldstore. It is safe for
//     concurrent use and internally parallel, with estimates that are
//     bit-identical for every worker count and memory budget.
//   - Exact: exact enumeration of all 2^m worlds for tiny graphs — the
//     testing oracle that theorems are checked against.
//   - Sample-size formulas: SampleSize (Eq. 4), MCPSamples (Eq. 9),
//     ACPSamples (Eq. 10), and the practical schedule used in Section 5.
package conn

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ucgraph/internal/graph"
	"ucgraph/internal/sampler"
	"ucgraph/internal/worldstore"
)

// Unlimited is the depth value meaning "no path-length constraint".
const Unlimited = -1

// Oracle answers connection-probability queries from centers to all nodes.
//
// FromCenter returns estimates of Pr(c ~depth u) for every node u; depth < 0
// (Unlimited) means the unconstrained connection probability. r is the
// Monte Carlo sample size; exact oracles ignore it. The returned slice is
// owned by the caller.
//
// FromCenters is the batched form: it answers the same query for every
// center in cs, returning one estimate vector per center (each owned by the
// caller), and is where implementations amortize work across a candidate
// batch — the Monte Carlo oracle answers all centers in one pass over each
// world block instead of one full scan per center. The results must equal
// calling FromCenter per center.
//
// Implementations must tolerate concurrent calls: the clustering drivers
// fan queries out across goroutines (both MonteCarlo and Exact qualify).
type Oracle interface {
	NumNodes() int
	FromCenter(c graph.NodeID, depth int, r int) []float64
	FromCenters(cs []graph.NodeID, depth int, r int) [][]float64
}

// ContextOracle is an Oracle whose queries additionally honor a
// cancellation context: a query aborted by ctx returns ctx's error and no
// estimates. Completed queries are bit-identical to the context-free
// methods — cancellation never degrades an answer, it only withholds one.
// Both MonteCarlo and Exact implement it; the context-aware clustering
// drivers (core.MCPCtx, core.ACPCtx) use it when available and fall back
// to coarse between-call checks otherwise.
type ContextOracle interface {
	Oracle
	FromCenterCtx(ctx context.Context, c graph.NodeID, depth int, r int) ([]float64, error)
	FromCentersCtx(ctx context.Context, cs []graph.NodeID, depth int, r int) ([][]float64, error)
}

var (
	_ ContextOracle = (*MonteCarlo)(nil)
	_ ContextOracle = (*Exact)(nil)
)

// MonteCarlo estimates connection probabilities by sampling possible
// worlds. Unlimited-depth queries are answered from the per-world component
// labels of the shared world store (one O(n) scan per world per query);
// depth-limited queries run depth-bounded BFS over the same world stream —
// batched queries against the store's per-world edge bitmaps (every coin
// of a world evaluated once for the whole center batch), single-center
// queries on the implicit stream directly. Limited and unlimited views are
// mutually consistent — and consistent with every other consumer of the
// same (graph, seed) store (k-NN, influence, metrics, ...).
//
// Because worlds are deterministic and shared, per-center tally vectors are
// cached and extended incrementally when later phases of the progressive
// sampling schedule request more samples for a center already queried —
// the dominant cost saver for the guessing schedules of Algorithms 2-3.
//
// MonteCarlo is safe for concurrent use: the tally cache is mutex-guarded
// and each tally serializes its own extensions. FromCenter is internally
// parallel — the per-world tally accumulation is sharded across a worker
// pool (see SetParallelism) with per-worker scratch buffers merged at the
// end — and FromCenters shards a candidate batch across the same pool,
// each worker scanning world blocks once for its whole center subset. The
// per-world counts are integers, so the totals — and therefore the
// returned estimates — are bit-identical for every worker count and every
// store memory budget: same seed means same estimates, serial or parallel,
// bounded or unbounded.
//
// One boundary on that guarantee: when the tally cache overflows maxCache
// entries (only possible when a run touches more distinct (center, depth)
// keys than fit in ~64 MiB), concurrent insertions make the FIFO eviction
// order scheduling-dependent, so a re-queried center may answer at the
// requested precision instead of a previously cached higher precision.
// Every answer is still an exact tally over the deterministic world
// stream; only the precision tier served can vary under eviction
// pressure.
type MonteCarlo struct {
	g     *graph.Uncertain
	seed  uint64
	store *worldstore.Store

	par atomic.Int32 // configured worker count; <= 0 selects GOMAXPROCS

	// shardSem bounds the extra goroutines spawned across ALL concurrent
	// FromCenter/FromCenters extensions, so callers that already fan
	// queries out do not multiply into Parallelism^2 workers. Sized once at
	// first use.
	semOnce  sync.Once
	shardSem chan struct{}

	// reachPool recycles depth-limited BFS scratch; ReachCounter is
	// single-goroutine, so each worker checks one out for the duration of
	// its shard.
	reachPool sync.Pool

	mu         sync.Mutex // guards cache, cacheOrder and cacheHead
	cache      map[cacheKey]*centerTally
	cacheOrder []cacheKey // FIFO ring: entries [cacheHead..] ++ [..cacheHead) in insertion order
	cacheHead  int        // index of the oldest entry once the ring is full
	maxCache   int
}

// cacheKey identifies a cached center query.
type cacheKey struct {
	c     graph.NodeID
	depth int
}

// batchSlot tracks one distinct (center, depth) key of a FromCenters batch:
// its tally and the output positions it answers.
type batchSlot struct {
	key   cacheKey
	tally *centerTally
	outAt []int
}

// centerTally holds per-node connection counts over the first rDone worlds.
// Its mutex serializes extensions (and snapshotting) of one center's tally,
// so concurrent queries for the same center never double-count a world.
type centerTally struct {
	mu     sync.Mutex
	counts []int32
	rDone  int
}

// NewMonteCarlo returns an estimator over g's possible worlds under seed.
// The world labels come from the shared store for (g, seed), so every
// estimator — and every other world consumer — built from the same pair
// observes the same worlds.
func NewMonteCarlo(g *graph.Uncertain, seed uint64) *MonteCarlo {
	n := g.NumNodes()
	// Bound the tally cache to ~64 MiB (4 bytes per node per entry).
	maxCache := 64 << 20 / (4 * n)
	if maxCache < 64 {
		maxCache = 64
	}
	mc := &MonteCarlo{
		g:        g,
		seed:     seed,
		store:    worldstore.Shared(g, seed),
		cache:    make(map[cacheKey]*centerTally),
		maxCache: maxCache,
	}
	mc.reachPool.New = func() any { return sampler.NewReachCounter(g, seed) }
	return mc
}

// SetParallelism sets the number of workers FromCenter and FromCenters
// shard work across. p <= 0 (the default) selects GOMAXPROCS; p == 1
// forces serial accumulation. Estimates do not depend on the setting.
// Configure it before the first query: the global shard-worker budget is
// sized once, at first use, to max(p, GOMAXPROCS), so later raises beyond
// that budget only take partial effect.
func (mc *MonteCarlo) SetParallelism(p int) {
	mc.par.Store(int32(p))
}

// sem returns the shard-worker token bucket, sizing it on first use.
func (mc *MonteCarlo) sem() chan struct{} {
	mc.semOnce.Do(func() {
		capacity := mc.Parallelism()
		if g := runtime.GOMAXPROCS(0); capacity < g {
			capacity = g
		}
		mc.shardSem = make(chan struct{}, capacity)
		for i := 0; i < capacity; i++ {
			mc.shardSem <- struct{}{}
		}
	})
	return mc.shardSem
}

// Parallelism returns the effective worker count.
func (mc *MonteCarlo) Parallelism() int {
	if p := int(mc.par.Load()); p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// NumNodes returns the number of nodes of the underlying graph.
func (mc *MonteCarlo) NumNodes() int { return mc.g.NumNodes() }

// Graph returns the underlying graph.
func (mc *MonteCarlo) Graph() *graph.Uncertain { return mc.g }

// WorldsMaterialized returns how many worlds of the shared store's stream
// have been requested so far (observability for tests and progress
// reporting).
func (mc *MonteCarlo) WorldsMaterialized() int { return mc.store.Worlds() }

// Store exposes the underlying shared world store (used by metrics and the
// companion queries to compute statistics over the same worlds).
func (mc *MonteCarlo) Store() *worldstore.Store { return mc.store }

// lookupTally returns the cached tally for key, inserting an empty one
// (with FIFO eviction) if absent. Eviction treats cacheOrder as a ring:
// once full, the slot of the evicted oldest entry is reused for the new
// key and the head advances. (Re-slicing the front off a slice instead —
// the previous implementation — kept the evicted prefix reachable through
// the backing array, so a long-running estimator under eviction pressure
// dragged the entire key history along.) Caller must not hold mc.mu.
func (mc *MonteCarlo) lookupTally(key cacheKey) *centerTally {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	tally, ok := mc.cache[key]
	if !ok {
		if len(mc.cacheOrder) >= mc.maxCache {
			delete(mc.cache, mc.cacheOrder[mc.cacheHead])
			mc.cacheOrder[mc.cacheHead] = key
			mc.cacheHead++
			if mc.cacheHead == len(mc.cacheOrder) {
				mc.cacheHead = 0
			}
		} else {
			mc.cacheOrder = append(mc.cacheOrder, key)
		}
		tally = &centerTally{counts: make([]int32, mc.g.NumNodes())}
		mc.cache[key] = tally
	}
	return tally
}

// estimate converts a tally into the caller-owned estimate vector. The
// caller holds tally.mu.
func (tally *centerTally) estimate() []float64 {
	out := make([]float64, len(tally.counts))
	inv := 1 / float64(tally.rDone)
	for i, cnt := range tally.counts {
		out[i] = float64(cnt) * inv
	}
	return out
}

// FromCenter implements Oracle. Tally vectors are cached per (center,
// depth) and extended when r grows; if a cached tally already covers more
// worlds than requested, the higher-precision estimate is returned.
// FromCenter may be called from many goroutines at once.
func (mc *MonteCarlo) FromCenter(c graph.NodeID, depth int, r int) []float64 {
	out, _ := mc.FromCenterCtx(context.Background(), c, depth, r)
	return out
}

// FromCenterCtx is FromCenter with cooperative cancellation: the tally
// extension advances in bounded chunks of worlds and checks ctx between
// chunks, so a cancelled query returns ctx's error quickly while leaving
// the cached tally in a consistent partial state (it exactly covers the
// worlds tallied so far, and a later query simply resumes from there). A
// call that returns nil error is bit-identical to FromCenter.
func (mc *MonteCarlo) FromCenterCtx(ctx context.Context, c graph.NodeID, depth int, r int) ([]float64, error) {
	if r < 1 {
		r = 1
	}
	if depth < 0 {
		depth = Unlimited
	}
	key := cacheKey{c: c, depth: depth}
	tally := mc.lookupTally(key)

	// An evicted tally stays usable by goroutines already holding it; it
	// just stops being findable, so the worst case is recomputed work.
	tally.mu.Lock()
	defer tally.mu.Unlock()
	if err := mc.extendChunked(ctx, key, tally, r); err != nil {
		return nil, err
	}
	return tally.estimate(), nil
}

// ctxChunk is how many worlds a cancellable extension advances between
// context checks: large enough that the check is free relative to the
// per-world label scans, small enough that deadlines are honored within
// tens of milliseconds on laptop-scale graphs. Chunking never changes an
// estimate — counts are exact integer tallies whatever the boundaries.
const ctxChunk = 1024

// extendChunked brings tally up to r worlds in ctxChunk-world steps,
// checking ctx between steps. tally.rDone advances with each completed
// step, so an aborted extension leaves a valid shorter tally. The caller
// holds tally.mu.
func (mc *MonteCarlo) extendChunked(ctx context.Context, key cacheKey, tally *centerTally, r int) error {
	for tally.rDone < r {
		if err := ctx.Err(); err != nil {
			return err
		}
		next := tally.rDone + ctxChunk
		if next > r {
			next = r
		}
		mc.extend(key, tally, next)
		tally.rDone = next
	}
	return nil
}

// FromCenters implements the batched Oracle query: one estimate vector per
// center, equal to FromCenter(c, depth, r) for each c. The batch shares
// the per-center tally cache with FromCenter; centers whose tallies need
// extension are answered together, sharded across the worker pool so that
// each worker scans the world blocks ONCE for its whole center subset —
// label blocks (worldstore.CountConnectedFromMulti) for unlimited depth,
// edge-bitmap blocks (worldstore.CountWithinMulti, hashing each world's
// edge coins once for the whole subset) for depth-limited queries —
// instead of once per center. Workers write into disjoint tallies, so the
// counts — and the estimates — are bit-identical to a serial per-center
// loop for any worker count.
func (mc *MonteCarlo) FromCenters(cs []graph.NodeID, depth int, r int) [][]float64 {
	out, _ := mc.FromCentersCtx(context.Background(), cs, depth, r)
	return out
}

// FromCentersCtx is FromCenters with cooperative cancellation, following
// the same chunked-extension contract as FromCenterCtx: ctx is checked
// between bounded chunks of worlds, an aborted batch returns ctx's error
// with every touched tally left consistent (covering exactly the worlds it
// tallied), and a nil-error call is bit-identical to FromCenters.
func (mc *MonteCarlo) FromCentersCtx(ctx context.Context, cs []graph.NodeID, depth int, r int) ([][]float64, error) {
	if len(cs) == 0 {
		return nil, nil
	}
	if r < 1 {
		r = 1
	}
	if depth < 0 {
		depth = Unlimited
	}

	// Deduplicate centers (duplicates share one tally) while preserving
	// first-occurrence order, so cache insertion — and hence FIFO eviction
	// order — matches the equivalent serial FromCenter loop.
	slots := make([]*batchSlot, 0, len(cs))
	byKey := make(map[cacheKey]*batchSlot, len(cs))
	for i, c := range cs {
		key := cacheKey{c: c, depth: depth}
		sl := byKey[key]
		if sl == nil {
			sl = &batchSlot{key: key}
			byKey[key] = sl
			slots = append(slots, sl)
		}
		sl.outAt = append(sl.outAt, i)
	}
	for _, sl := range slots {
		sl.tally = mc.lookupTally(sl.key)
	}

	// Lock the batch's tallies in canonical center order: concurrent
	// FromCenters batches over overlapping center sets then acquire in the
	// same order and cannot deadlock (FromCenter holds at most one tally
	// lock, so it cannot close a cycle either).
	locked := make([]*batchSlot, len(slots))
	copy(locked, slots)
	sort.Slice(locked, func(i, j int) bool { return locked[i].key.c < locked[j].key.c })
	for _, sl := range locked {
		sl.tally.mu.Lock()
	}
	defer func() {
		for _, sl := range locked {
			sl.tally.mu.Unlock()
		}
	}()

	var pending []*batchSlot
	for _, sl := range slots {
		if sl.tally.rDone < r {
			pending = append(pending, sl)
		}
	}
	switch {
	case len(pending) == 0:
		// Every tally already covers r worlds.
	case len(pending) == 1:
		// A single center gets the world-sharded extension (depth-limited
		// extensions run implicit BFS without materializing bitmaps).
		if err := mc.extendChunked(ctx, pending[0].key, pending[0].tally, r); err != nil {
			return nil, err
		}
	default:
		// Batched extension for every depth: unlimited batches answer from
		// one label scan per world, depth-limited batches from one edge
		// bitmap per world (coins hashed once, every center's BFS tests
		// bits) — see extendBatch.
		if err := mc.extendBatchChunked(ctx, pending, r); err != nil {
			return nil, err
		}
	}

	out := make([][]float64, len(cs))
	for _, sl := range slots {
		est := sl.tally.estimate()
		for i, pos := range sl.outAt {
			if i == 0 {
				out[pos] = est
			} else {
				cp := make([]float64, len(est))
				copy(cp, est)
				out[pos] = cp
			}
		}
	}
	return out, nil
}

// extendBatchChunked advances every pending tally to r worlds in bounded
// steps, checking ctx between steps. Each step raises the laggard tallies
// to the next ctxChunk boundary via the batched extendBatch, so an aborted
// call leaves every tally consistent at its current rDone. The caller
// holds every pending tally's lock.
func (mc *MonteCarlo) extendBatchChunked(ctx context.Context, pending []*batchSlot, r int) error {
	for {
		minDone := r
		for _, sl := range pending {
			if sl.tally.rDone < minDone {
				minDone = sl.tally.rDone
			}
		}
		if minDone >= r {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		next := minDone + ctxChunk
		if next > r {
			next = r
		}
		still := pending[:0:0]
		for _, sl := range pending {
			if sl.tally.rDone < next {
				still = append(still, sl)
			}
		}
		mc.extendBatch(still, next)
	}
}

// extendBatch brings every pending tally up to r worlds of counts. The
// pending centers are split into contiguous subsets, one per worker; each
// worker answers its subset with a single blocked pass over the store —
// CountConnectedFromMulti (label scans) for unlimited depth,
// CountWithinMulti (edge-bitmap BFS; one coin evaluation per edge per
// world for the whole batch) for depth-limited queries — writing directly
// into its tallies' count vectors. No two workers touch the same tally and
// each tally's counts depend only on (store, depth, lo, r), so the result
// is independent of the partition. The caller holds every pending tally's
// lock; all slots share one depth (FromCenters batches are per-depth).
// Extra workers draw tokens from the estimator-wide semaphore, and a token
// shortage degrades to fewer, larger subsets — never to blocking.
func (mc *MonteCarlo) extendBatch(pending []*batchSlot, r int) {
	mc.store.Grow(r)
	depth := pending[0].key.depth
	workers := mc.Parallelism()
	if workers > len(pending) {
		workers = len(pending)
	}
	run := func(subset []*batchSlot) {
		cs := make([]graph.NodeID, len(subset))
		lo := make([]int, len(subset))
		counts := make([][]int32, len(subset))
		for i, sl := range subset {
			cs[i] = sl.key.c
			lo[i] = sl.tally.rDone
			counts[i] = sl.tally.counts
		}
		if depth < 0 {
			mc.store.CountConnectedFromMulti(cs, lo, r, counts)
		} else {
			mc.store.CountWithinMulti(cs, depth, lo, r, counts)
		}
		for _, sl := range subset {
			sl.tally.rDone = r
		}
	}
	if workers <= 1 {
		run(pending)
		return
	}
	// Reserve tokens for the extra workers, non-blocking.
	sem := mc.sem()
	extra := 0
	for extra < workers-1 {
		select {
		case <-sem:
			extra++
			continue
		default:
		}
		break
	}
	if extra == 0 {
		run(pending)
		return
	}
	workers = extra + 1
	chunk := (len(pending) + workers - 1) / workers
	var wg sync.WaitGroup
	spawned := 0
	for start := chunk; start < len(pending); start += chunk {
		end := start + chunk
		if end > len(pending) {
			end = len(pending)
		}
		spawned++
		wg.Add(1)
		go func(subset []*batchSlot) {
			defer wg.Done()
			defer func() { sem <- struct{}{} }()
			run(subset)
		}(pending[start:end])
	}
	// Return tokens chunk rounding left unused.
	for ; spawned < extra; spawned++ {
		sem <- struct{}{}
	}
	first := chunk
	if first > len(pending) {
		first = len(pending)
	}
	run(pending[:first])
	wg.Wait()
}

// minShardSpan is the smallest world range worth fanning out; below it the
// goroutine overhead dominates the per-world scans.
const minShardSpan = 16

// extend accumulates worlds [tally.rDone, r) into tally.counts, sharding
// the range across the worker pool. Each worker tallies its contiguous
// chunk of worlds into a private scratch buffer; the buffers are then
// merged serially. Integer addition is associative and commutative, so the
// merged counts equal the serial counts exactly, for any worker count.
//
// Extra shard goroutines draw tokens from the estimator-wide semaphore
// (the calling goroutine always works its own chunk token-free), so
// concurrent FromCenter callers share one worker budget instead of
// multiplying theirs by ours. A token shortage degrades to fewer, larger
// chunks — never to blocking. The caller holds tally.mu.
func (mc *MonteCarlo) extend(key cacheKey, tally *centerTally, r int) {
	lo, hi := tally.rDone, r
	if key.depth < 0 {
		mc.store.Grow(hi)
	}
	span := hi - lo
	workers := mc.Parallelism()
	if workers > span {
		workers = span
	}
	if workers <= 1 || span < minShardSpan {
		mc.countRange(key, lo, hi, tally.counts)
		return
	}
	// Reserve tokens for the extra workers, non-blocking.
	sem := mc.sem()
	extra := 0
	for extra < workers-1 {
		got := false
		select {
		case <-sem:
			extra++
			got = true
		default:
		}
		if !got {
			break
		}
	}
	if extra == 0 {
		mc.countRange(key, lo, hi, tally.counts)
		return
	}
	workers = extra + 1
	chunk := (span + workers - 1) / workers
	scratch := make([][]int32, 0, workers-1)
	var wg sync.WaitGroup
	// The first chunk belongs to this goroutine; the rest fan out.
	for start := lo + chunk; start < hi; start += chunk {
		end := start + chunk
		if end > hi {
			end = hi
		}
		buf := make([]int32, len(tally.counts))
		scratch = append(scratch, buf)
		wg.Add(1)
		go func(start, end int, buf []int32) {
			defer wg.Done()
			defer func() { sem <- struct{}{} }()
			mc.countRange(key, start, end, buf)
		}(start, end, buf)
	}
	first := lo + chunk
	if first > hi {
		first = hi
	}
	mc.countRange(key, lo, first, tally.counts)
	wg.Wait()
	// Return any tokens not consumed by spawned goroutines (possible when
	// chunk rounding used fewer shards than reserved).
	for spawned := len(scratch); spawned < extra; spawned++ {
		sem <- struct{}{}
	}
	for _, buf := range scratch {
		for u, cnt := range buf {
			tally.counts[u] += cnt
		}
	}
}

// countRange adds the connection counts of worlds [lo, hi) into counts:
// label scans over the shared store for unlimited depth, depth-bounded BFS
// otherwise. A depth-limited range whose edge-bitmap blocks are warm — in
// RAM (a batched FromCenters materialized them earlier) or spilled to the
// store's disk tier — is answered from those bitmaps: the single-center
// BFS tests bits instead of re-hashing every touched edge's coin, and
// loading a spilled block is a sequential read plus checksum, far cheaper
// than re-evaluating its edge coins. A cold range runs on the implicit
// stream directly, because filling bitmaps for one center has nothing to
// amortize. Warmth is a hint only: eviction between the probe and the
// scan just recomputes the block, and both paths add bit-identical counts
// (a reach set is a function of the world's edge set alone). Safe to call
// from multiple goroutines as long as each call owns its counts buffer.
func (mc *MonteCarlo) countRange(key cacheKey, lo, hi int, counts []int32) {
	if key.depth < 0 {
		mc.store.CountConnectedFrom(key.c, lo, hi, counts)
		return
	}
	if mc.store.BitsWarm(lo, hi) {
		mc.store.CountWithinMulti([]graph.NodeID{key.c}, key.depth, []int{lo}, hi, [][]int32{counts})
		return
	}
	rc := mc.reachPool.Get().(*sampler.ReachCounter)
	rc.CountWithin(key.c, key.depth, lo, hi, counts)
	mc.reachPool.Put(rc)
}

// Pair estimates Pr(u ~ v) with r samples.
func (mc *MonteCarlo) Pair(u, v graph.NodeID, r int) float64 {
	return mc.store.EstimatePair(u, v, r)
}

// PairCtx is Pair with cooperative cancellation: the world scan aborts at
// the next block boundary once ctx is done, returning ctx's error.
func (mc *MonteCarlo) PairCtx(ctx context.Context, u, v graph.NodeID, r int) (float64, error) {
	return mc.store.EstimatePairCtx(ctx, u, v, r)
}

// MaxExactEdges caps the graph size accepted by Exact: enumerating 2^m
// worlds beyond ~22 edges is pointless even for tests.
const MaxExactEdges = 22

// Exact computes connection probabilities exactly by enumerating all 2^m
// possible worlds. It exists to validate the Monte Carlo estimator and the
// theoretical guarantees on tiny instances.
type Exact struct {
	g *graph.Uncertain
}

// NewExact returns an exact oracle for g, refusing graphs with more than
// MaxExactEdges edges.
func NewExact(g *graph.Uncertain) (*Exact, error) {
	if g.NumEdges() > MaxExactEdges {
		return nil, fmt.Errorf("conn: exact oracle limited to %d edges, graph has %d",
			MaxExactEdges, g.NumEdges())
	}
	return &Exact{g: g}, nil
}

// NumNodes returns the number of nodes of the underlying graph.
func (ex *Exact) NumNodes() int { return ex.g.NumNodes() }

// FromCenter implements Oracle: exact Pr(c ~depth u) for all u.
// The sample-size hint r is ignored.
func (ex *Exact) FromCenter(c graph.NodeID, depth int, _ int) []float64 {
	n := ex.g.NumNodes()
	m := ex.g.NumEdges()
	edges := ex.g.Edges()
	out := make([]float64, n)
	uf := graph.NewUnionFind(n)
	// BFS scratch for depth-limited worlds.
	dist := make([]int32, n)
	queue := make([]graph.NodeID, 0, n)
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		w := 1.0
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				w *= edges[i].P
			} else {
				w *= 1 - edges[i].P
			}
		}
		if w == 0 {
			continue
		}
		if depth < 0 {
			uf.Reset()
			for i := 0; i < m; i++ {
				if mask&(1<<uint(i)) != 0 {
					uf.Union(edges[i].U, edges[i].V)
				}
			}
			rc := uf.Find(c)
			for u := 0; u < n; u++ {
				if uf.Find(int32(u)) == rc {
					out[u] += w
				}
			}
			continue
		}
		// Depth-limited: BFS on the world's edges.
		for i := range dist {
			dist[i] = -1
		}
		dist[c] = 0
		queue = queue[:0]
		queue = append(queue, c)
		out[c] += w
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			if int(dist[u]) >= depth {
				continue
			}
			nodes, ids, _ := ex.g.NeighborSlices(u)
			for j, v := range nodes {
				if dist[v] >= 0 || mask&(1<<uint(ids[j])) == 0 {
					continue
				}
				dist[v] = dist[u] + 1
				queue = append(queue, v)
				out[v] += w
			}
		}
	}
	return out
}

// FromCenters implements the batched Oracle query by enumerating per
// center; exactness leaves nothing to amortize across the batch.
func (ex *Exact) FromCenters(cs []graph.NodeID, depth int, r int) [][]float64 {
	out := make([][]float64, len(cs))
	for i, c := range cs {
		out[i] = ex.FromCenter(c, depth, r)
	}
	return out
}

// FromCenterCtx implements ContextOracle: ctx is checked before the
// enumeration (a single center's 2^m sweep is the indivisible unit here).
func (ex *Exact) FromCenterCtx(ctx context.Context, c graph.NodeID, depth int, r int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ex.FromCenter(c, depth, r), nil
}

// FromCentersCtx implements ContextOracle, checking ctx between centers.
func (ex *Exact) FromCentersCtx(ctx context.Context, cs []graph.NodeID, depth int, r int) ([][]float64, error) {
	out := make([][]float64, len(cs))
	for i, c := range cs {
		est, err := ex.FromCenterCtx(ctx, c, depth, r)
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}

// Pair returns the exact Pr(u ~ v).
func (ex *Exact) Pair(u, v graph.NodeID) float64 {
	return ex.FromCenter(u, Unlimited, 0)[v]
}

// PairWithin returns the exact Pr(u ~d v).
func (ex *Exact) PairWithin(u, v graph.NodeID, depth int) float64 {
	return ex.FromCenter(u, depth, 0)[v]
}

// TreePathProbability returns Pr(u ~ v) for a tree (forest) graph, where it
// equals the product of edge probabilities along the unique u–v path, or 0
// if u and v are in different trees. It is an independent closed-form
// reference for tests; the result is unspecified if g has cycles.
func TreePathProbability(g *graph.Uncertain, u, v graph.NodeID) float64 {
	if u == v {
		return 1
	}
	// BFS from u remembering the probability product to each node.
	prod := make([]float64, g.NumNodes())
	seen := make([]bool, g.NumNodes())
	prod[u], seen[u] = 1, true
	queue := []graph.NodeID{u}
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		if x == v {
			return prod[x]
		}
		nodes, _, probs := g.NeighborSlices(x)
		for j, y := range nodes {
			if !seen[y] {
				seen[y] = true
				prod[y] = prod[x] * probs[j]
				queue = append(queue, y)
			}
		}
	}
	return 0
}

// Harmonic returns H(n) = sum_{i=1..n} 1/i, the harmonic number appearing in
// the ACP bounds (Lemma 3).
func Harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// SampleSize returns the number of samples r that makes the Monte Carlo
// estimate of a probability >= q an (eps, delta)-approximation (Equation 4):
// r >= 3 ln(2/delta) / (eps^2 q).
func SampleSize(q, eps, delta float64) int {
	if q <= 0 || eps <= 0 || delta <= 0 {
		panic("conn: SampleSize arguments must be positive")
	}
	return int(math.Ceil(3 * math.Log(2/delta) / (eps * eps * q)))
}

// MCPSamples returns the per-iteration sample count of the MCP
// implementation (Equation 9):
// r = ceil( 12/(q eps^2) * ln( 2 n^3 (1 + floor(log_{1+gamma} 1/pL)) ) ).
func MCPSamples(q, eps, gamma, pL float64, n int) int {
	if q <= 0 || eps <= 0 || gamma <= 0 || pL <= 0 || pL > 1 || n < 1 {
		panic("conn: MCPSamples arguments out of range")
	}
	guesses := 1 + math.Floor(math.Log(1/pL)/math.Log(1+gamma))
	ln := math.Log(2 * math.Pow(float64(n), 3) * guesses)
	return int(math.Ceil(12 / (q * eps * eps) * ln))
}

// ACPSamples returns the per-iteration sample count of the ACP
// implementation (Equation 10):
// r = ceil( 12/(q^3 eps^2) * ln( 2 n^3 (1 + floor(log_{1+gamma} H(n)/pL)) ) ).
func ACPSamples(q, eps, gamma, pL float64, n int) int {
	if q <= 0 || eps <= 0 || gamma <= 0 || pL <= 0 || pL > 1 || n < 1 {
		panic("conn: ACPSamples arguments out of range")
	}
	guesses := 1 + math.Floor(math.Log(Harmonic(n)/pL)/math.Log(1+gamma))
	ln := math.Log(2 * math.Pow(float64(n), 3) * guesses)
	q3 := q * q * q
	return int(math.Ceil(12 / (q3 * eps * eps) * ln))
}

// Schedule chooses per-phase Monte Carlo sample sizes. The zero value is
// invalid; use DefaultSchedule or RigorousSchedule.
type Schedule struct {
	// Min is the floor on the sample count. Section 5 reports that starting
	// the progressive schedule from 50 samples is accurate in practice.
	Min int
	// Max caps the sample count so that tiny probability guesses do not
	// request astronomically many worlds.
	Max int
	// Coef scales the 1/q (or 1/q^3) growth: r ~ Coef/q.
	Coef float64
	// Cubic selects the ACP-style 1/q^3 growth instead of 1/q.
	Cubic bool
	// Rigorous switches to the conservative union-bound counts of
	// Equations 9–10 (still clamped to Max). Eps, Gamma, PL and N configure
	// those formulas.
	Rigorous bool
	Eps      float64
	Gamma    float64
	PL       float64
	N        int
}

// DefaultSchedule is the practical schedule of Section 5 for an n-node
// graph: start at 50 samples and grow like 1/q, capped.
func DefaultSchedule(n int) Schedule {
	return Schedule{Min: 50, Max: 4096, Coef: 8}
}

// RigorousSchedule is the Eq. (9)/(10) schedule with the given parameters.
func RigorousSchedule(n int, eps, gamma, pL float64, cubic bool) Schedule {
	return Schedule{
		Min: 1, Max: 1 << 22, Cubic: cubic,
		Rigorous: true, Eps: eps, Gamma: gamma, PL: pL, N: n,
	}
}

// Samples returns the sample count for probability guess q.
func (s Schedule) Samples(q float64) int {
	if q <= 0 {
		q = 1e-12
	}
	if q > 1 {
		q = 1
	}
	var r int
	if s.Rigorous {
		if s.Cubic {
			r = ACPSamples(q, s.Eps, s.Gamma, s.PL, s.N)
		} else {
			r = MCPSamples(q, s.Eps, s.Gamma, s.PL, s.N)
		}
	} else {
		den := q
		if s.Cubic {
			den = q * q * q
		}
		r = int(math.Ceil(s.Coef / den))
	}
	if r < s.Min {
		r = s.Min
	}
	if s.Max > 0 && r > s.Max {
		r = s.Max
	}
	return r
}
