package conn

import (
	"context"
	"fmt"
	"math"

	"ucgraph/internal/graph"
	"ucgraph/internal/obs"
	"ucgraph/internal/worldstore"
)

// This file implements confidence-target ("adaptive") estimation over any
// ContextOracle: instead of a fixed world budget, the caller supplies an
// additive accuracy target (eps, delta) and the driver consumes worlds from
// the shared deterministic stream in block-aligned doubling rounds, stopping
// as soon as every tracked estimate's confidence interval has half-width at
// most eps. Because each round is an ordinary FromCentersCtx call, the
// estimates at every round are bit-identical to the fixed-budget path at the
// same consumed-world count — the same tallies over the same worlds — for
// every oracle that honors the standing determinism invariant (MonteCarlo
// locally, shard.Coordinator across a fleet: each round extends the cached
// tallies, so a sharded adaptive round scatters only the not-yet-consumed
// world range to the workers).
//
// The guarantee is additive, unlike the relative-error stopping rule in
// adaptive.go: with probability at least 1-delta, EVERY tracked quantity
// (each (center, target) pair; all nodes when no targets are given)
// satisfies |estimate - p| <= eps at the round the driver reports
// convergence. The confidence budget is union-bounded across rounds and
// tracked quantities, and each individual interval is the tighter of a
// Hoeffding bound and a Maurer-Pontil empirical-Bernstein bound — the
// latter is what makes early stopping pay off: probabilities near 0 or 1
// have small empirical variance and converge in far fewer worlds than the
// distribution-free Hoeffding rate.

// DefaultAdaptiveMaxWorlds caps an adaptive run when AdaptiveParams leaves
// MaxWorlds unset.
const DefaultAdaptiveMaxWorlds = 1 << 20

// AdaptiveParams configures a confidence-target estimation run.
type AdaptiveParams struct {
	// Eps is the additive accuracy target: the run converges when every
	// tracked estimate is within Eps of the true probability with
	// confidence 1-Delta. Must be in (0, 1).
	Eps float64
	// Delta is the failure probability budget, union-bounded across all
	// rounds and tracked quantities. Must be in (0, 1).
	Delta float64
	// MaxWorlds is the hard world budget: a run that has not converged
	// after MaxWorlds worlds stops with Converged = false (the estimates
	// are still exact tallies over that many worlds). <= 0 selects
	// DefaultAdaptiveMaxWorlds.
	MaxWorlds int
	// MinWorlds is the first round's world target, rounded up to the
	// store's block size. <= 0 selects one block.
	MinWorlds int
}

// Validate reports whether the parameters are usable. NaN targets are
// rejected explicitly: NaN fails every ordered comparison, so a plain
// range check would silently accept it.
func (p AdaptiveParams) Validate() error {
	if !validEpsDelta(p.Eps, p.Delta) {
		return fmt.Errorf("conn: adaptive eps=%v delta=%v must both be in (0,1)", p.Eps, p.Delta)
	}
	return nil
}

// validEpsDelta checks eps, delta in (0,1), treating NaN as invalid.
func validEpsDelta(eps, delta float64) bool {
	if math.IsNaN(eps) || math.IsNaN(delta) {
		return false
	}
	return eps > 0 && eps < 1 && delta > 0 && delta < 1
}

// maxWorlds resolves the effective budget.
func (p AdaptiveParams) maxWorlds() int {
	if p.MaxWorlds > 0 {
		return p.MaxWorlds
	}
	return DefaultAdaptiveMaxWorlds
}

// AdaptiveSnapshot is one refinement round's state, handed to the progress
// callback (and streamed to clients by the server's progressive mode).
type AdaptiveSnapshot struct {
	// Estimates holds one estimate vector per requested center, exactly as
	// FromCenters would return them for Worlds samples.
	Estimates [][]float64
	// HalfWidth is the largest confidence-interval half-width across the
	// tracked quantities at this round.
	HalfWidth float64
	// Worlds is the number of worlds consumed so far.
	Worlds int
	// Converged reports whether HalfWidth <= Eps.
	Converged bool
	// Final marks the last snapshot of the run (converged or budget hit).
	Final bool
}

// AdaptiveStats summarizes a finished adaptive run.
type AdaptiveStats struct {
	// Worlds is the number of worlds consumed; Budget the cap the run
	// would have spent without early stopping. Budget - Worlds is the
	// early-stopping saving.
	Worlds, Budget int
	// Rounds counts the refinement rounds executed.
	Rounds int
	// HalfWidth is the final maximum half-width; Converged whether it
	// reached Eps within the budget.
	HalfWidth float64
	Converged bool
}

// storeProvider is implemented by oracles backed by a shared world store
// (conn.MonteCarlo, shard.Coordinator); the driver aligns its rounds to the
// store's block size so every round consumes whole blocks.
type storeProvider interface {
	Store() *worldstore.Store
}

// adaptiveBlock resolves the round alignment for an oracle.
func adaptiveBlock(o Oracle) int {
	if sp, ok := o.(storeProvider); ok {
		return sp.Store().BlockWorlds()
	}
	return 64
}

// adaptiveSchedule returns the doubling world schedule: block-aligned
// targets starting at max(minWorlds, one block), doubling until the budget
// (the final round is exactly the budget). The schedule is a pure function
// of its arguments, so a run is deterministic for fixed parameters.
func adaptiveSchedule(block, budget, minWorlds int) []int {
	if block < 1 {
		block = 1
	}
	first := minWorlds
	if first < block {
		first = block
	}
	first = (first + block - 1) / block * block
	if first > budget {
		first = budget
	}
	var sched []int
	for r := first; ; r *= 2 {
		if r >= budget {
			sched = append(sched, budget)
			return sched
		}
		sched = append(sched, r)
	}
}

// AdaptiveScheduleFor returns the block-aligned doubling world schedule an
// adaptive run over o follows for the given budget and first-round target.
// Exported so other adaptive consumers (core's racing candidate scorer)
// share the same alignment rules — and therefore the same determinism.
func AdaptiveScheduleFor(o Oracle, budget, minWorlds int) []int {
	return adaptiveSchedule(adaptiveBlock(o), budget, minWorlds)
}

// HalfWidth returns the two-sided (1-delta)-confidence half-width the
// adaptive driver assigns to a Bernoulli mean estimated as phat over r
// worlds. Exported for the other layers of the adaptive stack (core's
// racing scorer, the server's streamed frames).
func HalfWidth(phat float64, r int, delta float64) float64 {
	return halfWidth(phat, r, delta)
}

// halfWidth returns a two-sided (1-delta)-confidence half-width for a
// Bernoulli mean estimated as phat over r worlds: the tighter of the
// Hoeffding bound and the Maurer-Pontil empirical-Bernstein bound, each
// charged delta/2 so the minimum is valid at delta overall.
func halfWidth(phat float64, r int, delta float64) float64 {
	if r <= 1 {
		return 1
	}
	l := math.Log(4 / delta) // ln(2/(delta/2))
	rf := float64(r)
	hoeff := math.Sqrt(l / (2 * rf))
	// Unbiased sample variance of r Bernoulli draws with mean phat.
	vn := phat * (1 - phat) * rf / (rf - 1)
	eb := math.Sqrt(2*vn*l/rf) + 7*l/(3*(rf-1))
	hw := math.Min(hoeff, eb)
	if hw > 1 {
		hw = 1
	}
	return hw
}

// AdaptiveFromCenters estimates connection probabilities from cs to an
// additive (eps, delta) target, consuming worlds in block-aligned doubling
// rounds through o.FromCentersCtx and stopping at the first round where
// every tracked quantity's interval has closed to eps. Tracked quantities
// are (center, target) for every target when targets is non-empty, and
// (center, node) for every node otherwise. The returned estimates are the
// final round's vectors — bit-identical to o.FromCenters(cs, depth,
// stats.Worlds) — so callers that later need the fixed-budget answer at the
// consumed count can reproduce it exactly.
//
// progress, when non-nil, is called once per round with that round's
// snapshot; returning an error aborts the run (the server uses this to
// stream refining frames and to stop when a client disconnects). The run
// is deterministic for a fixed (oracle seed, cs, depth, targets, params):
// the schedule, the per-round estimates, and therefore the stopping round
// are all pure functions of those inputs.
func AdaptiveFromCenters(ctx context.Context, o ContextOracle, cs []graph.NodeID, depth int, targets []graph.NodeID, p AdaptiveParams, progress func(AdaptiveSnapshot) error) ([][]float64, AdaptiveStats, error) {
	if err := p.Validate(); err != nil {
		return nil, AdaptiveStats{}, err
	}
	if len(cs) == 0 {
		return nil, AdaptiveStats{}, fmt.Errorf("conn: adaptive query needs at least one center")
	}
	budget := p.maxWorlds()
	sched := adaptiveSchedule(adaptiveBlock(o), budget, p.MinWorlds)
	tracked := len(targets)
	if tracked == 0 {
		tracked = o.NumNodes()
	}
	tracked *= len(cs)
	// Per-quantity, per-round confidence share: the union bound over the
	// full schedule and every tracked quantity keeps the total failure
	// probability at Delta even though intermediate rounds peek at the
	// data.
	deltaQ := p.Delta / (float64(len(sched)) * float64(tracked))
	st := AdaptiveStats{Budget: budget}
	var ests [][]float64
	for _, r := range sched {
		// One trace span per adaptive round (a no-op on untraced
		// queries): the estimator's doubling loop is where adaptive
		// latency lives, and the round's convergence state is the fact an
		// operator reading the trace needs. Observation only — the
		// schedule and estimates are untouched.
		rctx, sp := obs.StartSpan(ctx, "adaptive_round")
		sp.Set("round", int64(st.Rounds))
		sp.Set("worlds", int64(r))
		var err error
		ests, err = o.FromCentersCtx(rctx, cs, depth, r)
		if err != nil {
			sp.Set("error", err.Error())
			sp.End()
			return nil, st, err
		}
		st.Rounds++
		st.Worlds = r
		hw := 0.0
		for _, est := range ests {
			if len(targets) > 0 {
				for _, t := range targets {
					if h := halfWidth(est[t], r, deltaQ); h > hw {
						hw = h
					}
				}
			} else {
				for _, e := range est {
					if h := halfWidth(e, r, deltaQ); h > hw {
						hw = h
					}
				}
			}
		}
		st.HalfWidth = hw
		st.Converged = hw <= p.Eps
		final := st.Converged || r >= budget
		sp.Set("half_width", hw)
		sp.Set("converged", st.Converged)
		sp.End()
		if progress != nil {
			snap := AdaptiveSnapshot{
				Estimates: ests,
				HalfWidth: hw,
				Worlds:    r,
				Converged: st.Converged,
				Final:     final,
			}
			if err := progress(snap); err != nil {
				return nil, st, err
			}
		}
		if final {
			break
		}
	}
	return ests, st, nil
}

// AdaptivePairInterval is the pair form of AdaptiveFromCenters: it
// estimates Pr(u ~depth v) to the additive (eps, delta) target by tracking
// the single quantity (u, v) through the center-tally path, so repeated
// adaptive pair queries against a long-lived oracle extend cached tallies
// instead of rescanning. The returned probability equals
// o.FromCenter(u, depth, stats.Worlds)[v] bit-for-bit.
func AdaptivePairInterval(ctx context.Context, o ContextOracle, u, v graph.NodeID, depth int, p AdaptiveParams, progress func(AdaptiveSnapshot) error) (float64, AdaptiveStats, error) {
	ests, st, err := AdaptiveFromCenters(ctx, o, []graph.NodeID{u}, depth, []graph.NodeID{v}, p, progress)
	if err != nil {
		return 0, st, err
	}
	return ests[0][v], st, nil
}
