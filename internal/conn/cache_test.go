package conn

import (
	"math"
	"testing"

	"ucgraph/internal/graph"
)

func TestCacheExtendsMatchesFresh(t *testing.T) {
	// Querying a center at r=100 then r=400 must give exactly the same
	// estimate as a fresh estimator queried once at r=400 (same worlds).
	g := pathGraph(t, 12, 0.5)
	a := NewMonteCarlo(g, 99)
	a.FromCenter(3, Unlimited, 100)
	got := a.FromCenter(3, Unlimited, 400)

	b := NewMonteCarlo(g, 99)
	want := b.FromCenter(3, Unlimited, 400)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: incremental %v != fresh %v", u, got[u], want[u])
		}
	}
}

func TestCacheShrinkingRUsesHigherPrecision(t *testing.T) {
	// After querying at r=1000, a query at r=10 returns the r=1000
	// estimate (documented behaviour: never discard precision).
	g := pathGraph(t, 5, 0.5)
	mc := NewMonteCarlo(g, 7)
	big := mc.FromCenter(0, Unlimited, 1000)
	small := mc.FromCenter(0, Unlimited, 10)
	for u := range big {
		if big[u] != small[u] {
			t.Fatalf("node %d: r=10 after r=1000 gave %v, want %v", u, small[u], big[u])
		}
	}
}

func TestCacheDepthsAreSeparate(t *testing.T) {
	// Depth-limited and unlimited tallies must not mix.
	g := pathGraph(t, 6, 0.9)
	mc := NewMonteCarlo(g, 5)
	unlimited := mc.FromCenter(0, Unlimited, 2000)
	depth1 := mc.FromCenter(0, 1, 2000)
	// Node 2 is 2 hops away: reachable in unlimited worlds, never at d=1.
	if depth1[2] != 0 {
		t.Fatalf("depth-1 estimate for a 2-hop node = %v, want 0", depth1[2])
	}
	if unlimited[2] < 0.5 {
		t.Fatalf("unlimited estimate for node 2 = %v, want ~0.81", unlimited[2])
	}
	// Re-query unlimited: must be unchanged by the depth-1 query.
	again := mc.FromCenter(0, Unlimited, 2000)
	for u := range unlimited {
		if unlimited[u] != again[u] {
			t.Fatal("depth-limited query polluted the unlimited tally")
		}
	}
}

func TestCacheEviction(t *testing.T) {
	// Force a tiny cache and query more centers than it holds: results
	// must stay correct (evicted entries are recomputed).
	g := pathGraph(t, 50, 0.8)
	mc := NewMonteCarlo(g, 13)
	mc.maxCache = 4
	const r = 500
	want := make(map[graph.NodeID]float64)
	for c := graph.NodeID(0); c < 20; c++ {
		est := mc.FromCenter(c, Unlimited, r)
		want[c] = est[(int(c)+1)%50]
	}
	if len(mc.cache) > 4 {
		t.Fatalf("cache holds %d entries, cap is 4", len(mc.cache))
	}
	// Re-query everything: estimates are deterministic per (seed, world
	// range), so evicted-and-recomputed entries must agree.
	for c := graph.NodeID(0); c < 20; c++ {
		est := mc.FromCenter(c, Unlimited, r)
		if est[(int(c)+1)%50] != want[c] {
			t.Fatalf("center %d: recomputed estimate differs after eviction", c)
		}
	}
}

func TestCacheEvictionRingFIFO(t *testing.T) {
	// White-box regression for the eviction-order leak: the FIFO order is
	// a fixed-capacity ring, so its backing array must stop growing once
	// the cache is full, evictions must drop the oldest key, and the head
	// must wrap. (The old implementation re-sliced the front off, keeping
	// every evicted key reachable through the backing array.)
	g := pathGraph(t, 16, 0.8)
	mc := NewMonteCarlo(g, 3)
	mc.maxCache = 4
	for c := graph.NodeID(0); c < 11; c++ { // 2+ full wraps of the ring
		mc.FromCenter(c, Unlimited, 10)
		if got := len(mc.cacheOrder); got > 4 {
			t.Fatalf("after %d inserts the ring grew to %d slots, cap is 4", c+1, got)
		}
		if len(mc.cache) != len(mc.cacheOrder) {
			t.Fatalf("cache (%d) and ring (%d) disagree on live entries",
				len(mc.cache), len(mc.cacheOrder))
		}
	}
	// FIFO: exactly the four newest centers survive.
	for c := graph.NodeID(0); c < 11; c++ {
		_, ok := mc.cache[cacheKey{c: c, depth: Unlimited}]
		if want := c >= 7; ok != want {
			t.Fatalf("center %d cached=%v, want %v", c, ok, want)
		}
	}
	if mc.cacheHead >= len(mc.cacheOrder) {
		t.Fatalf("cacheHead %d out of ring bounds %d", mc.cacheHead, len(mc.cacheOrder))
	}
}

func TestCacheDepthExtension(t *testing.T) {
	// Depth-limited tallies also extend incrementally and match a fresh
	// estimator.
	g := pathGraph(t, 8, 0.6)
	a := NewMonteCarlo(g, 21)
	a.FromCenter(0, 2, 300)
	got := a.FromCenter(0, 2, 900)
	b := NewMonteCarlo(g, 21)
	want := b.FromCenter(0, 2, 900)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: incremental depth tally %v != fresh %v", u, got[u], want[u])
		}
	}
	// Estimates approximate p^d products on the path.
	for u, wantP := range []float64{1, 0.6, 0.36, 0, 0} {
		sigma := math.Sqrt(wantP*(1-wantP)/900) + 1e-9
		if math.Abs(got[u]-wantP) > 6*sigma {
			t.Fatalf("node %d: depth-2 estimate %v, want ~%v", u, got[u], wantP)
		}
	}
}
