package conn

import (
	"context"
	"errors"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// ctxRing builds a ring with chords, large enough that a query spans many
// context-check chunks.
func ctxRing(t *testing.T, n int) *graph.Uncertain {
	t.Helper()
	x := rng.NewXoshiro256(99)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(int32(i), int32((i+1)%n), 0.3+0.6*x.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromCenterCtxMatchesPlain(t *testing.T) {
	g := ctxRing(t, 128)
	r := 3000 // spans several ctxChunk boundaries

	plain := NewMonteCarlo(g, 7).FromCenter(0, Unlimited, r)
	got, err := NewMonteCarlo(g, 7).FromCenterCtx(context.Background(), 0, Unlimited, r)
	if err != nil {
		t.Fatal(err)
	}
	for u := range plain {
		if plain[u] != got[u] {
			t.Fatalf("node %d: ctx path %v != plain %v", u, got[u], plain[u])
		}
	}
}

func TestFromCenterCtxCancelled(t *testing.T) {
	g := ctxRing(t, 128)
	mc := NewMonteCarlo(g, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mc.FromCenterCtx(ctx, 0, Unlimited, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The estimator must remain fully usable after an aborted query, and a
	// successful retry must match a fresh estimator bit for bit.
	want := NewMonteCarlo(g, 7).FromCenter(0, Unlimited, 2500)
	got, err := mc.FromCenterCtx(context.Background(), 0, Unlimited, 2500)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		if want[u] != got[u] {
			t.Fatalf("node %d after aborted query: %v != %v", u, got[u], want[u])
		}
	}
}

func TestFromCentersCtxPartialAbortLeavesConsistentTallies(t *testing.T) {
	g := ctxRing(t, 64)
	mc := NewMonteCarlo(g, 3)
	cs := []graph.NodeID{1, 5, 9, 13}

	// Warm the tallies unevenly, then abort a batched extension partway by
	// cancelling the context mid-flight via a deadline in the past.
	mc.FromCenter(1, Unlimited, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mc.FromCentersCtx(ctx, cs, Unlimited, 4000); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// A later uncancelled batch must produce exactly the fresh-estimator
	// answer: partial tallies resume, never corrupt.
	got, err := mc.FromCentersCtx(context.Background(), cs, Unlimited, 4000)
	if err != nil {
		t.Fatal(err)
	}
	want := NewMonteCarlo(g, 3).FromCenters(cs, Unlimited, 4000)
	for i := range want {
		for u := range want[i] {
			if want[i][u] != got[i][u] {
				t.Fatalf("center %d node %d: %v != %v", cs[i], u, got[i][u], want[i][u])
			}
		}
	}
}

func TestPairCtxCancelled(t *testing.T) {
	g := ctxRing(t, 64)
	mc := NewMonteCarlo(g, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mc.PairCtx(ctx, 0, 5, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	got, err := mc.PairCtx(context.Background(), 0, 5, 400)
	if err != nil {
		t.Fatal(err)
	}
	if want := mc.Pair(0, 5, 400); got != want {
		t.Fatalf("PairCtx %v != Pair %v", got, want)
	}
}

func TestExactContextOracle(t *testing.T) {
	g := ctxRing(t, 8)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.FromCenterCtx(ctx, 0, Unlimited, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	got, err := ex.FromCentersCtx(context.Background(), []graph.NodeID{0, 3}, Unlimited, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ex.FromCenters([]graph.NodeID{0, 3}, Unlimited, 0)
	for i := range want {
		for u := range want[i] {
			if want[i][u] != got[i][u] {
				t.Fatalf("center %d node %d: %v != %v", i, u, got[i][u], want[i][u])
			}
		}
	}
}
