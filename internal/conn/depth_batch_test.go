package conn

import (
	"math"
	"runtime"
	"testing"

	"ucgraph/internal/graph"
)

// The batched depth-limited engine contract (the per-world edge-bitmap
// path behind FromCenters with depth >= 0): estimates must be bit-identical
// to a serial per-center FromCenter loop, for every worker count and every
// world-store memory budget, and statistically consistent with exact
// enumeration on tiny graphs.

// depthSerialReference answers every center with its own single-worker
// estimator — the per-center loop the batched path replaced.
func depthSerialReference(g *graph.Uncertain, seed uint64, cs []graph.NodeID, depth, r int) [][]float64 {
	serial := NewMonteCarlo(g, seed)
	serial.SetParallelism(1)
	out := make([][]float64, len(cs))
	for j, c := range cs {
		out[j] = serial.FromCenter(c, depth, r)
	}
	return out
}

// TestDepthBatchBitIdenticalAcrossWorkersAndBudgets is the headline
// guarantee for this engine: worker count and memory budget must not leak
// into depth-limited batched estimates.
func TestDepthBatchBitIdenticalAcrossWorkersAndBudgets(t *testing.T) {
	g := gridGraph(t, 11, 9, 0.6)
	const seed = 41
	cs := make([]graph.NodeID, 24)
	for i := range cs {
		cs[i] = graph.NodeID(i * 4)
	}
	const depth, r = 2, 500
	want := depthSerialReference(g, seed, cs, depth, r)

	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, workers := range workerCounts {
		for _, bounded := range []bool{false, true} {
			// A fresh graph value per configuration keeps the shared-store
			// registry from handing every estimator the same store.
			g2 := identicalGraph(t, g)
			mc := NewMonteCarlo(g2, seed)
			mc.SetParallelism(workers)
			if bounded {
				// One resident block of any family: every batch chunk churns
				// bitmap blocks through eviction and recompute.
				mc.Store().SetBudget(1)
			}
			mc.FromCenters(cs[:6], depth, 64) // prime a prefix, then extend
			got := mc.FromCenters(cs, depth, r)
			for j := range want {
				for u := range want[j] {
					if got[j][u] != want[j][u] {
						t.Fatalf("workers=%d bounded=%v center %d node %d: %v != serial %v",
							workers, bounded, cs[j], u, got[j][u], want[j][u])
					}
				}
			}
			if bounded {
				if st := mc.Store().Stats(); st.Evictions == 0 {
					t.Fatalf("bounded run evicted nothing (stats %+v)", st)
				}
			}
		}
	}
}

// TestDepthBatchMixedTallyStates exercises the chunked batch extension
// with tallies at unequal precisions: fresh, partially covered and
// over-covered centers must all match the serial loop's answers.
func TestDepthBatchMixedTallyStates(t *testing.T) {
	g := gridGraph(t, 9, 7, 0.55)
	const seed, depth, r = 43, 3, 300
	mc := NewMonteCarlo(g, seed)
	mc.FromCenter(3, depth, 40)   // below r: must extend to exactly r
	mc.FromCenter(10, depth, 900) // above r: batch serves the higher precision

	cs := []graph.NodeID{0, 3, 7, 10, 3, 21, 45} // includes a duplicate
	got := mc.FromCenters(cs, depth, r)

	serial := NewMonteCarlo(g, seed)
	serial.SetParallelism(1)
	for j, c := range cs {
		rWant := r
		if c == 10 {
			rWant = 900
		}
		want := serial.FromCenter(c, depth, rWant)
		for u := range want {
			if got[j][u] != want[u] {
				t.Fatalf("center %d node %d: batched %v != serial %v", c, u, got[j][u], want[u])
			}
		}
	}
}

// TestDepthBatchMatchesExact cross-checks the batched depth-limited
// estimates against exact enumeration on a tiny graph: the Monte Carlo
// answers must sit within binomial sampling error of the true
// d-connection probabilities.
func TestDepthBatchMatchesExact(t *testing.T) {
	// 8 nodes, 9 edges: a cycle with a chord, small enough for Exact.
	edges := []graph.Edge{
		{U: 0, V: 1, P: 0.7}, {U: 1, V: 2, P: 0.6}, {U: 2, V: 3, P: 0.8},
		{U: 3, V: 4, P: 0.5}, {U: 4, V: 5, P: 0.7}, {U: 5, V: 6, P: 0.6},
		{U: 6, V: 7, P: 0.9}, {U: 7, V: 0, P: 0.5}, {U: 1, V: 5, P: 0.4},
	}
	g, err := graph.FromEdges(8, edges)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	const r = 30000
	mc := NewMonteCarlo(g, 3)
	cs := []graph.NodeID{0, 2, 5}
	for _, depth := range []int{1, 2, 4} {
		got := mc.FromCenters(cs, depth, r)
		want := ex.FromCenters(cs, depth, 0)
		for j := range cs {
			for u := range want[j] {
				p := want[j][u]
				sigma := math.Sqrt(p*(1-p)/r) + 1e-9
				if math.Abs(got[j][u]-p) > 6*sigma {
					t.Fatalf("depth %d center %d node %d: estimate %v, exact %v (6σ=%v)",
						depth, cs[j], u, got[j][u], p, 6*sigma)
				}
			}
		}
	}
}
