package conn

import (
	"sync"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/worldstore"
)

// TestFromCentersMatchesFromCenter is the batched-query contract: for any
// depth and mixed tally states, FromCenters must return exactly what a
// serial FromCenter loop returns.
func TestFromCentersMatchesFromCenter(t *testing.T) {
	g := gridGraph(t, 9, 7, 0.55)
	const seed = 31
	for _, depth := range []int{Unlimited, 2} {
		batched := NewMonteCarlo(g, seed)
		serial := NewMonteCarlo(g, seed)
		serial.SetParallelism(1)

		// Pre-warm some tallies at different precisions so the batch mixes
		// fresh centers, partially covered ones, and over-covered ones.
		batched.FromCenter(3, depth, 40)
		batched.FromCenter(10, depth, 500)

		cs := []graph.NodeID{0, 3, 7, 10, 3, 21, 45} // includes a duplicate
		const r = 300
		got := batched.FromCenters(cs, depth, r)
		if len(got) != len(cs) {
			t.Fatalf("depth=%d: got %d vectors for %d centers", depth, len(got), len(cs))
		}
		for j, c := range cs {
			want := serial.FromCenter(c, depth, r)
			// Center 10 was pre-warmed past r; the batch serves the
			// higher precision, like FromCenter does.
			if c == 10 {
				want = serial.FromCenter(c, depth, 500)
			}
			if c == 3 {
				// Pre-warmed below r: must have been extended to exactly r.
				want = serial.FromCenter(c, depth, r)
			}
			for u := range want {
				if got[j][u] != want[u] {
					t.Fatalf("depth=%d center %d node %d: batched %v != serial %v",
						depth, c, u, got[j][u], want[u])
				}
			}
		}
		// Duplicate centers must get equal (but independent) vectors.
		if &got[1][0] == &got[4][0] {
			t.Fatal("duplicate centers share one output slice")
		}
		for u := range got[1] {
			if got[1][u] != got[4][u] {
				t.Fatalf("duplicate center answers differ at node %d", u)
			}
		}
	}
}

// TestFromCentersDeterministicAcrossWorkers pins the determinism guarantee
// for the batched path: worker count must not leak into estimates.
func TestFromCentersDeterministicAcrossWorkers(t *testing.T) {
	g := gridGraph(t, 11, 9, 0.6)
	const seed = 5
	cs := make([]graph.NodeID, 24)
	for i := range cs {
		cs[i] = graph.NodeID(i * 4)
	}
	ref := NewMonteCarlo(g, seed)
	ref.SetParallelism(1)
	want := ref.FromCenters(cs, Unlimited, 400)
	for _, workers := range []int{2, 4, 16} {
		mc := NewMonteCarlo(g, seed)
		mc.SetParallelism(workers)
		mc.FromCenters(cs[:8], Unlimited, 64) // prime a prefix, then extend
		got := mc.FromCenters(cs, Unlimited, 400)
		for j := range want {
			for u := range want[j] {
				if got[j][u] != want[j][u] {
					t.Fatalf("workers=%d center %d node %d: %v != serial %v",
						workers, cs[j], u, got[j][u], want[j][u])
				}
			}
		}
	}
}

// TestFromCentersConcurrentBatches hammers one estimator with overlapping
// concurrent batches; every answer must match a serial oracle. Under -race
// this doubles as the deadlock/data-race probe for the multi-tally locking.
func TestFromCentersConcurrentBatches(t *testing.T) {
	g := gridGraph(t, 8, 8, 0.5)
	const seed = 77
	mc := NewMonteCarlo(g, seed)
	batches := [][]graph.NodeID{
		{0, 5, 9, 13},
		{13, 9, 5, 0}, // same set, reversed: exercises the canonical lock order
		{2, 5, 30},
		{9, 40, 41, 42, 43},
	}
	const r = 250
	var wg sync.WaitGroup
	results := make([][][]float64, len(batches)*4)
	for rep := 0; rep < 4; rep++ {
		for bi, cs := range batches {
			wg.Add(1)
			go func(slot int, cs []graph.NodeID) {
				defer wg.Done()
				results[slot] = mc.FromCenters(cs, Unlimited, r)
			}(rep*len(batches)+bi, cs)
		}
	}
	wg.Wait()
	serial := NewMonteCarlo(g, seed)
	serial.SetParallelism(1)
	for rep := 0; rep < 4; rep++ {
		for bi, cs := range batches {
			got := results[rep*len(batches)+bi]
			for j, c := range cs {
				want := serial.FromCenter(c, Unlimited, r)
				for u := range want {
					if got[j][u] != want[u] {
						t.Fatalf("batch %d center %d node %d: %v != %v", bi, c, u, got[j][u], want[u])
					}
				}
			}
		}
	}
}

// identicalGraph builds a second, distinct graph value with the same edges,
// so the registry hands out an independent world store for the same seed.
func identicalGraph(t *testing.T, g *graph.Uncertain) *graph.Uncertain {
	t.Helper()
	g2, err := graph.FromEdges(g.NumNodes(), g.Edges())
	if err != nil {
		t.Fatal(err)
	}
	return g2
}

// TestEstimatorBoundedMemoryBitIdentical runs the same queries against an
// estimator whose world store is squeezed to a single resident label block
// and against an unbounded one: the estimates must be bit-identical, with
// the bounded store visibly evicting and recomputing along the way.
func TestEstimatorBoundedMemoryBitIdentical(t *testing.T) {
	g := gridGraph(t, 10, 8, 0.55)
	const seed = 19
	unbounded := NewMonteCarlo(g, seed)

	g2 := identicalGraph(t, g)
	bounded := NewMonteCarlo(g2, seed)
	blockBytes := int64(4 * g2.NumNodes() * bounded.Store().Stats().BlockWorlds)
	bounded.Store().SetBudget(blockBytes) // one block resident at a time

	const r = 700 // several blocks worth of worlds
	cs := []graph.NodeID{0, 17, 33, 60}
	wantBatch := unbounded.FromCenters(cs, Unlimited, r)
	gotBatch := bounded.FromCenters(cs, Unlimited, r)
	for j := range cs {
		for u := range wantBatch[j] {
			if gotBatch[j][u] != wantBatch[j][u] {
				t.Fatalf("center %d node %d: bounded %v != unbounded %v",
					cs[j], u, gotBatch[j][u], wantBatch[j][u])
			}
		}
	}
	// Re-query a fresh center after churn: forces recompute of evicted
	// blocks from world 0.
	want := unbounded.FromCenter(41, Unlimited, r)
	got := bounded.FromCenter(41, Unlimited, r)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d after eviction churn: %v != %v", u, got[u], want[u])
		}
	}
	if st := bounded.Store().Stats(); st.Evictions == 0 {
		t.Fatalf("bounded store never evicted (stats %+v)", st)
	}
	if p := bounded.Pair(0, 79, r); p != unbounded.Pair(0, 79, r) {
		t.Fatal("Pair differs between bounded and unbounded stores")
	}
}

// TestSharedStoreAcrossEstimators verifies that two estimators over the
// same (graph, seed) answer from one store — the world dedup the shared
// substrate exists for.
func TestSharedStoreAcrossEstimators(t *testing.T) {
	g := gridGraph(t, 6, 6, 0.5)
	a := NewMonteCarlo(g, 9)
	b := NewMonteCarlo(g, 9)
	if a.Store() != b.Store() {
		t.Fatal("two estimators over one (graph, seed) got different stores")
	}
	if a.Store() == NewMonteCarlo(g, 10).Store() {
		t.Fatal("different seeds share a store")
	}
	a.FromCenter(0, Unlimited, 200)
	if got := b.WorldsMaterialized(); got < 200 {
		t.Fatalf("second estimator sees %d worlds after first grew 200", got)
	}
	if worldstore.Shared(g, 9) != a.Store() {
		t.Fatal("worldstore.Shared disagrees with the estimator's store")
	}
}
