package conn

import (
	"sync"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// gridGraph builds a w x h grid with edge probability p: large enough that
// tally sharding actually splits work, with nontrivial connectivity.
func gridGraph(t *testing.T, w, h int, p float64) *graph.Uncertain {
	t.Helper()
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := b.AddEdge(id(x, y), id(x+1, y), p); err != nil {
					t.Fatal(err)
				}
			}
			if y+1 < h {
				if err := b.AddEdge(id(x, y), id(x, y+1), p); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFromCenterDeterministicAcrossWorkers is the engine's core contract:
// for a fixed seed the estimates are bit-identical whether the per-world
// tallies are accumulated serially or sharded across 4 or 16 workers, for
// both unlimited-depth label scans and depth-bounded BFS, including
// incremental extensions of a cached tally.
func TestFromCenterDeterministicAcrossWorkers(t *testing.T) {
	g := gridGraph(t, 12, 10, 0.6)
	const seed = 42
	for _, depth := range []int{Unlimited, 3} {
		// Reference: serial accumulation, with an incremental extension.
		ref := NewMonteCarlo(g, seed)
		ref.SetParallelism(1)
		ref.FromCenter(5, depth, 64)
		want := ref.FromCenter(5, depth, 777)

		for _, workers := range []int{4, 16} {
			mc := NewMonteCarlo(g, seed)
			mc.SetParallelism(workers)
			mc.FromCenter(5, depth, 64) // prime the tally, then extend
			got := mc.FromCenter(5, depth, 777)
			for u := range want {
				if got[u] != want[u] {
					t.Fatalf("depth=%d workers=%d node %d: %v != serial %v",
						depth, workers, u, got[u], want[u])
				}
			}
		}
	}
}

// TestFromCenterConcurrentHammer fires many goroutines at one MonteCarlo —
// mixed centers, depths and sample sizes, so cache hits, misses and
// incremental extensions interleave — and then checks every answer against
// a fresh serial estimator. Run under -race this doubles as the engine's
// data-race probe.
func TestFromCenterConcurrentHammer(t *testing.T) {
	g := gridGraph(t, 10, 8, 0.55)
	const seed = 7
	mc := NewMonteCarlo(g, seed)

	// A fixed pool of (center, depth, r) keys; goroutines hit random keys,
	// so the same tally is created, read and extended from many goroutines
	// at once. Every query for a key uses the key's r, so the tally covers
	// exactly r worlds and the answer is comparable to a serial oracle.
	type query struct {
		c     graph.NodeID
		depth int
		r     int
	}
	x := rng.NewXoshiro256(99)
	keys := make([]query, 0, 40)
	seen := map[[2]int]bool{}
	for len(keys) < 40 {
		q := query{c: graph.NodeID(x.Intn(g.NumNodes())), depth: Unlimited, r: 32 + x.Intn(400)}
		if len(keys)%2 == 0 {
			q.depth = 1 + len(keys)%4
		}
		// Distinct (center, depth) pairs only: colliding keys would share a
		// tally, making the expected world count ambiguous.
		id := [2]int{int(q.c), q.depth}
		if seen[id] {
			continue
		}
		seen[id] = true
		keys = append(keys, q)
	}

	const goroutines = 16
	const perG = 25
	picks := make([][]int, goroutines)
	results := make([][][]float64, goroutines)
	for i := range picks {
		picks[i] = make([]int, perG)
		results[i] = make([][]float64, perG)
		for j := range picks[i] {
			picks[i][j] = x.Intn(len(keys))
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j, ki := range picks[i] {
				q := keys[ki]
				results[i][j] = mc.FromCenter(q.c, q.depth, q.r)
			}
		}(i)
	}
	wg.Wait()

	// Check every concurrent answer against a fresh serial estimator.
	want := make(map[int][]float64, len(keys))
	for ki, q := range keys {
		serial := NewMonteCarlo(g, seed)
		serial.SetParallelism(1)
		want[ki] = serial.FromCenter(q.c, q.depth, q.r)
	}
	for i := range picks {
		for j, ki := range picks[i] {
			got := results[i][j]
			for u := range want[ki] {
				if got[u] != want[ki][u] {
					t.Fatalf("key %d (c=%d depth=%d r=%d) node %d: concurrent %v != serial %v",
						ki, keys[ki].c, keys[ki].depth, keys[ki].r, u, got[u], want[ki][u])
				}
			}
		}
	}
}

// TestStoreConcurrentGrow extends one shared world store from many
// goroutines and checks the stream is the same as a serially grown one.
func TestStoreConcurrentGrow(t *testing.T) {
	g := gridGraph(t, 8, 8, 0.5)
	mc := NewMonteCarlo(g, 3)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mc.Store().Grow(100 + 50*i)
		}(i)
	}
	wg.Wait()
	want := NewMonteCarlo(g, 3)
	want.SetParallelism(1)
	a := mc.FromCenter(0, Unlimited, 450)
	b := want.FromCenter(0, Unlimited, 450)
	for u := range a {
		if a[u] != b[u] {
			t.Fatalf("node %d: %v != %v", u, a[u], b[u])
		}
	}
}
