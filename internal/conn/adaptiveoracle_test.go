package conn

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"ucgraph/internal/graph"
)

func TestStoppingRuleThresholdTable(t *testing.T) {
	// Pin Upsilon = ceil(1 + 4(e-2)(1+eps)ln(2/delta)/eps^2) for known
	// (eps, delta) pairs, so any change to the constant — deliberate or
	// accidental — shows up as a diff against the published bound.
	cases := []struct {
		eps, delta float64
		want       int
	}{
		{0.5, 0.5, 25},
		{0.2, 0.1, 260},
		{0.1, 0.1, 948},
		{0.1, 0.05, 1167},
		{0.05, 0.05, 4453},
		{0.05, 0.01, 6395},
		{0.01, 0.01, 153751},
	}
	for _, c := range cases {
		if got := StoppingRuleThreshold(c.eps, c.delta); got != c.want {
			t.Errorf("StoppingRuleThreshold(%v, %v) = %d, want %d", c.eps, c.delta, got, c.want)
		}
	}
}

func TestStoppingRuleThresholdRejectsNaN(t *testing.T) {
	// NaN fails every ordered comparison, so a plain range guard would
	// accept it and return a garbage threshold.
	nan := math.NaN()
	for _, args := range [][2]float64{{nan, 0.1}, {0.1, nan}, {nan, nan}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for eps=%v delta=%v", args[0], args[1])
				}
			}()
			StoppingRuleThreshold(args[0], args[1])
		}()
	}
}

func TestAdaptiveParamsValidate(t *testing.T) {
	bad := []AdaptiveParams{
		{Eps: 0, Delta: 0.1},
		{Eps: 1, Delta: 0.1},
		{Eps: -0.1, Delta: 0.1},
		{Eps: 0.1, Delta: 0},
		{Eps: 0.1, Delta: 1},
		{Eps: math.NaN(), Delta: 0.1},
		{Eps: 0.1, Delta: math.NaN()},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted eps=%v delta=%v", p.Eps, p.Delta)
		}
	}
	if err := (AdaptiveParams{Eps: 0.1, Delta: 0.05}).Validate(); err != nil {
		t.Fatalf("Validate rejected valid params: %v", err)
	}
}

func TestAdaptiveSchedule(t *testing.T) {
	cases := []struct {
		block, budget, min int
		want               []int
	}{
		{256, 2048, 0, []int{256, 512, 1024, 2048}},
		{256, 1000, 0, []int{256, 512, 1000}},
		{64, 50, 0, []int{50}},
		{64, 4096, 100, []int{128, 256, 512, 1024, 2048, 4096}},
		{1, 7, 3, []int{3, 6, 7}},
	}
	for _, c := range cases {
		got := adaptiveSchedule(c.block, c.budget, c.min)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("adaptiveSchedule(%d, %d, %d) = %v, want %v", c.block, c.budget, c.min, got, c.want)
		}
	}
}

func TestHalfWidthShrinksWithWorlds(t *testing.T) {
	for _, phat := range []float64{0, 0.03, 0.5, 0.97, 1} {
		prev := halfWidth(phat, 64, 0.01)
		for _, r := range []int{128, 256, 512, 1024, 4096} {
			hw := halfWidth(phat, r, 0.01)
			if hw >= prev {
				t.Fatalf("halfWidth(%v, %d) = %v did not shrink from %v", phat, r, hw, prev)
			}
			prev = hw
		}
	}
	// Extreme probabilities converge faster than p = 1/2 at the same r:
	// the empirical-Bernstein variance term is what buys early stopping.
	if halfWidth(0.95, 1024, 0.01) >= halfWidth(0.5, 1024, 0.01) {
		t.Fatal("empirical-Bernstein bound not tighter at extreme probabilities")
	}
}

// adaptiveTestGraph builds a small two-lobe graph with a weak bridge:
// within-lobe pairs connect with high probability, cross-lobe pairs with
// low probability, so adaptive queries see both easy extremes.
func adaptiveTestGraph(t *testing.T) *graph.Uncertain {
	t.Helper()
	var edges []graph.Edge
	for lobe := 0; lobe < 2; lobe++ {
		base := int32(lobe * 4)
		for i := int32(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j, P: 0.9})
			}
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: 4, P: 0.05})
	g, err := graph.FromEdges(8, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAdaptiveFromCentersConvergesAndIsAccurate(t *testing.T) {
	g := adaptiveTestGraph(t)
	ex, err := NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	truth := ex.FromCenter(0, Unlimited, 0)
	mc := NewMonteCarlo(g, 41)
	p := AdaptiveParams{Eps: 0.08, Delta: 0.1, MaxWorlds: 1 << 16}
	ests, st, err := AdaptiveFromCenters(context.Background(), mc, []graph.NodeID{0}, Unlimited, nil, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge within %d worlds (hw=%v)", st.Budget, st.HalfWidth)
	}
	if st.Worlds >= st.Budget {
		t.Fatalf("no early stopping: consumed %d of %d", st.Worlds, st.Budget)
	}
	for v, want := range truth {
		if math.Abs(ests[0][v]-want) > p.Eps {
			t.Errorf("node %d: |%v - %v| > eps=%v", v, ests[0][v], want, p.Eps)
		}
	}
}

func TestAdaptiveFinalEqualsFixedBudget(t *testing.T) {
	g := adaptiveTestGraph(t)
	mc := NewMonteCarlo(g, 17)
	cs := []graph.NodeID{0, 5}
	p := AdaptiveParams{Eps: 0.1, Delta: 0.1, MaxWorlds: 1 << 15}
	ests, st, err := AdaptiveFromCenters(context.Background(), mc, cs, Unlimited, nil, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh estimator over the same (graph, seed) asked for exactly the
	// consumed world count must answer bit-identically: the adaptive path
	// is the fixed-budget path evaluated at its stopping point.
	fixed := NewMonteCarlo(g, 17).FromCenters(cs, Unlimited, st.Worlds)
	if !reflect.DeepEqual(ests, fixed) {
		t.Fatalf("adaptive final != fixed budget at r=%d", st.Worlds)
	}
}

func TestAdaptiveRunIsDeterministic(t *testing.T) {
	g := adaptiveTestGraph(t)
	run := func() []AdaptiveSnapshot {
		mc := NewMonteCarlo(g, 99)
		var snaps []AdaptiveSnapshot
		_, _, err := AdaptiveFromCenters(context.Background(), mc, []graph.NodeID{1}, Unlimited, nil,
			AdaptiveParams{Eps: 0.09, Delta: 0.1, MaxWorlds: 1 << 15},
			func(s AdaptiveSnapshot) error { snaps = append(snaps, s); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return snaps
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical adaptive runs produced different snapshot sequences")
	}
	if len(a) == 0 || !a[len(a)-1].Final {
		t.Fatal("last snapshot not marked final")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Worlds <= a[i-1].Worlds {
			t.Fatal("worlds not strictly increasing across rounds")
		}
		if a[i].HalfWidth >= a[i-1].HalfWidth {
			t.Fatalf("half-width did not shrink: round %d %v -> %v", i, a[i-1].HalfWidth, a[i].HalfWidth)
		}
	}
}

func TestAdaptiveBudgetCapReportsUnconverged(t *testing.T) {
	g := adaptiveTestGraph(t)
	mc := NewMonteCarlo(g, 5)
	// eps far below what the budget can certify: the run must stop at the
	// cap and say so, never claim convergence.
	_, st, err := AdaptiveFromCenters(context.Background(), mc, []graph.NodeID{0}, Unlimited, nil,
		AdaptiveParams{Eps: 0.0005, Delta: 0.05, MaxWorlds: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Converged {
		t.Fatal("claimed convergence at eps=0.0005 with 512 worlds")
	}
	if st.Worlds != 512 {
		t.Fatalf("consumed %d worlds, want the full budget 512", st.Worlds)
	}
}

func TestAdaptiveProgressAbort(t *testing.T) {
	g := adaptiveTestGraph(t)
	mc := NewMonteCarlo(g, 5)
	boom := errors.New("client went away")
	_, _, err := AdaptiveFromCenters(context.Background(), mc, []graph.NodeID{0}, Unlimited, nil,
		AdaptiveParams{Eps: 0.01, Delta: 0.05, MaxWorlds: 1 << 15},
		func(AdaptiveSnapshot) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the progress abort error", err)
	}
}

func TestAdaptivePairIntervalMatchesCenterTally(t *testing.T) {
	g := adaptiveTestGraph(t)
	mc := NewMonteCarlo(g, 23)
	p, st, err := AdaptivePairInterval(context.Background(), mc, 0, 3, Unlimited,
		AdaptiveParams{Eps: 0.05, Delta: 0.05, MaxWorlds: 1 << 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("pair did not converge (hw=%v)", st.HalfWidth)
	}
	want := NewMonteCarlo(g, 23).FromCenter(0, Unlimited, st.Worlds)[3]
	if p != want {
		t.Fatalf("adaptive pair %v != fixed-budget %v at r=%d", p, want, st.Worlds)
	}
}

func TestAdaptiveRejectsBadInput(t *testing.T) {
	g := adaptiveTestGraph(t)
	mc := NewMonteCarlo(g, 1)
	if _, _, err := AdaptiveFromCenters(context.Background(), mc, nil, Unlimited, nil,
		AdaptiveParams{Eps: 0.1, Delta: 0.1}, nil); err == nil {
		t.Fatal("accepted an empty center list")
	}
	if _, _, err := AdaptiveFromCenters(context.Background(), mc, []graph.NodeID{0}, Unlimited, nil,
		AdaptiveParams{Eps: math.NaN(), Delta: 0.1}, nil); err == nil {
		t.Fatal("accepted NaN eps")
	}
}
