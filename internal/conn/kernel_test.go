package conn

import (
	"reflect"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
	"ucgraph/internal/sampler"
)

// kernelTestGraph builds a 128-node ring with pseudo-random chords — large
// enough that a depth-limited batch exercises real BFS frontiers, small
// enough that both accumulate kernels qualify.
func kernelTestGraph(t *testing.T) *graph.Uncertain {
	t.Helper()
	const n = 128
	x := rng.NewXoshiro256(41)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(int32(i), int32((i+1)%n), 0.25+0.7*x.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/2; i++ {
		u, v := int32(x.Intn(n)), int32(x.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v, 0.2+0.6*x.Float64())
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDepthLimitedBatchKernelBitIdentity pins the bit-sliced accumulate
// kernel against the legacy flat kernel through the full production path:
// MonteCarlo.FromCenters → worldstore.CountWithinMulti → the accumulate
// mode of sampler.MultiReachCounter. 70 centers span two 64-center mask
// groups, and 600 worlds force multiple AccumCapacity flushes, so every
// ripple-carry plane level and the flush cadence are both exercised. The
// two kernels add the same per-world reach indicators, so the estimates
// must be bit-identical — not merely close.
func TestDepthLimitedBatchKernelBitIdentity(t *testing.T) {
	g := kernelTestGraph(t)
	cs := make([]graph.NodeID, 70)
	for i := range cs {
		cs[i] = graph.NodeID((i * 13) % g.NumNodes())
	}
	const depth, r = 3, 600

	run := func(flat bool) [][]float64 {
		restore := sampler.OverrideAccumKernel(flat)
		defer restore()
		// A fresh estimator per run: tally caches are per-MonteCarlo, so
		// the second run re-executes the counting kernel rather than
		// replaying the first run's tallies.
		return NewMonteCarlo(g, 97).FromCenters(cs, depth, r)
	}
	sliced := run(false)
	flat := run(true)

	if !reflect.DeepEqual(sliced, flat) {
		for j := range sliced {
			for v := range sliced[j] {
				if sliced[j][v] != flat[j][v] {
					t.Fatalf("kernel mismatch at center %d node %d: bit-sliced %v, flat %v",
						cs[j], v, sliced[j][v], flat[j][v])
				}
			}
		}
		t.Fatal("kernel outputs differ in shape")
	}
	// Guard against a vacuously green test: the batch must produce real
	// probability mass away from the centers themselves.
	mass := 0.0
	for _, est := range sliced {
		for _, p := range est {
			mass += p
		}
	}
	if mass <= float64(len(cs)) {
		t.Fatalf("implausibly small probability mass %v for %d centers", mass, len(cs))
	}
}
