package conn

import (
	"testing"

	"ucgraph/internal/graph"
)

// The warm-bitmap reuse path: a single-center depth-limited query whose
// world range's edge-bitmap blocks are already resident (a batched
// FromCenters materialized them) answers from those bitmaps instead of
// re-hashing edge coins on the implicit stream — bit-identically.

// TestWarmBitmapSingleCenterBitIdentical warms the bitmap blocks with a
// batch, then asserts a fresh single-center query (a) actually reads the
// resident blocks and (b) matches a cold estimator exactly.
func TestWarmBitmapSingleCenterBitIdentical(t *testing.T) {
	g := gridGraph(t, 9, 8, 0.55)
	const seed, depth, r = 19, 2, 400

	warm := NewMonteCarlo(g, seed)
	warm.FromCenters([]graph.NodeID{0, 5, 11, 30}, depth, r) // materializes bitmap blocks

	if !warm.Store().BitsResident(0, r) {
		t.Fatal("bitmap blocks should be resident after the batch")
	}
	before := warm.Store().Stats()
	got := warm.FromCenter(40, depth, r) // fresh center, warm range
	after := warm.Store().Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("single-center query did not reuse resident bitmap blocks (hits %d -> %d)",
			before.Hits, after.Hits)
	}
	if after.Materializations != before.Materializations {
		t.Fatalf("warm query materialized blocks (%d -> %d)", before.Materializations, after.Materializations)
	}

	cold := NewMonteCarlo(identicalGraph(t, g), seed)
	want := cold.FromCenter(40, depth, r)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: warm %v != cold %v", u, got[u], want[u])
		}
	}
}

// TestColdSingleCenterSkipsBitmapFill: without resident bitmaps a
// single-center depth query must stay on the implicit-world path — filling
// whole bitmap blocks for one center has nothing to amortize.
func TestColdSingleCenterSkipsBitmapFill(t *testing.T) {
	g := gridGraph(t, 9, 8, 0.55)
	mc := NewMonteCarlo(identicalGraph(t, g), 23)
	est := mc.FromCenter(7, 2, 300)
	if len(est) != g.NumNodes() {
		t.Fatalf("estimate length %d", len(est))
	}
	if st := mc.Store().Stats(); st.ResidentBitmapBlocks != 0 {
		t.Fatalf("cold single-center query materialized %d bitmap blocks", st.ResidentBitmapBlocks)
	}
}

// TestWarmBitmapPartialResidency: if only a prefix of the range is
// resident, the probe reports false and the query still answers exactly
// (the implicit path), so partially-warm stores never mis-route.
func TestWarmBitmapPartialResidency(t *testing.T) {
	g := gridGraph(t, 9, 8, 0.55)
	const seed, depth = 29, 2
	mc := NewMonteCarlo(g, seed)
	bw := mc.Store().BlockWorlds()
	short := bw / 2 // half of the first block
	mc.FromCenters([]graph.NodeID{0, 5}, depth, short)
	if mc.Store().BitsResident(0, bw+1) {
		t.Fatal("range past the materialized prefix should not report resident")
	}
	if !mc.Store().BitsResident(0, short) {
		t.Fatal("materialized prefix should report resident")
	}
	got := mc.FromCenter(12, depth, bw+10)
	want := NewMonteCarlo(identicalGraph(t, g), seed).FromCenter(12, depth, bw+10)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: %v != %v", u, got[u], want[u])
		}
	}
}

// TestDiskWarmBitmapSingleCenter: the warm-bitmap routing extends to the
// store's disk tier — after the resident blocks are evicted (and spilled),
// a single-center depth query still takes the bitmap path, loading the
// spilled blocks instead of re-hashing edge coins, with bit-identical
// results.
func TestDiskWarmBitmapSingleCenter(t *testing.T) {
	g := gridGraph(t, 9, 8, 0.55)
	const seed, depth, r = 37, 2, 400

	mc := NewMonteCarlo(g, seed)
	if err := mc.Store().AttachCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	mc.FromCenters([]graph.NodeID{0, 5, 11, 30}, depth, r) // materializes bitmap blocks
	mc.Store().SetBudget(1)                                // evict everything; the bitmaps spill
	mc.Store().SetBudget(0)
	if mc.Store().BitsResident(0, r) {
		t.Fatal("bitmap blocks should have been evicted")
	}
	if !mc.Store().BitsWarm(0, r) {
		t.Fatal("spilled bitmap blocks should report warm")
	}
	before := mc.Store().Stats()
	got := mc.FromCenter(40, depth, r)
	after := mc.Store().Stats()
	if after.DiskHits <= before.DiskHits {
		t.Fatalf("disk-warm query never loaded a spilled block (disk hits %d -> %d)",
			before.DiskHits, after.DiskHits)
	}
	want := NewMonteCarlo(identicalGraph(t, g), seed).FromCenter(40, depth, r)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("node %d: disk-warm %v != cold %v", u, got[u], want[u])
		}
	}
}
