// Package kpt implements the pKwikCluster algorithm of Kollios, Potamias
// and Terzi, "Clustering large probabilistic graphs" (TKDE 2013) — the
// 5-approximation for minimizing the expected edit distance between a
// cluster graph and a random possible world. The paper under reproduction
// compares against it (as "kpt") in the protein-complex prediction
// experiment of Section 5.2.
//
// pKwikCluster is the probabilistic variant of KwikCluster: scan the nodes
// in random order; each still-unclustered node becomes a pivot and absorbs
// every unclustered neighbor connected to it by an edge with probability
// greater than 1/2. The number of clusters is an outcome, not a parameter —
// the paper's key criticism of this approach.
package kpt

import (
	"ucgraph/internal/core"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// Cluster runs pKwikCluster on g with the given seed. Cluster centers are
// the pivots. Each absorbed node's Prob field records the probability of
// its edge to the pivot; pivots get 1.
func Cluster(g *graph.Uncertain, seed uint64) *core.Clustering {
	n := g.NumNodes()
	rnd := rng.NewXoshiro256(rng.Stream(seed, 0x4b5054)) // "KPT" stream
	order := rnd.Perm(n)

	assign := make([]int32, n)
	prob := make([]float64, n)
	for i := range assign {
		assign[i] = core.Unassigned
	}
	var centers []graph.NodeID

	for _, ui := range order {
		u := graph.NodeID(ui)
		if assign[u] != core.Unassigned {
			continue
		}
		idx := int32(len(centers))
		centers = append(centers, u)
		assign[u] = idx
		prob[u] = 1
		g.Neighbors(u, func(v graph.NodeID, _ int32, p float64) {
			if assign[v] == core.Unassigned && p > 0.5 {
				assign[v] = idx
				prob[v] = p
			}
		})
	}

	return &core.Clustering{Centers: centers, Assign: assign, Prob: prob}
}
