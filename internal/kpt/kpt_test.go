package kpt

import (
	"testing"

	"ucgraph/internal/core"
	"ucgraph/internal/graph"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKPTHighProbCliqueOneCluster(t *testing.T) {
	// A clique with p = 0.9 everywhere: the first pivot absorbs everyone.
	var edges []graph.Edge
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j), P: 0.9})
		}
	}
	g := mustGraph(t, 6, edges)
	cl := Cluster(g, 1)
	if cl.K() != 1 {
		t.Fatalf("K = %d, want 1", cl.K())
	}
	if !cl.IsFull() {
		t.Fatal("every node must be clustered")
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestKPTLowProbAllSingletons(t *testing.T) {
	// All probabilities <= 1/2: no absorption, n singleton clusters.
	g := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.3}, {U: 2, V: 3, P: 0.5}, {U: 3, V: 4, P: 0.1},
	})
	cl := Cluster(g, 2)
	if cl.K() != 5 {
		t.Fatalf("K = %d, want 5 singletons (all p <= 0.5)", cl.K())
	}
}

func TestKPTPivotAbsorbsOnlyNeighbors(t *testing.T) {
	// Star with strong edges: center pivot absorbs all leaves; leaf pivot
	// absorbs only the center.
	g := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 0, V: 2, P: 0.9}, {U: 0, V: 3, P: 0.9}, {U: 0, V: 4, P: 0.9},
	})
	for seed := uint64(0); seed < 20; seed++ {
		cl := Cluster(g, seed)
		if msg := cl.Validate(); msg != "" {
			t.Fatalf("seed %d: %s", seed, msg)
		}
		if !cl.IsFull() {
			t.Fatalf("seed %d: unassigned nodes", seed)
		}
		// Clusters are either {center + leaves} (1 cluster + nothing else)
		// or {leaf, center} + singletons.
		switch cl.K() {
		case 1:
			// center was the first pivot
		case 4:
			// a leaf was first: it absorbed the center, 3 singletons left
		default:
			t.Fatalf("seed %d: K = %d, want 1 or 4", seed, cl.K())
		}
	}
}

func TestKPTDeterministicPerSeed(t *testing.T) {
	g := mustGraph(t, 8, []graph.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.6}, {U: 2, V: 3, P: 0.9},
		{U: 4, V: 5, P: 0.7}, {U: 5, V: 6, P: 0.9}, {U: 6, V: 7, P: 0.4},
	})
	a, b := Cluster(g, 5), Cluster(g, 5)
	for u := range a.Assign {
		if a.Assign[u] != b.Assign[u] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	// Different seeds explore different permutations; over several seeds
	// at least two distinct K values should appear on this graph.
	ks := map[int]bool{}
	for seed := uint64(0); seed < 10; seed++ {
		ks[Cluster(g, seed).K()] = true
	}
	if len(ks) < 2 {
		t.Log("warning: all seeds produced the same cluster count (possible but unlikely)")
	}
}

func TestKPTProbField(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1, P: 0.8}, {U: 1, V: 2, P: 0.6}})
	cl := Cluster(g, 3)
	for u, a := range cl.Assign {
		if a == core.Unassigned {
			t.Fatalf("node %d unassigned", u)
		}
		if graph.NodeID(u) == cl.Centers[a] {
			if cl.Prob[u] != 1 {
				t.Fatalf("pivot %d has prob %v, want 1", u, cl.Prob[u])
			}
		} else if cl.Prob[u] <= 0.5 {
			t.Fatalf("absorbed node %d has prob %v, want > 0.5", u, cl.Prob[u])
		}
	}
}

func TestKPTEveryNodeExactlyOneCluster(t *testing.T) {
	// Partition property on a denser graph.
	var edges []graph.Edge
	for i := 0; i < 20; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32((i + 1) % 20), P: 0.7})
		edges = append(edges, graph.Edge{U: int32(i), V: int32((i + 5) % 20), P: 0.6})
	}
	g := mustGraph(t, 20, edges)
	cl := Cluster(g, 9)
	counts := make([]int, cl.K())
	for _, a := range cl.Assign {
		if a == core.Unassigned {
			t.Fatal("unassigned node")
		}
		counts[a]++
	}
	total := 0
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("cluster %d empty", i)
		}
		total += c
	}
	if total != 20 {
		t.Fatalf("cluster sizes sum to %d, want 20", total)
	}
}
