// Package faultinject is the repo's first-class fault-injection layer:
// a TCP proxy that sits between a shard coordinator and a worker (or any
// client/backend pair) and injects the faults that real deployments see —
// severed connections, delay, partitions, and bit corruption — below the
// HTTP layer, which is exactly how a worker death manifests against a
// persistent hijacked stream.
//
// Faults come from two sources that compose:
//
//   - Imperative controls (SetDown, SetDelay, KillConns, CorruptNext) for
//     tests that need a fault at a precise point in a query's lifetime.
//   - A seeded Schedule for chaos runs: every fault decision is a pure
//     function of (seed, connection index, chunk index), so an entire
//     chaos run is reproducible from the single seed printed on failure.
//
// The package deliberately has no dependency on testing: production
// tooling (a chaos sidecar) could link it as-is. Tests pair New with
// t.Cleanup(p.Close).
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"ucgraph/internal/rng"
)

// FaultKind enumerates the per-chunk fault decisions a Schedule makes.
type FaultKind uint8

const (
	// FaultNone forwards the chunk untouched.
	FaultNone FaultKind = iota
	// FaultKill severs the connection before forwarding the chunk.
	FaultKill
	// FaultDelay sleeps Schedule.Delay before forwarding the chunk.
	FaultDelay
	// FaultCorrupt flips one bit of the chunk before forwarding it.
	FaultCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultKill:
		return "kill"
	case FaultDelay:
		return "delay"
	case FaultCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("faultKind(%d)", uint8(k))
	}
}

// Fault is one scheduled decision: what to do to one chunk of one
// connection's backend->client byte stream.
type Fault struct {
	Kind FaultKind
	// Delay is the sleep applied when Kind == FaultDelay.
	Delay time.Duration
	// Bit is the bit offset (0-7) flipped within the chosen byte when
	// Kind == FaultCorrupt. The proxy flips it in the final byte of the
	// chunk so small frames are corrupted in their payload/trailer, not
	// their length header (a mangled length kills the whole stream, which
	// is a different — also covered — failure mode).
	Bit uint
}

// Schedule is a pure, seeded fault plan. The zero value injects nothing.
// Decisions are stateless hashes of (seed, conn, chunk): two proxies
// given the same seed produce byte-for-byte the same fault sequence
// regardless of goroutine interleaving, and a failing chaos run replays
// from its logged seed alone.
type Schedule struct {
	// Seed drives every probabilistic decision below.
	Seed uint64
	// KillEvery injects FaultKill with probability 1/KillEvery per chunk
	// (0 disables).
	KillEvery uint64
	// DelayEvery injects FaultDelay with probability 1/DelayEvery per
	// chunk (0 disables); the sleep is Delay.
	DelayEvery uint64
	// Delay is the sleep for scheduled delay faults.
	Delay time.Duration
	// CorruptEvery injects FaultCorrupt with probability 1/CorruptEvery
	// per chunk (0 disables).
	CorruptEvery uint64
	// PartitionEvery marks whole connections partitioned with probability
	// 1/PartitionEvery per connection (0 disables). A partitioned
	// connection accepts but forwards nothing in either direction — the
	// classic network partition, distinct from a kill in that the peer
	// sees silence, not a reset.
	PartitionEvery uint64
}

// streams within a connection get distinct decision domains so the
// backend->client chooser never correlates with the partition chooser.
const (
	domainChunk     = 0x9e3779b97f4a7c15
	domainPartition = 0xd1b54a32d192ed03
)

// decide hashes (seed, domain, conn, chunk) to a uniform uint64. rng.Mix64
// is the same finalizer the world sampler uses; statelessness is what
// makes schedules replayable.
func (s Schedule) decide(domain, conn, chunk uint64) uint64 {
	return rng.Mix64(s.Seed ^ rng.Mix64(domain^rng.Mix64(conn)^chunk*0x2545f4914f6cdd1d))
}

// Partitioned reports whether connection conn is scheduled as partitioned.
func (s Schedule) Partitioned(conn uint64) bool {
	if s.PartitionEvery == 0 {
		return false
	}
	return s.decide(domainPartition, conn, 0)%s.PartitionEvery == 0
}

// Chunk returns the fault decision for chunk i of connection conn's
// backend->client stream. Kill takes precedence over corrupt over delay
// when several fire on the same chunk.
func (s Schedule) Chunk(conn, i uint64) Fault {
	h := s.decide(domainChunk, conn, i)
	if s.KillEvery != 0 && h%s.KillEvery == 0 {
		return Fault{Kind: FaultKill}
	}
	// Reuse independent bit ranges of the same hash for the remaining
	// decisions; they are far apart enough to be uncorrelated under Mix64.
	if s.CorruptEvery != 0 && (h>>16)%s.CorruptEvery == 0 {
		return Fault{Kind: FaultCorrupt, Bit: uint(h>>8) & 7}
	}
	if s.DelayEvery != 0 && (h>>32)%s.DelayEvery == 0 {
		return Fault{Kind: FaultDelay, Delay: s.Delay}
	}
	return Fault{Kind: FaultNone}
}

// Active reports whether the schedule can inject any fault at all.
func (s Schedule) Active() bool {
	return s.KillEvery != 0 || s.DelayEvery != 0 || s.CorruptEvery != 0 || s.PartitionEvery != 0
}

// TestSeed returns the chaos seed for this run: $CHAOS_SEED when set
// (replaying a logged failure), otherwise a time-derived seed. Callers
// should log the returned value so any failure is replayable; logf
// receives a printf-style line for that purpose (pass t.Logf).
func TestSeed(logf func(format string, args ...any)) uint64 {
	seed := uint64(time.Now().UnixNano())
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		if v, err := strconv.ParseUint(env, 10, 64); err == nil {
			seed = v
		}
	}
	if logf != nil {
		logf("chaos seed %d (replay with CHAOS_SEED=%d)", seed, seed)
	}
	return seed
}
