package faultinject

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// TestScheduleDeterministic is the replayability contract: a schedule's
// entire fault sequence is a pure function of its seed, so a chaos
// failure replays from the one logged number.
func TestScheduleDeterministic(t *testing.T) {
	mk := func(seed uint64) Schedule {
		return Schedule{
			Seed:           seed,
			KillEvery:      97,
			DelayEvery:     13,
			Delay:          time.Millisecond,
			CorruptEvery:   31,
			PartitionEvery: 11,
		}
	}
	a, b := mk(42), mk(42)
	for conn := uint64(0); conn < 8; conn++ {
		if a.Partitioned(conn) != b.Partitioned(conn) {
			t.Fatalf("partition decision differs for conn %d under the same seed", conn)
		}
		for i := uint64(0); i < 512; i++ {
			fa, fb := a.Chunk(conn, i), b.Chunk(conn, i)
			if fa != fb {
				t.Fatalf("conn %d chunk %d: %v vs %v under the same seed", conn, i, fa, fb)
			}
		}
	}
}

// TestScheduleSeedSensitivity: different seeds must give different
// sequences (a constant schedule would trivially pass the determinism
// test while testing nothing).
func TestScheduleSeedSensitivity(t *testing.T) {
	mk := func(seed uint64) Schedule {
		return Schedule{Seed: seed, KillEvery: 7, CorruptEvery: 5, DelayEvery: 3, Delay: time.Millisecond}
	}
	a, b := mk(1), mk(2)
	diff := 0
	for i := uint64(0); i < 512; i++ {
		if a.Chunk(0, i) != b.Chunk(0, i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("512 chunk decisions identical across different seeds")
	}
}

// TestScheduleRates sanity-checks that 1/N knobs fire at roughly 1/N —
// catching a hash bug that makes a fault never (or always) fire.
func TestScheduleRates(t *testing.T) {
	s := Schedule{Seed: 9, CorruptEvery: 8}
	hits := 0
	const n = 4096
	for i := uint64(0); i < n; i++ {
		if s.Chunk(3, i).Kind == FaultCorrupt {
			hits++
		}
	}
	// Expect ~n/8 = 512; accept a generous 2x band.
	if hits < n/16 || hits > n/4 {
		t.Fatalf("corrupt rate way off: %d hits of %d at 1/8", hits, n)
	}
}

// echoBackend accepts one connection at a time and echoes bytes back.
func echoBackend(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	return ln
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestProxyForwardsAndCorrupts drives the proxy against an echo backend:
// clean pass-through first, then CorruptNext flips exactly one bit of the
// next response chunk, and the corruption counter records it.
func TestProxyForwardsAndCorrupts(t *testing.T) {
	ln := echoBackend(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	c := dialProxy(t, p)
	msg := []byte("tally-frame-payload")
	roundTrip := func() []byte {
		if _, err := c.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(c, got); err != nil {
			t.Fatal(err)
		}
		return got
	}

	if got := roundTrip(); !bytes.Equal(got, msg) {
		t.Fatalf("clean forward mangled: %q vs %q", got, msg)
	}

	p.CorruptNext(1)
	got := roundTrip()
	if bytes.Equal(got, msg) {
		t.Fatal("CorruptNext(1) did not corrupt the next chunk")
	}
	want := append([]byte(nil), msg...)
	want[len(want)-1] ^= 1
	if !bytes.Equal(got, want) {
		t.Fatalf("corruption not a single final-byte bit flip: %q", got)
	}
	if got := roundTrip(); !bytes.Equal(got, msg) {
		t.Fatal("corruption budget did not expire after one chunk")
	}
	if n := p.Counters().Corruptions; n != 1 {
		t.Fatalf("Corruptions = %d, want 1", n)
	}
}

// TestProxyKillAndRevive: SetDown severs live connections and refuses new
// ones; revival restores service.
func TestProxyKillAndRevive(t *testing.T) {
	ln := echoBackend(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	c := dialProxy(t, p)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(c, one); err != nil {
		t.Fatal(err)
	}

	p.Kill()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(one); err == nil {
		t.Fatal("read succeeded on a killed connection")
	}

	p.SetDown(false)
	c2 := dialProxy(t, p)
	if _, err := c2.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c2, one); err != nil {
		t.Fatalf("revived proxy not forwarding: %v", err)
	}
}

// TestProxyScheduledKill installs a kill-every-chunk schedule and checks
// the connection dies on its first response chunk, with the kill counted.
func TestProxyScheduledKill(t *testing.T) {
	ln := echoBackend(t)
	p, err := New(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	p.SetSchedule(Schedule{Seed: 5, KillEvery: 1})

	c := dialProxy(t, p)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(one); err == nil {
		t.Fatal("scheduled kill did not sever the response path")
	}
	if n := p.Counters().Kills; n == 0 {
		t.Fatal("kill not counted")
	}
}
