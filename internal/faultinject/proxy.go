package faultinject

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counters is a snapshot of the faults a Proxy has actually injected.
// Chaos tests assert against these to prove a run exercised what it
// claimed to (a schedule that never fired proves nothing).
type Counters struct {
	// Conns is the number of client connections accepted and forwarded.
	Conns uint64
	// Kills counts connections severed by a scheduled kill fault
	// (imperative SetDown/KillConns severs are not counted here).
	Kills uint64
	// Delays counts chunks delayed by a scheduled delay fault.
	Delays uint64
	// Corruptions counts chunks with a bit flipped — scheduled or via
	// CorruptNext.
	Corruptions uint64
	// Partitioned counts connections the schedule black-holed.
	Partitioned uint64
}

// Proxy is a TCP forwarder between a client and one backend that injects
// faults at the connection layer — below HTTP, where real worker deaths,
// stragglers, partitions, and bit rot manifest against the shard fabric's
// persistent streams. Scheduled faults apply to the backend->client
// direction (the response path, where corruption must be caught before a
// tally is merged); imperative kills sever both directions.
type Proxy struct {
	ln      net.Listener
	backend string
	down    atomic.Bool
	delay   atomic.Int64 // extra latency per backend->client chunk, ns
	corrupt atomic.Int64 // CorruptNext budget: chunks left to bit-flip

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	schedule Schedule

	connSeq atomic.Uint64
	counts  struct {
		kills, delays, corruptions, partitioned atomic.Uint64
	}
}

// New starts a proxy forwarding to backend (a base URL or host:port) on
// an ephemeral localhost port. Callers own shutdown: pair with
// t.Cleanup(p.Close) in tests.
func New(backend string) (*Proxy, error) {
	backend = strings.TrimPrefix(backend, "http://")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, backend: backend, conns: make(map[net.Conn]struct{})}
	go p.run()
	return p, nil
}

// URL returns the proxy's base URL, to hand to a coordinator as the
// worker address.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// SetSchedule installs a seeded fault schedule; faults apply to
// connections accepted from now on. The zero Schedule disables scheduled
// faults.
func (p *Proxy) SetSchedule(s Schedule) {
	p.mu.Lock()
	p.schedule = s
	p.mu.Unlock()
}

// SetDelay throttles every backend->client chunk by d (0 disables) — the
// shape of a straggling worker.
func (p *Proxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// CorruptNext flips one bit in the final byte of each of the next n
// backend->client chunks. Small tally frames arrive as a single chunk, so
// the flip lands in the frame payload/CRC trailer while the length header
// stays intact — the bit-rot case wire integrity must catch, as opposed
// to a mangled header, which kills the stream outright (a different,
// also-handled fault).
func (p *Proxy) CorruptNext(n int) { p.corrupt.Add(int64(n)) }

// SetDown kills (or revives) the proxied backend; going down severs every
// live connection and refuses new ones, modelling a crash mid-query.
func (p *Proxy) SetDown(down bool) {
	p.down.Store(down)
	if down {
		p.KillConns()
	}
}

// Kill is SetDown(true): sever everything, refuse new connections.
func (p *Proxy) Kill() { p.SetDown(true) }

// KillConns severs every live connection without marking the backend
// down: established streams die, reconnects succeed — the shape of a
// network blip or an idle-timeout middlebox.
func (p *Proxy) KillConns() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
}

// Counters returns a snapshot of injected-fault counts.
func (p *Proxy) Counters() Counters {
	p.mu.Lock()
	nconns := p.connSeq.Load()
	p.mu.Unlock()
	return Counters{
		Conns:       nconns,
		Kills:       p.counts.kills.Load(),
		Delays:      p.counts.delays.Load(),
		Corruptions: p.counts.corruptions.Load(),
		Partitioned: p.counts.partitioned.Load(),
	}
}

// Close stops accepting and severs every live connection.
func (p *Proxy) Close() error {
	err := p.ln.Close()
	p.KillConns()
	return err
}

func (p *Proxy) run() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.down.Load() {
			c.Close()
			continue
		}
		connID := p.connSeq.Add(1) - 1
		p.mu.Lock()
		sched := p.schedule
		p.mu.Unlock()
		if sched.Partitioned(connID) {
			// Black hole: hold the connection open, forward nothing. The
			// peer sees silence until its own deadline fires — the
			// distinguishing mark of a partition versus a crash.
			p.counts.partitioned.Add(1)
			p.track(c)
			continue
		}
		b, err := net.Dial("tcp", p.backend)
		if err != nil {
			c.Close()
			continue
		}
		p.track(c)
		p.track(b)
		go p.pipe(c, b, connID, false, sched)
		go p.pipe(b, c, connID, true, sched)
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

// pipe forwards src->dst. Faults — the imperative delay/corrupt controls
// and the seeded schedule — apply only on the backend->client direction
// (faulted == true), chunk by chunk.
func (p *Proxy) pipe(src, dst net.Conn, connID uint64, faulted bool, sched Schedule) {
	defer src.Close()
	defer dst.Close()
	buf := make([]byte, 4096)
	var chunk uint64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if faulted {
				if d := p.delay.Load(); d > 0 {
					time.Sleep(time.Duration(d))
				}
				if p.corrupt.Load() > 0 {
					if p.corrupt.Add(-1) >= 0 {
						buf[n-1] ^= 1
						p.counts.corruptions.Add(1)
					} else {
						p.corrupt.Add(1) // lost the race; restore
					}
				}
				switch f := sched.Chunk(connID, chunk); f.Kind {
				case FaultKill:
					p.counts.kills.Add(1)
					return
				case FaultDelay:
					p.counts.delays.Add(1)
					time.Sleep(f.Delay)
				case FaultCorrupt:
					buf[n-1] ^= 1 << f.Bit
					p.counts.corruptions.Add(1)
				}
				chunk++
			}
			if p.down.Load() {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
