package obs

import (
	"runtime"
	"runtime/debug"
)

// Build describes the running binary: main-module version, VCS
// revision (plus a "-dirty" suffix for modified checkouts), and the Go
// toolchain that compiled it. Fields are "unknown" when the binary was
// built without module or VCS stamping (e.g. `go test`).
type Build struct {
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	GoVersion string `json:"go_version"`
}

// BuildInfo reads the binary's embedded build information once; the
// result is immutable for the process lifetime.
func BuildInfo() Build {
	b := Build{Version: "unknown", Commit: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if v := bi.Main.Version; v != "" {
		b.Version = v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "-dirty"
		}
		b.Commit = rev
	}
	return b
}
