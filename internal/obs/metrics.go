package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Prometheus text exposition, hand-rolled: the repo is zero-dependency,
// and the subset we need — counters, gauges, fixed-bucket histograms,
// label vectors — fits in a page. The format is the Prometheus
// text-based exposition format v0.0.4 (HELP/TYPE comments, samples with
// escaped label values, cumulative le buckets with a mandatory +Inf).
// internal/obs/metrics_test.go carries a strict parser that CI runs
// against real /metricsz output.

// DefSecondsBuckets is the default latency bucket layout, in seconds:
// half a millisecond to ten seconds on a rough 1-2.5-5 ladder. The same
// layout is used for every duration histogram so panels line up.
var DefSecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// A Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// A Writer emits Prometheus text format with correct escaping. Errors
// are sticky: the first write failure suppresses the rest and surfaces
// from Err.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter wraps w for Prometheus text output.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err reports the first underlying write error, if any.
func (pw *Writer) Err() error { return pw.err }

func (pw *Writer) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// Family writes the # HELP and # TYPE header for a metric family. typ
// is "counter", "gauge" or "histogram".
func (pw *Writer) Family(name, help, typ string) {
	if !metricNameRE.MatchString(name) {
		panic("obs: invalid metric name " + name)
	}
	pw.printf("# HELP %s %s\n", name, helpEscaper.Replace(help))
	pw.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line. labels may be nil.
func (pw *Writer) Sample(name string, labels []Label, value float64) {
	pw.printf("%s%s %s\n", name, formatLabels(labels), formatFloat(value))
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !labelNameRE.MatchString(l.Name) {
			panic("obs: invalid label name " + l.Name)
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// A Registry holds histogram vectors registered once at startup and
// renders them on scrape. Scrape-time gauges (mirrors of /statsz
// counters) are written by the caller directly through a Writer — the
// registry only owns state that must accumulate between scrapes.
type Registry struct {
	mu    sync.Mutex
	hists []*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Histogram registers (or returns, name being the identity) a histogram
// vector with fixed upper-bound buckets and the given label names. An
// implicit +Inf bucket is always appended.
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if !metricNameRE.MatchString(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, ln := range labelNames {
		if !labelNameRE.MatchString(ln) {
			panic("obs: invalid label name " + ln)
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be strictly increasing")
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.hists {
		if h.name == name {
			return h
		}
	}
	h := &HistogramVec{
		name:       name,
		help:       help,
		buckets:    append([]float64(nil), buckets...),
		labelNames: append([]string(nil), labelNames...),
		children:   make(map[string]*histogram),
	}
	r.hists = append(r.hists, h)
	return h
}

// WriteTo renders every registered family, in registration order, with
// children sorted by label values so scrapes are deterministic.
func (r *Registry) WriteTo(pw *Writer) {
	r.mu.Lock()
	hists := append([]*HistogramVec(nil), r.hists...)
	r.mu.Unlock()
	for _, h := range hists {
		h.writeTo(pw)
	}
}

// A HistogramVec is a family of fixed-bucket histograms keyed by label
// values. Observations are lock-cheap: an RLock on the child map plus
// atomic adds; child creation (first observation per label set) takes
// the write lock once.
type HistogramVec struct {
	name       string
	help       string
	buckets    []float64 // upper bounds, strictly increasing; +Inf implicit
	labelNames []string

	mu       sync.RWMutex
	children map[string]*histogram
}

type histogram struct {
	labelValues []string
	counts      []atomic.Uint64 // len(buckets)+1, last is +Inf
	sum         atomic.Uint64   // float64 bits, CAS-accumulated
	count       atomic.Uint64
}

// Observe records v under the given label values (which must match the
// registered label names in number and order).
func (hv *HistogramVec) Observe(v float64, labelValues ...string) {
	if len(labelValues) != len(hv.labelNames) {
		panic(fmt.Sprintf("obs: %s: got %d label values, want %d", hv.name, len(labelValues), len(hv.labelNames)))
	}
	h := hv.child(labelValues)
	i := sort.SearchFloat64s(hv.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
}

func (hv *HistogramVec) child(labelValues []string) *histogram {
	key := strings.Join(labelValues, "\x00")
	hv.mu.RLock()
	h := hv.children[key]
	hv.mu.RUnlock()
	if h != nil {
		return h
	}
	hv.mu.Lock()
	defer hv.mu.Unlock()
	if h = hv.children[key]; h != nil {
		return h
	}
	h = &histogram{
		labelValues: append([]string(nil), labelValues...),
		counts:      make([]atomic.Uint64, len(hv.buckets)+1),
	}
	hv.children[key] = h
	return h
}

func (hv *HistogramVec) writeTo(pw *Writer) {
	hv.mu.RLock()
	children := make([]*histogram, 0, len(hv.children))
	for _, h := range hv.children {
		children = append(children, h)
	}
	hv.mu.RUnlock()
	if len(children) == 0 {
		return
	}
	sort.Slice(children, func(i, j int) bool {
		return strings.Join(children[i].labelValues, "\x00") < strings.Join(children[j].labelValues, "\x00")
	})
	pw.Family(hv.name, hv.help, "histogram")
	for _, h := range children {
		base := make([]Label, len(hv.labelNames))
		for i, ln := range hv.labelNames {
			base[i] = Label{ln, h.labelValues[i]}
		}
		var cum uint64
		for i, ub := range hv.buckets {
			cum += h.counts[i].Load()
			pw.Sample(hv.name+"_bucket", append(base[:len(base):len(base)], Label{"le", formatFloat(ub)}), float64(cum))
		}
		cum += h.counts[len(hv.buckets)].Load()
		pw.Sample(hv.name+"_bucket", append(base[:len(base):len(base)], Label{"le", "+Inf"}), float64(cum))
		pw.Sample(hv.name+"_sum", base, math.Float64frombits(h.sum.Load()))
		pw.Sample(hv.name+"_count", base, float64(cum))
	}
}
