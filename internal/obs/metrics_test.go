package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramObserveAndRender(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("req_seconds", "request latency", []float64{0.01, 0.1, 1}, "endpoint")
	h.Observe(0.005, "/v1/conn")
	h.Observe(0.05, "/v1/conn")
	h.Observe(0.5, "/v1/conn")
	h.Observe(5, "/v1/conn")
	h.Observe(0.05, "/v1/cluster")

	var buf bytes.Buffer
	pw := NewWriter(&buf)
	reg.WriteTo(pw)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{endpoint="/v1/conn",le="0.01"} 1`,
		`req_seconds_bucket{endpoint="/v1/conn",le="0.1"} 2`,
		`req_seconds_bucket{endpoint="/v1/conn",le="1"} 3`,
		`req_seconds_bucket{endpoint="/v1/conn",le="+Inf"} 4`,
		`req_seconds_count{endpoint="/v1/conn"} 4`,
		`req_seconds_count{endpoint="/v1/cluster"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("self-lint: %v", err)
	}
}

func TestHistogramSumIsExact(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x_seconds", "", DefSecondsBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	reg.WriteTo(pw)
	want := "x_seconds_count 8000"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("missing %q in:\n%s", want, buf.String())
	}
	// The CAS loop must not lose updates: 8000 additions of 0.001 land
	// within float association error of 8.
	var sum float64
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if v, ok := strings.CutPrefix(line, "x_seconds_sum "); ok {
			var err error
			if sum, err = parseFloat(v); err != nil {
				t.Fatal(err)
			}
			found = true
		}
	}
	if !found || math.Abs(sum-8) > 1e-6 {
		t.Fatalf("sum = %v (found=%v), want ~8", sum, found)
	}
}

func TestWriterEscaping(t *testing.T) {
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	pw.Family("m", "help with \\ and\nnewline", "gauge")
	pw.Sample("m", []Label{{"l", `quo"te\slash` + "\nnl"}}, 1)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP m help with \\ and\nnewline`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `m{l="quo\"te\\slash\nnl"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("lint round-trip: %v", err)
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0.0005, "0.0005"}, {1, "1"}, {2.5, "2.5"},
		{math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"},
	} {
		if got := formatFloat(tc.v); got != tc.want {
			t.Fatalf("formatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	for name, text := range map[string]string{
		"no type":           "orphan 1\n",
		"bad name":          "# TYPE 9bad counter\n",
		"bad type":          "# TYPE m histo\n",
		"type after sample": "# TYPE m counter\nm 1\n# TYPE m counter\n",
		"bad value":         "# TYPE m counter\nm xyz\n",
		"unquoted label":    "# TYPE m counter\nm{l=v} 1\n",
		"missing inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"decreasing buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n",
		"count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 4\n",
	} {
		if err := LintPrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted malformed input", name)
		}
	}
}

func TestLintAcceptsValid(t *testing.T) {
	text := "# HELP m a counter\n# TYPE m counter\nm 1\n" +
		"# TYPE g gauge\n" + `g{a="x",b="y"} 2.5 1700000000000` + "\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="0.1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\n" +
		"h_sum 0.3\nh_count 2\n"
	if err := LintPrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("lint rejected valid input: %v", err)
	}
}

func TestBuildInfoPopulated(t *testing.T) {
	b := BuildInfo()
	if b.GoVersion == "" {
		t.Fatal("empty go version")
	}
	if b.Version == "" || b.Commit == "" {
		t.Fatal("build fields must never be empty (use \"unknown\")")
	}
}
