// Package obs is the zero-dependency observability layer: per-query
// traces with hierarchical spans (trace.go), Prometheus text-format
// metrics with lock-cheap fixed-bucket histograms (metrics.go), a
// bounded ring of recent traces (ring.go), and build-info discovery
// (buildinfo.go).
//
// The package holds one standing invariant for the whole repository:
// observation never alters estimation. Spans record wall-clock time and
// counters that already exist; they never reorder work, never consume
// randomness from an estimator stream, and never change a code path.
// Every entry point is nil-safe — a nil *Span no-ops — so callers thread
// spans unconditionally and pay only a context lookup when tracing is
// off.
package obs

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// A Trace is one query's worth of spans. Spans form a tree via parent
// IDs but are stored flat, in creation order, so concurrent branches
// (per-worker scatter attempts) append without coordination beyond the
// trace mutex. A Trace is safe for concurrent use.
type Trace struct {
	ID    string    `json:"trace_id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`

	idNum  uint64
	mu     sync.Mutex
	nextID uint64
	spans  []*Span
	end    time.Time
	root   *Span
}

// A Span is one timed step inside a Trace, annotated with ordered
// key/value attributes. All methods are nil-safe: a nil receiver no-ops,
// so instrumented code never branches on whether tracing is enabled.
type Span struct {
	tr       *Trace
	id       uint64
	parentID uint64
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
}

// An Attr is one span annotation. Values are kept as supplied and
// rendered through encoding/json.
type Attr struct {
	Key   string
	Value any
}

// NewTrace starts a trace rooted at a span named name. The trace ID is
// random (not derived from any estimator seed) so concurrent queries
// are distinguishable in logs and the /debug/traces ring.
func NewTrace(name string) *Trace {
	id := rand.Uint64() | 1
	tr := &Trace{
		ID:    fmt.Sprintf("%016x", id),
		Name:  name,
		Start: time.Now(),
		idNum: id,
	}
	tr.root = tr.newSpan(0, name)
	return tr
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span (if still open) and stamps the trace end
// time. It is idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.End()
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// Duration reports end-start for a finished trace, or time-since-start
// for one still in flight.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		return time.Since(t.Start)
	}
	return t.end.Sub(t.Start)
}

func (t *Trace) newSpan(parent uint64, name string) *Span {
	t.mu.Lock()
	t.nextID++
	s := &Span{tr: t, id: t.nextID, parentID: parent, name: name, start: time.Now()}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// StartChild opens a child span under s. Safe to call from any
// goroutine; nil-safe.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s.id, name)
}

// End closes the span. Idempotent; nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// Set attaches (or overwrites) an attribute on the span.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.tr.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetAll attaches (or overwrites) several attributes under one lock
// acquisition — the batch counterpart of Set for hot paths (per-worker
// scatter attempts) that annotate many keys at once.
func (s *Span) SetAll(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.tr.mu.Lock()
outer:
	for _, a := range attrs {
		for i := range s.attrs {
			if s.attrs[i].Key == a.Key {
				s.attrs[i].Value = a.Value
				continue outer
			}
		}
		s.attrs = append(s.attrs, a)
	}
	s.tr.mu.Unlock()
}

// Add increments an integer attribute on the span (creating it at
// delta). Useful for counters accumulated across retries.
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			if v, ok := s.attrs[i].Value.(int64); ok {
				s.attrs[i].Value = v + delta
				s.tr.mu.Unlock()
				return
			}
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: delta})
	s.tr.mu.Unlock()
}

// Name returns the span's name; nil-safe (empty for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// WireIDs returns the numeric (trace ID, span ID) pair for propagating a
// span across a wire protocol. A nil span returns (0, 0) — zero means
// "untraced" on every wire that carries these.
func (s *Span) WireIDs() (traceID, spanID uint64) {
	if s == nil {
		return 0, 0
	}
	return s.tr.idNum, s.id
}

// Trace returns the owning trace; nil for a nil span.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// SpanView is the JSON rendering of one span: times are relative to the
// trace start in milliseconds so an operator reads offsets, not clocks.
type SpanView struct {
	ID         uint64         `json:"id"`
	ParentID   uint64         `json:"parent_id"`
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// TraceView is the JSON rendering of a whole trace, stable enough to be
// returned from the explain API and the /debug/traces ring.
type TraceView struct {
	TraceID    string     `json:"trace_id"`
	Name       string     `json:"name"`
	Start      time.Time  `json:"start"`
	DurationMS float64    `json:"duration_ms"`
	Spans      []SpanView `json:"spans"`
}

// View snapshots the trace for rendering. Open spans report duration up
// to now. The snapshot is deep: mutating the trace afterwards does not
// affect it.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = time.Now()
	}
	v := TraceView{
		TraceID:    t.ID,
		Name:       t.Name,
		Start:      t.Start,
		DurationMS: float64(end.Sub(t.Start)) / float64(time.Millisecond),
		Spans:      make([]SpanView, 0, len(t.spans)),
	}
	for _, s := range t.spans {
		se := s.end
		if se.IsZero() {
			se = end
		}
		sv := SpanView{
			ID:         s.id,
			ParentID:   s.parentID,
			Name:       s.name,
			StartMS:    float64(s.start.Sub(t.Start)) / float64(time.Millisecond),
			DurationMS: float64(se.Sub(s.start)) / float64(time.Millisecond),
		}
		if len(s.attrs) > 0 {
			sv.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				sv.Attrs[a.Key] = a.Value
			}
		}
		v.Spans = append(v.Spans, sv)
	}
	return v
}

// SpanDurations reports, per span name, the observed durations of a
// finished trace — the feed for per-stage latency histograms. Names are
// returned sorted for deterministic iteration.
func (t *Trace) SpanDurations() []struct {
	Name string
	D    time.Duration
} {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]struct {
		Name string
		D    time.Duration
	}, 0, len(t.spans))
	for _, s := range t.spans {
		if s.end.IsZero() {
			continue
		}
		out = append(out, struct {
			Name string
			D    time.Duration
		}{s.name, s.end.Sub(s.start)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MarshalJSON renders the trace through View so a *Trace can be dropped
// straight into a JSON response.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.View())
}
