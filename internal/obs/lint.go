package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus validates Prometheus text-format exposition: HELP/TYPE
// comment shape, sample syntax (metric names, label quoting/escaping,
// float values), TYPE-before-sample ordering, and histogram invariants
// (an le label on every _bucket, a +Inf bucket whose cumulative count
// equals _count, counts non-decreasing in le). CI runs it over live
// /metricsz output so a malformed scrape fails the build rather than a
// dashboard.
func LintPrometheus(r io.Reader) error {
	types := make(map[string]string)
	seenSample := make(map[string]bool)
	// histogram bookkeeping: family -> series key -> le -> count,
	// plus the _count sample per series.
	buckets := make(map[string]map[string]map[float64]float64)
	counts := make(map[string]map[string]float64)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, types, seenSample); err != nil {
				return fmt.Errorf("line %d: %w", lineno, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineno, err)
		}
		fam := familyOf(name, types)
		if t, ok := types[fam]; ok {
			seenSample[fam] = true
			if t == "histogram" {
				recordHistogramSample(fam, name, labels, value, buckets, counts)
			}
		} else {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineno, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return lintHistograms(buckets, counts)
}

func lintComment(line string, types map[string]string, seenSample map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRE.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP: %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !metricNameRE.MatchString(fields[2]) {
			return fmt.Errorf("malformed TYPE: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if seenSample[fields[2]] {
			return fmt.Errorf("TYPE for %s after its samples", fields[2])
		}
		if _, dup := types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		types[fields[2]] = fields[3]
	}
	return nil
}

// familyOf maps a sample name to its declared family, unwrapping the
// histogram suffixes.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func parseSample(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !metricNameRE.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return "", nil, 0, err
		}
	}
	rest = strings.TrimSpace(rest)
	// An optional timestamp may follow the value.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		if _, terr := strconv.ParseInt(strings.TrimSpace(rest[sp+1:]), 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("malformed timestamp in %q", line)
		}
		rest = rest[:sp]
	}
	value, err = parseFloat(rest)
	if err != nil {
		return "", nil, 0, fmt.Errorf("malformed value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	s = s[1:] // consume '{'
	for {
		s = strings.TrimLeft(s, " ")
		if len(s) > 0 && s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed labels near %q", s)
		}
		ln := strings.TrimSpace(s[:eq])
		if !labelNameRE.MatchString(ln) {
			return nil, "", fmt.Errorf("invalid label name %q", ln)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", ln)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return nil, "", fmt.Errorf("label %s: unterminated value", ln)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if len(s) == 0 {
					return nil, "", fmt.Errorf("label %s: dangling escape", ln)
				}
				switch s[0] {
				case '\\', '"':
					val.WriteByte(s[0])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", ln, s[0])
				}
				s = s[1:]
				continue
			}
			val.WriteByte(c)
		}
		labels = append(labels, Label{ln, val.String()})
		s = strings.TrimLeft(s, " ")
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func recordHistogramSample(fam, name string, labels []Label, value float64,
	buckets map[string]map[string]map[float64]float64, counts map[string]map[string]float64) {
	var le string
	series := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Name == "le" {
			le = l.Value
			continue
		}
		series = append(series, l.Name+"="+l.Value)
	}
	sort.Strings(series)
	key := strings.Join(series, ",")
	switch name {
	case fam + "_bucket":
		ub, err := parseFloat(le)
		if le == "" || err != nil {
			ub = math.NaN() // flagged in lintHistograms
		}
		if buckets[fam] == nil {
			buckets[fam] = make(map[string]map[float64]float64)
		}
		if buckets[fam][key] == nil {
			buckets[fam][key] = make(map[float64]float64)
		}
		buckets[fam][key][ub] = value
	case fam + "_count":
		if counts[fam] == nil {
			counts[fam] = make(map[string]float64)
		}
		counts[fam][key] = value
	}
}

func lintHistograms(buckets map[string]map[string]map[float64]float64, counts map[string]map[string]float64) error {
	for fam, series := range buckets {
		for key, bs := range series {
			ubs := make([]float64, 0, len(bs))
			hasInf := false
			for ub := range bs {
				if math.IsNaN(ub) {
					return fmt.Errorf("histogram %s{%s}: _bucket without a parseable le label", fam, key)
				}
				if math.IsInf(ub, 1) {
					hasInf = true
				}
				ubs = append(ubs, ub)
			}
			if !hasInf {
				return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", fam, key)
			}
			sort.Float64s(ubs)
			prev := 0.0
			for _, ub := range ubs {
				if bs[ub] < prev {
					return fmt.Errorf("histogram %s{%s}: bucket counts decrease at le=%g", fam, key, ub)
				}
				prev = bs[ub]
			}
			if c, ok := counts[fam][key]; ok && c != bs[math.Inf(1)] {
				return fmt.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g", fam, key, c, bs[math.Inf(1)])
			}
		}
	}
	return nil
}
