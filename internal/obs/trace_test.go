package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.End()
	s.Set("k", 1)
	s.Add("n", 2)
	if c := s.StartChild("c"); c != nil {
		t.Fatal("nil span produced a child")
	}
	if s.Name() != "" || s.Trace() != nil {
		t.Fatal("nil span leaked state")
	}
	var tr *Trace
	tr.Finish()
	if tr.Root() != nil || tr.Duration() != 0 {
		t.Fatal("nil trace leaked state")
	}
	if v := tr.View(); len(v.Spans) != 0 {
		t.Fatal("nil trace rendered spans")
	}
}

func TestUntracedContextCostsNothing(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatal("untraced context produced a span")
	}
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan allocated a new context")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("phantom span in fresh context")
	}
}

func TestSpanTreeAndView(t *testing.T) {
	tr := NewTrace("query")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	ctx, outer := StartSpan(ctx, "scatter")
	outer.Set("round", int64(1))
	outer.Add("retries", 1)
	outer.Add("retries", 2)
	_, inner := StartSpan(ctx, "worker")
	inner.Set("addr", "w1")
	inner.End()
	outer.End()
	tr.Finish()
	tr.Finish() // idempotent

	v := tr.View()
	if v.TraceID != tr.ID || len(v.Spans) != 3 {
		t.Fatalf("view: id %q spans %d", v.TraceID, len(v.Spans))
	}
	root, sc, wk := v.Spans[0], v.Spans[1], v.Spans[2]
	if root.ParentID != 0 || sc.ParentID != root.ID || wk.ParentID != sc.ID {
		t.Fatalf("bad parent chain: %+v", v.Spans)
	}
	if sc.Attrs["round"] != int64(1) || sc.Attrs["retries"] != int64(3) {
		t.Fatalf("scatter attrs: %v", sc.Attrs)
	}
	if wk.Attrs["addr"] != "w1" {
		t.Fatalf("worker attrs: %v", wk.Attrs)
	}
	if _, err := json.Marshal(tr); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if tr.Duration() <= 0 {
		t.Fatal("finished trace has nonpositive duration")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTrace("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := tr.Root().StartChild("attempt")
			sp.Set("n", int64(1))
			sp.End()
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.View().Spans); got != 33 {
		t.Fatalf("spans = %d, want 33", got)
	}
	durs := tr.SpanDurations()
	if len(durs) != 33 {
		t.Fatalf("durations = %d, want 33", len(durs))
	}
	for _, d := range durs {
		if d.D < 0 {
			t.Fatalf("negative duration for %s", d.Name)
		}
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	ids := make([]string, 5)
	for i := range ids {
		tr := NewTrace("q")
		tr.Finish()
		ids[i] = tr.ID
		r.Add(tr)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	// Newest first: ids[4], ids[3], ids[2].
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if snap[i].TraceID != want {
			t.Fatalf("snap[%d] = %s, want %s", i, snap[i].TraceID, want)
		}
	}
	if _, ok := r.Get(ids[0]); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if v, ok := r.Get(ids[4]); !ok || v.TraceID != ids[4] {
		t.Fatal("recent trace not retrievable")
	}
	r.Add(nil) // no-op
}

func TestOpenSpanDurationRunsToNow(t *testing.T) {
	tr := NewTrace("q")
	sp := tr.Root().StartChild("open")
	_ = sp
	time.Sleep(2 * time.Millisecond)
	v := tr.View()
	for _, s := range v.Spans {
		if s.DurationMS <= 0 {
			t.Fatalf("open span %s has nonpositive duration %v", s.Name, s.DurationMS)
		}
	}
	// Unfinished spans are excluded from histogram feeds.
	if n := len(tr.SpanDurations()); n != 0 {
		t.Fatalf("SpanDurations saw %d unfinished spans", n)
	}
}
