package obs

import "sync"

// A Ring holds the N most recent finished traces for /debug/traces.
// Insertion overwrites the oldest entry; Snapshot returns newest-first.
// Entries are TraceViews (immutable snapshots), so holding one costs a
// few KB and never pins a live query's state.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceView
	next int
	n    int
}

// NewRing returns a ring holding up to capacity traces (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]TraceView, capacity)}
}

// Add snapshots tr into the ring, evicting the oldest entry when full.
func (r *Ring) Add(tr *Trace) {
	if tr == nil {
		return
	}
	v := tr.View()
	r.mu.Lock()
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the held traces, newest first.
func (r *Ring) Snapshot() []TraceView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceView, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)*2) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Get returns the trace with the given ID, newest first on duplicate
// IDs (which random 64-bit IDs make vanishingly unlikely).
func (r *Ring) Get(id string) (TraceView, bool) {
	for _, v := range r.Snapshot() {
		if v.TraceID == id {
			return v, true
		}
	}
	return TraceView{}, false
}
