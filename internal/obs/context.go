package obs

import "context"

type spanKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span. A nil sp
// returns ctx unchanged, so disabled tracing costs nothing downstream.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span, or nil when the request is
// untraced. All Span methods are nil-safe, so callers use the result
// unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan opens a child of the context's current span and returns a
// derived context carrying it. When the context is untraced it returns
// (ctx, nil) without allocating: the single context lookup is the whole
// cost of disabled tracing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.StartChild(name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}
