package mcl

import (
	"math"
	"testing"

	"ucgraph/internal/graph"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// cliquePair builds two p-cliques of the given size joined by a weak edge.
func cliquePair(t *testing.T, size int, pIn, pBridge float64) *graph.Uncertain {
	t.Helper()
	var edges []graph.Edge
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, graph.Edge{U: int32(base + i), V: int32(base + j), P: pIn})
			}
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: int32(size), P: pBridge})
	return mustGraph(t, 2*size, edges)
}

func TestMatrixBasics(t *testing.T) {
	m := newMatrix(3)
	m.cols[0] = []entry{{row: 0, val: 2}, {row: 1, val: 2}}
	m.cols[1] = []entry{{row: 1, val: 5}}
	m.cols[2] = []entry{{row: 0, val: 1}, {row: 2, val: 3}}
	if m.nnz() != 5 {
		t.Fatalf("nnz = %d, want 5", m.nnz())
	}
	if m.at(1, 0) != 2 || m.at(2, 0) != 0 || m.at(2, 2) != 3 {
		t.Fatal("at() returned wrong values")
	}
	m.normalize()
	for j := int32(0); j < 3; j++ {
		s := 0.0
		for _, e := range m.cols[j] {
			s += e.val
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("column %d sums to %v after normalize", j, s)
		}
	}
}

func TestSquareColumnMatchesDense(t *testing.T) {
	// Compare sparse M*M column against a dense reference on a small
	// random-ish matrix.
	const n = 6
	m := newMatrix(n)
	dense := [n][n]float64{}
	vals := []float64{0.3, 0.7, 0.1, 0.9, 0.5, 0.2, 0.4, 0.8}
	vi := 0
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if (i*7+j*3)%4 == 0 {
				v := vals[vi%len(vals)]
				vi++
				dense[i][j] = v
				m.cols[j] = append(m.cols[j], entry{row: int32(i), val: v})
			}
		}
	}
	var want [n][n]float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				want[i][j] += dense[i][k] * dense[k][j]
			}
		}
	}
	acc := make([]float64, n)
	touched := make([]int32, 0, n)
	for j := int32(0); j < n; j++ {
		col := m.squareColumn(j, acc, touched, nil)
		got := [n]float64{}
		for _, e := range col {
			got[e.row] = e.val
		}
		for i := 0; i < n; i++ {
			if math.Abs(got[i]-want[i][j]) > 1e-12 {
				t.Fatalf("M^2[%d][%d] = %v, want %v", i, j, got[i], want[i][j])
			}
		}
		// Rows must be sorted.
		for x := 1; x < len(col); x++ {
			if col[x].row <= col[x-1].row {
				t.Fatal("squareColumn output not row-sorted")
			}
		}
	}
}

func TestInflateColumn(t *testing.T) {
	col := []entry{{row: 0, val: 0.5}, {row: 1, val: 0.25}, {row: 2, val: 0.25}}
	out := inflateColumn(col, 2, 0)
	// Squares: 0.25, 0.0625, 0.0625; normalized: 2/3, 1/6, 1/6.
	if math.Abs(out[0].val-2.0/3) > 1e-12 || math.Abs(out[1].val-1.0/6) > 1e-12 {
		t.Fatalf("inflation wrong: %v", out)
	}
	// Inflation must keep the column stochastic.
	s := 0.0
	for _, e := range out {
		s += e.val
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("inflated column sums to %v", s)
	}
}

func TestInflateColumnPrunesButKeepsMax(t *testing.T) {
	col := []entry{{row: 0, val: 0.999}, {row: 1, val: 0.001}}
	out := inflateColumn(col, 2, 1e-3)
	if len(out) != 1 || out[0].row != 0 {
		t.Fatalf("pruning kept %v", out)
	}
	if math.Abs(out[0].val-1) > 1e-12 {
		t.Fatalf("pruned column not renormalized: %v", out[0].val)
	}
	// A uniform tiny column keeps its max even below the floor.
	col2 := []entry{{row: 3, val: 1e-9}}
	out2 := inflateColumn(col2, 2, 1e-3)
	if len(out2) != 1 {
		t.Fatal("recovery rule dropped the max entry")
	}
}

func TestTruncateColumn(t *testing.T) {
	col := []entry{
		{row: 0, val: 0.1}, {row: 1, val: 0.4}, {row: 2, val: 0.05},
		{row: 3, val: 0.3}, {row: 4, val: 0.15},
	}
	out := truncateColumn(col, 2)
	if len(out) != 2 {
		t.Fatalf("kept %d entries, want 2", len(out))
	}
	if out[0].row != 1 || out[1].row != 3 {
		t.Fatalf("kept wrong rows: %v", out)
	}
	s := out[0].val + out[1].val
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("truncated column sums to %v", s)
	}
	// Ratio preserved: 0.4/0.3.
	if math.Abs(out[0].val/out[1].val-0.4/0.3) > 1e-9 {
		t.Fatalf("truncation distorted ratios: %v", out)
	}
}

func TestTruncateColumnTies(t *testing.T) {
	col := []entry{{row: 0, val: 0.25}, {row: 1, val: 0.25}, {row: 2, val: 0.25}, {row: 3, val: 0.25}}
	out := truncateColumn(col, 2)
	if len(out) != 2 {
		t.Fatalf("tie handling kept %d entries, want 2", len(out))
	}
}

func TestTruncateColumnNoop(t *testing.T) {
	col := []entry{{row: 0, val: 0.5}, {row: 1, val: 0.5}}
	if got := truncateColumn(col, 5); len(got) != 2 {
		t.Fatal("truncate below nnz must be a no-op")
	}
	if got := truncateColumn(col, -1); len(got) != 2 {
		t.Fatal("negative maxNNZ must disable truncation")
	}
}

func TestMCLSeparatesCliquePair(t *testing.T) {
	g := cliquePair(t, 5, 0.9, 0.05)
	res := Cluster(g, Options{})
	if !res.Converged {
		t.Fatalf("MCL did not converge in %d iterations (chaos %v)", res.Iterations, res.Chaos)
	}
	cl := res.Clustering
	if cl.K() != 2 {
		t.Fatalf("K = %d, want 2 clusters for a weakly-bridged clique pair", cl.K())
	}
	for u := 1; u < 5; u++ {
		if cl.Assign[u] != cl.Assign[0] {
			t.Fatalf("clique A split at node %d", u)
		}
	}
	for u := 6; u < 10; u++ {
		if cl.Assign[u] != cl.Assign[5] {
			t.Fatalf("clique B split at node %d", u)
		}
	}
	if cl.Assign[0] == cl.Assign[5] {
		t.Fatal("cliques merged")
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestMCLDisjointCliques(t *testing.T) {
	// Three disjoint certain triangles must give exactly 3 clusters.
	var edges []graph.Edge
	for c := 0; c < 3; c++ {
		b := int32(c * 3)
		edges = append(edges,
			graph.Edge{U: b, V: b + 1, P: 1}, graph.Edge{U: b + 1, V: b + 2, P: 1},
			graph.Edge{U: b, V: b + 2, P: 1})
	}
	g := mustGraph(t, 9, edges)
	res := Cluster(g, Options{})
	if res.Clustering.K() != 3 {
		t.Fatalf("K = %d, want 3", res.Clustering.K())
	}
}

func TestMCLInflationControlsGranularity(t *testing.T) {
	// A ring of weakly linked triangles: higher inflation must give at
	// least as many clusters as lower inflation.
	var edges []graph.Edge
	const blocks = 6
	for c := 0; c < blocks; c++ {
		b := int32(c * 3)
		edges = append(edges,
			graph.Edge{U: b, V: b + 1, P: 0.9}, graph.Edge{U: b + 1, V: b + 2, P: 0.9},
			graph.Edge{U: b, V: b + 2, P: 0.9},
			graph.Edge{U: b + 2, V: (b + 3) % (3 * blocks), P: 0.4})
	}
	g := mustGraph(t, 3*blocks, edges)
	kLow := Cluster(g, Options{Inflation: 1.2}).Clustering.K()
	kHigh := Cluster(g, Options{Inflation: 2.5}).Clustering.K()
	if kHigh < kLow {
		t.Fatalf("inflation 2.5 gave %d clusters < inflation 1.2's %d", kHigh, kLow)
	}
	if kHigh < 2 {
		t.Fatalf("high inflation found only %d clusters on %d blocks", kHigh, blocks)
	}
}

func TestMCLSingleNodeAndTinyGraphs(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1, P: 0.5}})
	res := Cluster(g, Options{})
	cl := res.Clustering
	if cl.N() != 2 {
		t.Fatalf("N = %d", cl.N())
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
	if !cl.IsFull() {
		t.Fatal("MCL must assign every node")
	}
}

func TestMCLIsolatedNodes(t *testing.T) {
	// Node 3 has no edges: it must end up in its own cluster.
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.9}})
	res := Cluster(g, Options{})
	cl := res.Clustering
	if !cl.IsFull() {
		t.Fatal("isolated node unassigned")
	}
	own := cl.Assign[3]
	for u := 0; u < 3; u++ {
		if cl.Assign[u] == own {
			t.Fatal("isolated node clustered with the path")
		}
	}
}

func TestMCLDeterministic(t *testing.T) {
	g := cliquePair(t, 4, 0.8, 0.2)
	a := Cluster(g, Options{}).Clustering
	b := Cluster(g, Options{}).Clustering
	for u := range a.Assign {
		if a.Assign[u] != b.Assign[u] {
			t.Fatal("MCL is not deterministic")
		}
	}
}

func TestMCLAttractorCenters(t *testing.T) {
	g := cliquePair(t, 5, 0.9, 0.05)
	cl := Cluster(g, Options{}).Clustering
	// Each center must belong to its own cluster (Validate checks), and
	// centers must be distinct.
	seen := map[graph.NodeID]bool{}
	for _, c := range cl.Centers {
		if seen[c] {
			t.Fatalf("duplicate center %d", c)
		}
		seen[c] = true
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
}
