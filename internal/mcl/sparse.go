package mcl

import (
	"math"
	"sort"
)

// entry is one stored value of a sparse column.
type entry struct {
	row int32
	val float64
}

// matrix is a column-major sparse matrix with n rows and n columns, the
// representation MCL iterates on. Columns keep their entries sorted by row.
type matrix struct {
	n    int
	cols [][]entry
}

func newMatrix(n int) *matrix {
	return &matrix{n: n, cols: make([][]entry, n)}
}

// nnz returns the total number of stored entries.
func (m *matrix) nnz() int {
	t := 0
	for _, c := range m.cols {
		t += len(c)
	}
	return t
}

// at returns the value at (row, col); zero if absent. O(log nnz(col)).
func (m *matrix) at(row, col int32) float64 {
	c := m.cols[col]
	i := sort.Search(len(c), func(i int) bool { return c[i].row >= row })
	if i < len(c) && c[i].row == row {
		return c[i].val
	}
	return 0
}

// normalizeColumn scales column j to sum 1 (a stochastic column). Columns
// with zero mass are left untouched.
func (m *matrix) normalizeColumn(j int32) {
	s := 0.0
	for _, e := range m.cols[j] {
		s += e.val
	}
	if s <= 0 {
		return
	}
	inv := 1 / s
	for i := range m.cols[j] {
		m.cols[j][i].val *= inv
	}
}

// normalize makes every column stochastic.
func (m *matrix) normalize() {
	for j := int32(0); j < int32(m.n); j++ {
		m.normalizeColumn(j)
	}
}

// columnStats returns the maximum entry and the sum of squared entries of
// column j — the ingredients of MCL's chaos measure.
func (m *matrix) columnStats(j int32) (max, sumSq float64) {
	for _, e := range m.cols[j] {
		if e.val > max {
			max = e.val
		}
		sumSq += e.val * e.val
	}
	return max, sumSq
}

// squareColumn computes column j of M*M into out using a dense scratch
// accumulator acc (len n, zeroed on entry and re-zeroed before return) and
// a touched-rows list. The result is sorted by row.
func (m *matrix) squareColumn(j int32, acc []float64, touched []int32, out []entry) []entry {
	touched = touched[:0]
	for _, e := range m.cols[j] {
		w := e.val
		for _, f := range m.cols[e.row] {
			if acc[f.row] == 0 {
				touched = append(touched, f.row)
			}
			acc[f.row] += w * f.val
		}
	}
	sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
	out = out[:0]
	for _, r := range touched {
		out = append(out, entry{row: r, val: acc[r]})
		acc[r] = 0
	}
	return out
}

// inflateColumn raises every entry of col to the given power and
// renormalizes; entries below floor after inflation are dropped, except
// that the maximum entry always survives (MCL's recovery rule, which keeps
// a column from vanishing entirely).
func inflateColumn(col []entry, power, floor float64) []entry {
	if len(col) == 0 {
		return col
	}
	sum := 0.0
	maxIdx, maxVal := 0, -1.0
	for i := range col {
		v := pow(col[i].val, power)
		col[i].val = v
		sum += v
		if v > maxVal {
			maxVal, maxIdx = v, i
		}
	}
	if sum <= 0 {
		return col[:0]
	}
	inv := 1 / sum
	out := col[:0]
	for i := range col {
		v := col[i].val * inv
		if v >= floor || i == maxIdx {
			out = append(out, entry{row: col[i].row, val: v})
		}
	}
	// Renormalize after pruning so the column stays stochastic.
	s := 0.0
	for _, e := range out {
		s += e.val
	}
	if s > 0 {
		inv = 1 / s
		for i := range out {
			out[i].val *= inv
		}
	}
	return out
}

// truncateColumn keeps only the maxNNZ largest entries of col (by value,
// ties broken by position), then renormalizes. Row-sorted order is
// preserved.
func truncateColumn(col []entry, maxNNZ int) []entry {
	if maxNNZ <= 0 || len(col) <= maxNNZ {
		return col
	}
	vals := make([]float64, len(col))
	for i, e := range col {
		vals[i] = e.val
	}
	sort.Float64s(vals)
	cut := vals[len(vals)-maxNNZ]
	above := 0
	for _, e := range col {
		if e.val > cut {
			above++
		}
	}
	tiesAllowed := maxNNZ - above
	out := col[:0]
	for _, e := range col {
		switch {
		case e.val > cut:
			out = append(out, e)
		case e.val == cut && tiesAllowed > 0:
			out = append(out, e)
			tiesAllowed--
		}
	}
	s := 0.0
	for _, e := range out {
		s += e.val
	}
	if s > 0 {
		inv := 1 / s
		for i := range out {
			out[i].val *= inv
		}
	}
	return out
}

// pow is a positive-base power with a fast path for the common MCL
// inflation value 2.0.
func pow(x, p float64) float64 {
	if p == 2 {
		return x * x
	}
	return math.Pow(x, p)
}
