// Package mcl implements the Markov Cluster Algorithm of van Dongen,
// "Graph clustering via a discrete uncoupling process" (SIMAX 2008) — the
// main competitor in the paper's experimental evaluation (Section 5).
//
// MCL interprets edge weights (here: edge probabilities) as similarity
// scores, builds the column-stochastic random-walk matrix of the graph,
// and alternates two operations until the process converges to a
// (near-)idempotent matrix:
//
//   - expansion: M <- M * M, spreading flow along walks;
//   - inflation: entrywise power r followed by column renormalization,
//     strengthening strong flows and weakening weak ones.
//
// Converged columns concentrate their mass on a few attractor rows; the
// clusters are the weakly connected components of the converged support.
// The inflation parameter r indirectly controls cluster granularity (the
// paper's Section 5 sweeps it to obtain target cluster counts), but there
// is no fixed relation between r and the number of clusters — the
// motivation for the paper's fully parametric algorithms.
package mcl

import (
	"runtime"
	"sync"

	"ucgraph/internal/core"
	"ucgraph/internal/graph"
)

// Options configures an MCL run. Zero fields take the documented defaults.
type Options struct {
	// Inflation is the entrywise power r (default 2.0). Larger values give
	// finer clusterings.
	Inflation float64
	// LoopWeight is the self-loop weight added to every node before
	// normalization (default 1.0), as in the mcl reference implementation.
	LoopWeight float64
	// PruneThreshold drops entries below it after each inflation
	// (default 1e-5), bounding the matrix density.
	PruneThreshold float64
	// MaxNNZPerColumn truncates columns to their largest entries after
	// pruning (default 256; negative disables), mirroring mcl's -S/-R
	// scheme.
	MaxNNZPerColumn int
	// MaxIterations bounds the expansion/inflation loop (default 128).
	MaxIterations int
	// ConvergenceChaos stops the loop once the chaos measure — the maximum
	// over columns of (max entry - sum of squared entries) — falls below it
	// (default 1e-4).
	ConvergenceChaos float64
}

func (o Options) withDefaults() Options {
	if o.Inflation <= 0 {
		o.Inflation = 2.0
	}
	if o.LoopWeight <= 0 {
		o.LoopWeight = 1.0
	}
	if o.PruneThreshold <= 0 {
		o.PruneThreshold = 1e-5
	}
	if o.MaxNNZPerColumn == 0 {
		o.MaxNNZPerColumn = 256
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 128
	}
	if o.ConvergenceChaos <= 0 {
		o.ConvergenceChaos = 1e-4
	}
	return o
}

// Result is the outcome of an MCL run.
type Result struct {
	// Clustering assigns every node to a cluster; centers are the
	// attractor nodes (the node with the largest converged self-flow in
	// each cluster), matching footnote 2 of the paper.
	Clustering *core.Clustering
	// Iterations is the number of expansion/inflation rounds executed.
	Iterations int
	// Chaos is the final value of the convergence measure.
	Chaos float64
	// Converged reports whether Chaos dropped below the threshold before
	// MaxIterations.
	Converged bool
}

// Cluster runs MCL on g, using edge probabilities as similarity weights.
func Cluster(g *graph.Uncertain, opt Options) *Result {
	opt = opt.withDefaults()
	n := g.NumNodes()

	// Build the initial matrix: adjacency weights + self loops, column
	// stochastic.
	m := newMatrix(n)
	for j := int32(0); j < int32(n); j++ {
		nodes, _, probs := g.NeighborSlices(j)
		col := make([]entry, 0, len(nodes)+1)
		inserted := false
		for i, v := range nodes {
			if !inserted && v > j {
				col = append(col, entry{row: j, val: opt.LoopWeight})
				inserted = true
			}
			col = append(col, entry{row: v, val: probs[i]})
		}
		if !inserted {
			col = append(col, entry{row: j, val: opt.LoopWeight})
		}
		m.cols[j] = col
	}
	m.normalize()

	res := &Result{}
	workers := runtime.GOMAXPROCS(0)
	for iter := 0; iter < opt.MaxIterations; iter++ {
		res.Iterations = iter + 1
		next := newMatrix(n)
		chaosCh := make(chan float64, workers)
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				chaosCh <- 0
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				acc := make([]float64, n)
				touched := make([]int32, 0, 1024)
				scratch := make([]entry, 0, 1024)
				localChaos := 0.0
				for j := lo; j < hi; j++ {
					scratch = m.squareColumn(int32(j), acc, touched, scratch)
					col := make([]entry, len(scratch))
					copy(col, scratch)
					col = inflateColumn(col, opt.Inflation, opt.PruneThreshold)
					col = truncateColumn(col, opt.MaxNNZPerColumn)
					next.cols[j] = col
					max, sumSq := 0.0, 0.0
					for _, e := range col {
						if e.val > max {
							max = e.val
						}
						sumSq += e.val * e.val
					}
					if c := max - sumSq; c > localChaos {
						localChaos = c
					}
				}
				chaosCh <- localChaos
			}(lo, hi)
		}
		wg.Wait()
		close(chaosCh)
		chaos := 0.0
		for c := range chaosCh {
			if c > chaos {
				chaos = c
			}
		}
		m = next
		res.Chaos = chaos
		if chaos < opt.ConvergenceChaos {
			res.Converged = true
			break
		}
	}

	res.Clustering = interpret(m, n)
	return res
}

// interpret extracts clusters from the converged matrix: weakly connected
// components of the support, with the node of largest self-flow in each
// component as its attractor/center.
func interpret(m *matrix, n int) *core.Clustering {
	uf := graph.NewUnionFind(n)
	for j := int32(0); j < int32(n); j++ {
		for _, e := range m.cols[j] {
			uf.Union(j, e.row)
		}
	}
	labels := make([]int32, n)
	uf.Labels(labels)

	// Map component representatives to dense cluster indices, picking the
	// attractor (max diagonal value; ties to the smaller node) per cluster.
	clusterOf := make(map[int32]int32)
	var centers []graph.NodeID
	bestDiag := make([]float64, 0)
	for u := int32(0); u < int32(n); u++ {
		rep := labels[u]
		idx, ok := clusterOf[rep]
		diag := m.at(u, u)
		if !ok {
			idx = int32(len(centers))
			clusterOf[rep] = idx
			centers = append(centers, u)
			bestDiag = append(bestDiag, diag)
			continue
		}
		if diag > bestDiag[idx] {
			bestDiag[idx] = diag
			centers[idx] = u
		}
	}

	assign := make([]int32, n)
	prob := make([]float64, n)
	for u := int32(0); u < int32(n); u++ {
		assign[u] = clusterOf[labels[u]]
	}
	for i, c := range centers {
		assign[c] = int32(i)
		prob[c] = 1
	}
	return &core.Clustering{Centers: centers, Assign: assign, Prob: prob}
}
