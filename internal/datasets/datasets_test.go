package datasets

import (
	"math"
	"testing"

	"ucgraph/internal/graph"
)

// statsOK checks a dataset's size against targets with a tolerance.
func statsOK(t *testing.T, ds *Dataset, wantNodes, wantEdges int, tol float64) {
	t.Helper()
	n, m := ds.Graph.NumNodes(), ds.Graph.NumEdges()
	if math.Abs(float64(n-wantNodes)) > tol*float64(wantNodes) {
		t.Fatalf("%s: %d nodes, want ~%d", ds.Name, n, wantNodes)
	}
	if math.Abs(float64(m-wantEdges)) > tol*float64(wantEdges) {
		t.Fatalf("%s: %d edges, want ~%d", ds.Name, m, wantEdges)
	}
}

// probHistogram buckets the edge probabilities of a graph.
func probHistogram(g *graph.Uncertain) (low, mid, high float64) {
	var l, m, h int
	for _, e := range g.Edges() {
		switch {
		case e.P < 0.4:
			l++
		case e.P < 0.9:
			m++
		default:
			h++
		}
	}
	tot := float64(g.NumEdges())
	return float64(l) / tot, float64(m) / tot, float64(h) / tot
}

func TestCollinsStats(t *testing.T) {
	ds, err := Collins(1)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: 1004 nodes, 8323 edges (tolerance 6%: the LCC restriction
	// and random fill make exact counts seed-dependent).
	statsOK(t, ds, 1004, 8323, 0.06)
	// Mostly high-probability edges: most of the mass above 0.75.
	var above75 int
	var sum float64
	for _, e := range ds.Graph.Edges() {
		if e.P >= 0.75 {
			above75++
		}
		sum += e.P
	}
	tot := float64(ds.Graph.NumEdges())
	if f := float64(above75) / tot; f < 0.6 {
		t.Fatalf("collins: only %.2f of edges have p >= 0.75 (want high-probability profile)", f)
	}
	if mean := sum / tot; mean < 0.75 {
		t.Fatalf("collins: mean edge probability %.2f, want >= 0.75", mean)
	}
	low, _, _ := probHistogram(ds.Graph)
	if low > 0.15 {
		t.Fatalf("collins: %.2f of edges below 0.4 (too many low-probability edges)", low)
	}
	if len(ds.Complexes) < 20 {
		t.Fatalf("collins: only %d complexes planted", len(ds.Complexes))
	}
}

func TestGavinStats(t *testing.T) {
	ds, err := Gavin(1)
	if err != nil {
		t.Fatal(err)
	}
	statsOK(t, ds, 1727, 7534, 0.06)
	low, _, _ := probHistogram(ds.Graph)
	if low < 0.5 {
		t.Fatalf("gavin: only %.2f of edges below 0.4 (want low-probability profile)", low)
	}
}

func TestKroganStats(t *testing.T) {
	ds, err := Krogan(1)
	if err != nil {
		t.Fatal(err)
	}
	statsOK(t, ds, 2559, 7031, 0.06)
	// ~25% of edges above 0.9, rest spread over [0.27, 0.9].
	var above, below, tiny int
	for _, e := range ds.Graph.Edges() {
		switch {
		case e.P > 0.9:
			above++
		case e.P >= 0.27:
			below++
		default:
			tiny++
		}
	}
	tot := float64(ds.Graph.NumEdges())
	if f := float64(above) / tot; f < 0.15 || f > 0.40 {
		t.Fatalf("krogan: %.2f of edges above 0.9, want ~0.25", f)
	}
	if f := float64(tiny) / tot; f > 0.05 {
		t.Fatalf("krogan: %.2f of edges below 0.27, want ~0", f)
	}
	if len(ds.Curated) == 0 {
		t.Fatal("krogan: no curated (MIPS-like) complexes")
	}
	if len(ds.Curated) >= len(ds.Complexes) {
		t.Fatalf("krogan: curated subset (%d) not smaller than complexes (%d)",
			len(ds.Curated), len(ds.Complexes))
	}
}

func TestKroganCuratedPairsScale(t *testing.T) {
	// The MIPS ground truth used in the paper has 3874 pairs; our curated
	// subset should be in the same order of magnitude (10^3-10^4).
	ds, err := Krogan(1)
	if err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for _, cx := range ds.Curated {
		pairs += len(cx) * (len(cx) - 1) / 2
	}
	if pairs < 500 || pairs > 20000 {
		t.Fatalf("curated ground truth has %d pairs, want O(10^3)", pairs)
	}
}

func TestComplexesAreValid(t *testing.T) {
	for _, gen := range []func(uint64) (*Dataset, error){Collins, Gavin, Krogan} {
		ds, err := gen(3)
		if err != nil {
			t.Fatal(err)
		}
		n := ds.Graph.NumNodes()
		for ci, cx := range ds.Complexes {
			if len(cx) < 2 {
				t.Fatalf("%s: complex %d has %d members", ds.Name, ci, len(cx))
			}
			seen := map[graph.NodeID]bool{}
			for _, u := range cx {
				if int(u) < 0 || int(u) >= n {
					t.Fatalf("%s: complex %d references node %d outside graph", ds.Name, ci, u)
				}
				if seen[u] {
					t.Fatalf("%s: complex %d repeats node %d", ds.Name, ci, u)
				}
				seen[u] = true
			}
		}
	}
}

func TestComplexesAreInternallyDense(t *testing.T) {
	// Planted complexes must be much denser than the background: the mean
	// intra-complex edge density should far exceed the global density.
	ds, err := Krogan(5)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	var intraEdges, intraPairs int
	for _, cx := range ds.Complexes {
		for i := 0; i < len(cx); i++ {
			for j := i + 1; j < len(cx); j++ {
				intraPairs++
				if _, ok := g.HasEdge(cx[i], cx[j]); ok {
					intraEdges++
				}
			}
		}
	}
	intraDens := float64(intraEdges) / float64(intraPairs)
	n := float64(g.NumNodes())
	globalDens := float64(g.NumEdges()) / (n * (n - 1) / 2)
	if intraDens < 20*globalDens {
		t.Fatalf("intra-complex density %.4f not >> global density %.6f", intraDens, globalDens)
	}
}

func TestDatasetsAreConnected(t *testing.T) {
	for _, gen := range []func(uint64) (*Dataset, error){Collins, Gavin, Krogan} {
		ds, err := gen(7)
		if err != nil {
			t.Fatal(err)
		}
		if _, count := ds.Graph.Components(); count != 1 {
			t.Fatalf("%s: LCC-restricted graph has %d components", ds.Name, count)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, err := Krogan(11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Krogan(11)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs between same-seed runs", i)
		}
	}
	if len(a.Curated) != len(b.Curated) {
		t.Fatal("curated subsets differ between same-seed runs")
	}
}

func TestGeneratorsSeedSensitive(t *testing.T) {
	a, err := Collins(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collins(2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	limit := len(ea)
	if len(eb) < limit {
		limit = len(eb)
	}
	for i := 0; i < limit; i++ {
		if ea[i] == eb[i] {
			same++
		}
	}
	if same == limit {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestDBLPSmall(t *testing.T) {
	ds, err := DBLP(DBLPConfig{Authors: 2000, PapersPerAuthor: 1.45, CommunitySize: 40, CrossCommunity: 0.12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, m := ds.Graph.NumNodes(), ds.Graph.NumEdges()
	if n < 1000 {
		t.Fatalf("DBLP LCC too small: %d nodes", n)
	}
	// Edge/node ratio should be in the ballpark of the real DBLP (~3.7).
	ratio := float64(m) / float64(n)
	if ratio < 1.5 || ratio > 7 {
		t.Fatalf("DBLP edges/nodes = %.2f, want ~2-5", ratio)
	}
	if _, count := ds.Graph.Components(); count != 1 {
		t.Fatalf("DBLP LCC has %d components", count)
	}
}

func TestDBLPProbabilityMass(t *testing.T) {
	// ~80% of edges at p = 0.39 (single collaboration), ~12% at 0.63,
	// the rest higher.
	ds, err := DBLP(DBLPConfig{Authors: 3000, PapersPerAuthor: 1.45, CommunitySize: 40, CrossCommunity: 0.12}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var one, two, more int
	for _, e := range ds.Graph.Edges() {
		switch {
		case math.Abs(e.P-0.39346934) < 1e-6:
			one++
		case math.Abs(e.P-0.63212055) < 1e-6:
			two++
		default:
			more++
		}
	}
	tot := float64(ds.Graph.NumEdges())
	if f := float64(one) / tot; f < 0.6 || f > 0.95 {
		t.Fatalf("DBLP: %.2f of edges from single collaborations, want ~0.8", f)
	}
	if f := float64(more) / tot; f > 0.25 {
		t.Fatalf("DBLP: %.2f of edges with 3+ collaborations, want ~0.08", f)
	}
}

func TestDBLPRejectsTinyConfigs(t *testing.T) {
	if _, err := DBLP(DBLPConfig{Authors: 5}, 1); err == nil {
		t.Fatal("DBLP accepted a 5-author config")
	}
}

func TestDBLPZeroConfigUsesDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("default DBLP config is ~25k nodes")
	}
	ds, err := DBLP(DBLPConfig{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.NumNodes() < 15000 {
		t.Fatalf("default DBLP too small: %d nodes", ds.Graph.NumNodes())
	}
}
