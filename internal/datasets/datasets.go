// Package datasets synthesizes uncertain graphs that stand in for the four
// evaluation datasets of the paper (Table 1) and for the MIPS
// protein-complex ground truth of Section 5.2. The real files are not
// redistributable/available offline, so each generator reproduces the
// published structural statistics instead:
//
//   - Collins: 1004 nodes / 8323 edges (LCC), mostly high-probability edges;
//   - Gavin: 1727 nodes / 7534 edges, mostly low-probability edges;
//   - Krogan: 2559 nodes / 7031 edges, ~25% of edges with p > 0.9 and the
//     rest roughly uniform on [0.27, 0.9];
//   - DBLP: co-authorship cliques with p = 1 - exp(-x/2) for x co-authored
//     papers (~80% of edges at 0.39, ~12% at 0.63, rest higher), scalable
//     from laptop size to the paper's 636751 nodes / 2366461 edges.
//
// The PPI generators plant protein complexes (dense high-probability
// communities) and return them as ground truth; the Krogan generator also
// exposes a "curated" subset playing the role of the hand-curated MIPS
// database, which covers only part of the network.
//
// All generators are deterministic in their seed.
package datasets

import (
	"fmt"
	"math"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// Dataset is a generated uncertain graph restricted to its largest
// connected component, plus optional ground-truth communities.
type Dataset struct {
	// Name identifies the emulated dataset.
	Name string
	// Graph is the largest connected component, nodes renumbered 0..n-1.
	Graph *graph.Uncertain
	// Complexes are the planted communities that survived the LCC
	// restriction (members with < 2 surviving nodes are dropped); node IDs
	// refer to Graph. Nil for DBLP.
	Complexes [][]graph.NodeID
	// Curated is the MIPS-like curated subset of Complexes (Krogan only).
	Curated [][]graph.NodeID
}

// probFn draws an edge probability.
type probFn func(x *rng.Xoshiro256) float64

// ppiConfig drives the planted-complex PPI generator.
type ppiConfig struct {
	name        string
	nodes       int     // nodes before LCC restriction
	targetEdges int     // total edges before LCC restriction
	complexFrac float64 // fraction of nodes placed into complexes
	sizeMin     int     // complex size range
	sizeMax     int
	intraDens   float64 // probability an intra-complex pair gets an edge
	intraProb   probFn  // probability distribution of intra-complex edges
	interProb   probFn  // probability distribution of the remaining edges
	localBias   float64 // fraction of filler edges kept complex-local
}

// uniform returns a probFn drawing uniformly from [lo, hi].
func uniform(lo, hi float64) probFn {
	return func(x *rng.Xoshiro256) float64 {
		return lo + (hi-lo)*x.Float64()
	}
}

// mixture returns a probFn drawing from a with probability w, else from b.
func mixture(w float64, a, b probFn) probFn {
	return func(x *rng.Xoshiro256) float64 {
		if x.Float64() < w {
			return a(x)
		}
		return b(x)
	}
}

// generatePPI builds a planted-complex uncertain graph per cfg.
func generatePPI(cfg ppiConfig, seed uint64) (*Dataset, error) {
	x := rng.NewXoshiro256(rng.Stream(seed, hashName(cfg.name)))
	n := cfg.nodes
	b := graph.NewBuilder(n)

	// Partition the first complexFrac*n nodes into complexes of random
	// sizes; remaining nodes are background proteins.
	var complexes [][]graph.NodeID
	inComplexes := int(cfg.complexFrac * float64(n))
	next := 0
	for next < inComplexes {
		size := cfg.sizeMin + x.Intn(cfg.sizeMax-cfg.sizeMin+1)
		if next+size > inComplexes {
			size = inComplexes - next
		}
		if size < 2 {
			break
		}
		cx := make([]graph.NodeID, size)
		for i := range cx {
			cx[i] = graph.NodeID(next + i)
		}
		complexes = append(complexes, cx)
		next += size
	}

	// Intra-complex edges: each pair with probability intraDens.
	for _, cx := range complexes {
		for i := 0; i < len(cx); i++ {
			for j := i + 1; j < len(cx); j++ {
				if x.Float64() < cfg.intraDens {
					if err := b.AddEdge(cx[i], cx[j], cfg.intraProb(x)); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Backbone: link the units (complexes + background nodes) in a random
	// tree so that the LCC spans nearly everything, as in the curated PPI
	// networks whose LCC the paper clusters.
	type unit struct{ rep func() graph.NodeID }
	units := make([]unit, 0, len(complexes)+(n-inComplexes))
	for _, cx := range complexes {
		cx := cx
		units = append(units, unit{rep: func() graph.NodeID { return cx[x.Intn(len(cx))] }})
	}
	for u := inComplexes; u < n; u++ {
		u := graph.NodeID(u)
		units = append(units, unit{rep: func() graph.NodeID { return u }})
	}
	for i := 1; i < len(units); i++ {
		j := x.Intn(i)
		for tries := 0; tries < 32; tries++ {
			a, c := units[i].rep(), units[j].rep()
			if a == c {
				continue
			}
			if err := b.AddEdge(a, c, cfg.interProb(x)); err == nil {
				break
			}
		}
	}

	// Filler edges up to the target count: localBias of them between a
	// complex member and a node at most 2 complexes away (noisy
	// co-purification), the rest uniform random.
	guard := 0
	for b.NumEdges() < cfg.targetEdges && guard < 50*cfg.targetEdges {
		guard++
		var u, v graph.NodeID
		if len(complexes) > 0 && x.Float64() < cfg.localBias {
			ci := x.Intn(len(complexes))
			cx := complexes[ci]
			u = cx[x.Intn(len(cx))]
			// Neighbor complex (or same) member.
			cj := ci + x.Intn(3) - 1
			if cj < 0 {
				cj = 0
			}
			if cj >= len(complexes) {
				cj = len(complexes) - 1
			}
			cy := complexes[cj]
			v = cy[x.Intn(len(cy))]
		} else {
			u = graph.NodeID(x.Intn(n))
			v = graph.NodeID(x.Intn(n))
		}
		if u == v {
			continue
		}
		if _, dup := b.HasEdge(u, v); dup {
			continue
		}
		if err := b.AddEdge(u, v, cfg.interProb(x)); err != nil {
			return nil, err
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return restrictToLCC(cfg.name, g, complexes)
}

// restrictToLCC cuts g to its largest connected component and remaps the
// complexes into the new node space, dropping complexes reduced below 2
// members.
func restrictToLCC(name string, g *graph.Uncertain, complexes [][]graph.NodeID) (*Dataset, error) {
	lcc := g.LargestComponent()
	sub, newToOld, err := g.InducedSubgraph(lcc)
	if err != nil {
		return nil, err
	}
	oldToNew := make(map[graph.NodeID]graph.NodeID, len(newToOld))
	for newID, oldID := range newToOld {
		oldToNew[oldID] = graph.NodeID(newID)
	}
	var mapped [][]graph.NodeID
	for _, cx := range complexes {
		var m []graph.NodeID
		for _, u := range cx {
			if nu, ok := oldToNew[u]; ok {
				m = append(m, nu)
			}
		}
		if len(m) >= 2 {
			mapped = append(mapped, m)
		}
	}
	return &Dataset{Name: name, Graph: sub, Complexes: mapped}, nil
}

// hashName derives a per-dataset stream index from its name.
func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Collins emulates the Collins et al. PPI network: 1004 nodes, 8323 edges
// in the LCC, predominantly high-probability edges.
func Collins(seed uint64) (*Dataset, error) {
	return generatePPI(ppiConfig{
		name:        "collins",
		nodes:       1010,
		targetEdges: 8360,
		complexFrac: 0.85,
		sizeMin:     4,
		sizeMax:     28,
		intraDens:   0.75,
		intraProb:   mixture(0.90, uniform(0.85, 0.999), uniform(0.50, 0.85)),
		interProb:   mixture(0.70, uniform(0.75, 0.98), uniform(0.30, 0.75)),
		localBias:   0.75,
	}, seed)
}

// Gavin emulates the Gavin et al. PPI network: 1727 nodes, 7534 edges,
// predominantly low-probability edges.
func Gavin(seed uint64) (*Dataset, error) {
	return generatePPI(ppiConfig{
		name:        "gavin",
		nodes:       1760,
		targetEdges: 7600,
		complexFrac: 0.75,
		sizeMin:     3,
		sizeMax:     18,
		intraDens:   0.55,
		intraProb:   mixture(0.75, uniform(0.08, 0.40), uniform(0.40, 0.85)),
		interProb:   mixture(0.85, uniform(0.05, 0.30), uniform(0.30, 0.60)),
		localBias:   0.70,
	}, seed)
}

// Krogan emulates the Krogan et al. CORE network: 2559 nodes, 7031 edges,
// about a quarter of the edges with p > 0.9 and the rest roughly uniform
// on [0.27, 0.9]. The returned dataset also carries a MIPS-like curated
// ground truth: a random ~40% subset of the planted complexes.
func Krogan(seed uint64) (*Dataset, error) {
	ds, err := generatePPI(ppiConfig{
		name:        "krogan",
		nodes:       2610,
		targetEdges: 7100,
		complexFrac: 0.70,
		sizeMin:     3,
		sizeMax:     14,
		intraDens:   0.60,
		intraProb:   mixture(0.40, uniform(0.90, 0.999), uniform(0.27, 0.90)),
		interProb:   mixture(0.12, uniform(0.90, 0.999), uniform(0.27, 0.90)),
		localBias:   0.65,
	}, seed)
	if err != nil {
		return nil, err
	}
	// Curated subset: a deterministic ~40% sample of the complexes.
	x := rng.NewXoshiro256(rng.Stream(seed, hashName("krogan-mips")))
	for _, cx := range ds.Complexes {
		if x.Float64() < 0.40 {
			ds.Curated = append(ds.Curated, cx)
		}
	}
	return ds, nil
}

// DBLPConfig sizes the DBLP co-authorship generator. The zero value is
// replaced by DefaultDBLPConfig.
type DBLPConfig struct {
	// Authors is the number of author nodes before LCC restriction.
	Authors int
	// PapersPerAuthor scales how many co-authored papers are generated
	// (papers = Authors * PapersPerAuthor).
	PapersPerAuthor float64
	// CommunitySize is the mean size of research communities.
	CommunitySize int
	// CrossCommunity is the probability a paper draws its authors from two
	// communities.
	CrossCommunity float64
}

// DefaultDBLPConfig is a laptop-scale instance (~25k authors) with the
// paper's probability mix. Scale Authors up to 636751 to match the paper's
// instance exactly.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		Authors:         25000,
		PapersPerAuthor: 1.45,
		CommunitySize:   55,
		CrossCommunity:  0.12,
	}
}

// DBLP emulates the paper's DBLP co-authorship uncertain graph. Authors are
// grouped into communities; papers pick 2-5 authors, usually from one
// community; each co-authored pair accumulates a collaboration count x and
// gets edge probability p = 1 - exp(-x/2) as in Section 5 (0.39 for one
// collaboration, 0.63 for two, 0.91 for five).
func DBLP(cfg DBLPConfig, seed uint64) (*Dataset, error) {
	if cfg.Authors == 0 {
		cfg = DefaultDBLPConfig()
	}
	if cfg.Authors < 10 {
		return nil, fmt.Errorf("datasets: DBLP needs at least 10 authors, got %d", cfg.Authors)
	}
	if cfg.PapersPerAuthor <= 0 {
		cfg.PapersPerAuthor = 1.45
	}
	if cfg.CommunitySize < 4 {
		cfg.CommunitySize = 55
	}
	x := rng.NewXoshiro256(rng.Stream(seed, hashName("dblp")))
	n := cfg.Authors

	// Communities: contiguous ID ranges with jittered sizes.
	type span struct{ lo, hi int }
	var comms []span
	for lo := 0; lo < n; {
		size := cfg.CommunitySize/2 + x.Intn(cfg.CommunitySize)
		hi := lo + size
		if hi > n {
			hi = n
		}
		comms = append(comms, span{lo, hi})
		lo = hi
	}

	pick := func(s span) graph.NodeID {
		return graph.NodeID(s.lo + x.Intn(s.hi-s.lo))
	}

	// Papers: accumulate collaboration counts per author pair.
	collab := make(map[uint64]int32)
	key := func(u, v graph.NodeID) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(uint32(u))<<32 | uint64(uint32(v))
	}
	papers := int(float64(n) * cfg.PapersPerAuthor)
	authors := make([]graph.NodeID, 0, 5)
	for i := 0; i < papers; i++ {
		c1 := comms[x.Intn(len(comms))]
		c2 := c1
		if x.Float64() < cfg.CrossCommunity && len(comms) > 1 {
			c2 = comms[x.Intn(len(comms))]
		}
		// 2-5 authors, skewed small like real papers.
		na := 2
		switch r := x.Float64(); {
		case r < 0.45:
			na = 2
		case r < 0.75:
			na = 3
		case r < 0.92:
			na = 4
		default:
			na = 5
		}
		pool := c1.hi - c1.lo
		if c2 != c1 {
			pool += c2.hi - c2.lo
		}
		if na > pool {
			na = pool
		}
		if na < 2 {
			continue
		}
		authors = authors[:0]
		for tries := 0; len(authors) < na && tries < 64; tries++ {
			src := c1
			if len(authors) > 0 && x.Float64() < 0.5 {
				src = c2
			}
			a := pick(src)
			dup := false
			for _, b := range authors {
				if b == a {
					dup = true
					break
				}
			}
			if !dup {
				authors = append(authors, a)
			}
		}
		for ai := 0; ai < len(authors); ai++ {
			for aj := ai + 1; aj < len(authors); aj++ {
				collab[key(authors[ai], authors[aj])]++
			}
		}
	}

	b := graph.NewBuilder(n)
	for k, cnt := range collab {
		u := graph.NodeID(k >> 32)
		v := graph.NodeID(k & 0xffffffff)
		p := 1 - math.Exp(-float64(cnt)/2)
		if err := b.AddEdge(u, v, p); err != nil {
			return nil, err
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return restrictToLCC("dblp", g, nil)
}
