package core

// Benchmarks recorded in BENCH_core.json (see `make bench-core`): the
// MCP/ACP drivers end to end, and the min-partial candidate-scoring shape
// comparing the batched FromCenters oracle query against the per-center
// FromCenter loop it replaced.

import (
	"runtime"
	"testing"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
	"ucgraph/internal/worldstore"
)

// BenchmarkMCPEndToEnd times a full MCP run (guess schedule + binary
// search) on the 600-node planted-community graph with a fixed seed, so
// runs are comparable across changes.
func BenchmarkMCPEndToEnd(b *testing.B) {
	g := benchGraph(b)
	opt := Options{Seed: 1, Schedule: conn.Schedule{Min: 50, Max: 512, Coef: 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := conn.NewMonteCarlo(g, 1)
		if _, _, err := MCP(oracle, 40, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACPEndToEnd times a full ACP sweep on the same graph.
func BenchmarkACPEndToEnd(b *testing.B) {
	g := benchGraph(b)
	opt := Options{Seed: 1, Schedule: conn.Schedule{Min: 50, Max: 512, Coef: 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := conn.NewMonteCarlo(g, 1)
		if _, _, err := ACP(oracle, 40, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCandidates is the candidate batch the scoring benchmarks query:
// alpha=64 spread across the communities, the shape min-partial produces
// with a large candidate set.
func benchCandidates(g *graph.Uncertain) []graph.NodeID {
	cs := make([]graph.NodeID, 64)
	for i := range cs {
		cs[i] = graph.NodeID((i * g.NumNodes()) / len(cs))
	}
	return cs
}

// BenchmarkFromCentersBatched scores 64 candidate centers with ONE batched
// oracle query: all centers answered in one pass over each world block.
// Each iteration uses a fresh estimator (empty tally cache) over the
// shared, already-materialized world store, so the timer sees pure tally
// accumulation — the min-partial candidate-scoring hot path.
func BenchmarkFromCentersBatched(b *testing.B) {
	g := benchGraph(b)
	cs := benchCandidates(g)
	const r = 512
	// Keep the shared store referenced for the whole benchmark: the
	// registry only holds it weakly, so without this a GC between
	// iterations could drop the materialized worlds and put their
	// recomputation back inside the timed loop.
	ws := worldstore.Shared(g, 1)
	conn.NewMonteCarlo(g, 1).FromCenter(0, conn.Unlimited, r) // materialize worlds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := conn.NewMonteCarlo(g, 1)
		oracle.FromCenters(cs, conn.Unlimited, r)
	}
	runtime.KeepAlive(ws)
}

// BenchmarkFromCentersSerialLoop is the pre-batching baseline: the same 64
// candidates scored with one FromCenter query each (one full label scan
// per center per world).
func BenchmarkFromCentersSerialLoop(b *testing.B) {
	g := benchGraph(b)
	cs := benchCandidates(g)
	const r = 512
	ws := worldstore.Shared(g, 1)                             // see BenchmarkFromCentersBatched
	conn.NewMonteCarlo(g, 1).FromCenter(0, conn.Unlimited, r) // materialize worlds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := conn.NewMonteCarlo(g, 1)
		for _, c := range cs {
			oracle.FromCenter(c, conn.Unlimited, r)
		}
	}
	runtime.KeepAlive(ws)
}

// benchDepthGraph builds the graph the depth-limited scoring benchmarks
// run on: 512 nodes with a ring plus nineteen random chords each (average
// degree ~40), mixed probabilities — the dense-neighborhood regime where
// depth-limited scoring is actually expensive. Depth-2 balls cover a large
// fraction of the graph, so a 64-center batch touches each world's edges
// many times over and the candidates' balls overlap heavily — exactly
// what the per-world bitmap (hash each coin once) and the shared
// multi-center frontier (scan each node's adjacency once per layer, not
// once per covering center) amortize.
func benchDepthGraph(b *testing.B) *graph.Uncertain {
	b.Helper()
	x := rng.NewXoshiro256(3)
	const n = 512
	gb := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		_ = gb.AddEdge(int32(i), int32((i+1)%n), 0.3+0.5*x.Float64())
		for c := 0; c < 19; c++ {
			v := int32(x.Intn(n))
			if v != int32(i) {
				_ = gb.AddEdge(int32(i), v, 0.3+0.5*x.Float64())
			}
		}
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// Depth-limited scoring shape: alpha=64 candidates, depth=2, matching the
// min-partial-d (Algorithm 4) selection step. Both benchmarks start from a
// cold estimator AND a cold world store (per-iteration seed), so the
// batched timing includes materializing each world's edge bitmap — the
// full price of the amortization, not just its payoff.

// BenchmarkFromCentersDepth2Batched answers all 64 candidates through ONE
// batched depth-limited query: each world's edge coins are hashed once
// into a bitmap and every center's bounded BFS tests bits.
func BenchmarkFromCentersDepth2Batched(b *testing.B) {
	g := benchDepthGraph(b)
	cs := benchCandidates(g)
	const r = 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := conn.NewMonteCarlo(g, uint64(i+1))
		oracle.FromCenters(cs, 2, r)
	}
}

// BenchmarkFromCentersDepth2SerialLoop is the pre-batching baseline: one
// FromCenter query per candidate, each re-evaluating the hash coin for
// every edge its BFS touches, per world — the 64x edge-coin bill the
// batched path deletes.
func BenchmarkFromCentersDepth2SerialLoop(b *testing.B) {
	g := benchDepthGraph(b)
	cs := benchCandidates(g)
	const r = 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := conn.NewMonteCarlo(g, uint64(i+1))
		for _, c := range cs {
			oracle.FromCenter(c, 2, r)
		}
	}
}

// BenchmarkMinPartialDepth2Alpha64 runs one depth-limited min-partial
// invocation (Algorithm 4 shape) — the end-to-end consumer of the batched
// depth engine.
func BenchmarkMinPartialDepth2Alpha64(b *testing.B) {
	g := benchDepthGraph(b)
	oracle := conn.NewMonteCarlo(g, 1)
	rnd := rng.NewXoshiro256(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPartial(oracle, rnd, PartialParams{
			K: 40, Q: 0.3, QBar: 0.3, Alpha: 64,
			Depth: 2, DepthSel: 2, R: 128,
		})
	}
}

// BenchmarkMinPartialAlpha64 runs one min-partial invocation with a large
// candidate set — the end-to-end consumer of the batched scoring path.
func BenchmarkMinPartialAlpha64(b *testing.B) {
	g := benchGraph(b)
	oracle := conn.NewMonteCarlo(g, 1)
	rnd := rng.NewXoshiro256(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPartial(oracle, rnd, PartialParams{
			K: 40, Q: 0.3, QBar: 0.3, Alpha: 64,
			Depth: conn.Unlimited, DepthSel: conn.Unlimited, R: 128,
		})
	}
}
