package core

import (
	"context"
	"fmt"

	"ucgraph/internal/conn"
	"ucgraph/internal/rng"
)

// ACP solves the Average Connection Probability problem (Definition 1) with
// Algorithm 3: sweep decreasing probability guesses, keep the completed
// partial clustering with the best average connection probability phi, and
// stop as soon as smaller guesses cannot beat the incumbent.
//
// With the default options it follows the practical configuration of
// Section 5: min-partial is invoked with parameters (G, k, q, 1, q) — the
// removal threshold is the guess itself rather than q^3 — and the guesses
// follow the accelerated schedule q_i = max{1 - gamma*2^i, PL}. The sweep
// stops when the current removal threshold drops below the incumbent phi
// (the Algorithm 3 condition "q^3 >= phi_best" expressed in terms of the
// removal threshold) or reaches the floor PL.
//
// Options.Geometric switches to the literal Algorithm 3 loop: removal
// threshold q^3, selection threshold q, alpha = n unless overridden, and
// q <- q/(1+gamma). One deliberate deviation: Algorithm 3 as printed keeps
// the same q after an improving iteration, which with a deterministic
// oracle and alpha = n would re-run an identical invocation forever; we
// always advance q, which preserves the Theorem 4 analysis (every guess in
// the schedule is still tried, and the incumbent keeps the maximum phi).
//
// The returned clustering C satisfies, w.h.p.,
// avg-prob(C) >= (1-eps) * (p_opt-avg(k) / ((1+gamma) H(n)))^3  (Theorem 8).
func ACP(o conn.Oracle, k int, opt Options) (*Clustering, Stats, error) {
	return ACPCtx(context.Background(), o, k, opt)
}

// ACPCtx is ACP with cooperative cancellation, following the same contract
// as MCPCtx: a deadline or cancellation aborts the sweep mid-estimation
// (when the oracle implements conn.ContextOracle) and surfaces as ctx's
// error; a nil-error run is bit-identical to ACP.
func ACPCtx(ctx context.Context, o conn.Oracle, k int, opt Options) (*Clustering, Stats, error) {
	n := o.NumNodes()
	if k < 1 || k >= n {
		return nil, Stats{}, fmt.Errorf("core: k = %d out of range [1, %d)", k, n)
	}
	opt = opt.withDefaults(n)
	rnd := rng.NewXoshiro256(rng.Stream(opt.Seed, 0x414350)) // "ACP" stream
	var st Stats

	// acpDepthSel: the practical configuration reuses d for selection, the
	// theoretical one uses floor(d/3) per Lemma 7.
	depthSel := opt.Depth
	if opt.Depth >= 0 && opt.TheoreticalDepthSel {
		depthSel = opt.Depth / 3
	}

	// try runs min-partial with removal threshold rem and selection
	// threshold sel; the sample size is tuned for estimating rem reliably.
	try := func(rem, sel float64) (*PartialResult, error) {
		r := opt.Schedule.Samples(rem)
		if r > st.MaxSamples {
			st.MaxSamples = r
		}
		alpha := opt.Alpha
		if opt.Geometric && opt.Alpha == 1 {
			alpha = -1 // literal Algorithm 3 uses alpha = n
		}
		res, err := MinPartialCtx(ctx, o, rnd, PartialParams{
			K: k, Q: rem, QBar: sel, Alpha: alpha,
			Depth: opt.Depth, DepthSel: depthSel,
			R: r, Eps: opt.Eps, Parallelism: opt.Parallelism,
			ScoreChunk: opt.ScoreChunk,
			Adaptive:   opt.Adaptive,
			Progress:   opt.Progress,
		})
		if err != nil {
			return nil, err
		}
		st.Invocations++
		st.OracleCalls += res.OracleCalls
		return res, nil
	}

	var (
		best    *Clustering
		phiBest = -1.0
	)
	consider := func(res *PartialResult, q float64) {
		phi := res.Clustering.AvgProb() // partial phi: uncovered contribute 0
		if phi > phiBest {
			phiBest = phi
			st.FinalQ = q
			cl := res.Clustering.Clone()
			cl.Complete(res.BestIdx, res.BestProb)
			best = cl
		}
	}

	if opt.Geometric {
		// Line 1 of Algorithm 3: min-partial(G, k, 1, n, 1).
		res, err := try(1, 1)
		if err != nil {
			return nil, st, err
		}
		consider(res, 1)
		q := 1 / (1 + opt.Gamma)
		for q*q*q >= phiBest && q >= opt.PL {
			if res, err = try(q*q*q, q); err != nil {
				return nil, st, err
			}
			consider(res, q)
			q = q / (1 + opt.Gamma)
		}
		if best == nil {
			return nil, st, ErrNoClustering
		}
		return best, st, nil
	}

	// Practical accelerated sweep: thresholds 1, 0.9, 0.8, 0.6, 0.2, PL.
	res, err := try(1, 1)
	if err != nil {
		return nil, st, err
	}
	consider(res, 1)
	for i := 0; ; i++ {
		t := 1 - opt.Gamma*float64(int64(1)<<uint(i))
		if t < opt.PL {
			t = opt.PL
		}
		if t < phiBest {
			break // smaller thresholds cannot beat the incumbent
		}
		if res, err = try(t, t); err != nil {
			return nil, st, err
		}
		consider(res, t)
		if t <= opt.PL {
			break
		}
	}
	if best == nil {
		return nil, st, ErrNoClustering
	}
	return best, st, nil
}
