package core

import (
	"errors"
	"testing"
	"testing/quick"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// randomConnectedGraph builds a random connected uncertain graph with
// n in [6, 14) nodes: a random spanning tree plus extra random edges.
func randomConnectedGraph(x *rng.Xoshiro256) *graph.Uncertain {
	n := 6 + x.Intn(8)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(int32(x.Intn(i)), int32(i), 0.1+0.85*x.Float64())
	}
	extra := x.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := int32(x.Intn(n)), int32(x.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v, 0.1+0.85*x.Float64())
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestQuickMCPStructuralInvariants: on random connected graphs, MCP with
// the Monte Carlo oracle always returns a full, valid clustering with
// exactly k clusters and distinct centers.
func TestQuickMCPStructuralInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		x := rng.NewXoshiro256(seed)
		g := randomConnectedGraph(x)
		k := 1 + x.Intn(g.NumNodes()-1)
		oracle := conn.NewMonteCarlo(g, seed)
		cl, _, err := MCP(oracle, k, Options{
			Seed:     seed,
			Schedule: conn.Schedule{Min: 32, Max: 128, Coef: 4},
		})
		if err != nil {
			// ErrNoClustering is a documented outcome, not an invariant
			// violation: on rare weak graphs a node can tally zero
			// connections to the chosen center across every sampled
			// world, so even the floor guess leaves it uncovered.
			return errors.Is(err, ErrNoClustering)
		}
		if cl.K() != k || !cl.IsFull() || cl.Validate() != "" {
			return false
		}
		seen := map[graph.NodeID]bool{}
		for _, c := range cl.Centers {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickACPStructuralInvariants: same for ACP, plus the invariant that
// the returned (completed) clustering's average probability is at least
// the partial phi it was selected by (completion only adds probability).
func TestQuickACPStructuralInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		x := rng.NewXoshiro256(seed)
		g := randomConnectedGraph(x)
		k := 1 + x.Intn(g.NumNodes()-1)
		oracle := conn.NewMonteCarlo(g, seed)
		cl, st, err := ACP(oracle, k, Options{
			Seed:     seed,
			Schedule: conn.Schedule{Min: 32, Max: 128, Coef: 4},
		})
		if err != nil {
			// See the MCP variant: ErrNoClustering is a legitimate outcome.
			return errors.Is(err, ErrNoClustering)
		}
		if cl.K() != k || !cl.IsFull() || cl.Validate() != "" {
			return false
		}
		return st.Invocations >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinPartialThresholdInvariant: every node covered by
// min-partial has estimated connection probability at least
// (1 - eps/2) * q to some selected center.
func TestQuickMinPartialThresholdInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		x := rng.NewXoshiro256(seed)
		g := randomConnectedGraph(x)
		k := 1 + x.Intn(3)
		q := 0.05 + 0.9*x.Float64()
		eps := 0.1
		oracle := conn.NewMonteCarlo(g, seed)
		rnd := rng.NewXoshiro256(seed + 1)
		res := MinPartial(oracle, rnd, PartialParams{
			K: k, Q: q, QBar: q, Alpha: 1,
			Depth: conn.Unlimited, DepthSel: conn.Unlimited,
			R: 200, Eps: eps,
		})
		cl := res.Clustering
		if cl.Validate() != "" {
			return false
		}
		thresh := (1 - eps/2) * q
		for u, a := range cl.Assign {
			if a == Unassigned {
				continue
			}
			// Prob is the best-center estimate; centers carry 1.
			if cl.Prob[u] < thresh && cl.Prob[u] != 1 {
				return false
			}
			_ = u
		}
		// BestProb must dominate the recorded per-node probabilities.
		for u := range cl.Assign {
			if cl.Prob[u] > res.BestProb[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMaximalityInvariant: every uncovered node has estimated
// connection probability below q to every selected center — the
// "maximal coverage" guarantee of Algorithm 1.
func TestQuickMaximalityInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		x := rng.NewXoshiro256(seed)
		g := randomConnectedGraph(x)
		q := 0.3 + 0.6*x.Float64()
		oracle := conn.NewMonteCarlo(g, seed)
		rnd := rng.NewXoshiro256(seed + 1)
		res := MinPartial(oracle, rnd, PartialParams{
			K: 2, Q: q, QBar: q, Alpha: 1,
			Depth: conn.Unlimited, DepthSel: conn.Unlimited,
			R: 200, Eps: 0,
		})
		cl := res.Clustering
		for u, a := range cl.Assign {
			if a != Unassigned {
				continue
			}
			// BestProb[u] is the max estimate over all centers; an
			// uncovered node must sit strictly below the threshold.
			if res.BestProb[u] >= q {
				_ = u
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
