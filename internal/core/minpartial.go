package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// PartialParams configures one invocation of min-partial (Algorithm 1) or
// its depth-limited variant min-partial-d (Algorithm 4).
type PartialParams struct {
	// K is the number of clusters.
	K int
	// Q is the removal threshold: nodes with estimated connection
	// probability >= (1 - Eps/2) * Q to the newly selected center leave the
	// uncovered set (line 8 of Algorithm 1).
	Q float64
	// QBar is the selection threshold used to score candidate centers
	// (line 5); QBar must be in [Q, 1].
	QBar float64
	// Alpha is the number of candidate centers examined per iteration
	// (|T| on line 4). Alpha <= 0 means "all uncovered nodes" (alpha = n).
	Alpha int
	// Depth bounds the path length for the removal disks (d in
	// Algorithm 4); conn.Unlimited means unconstrained.
	Depth int
	// DepthSel bounds the path length for the selection disks (d' in
	// Algorithm 4). Ignored when it equals Depth.
	DepthSel int
	// R is the Monte Carlo sample size handed to the oracle.
	R int
	// Eps is the estimation slack of Section 4.1: thresholds t are tested
	// as estimate >= (1 - Eps/2) * t. Zero means exact thresholding.
	Eps float64
	// Parallelism caps the number of goroutines scoring the estimate
	// vectors returned by the batched candidate queries (lines 5-6); the
	// oracle queries themselves are batched through conn.Oracle.FromCenters
	// and parallelized inside the oracle. <= 0 selects GOMAXPROCS; 1
	// forces the serial loop. The selected centers — and hence the
	// clustering — do not depend on the setting as long as the oracle
	// itself answers identically under concurrency (conn.MonteCarlo does,
	// up to the tally-cache overflow boundary documented on it).
	Parallelism int
	// ScoreChunk bounds how many candidates one batched FromCenters
	// scoring query carries (<= 0 selects the default, 64). Larger chunks
	// trade peak memory (chunk * n floats of estimate vectors alive at
	// once) for fewer oracle round-trips — worthwhile when the oracle is
	// a shard coordinator whose per-query cost includes a network
	// scatter. The chunk size never affects results.
	ScoreChunk int
	// Adaptive, when non-nil, replaces fixed-budget candidate scoring with
	// confidence-target racing (see AdaptiveScoring): candidates race on a
	// doubling world schedule capped at R and are pruned once their score
	// intervals separate. nil preserves the fixed-budget path bit for bit.
	Adaptive *AdaptiveScoring
	// Progress, when non-nil, is called after every center selection with
	// that selection's ProgressEvent — the hook the server's progressive
	// clustering mode streams from. It is called on the driver goroutine;
	// it must not block for long.
	Progress func(ProgressEvent)
}

// scoreChunk bounds how many candidate centers are handed to one batched
// FromCenters query (and so how many estimate vectors are alive at once):
// chunking caps the scoring working set at scoreChunk * n floats even when
// alpha is "all uncovered nodes". The chunk size does not affect results.
const scoreChunk = 64

// workers resolves the effective candidate-scoring worker count.
func (p PartialParams) workers() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// chunk resolves the effective scoring-batch size.
func (p PartialParams) chunk() int {
	if p.ScoreChunk > 0 {
		return p.ScoreChunk
	}
	return scoreChunk
}

// PartialResult is the outcome of a min-partial run: the partial clustering
// plus the streaming per-node argmax over all selected centers, which both
// MCP and ACP need (for completion and for the final assignment).
type PartialResult struct {
	Clustering *Clustering
	// BestIdx[u] is the cluster index whose center has the highest
	// estimated connection probability to u (-1 if all are 0);
	// BestProb[u] is that probability.
	BestIdx  []int32
	BestProb []float64
	// OracleCalls counts FromCenter invocations (cost observability).
	OracleCalls int
}

// fromCenterCtx routes a single-center query through the oracle's
// context-aware path when it has one; otherwise it degrades to one ctx
// check before the (uninterruptible) plain call. Either way a nil error
// means the answer is bit-identical to FromCenter.
func fromCenterCtx(ctx context.Context, o conn.Oracle, c graph.NodeID, depth, r int) ([]float64, error) {
	if co, ok := o.(conn.ContextOracle); ok {
		return co.FromCenterCtx(ctx, c, depth, r)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return o.FromCenter(c, depth, r), nil
}

// fromCentersCtx is the batched form of fromCenterCtx.
func fromCentersCtx(ctx context.Context, o conn.Oracle, cs []graph.NodeID, depth, r int) ([][]float64, error) {
	if co, ok := o.(conn.ContextOracle); ok {
		return co.FromCentersCtx(ctx, cs, depth, r)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return o.FromCenters(cs, depth, r), nil
}

// MinPartial runs Algorithm 1 (or Algorithm 4 when Depth/DepthSel are set)
// against the given oracle. The returned clustering covers a maximal subset
// of nodes, each with estimated connection probability at least
// (1-eps/2)*Q to its cluster's center; remaining nodes stay Unassigned.
//
// The "arbitrary" candidate subsets T of line 4 are drawn uniformly at
// random from the uncovered set using rnd, matching the randomized runs
// averaged in the paper's experiments.
func MinPartial(o conn.Oracle, rnd *rng.Xoshiro256, p PartialParams) *PartialResult {
	res, _ := MinPartialCtx(context.Background(), o, rnd, p)
	return res
}

// MinPartialCtx is MinPartial with cooperative cancellation: oracle
// queries are routed through the oracle's context-aware path when it
// implements conn.ContextOracle, so a deadline or cancellation aborts the
// run mid-estimation and returns ctx's error. A nil-error run is
// bit-identical to MinPartial with the same oracle, rnd and params.
func MinPartialCtx(ctx context.Context, o conn.Oracle, rnd *rng.Xoshiro256, p PartialParams) (*PartialResult, error) {
	if p.Adaptive != nil {
		if err := (conn.AdaptiveParams{Eps: p.Adaptive.Eps, Delta: p.Adaptive.Delta}).Validate(); err != nil {
			return nil, err
		}
	}
	n := o.NumNodes()
	k := p.K
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	alpha := p.Alpha
	if alpha <= 0 || alpha > n {
		alpha = n
	}
	selThresh := (1 - p.Eps/2) * p.QBar
	remThresh := (1 - p.Eps/2) * p.Q

	// uncovered is maintained as a dense array with swap-removal so that
	// sampling a random uncovered node is O(1).
	uncovered := make([]graph.NodeID, n)
	pos := make([]int32, n) // pos[u] = index of u in uncovered, -1 if removed
	for i := range uncovered {
		uncovered[i] = graph.NodeID(i)
		pos[i] = int32(i)
	}
	remove := func(u graph.NodeID) {
		i := pos[u]
		if i < 0 {
			return
		}
		last := int32(len(uncovered) - 1)
		moved := uncovered[last]
		uncovered[i] = moved
		pos[moved] = i
		uncovered = uncovered[:last]
		pos[u] = -1
	}

	res := &PartialResult{
		Clustering: &Clustering{
			Assign: make([]int32, n),
			Prob:   make([]float64, n),
		},
		BestIdx:  make([]int32, n),
		BestProb: make([]float64, n),
	}
	cl := res.Clustering
	for i := range cl.Assign {
		cl.Assign[i] = Unassigned
		res.BestIdx[i] = -1
	}
	isCenter := make([]bool, n)

	// absorb merges a freshly selected center's estimate vector into the
	// streaming argmax.
	absorb := func(clusterIdx int32, est []float64) {
		for u := 0; u < n; u++ {
			if est[u] > res.BestProb[u] {
				res.BestProb[u] = est[u]
				res.BestIdx[u] = clusterIdx
			}
		}
	}

	for len(cl.Centers) < k && len(uncovered) > 0 {
		// Line 4: pick T, |T| = min(alpha, |V'|), uniformly without
		// replacement via a partial shuffle of the uncovered array.
		tsize := alpha
		if tsize > len(uncovered) {
			tsize = len(uncovered)
		}
		for i := 0; i < tsize; i++ {
			j := i + rnd.Intn(len(uncovered)-i)
			u, v := uncovered[i], uncovered[j]
			uncovered[i], uncovered[j] = v, u
			pos[u], pos[v] = int32(j), int32(i)
		}

		// Lines 5-6: score candidates by |Mv| and keep the best. The
		// candidates are handed to the oracle in chunks via the batched
		// FromCenters query, which answers a whole chunk in one pass over
		// each world block at any depth — label scans for Algorithm 1,
		// edge-bitmap frontier BFS for the d-limited disks of Algorithm 4
		// (see conn.MonteCarlo.FromCenters); chunking
		// bounds the estimate vectors held in memory to scoreChunk * n
		// floats even when alpha is the whole uncovered set. Scoring each
		// returned vector against the uncovered set fans out across the
		// worker pool into fixed slots of the scores array, and the
		// argmax scans in T order, so the selected center is identical
		// for every worker count and chunking is invisible (FromCenters
		// itself matches a serial FromCenter loop). OracleCalls counts
		// per-center answers, matching the serial loop's accounting.
		best := -1
		var bestSelEst []float64
		scoreWorlds := p.R
		if p.Adaptive != nil {
			// Confidence-target racing instead of fixed-budget scoring: see
			// adaptiveSelect for the pruning rule and the determinism note.
			var calls int
			var err error
			best, bestSelEst, scoreWorlds, calls, err = adaptiveSelect(ctx, o, uncovered, tsize, selThresh, p)
			if err != nil {
				return nil, err
			}
			res.OracleCalls += calls
		} else {
			scores := make([]int, tsize)
			for base := 0; base < tsize; base += p.chunk() {
				end := base + p.chunk()
				if end > tsize {
					end = tsize
				}
				ests, err := fromCentersCtx(ctx, o, uncovered[base:end:end], p.DepthSel, p.R)
				if err != nil {
					return nil, err
				}
				scoreAt := func(i int) {
					est := ests[i-base]
					score := 0
					for _, u := range uncovered {
						if est[u] >= selThresh {
							score++
						}
					}
					scores[i] = score
				}
				if workers := p.workers(); workers > 1 && end-base > 1 {
					if workers > end-base {
						workers = end - base
					}
					var next atomic.Int64
					next.Store(int64(base))
					var wg sync.WaitGroup
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for {
								i := int(next.Add(1)) - 1
								if i >= end {
									return
								}
								scoreAt(i)
							}
						}()
					}
					wg.Wait()
				} else {
					for i := base; i < end; i++ {
						scoreAt(i)
					}
				}
				for i := base; i < end; i++ {
					if best < 0 || scores[i] > scores[best] {
						best, bestSelEst = i, ests[i-base]
					}
				}
			}
			res.OracleCalls += tsize
		}
		ci := uncovered[best]
		clusterIdx := int32(len(cl.Centers))
		cl.Centers = append(cl.Centers, ci)
		isCenter[ci] = true

		// Removal estimates use Depth; reuse the selection vector when the
		// depths coincide (the practical configuration).
		remEst := bestSelEst
		if p.Depth != p.DepthSel {
			var err error
			remEst, err = fromCenterCtx(ctx, o, ci, p.Depth, p.R)
			if err != nil {
				return nil, err
			}
			res.OracleCalls++
		}
		absorb(clusterIdx, remEst)

		// Line 8: remove the q-disk of ci from V'.
		// Snapshot since remove() mutates the slice.
		snap := make([]graph.NodeID, len(uncovered))
		copy(snap, uncovered)
		for _, u := range snap {
			if remEst[u] >= remThresh || u == ci {
				remove(u)
			}
		}
		if p.Progress != nil {
			p.Progress(ProgressEvent{
				Centers: len(cl.Centers), K: k,
				Covered: n - len(uncovered), Nodes: n,
				OracleCalls: res.OracleCalls,
				ScoreWorlds: scoreWorlds,
			})
		}
	}

	// Lines 10-11: top up with arbitrary extra centers if coverage finished
	// early. Extra centers still contribute their estimate vectors so that
	// assignment can exploit them.
	for len(cl.Centers) < k {
		var extra graph.NodeID = -1
		if len(uncovered) > 0 {
			extra = uncovered[rnd.Intn(len(uncovered))]
		} else {
			// All nodes covered: pick a random non-center.
			for tries := 0; tries < 4*n; tries++ {
				cand := graph.NodeID(rnd.Intn(n))
				if !isCenter[cand] {
					extra = cand
					break
				}
			}
			if extra < 0 {
				break // k >= n and all nodes are centers already
			}
		}
		clusterIdx := int32(len(cl.Centers))
		cl.Centers = append(cl.Centers, extra)
		isCenter[extra] = true
		est, err := fromCenterCtx(ctx, o, extra, p.Depth, p.R)
		if err != nil {
			return nil, err
		}
		res.OracleCalls++
		absorb(clusterIdx, est)
		remove(extra)
		if p.Progress != nil {
			p.Progress(ProgressEvent{
				Centers: len(cl.Centers), K: k,
				Covered: n - len(uncovered), Nodes: n,
				OracleCalls: res.OracleCalls,
				ScoreWorlds: p.R,
			})
		}
	}

	// Line 12: assign covered nodes (V - V') to their best center.
	for u := 0; u < n; u++ {
		if pos[u] >= 0 {
			continue // still uncovered
		}
		cl.Assign[u] = res.BestIdx[u]
		cl.Prob[u] = res.BestProb[u]
	}
	// Centers own themselves with probability 1.
	for i, ctr := range cl.Centers {
		cl.Assign[ctr] = int32(i)
		cl.Prob[ctr] = 1
		res.BestIdx[ctr] = int32(i)
		res.BestProb[ctr] = 1
	}
	return res, nil
}
