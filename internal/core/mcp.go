package core

import (
	"context"
	"errors"
	"fmt"

	"ucgraph/internal/conn"
	"ucgraph/internal/rng"
)

// ErrNoClustering is returned when no full k-clustering with objective above
// the probability floor PL could be found (Section 4: "if the algorithm
// does not find a clustering whose objective function is above the
// threshold, it terminates by reporting that no clustering could be
// found"). This happens when the graph has more than k connected
// components, or when connection probabilities below PL would be required.
var ErrNoClustering = errors.New("core: no full k-clustering above the probability floor")

// Options configures the MCP and ACP drivers.
type Options struct {
	// Gamma is the guess-ratio parameter of Algorithms 2-3 (default 0.1,
	// the value used in Section 5).
	Gamma float64
	// PL is the probability floor below which guesses are not refined
	// (default 1e-4, the value used in Section 5).
	PL float64
	// Alpha is the candidate-set size of min-partial; the paper's
	// experiments use 1 (default). Alpha <= 0 selects "all uncovered".
	Alpha int
	// Eps is the estimation slack of Section 4 (default 0.1).
	Eps float64
	// Depth limits path lengths (d-connection probabilities, Section 3.4);
	// conn.Unlimited (default) disables the limit.
	Depth int
	// TheoreticalDepthSel, when true, uses the selection depth d' of the
	// theory (d for MCP, floor(d/3) for ACP) instead of d' = d.
	TheoreticalDepthSel bool
	// Schedule maps probability guesses to Monte Carlo sample sizes.
	// The zero value is replaced by conn.DefaultSchedule(n).
	Schedule conn.Schedule
	// Geometric, when true, uses the pure Algorithm 2/3 schedule
	// q <- q/(1+Gamma) instead of the accelerated Section 5 schedule
	// q_i = max{1 - Gamma*2^i, PL} with final binary search.
	Geometric bool
	// Parallelism caps the goroutines used to score candidate centers
	// concurrently. <= 0 selects GOMAXPROCS; 1 forces serial execution.
	// Callers that want the oracle pinned too should hand the same value
	// to its SetParallelism — the oracle's internal shard budget is
	// shared, not multiplied, when both fan out. Results are identical
	// for every setting.
	Parallelism int
	// ScoreChunk bounds how many candidates one batched FromCenters
	// scoring query carries (<= 0 selects the default, 64; see
	// PartialParams.ScoreChunk). Larger chunks suit oracles with
	// per-query overhead — the shard coordinator's network scatter —
	// and never affect results.
	ScoreChunk int
	// Seed drives candidate selection; estimator seeds are independent.
	Seed uint64
	// Adaptive, when non-nil, switches min-partial candidate scoring to
	// confidence-target racing (see AdaptiveScoring): candidates whose
	// score intervals already separate stop consuming worlds. nil keeps
	// the fixed-budget path bit-identical to previous releases.
	Adaptive *AdaptiveScoring
	// Progress, when non-nil, receives one ProgressEvent per selected
	// center across all min-partial invocations of a run — the hook the
	// server streams progressive clustering frames from.
	Progress func(ProgressEvent)
}

// withDefaults fills in the documented defaults.
func (o Options) withDefaults(n int) Options {
	if o.Gamma <= 0 {
		o.Gamma = 0.1
	}
	if o.PL <= 0 {
		o.PL = 1e-4
	}
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.Depth == 0 {
		o.Depth = conn.Unlimited
	}
	if o.Schedule == (conn.Schedule{}) {
		o.Schedule = conn.DefaultSchedule(n)
	}
	return o
}

// Stats reports the work done by a driver run.
type Stats struct {
	// Invocations counts min-partial executions.
	Invocations int
	// OracleCalls counts FromCenter invocations across all executions.
	OracleCalls int
	// FinalQ is the probability guess that produced the returned
	// clustering.
	FinalQ float64
	// MaxSamples is the largest per-phase Monte Carlo sample size used.
	MaxSamples int
}

// MCP solves the Minimum Connection Probability problem (Definition 1) with
// Algorithm 2: repeatedly run min-partial with decreasing probability
// guesses until the returned k-clustering covers all nodes. With the
// default options it follows the practical accelerated schedule of
// Section 5; with Options.Geometric it follows Algorithm 2 literally.
//
// The returned clustering C satisfies, w.h.p.,
// min-prob(C) >= (1-eps) * p_opt-min(k)^2 / (1+gamma)  (Theorem 7).
func MCP(o conn.Oracle, k int, opt Options) (*Clustering, Stats, error) {
	return MCPCtx(context.Background(), o, k, opt)
}

// MCPCtx is MCP with cooperative cancellation: min-partial invocations are
// run with ctx (aborting mid-estimation when the oracle implements
// conn.ContextOracle), so a deadline or cancellation surfaces as ctx's
// error together with the Stats of the work done so far. A nil-error run
// is bit-identical to MCP.
func MCPCtx(ctx context.Context, o conn.Oracle, k int, opt Options) (*Clustering, Stats, error) {
	n := o.NumNodes()
	if k < 1 || k >= n {
		return nil, Stats{}, fmt.Errorf("core: k = %d out of range [1, %d)", k, n)
	}
	opt = opt.withDefaults(n)
	rnd := rng.NewXoshiro256(rng.Stream(opt.Seed, 0x4d4350)) // "MCP" stream
	return mcpRun(ctx, o, k, opt, rnd)
}

func mcpRun(ctx context.Context, o conn.Oracle, k int, opt Options, rnd *rng.Xoshiro256) (*Clustering, Stats, error) {
	var st Stats
	depthSel := opt.Depth // practical: d' = d

	try := func(q float64) (*PartialResult, error) {
		r := opt.Schedule.Samples(q)
		if r > st.MaxSamples {
			st.MaxSamples = r
		}
		res, err := MinPartialCtx(ctx, o, rnd, PartialParams{
			K: k, Q: q, QBar: q, Alpha: opt.Alpha,
			Depth: opt.Depth, DepthSel: depthSel,
			R: r, Eps: opt.Eps, Parallelism: opt.Parallelism,
			ScoreChunk: opt.ScoreChunk,
			Adaptive:   opt.Adaptive,
			Progress:   opt.Progress,
		})
		if err != nil {
			return nil, err
		}
		st.Invocations++
		st.OracleCalls += res.OracleCalls
		return res, nil
	}

	if opt.Geometric {
		// Algorithm 2 verbatim: q = 1, divide by (1+gamma).
		q := 1.0
		for {
			res, err := try(q)
			if err != nil {
				return nil, st, err
			}
			if res.Clustering.IsFull() {
				st.FinalQ = q
				return res.Clustering, st, nil
			}
			if q <= opt.PL {
				return nil, st, ErrNoClustering
			}
			q = q / (1 + opt.Gamma)
			if q < opt.PL {
				q = opt.PL
			}
		}
	}

	// Accelerated schedule: q_i = max{1 - gamma*2^i, PL}, then binary
	// search between the last failing guess and the first succeeding one.
	var (
		loQ   float64 // highest guess known to cover all nodes
		loRes *PartialResult
		hiQ   = 1.0 // lowest guess known to fail (exclusive bound)
	)
	for i := 0; ; i++ {
		q := 1 - opt.Gamma*float64(int64(1)<<uint(i))
		if q < opt.PL {
			q = opt.PL
		}
		res, err := try(q)
		if err != nil {
			return nil, st, err
		}
		if res.Clustering.IsFull() {
			loQ, loRes = q, res
			break
		}
		hiQ = q
		if q <= opt.PL {
			return nil, st, ErrNoClustering
		}
	}
	// Binary search in (loQ, hiQ): stop when the ratio between the bounds
	// exceeds 1 - gamma (Section 5).
	for loQ/hiQ < 1-opt.Gamma {
		mid := (loQ + hiQ) / 2
		res, err := try(mid)
		if err != nil {
			return nil, st, err
		}
		if res.Clustering.IsFull() {
			loQ, loRes = mid, res
		} else {
			hiQ = mid
		}
	}
	st.FinalQ = loQ
	return loRes.Clustering, st, nil
}
