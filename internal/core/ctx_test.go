package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// blobsGraph builds k dense high-probability blobs bridged by weak edges —
// an instance where MCP/ACP do real progressive-sampling work.
func blobsGraph(t *testing.T, blobs, size int) *graph.Uncertain {
	t.Helper()
	b := graph.NewBuilder(blobs * size)
	for c := 0; c < blobs; c++ {
		base := int32(c * size)
		for i := int32(0); i < int32(size); i++ {
			for j := i + 1; j < int32(size); j++ {
				if err := b.AddEdge(base+i, base+j, 0.85); err != nil {
					t.Fatal(err)
				}
			}
		}
		if c > 0 {
			if err := b.AddEdge(base-int32(size), base, 0.05); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMCPCtxMatchesMCP(t *testing.T) {
	g := blobsGraph(t, 3, 6)
	opt := Options{Seed: 5}

	want, wantSt, err := MCP(conn.NewMonteCarlo(g, 101), 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSt, err := MCPCtx(context.Background(), conn.NewMonteCarlo(g, 101), 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if wantSt != gotSt {
		t.Fatalf("stats diverged: %+v != %+v", gotSt, wantSt)
	}
	for u := range want.Assign {
		if want.Assign[u] != got.Assign[u] || want.Prob[u] != got.Prob[u] {
			t.Fatalf("node %d: (%d, %v) != (%d, %v)", u,
				got.Assign[u], got.Prob[u], want.Assign[u], want.Prob[u])
		}
	}
}

func TestMCPCtxCancelled(t *testing.T) {
	g := blobsGraph(t, 3, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := MCPCtx(ctx, conn.NewMonteCarlo(g, 101), 3, Options{Seed: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestACPCtxDeadline(t *testing.T) {
	g := blobsGraph(t, 3, 6)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := ACPCtx(ctx, conn.NewMonteCarlo(g, 101), 3, Options{Seed: 5})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestMinPartialCtxPlainOracleFallback(t *testing.T) {
	// An oracle without FromCenterCtx still works: cancellation is checked
	// between calls, success matches the context-free path.
	g := blobsGraph(t, 2, 4)
	ex, err := conn.NewExact(g)
	if err != nil {
		t.Skip("graph too large for exact oracle:", err)
	}
	p := PartialParams{K: 2, Q: 0.5, QBar: 0.5, Alpha: 2, Depth: conn.Unlimited, DepthSel: conn.Unlimited, R: 1}

	want := MinPartial(ex, rng.NewXoshiro256(9), p)
	got, err := MinPartialCtx(context.Background(), ex, rng.NewXoshiro256(9), p)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want.Clustering.Assign {
		if want.Clustering.Assign[u] != got.Clustering.Assign[u] {
			t.Fatalf("node %d: %d != %d", u, got.Clustering.Assign[u], want.Clustering.Assign[u])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinPartialCtx(ctx, ex, rng.NewXoshiro256(9), p); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
