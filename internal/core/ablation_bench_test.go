package core

// Ablation benchmarks for the design choices called out in DESIGN.md:
//
//   - accelerated guess schedule + binary search (Section 5) versus the
//     literal geometric schedule of Algorithm 2;
//   - candidate-set size alpha (1 as in the paper's experiments, vs 4, vs
//     all uncovered nodes);
//   - Monte Carlo sample-size cap of the practical schedule.
//
// Run with: go test -bench=Ablation ./internal/core/

import (
	"testing"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// benchGraph builds a 600-node planted-community graph with mixed edge
// probabilities — large enough for schedule differences to show, small
// enough to iterate.
func benchGraph(b *testing.B) *graph.Uncertain {
	b.Helper()
	x := rng.NewXoshiro256(1)
	gb := graph.NewBuilder(600)
	// 60 communities of 10, dense inside, sparse across.
	for c := 0; c < 60; c++ {
		base := int32(c * 10)
		for i := int32(0); i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				if x.Float64() < 0.5 {
					_ = gb.AddEdge(base+i, base+j, 0.3+0.6*x.Float64())
				}
			}
		}
		next := int32(((c + 1) % 60) * 10)
		_ = gb.AddEdge(base+int32(x.Intn(10)), next+int32(x.Intn(10)), 0.1+0.3*x.Float64())
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func runMCP(b *testing.B, g *graph.Uncertain, opt Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		opt.Seed = uint64(i)
		oracle := conn.NewMonteCarlo(g, uint64(i))
		if _, _, err := MCP(oracle, 40, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationScheduleAccelerated(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	runMCP(b, g, Options{Schedule: conn.Schedule{Min: 50, Max: 512, Coef: 8}})
}

func BenchmarkAblationScheduleGeometric(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	runMCP(b, g, Options{Geometric: true, Schedule: conn.Schedule{Min: 50, Max: 512, Coef: 8}})
}

func BenchmarkAblationAlpha1(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	runMCP(b, g, Options{Alpha: 1, Schedule: conn.Schedule{Min: 50, Max: 512, Coef: 8}})
}

func BenchmarkAblationAlpha4(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	runMCP(b, g, Options{Alpha: 4, Schedule: conn.Schedule{Min: 50, Max: 512, Coef: 8}})
}

func BenchmarkAblationAlphaAll(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	runMCP(b, g, Options{Alpha: -1, Schedule: conn.Schedule{Min: 50, Max: 512, Coef: 8}})
}

func BenchmarkAblationSamples128(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	runMCP(b, g, Options{Schedule: conn.Schedule{Min: 50, Max: 128, Coef: 8}})
}

func BenchmarkAblationSamples1024(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	runMCP(b, g, Options{Schedule: conn.Schedule{Min: 50, Max: 1024, Coef: 8}})
}

// BenchmarkAblationMinPartialOnly isolates one min-partial invocation from
// the guessing schedule around it.
func BenchmarkAblationMinPartialOnly(b *testing.B) {
	g := benchGraph(b)
	oracle := conn.NewMonteCarlo(g, 1)
	rnd := rng.NewXoshiro256(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPartial(oracle, rnd, PartialParams{
			K: 40, Q: 0.3, QBar: 0.3, Alpha: 1,
			Depth: conn.Unlimited, DepthSel: conn.Unlimited, R: 128,
		})
	}
}
