package core

import (
	"context"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
)

// AdaptiveScoring switches min-partial candidate scoring from a fixed
// sample budget to confidence-target racing: candidates are scored on a
// doubling block-aligned world schedule, each candidate's score bracketed
// by the interval [#nodes certainly in its disk, #nodes possibly in its
// disk] derived from per-node (eps, delta) confidence bounds, and a
// candidate is pruned as soon as its upper bound falls below another's
// lower bound — it can no longer be the argmax. Pruned candidates stop
// consuming worlds, which is where the saving comes from: with alpha
// candidates per iteration, the fixed path always spends alpha * R
// center-extensions while racing spends the full R only on the survivors
// (typically one).
//
// The selected center may differ from the fixed-budget path's choice —
// adaptive mode trades the cross-budget bit-identity invariant for the
// confidence guarantee — but a run is still fully deterministic for a
// fixed (oracle seed, driver seed, params): the schedule, the per-round
// estimates and hence every pruning decision are pure functions of those
// inputs. The winner's estimate vector is always refined to the full
// budget R before the removal step, so coverage decisions keep
// fixed-budget precision.
type AdaptiveScoring struct {
	// Eps is the per-node additive accuracy driving the score intervals;
	// Delta the failure-probability budget, union-bounded across rounds,
	// candidates and nodes. Both must be in (0, 1).
	Eps, Delta float64
	// MinWorlds is the first round's world target (rounded up to the
	// store's block size; <= 0 selects one block).
	MinWorlds int
}

// ProgressEvent reports one center selection of a min-partial run to the
// PartialParams.Progress hook — the unit of progress the server streams to
// clients of a progressive clustering request.
type ProgressEvent struct {
	// Centers is the number of centers selected so far; K the target.
	Centers, K int
	// Covered is the number of nodes no longer uncovered; Nodes the total.
	Covered, Nodes int
	// OracleCalls is the cumulative per-center oracle answer count.
	OracleCalls int
	// ScoreWorlds is the world count the latest selection's scoring
	// reached: R on the fixed path, the racing stopping point when
	// adaptive scoring pruned early.
	ScoreWorlds int
}

// adaptiveSelect races the first tsize candidates of uncovered against
// each other and returns the winning candidate's index (in T order), its
// estimate vector refined to the full budget p.R, the world count the
// racing reached, and the per-center oracle answers consumed.
func adaptiveSelect(ctx context.Context, o conn.Oracle, uncovered []graph.NodeID, tsize int, selThresh float64, p PartialParams) (int, []float64, int, int, error) {
	a := p.Adaptive
	budget := p.R
	calls := 0
	n := o.NumNodes()

	// A single candidate needs no racing: fetch it at full precision.
	if tsize == 1 {
		est, err := fromCenterCtx(ctx, o, uncovered[0], p.DepthSel, budget)
		if err != nil {
			return 0, nil, 0, 0, err
		}
		return 0, est, budget, 1, nil
	}

	sched := conn.AdaptiveScheduleFor(o, budget, a.MinWorlds)
	// Confidence share per (round, candidate, node): the union bound over
	// everything ever compared keeps the total failure probability at
	// Delta.
	deltaQ := a.Delta / (float64(len(sched)) * float64(tsize) * float64(n))

	active := make([]int, tsize)
	for i := range active {
		active[i] = i
	}
	ests := make([][]float64, tsize)
	r := 0
	for si, rr := range sched {
		r = rr
		for base := 0; base < len(active); base += p.chunk() {
			end := base + p.chunk()
			if end > len(active) {
				end = len(active)
			}
			cands := make([]graph.NodeID, end-base)
			for j, ai := range active[base:end] {
				cands[j] = uncovered[ai]
			}
			batch, err := fromCentersCtx(ctx, o, cands, p.DepthSel, r)
			if err != nil {
				return 0, nil, 0, 0, err
			}
			for j, ai := range active[base:end] {
				ests[ai] = batch[j]
			}
		}
		calls += len(active)

		// Score interval per candidate: lo counts nodes certainly inside
		// the selection disk (estimate clears the threshold even after
		// subtracting the confidence half-width), hi counts nodes possibly
		// inside. A candidate whose hi is below the best lo cannot win.
		lo := make([]int, tsize)
		hi := make([]int, tsize)
		maxLo := -1
		maxHW := 0.0
		for _, ai := range active {
			est := ests[ai]
			cLo, cHi := 0, 0
			for _, u := range uncovered {
				hw := conn.HalfWidth(est[u], r, deltaQ)
				if hw > maxHW {
					maxHW = hw
				}
				if est[u]-hw >= selThresh {
					cLo++
				}
				if est[u]+hw >= selThresh {
					cHi++
				}
			}
			lo[ai], hi[ai] = cLo, cHi
			if cLo > maxLo {
				maxLo = cLo
			}
		}
		keep := active[:0]
		for _, ai := range active {
			if hi[ai] >= maxLo {
				keep = append(keep, ai)
			}
		}
		active = keep
		// Stop when a single survivor remains, when every per-node interval
		// has closed to Eps (surviving candidates are then ties within the
		// accuracy target — point argmax resolves them), or at the budget.
		if len(active) == 1 || maxHW <= a.Eps || si == len(sched)-1 {
			break
		}
	}

	// Winner among the survivors at precision r: point scores, argmax in T
	// order — the same tie-breaking rule as the fixed path.
	best, bestScore := -1, -1
	for _, ai := range active {
		score := 0
		for _, u := range uncovered {
			if ests[ai][u] >= selThresh {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = ai, score
		}
	}
	bestEst := ests[best]
	if r < budget {
		// Refine only the winner to the full budget: the removal step (and
		// the streaming argmax it feeds) keeps fixed-budget precision while
		// the losers stay at their pruning precision.
		var err error
		bestEst, err = fromCenterCtx(ctx, o, uncovered[best], p.DepthSel, budget)
		if err != nil {
			return 0, nil, 0, 0, err
		}
		calls++
	}
	return best, bestEst, r, calls, nil
}
