package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// adaptiveCoreGraph builds three well-separated high-probability cliques
// joined by weak bridges: the natural k=3 clustering is unambiguous, so
// candidate racing has clearly separated scores to prune on.
func adaptiveCoreGraph(t *testing.T) *graph.Uncertain {
	t.Helper()
	const per = 6
	var edges []graph.Edge
	for c := 0; c < 3; c++ {
		base := int32(c * per)
		for i := int32(0); i < per; i++ {
			for j := i + 1; j < per; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j, P: 0.85})
			}
		}
	}
	edges = append(edges,
		graph.Edge{U: 0, V: per, P: 0.05},
		graph.Edge{U: per, V: 2 * per, P: 0.05},
	)
	g, err := graph.FromEdges(3*per, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAdaptiveScoringProducesFullClustering(t *testing.T) {
	g := adaptiveCoreGraph(t)
	mc := conn.NewMonteCarlo(g, 7)
	opt := Options{
		Seed: 3, Alpha: 8,
		Adaptive: &AdaptiveScoring{Eps: 0.1, Delta: 0.1},
	}
	cl, st, err := MCPCtx(context.Background(), mc, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.IsFull() {
		t.Fatal("adaptive MCP did not return a full clustering")
	}
	if cl.K() != 3 {
		t.Fatalf("k = %d, want 3", cl.K())
	}
	if st.Invocations == 0 || st.OracleCalls == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
	// The three cliques must come out as the three clusters: every
	// within-clique pair shares a cluster.
	for c := 0; c < 3; c++ {
		for i := 1; i < 6; i++ {
			if cl.Assign[c*6+i] != cl.Assign[c*6] {
				t.Fatalf("clique %d split: assign=%v", c, cl.Assign)
			}
		}
	}
}

func TestAdaptiveScoringIsDeterministic(t *testing.T) {
	g := adaptiveCoreGraph(t)
	run := func() *Clustering {
		mc := conn.NewMonteCarlo(g, 7)
		cl, _, err := MCPCtx(context.Background(), mc, 3, Options{
			Seed: 11, Alpha: 8,
			Adaptive: &AdaptiveScoring{Eps: 0.1, Delta: 0.1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical adaptive clustering runs differ")
	}
}

func TestAdaptiveScoringQualityTracksFixedBudget(t *testing.T) {
	g := adaptiveCoreGraph(t)
	fixed, _, err := MCP(conn.NewMonteCarlo(g, 7), 3, Options{Seed: 3, Alpha: 8})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, _, err := MCP(conn.NewMonteCarlo(g, 7), 3, Options{
		Seed: 3, Alpha: 8,
		Adaptive: &AdaptiveScoring{Eps: 0.1, Delta: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fixed.MinProb()-adaptive.MinProb()) > 0.15 {
		t.Fatalf("adaptive min-prob %v strays from fixed-budget %v", adaptive.MinProb(), fixed.MinProb())
	}
}

func TestAdaptiveSelectPrunesEarly(t *testing.T) {
	g := adaptiveCoreGraph(t)
	mc := conn.NewMonteCarlo(g, 19)
	n := g.NumNodes()
	uncovered := make([]graph.NodeID, n)
	for i := range uncovered {
		uncovered[i] = graph.NodeID(i)
	}
	p := PartialParams{
		K: 3, Q: 0.5, QBar: 0.5, R: 1 << 14,
		Depth: conn.Unlimited, DepthSel: conn.Unlimited,
		Adaptive: &AdaptiveScoring{Eps: 0.1, Delta: 0.1},
	}
	// Candidates 0..3: three clique members (ties, score ~6) and one that
	// is strictly inside the same clique. Racing must stop well before the
	// 16384-world budget: the score intervals separate or close to eps at
	// a few hundred worlds.
	best, est, worlds, calls, err := adaptiveSelect(context.Background(), mc, uncovered, 4, (1-0.05)*0.5, p)
	if err != nil {
		t.Fatal(err)
	}
	if worlds >= p.R {
		t.Fatalf("racing consumed the full budget (%d worlds)", worlds)
	}
	if best < 0 || best >= 4 {
		t.Fatalf("best = %d out of candidate range", best)
	}
	if len(est) != n {
		t.Fatalf("estimate vector has %d entries, want %d", len(est), n)
	}
	if calls == 0 {
		t.Fatal("no oracle calls accounted")
	}
	// The winner's vector is refined to the full budget: bit-identical to
	// a fixed-budget query for the same center.
	want := conn.NewMonteCarlo(g, 19).FromCenter(uncovered[best], conn.Unlimited, p.R)
	if !reflect.DeepEqual(est, want) {
		t.Fatal("winner's estimate vector not refined to the full budget")
	}
}

func TestAdaptiveRejectsBadParams(t *testing.T) {
	g := adaptiveCoreGraph(t)
	mc := conn.NewMonteCarlo(g, 7)
	rnd := rng.NewXoshiro256(1)
	_, err := MinPartialCtx(context.Background(), mc, rnd, PartialParams{
		K: 2, Q: 0.5, QBar: 0.5, R: 256,
		Depth: conn.Unlimited, DepthSel: conn.Unlimited,
		Adaptive: &AdaptiveScoring{Eps: math.NaN(), Delta: 0.1},
	})
	if err == nil {
		t.Fatal("NaN adaptive eps accepted")
	}
}

func TestProgressEventsReportSelections(t *testing.T) {
	g := adaptiveCoreGraph(t)
	mc := conn.NewMonteCarlo(g, 7)
	var events []ProgressEvent
	cl, _, err := MCPCtx(context.Background(), mc, 3, Options{
		Seed: 3, Alpha: 8,
		Progress: func(ev ProgressEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.IsFull() {
		t.Fatal("not a full clustering")
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	for _, ev := range events {
		if ev.K < 1 || ev.Centers < 1 || ev.Centers > ev.K {
			t.Fatalf("implausible event %+v", ev)
		}
		if ev.Covered < 0 || ev.Covered > ev.Nodes {
			t.Fatalf("implausible coverage %+v", ev)
		}
		if ev.ScoreWorlds <= 0 {
			t.Fatalf("missing score worlds %+v", ev)
		}
	}
}
