package core

import (
	"testing"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// communityGraph builds c dense communities of size s joined by weak
// bridges — enough structure that MCP/ACP make nontrivial choices.
func communityGraph(t *testing.T, c, s int, seed uint64) *graph.Uncertain {
	t.Helper()
	x := rng.NewXoshiro256(seed)
	b := graph.NewBuilder(c * s)
	for ci := 0; ci < c; ci++ {
		base := int32(ci * s)
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				if x.Float64() < 0.5 {
					if err := b.AddEdge(base+int32(i), base+int32(j), 0.6+0.3*x.Float64()); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if ci > 0 {
			if err := b.AddEdge(base-int32(s), base, 0.15); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestClusteringDeterministicAcrossParallelism runs MCP and ACP with the
// worker pool forced to 1, 4 and 16 and requires bit-identical clusterings:
// the concurrent oracle engine and the candidate fan-out must not leak the
// worker count into results. Alpha > 1 makes the candidate fan-out real.
func TestClusteringDeterministicAcrossParallelism(t *testing.T) {
	g := communityGraph(t, 4, 12, 9)
	sched := conn.Schedule{Min: 32, Max: 256, Coef: 8}

	for _, algo := range []string{"mcp", "acp", "acp-geometric"} {
		var ref *Clustering
		for _, par := range []int{1, 4, 16} {
			oracle := conn.NewMonteCarlo(g, 77)
			oracle.SetParallelism(par)
			opt := Options{Seed: 5, Alpha: 4, Schedule: sched, Parallelism: par}
			var (
				cl  *Clustering
				err error
			)
			switch algo {
			case "mcp":
				cl, _, err = MCP(oracle, 4, opt)
			case "acp":
				cl, _, err = ACP(oracle, 4, opt)
			case "acp-geometric":
				opt.Geometric = true
				cl, _, err = ACP(oracle, 4, opt)
			}
			if err != nil {
				t.Fatalf("%s par=%d: %v", algo, par, err)
			}
			if ref == nil {
				ref = cl
				continue
			}
			if len(cl.Centers) != len(ref.Centers) {
				t.Fatalf("%s par=%d: %d centers != %d", algo, par, len(cl.Centers), len(ref.Centers))
			}
			for i := range ref.Centers {
				if cl.Centers[i] != ref.Centers[i] {
					t.Fatalf("%s par=%d: center %d is node %d, serial picked %d",
						algo, par, i, cl.Centers[i], ref.Centers[i])
				}
			}
			for u := range ref.Assign {
				if cl.Assign[u] != ref.Assign[u] || cl.Prob[u] != ref.Prob[u] {
					t.Fatalf("%s par=%d node %d: (%d, %v) != serial (%d, %v)",
						algo, par, u, cl.Assign[u], cl.Prob[u], ref.Assign[u], ref.Prob[u])
				}
			}
		}
	}
}
