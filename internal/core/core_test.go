package core

import (
	"math"
	"testing"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathGraph(t *testing.T, n int, p float64) *graph.Uncertain {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1), P: p})
	}
	return mustGraph(t, n, edges)
}

// twoCliques builds two dense high-probability blobs joined by one weak
// edge: the canonical 2-clusterable uncertain graph.
func twoCliques(t *testing.T, size int, pIn, pBridge float64) *graph.Uncertain {
	t.Helper()
	var edges []graph.Edge
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, graph.Edge{U: int32(base + i), V: int32(base + j), P: pIn})
			}
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: int32(size), P: pBridge})
	return mustGraph(t, 2*size, edges)
}

func exactOracle(t *testing.T, g *graph.Uncertain) *conn.Exact {
	t.Helper()
	ex, err := conn.NewExact(g)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// bruteForceOpt computes p_opt-min(k) and p_opt-avg(k) exactly on a tiny
// graph: for every k-subset of centers, assign each node to its
// best-connected center; the optimal min (avg) over subsets is the optimum.
func bruteForceOpt(ex *conn.Exact, n, k, depth int) (optMin, optAvg float64) {
	from := make([][]float64, n)
	for u := 0; u < n; u++ {
		from[u] = ex.FromCenter(int32(u), depth, 0)
	}
	centers := make([]int, k)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == k {
			minP, sumP := 1.0, 0.0
			for u := 0; u < n; u++ {
				best := 0.0
				for _, c := range centers {
					if from[c][u] > best {
						best = from[c][u]
					}
				}
				if best < minP {
					minP = best
				}
				sumP += best
			}
			if minP > optMin {
				optMin = minP
			}
			if avg := sumP / float64(n); avg > optAvg {
				optAvg = avg
			}
			return
		}
		for c := start; c < n; c++ {
			centers[idx] = c
			rec(c+1, idx+1)
		}
	}
	rec(0, 0)
	return optMin, optAvg
}

func TestMinPartialInvariants(t *testing.T) {
	g := twoCliques(t, 3, 0.9, 0.2)
	ex := exactOracle(t, g)
	rnd := rng.NewXoshiro256(1)
	for _, q := range []float64{0.9, 0.5, 0.1} {
		res := MinPartial(ex, rnd, PartialParams{
			K: 2, Q: q, QBar: q, Alpha: 1, Depth: conn.Unlimited, DepthSel: conn.Unlimited,
		})
		cl := res.Clustering
		if msg := cl.Validate(); msg != "" {
			t.Fatalf("q=%v: invalid clustering: %s", q, msg)
		}
		if cl.K() != 2 {
			t.Fatalf("q=%v: K = %d, want 2", q, cl.K())
		}
		// Every covered node's probability must meet the threshold.
		for u, a := range cl.Assign {
			if a == Unassigned {
				continue
			}
			if cl.Prob[u] < q && cl.Prob[u] != 1 { // centers have prob 1
				// Prob is the best-center estimate, which is >= the
				// remover's estimate >= q (eps = 0 here).
				t.Fatalf("q=%v: node %d covered with prob %v < q", q, u, cl.Prob[u])
			}
		}
	}
}

func TestMinPartialCoversMaximally(t *testing.T) {
	// On two 0.9-cliques with a 0.2 bridge, threshold 0.5 with k=2 must
	// cover everything (each clique is internally well connected).
	g := twoCliques(t, 3, 0.9, 0.2)
	ex := exactOracle(t, g)
	rnd := rng.NewXoshiro256(2)
	res := MinPartial(ex, rnd, PartialParams{
		K: 2, Q: 0.5, QBar: 0.5, Alpha: -1, Depth: conn.Unlimited, DepthSel: conn.Unlimited,
	})
	if !res.Clustering.IsFull() {
		t.Fatalf("expected full coverage, covered %d/%d", res.Clustering.Covered(), res.Clustering.N())
	}
}

func TestMinPartialHighThresholdLeavesUncovered(t *testing.T) {
	// Threshold 0.99 on a 0.5-path: only the centers themselves covered.
	g := pathGraph(t, 6, 0.5)
	ex := exactOracle(t, g)
	rnd := rng.NewXoshiro256(3)
	res := MinPartial(ex, rnd, PartialParams{
		K: 2, Q: 0.99, QBar: 0.99, Alpha: 1, Depth: conn.Unlimited, DepthSel: conn.Unlimited,
	})
	if got := res.Clustering.Covered(); got != 2 {
		t.Fatalf("covered %d nodes, want exactly the 2 centers", got)
	}
}

func TestMinPartialKClampedToN(t *testing.T) {
	g := pathGraph(t, 3, 0.5)
	ex := exactOracle(t, g)
	rnd := rng.NewXoshiro256(4)
	res := MinPartial(ex, rnd, PartialParams{
		K: 10, Q: 0.5, QBar: 0.5, Alpha: 1, Depth: conn.Unlimited, DepthSel: conn.Unlimited,
	})
	if res.Clustering.K() > 3 {
		t.Fatalf("K = %d exceeds node count", res.Clustering.K())
	}
	if msg := res.Clustering.Validate(); msg != "" {
		t.Fatal(msg)
	}
}

func TestMinPartialPadsCentersWhenCoverageEarly(t *testing.T) {
	// A 4-clique of certain edges is fully covered by one center; with k=3
	// the algorithm must still return 3 distinct centers.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j), P: 1})
		}
	}
	g := mustGraph(t, 4, edges)
	ex := exactOracle(t, g)
	rnd := rng.NewXoshiro256(5)
	res := MinPartial(ex, rnd, PartialParams{
		K: 3, Q: 0.9, QBar: 0.9, Alpha: 1, Depth: conn.Unlimited, DepthSel: conn.Unlimited,
	})
	cl := res.Clustering
	if cl.K() != 3 {
		t.Fatalf("K = %d, want 3", cl.K())
	}
	seen := map[graph.NodeID]bool{}
	for _, c := range cl.Centers {
		if seen[c] {
			t.Fatalf("duplicate center %d", c)
		}
		seen[c] = true
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
	if !cl.IsFull() {
		t.Fatal("clique with p=1 must be fully covered")
	}
}

// TestLemma2FullCoverage: for q <= p_opt-min(k)^2, min-partial covers all
// nodes (Lemma 2), regardless of candidate choices.
func TestLemma2FullCoverage(t *testing.T) {
	graphs := []*graph.Uncertain{
		twoCliques(t, 3, 0.8, 0.3),
		pathGraph(t, 7, 0.7),
		mustGraph(t, 5, []graph.Edge{
			{U: 0, V: 1, P: 0.6}, {U: 1, V: 2, P: 0.5}, {U: 2, V: 3, P: 0.9},
			{U: 3, V: 4, P: 0.4}, {U: 4, V: 0, P: 0.8},
		}),
	}
	for gi, g := range graphs {
		ex := exactOracle(t, g)
		for _, k := range []int{1, 2, 3} {
			optMin, _ := bruteForceOpt(ex, g.NumNodes(), k, conn.Unlimited)
			q := optMin * optMin
			for seed := uint64(0); seed < 5; seed++ {
				rnd := rng.NewXoshiro256(seed)
				res := MinPartial(ex, rnd, PartialParams{
					K: k, Q: q, QBar: q, Alpha: 1, Depth: conn.Unlimited, DepthSel: conn.Unlimited,
				})
				if !res.Clustering.IsFull() {
					t.Fatalf("graph %d k=%d seed %d: q = p_opt^2 = %v left %d nodes uncovered (Lemma 2)",
						gi, k, seed, q, res.Clustering.N()-res.Clustering.Covered())
				}
			}
		}
	}
}

// TestMCPApproximationBound: the returned clustering satisfies
// min-prob >= (1-eps) * (1-gamma) * p_opt-min(k)^2 with the exact oracle
// (binary-search variant; the geometric variant satisfies the Theorem 3
// bound (1-eps) * p_opt^2 / (1+gamma)).
func TestMCPApproximationBound(t *testing.T) {
	graphs := []*graph.Uncertain{
		twoCliques(t, 3, 0.8, 0.3),
		pathGraph(t, 6, 0.6),
		mustGraph(t, 5, []graph.Edge{
			{U: 0, V: 1, P: 0.6}, {U: 1, V: 2, P: 0.5}, {U: 2, V: 3, P: 0.9},
			{U: 3, V: 4, P: 0.4}, {U: 4, V: 0, P: 0.8},
		}),
	}
	const eps, gamma = 0.01, 0.1
	for gi, g := range graphs {
		ex := exactOracle(t, g)
		for _, k := range []int{1, 2, 3} {
			optMin, _ := bruteForceOpt(ex, g.NumNodes(), k, conn.Unlimited)
			for _, geometric := range []bool{false, true} {
				cl, st, err := MCP(ex, k, Options{Eps: eps, Gamma: gamma, Geometric: geometric, Seed: 7})
				if err != nil {
					t.Fatalf("graph %d k=%d: %v", gi, k, err)
				}
				if !cl.IsFull() {
					t.Fatalf("graph %d k=%d: MCP returned a partial clustering", gi, k)
				}
				if msg := cl.Validate(); msg != "" {
					t.Fatalf("graph %d k=%d: %s", gi, k, msg)
				}
				bound := (1 - eps) * optMin * optMin
				if geometric {
					bound /= 1 + gamma
				} else {
					bound *= 1 - gamma
				}
				if cl.MinProb() < bound-1e-9 {
					t.Fatalf("graph %d k=%d geometric=%v: min-prob %v < bound %v (p_opt %v, finalQ %v)",
						gi, k, geometric, cl.MinProb(), bound, optMin, st.FinalQ)
				}
			}
		}
	}
}

// TestACPApproximationBound: Theorem 4/8 bound (very loose, but must hold),
// plus structural checks.
func TestACPApproximationBound(t *testing.T) {
	graphs := []*graph.Uncertain{
		twoCliques(t, 3, 0.8, 0.3),
		pathGraph(t, 6, 0.6),
	}
	const eps, gamma = 0.01, 0.1
	for gi, g := range graphs {
		ex := exactOracle(t, g)
		n := g.NumNodes()
		for _, k := range []int{1, 2, 3} {
			_, optAvg := bruteForceOpt(ex, n, k, conn.Unlimited)
			for _, geometric := range []bool{false, true} {
				cl, _, err := ACP(ex, k, Options{Eps: eps, Gamma: gamma, Geometric: geometric, Seed: 11})
				if err != nil {
					t.Fatalf("graph %d k=%d: %v", gi, k, err)
				}
				if !cl.IsFull() {
					t.Fatalf("graph %d k=%d: ACP returned a partial clustering", gi, k)
				}
				if msg := cl.Validate(); msg != "" {
					t.Fatalf("graph %d k=%d: %s", gi, k, msg)
				}
				x := (1 - eps) * optAvg / ((1 + gamma) * conn.Harmonic(n))
				bound := x * x * x
				if cl.AvgProb() < bound-1e-9 {
					t.Fatalf("graph %d k=%d geometric=%v: avg-prob %v < bound %v",
						gi, k, geometric, cl.AvgProb(), bound)
				}
			}
		}
	}
}

// TestACPQualityOnSeparableGraph: on two cliques, ACP with k=2 should find
// an average connection probability close to optimal, far beyond the loose
// theoretical bound.
func TestACPQualityOnSeparableGraph(t *testing.T) {
	g := twoCliques(t, 3, 0.9, 0.1)
	ex := exactOracle(t, g)
	_, optAvg := bruteForceOpt(ex, g.NumNodes(), 2, conn.Unlimited)
	cl, _, err := ACP(ex, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cl.AvgProb() < 0.8*optAvg {
		t.Fatalf("ACP avg-prob %v far below optimum %v", cl.AvgProb(), optAvg)
	}
}

func TestMCPSeparatesCliques(t *testing.T) {
	// MCP with k=2 must put the two cliques in different clusters.
	g := twoCliques(t, 4, 0.9, 0.05)
	mc := conn.NewMonteCarlo(g, 42)
	cl, _, err := MCP(mc, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u < 4; u++ {
		if cl.Assign[u] != cl.Assign[0] {
			t.Fatalf("clique A split: node %d in cluster %d, node 0 in %d", u, cl.Assign[u], cl.Assign[0])
		}
	}
	for u := 5; u < 8; u++ {
		if cl.Assign[u] != cl.Assign[4] {
			t.Fatalf("clique B split: node %d in cluster %d, node 4 in %d", u, cl.Assign[u], cl.Assign[4])
		}
	}
	if cl.Assign[0] == cl.Assign[4] {
		t.Fatal("the two cliques ended up in the same cluster")
	}
}

func TestMCPRejectsBadK(t *testing.T) {
	g := pathGraph(t, 4, 0.5)
	ex := exactOracle(t, g)
	if _, _, err := MCP(ex, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := MCP(ex, 4, Options{}); err == nil {
		t.Fatal("k=n accepted")
	}
	if _, _, err := ACP(ex, 0, Options{}); err == nil {
		t.Fatal("ACP k=0 accepted")
	}
}

func TestMCPDisconnectedNeedsEnoughClusters(t *testing.T) {
	// Two disconnected components, k=1: no full clustering exists above any
	// positive floor, so MCP must report ErrNoClustering.
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1, P: 0.9}, {U: 2, V: 3, P: 0.9}})
	ex := exactOracle(t, g)
	_, _, err := MCP(ex, 1, Options{})
	if err != ErrNoClustering {
		t.Fatalf("err = %v, want ErrNoClustering", err)
	}
	// With k=2 it succeeds.
	cl, _, err := MCP(ex, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.IsFull() {
		t.Fatal("k=2 on two components must cover everything")
	}
}

func TestMCPDeterministicPerSeed(t *testing.T) {
	g := twoCliques(t, 4, 0.8, 0.2)
	run := func() *Clustering {
		mc := conn.NewMonteCarlo(g, 77)
		cl, _, err := MCP(mc, 2, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	a, b := run(), run()
	for u := range a.Assign {
		if a.Assign[u] != b.Assign[u] {
			t.Fatalf("same seeds produced different clusterings at node %d", u)
		}
	}
}

func TestMCPDepthLimitedPath(t *testing.T) {
	// Path of 5 certain edges, k=2, depth 1: every node must be adjacent to
	// its center, which is only possible if coverage fails for large
	// thresholds... with p=1 and d=1, a 2-clustering covering all 5 nodes
	// of a path does not exist (a center covers at most itself and its
	// neighbors: two centers cover at most 6 nodes but the path needs
	// specific placement: centers at 1 and 3 cover {0,1,2} and {2,3,4} —
	// that IS full coverage).
	g := pathGraph(t, 5, 1.0)
	ex := exactOracle(t, g)
	cl, _, err := MCP(ex, 2, Options{Depth: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.IsFull() {
		t.Fatal("depth-1 2-clustering of a 5-path with certain edges exists (centers 1,3)")
	}
	// Every node must be within 1 hop of its center.
	hops := map[graph.NodeID][]int32{}
	for _, c := range cl.Centers {
		hops[c] = g.BFSAll(c)
	}
	for u, a := range cl.Assign {
		c := cl.Centers[a]
		if hops[c][u] > 1 {
			t.Fatalf("node %d at %d hops from its center %d (depth limit 1)", u, hops[c][u], c)
		}
	}
}

func TestMCPDepthLimitedInfeasible(t *testing.T) {
	// Path of 7 certain edges, k=2, depth 1: two depth-1 stars cover at
	// most 6 nodes, so no full clustering exists -> ErrNoClustering.
	g := pathGraph(t, 7, 1.0)
	ex := exactOracle(t, g)
	if _, _, err := MCP(ex, 2, Options{Depth: 1, Seed: 2}); err != ErrNoClustering {
		t.Fatalf("err = %v, want ErrNoClustering", err)
	}
}

// TestMCPDepthBoundTheorem5: min-prob_d >= (1-eps)(1-gamma) *
// p_opt-min(k, floor(d/2))^2 with the exact oracle.
func TestMCPDepthBoundTheorem5(t *testing.T) {
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1, P: 0.9}, {U: 1, V: 2, P: 0.8}, {U: 2, V: 3, P: 0.7},
		{U: 3, V: 4, P: 0.9}, {U: 4, V: 5, P: 0.8}, {U: 5, V: 0, P: 0.6},
	})
	ex := exactOracle(t, g)
	const eps, gamma = 0.01, 0.1
	for _, d := range []int{2, 4} {
		for _, k := range []int{2, 3} {
			optMinHalf, _ := bruteForceOpt(ex, g.NumNodes(), k, d/2)
			cl, _, err := MCP(ex, k, Options{Depth: d, Eps: eps, Gamma: gamma, Seed: 9})
			if err != nil {
				t.Fatalf("d=%d k=%d: %v", d, k, err)
			}
			bound := (1 - eps) * (1 - gamma) * optMinHalf * optMinHalf
			if cl.MinProb() < bound-1e-9 {
				t.Fatalf("d=%d k=%d: min-prob %v < Theorem 5 bound %v", d, k, cl.MinProb(), bound)
			}
		}
	}
}

func TestACPDepthLimited(t *testing.T) {
	g := pathGraph(t, 5, 1.0)
	ex := exactOracle(t, g)
	cl, _, err := ACP(ex, 2, Options{Depth: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
	// With certain edges, the best depth-1 2-clustering of a 5-path covers
	// all nodes (centers 1 and 3): avg-prob = 1.
	if cl.AvgProb() < 0.99 {
		t.Fatalf("avg-prob %v, want ~1 for certain 5-path with centers 1,3", cl.AvgProb())
	}
}

func TestACPTheoreticalDepthSel(t *testing.T) {
	g := pathGraph(t, 6, 0.9)
	ex := exactOracle(t, g)
	cl, _, err := ACP(ex, 2, Options{Depth: 3, TheoreticalDepthSel: true, Geometric: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
	if !cl.IsFull() {
		t.Fatal("ACP must return a full clustering")
	}
}

func TestMCPMonteCarloOnPath(t *testing.T) {
	// End-to-end with the Monte Carlo oracle: 8-path with p=0.9, k=2.
	// Optimal 2-clustering centers ~2 and ~5 give min-prob 0.9^2 = 0.81;
	// the guarantee is min-prob >= ~(1-gamma)(0.81)^2 ~ 0.59, but in
	// practice MCP lands near the optimum. Assert the guarantee.
	g := pathGraph(t, 8, 0.9)
	mc := conn.NewMonteCarlo(g, 13)
	cl, _, err := MCP(mc, 2, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if cl.MinProb() < 0.55 {
		t.Fatalf("min-prob %v below guarantee on easy path", cl.MinProb())
	}
}

func TestStatsPopulated(t *testing.T) {
	g := twoCliques(t, 3, 0.8, 0.2)
	mc := conn.NewMonteCarlo(g, 5)
	_, st, err := MCP(mc, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Invocations < 1 || st.OracleCalls < 1 || st.MaxSamples < 1 || st.FinalQ <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestClusteringHelpers(t *testing.T) {
	cl := &Clustering{
		Centers: []graph.NodeID{0, 3},
		Assign:  []int32{0, 0, Unassigned, 1},
		Prob:    []float64{1, 0.5, 0, 1},
	}
	if cl.K() != 2 || cl.N() != 4 {
		t.Fatalf("K/N = %d/%d", cl.K(), cl.N())
	}
	if cl.Covered() != 3 || cl.IsFull() {
		t.Fatalf("Covered = %d, IsFull = %v", cl.Covered(), cl.IsFull())
	}
	if cl.MinProb() != 0.5 {
		t.Fatalf("MinProb = %v, want 0.5 (uncovered excluded)", cl.MinProb())
	}
	if got, want := cl.AvgProb(), 2.5/4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("AvgProb = %v, want %v", got, want)
	}
	cls := cl.Clusters()
	if len(cls) != 2 || len(cls[0]) != 2 || len(cls[1]) != 1 {
		t.Fatalf("Clusters = %v", cls)
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
	// Completion attaches node 2 to its best center.
	cl2 := cl.Clone()
	cl2.Complete([]int32{0, 0, 1, 1}, []float64{1, 0.5, 0.25, 1})
	if cl2.Assign[2] != 1 || cl2.Prob[2] != 0.25 {
		t.Fatalf("Complete: node 2 -> cluster %d prob %v", cl2.Assign[2], cl2.Prob[2])
	}
	if !cl2.IsFull() {
		t.Fatal("completed clustering must be full")
	}
	// Clone independence.
	cl2.Assign[0] = 1
	if cl.Assign[0] != 0 {
		t.Fatal("Clone shares memory with the original")
	}
}

func TestValidateCatchesBrokenClusterings(t *testing.T) {
	bad := &Clustering{
		Centers: []graph.NodeID{0},
		Assign:  []int32{0, 5},
		Prob:    []float64{1, 0.5},
	}
	if bad.Validate() == "" {
		t.Fatal("out-of-range cluster index not caught")
	}
	bad2 := &Clustering{
		Centers: []graph.NodeID{0, 1},
		Assign:  []int32{1, 1}, // center 0 sits in cluster 1
		Prob:    []float64{1, 1},
	}
	if bad2.Validate() == "" {
		t.Fatal("center assigned to foreign cluster not caught")
	}
	bad3 := &Clustering{
		Centers: []graph.NodeID{0},
		Assign:  []int32{0, Unassigned},
		Prob:    []float64{1, 0.3},
	}
	if bad3.Validate() == "" {
		t.Fatal("unassigned node with nonzero prob not caught")
	}
}

func TestEmptyAndDegenerateClusterings(t *testing.T) {
	empty := &Clustering{}
	if empty.MinProb() != 0 || empty.AvgProb() != 0 {
		t.Fatal("empty clustering metrics should be 0")
	}
	allUnassigned := &Clustering{Centers: nil, Assign: []int32{Unassigned, Unassigned}, Prob: []float64{0, 0}}
	if allUnassigned.MinProb() != 0 {
		t.Fatal("MinProb of fully-unassigned clustering should be 0")
	}
}

func TestMCPKEqualsNMinusOne(t *testing.T) {
	g := pathGraph(t, 4, 0.5)
	ex := exactOracle(t, g)
	cl, _, err := MCP(ex, 3, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if cl.K() != 3 || !cl.IsFull() {
		t.Fatalf("k=n-1: K=%d full=%v", cl.K(), cl.IsFull())
	}
	if msg := cl.Validate(); msg != "" {
		t.Fatal(msg)
	}
	// With 3 centers among 4 path nodes, min-prob is at least 0.5 * slack.
	if cl.MinProb() < 0.4 {
		t.Fatalf("min-prob %v too low for k=3 on a 4-path", cl.MinProb())
	}
}

func TestAlphaGreaterThanOneImproves(t *testing.T) {
	// Larger alpha considers more candidates; the paper reports similar
	// scores with lower variance. Here: both must produce valid, full
	// clusterings of the clique pair.
	g := twoCliques(t, 4, 0.9, 0.1)
	for _, alpha := range []int{1, 3, -1} {
		mc := conn.NewMonteCarlo(g, 21)
		cl, _, err := MCP(mc, 2, Options{Alpha: alpha, Seed: 17})
		if err != nil {
			t.Fatalf("alpha=%d: %v", alpha, err)
		}
		if !cl.IsFull() {
			t.Fatalf("alpha=%d: partial clustering", alpha)
		}
		if msg := cl.Validate(); msg != "" {
			t.Fatalf("alpha=%d: %s", alpha, msg)
		}
	}
}

func TestGeometricScheduleMoreInvocationsThanAccelerated(t *testing.T) {
	// The accelerated schedule exists to cut invocations on low-probability
	// graphs; verify it does at least as few min-partial runs.
	g := pathGraph(t, 10, 0.3) // pmin ~ 0.3^9: deep geometric descent
	mcA := conn.NewMonteCarlo(g, 31)
	_, stA, err := MCP(mcA, 2, Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	mcG := conn.NewMonteCarlo(g, 31)
	_, stG, err := MCP(mcG, 2, Options{Seed: 19, Geometric: true})
	if err != nil {
		t.Fatal(err)
	}
	if stA.Invocations > stG.Invocations {
		t.Fatalf("accelerated used %d invocations, geometric %d", stA.Invocations, stG.Invocations)
	}
}
