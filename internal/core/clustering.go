// Package core implements the paper's clustering algorithms for uncertain
// graphs: the partial-clustering primitive min-partial (Algorithm 1), the
// MCP algorithm (Algorithm 2), the ACP algorithm (Algorithm 3), and their
// depth-limited variants (Algorithm 4, Section 3.4), together with the
// progressive Monte Carlo sampling integration of Section 4 and the
// accelerated guessing schedule with final binary search described in
// Section 5.
package core

import (
	"math"

	"ucgraph/internal/graph"
)

// Unassigned marks a node not covered by any cluster in a partial
// clustering.
const Unassigned int32 = -1

// Clustering is a (possibly partial) k-clustering of the nodes 0..n-1: k
// centers and, for each node, the index of its cluster (or Unassigned) plus
// the estimated connection probability to that cluster's center.
type Clustering struct {
	// Centers holds the k cluster centers; cluster i is centered at
	// Centers[i].
	Centers []graph.NodeID
	// Assign maps each node to its cluster index in [0, k), or Unassigned.
	Assign []int32
	// Prob holds, for each assigned node u, the estimated (d-)connection
	// probability Pr(center(u) ~ u) used by the algorithm; 0 for unassigned
	// nodes.
	Prob []float64
}

// K returns the number of clusters.
func (c *Clustering) K() int { return len(c.Centers) }

// N returns the number of nodes.
func (c *Clustering) N() int { return len(c.Assign) }

// Covered returns the number of assigned nodes.
func (c *Clustering) Covered() int {
	n := 0
	for _, a := range c.Assign {
		if a != Unassigned {
			n++
		}
	}
	return n
}

// IsFull reports whether every node is assigned.
func (c *Clustering) IsFull() bool { return c.Covered() == c.N() }

// MinProb returns the minimum estimated connection probability over
// assigned nodes (Equation 1 on the partial clustering). It returns 0 for a
// clustering with unassigned nodes only, and 1 for an empty clustering.
func (c *Clustering) MinProb() float64 {
	min := 1.0
	seen := false
	for u, a := range c.Assign {
		if a == Unassigned {
			continue
		}
		seen = true
		if c.Prob[u] < min {
			min = c.Prob[u]
		}
	}
	if !seen {
		return 0
	}
	return min
}

// AvgProb returns (1/n) * sum of estimated connection probabilities, with
// unassigned nodes contributing 0 (Equation 2; the quantity phi of
// Algorithm 3).
func (c *Clustering) AvgProb() float64 {
	if len(c.Assign) == 0 {
		return 0
	}
	s := 0.0
	for u, a := range c.Assign {
		if a != Unassigned {
			s += c.Prob[u]
		}
	}
	return s / float64(len(c.Assign))
}

// Clusters materializes the clusters as node lists, indexed by cluster.
// Unassigned nodes appear in no list.
func (c *Clustering) Clusters() [][]graph.NodeID {
	out := make([][]graph.NodeID, len(c.Centers))
	for u, a := range c.Assign {
		if a != Unassigned {
			out[a] = append(out[a], graph.NodeID(u))
		}
	}
	return out
}

// Clone returns a deep copy.
func (c *Clustering) Clone() *Clustering {
	cp := &Clustering{
		Centers: make([]graph.NodeID, len(c.Centers)),
		Assign:  make([]int32, len(c.Assign)),
		Prob:    make([]float64, len(c.Prob)),
	}
	copy(cp.Centers, c.Centers)
	copy(cp.Assign, c.Assign)
	copy(cp.Prob, c.Prob)
	return cp
}

// Complete assigns every unassigned node to the cluster whose center has
// the highest estimated connection probability to it, per the streaming
// argmax recorded in bestIdx/bestProb (from the min-partial run). Nodes
// with zero probability to every center are attached to cluster 0, matching
// the "assign arbitrarily" completion of Algorithm 3 (their recorded
// probability stays 0 either way).
func (c *Clustering) Complete(bestIdx []int32, bestProb []float64) {
	for u, a := range c.Assign {
		if a != Unassigned {
			continue
		}
		if bestIdx[u] >= 0 {
			c.Assign[u] = bestIdx[u]
			c.Prob[u] = bestProb[u]
		} else {
			c.Assign[u] = 0
			c.Prob[u] = 0
		}
	}
}

// Validate checks structural invariants: every center is assigned to its
// own cluster with probability 1, cluster indices are in range, and
// probabilities are in [0, 1]. It returns a description of the first
// violation, or "" if none.
func (c *Clustering) Validate() string {
	k := len(c.Centers)
	for i, ctr := range c.Centers {
		if int(ctr) < 0 || int(ctr) >= len(c.Assign) {
			return "center out of range"
		}
		if c.Assign[ctr] != int32(i) {
			return "center not assigned to its own cluster"
		}
	}
	for u, a := range c.Assign {
		if a == Unassigned {
			if c.Prob[u] != 0 {
				return "unassigned node with nonzero probability"
			}
			continue
		}
		if int(a) < 0 || int(a) >= k {
			return "cluster index out of range"
		}
		if c.Prob[u] < 0 || c.Prob[u] > 1 {
			return "probability out of [0,1]"
		}
		if math.IsNaN(c.Prob[u]) {
			return "NaN probability"
		}
	}
	return ""
}
