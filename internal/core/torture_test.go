package core

// Torture tests: degenerate structures and extreme probabilities that the
// drivers must survive without panics, invalid clusterings or hangs.

import (
	"testing"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// run both drivers on g with every k in ks and check structural sanity.
func tortureRun(t *testing.T, g *graph.Uncertain, ks []int, expectErr bool) {
	t.Helper()
	sched := conn.Schedule{Min: 32, Max: 128, Coef: 4}
	for _, k := range ks {
		for _, algo := range []string{"mcp", "acp"} {
			oracle := conn.NewMonteCarlo(g, 1)
			var (
				cl  *Clustering
				err error
			)
			opt := Options{Seed: 1, Schedule: sched}
			if algo == "mcp" {
				cl, _, err = MCP(oracle, k, opt)
			} else {
				cl, _, err = ACP(oracle, k, opt)
			}
			if expectErr {
				if err == nil && algo == "mcp" {
					t.Fatalf("%s k=%d: expected an error", algo, k)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s k=%d: %v", algo, k, err)
			}
			if msg := cl.Validate(); msg != "" {
				t.Fatalf("%s k=%d: %s", algo, k, msg)
			}
			if cl.K() != k {
				t.Fatalf("%s k=%d: got %d clusters", algo, k, cl.K())
			}
		}
	}
}

func TestTortureSingleEdgeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite; run without -short")
	}
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1, P: 0.5}})
	tortureRun(t, g, []int{1}, false)
}

func TestTortureExtremeProbabilities(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite; run without -short")
	}
	// Mix of nearly-0 and nearly-1 probabilities.
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1, P: 1e-9}, {U: 1, V: 2, P: 1 - 1e-12},
		{U: 2, V: 3, P: 1e-9}, {U: 3, V: 4, P: 0.999999},
		{U: 4, V: 5, P: 1e-9}, {U: 5, V: 0, P: 1},
	})
	// The graph is topologically connected, so a 1-clustering exists but
	// only at probability ~1e-9, far below the floor: MCP must fail
	// cleanly. Larger k (3 strong pairs) must succeed.
	oracle := conn.NewMonteCarlo(g, 1)
	if _, _, err := MCP(oracle, 1, Options{Seed: 1, Schedule: conn.Schedule{Min: 32, Max: 128, Coef: 4}}); err != ErrNoClustering {
		t.Fatalf("k=1 on ~1e-9 connectivity: err = %v, want ErrNoClustering", err)
	}
	tortureRun(t, g, []int{3, 5}, false)
}

func TestTortureStar(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite; run without -short")
	}
	// Star with a certain hub: any k works.
	var edges []graph.Edge
	for i := 1; i < 12; i++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(i), P: 1})
	}
	g := mustGraph(t, 12, edges)
	tortureRun(t, g, []int{1, 2, 5, 11}, false)
}

func TestTortureCompleteGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite; run without -short")
	}
	var edges []graph.Edge
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j), P: 0.5})
		}
	}
	g := mustGraph(t, 9, edges)
	tortureRun(t, g, []int{1, 4, 8}, false)
}

func TestTortureManyComponents(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite; run without -short")
	}
	// 5 disconnected edges: k < 5 must fail for MCP, k = 5 succeeds.
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		edges = append(edges, graph.Edge{U: int32(2 * i), V: int32(2*i + 1), P: 0.9})
	}
	g := mustGraph(t, 10, edges)
	oracle := conn.NewMonteCarlo(g, 1)
	if _, _, err := MCP(oracle, 3, Options{Seed: 1, Schedule: conn.Schedule{Min: 32, Max: 128, Coef: 4}}); err != ErrNoClustering {
		t.Fatalf("k=3 on 5 components: err = %v, want ErrNoClustering", err)
	}
	tortureRun(t, g, []int{5, 7}, false)
}

func TestTortureAllCertain(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite; run without -short")
	}
	// Fully certain connected graph: p_min = 1 achievable for any k; the
	// driver must terminate at the very first guess.
	g := mustGraph(t, 8, []graph.Edge{
		{U: 0, V: 1, P: 1}, {U: 1, V: 2, P: 1}, {U: 2, V: 3, P: 1}, {U: 3, V: 4, P: 1},
		{U: 4, V: 5, P: 1}, {U: 5, V: 6, P: 1}, {U: 6, V: 7, P: 1}, {U: 7, V: 0, P: 1},
	})
	oracle := conn.NewMonteCarlo(g, 1)
	cl, st, err := MCP(oracle, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.MinProb() != 1 {
		t.Fatalf("min-prob = %v on a certain graph", cl.MinProb())
	}
	if st.Invocations > 3 {
		t.Fatalf("certain graph took %d invocations", st.Invocations)
	}
}

func TestTortureDepthZero(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite; run without -short")
	}
	// Depth 0 means only self-connections: no k < n clustering can cover
	// everything, so MCP must report failure (and not loop forever).
	g := pathGraph(t, 4, 0.9)
	oracle := conn.NewMonteCarlo(g, 1)
	// Depth: 0 is normalized to Unlimited by withDefaults (0 is the zero
	// value); use the explicit MinPartial to exercise a literal depth-0.
	rnd := rng.NewXoshiro256(1)
	res := MinPartial(oracle, rnd, PartialParams{
		K: 2, Q: 0.5, QBar: 0.5, Alpha: 1, Depth: 0, DepthSel: 0, R: 64,
	})
	if res.Clustering.Covered() != 2 {
		t.Fatalf("depth-0 covered %d nodes, want exactly the 2 centers", res.Clustering.Covered())
	}
}

func TestTortureHugeKRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite; run without -short")
	}
	g := pathGraph(t, 5, 0.5)
	oracle := conn.NewMonteCarlo(g, 1)
	if _, _, err := MCP(oracle, 5, Options{}); err == nil {
		t.Fatal("k = n accepted")
	}
	if _, _, err := ACP(oracle, 1000, Options{}); err == nil {
		t.Fatal("k >> n accepted")
	}
}

func TestTortureRepeatedRunsShareOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite; run without -short")
	}
	// Running MCP twice against one oracle must work (world cache reuse)
	// and produce identical results for identical options.
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1, P: 0.8}, {U: 1, V: 2, P: 0.8}, {U: 3, V: 4, P: 0.8},
		{U: 4, V: 5, P: 0.8}, {U: 2, V: 3, P: 0.1},
	})
	oracle := conn.NewMonteCarlo(g, 9)
	a, _, err := MCP(oracle, 2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := MCP(oracle, 2, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Assign {
		if a.Assign[u] != b.Assign[u] {
			t.Fatal("shared-oracle reruns diverged")
		}
	}
}
