package graph

import (
	"math"
	"testing"
	"testing/quick"

	"ucgraph/internal/rng"
)

// pathGraph returns the path 0-1-2-...-(n-1) with probability p on each edge.
func pathGraph(t *testing.T, n int, p float64) *Uncertain {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	mustAdd := func(u, v NodeID, p float64) {
		t.Helper()
		if err := b.AddEdge(u, v, p); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1, 0.5)
	mustAdd(1, 2, 0.9)
	mustAdd(2, 3, 1.0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if d := g.Degree(1); d != 2 {
		t.Fatalf("Degree(1) = %d, want 2", d)
	}
	if p, ok := g.HasEdge(0, 1); !ok || p != 0.5 {
		t.Fatalf("HasEdge(0,1) = %v,%v want 0.5,true", p, ok)
	}
	if p, ok := g.HasEdge(1, 0); !ok || p != 0.5 {
		t.Fatalf("HasEdge(1,0) = %v,%v want 0.5,true (undirected)", p, ok)
	}
	if _, ok := g.HasEdge(0, 3); ok {
		t.Fatal("HasEdge(0,3) reported a nonexistent edge")
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1, 0.5); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if err := b.AddEdge(0, 1, 1.5); err == nil {
		t.Fatal("p>1 accepted")
	}
	if err := b.AddEdge(0, 1, -0.2); err == nil {
		t.Fatal("negative p accepted")
	}
	if err := b.AddEdge(-1, 1, 0.2); err == nil {
		t.Fatal("negative node accepted")
	}
}

func TestBuilderDuplicateEdgeLastWins(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0, 0.8); err != nil { // same undirected edge
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after duplicate add", g.NumEdges())
	}
	if p, _ := g.HasEdge(0, 1); p != 0.8 {
		t.Fatalf("duplicate edge probability = %v, want last write 0.8", p)
	}
}

func TestBuildEmptyGraphFails(t *testing.T) {
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Fatal("building a 0-node graph must fail")
	}
}

func TestBuilderEnsureNodeGrows(t *testing.T) {
	b := NewBuilder(1)
	if err := b.AddEdge(0, 5, 0.4); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d, want 6", g.NumNodes())
	}
}

func TestEdgeIDsSharedBetweenDirections(t *testing.T) {
	g := pathGraph(t, 5, 0.7)
	// The edge ID seen from u and from v must be identical.
	type rec struct {
		id int32
		ok bool
	}
	ids := make(map[[2]NodeID]rec)
	for u := NodeID(0); u < 5; u++ {
		g.Neighbors(u, func(v NodeID, id int32, p float64) {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if r, ok := ids[[2]NodeID{a, b}]; ok && r.id != id {
				t.Fatalf("edge {%d,%d} has two ids %d and %d", a, b, r.id, id)
			}
			ids[[2]NodeID{a, b}] = rec{id: id, ok: true}
		})
	}
	if len(ids) != 4 {
		t.Fatalf("saw %d distinct edges, want 4", len(ids))
	}
}

func TestCoinThresholdMatchesRNG(t *testing.T) {
	g := pathGraph(t, 3, 0.25)
	for i := 0; i < g.NumEdges(); i++ {
		if g.CoinThreshold(int32(i)) != rng.CoinThreshold(0.25) {
			t.Fatal("CoinThreshold mismatch with rng.CoinThreshold")
		}
	}
}

func TestExpectedDegreeAndMaxDegree(t *testing.T) {
	b := NewBuilder(4)
	for _, e := range []Edge{{0, 1, 0.5}, {0, 2, 0.25}, {0, 3, 0.75}, {1, 2, 1}} {
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d := g.ExpectedDegree(0); math.Abs(d-1.5) > 1e-12 {
		t.Fatalf("ExpectedDegree(0) = %v, want 1.5", d)
	}
	if d := g.MaxDegree(); d != 3 {
		t.Fatalf("MaxDegree = %d, want 3", d)
	}
}

func TestBFSAllPath(t *testing.T) {
	g := pathGraph(t, 6, 0.5)
	dist := g.BFSAll(0)
	for i := 0; i < 6; i++ {
		if dist[i] != int32(i) {
			t.Fatalf("BFS dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
}

func TestBFSAllDisconnected(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3, 0.5); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFSAll(0)
	if dist[1] != 1 || dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("BFS on disconnected graph: %v", dist)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7)
	edges := []Edge{{0, 1, 0.5}, {1, 2, 0.5}, {3, 4, 0.5}}
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	labels, count := g.Components()
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("Components count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("nodes 0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Fatal("nodes 3,4 should share a component")
	}
	if labels[0] == labels[3] || labels[0] == labels[5] || labels[5] == labels[6] {
		t.Fatal("distinct components share a label")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(10)
	// Component A: 0..4 (size 5), component B: 5..7 (size 3), isolated 8, 9.
	for i := 0; i < 4; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(5, 6, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(6, 7, 0.5); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lc := g.LargestComponent()
	if len(lc) != 5 {
		t.Fatalf("LargestComponent size = %d, want 5", len(lc))
	}
	for i, u := range lc {
		if u != NodeID(i) {
			t.Fatalf("LargestComponent = %v, want [0 1 2 3 4]", lc)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(6)
	edges := []Edge{{0, 1, 0.1}, {1, 2, 0.2}, {2, 3, 0.3}, {3, 4, 0.4}, {4, 5, 0.5}, {1, 4, 0.9}}
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, newToOld, err := g.InducedSubgraph([]NodeID{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3", sub.NumNodes())
	}
	// Edges inside {1,2,4}: {1,2} and {1,4}.
	if sub.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d, want 2", sub.NumEdges())
	}
	if newToOld[0] != 1 || newToOld[1] != 2 || newToOld[2] != 4 {
		t.Fatalf("newToOld = %v", newToOld)
	}
	if p, ok := sub.HasEdge(0, 2); !ok || p != 0.9 { // old {1,4}
		t.Fatalf("subgraph edge {0,2} = %v,%v want 0.9,true", p, ok)
	}
}

func TestDijkstraPathProbabilities(t *testing.T) {
	// On a path with probabilities p1, p2, ..., the Dijkstra distance is
	// sum of -ln(pi) and exp(-dist) recovers the path probability product.
	b := NewBuilder(4)
	ps := []float64{0.5, 0.25, 0.8}
	for i, p := range ps {
		if err := b.AddEdge(NodeID(i), NodeID(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dist := g.Dijkstra(0)
	wantProd := 1.0
	for i, p := range ps {
		wantProd *= p
		if got := math.Exp(-dist[i+1]); math.Abs(got-wantProd) > 1e-12 {
			t.Fatalf("exp(-dist[%d]) = %v, want %v", i+1, got, wantProd)
		}
	}
}

func TestDijkstraPicksMostProbablePath(t *testing.T) {
	// Two routes 0->3: direct edge p=0.1 vs path 0-1-2-3 with 0.9 each
	// (product 0.729 > 0.1), so Dijkstra must choose the longer route.
	b := NewBuilder(4)
	for _, e := range []Edge{{0, 3, 0.1}, {0, 1, 0.9}, {1, 2, 0.9}, {2, 3, 0.9}} {
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dist := g.Dijkstra(0)
	if got := math.Exp(-dist[3]); math.Abs(got-0.729) > 1e-12 {
		t.Fatalf("best path probability to 3 = %v, want 0.729", got)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dist := g.Dijkstra(0)
	if !math.IsInf(dist[2], 1) {
		t.Fatalf("dist to unreachable node = %v, want +Inf", dist[2])
	}
}

func TestDijkstraFromMultiSource(t *testing.T) {
	g := pathGraph(t, 7, 0.5)
	dist, owner := g.DijkstraFrom([]NodeID{0, 6})
	if owner[1] != 0 || owner[5] != 1 {
		t.Fatalf("owner = %v, want node1->src0, node5->src1", owner)
	}
	if dist[0] != 0 || dist[6] != 0 {
		t.Fatal("sources must have distance 0")
	}
	// Node 3 is equidistant; its owner must be one of the two sources.
	if owner[3] != 0 && owner[3] != 1 {
		t.Fatalf("owner[3] = %d", owner[3])
	}
}

func TestUnionFindBasic(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Connected(0, 1) {
		t.Fatal("fresh union-find has connected elements")
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union reported no merge")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeated union reported a merge")
	}
	if !uf.Connected(0, 1) {
		t.Fatal("union did not connect")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if !uf.Connected(1, 2) {
		t.Fatal("transitive connectivity broken")
	}
	if uf.SetSize(1) != 4 {
		t.Fatalf("SetSize = %d, want 4", uf.SetSize(1))
	}
	if uf.Connected(0, 4) {
		t.Fatal("element 4 must stay separate")
	}
}

func TestUnionFindReset(t *testing.T) {
	uf := NewUnionFind(4)
	uf.Union(0, 1)
	uf.Union(2, 3)
	uf.Reset()
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if uf.Connected(i, j) {
				t.Fatalf("Reset left %d and %d connected", i, j)
			}
		}
	}
}

func TestUnionFindLabels(t *testing.T) {
	uf := NewUnionFind(6)
	uf.Union(0, 1)
	uf.Union(1, 2)
	uf.Union(4, 5)
	labels := make([]int32, 6)
	uf.Labels(labels)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("labels of a merged set differ")
	}
	if labels[4] != labels[5] {
		t.Fatal("labels of a merged set differ")
	}
	if labels[3] == labels[0] || labels[3] == labels[4] {
		t.Fatal("labels of distinct sets coincide")
	}
}

// TestQuickUnionFindMatchesNaive cross-checks union-find connectivity against
// a naive reachability matrix on random union sequences.
func TestQuickUnionFindMatchesNaive(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 12
		uf := NewUnionFind(n)
		adj := [n][n]bool{}
		for _, op := range ops {
			a := int32(op % n)
			b := int32((op / n) % n)
			uf.Union(a, b)
			adj[a][b], adj[b][a] = true, true
		}
		// Floyd-Warshall style closure.
		reach := adj
		for i := 0; i < n; i++ {
			reach[i][i] = true
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if !reach[i][k] {
					continue
				}
				for j := 0; j < n; j++ {
					if reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		for i := int32(0); i < n; i++ {
			for j := int32(0); j < n; j++ {
				if uf.Connected(i, j) != reach[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBFSDijkstraAgreeOnUniformWeights: with all probabilities equal,
// Dijkstra hop ordering must match BFS hop counts (dist = hops * -ln p).
func TestQuickBFSDijkstraAgreeOnUniformWeights(t *testing.T) {
	f := func(seed uint64) bool {
		x := rng.NewXoshiro256(seed)
		n := 8 + x.Intn(8)
		b := NewBuilder(n)
		// Random connected-ish graph: a random spanning tree + extras.
		for i := 1; i < n; i++ {
			if err := b.AddEdge(NodeID(x.Intn(i)), NodeID(i), 0.5); err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			u, v := NodeID(x.Intn(n)), NodeID(x.Intn(n))
			if u != v {
				_ = b.AddEdge(u, v, 0.5)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		hops := g.BFSAll(0)
		dist := g.Dijkstra(0)
		w := -math.Log(0.5)
		for i := 0; i < n; i++ {
			if hops[i] < 0 {
				if !math.IsInf(dist[i], 1) {
					return false
				}
				continue
			}
			if math.Abs(dist[i]-float64(hops[i])*w) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborSlicesConsistent(t *testing.T) {
	g := pathGraph(t, 5, 0.3)
	for u := NodeID(0); u < 5; u++ {
		nodes, ids, probs := g.NeighborSlices(u)
		if len(nodes) != g.Degree(u) || len(ids) != len(nodes) || len(probs) != len(nodes) {
			t.Fatalf("NeighborSlices lengths inconsistent at node %d", u)
		}
		i := 0
		g.Neighbors(u, func(v NodeID, id int32, p float64) {
			if nodes[i] != v || ids[i] != id || probs[i] != p {
				t.Fatalf("NeighborSlices disagree with Neighbors at node %d pos %d", u, i)
			}
			i++
		})
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 0.5}, {1, 2, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("FromEdges produced %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if _, err := FromEdges(2, []Edge{{0, 0, 0.5}}); err == nil {
		t.Fatal("FromEdges accepted a self loop")
	}
}

func TestDigestStableAndDiscriminates(t *testing.T) {
	build := func(p float64) *Uncertain {
		g, err := FromEdges(4, []Edge{{0, 1, p}, {1, 2, 0.5}, {2, 3, 0.7}})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(0.3), build(0.3)
	if a.Digest() == 0 {
		t.Fatal("digest must be non-zero")
	}
	if a.Digest() != a.Digest() {
		t.Fatal("digest not stable across calls")
	}
	if a.Digest() != b.Digest() {
		t.Fatal("identical graphs disagree on digest")
	}
	if c := build(0.31); c.Digest() == a.Digest() {
		t.Fatal("changing an edge probability left the digest unchanged")
	}
	d, err := FromEdges(4, []Edge{{0, 1, 0.3}, {1, 2, 0.5}, {1, 3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Digest() == a.Digest() {
		t.Fatal("changing an endpoint left the digest unchanged")
	}
}
