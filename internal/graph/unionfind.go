package graph

// UnionFind is a disjoint-set forest with union by size and path halving.
// It is the workhorse of possible-world connectivity: one instance is reset
// and refilled per sampled world.
type UnionFind struct {
	parent []int32
	size   []int32
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		size:   make([]int32, n),
	}
	uf.Reset()
	return uf
}

// Reset returns every element to its own singleton set. It reuses the
// existing arrays, so a single UnionFind can serve many sampled worlds
// without reallocation.
func (uf *UnionFind) Reset() {
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
}

// Len returns the number of elements.
func (uf *UnionFind) Len() int { return len(uf.parent) }

// Find returns the representative of x's set, halving paths as it walks.
func (uf *UnionFind) Find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y and reports whether a merge happened.
func (uf *UnionFind) Union(x, y int32) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int32) bool {
	return uf.Find(x) == uf.Find(y)
}

// SetSize returns the size of x's set.
func (uf *UnionFind) SetSize(x int32) int32 {
	return uf.size[uf.Find(x)]
}

// Labels writes, for each element, the representative of its set into out,
// which must have length Len(). The labels are canonical (the
// representative's own index), so two elements are connected iff their
// labels are equal.
func (uf *UnionFind) Labels(out []int32) {
	for i := range uf.parent {
		out[i] = uf.Find(int32(i))
	}
}
