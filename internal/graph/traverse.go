package graph

import (
	"container/heap"
	"math"
)

// BFSAll computes hop distances from src over all edges (ignoring
// probabilities, i.e. on the underlying deterministic topology).
// Unreachable nodes get distance -1.
func (g *Uncertain) BFSAll(src NodeID) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, src)
	// Index cursor instead of re-slicing the queue head: re-slicing keeps
	// the backing array alive anyway but defeats bounds-check elimination
	// and obscures the single-allocation behaviour (same idiom as
	// World.BFSWithin).
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		du := dist[u]
		for i := g.adjStart[u]; i < g.adjStart[u+1]; i++ {
			v := g.adjNode[i]
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Components labels the connected components of the underlying topology.
// It returns canonical labels (component id = smallest node in it is NOT
// guaranteed; labels are representatives) and the number of components.
func (g *Uncertain) Components() (labels []int32, count int) {
	uf := NewUnionFind(int(g.n))
	for _, e := range g.edges {
		uf.Union(e.U, e.V)
	}
	labels = make([]int32, g.n)
	uf.Labels(labels)
	// Labels are union-find representatives, i.e. node IDs in [0, n), so a
	// slice-backed marker counts them without the per-call map allocation
	// this hot path used to pay.
	seen := make([]bool, g.n)
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			count++
		}
	}
	return labels, count
}

// LargestComponent returns the node set of the largest connected component
// of the underlying topology, sorted ascending.
func (g *Uncertain) LargestComponent() []NodeID {
	labels, _ := g.Components()
	counts := make([]int32, g.n)
	for _, l := range labels {
		counts[l]++
	}
	// Scanning labels in increasing order makes the tie-break (smallest
	// representative wins) deterministic, unlike the map iteration this
	// replaced.
	var best int32 = -1
	var bestCount int32
	for l := int32(0); l < g.n; l++ {
		if counts[l] > bestCount {
			best, bestCount = l, counts[l]
		}
	}
	nodes := make([]NodeID, 0, bestCount)
	for u := int32(0); u < g.n; u++ {
		if labels[u] == best {
			nodes = append(nodes, u)
		}
	}
	return nodes
}

// InducedSubgraph returns the subgraph induced by nodes, together with the
// mapping from new node IDs to original IDs (newToOld). Nodes must be
// distinct and in range; the new graph numbers them 0..len(nodes)-1 in the
// given order.
func (g *Uncertain) InducedSubgraph(nodes []NodeID) (*Uncertain, []NodeID, error) {
	oldToNew := make(map[NodeID]NodeID, len(nodes))
	newToOld := make([]NodeID, len(nodes))
	for i, u := range nodes {
		oldToNew[u] = NodeID(i)
		newToOld[i] = u
	}
	b := NewBuilder(len(nodes))
	for _, e := range g.edges {
		nu, ok1 := oldToNew[e.U]
		nv, ok2 := oldToNew[e.V]
		if ok1 && ok2 {
			if err := b.AddEdge(nu, nv, e.P); err != nil {
				return nil, nil, err
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, newToOld, nil
}

// heapItem is a (node, distance) pair in the Dijkstra priority queue.
type heapItem struct {
	node NodeID
	dist float64
}

type distHeap []heapItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest path distances from src using the
// edge weights w(e) = -ln(p(e)). This is the distance transform d(u,v) =
// ln(1/Pr-path(u~v)) under which the most probable path is the shortest
// path; it is the metric the GMM baseline clusters against (Section 5.1).
// Unreachable nodes get +Inf.
func (g *Uncertain) Dijkstra(src NodeID) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &distHeap{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		u := it.node
		if it.dist > dist[u] {
			continue // stale entry
		}
		for i := g.adjStart[u]; i < g.adjStart[u+1]; i++ {
			v := g.adjNode[i]
			w := -math.Log(g.adjProb[i])
			if nd := it.dist + w; nd < dist[v] {
				dist[v] = nd
				heap.Push(h, heapItem{node: v, dist: nd})
			}
		}
	}
	return dist
}

// DijkstraFrom computes, for every node, the distance to the closest source
// in srcs (a multi-source Dijkstra) and the index (into srcs) of that
// closest source. It is used by the GMM baseline to assign nodes to centers.
func (g *Uncertain) DijkstraFrom(srcs []NodeID) (dist []float64, owner []int32) {
	dist = make([]float64, g.n)
	owner = make([]int32, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		owner[i] = -1
	}
	h := &distHeap{}
	for si, s := range srcs {
		if dist[s] > 0 {
			dist[s] = 0
			owner[s] = int32(si)
			heap.Push(h, heapItem{node: s, dist: 0})
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		u := it.node
		if it.dist > dist[u] {
			continue
		}
		for i := g.adjStart[u]; i < g.adjStart[u+1]; i++ {
			v := g.adjNode[i]
			w := -math.Log(g.adjProb[i])
			if nd := it.dist + w; nd < dist[v] {
				dist[v] = nd
				owner[v] = owner[u]
				heap.Push(h, heapItem{node: v, dist: nd})
			}
		}
	}
	return dist, owner
}
