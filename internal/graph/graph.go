// Package graph provides the deterministic graph substrate beneath the
// uncertain-graph algorithms: a compact CSR (compressed sparse row)
// representation of an undirected uncertain graph, union–find, breadth-first
// search (plain and depth-limited), Dijkstra shortest paths, and connected
// components.
//
// An uncertain graph G = (V, E, p) assigns each undirected edge e a survival
// probability p(e) in (0, 1]. Package graph stores the probabilities but
// attaches no semantics to them; interpreting them as a distribution over
// possible worlds is the job of internal/sampler and internal/conn.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ucgraph/internal/rng"
)

// NodeID identifies a node. Nodes of a graph with n nodes are 0..n-1.
type NodeID = int32

// Edge is one undirected uncertain edge.
type Edge struct {
	U, V NodeID  // endpoints, U != V
	P    float64 // survival probability, in (0, 1]
}

// Uncertain is an immutable uncertain graph in CSR form.
//
// Every undirected edge {u, v} appears twice in the adjacency arrays (once
// per direction) but has a single edge ID in [0, NumEdges()), shared by both
// directions. Possible-world samplers flip one coin per edge ID, so the two
// directions always agree.
type Uncertain struct {
	n int32

	// CSR arrays: the neighbors of u are adjNode[adjStart[u]:adjStart[u+1]],
	// with parallel edge IDs in adjEdge and probabilities in adjProb.
	adjStart []int32
	adjNode  []NodeID
	adjEdge  []int32
	adjProb  []float64

	// Per-edge data, indexed by edge ID.
	edges  []Edge
	thresh []uint64 // rng.CoinThreshold(P), precomputed for samplers

	digestOnce sync.Once
	digest     uint64
}

// Builder accumulates edges and produces an Uncertain graph.
// The zero value is ready to use after SetNumNodes or AddNode calls.
type Builder struct {
	n     int32
	edges []Edge
	seen  map[[2]NodeID]int // maps normalized endpoints to index in edges
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: int32(n), seen: make(map[[2]NodeID]int)}
}

// NumNodes returns the current number of nodes.
func (b *Builder) NumNodes() int { return int(b.n) }

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// HasEdge reports whether the undirected edge {u, v} was already added,
// returning its current probability.
func (b *Builder) HasEdge(u, v NodeID) (float64, bool) {
	if u > v {
		u, v = v, u
	}
	if i, ok := b.seen[[2]NodeID{u, v}]; ok {
		return b.edges[i].P, true
	}
	return 0, false
}

// EnsureNode grows the node set so that id is a valid node.
func (b *Builder) EnsureNode(id NodeID) {
	if id >= b.n {
		b.n = id + 1
	}
}

// AddEdge records the undirected edge {u, v} with probability p.
// Self loops and out-of-range probabilities are rejected. Adding an edge
// that already exists replaces its probability (last write wins), matching
// the behaviour of the paper's datasets where each pair appears once.
func (b *Builder) AddEdge(u, v NodeID, p float64) error {
	if u == v {
		return fmt.Errorf("graph: self loop on node %d", u)
	}
	if u < 0 || v < 0 {
		return fmt.Errorf("graph: negative node id (%d, %d)", u, v)
	}
	if !(p > 0 && p <= 1) {
		return fmt.Errorf("graph: edge {%d,%d} probability %v outside (0,1]", u, v, p)
	}
	b.EnsureNode(u)
	b.EnsureNode(v)
	if u > v {
		u, v = v, u
	}
	key := [2]NodeID{u, v}
	if i, ok := b.seen[key]; ok {
		b.edges[i].P = p
		return nil
	}
	b.seen[key] = len(b.edges)
	b.edges = append(b.edges, Edge{U: u, V: v, P: p})
	return nil
}

// Build finalizes the builder into an immutable CSR graph.
func (b *Builder) Build() (*Uncertain, error) {
	if b.n <= 0 {
		return nil, errors.New("graph: cannot build a graph with no nodes")
	}
	g := &Uncertain{n: b.n, edges: make([]Edge, len(b.edges))}
	copy(g.edges, b.edges)
	// Deterministic edge IDs: sort by endpoints.
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	m := len(g.edges)
	g.thresh = make([]uint64, m)
	deg := make([]int32, g.n+1)
	for i, e := range g.edges {
		g.thresh[i] = rng.CoinThreshold(e.P)
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := int32(1); i <= g.n; i++ {
		deg[i] += deg[i-1]
	}
	g.adjStart = deg
	g.adjNode = make([]NodeID, 2*m)
	g.adjEdge = make([]int32, 2*m)
	g.adjProb = make([]float64, 2*m)
	fill := make([]int32, g.n)
	for i, e := range g.edges {
		pu := g.adjStart[e.U] + fill[e.U]
		g.adjNode[pu], g.adjEdge[pu], g.adjProb[pu] = e.V, int32(i), e.P
		fill[e.U]++
		pv := g.adjStart[e.V] + fill[e.V]
		g.adjNode[pv], g.adjEdge[pv], g.adjProb[pv] = e.U, int32(i), e.P
		fill[e.V]++
	}
	return g, nil
}

// FromEdges builds a graph with n nodes from a list of edges.
func FromEdges(n int, edges []Edge) (*Uncertain, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.P); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// NumNodes returns the number of nodes.
func (g *Uncertain) NumNodes() int { return int(g.n) }

// NumEdges returns the number of undirected edges.
func (g *Uncertain) NumEdges() int { return len(g.edges) }

// Edges returns the edge list, indexed by edge ID. Callers must not modify it.
func (g *Uncertain) Edges() []Edge { return g.edges }

// EdgeByID returns the edge with the given ID.
func (g *Uncertain) EdgeByID(id int32) Edge { return g.edges[id] }

// CoinThreshold returns the precomputed sampler threshold of an edge ID.
func (g *Uncertain) CoinThreshold(id int32) uint64 { return g.thresh[id] }

// Digest returns a stable 64-bit fingerprint of the graph: node count plus
// every edge's endpoints and coin threshold, folded in edge-ID order. Two
// graphs with equal digests define identical possible-world streams under
// equal seeds (edge coins are functions of edge ID and threshold alone), so
// persistent world caches key their contents on (Digest, seed) to verify
// that a cache directory belongs to the graph being served. Computed once,
// lazily; safe for concurrent use.
func (g *Uncertain) Digest() uint64 {
	g.digestOnce.Do(func() {
		h := rng.Mix64(0x75cd9f3c0a11ed00 ^ uint64(g.n))
		for id := range g.edges {
			e := &g.edges[id]
			h = rng.Mix64(h ^ (uint64(uint32(e.U)) | uint64(uint32(e.V))<<32))
			h = rng.Mix64(h + g.thresh[id])
		}
		if h == 0 {
			h = 1 // 0 is the "no digest" sentinel in cache headers
		}
		g.digest = h
	})
	return g.digest
}

// Degree returns the number of incident edges of u.
func (g *Uncertain) Degree(u NodeID) int {
	return int(g.adjStart[u+1] - g.adjStart[u])
}

// Neighbors calls fn for every edge incident to u, passing the neighbor, the
// edge ID and the edge probability. It avoids allocation on the hot path.
func (g *Uncertain) Neighbors(u NodeID, fn func(v NodeID, edgeID int32, p float64)) {
	for i := g.adjStart[u]; i < g.adjStart[u+1]; i++ {
		fn(g.adjNode[i], g.adjEdge[i], g.adjProb[i])
	}
}

// NeighborSlices returns the raw CSR slices for node u: neighbor IDs, edge
// IDs and probabilities. Callers must not modify them. This is the zero-cost
// access path used by the samplers.
func (g *Uncertain) NeighborSlices(u NodeID) (nodes []NodeID, edgeIDs []int32, probs []float64) {
	lo, hi := g.adjStart[u], g.adjStart[u+1]
	return g.adjNode[lo:hi], g.adjEdge[lo:hi], g.adjProb[lo:hi]
}

// HasEdge reports whether {u, v} is an edge and returns its probability.
func (g *Uncertain) HasEdge(u, v NodeID) (float64, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	// Scan the smaller adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for i := g.adjStart[u]; i < g.adjStart[u+1]; i++ {
		if g.adjNode[i] == v {
			return g.adjProb[i], true
		}
	}
	return 0, false
}

// ExpectedDegree returns the sum of incident edge probabilities of u,
// i.e. the expected degree of u in a random possible world.
func (g *Uncertain) ExpectedDegree(u NodeID) float64 {
	s := 0.0
	for i := g.adjStart[u]; i < g.adjStart[u+1]; i++ {
		s += g.adjProb[i]
	}
	return s
}

// MaxDegree returns the maximum node degree.
func (g *Uncertain) MaxDegree() int {
	max := 0
	for u := int32(0); u < g.n; u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}
