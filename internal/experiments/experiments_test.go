package experiments

import (
	"strings"
	"testing"
)

// tinyCfg keeps experiment tests fast: small sample counts and a small
// DBLP instance.
func tinyCfg() Config {
	return Config{
		Seed:          1,
		MetricSamples: 48,
		ScheduleMax:   128,
		DBLPAuthors:   1200,
	}
}

func TestTable1AllDatasets(t *testing.T) {
	cfg := tinyCfg()
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table1 returned %d rows, want 4", len(rows))
	}
	want := map[string]int{"collins": 1004, "gavin": 1727, "krogan": 2559}
	for _, r := range rows {
		if r.Nodes < 100 || r.Edges < 100 {
			t.Fatalf("%s: degenerate stats %+v", r.Name, r)
		}
		if wantN, ok := want[r.Name]; ok {
			diff := r.Nodes - wantN
			if diff < 0 {
				diff = -diff
			}
			if float64(diff) > 0.06*float64(wantN) {
				t.Fatalf("%s: %d nodes, want ~%d", r.Name, r.Nodes, wantN)
			}
		}
	}
}

func TestQualityGridCollins(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment reproduction; run without -short")
	}
	cfg := tinyCfg()
	cfg.Graphs = []string{"collins"}
	cells, err := QualityGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 8 { // at least 2 inflations x 4 algorithms
		t.Fatalf("grid has %d cells, want >= 8", len(cells))
	}
	algos := map[string]int{}
	for _, c := range cells {
		algos[c.Algo]++
		if c.Graph != "collins" {
			t.Fatalf("unexpected graph %q", c.Graph)
		}
		if c.PMin < 0 || c.PMin > 1 || c.PAvg < 0 || c.PAvg > 1 {
			t.Fatalf("probabilities out of range: %+v", c)
		}
		if c.InnerAVPR < 0 || c.InnerAVPR > 1 || c.OuterAVPR < 0 || c.OuterAVPR > 1 {
			t.Fatalf("AVPR out of range: %+v", c)
		}
		if c.Millis < 0 {
			t.Fatalf("negative time: %+v", c)
		}
		if c.K < 1 {
			t.Fatalf("bad k: %+v", c)
		}
	}
	for _, a := range []string{"gmm", "mcl", "mcp", "acp"} {
		if algos[a] == 0 {
			t.Fatalf("algorithm %s missing from grid", a)
		}
	}
	// Same k for all four algorithms within a (graph, k) group is implied
	// by construction; check pmin ordering on the easiest claim: mcp's
	// worst pmin across cells is at least as good as gmm's worst.
	worst := func(algo string) float64 {
		w := 1.0
		for _, c := range cells {
			if c.Algo == algo && c.PMin < w {
				w = c.PMin
			}
		}
		return w
	}
	if worst("mcp") < worst("gmm")-0.05 {
		t.Fatalf("mcp worst pmin %v clearly below gmm %v", worst("mcp"), worst("gmm"))
	}
}

func TestQualityGridAveragedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment reproduction; run without -short")
	}
	cfg := tinyCfg()
	cfg.Graphs = []string{"collins"}
	cfg.Runs = 2
	cells, err := QualityGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := tinyCfg()
	single.Graphs = []string{"collins"}
	cellsSingle, err := QualityGrid(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(cellsSingle) {
		t.Fatalf("averaging changed the cell count: %d vs %d", len(cells), len(cellsSingle))
	}
	for _, c := range cells {
		if c.PMin < 0 || c.PMin > 1 || c.PAvg < 0 || c.PAvg > 1 {
			t.Fatalf("averaged cell out of range: %+v", c)
		}
	}
}

func TestQualityGridUnknownDataset(t *testing.T) {
	cfg := tinyCfg()
	cfg.Graphs = []string{"nope"}
	if _, err := QualityGrid(cfg); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestFigure4Points(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment reproduction; run without -short")
	}
	cfg := tinyCfg()
	pts, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("figure4 produced %d points", len(pts))
	}
	seen := map[int]bool{}
	for _, p := range pts {
		if p.K < 2 {
			t.Fatalf("bad k: %+v", p)
		}
		if seen[p.K] {
			t.Fatalf("duplicate k=%d", p.K)
		}
		seen[p.K] = true
		if p.MCPMillis < 0 || p.MCLMillis < 0 {
			t.Fatalf("negative time: %+v", p)
		}
	}
}

func TestTable2Rows(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment reproduction; run without -short")
	}
	cfg := tinyCfg()
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 depths x 2 algorithms + mcl + kpt.
	if len(rows) != 12 {
		t.Fatalf("table2 has %d rows, want 12", len(rows))
	}
	byAlgoDepth := map[string]map[int]PredictionRow{}
	for _, r := range rows {
		if r.TPR < 0 || r.TPR > 1 || r.FPR < 0 || r.FPR > 1 {
			t.Fatalf("rates out of range: %+v", r)
		}
		if byAlgoDepth[r.Algo] == nil {
			byAlgoDepth[r.Algo] = map[int]PredictionRow{}
		}
		byAlgoDepth[r.Algo][r.Depth] = r
	}
	// FPR grows (weakly) with depth for mcp, as in the paper.
	prev := -1.0
	for _, d := range []int{2, 3, 4, 6, 8} {
		r, ok := byAlgoDepth["mcp"][d]
		if !ok {
			t.Fatalf("missing mcp depth %d", d)
		}
		if r.FPR < prev-0.05 {
			t.Fatalf("mcp FPR not weakly increasing with depth: %v after %v", r.FPR, prev)
		}
		prev = r.FPR
	}
	// kpt has the lowest TPR of all predictors (its key weakness in the
	// paper's comparison).
	kptTPR := byAlgoDepth["kpt"][0].TPR
	for _, r := range rows {
		if r.Algo != "kpt" && r.TPR < kptTPR-0.05 {
			t.Fatalf("%s d=%d TPR %v below kpt %v", r.Algo, r.Depth, r.TPR, kptTPR)
		}
	}
}

func TestFormatters(t *testing.T) {
	stats := []DatasetStats{{Name: "collins", Nodes: 1000, Edges: 8000}}
	if s := FormatTable1(stats); !strings.Contains(s, "collins") || !strings.Contains(s, "8000") {
		t.Fatalf("FormatTable1 output missing content:\n%s", s)
	}
	cells := []Cell{
		{Graph: "gavin", K: 50, Algo: "mcp", PMin: 0.5, PAvg: 0.8, InnerAVPR: 0.7, OuterAVPR: 0.1, Millis: 42},
		{Graph: "gavin", K: 50, Algo: "gmm", PMin: 0.1, PAvg: 0.4, InnerAVPR: 0.6, OuterAVPR: 0.5, Millis: 7},
	}
	f1 := FormatFigure1(cells)
	if !strings.Contains(f1, "p_min") || !strings.Contains(f1, "p_avg") || !strings.Contains(f1, "mcp") {
		t.Fatalf("FormatFigure1 incomplete:\n%s", f1)
	}
	// gmm sorts before mcp within a group.
	if strings.Index(f1, "gmm") > strings.Index(f1, "mcp") {
		t.Fatal("FormatFigure1 ordering wrong")
	}
	if s := FormatFigure2(cells); !strings.Contains(s, "inner-AVPR") || !strings.Contains(s, "outer-AVPR") {
		t.Fatalf("FormatFigure2 incomplete:\n%s", s)
	}
	if s := FormatFigure3(cells); !strings.Contains(s, "running time") {
		t.Fatalf("FormatFigure3 incomplete:\n%s", s)
	}
	pts := []ScalePoint{{K: 10, MCPMillis: 5, MCLMillis: 50}}
	if s := FormatFigure4(pts); !strings.Contains(s, "mcp (ms)") {
		t.Fatalf("FormatFigure4 incomplete:\n%s", s)
	}
	rows := []PredictionRow{{Algo: "mcp", Depth: 2, TPR: 0.3, FPR: 0.01}, {Algo: "mcl", TPR: 0.4, FPR: 0.002}}
	s := FormatTable2(rows)
	if !strings.Contains(s, "TPR") || !strings.Contains(s, "mcl") {
		t.Fatalf("FormatTable2 incomplete:\n%s", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MetricSamples <= 0 || c.ScheduleMax <= 0 || c.DBLPAuthors <= 0 || len(c.Graphs) != 4 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}
