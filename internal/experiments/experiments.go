// Package experiments reproduces the tables and figures of the paper's
// evaluation (Section 5) on the synthetic stand-in datasets:
//
//   - Table 1: dataset statistics (nodes/edges of the LCC);
//   - Figure 1: p_min and p_avg of gmm/mcl/mcp/acp across graphs and k;
//   - Figure 2: inner-AVPR and outer-AVPR on the same grid;
//   - Figure 3: running times on the same grid;
//   - Figure 4: running time versus k for mcp and mcl on DBLP;
//   - Table 2: TPR/FPR of depth-limited mcp/acp versus mcl and kpt on the
//     Krogan graph against the curated (MIPS-like) ground truth.
//
// The paper's methodology is followed: mcl is run at fixed inflation values
// and the resulting cluster counts become the k targets handed to the other
// algorithms, since mcl's granularity cannot be controlled directly.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/core"
	"ucgraph/internal/datasets"
	"ucgraph/internal/gmm"
	"ucgraph/internal/graph"
	"ucgraph/internal/kpt"
	"ucgraph/internal/mcl"
	"ucgraph/internal/metrics"
	"ucgraph/internal/worldstore"
)

// Config scales an experiment run.
type Config struct {
	// Seed drives dataset synthesis, world sampling and algorithm
	// randomness.
	Seed uint64
	// MetricSamples is the number of possible worlds used to score
	// clusterings (default 192).
	MetricSamples int
	// ScheduleMax caps the per-phase Monte Carlo sample size of mcp/acp
	// (default 768).
	ScheduleMax int
	// DBLPAuthors sizes the synthetic DBLP instance (default 6000; the
	// paper-scale instance is 636751).
	DBLPAuthors int
	// Graphs restricts the run to the named datasets (default all four).
	Graphs []string
	// MCLMaxNNZ caps MCL matrix columns (default 128).
	MCLMaxNNZ int
	// Runs averages the randomized algorithms (gmm, mcp, acp) over this
	// many seeds per cell (default 1; the paper averages >= 100).
	Runs int
	// Parallelism bounds the worker pool of the Monte Carlo oracles and
	// the mcp/acp candidate fan-out (<= 0 selects GOMAXPROCS, 1 forces
	// serial execution). Results are identical for every setting.
	Parallelism int
	// WorldMemBudgetMB, when positive, bounds the label memory of every
	// world store the run creates (oracles and metric scoring alike) to
	// this many MiB per store; evicted label blocks are recomputed on
	// demand. Results are identical for every setting, only speed varies.
	WorldMemBudgetMB int
}

// applyBudget installs the configured world-store memory budget for stores
// created by this run. Zero restores the unbounded default, so a run's
// budget never leaks into a later run in the same process.
func (c Config) applyBudget() {
	worldstore.SetDefaultBudget(int64(c.WorldMemBudgetMB) << 20)
}

// newOracle builds a Monte Carlo oracle honoring cfg.Parallelism.
func newOracle(g *graph.Uncertain, seed uint64, cfg Config) *conn.MonteCarlo {
	o := conn.NewMonteCarlo(g, seed)
	o.SetParallelism(cfg.Parallelism)
	return o
}

func (c Config) withDefaults() Config {
	if c.MetricSamples <= 0 {
		c.MetricSamples = 192
	}
	if c.ScheduleMax <= 0 {
		c.ScheduleMax = 768
	}
	if c.DBLPAuthors <= 0 {
		c.DBLPAuthors = 6000
	}
	if len(c.Graphs) == 0 {
		c.Graphs = []string{"collins", "gavin", "krogan", "dblp"}
	}
	if c.MCLMaxNNZ <= 0 {
		c.MCLMaxNNZ = 128
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	return c
}

// loadDataset materializes one of the four synthetic datasets by name.
func loadDataset(name string, cfg Config) (*datasets.Dataset, error) {
	switch name {
	case "collins":
		return datasets.Collins(cfg.Seed)
	case "gavin":
		return datasets.Gavin(cfg.Seed)
	case "krogan":
		return datasets.Krogan(cfg.Seed)
	case "dblp":
		return datasets.DBLP(datasets.DBLPConfig{
			Authors:         cfg.DBLPAuthors,
			PapersPerAuthor: 1.45,
			CommunitySize:   55,
			CrossCommunity:  0.12,
		}, cfg.Seed)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}

// inflations returns the mcl inflation sweep for a dataset, matching
// Section 5.1 (1.2/1.5/2.0 for the PPI networks, 1.15/1.2/1.3 for DBLP).
func inflations(name string) []float64 {
	if name == "dblp" {
		return []float64{1.15, 1.2, 1.3}
	}
	return []float64{1.2, 1.5, 2.0}
}

// DatasetStats is one row of Table 1.
type DatasetStats struct {
	Name  string
	Nodes int
	Edges int
}

// Table1 reproduces Table 1: the LCC sizes of the four datasets.
func Table1(cfg Config) ([]DatasetStats, error) {
	cfg = cfg.withDefaults()
	cfg.applyBudget()
	var out []DatasetStats
	for _, name := range cfg.Graphs {
		ds, err := loadDataset(name, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, DatasetStats{
			Name:  ds.Name,
			Nodes: ds.Graph.NumNodes(),
			Edges: ds.Graph.NumEdges(),
		})
	}
	return out, nil
}

// Cell is one (graph, k, algorithm) measurement of the quality grid; it
// carries everything Figures 1, 2 and 3 report.
type Cell struct {
	Graph     string
	K         int
	Algo      string
	PMin      float64
	PAvg      float64
	InnerAVPR float64
	OuterAVPR float64
	Millis    float64
}

// QualityGrid reproduces the measurement grid behind Figures 1-3: for each
// dataset, mcl is run at its three inflation values; each run's cluster
// count becomes the k for gmm, mcp and acp; all four clusterings are scored
// on a shared sample of possible worlds.
func QualityGrid(cfg Config) ([]Cell, error) {
	cfg = cfg.withDefaults()
	cfg.applyBudget()
	var out []Cell
	for _, name := range cfg.Graphs {
		ds, err := loadDataset(name, cfg)
		if err != nil {
			return nil, err
		}
		g := ds.Graph
		ws := worldstore.Shared(g, cfg.Seed+0x5eed)
		ws.Grow(cfg.MetricSamples)
		opts := core.Options{
			Seed:        cfg.Seed,
			Schedule:    conn.Schedule{Min: 50, Max: cfg.ScheduleMax, Coef: 8},
			Parallelism: cfg.Parallelism,
		}
		for _, inf := range inflations(name) {
			// mcl first: it defines the granularity target.
			t0 := time.Now()
			mclRes := mcl.Cluster(g, mcl.Options{Inflation: inf, MaxNNZPerColumn: cfg.MCLMaxNNZ})
			mclMillis := float64(time.Since(t0).Microseconds()) / 1000
			k := mclRes.Clustering.K()
			if k < 1 || k >= g.NumNodes() {
				continue // degenerate granularity; skip this inflation
			}
			out = append(out, score(name, k, "mcl", mclRes.Clustering, ws, cfg, mclMillis))

			// The randomized algorithms are averaged over cfg.Runs seeds,
			// mirroring the paper's averaging over >= 100 runs.
			averaged, err := averageRuns(cfg, name, k, "gmm", ws, func(seed uint64) (*core.Clustering, error) {
				return gmm.Cluster(g, k, seed)
			})
			if err != nil {
				return nil, err
			}
			out = append(out, averaged)

			averaged, err = averageRuns(cfg, name, k, "mcp", ws, func(seed uint64) (*core.Clustering, error) {
				o := opts
				o.Seed = seed
				cl, _, err := core.MCP(newOracle(g, seed+1, cfg), k, o)
				return cl, err
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: mcp on %s k=%d: %v", name, k, err)
			}
			out = append(out, averaged)

			averaged, err = averageRuns(cfg, name, k, "acp", ws, func(seed uint64) (*core.Clustering, error) {
				o := opts
				o.Seed = seed
				cl, _, err := core.ACP(newOracle(g, seed+2, cfg), k, o)
				return cl, err
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: acp on %s k=%d: %v", name, k, err)
			}
			out = append(out, averaged)
		}
	}
	return out, nil
}

// averageRuns executes a randomized algorithm cfg.Runs times with distinct
// seeds and averages all Cell fields (metrics and wall time).
func averageRuns(cfg Config, graphName string, k int, algo string, ws *worldstore.Store, run func(seed uint64) (*core.Clustering, error)) (Cell, error) {
	var acc Cell
	for i := 0; i < cfg.Runs; i++ {
		t0 := time.Now()
		cl, err := run(cfg.Seed + uint64(1000*i))
		if err != nil {
			return Cell{}, err
		}
		c := score(graphName, k, algo, cl, ws, cfg,
			float64(time.Since(t0).Microseconds())/1000)
		acc.PMin += c.PMin
		acc.PAvg += c.PAvg
		acc.InnerAVPR += c.InnerAVPR
		acc.OuterAVPR += c.OuterAVPR
		acc.Millis += c.Millis
	}
	inv := 1 / float64(cfg.Runs)
	return Cell{
		Graph: graphName, K: k, Algo: algo,
		PMin: acc.PMin * inv, PAvg: acc.PAvg * inv,
		InnerAVPR: acc.InnerAVPR * inv, OuterAVPR: acc.OuterAVPR * inv,
		Millis: acc.Millis * inv,
	}, nil
}

// score evaluates one clustering into a Cell.
func score(graphName string, k int, algo string, cl *core.Clustering, ws *worldstore.Store, cfg Config, millis float64) Cell {
	inner, outer := metrics.AVPR(cl, ws, cfg.MetricSamples)
	return Cell{
		Graph:     graphName,
		K:         k,
		Algo:      algo,
		PMin:      metrics.PMin(cl, ws, cfg.MetricSamples),
		PAvg:      metrics.PAvg(cl, ws, cfg.MetricSamples),
		InnerAVPR: inner,
		OuterAVPR: outer,
		Millis:    millis,
	}
}

// ScalePoint is one measurement of Figure 4: running time versus k on the
// DBLP graph for mcp and mcl.
type ScalePoint struct {
	K         int
	MCPMillis float64
	MCLMillis float64
}

// Figure4 reproduces Figure 4. The k values sweep the same relative
// granularities as the paper (k/n of roughly 0.0004 to 0.024); mcl cannot
// hit a k target directly, so as in the paper the comparison pairs each
// mcp run at k with the mcl run whose granularity is closest.
func Figure4(cfg Config) ([]ScalePoint, error) {
	cfg = cfg.withDefaults()
	cfg.applyBudget()
	ds, err := loadDataset("dblp", cfg)
	if err != nil {
		return nil, err
	}
	g := ds.Graph
	n := g.NumNodes()

	// mcl sweep: one run per inflation, recording (k, time).
	type mclRun struct {
		k      int
		millis float64
	}
	var mclRuns []mclRun
	for _, inf := range []float64{1.15, 1.2, 1.3, 1.5, 2.0} {
		t0 := time.Now()
		res := mcl.Cluster(g, mcl.Options{Inflation: inf, MaxNNZPerColumn: cfg.MCLMaxNNZ})
		mclRuns = append(mclRuns, mclRun{
			k:      res.Clustering.K(),
			millis: float64(time.Since(t0).Microseconds()) / 1000,
		})
	}
	sort.Slice(mclRuns, func(i, j int) bool { return mclRuns[i].k < mclRuns[j].k })

	// mcp sweep over the paper's relative granularities.
	ratios := []float64{0.0004, 0.0008, 0.0016, 0.0029, 0.0083, 0.024}
	var out []ScalePoint
	opts := core.Options{
		Seed:        cfg.Seed,
		Schedule:    conn.Schedule{Min: 50, Max: cfg.ScheduleMax, Coef: 8},
		Parallelism: cfg.Parallelism,
	}
	seenK := map[int]bool{}
	for _, ratio := range ratios {
		k := int(ratio * float64(n))
		if k < 2 {
			k = 2
		}
		if k >= n || seenK[k] {
			continue
		}
		seenK[k] = true
		t0 := time.Now()
		oracle := newOracle(g, cfg.Seed+3, cfg)
		if _, _, err := core.MCP(oracle, k, opts); err != nil {
			return nil, fmt.Errorf("experiments: figure4 mcp k=%d: %v", k, err)
		}
		sp := ScalePoint{K: k, MCPMillis: float64(time.Since(t0).Microseconds()) / 1000}
		// Closest mcl run by cluster count.
		bestDiff := -1
		for _, mr := range mclRuns {
			d := mr.k - k
			if d < 0 {
				d = -d
			}
			if bestDiff < 0 || d < bestDiff {
				bestDiff = d
				sp.MCLMillis = mr.millis
			}
		}
		out = append(out, sp)
	}
	return out, nil
}

// PredictionRow is one row of Table 2: protein-complex prediction quality.
type PredictionRow struct {
	Algo  string
	Depth int // 0 for the depth-free baselines
	TPR   float64
	FPR   float64
}

// Table2 reproduces Table 2: depth-limited mcp and acp (d in {2,3,4,6,8})
// against mcl and kpt on the Krogan graph, scored on the curated
// (MIPS-like) complex ground truth. The cluster target k is the cluster
// count of the mcl reference run, mirroring the paper's use of the
// published 547-cluster mcl clustering.
func Table2(cfg Config) ([]PredictionRow, error) {
	cfg = cfg.withDefaults()
	cfg.applyBudget()
	ds, err := datasets.Krogan(cfg.Seed)
	if err != nil {
		return nil, err
	}
	g := ds.Graph
	truth := ds.Curated

	// Reference mcl clustering (inflation 2.0, biological-significance
	// configuration in the original study).
	mclRes := mcl.Cluster(g, mcl.Options{Inflation: 2.0, MaxNNZPerColumn: cfg.MCLMaxNNZ})
	k := mclRes.Clustering.K()
	if k < 2 {
		return nil, fmt.Errorf("experiments: mcl found %d clusters on krogan", k)
	}
	if k >= g.NumNodes() {
		k = g.NumNodes() - 1
	}

	var out []PredictionRow
	opts := core.Options{
		Seed:        cfg.Seed,
		Schedule:    conn.Schedule{Min: 50, Max: cfg.ScheduleMax, Coef: 8},
		Parallelism: cfg.Parallelism,
	}
	for _, d := range []int{2, 3, 4, 6, 8} {
		dOpts := opts
		dOpts.Depth = d
		oracle := newOracle(g, cfg.Seed+10, cfg)
		mcpCl, _, err := core.MCP(oracle, k, dOpts)
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 mcp d=%d: %v", d, err)
		}
		conf := metrics.PairConfusion(mcpCl, truth)
		out = append(out, PredictionRow{Algo: "mcp", Depth: d, TPR: conf.TPR(), FPR: conf.FPR()})

		oracle = newOracle(g, cfg.Seed+11, cfg)
		acpCl, _, err := core.ACP(oracle, k, dOpts)
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 acp d=%d: %v", d, err)
		}
		conf = metrics.PairConfusion(acpCl, truth)
		out = append(out, PredictionRow{Algo: "acp", Depth: d, TPR: conf.TPR(), FPR: conf.FPR()})
	}

	conf := metrics.PairConfusion(mclRes.Clustering, truth)
	out = append(out, PredictionRow{Algo: "mcl", TPR: conf.TPR(), FPR: conf.FPR()})

	kptCl := kpt.Cluster(g, cfg.Seed)
	conf = metrics.PairConfusion(kptCl, truth)
	out = append(out, PredictionRow{Algo: "kpt", TPR: conf.TPR(), FPR: conf.FPR()})
	return out, nil
}
