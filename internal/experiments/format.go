package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// FormatTable1 renders Table 1 like the paper: graph, nodes, edges.
func FormatTable1(rows []DatasetStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: graphs (largest connected component)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "graph", "nodes", "edges")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %10d\n", r.Name, r.Nodes, r.Edges)
	}
	return b.String()
}

// gridOrder sorts cells by (graph, k, algorithm) with the paper's
// algorithm order.
func gridOrder(cells []Cell) []Cell {
	algoRank := map[string]int{"gmm": 0, "mcl": 1, "mcp": 2, "acp": 3}
	graphRank := map[string]int{"collins": 0, "gavin": 1, "krogan": 2, "dblp": 3}
	out := make([]Cell, len(cells))
	copy(out, cells)
	sort.Slice(out, func(i, j int) bool {
		if graphRank[out[i].Graph] != graphRank[out[j].Graph] {
			return graphRank[out[i].Graph] < graphRank[out[j].Graph]
		}
		if out[i].K != out[j].K {
			return out[i].K < out[j].K
		}
		return algoRank[out[i].Algo] < algoRank[out[j].Algo]
	})
	return out
}

// formatGrid renders one metric of the quality grid as a figure-like table.
func formatGrid(title string, cells []Cell, value func(Cell) float64, format string) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-10s %8s %-6s %12s\n", "graph", "k", "algo", "value")
	for _, c := range gridOrder(cells) {
		fmt.Fprintf(&b, "%-10s %8d %-6s "+format+"\n", c.Graph, c.K, c.Algo, value(c))
	}
	return b.String()
}

// FormatFigure1 renders the p_min and p_avg series of Figure 1.
func FormatFigure1(cells []Cell) string {
	return formatGrid("Figure 1 (top): minimum connection probability p_min", cells,
		func(c Cell) float64 { return c.PMin }, "%12.3f") +
		"\n" +
		formatGrid("Figure 1 (bottom): average connection probability p_avg", cells,
			func(c Cell) float64 { return c.PAvg }, "%12.3f")
}

// FormatFigure2 renders the inner/outer AVPR series of Figure 2.
func FormatFigure2(cells []Cell) string {
	return formatGrid("Figure 2 (top): inner-AVPR (higher is better)", cells,
		func(c Cell) float64 { return c.InnerAVPR }, "%12.3f") +
		"\n" +
		formatGrid("Figure 2 (bottom): outer-AVPR (lower is better)", cells,
			func(c Cell) float64 { return c.OuterAVPR }, "%12.3f")
}

// FormatFigure3 renders the running-time series of Figure 3.
func FormatFigure3(cells []Cell) string {
	return formatGrid("Figure 3: running time (ms)", cells,
		func(c Cell) float64 { return c.Millis }, "%12.1f")
}

// FormatFigure4 renders the DBLP scaling series of Figure 4.
func FormatFigure4(points []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 4: running time vs k on DBLP")
	fmt.Fprintf(&b, "%8s %14s %14s\n", "k", "mcp (ms)", "mcl (ms)")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %14.1f %14.1f\n", p.K, p.MCPMillis, p.MCLMillis)
	}
	return b.String()
}

// FormatTable2 renders Table 2: TPR/FPR of the predictors.
func FormatTable2(rows []PredictionRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2: protein-complex prediction on Krogan vs curated ground truth")
	fmt.Fprintf(&b, "%-6s %6s %8s %8s\n", "algo", "depth", "TPR", "FPR")
	for _, r := range rows {
		depth := "-"
		if r.Depth > 0 {
			depth = fmt.Sprintf("%d", r.Depth)
		}
		fmt.Fprintf(&b, "%-6s %6s %8.3f %8.3f\n", r.Algo, depth, r.TPR, r.FPR)
	}
	return b.String()
}
