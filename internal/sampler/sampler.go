// Package sampler defines the implicit possible-world stream of an
// uncertain graph.
//
// A possible world G ⊑ G keeps each edge e independently with probability
// p(e). World i of a seeded stream is defined by stateless hash coins, so
// edge presence can be queried on the fly without storing anything:
// (seed, index) fully determines a world, and re-evaluating a coin always
// yields the same answer. Depth-limited BFS runs directly on implicit
// worlds via World.BFSWithin; ReachCounter batches such traversals over a
// world range.
//
// Materialized per-world component labels — the connectivity index that
// answers "is u connected to v in world i" in O(1) — live one layer up, in
// internal/worldstore, which caches labels in memory-bounded blocks shared
// by every consumer of the same (graph, seed) stream. Both views of the
// same (seed, index) pair describe the same world: the label matrix is
// just an index over the implicit world.
package sampler

import (
	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// World is an implicitly represented possible world: edge presence is
// decided by stateless hash coins keyed on (seed, index, edge).
type World struct {
	G     *graph.Uncertain
	Seed  uint64
	Index uint64
}

// Contains reports whether the edge with the given ID is present.
func (w World) Contains(edgeID int32) bool {
	return rng.EdgeCoin(w.Seed, w.Index, uint64(edgeID), w.G.CoinThreshold(edgeID))
}

// NumEdgesPresent counts the edges present in this world (testing helper;
// O(m)).
func (w World) NumEdgesPresent() int {
	c := 0
	for id := int32(0); id < int32(w.G.NumEdges()); id++ {
		if w.Contains(id) {
			c++
		}
	}
	return c
}

// PresentEdges returns the IDs of the edges present in this world,
// ascending (O(m)).
func (w World) PresentEdges() []int32 {
	var kept []int32
	for id := int32(0); id < int32(w.G.NumEdges()); id++ {
		if w.Contains(id) {
			kept = append(kept, id)
		}
	}
	return kept
}

// ComponentLabels computes the connected-component labels of this world
// into out (length NumNodes). uf is scratch space and is reset.
func (w World) ComponentLabels(uf *graph.UnionFind, out []int32) {
	uf.Reset()
	for id, e := range w.G.Edges() {
		if rng.EdgeCoin(w.Seed, w.Index, uint64(id), w.G.CoinThreshold(int32(id))) {
			uf.Union(e.U, e.V)
		}
	}
	uf.Labels(out)
}

// BFSWithin visits all nodes at hop distance <= maxDepth from src in this
// world and calls visit(v, depth) for each (including src at depth 0).
// A maxDepth < 0 means unlimited. The two scratch slices must have length
// NumNodes; seen is an epoch array: entries equal to epoch mean "visited".
// Using epochs lets callers reuse the arrays across many BFS runs without
// clearing them.
func (w World) BFSWithin(src graph.NodeID, maxDepth int, seen []uint32, epoch uint32, queue []graph.NodeID, visit func(v graph.NodeID, depth int32)) {
	seen[src] = epoch
	queue = queue[:0]
	queue = append(queue, src)
	visit(src, 0)
	depth := int32(0)
	frontierEnd := 1
	i := 0
	for i < len(queue) {
		if maxDepth >= 0 && depth >= int32(maxDepth) {
			break
		}
		// Expand one full depth layer.
		for ; i < frontierEnd; i++ {
			u := queue[i]
			nodes, ids, _ := w.G.NeighborSlices(u)
			for j, v := range nodes {
				if seen[v] == epoch {
					continue
				}
				id := ids[j]
				if !rng.EdgeCoin(w.Seed, w.Index, uint64(id), w.G.CoinThreshold(id)) {
					continue
				}
				seen[v] = epoch
				queue = append(queue, v)
				visit(v, depth+1)
			}
		}
		depth++
		frontierEnd = len(queue)
	}
}

// ReachCounter runs depth-limited reachability queries against the implicit
// worlds of a seeded stream. It owns reusable scratch buffers, so it is not
// safe for concurrent use; create one per goroutine.
type ReachCounter struct {
	g     *graph.Uncertain
	seed  uint64
	seen  []uint32
	epoch uint32
	queue []graph.NodeID
}

// NewReachCounter returns a counter over g's worlds under seed. It shares
// the world stream with any worldstore.Store built from the same (g, seed):
// world i has identical edges in both views.
func NewReachCounter(g *graph.Uncertain, seed uint64) *ReachCounter {
	return &ReachCounter{
		g:     g,
		seed:  seed,
		seen:  make([]uint32, g.NumNodes()),
		queue: make([]graph.NodeID, 0, g.NumNodes()),
	}
}

// CountWithin adds, for every node u, the number of worlds in [lo, hi) where
// u is within maxDepth hops of c, into counts (length NumNodes; not
// cleared). maxDepth < 0 means unconstrained reachability.
func (rc *ReachCounter) CountWithin(c graph.NodeID, maxDepth int, lo, hi int, counts []int32) {
	for i := lo; i < hi; i++ {
		rc.epoch++
		if rc.epoch == 0 { // wrapped; clear and restart epochs
			for j := range rc.seen {
				rc.seen[j] = 0
			}
			rc.epoch = 1
		}
		w := World{G: rc.g, Seed: rc.seed, Index: uint64(i)}
		w.BFSWithin(c, maxDepth, rc.seen, rc.epoch, rc.queue, func(v graph.NodeID, _ int32) {
			counts[v]++
		})
	}
}

// EstimateWithin returns Monte Carlo estimates of the d-connection
// probability Pr(u ~d c) for all u, over worlds [0, r).
func (rc *ReachCounter) EstimateWithin(c graph.NodeID, maxDepth, r int) []float64 {
	counts := make([]int32, rc.g.NumNodes())
	rc.CountWithin(c, maxDepth, 0, r, counts)
	out := make([]float64, len(counts))
	inv := 1 / float64(r)
	for i, cnt := range counts {
		out[i] = float64(cnt) * inv
	}
	return out
}
