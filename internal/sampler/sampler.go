// Package sampler defines the implicit possible-world stream of an
// uncertain graph.
//
// A possible world G ⊑ G keeps each edge e independently with probability
// p(e). World i of a seeded stream is defined by stateless hash coins, so
// edge presence can be queried on the fly without storing anything:
// (seed, index) fully determines a world, and re-evaluating a coin always
// yields the same answer. Depth-limited BFS runs directly on implicit
// worlds via World.BFSWithin; ReachCounter batches such traversals over a
// world range.
//
// A world can also be materialized as an edge bitmap (FillEdgeBitmap): one
// bit per edge ID, so every coin of the world is evaluated exactly once
// and later traversals test bits instead of re-hashing.
// MultiReachCounter exploits that: given one world's bitmap it runs the
// depth-bounded BFS for a whole batch of centers, paying the edge-coin
// hashing bill once per world instead of once per (world, center).
//
// Materialized per-world artifacts — component labels (the connectivity
// index that answers "is u connected to v in world i" in O(1)) and edge
// bitmaps — live one layer up, in internal/worldstore, which caches them
// in memory-bounded blocks shared by every consumer of the same
// (graph, seed) stream. All views of the same (seed, index) pair describe
// the same world: the label matrix and the bitmap are just indexes over
// the implicit world.
package sampler

import (
	bitsops "math/bits"
	"sync/atomic"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// World is an implicitly represented possible world: edge presence is
// decided by stateless hash coins keyed on (seed, index, edge).
type World struct {
	G     *graph.Uncertain
	Seed  uint64
	Index uint64
}

// Contains reports whether the edge with the given ID is present.
func (w World) Contains(edgeID int32) bool {
	return rng.EdgeCoin(w.Seed, w.Index, uint64(edgeID), w.G.CoinThreshold(edgeID))
}

// NumEdgesPresent counts the edges present in this world (testing helper;
// O(m)).
func (w World) NumEdgesPresent() int {
	c := 0
	for id := int32(0); id < int32(w.G.NumEdges()); id++ {
		if w.Contains(id) {
			c++
		}
	}
	return c
}

// PresentEdges returns the IDs of the edges present in this world,
// ascending (O(m)).
func (w World) PresentEdges() []int32 {
	var kept []int32
	for id := int32(0); id < int32(w.G.NumEdges()); id++ {
		if w.Contains(id) {
			kept = append(kept, id)
		}
	}
	return kept
}

// EdgeBitmapWords returns the length, in uint64 words, of a per-world edge
// bitmap for a graph with m edges: one bit per edge ID.
func EdgeBitmapWords(m int) int { return (m + 63) / 64 }

// FillEdgeBitmap materializes this world's edge set into bits, which must
// have length EdgeBitmapWords(NumEdges): bit e is set iff edge e is
// present. Every edge coin of the world is evaluated exactly once, so a
// bitmap shared across a batch of traversals amortizes the hash-coin cost
// that implicit BFS pays per traversal. The bitmap is a pure function of
// (seed, index): refilling it always produces the same bits — bit e equals
// Contains(e) exactly, the coins are just evaluated branchlessly (raw hash
// vs threshold) and accumulated a register word at a time.
func (w World) FillEdgeBitmap(bits []uint64) {
	m := w.G.NumEdges()
	for wd := range bits {
		base := wd << 6
		end := base + 64
		if end > m {
			end = m
		}
		var acc uint64
		for id := base; id < end; id++ {
			// The borrow of hash - threshold is 1 exactly when
			// hash < threshold, i.e. when the coin succeeds. Pure integer
			// arithmetic — no data-dependent branch, no flag-materializing
			// conditional — so the 64 coins of a word accumulate as a
			// straight-line dependency-free loop the compiler can unroll.
			_, coin := bitsops.Sub64(rng.EdgeHash(w.Seed, w.Index, uint64(id)), w.G.CoinThreshold(int32(id)), 0)
			acc |= coin << (uint(id) & 63)
		}
		bits[wd] = acc
	}
}

// BitmapContains reports whether edge id is present in the world whose
// edge bitmap is bits.
func BitmapContains(bits []uint64, id int32) bool {
	return bits[id>>6]&(1<<(uint(id)&63)) != 0
}

// ComponentLabels computes the connected-component labels of this world
// into out (length NumNodes). uf is scratch space and is reset.
func (w World) ComponentLabels(uf *graph.UnionFind, out []int32) {
	uf.Reset()
	for id, e := range w.G.Edges() {
		if rng.EdgeCoin(w.Seed, w.Index, uint64(id), w.G.CoinThreshold(int32(id))) {
			uf.Union(e.U, e.V)
		}
	}
	uf.Labels(out)
}

// BFSWithin visits all nodes at hop distance <= maxDepth from src in this
// world and calls visit(v, depth) for each (including src at depth 0).
// A maxDepth < 0 means unlimited. The two scratch slices must have length
// NumNodes; seen is an epoch array: entries equal to epoch mean "visited".
// Using epochs lets callers reuse the arrays across many BFS runs without
// clearing them.
func (w World) BFSWithin(src graph.NodeID, maxDepth int, seen []uint32, epoch uint32, queue []graph.NodeID, visit func(v graph.NodeID, depth int32)) {
	seen[src] = epoch
	queue = queue[:0]
	queue = append(queue, src)
	visit(src, 0)
	depth := int32(0)
	frontierEnd := 1
	i := 0
	for i < len(queue) {
		if maxDepth >= 0 && depth >= int32(maxDepth) {
			break
		}
		// Expand one full depth layer.
		for ; i < frontierEnd; i++ {
			u := queue[i]
			nodes, ids, _ := w.G.NeighborSlices(u)
			for j, v := range nodes {
				if seen[v] == epoch {
					continue
				}
				id := ids[j]
				if !rng.EdgeCoin(w.Seed, w.Index, uint64(id), w.G.CoinThreshold(id)) {
					continue
				}
				seen[v] = epoch
				queue = append(queue, v)
				visit(v, depth+1)
			}
		}
		depth++
		frontierEnd = len(queue)
	}
}

// ReachCounter runs depth-limited reachability queries against the implicit
// worlds of a seeded stream. It owns reusable scratch buffers, so it is not
// safe for concurrent use; create one per goroutine.
type ReachCounter struct {
	g     *graph.Uncertain
	seed  uint64
	seen  []uint32
	epoch uint32
	queue []graph.NodeID
}

// NewReachCounter returns a counter over g's worlds under seed. It shares
// the world stream with any worldstore.Store built from the same (g, seed):
// world i has identical edges in both views.
func NewReachCounter(g *graph.Uncertain, seed uint64) *ReachCounter {
	return &ReachCounter{
		g:     g,
		seed:  seed,
		seen:  make([]uint32, g.NumNodes()),
		queue: make([]graph.NodeID, 0, g.NumNodes()),
	}
}

// CountWithin adds, for every node u, the number of worlds in [lo, hi) where
// u is within maxDepth hops of c, into counts (length NumNodes; not
// cleared). maxDepth < 0 means unconstrained reachability.
func (rc *ReachCounter) CountWithin(c graph.NodeID, maxDepth int, lo, hi int, counts []int32) {
	for i := lo; i < hi; i++ {
		rc.epoch++
		if rc.epoch == 0 { // wrapped; clear and restart epochs
			for j := range rc.seen {
				rc.seen[j] = 0
			}
			rc.epoch = 1
		}
		w := World{G: rc.g, Seed: rc.seed, Index: uint64(i)}
		w.BFSWithin(c, maxDepth, rc.seen, rc.epoch, rc.queue, func(v graph.NodeID, _ int32) {
			counts[v]++
		})
	}
}

// EstimateWithin returns Monte Carlo estimates of the d-connection
// probability Pr(u ~d c) for all u, over worlds [0, r).
func (rc *ReachCounter) EstimateWithin(c graph.NodeID, maxDepth, r int) []float64 {
	counts := make([]int32, rc.g.NumNodes())
	rc.CountWithin(c, maxDepth, 0, r, counts)
	out := make([]float64, len(counts))
	inv := 1 / float64(r)
	for i, cnt := range counts {
		out[i] = float64(cnt) * inv
	}
	return out
}

// MultiReachCounter runs depth-limited reachability queries for a whole
// batch of centers against materialized edge bitmaps, using a multi-center
// frontier BFS: centers are packed 64 to a uint64 mask, and one layered
// traversal per world advances every center's frontier simultaneously —
// each present edge moves up to 64 BFS waves in a handful of word
// operations. Where ReachCounter re-evaluates the stateless hash coin for
// every touched edge of every center's BFS, a MultiReachCounter tests the
// world's bitmap — so a batch pays the edge-coin hashing bill once per
// world (when the bitmap is filled) instead of once per (world, center) —
// and where per-center BFS re-scans the adjacency of a node once per
// center whose ball covers it, the shared frontier scans it once per
// layer.
//
// The visit set of each center is a property of the world's edge set alone
// (the depth-d reachability ball), so the counts are bit-identical to a
// per-center ReachCounter.CountWithin over the same range, for any batch
// composition.
//
// The counter owns reusable scratch (epoch-sharded visit/frontier mask
// arrays and frontier queues, shared across worlds), so it is not safe for
// concurrent use; create one per goroutine.
type MultiReachCounter struct {
	g *graph.Uncertain

	// visit[v] is the mask of centers (of the current ≤64-center group)
	// that have reached v, valid iff visitEpoch[v] == epoch. The epoch
	// advances once per (world, group), so worlds reuse the arrays without
	// clearing.
	visit      []uint64
	visitEpoch []uint32
	epoch      uint32

	// curMask[v] holds, for nodes of the current frontier, the bits that
	// first reached v in the previous layer — the waves still expanding.
	// nxtMask accumulates the next layer's arrivals, valid iff
	// nxtEpoch[v] == layer; the two mask arrays swap roles each layer.
	curMask   []uint64
	nxtMask   []uint64
	nxtEpoch  []uint32
	layer     uint32
	frontier  []graph.NodeID
	nextFront []graph.NodeID

	// touched lists the nodes first visited during the current world's
	// traversal — the bit-sliced accumulate pass folds visit[v] of each
	// into the vertical counters after the BFS finishes.
	touched []graph.NodeID

	// acc is the bit-sliced vertical accumulator of accumulate mode
	// (BeginAccum): node v's accumPlanes one-bit planes interleaved at
	// acc[v*accumPlanes : (v+1)*accumPlanes], where word k holds bit k of
	// the per-(node, center) reach counters of the current ≤64-center
	// group — center j's count at node v is Σ_k ((acc[v*8+k]>>j)&1)<<k.
	// Adding one world's reach mask is a ripple-carry add across the
	// planes (countGroup's post-BFS pass): the low half-add is the whole
	// cost for most adds, and each extra carry level is exponentially
	// rarer, so a 64-center increment costs an amortized ~2 word
	// operations where the old flat [n*64]int32 accumulator chased one
	// indexed int32 add per set bit. The node-major interleave puts all eight planes of a
	// node in one 64-byte cache line, so even a full-depth carry chain
	// stays in the line the half-add already pulled — a plane-major
	// layout would stride carries n words apart and miss on every level.
	// The planes also shrink the accumulator 4x (64 bytes per node
	// instead of 256), which together with the raised maxAccumBytes cap
	// lets paper-scale graphs (DBLP, 636751 nodes) take the accumulate
	// path instead of falling back to direct counting. FlushAccum folds
	// the planes into per-center counts and re-zeroes.
	acc []uint64
	// accDirty marks (one bit per node) which counters moved since the
	// last flush, so FlushAccum merges only touched nodes instead of
	// scanning the whole backing.
	accDirty  []uint64
	accWorlds int // worlds accumulated since the last flush (overflow guard)

	// flatAcc is the legacy flat accumulator (flatAccum mode), kept so
	// benchmarks and tests can compare the two accumulate kernels
	// bit-for-bit: flatAcc[v*64 + j] counts worlds that reached v from
	// center j.
	flatAcc   []int32
	flatAccum bool
}

// NewMultiReachCounter returns a batched counter over g. The bitmaps it
// consumes must come from the same graph (same edge IDs).
func NewMultiReachCounter(g *graph.Uncertain) *MultiReachCounter {
	n := g.NumNodes()
	return &MultiReachCounter{
		g:          g,
		visit:      make([]uint64, n),
		visitEpoch: make([]uint32, n),
		curMask:    make([]uint64, n),
		nxtMask:    make([]uint64, n),
		nxtEpoch:   make([]uint32, n),
		frontier:   make([]graph.NodeID, 0, n),
		nextFront:  make([]graph.NodeID, 0, n),
	}
}

// CountWithinWorld adds, for every center cs[j] and every node u within
// maxDepth hops of cs[j] in the world whose edge bitmap is bits, 1 into
// counts[j][u] (counts[j] has length NumNodes and is not cleared).
// maxDepth < 0 means unconstrained reachability. Batches larger than 64
// centers run as successive 64-center mask groups over the same bitmap.
func (mrc *MultiReachCounter) CountWithinWorld(bits []uint64, cs []graph.NodeID, maxDepth int, counts [][]int32) {
	for base := 0; base < len(cs); base += 64 {
		end := base + 64
		if end > len(cs) {
			end = len(cs)
		}
		mrc.countGroup(bits, cs[base:end], maxDepth, counts[base:end], false)
	}
}

// accumPlanes is the bit width of the bit-sliced vertical counters: each
// (node, center) counter spans accumPlanes one-bit planes, so at most
// 2^accumPlanes - 1 worlds may be accumulated between flushes
// (AccumCapacity). 8 planes keep the accumulator at 64 bytes per node while
// leaving a comfortable flush cadence (255 worlds ≈ one worldstore block).
const accumPlanes = 8

// maxAccumBytes caps the per-counter accumulator memory of accumulate
// mode: graphs whose bit-sliced planes (8*accumPlanes bytes per node)
// would exceed it fall back to direct per-vector counting. At 64 MiB the
// bit-sliced cap admits graphs up to ~1M nodes — 16x the ~64k-node ceiling
// of the old flat [n*64]int32 accumulator under its 16 MiB cap — so
// paper-scale instances (DBLP, 636751 nodes) take the accumulate path. The
// cap trades one worker-local block of memory for the fastest innermost
// loop; correctness never depends on the mode.
const maxAccumBytes = 64 << 20

// BeginAccum switches the counter into accumulate mode, reporting whether
// the graph is small enough for the accumulator. In accumulate mode the
// caller feeds worlds through AccumWorld — same BFS, but reach counts land
// in the counter's internal bit-sliced planes — and folds them into
// per-center count vectors with FlushAccum, at least every AccumCapacity
// worlds. Looping AccumWorld + FlushAccum is bit-identical to looping
// CountWithinWorld: both add the same per-world reach indicators, just
// grouped differently.
func (mrc *MultiReachCounter) BeginAccum() bool {
	switch accumKernelOverride.Load() {
	case 1:
		mrc.flatAccum = true
	case 2:
		mrc.flatAccum = false
	}
	n := mrc.g.NumNodes()
	if mrc.flatAccum {
		if mrc.flatAcc == nil {
			if n*64*4 > maxAccumBytes {
				return false
			}
			mrc.flatAcc = make([]int32, n*64)
		}
		return true
	}
	if mrc.acc == nil {
		if n*8*accumPlanes > maxAccumBytes {
			return false
		}
		mrc.acc = make([]uint64, n*accumPlanes)
		mrc.accDirty = make([]uint64, (n+63)/64)
	}
	return true
}

// setFlatAccum switches accumulate mode to the legacy flat [n*64]int32
// accumulator. Test/benchmark hook only: the two kernels add identical
// integer indicators, so estimates never depend on the mode.
func (mrc *MultiReachCounter) setFlatAccum(on bool) { mrc.flatAccum = on }

// accumKernelOverride forces every counter in the process onto one
// accumulate kernel: 0 = per-counter default (bit-sliced planes), 1 =
// legacy flat, 2 = bit-sliced. BeginAccum consults it on every call, so
// the override reaches counters that already sit in worldstore's reach
// pool, not just freshly constructed ones.
var accumKernelOverride atomic.Int32

// OverrideAccumKernel forces the accumulate kernel for the whole package
// until the returned restore func runs. It exists so end-to-end tests can
// pin the estimator stack onto the legacy flat kernel and assert the
// bit-sliced planes produce bit-identical results through the full
// batched depth-limited path; production code never calls it. Overrides
// do not nest meaningfully — restore returns to the state at call time.
func OverrideAccumKernel(flat bool) (restore func()) {
	v := int32(2)
	if flat {
		v = 1
	}
	prev := accumKernelOverride.Swap(v)
	return func() { accumKernelOverride.Store(prev) }
}

// AccumCapacity returns how many worlds may be accumulated between
// FlushAccum calls before a bit-sliced counter could overflow its planes.
// Callers batching more worlds than this must flush on the cadence;
// AccumWorld panics past it rather than wrapping a counter silently.
func (mrc *MultiReachCounter) AccumCapacity() int {
	if mrc.flatAccum {
		return 1<<31 - 1
	}
	return 1<<accumPlanes - 1
}

// AccumWorld is CountWithinWorld for accumulate mode: it adds one world's
// reach into the accumulator. The group is limited to 64 centers (one mask
// word); BeginAccum must have returned true, and no more than
// AccumCapacity worlds may be accumulated between flushes.
func (mrc *MultiReachCounter) AccumWorld(bits []uint64, cs []graph.NodeID, maxDepth int) {
	if len(cs) > 64 {
		panic("sampler: AccumWorld group exceeds 64 centers")
	}
	if mrc.accWorlds >= mrc.AccumCapacity() {
		panic("sampler: AccumWorld past AccumCapacity without FlushAccum")
	}
	mrc.accWorlds++
	mrc.countGroup(bits, cs, maxDepth, nil, true)
}

// FlushAccum adds the accumulated counts of the j-th group center into
// counts[j] for every j, zeroing the accumulator behind itself. counts
// must have the same length as the cs slices passed to AccumWorld since
// the last flush.
func (mrc *MultiReachCounter) FlushAccum(counts [][]int32) {
	n := mrc.g.NumNodes()
	if mrc.flatAccum {
		for v := 0; v < n; v++ {
			base := v << 6
			for j := range counts {
				if c := mrc.flatAcc[base+j]; c != 0 {
					counts[j][v] += c
					mrc.flatAcc[base+j] = 0
				}
			}
		}
		return
	}
	mrc.accWorlds = 0
	// Sparse node-major merge: the dirty bitmap names exactly the nodes
	// whose counters moved since the last flush, so untouched regions of
	// the backing are never scanned. Each dirty node's eight plane words
	// share a cache line; zero words (no center reached the node at that
	// bit weight) are skipped with one compare, and the set bits of a
	// surviving word are dispatched to their center vectors with a
	// popcount-style bit-clear loop.
	for w, dw := range mrc.accDirty {
		if dw == 0 {
			continue
		}
		mrc.accDirty[w] = 0
		for ; dw != 0; dw &= dw - 1 {
			v := w<<6 + bitsops.TrailingZeros64(dw)
			planes := mrc.acc[v*accumPlanes : (v+1)*accumPlanes]
			for k, word := range planes {
				if word == 0 {
					continue
				}
				planes[k] = 0
				weight := int32(1) << uint(k)
				for p := word; p != 0; p &= p - 1 {
					counts[bitsops.TrailingZeros64(p)][v] += weight
				}
			}
		}
	}
}

// countGroup advances one ≤64-center mask group through the world,
// recording reach either directly into counts (accum false) or into the
// accumulator — bit-sliced planes or the legacy flat block — in accumulate
// mode.
func (mrc *MultiReachCounter) countGroup(bits []uint64, cs []graph.NodeID, maxDepth int, counts [][]int32, accum bool) {
	mrc.epoch++
	if mrc.epoch == 0 { // wrapped; clear and restart epochs
		for i := range mrc.visitEpoch {
			mrc.visitEpoch[i] = 0
		}
		mrc.epoch = 1
	}
	epoch := mrc.epoch
	visit, ve := mrc.visit, mrc.visitEpoch

	// The bit-sliced kernel stays out of the traversal loops entirely:
	// the BFS only records first-visited nodes, and one tight pass at the
	// end ripple-adds each node's final reach mask. Interleaving the adds
	// with the traversal (one addMask per propagation event) costs ~60%
	// more — the carry walk competes with the BFS state for registers and
	// re-adds bits the next layer would have folded into one mask.
	sliced := accum && !mrc.flatAccum
	touched := mrc.touched[:0]

	// Layer 0: seed every center's wave (duplicate centers share a node
	// but own distinct mask bits and counts).
	frontier := mrc.frontier[:0]
	for j, c := range cs {
		if ve[c] != epoch {
			ve[c] = epoch
			visit[c] = 0
			frontier = append(frontier, c)
			if sliced {
				touched = append(touched, c)
			}
		}
		visit[c] |= 1 << uint(j)
		switch {
		case !accum:
			counts[j][c]++
		case mrc.flatAccum:
			mrc.flatAcc[int(c)<<6+j]++
		}
	}
	for _, c := range frontier {
		mrc.curMask[c] = visit[c]
	}

	cur, nxt := mrc.curMask, mrc.nxtMask
	next := mrc.nextFront[:0]
	depth := 0
	for len(frontier) > 0 {
		if maxDepth >= 0 && depth >= maxDepth {
			break
		}
		mrc.layer++
		if mrc.layer == 0 { // wrapped; clear and restart layer stamps
			for i := range mrc.nxtEpoch {
				mrc.nxtEpoch[i] = 0
			}
			mrc.layer = 1
		}
		layer := mrc.layer
		next = next[:0]
		for _, u := range frontier {
			fm := cur[u]
			nodes, ids, _ := mrc.g.NeighborSlices(u)
			for k, v := range nodes {
				id := ids[k]
				if bits[id>>6]&(1<<(uint(id)&63)) == 0 {
					continue
				}
				if ve[v] != epoch {
					ve[v] = epoch
					visit[v] = 0
					if sliced {
						touched = append(touched, v)
					}
				}
				prop := fm &^ visit[v]
				if prop == 0 {
					continue
				}
				visit[v] |= prop
				if mrc.nxtEpoch[v] != layer {
					mrc.nxtEpoch[v] = layer
					nxt[v] = 0
					next = append(next, v)
				}
				nxt[v] |= prop
				switch {
				case !accum:
					for p := prop; p != 0; p &= p - 1 {
						counts[bitsops.TrailingZeros64(p)][v]++
					}
				case mrc.flatAccum:
					base := int(v) << 6
					for p := prop; p != 0; p &= p - 1 {
						mrc.flatAcc[base+bitsops.TrailingZeros64(p)]++
					}
				}
			}
		}
		frontier, next = next, frontier
		cur, nxt = nxt, cur
		depth++
	}
	if sliced {
		acc, dirty := mrc.acc, mrc.accDirty
		// One ripple-carry word add per reached node covers every center
		// in its final mask — the bit-sliced replacement for the per-bit
		// indexed increments of the modes above. The ripple runs
		// branchless through plane 3, all in the node's cache line: a
		// level-k carry occurs on ~2^-k of adds, so branching earlier
		// mispredicts too often, while past level 3 (~6%) the branch
		// predicts well. The tail finishes the remaining planes, also
		// branchless; a carry out of the last plane cannot happen because
		// AccumWorld caps the cadence at AccumCapacity worlds.
		for _, v := range touched {
			dirty[v>>6] |= 1 << (uint(v) & 63)
			i := int(v) * accumPlanes
			p := acc[i : i+4 : i+accumPlanes]
			carry := visit[v]
			old := p[0]
			p[0] = old ^ carry
			carry &= old
			old = p[1]
			p[1] = old ^ carry
			carry &= old
			old = p[2]
			p[2] = old ^ carry
			carry &= old
			old = p[3]
			p[3] = old ^ carry
			if carry &= old; carry != 0 {
				q := acc[i+4 : i+accumPlanes : i+accumPlanes]
				old = q[0]
				q[0] = old ^ carry
				carry &= old
				old = q[1]
				q[1] = old ^ carry
				carry &= old
				old = q[2]
				q[2] = old ^ carry
				carry &= old
				q[3] ^= carry
			}
		}
	}
	// Persist the (possibly reallocated) scratch for reuse.
	mrc.frontier, mrc.nextFront = frontier, next
	mrc.curMask, mrc.nxtMask = cur, nxt
	mrc.touched = touched
}
