// Package sampler defines the implicit possible-world stream of an
// uncertain graph.
//
// A possible world G ⊑ G keeps each edge e independently with probability
// p(e). World i of a seeded stream is defined by stateless hash coins, so
// edge presence can be queried on the fly without storing anything:
// (seed, index) fully determines a world, and re-evaluating a coin always
// yields the same answer. Depth-limited BFS runs directly on implicit
// worlds via World.BFSWithin; ReachCounter batches such traversals over a
// world range.
//
// A world can also be materialized as an edge bitmap (FillEdgeBitmap): one
// bit per edge ID, so every coin of the world is evaluated exactly once
// and later traversals test bits instead of re-hashing.
// MultiReachCounter exploits that: given one world's bitmap it runs the
// depth-bounded BFS for a whole batch of centers, paying the edge-coin
// hashing bill once per world instead of once per (world, center).
//
// Materialized per-world artifacts — component labels (the connectivity
// index that answers "is u connected to v in world i" in O(1)) and edge
// bitmaps — live one layer up, in internal/worldstore, which caches them
// in memory-bounded blocks shared by every consumer of the same
// (graph, seed) stream. All views of the same (seed, index) pair describe
// the same world: the label matrix and the bitmap are just indexes over
// the implicit world.
package sampler

import (
	bitsops "math/bits"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// World is an implicitly represented possible world: edge presence is
// decided by stateless hash coins keyed on (seed, index, edge).
type World struct {
	G     *graph.Uncertain
	Seed  uint64
	Index uint64
}

// Contains reports whether the edge with the given ID is present.
func (w World) Contains(edgeID int32) bool {
	return rng.EdgeCoin(w.Seed, w.Index, uint64(edgeID), w.G.CoinThreshold(edgeID))
}

// NumEdgesPresent counts the edges present in this world (testing helper;
// O(m)).
func (w World) NumEdgesPresent() int {
	c := 0
	for id := int32(0); id < int32(w.G.NumEdges()); id++ {
		if w.Contains(id) {
			c++
		}
	}
	return c
}

// PresentEdges returns the IDs of the edges present in this world,
// ascending (O(m)).
func (w World) PresentEdges() []int32 {
	var kept []int32
	for id := int32(0); id < int32(w.G.NumEdges()); id++ {
		if w.Contains(id) {
			kept = append(kept, id)
		}
	}
	return kept
}

// EdgeBitmapWords returns the length, in uint64 words, of a per-world edge
// bitmap for a graph with m edges: one bit per edge ID.
func EdgeBitmapWords(m int) int { return (m + 63) / 64 }

// FillEdgeBitmap materializes this world's edge set into bits, which must
// have length EdgeBitmapWords(NumEdges): bit e is set iff edge e is
// present. Every edge coin of the world is evaluated exactly once, so a
// bitmap shared across a batch of traversals amortizes the hash-coin cost
// that implicit BFS pays per traversal. The bitmap is a pure function of
// (seed, index): refilling it always produces the same bits — bit e equals
// Contains(e) exactly, the coins are just evaluated branchlessly (raw hash
// vs threshold) and accumulated a register word at a time.
func (w World) FillEdgeBitmap(bits []uint64) {
	m := w.G.NumEdges()
	for wd := range bits {
		base := wd << 6
		end := base + 64
		if end > m {
			end = m
		}
		var acc uint64
		for id := base; id < end; id++ {
			var coin uint64
			// Compiles to a flag-set, not a data-dependent branch, so the
			// random coins do not stall the pipeline on mispredictions.
			if rng.EdgeHash(w.Seed, w.Index, uint64(id)) < w.G.CoinThreshold(int32(id)) {
				coin = 1
			}
			acc |= coin << (uint(id) & 63)
		}
		bits[wd] = acc
	}
}

// BitmapContains reports whether edge id is present in the world whose
// edge bitmap is bits.
func BitmapContains(bits []uint64, id int32) bool {
	return bits[id>>6]&(1<<(uint(id)&63)) != 0
}

// ComponentLabels computes the connected-component labels of this world
// into out (length NumNodes). uf is scratch space and is reset.
func (w World) ComponentLabels(uf *graph.UnionFind, out []int32) {
	uf.Reset()
	for id, e := range w.G.Edges() {
		if rng.EdgeCoin(w.Seed, w.Index, uint64(id), w.G.CoinThreshold(int32(id))) {
			uf.Union(e.U, e.V)
		}
	}
	uf.Labels(out)
}

// BFSWithin visits all nodes at hop distance <= maxDepth from src in this
// world and calls visit(v, depth) for each (including src at depth 0).
// A maxDepth < 0 means unlimited. The two scratch slices must have length
// NumNodes; seen is an epoch array: entries equal to epoch mean "visited".
// Using epochs lets callers reuse the arrays across many BFS runs without
// clearing them.
func (w World) BFSWithin(src graph.NodeID, maxDepth int, seen []uint32, epoch uint32, queue []graph.NodeID, visit func(v graph.NodeID, depth int32)) {
	seen[src] = epoch
	queue = queue[:0]
	queue = append(queue, src)
	visit(src, 0)
	depth := int32(0)
	frontierEnd := 1
	i := 0
	for i < len(queue) {
		if maxDepth >= 0 && depth >= int32(maxDepth) {
			break
		}
		// Expand one full depth layer.
		for ; i < frontierEnd; i++ {
			u := queue[i]
			nodes, ids, _ := w.G.NeighborSlices(u)
			for j, v := range nodes {
				if seen[v] == epoch {
					continue
				}
				id := ids[j]
				if !rng.EdgeCoin(w.Seed, w.Index, uint64(id), w.G.CoinThreshold(id)) {
					continue
				}
				seen[v] = epoch
				queue = append(queue, v)
				visit(v, depth+1)
			}
		}
		depth++
		frontierEnd = len(queue)
	}
}

// ReachCounter runs depth-limited reachability queries against the implicit
// worlds of a seeded stream. It owns reusable scratch buffers, so it is not
// safe for concurrent use; create one per goroutine.
type ReachCounter struct {
	g     *graph.Uncertain
	seed  uint64
	seen  []uint32
	epoch uint32
	queue []graph.NodeID
}

// NewReachCounter returns a counter over g's worlds under seed. It shares
// the world stream with any worldstore.Store built from the same (g, seed):
// world i has identical edges in both views.
func NewReachCounter(g *graph.Uncertain, seed uint64) *ReachCounter {
	return &ReachCounter{
		g:     g,
		seed:  seed,
		seen:  make([]uint32, g.NumNodes()),
		queue: make([]graph.NodeID, 0, g.NumNodes()),
	}
}

// CountWithin adds, for every node u, the number of worlds in [lo, hi) where
// u is within maxDepth hops of c, into counts (length NumNodes; not
// cleared). maxDepth < 0 means unconstrained reachability.
func (rc *ReachCounter) CountWithin(c graph.NodeID, maxDepth int, lo, hi int, counts []int32) {
	for i := lo; i < hi; i++ {
		rc.epoch++
		if rc.epoch == 0 { // wrapped; clear and restart epochs
			for j := range rc.seen {
				rc.seen[j] = 0
			}
			rc.epoch = 1
		}
		w := World{G: rc.g, Seed: rc.seed, Index: uint64(i)}
		w.BFSWithin(c, maxDepth, rc.seen, rc.epoch, rc.queue, func(v graph.NodeID, _ int32) {
			counts[v]++
		})
	}
}

// EstimateWithin returns Monte Carlo estimates of the d-connection
// probability Pr(u ~d c) for all u, over worlds [0, r).
func (rc *ReachCounter) EstimateWithin(c graph.NodeID, maxDepth, r int) []float64 {
	counts := make([]int32, rc.g.NumNodes())
	rc.CountWithin(c, maxDepth, 0, r, counts)
	out := make([]float64, len(counts))
	inv := 1 / float64(r)
	for i, cnt := range counts {
		out[i] = float64(cnt) * inv
	}
	return out
}

// MultiReachCounter runs depth-limited reachability queries for a whole
// batch of centers against materialized edge bitmaps, using a multi-center
// frontier BFS: centers are packed 64 to a uint64 mask, and one layered
// traversal per world advances every center's frontier simultaneously —
// each present edge moves up to 64 BFS waves in a handful of word
// operations. Where ReachCounter re-evaluates the stateless hash coin for
// every touched edge of every center's BFS, a MultiReachCounter tests the
// world's bitmap — so a batch pays the edge-coin hashing bill once per
// world (when the bitmap is filled) instead of once per (world, center) —
// and where per-center BFS re-scans the adjacency of a node once per
// center whose ball covers it, the shared frontier scans it once per
// layer.
//
// The visit set of each center is a property of the world's edge set alone
// (the depth-d reachability ball), so the counts are bit-identical to a
// per-center ReachCounter.CountWithin over the same range, for any batch
// composition.
//
// The counter owns reusable scratch (epoch-sharded visit/frontier mask
// arrays and frontier queues, shared across worlds), so it is not safe for
// concurrent use; create one per goroutine.
type MultiReachCounter struct {
	g *graph.Uncertain

	// visit[v] is the mask of centers (of the current ≤64-center group)
	// that have reached v, valid iff visitEpoch[v] == epoch. The epoch
	// advances once per (world, group), so worlds reuse the arrays without
	// clearing.
	visit      []uint64
	visitEpoch []uint32
	epoch      uint32

	// curMask[v] holds, for nodes of the current frontier, the bits that
	// first reached v in the previous layer — the waves still expanding.
	// nxtMask accumulates the next layer's arrivals, valid iff
	// nxtEpoch[v] == layer; the two mask arrays swap roles each layer.
	curMask   []uint64
	nxtMask   []uint64
	nxtEpoch  []uint32
	layer     uint32
	frontier  []graph.NodeID
	nextFront []graph.NodeID

	// acc is the optional flat accumulator of accumulate mode (BeginAccum):
	// acc[v*64 + j] counts how many accumulated worlds reached v from the
	// j-th center of the group. One indexed add per (center, node, world)
	// beats chasing 64 separate count vectors in the innermost BFS loop;
	// FlushAccum folds the block into per-center counts and re-zeroes.
	acc []int32
}

// NewMultiReachCounter returns a batched counter over g. The bitmaps it
// consumes must come from the same graph (same edge IDs).
func NewMultiReachCounter(g *graph.Uncertain) *MultiReachCounter {
	n := g.NumNodes()
	return &MultiReachCounter{
		g:          g,
		visit:      make([]uint64, n),
		visitEpoch: make([]uint32, n),
		curMask:    make([]uint64, n),
		nxtMask:    make([]uint64, n),
		nxtEpoch:   make([]uint32, n),
		frontier:   make([]graph.NodeID, 0, n),
		nextFront:  make([]graph.NodeID, 0, n),
	}
}

// CountWithinWorld adds, for every center cs[j] and every node u within
// maxDepth hops of cs[j] in the world whose edge bitmap is bits, 1 into
// counts[j][u] (counts[j] has length NumNodes and is not cleared).
// maxDepth < 0 means unconstrained reachability. Batches larger than 64
// centers run as successive 64-center mask groups over the same bitmap.
func (mrc *MultiReachCounter) CountWithinWorld(bits []uint64, cs []graph.NodeID, maxDepth int, counts [][]int32) {
	for base := 0; base < len(cs); base += 64 {
		end := base + 64
		if end > len(cs) {
			end = len(cs)
		}
		mrc.countGroup(bits, cs[base:end], maxDepth, counts[base:end], nil)
	}
}

// maxAccumBytes caps the flat accumulator of accumulate mode: graphs whose
// n*64 int32 block would exceed it (n > ~64k nodes) fall back to direct
// per-vector counting. The cap trades one worker-local block of memory for
// the fastest innermost loop; correctness never depends on the mode.
const maxAccumBytes = 16 << 20

// BeginAccum switches the counter into accumulate mode, reporting whether
// the graph is small enough for the flat accumulator. In accumulate mode
// the caller feeds worlds through AccumWorld — same BFS, but reach counts
// land in the counter's internal [n*64] block — and folds the block into
// per-center count vectors with FlushAccum. Looping AccumWorld + one
// FlushAccum is bit-identical to looping CountWithinWorld: both add the
// same per-world reach indicators, just grouped differently.
func (mrc *MultiReachCounter) BeginAccum() bool {
	if mrc.acc == nil {
		n := mrc.g.NumNodes()
		if n*64*4 > maxAccumBytes {
			return false
		}
		mrc.acc = make([]int32, n*64)
	}
	return true
}

// AccumWorld is CountWithinWorld for accumulate mode: it adds one world's
// reach into the flat accumulator. The group is limited to 64 centers (one
// mask word); BeginAccum must have returned true.
func (mrc *MultiReachCounter) AccumWorld(bits []uint64, cs []graph.NodeID, maxDepth int) {
	if len(cs) > 64 {
		panic("sampler: AccumWorld group exceeds 64 centers")
	}
	mrc.countGroup(bits, cs, maxDepth, nil, mrc.acc)
}

// FlushAccum adds the accumulated counts of the j-th group center into
// counts[j] for every j, zeroing the accumulator behind itself. counts
// must have the same length as the cs slices passed to AccumWorld since
// the last flush.
func (mrc *MultiReachCounter) FlushAccum(counts [][]int32) {
	n := mrc.g.NumNodes()
	for v := 0; v < n; v++ {
		base := v << 6
		for j := range counts {
			if c := mrc.acc[base+j]; c != 0 {
				counts[j][v] += c
				mrc.acc[base+j] = 0
			}
		}
	}
}

// countGroup advances one ≤64-center mask group through the world,
// recording reach either directly into counts (acc nil) or into the flat
// accumulator block (accumulate mode).
func (mrc *MultiReachCounter) countGroup(bits []uint64, cs []graph.NodeID, maxDepth int, counts [][]int32, acc []int32) {
	mrc.epoch++
	if mrc.epoch == 0 { // wrapped; clear and restart epochs
		for i := range mrc.visitEpoch {
			mrc.visitEpoch[i] = 0
		}
		mrc.epoch = 1
	}
	epoch := mrc.epoch
	visit, ve := mrc.visit, mrc.visitEpoch

	// Layer 0: seed every center's wave (duplicate centers share a node
	// but own distinct mask bits and counts).
	frontier := mrc.frontier[:0]
	for j, c := range cs {
		if ve[c] != epoch {
			ve[c] = epoch
			visit[c] = 0
			frontier = append(frontier, c)
		}
		visit[c] |= 1 << uint(j)
		if acc != nil {
			acc[int(c)<<6+j]++
		} else {
			counts[j][c]++
		}
	}
	for _, c := range frontier {
		mrc.curMask[c] = visit[c]
	}

	cur, nxt := mrc.curMask, mrc.nxtMask
	next := mrc.nextFront[:0]
	depth := 0
	for len(frontier) > 0 {
		if maxDepth >= 0 && depth >= maxDepth {
			break
		}
		mrc.layer++
		if mrc.layer == 0 { // wrapped; clear and restart layer stamps
			for i := range mrc.nxtEpoch {
				mrc.nxtEpoch[i] = 0
			}
			mrc.layer = 1
		}
		layer := mrc.layer
		next = next[:0]
		for _, u := range frontier {
			fm := cur[u]
			nodes, ids, _ := mrc.g.NeighborSlices(u)
			for k, v := range nodes {
				id := ids[k]
				if bits[id>>6]&(1<<(uint(id)&63)) == 0 {
					continue
				}
				if ve[v] != epoch {
					ve[v] = epoch
					visit[v] = 0
				}
				prop := fm &^ visit[v]
				if prop == 0 {
					continue
				}
				visit[v] |= prop
				if mrc.nxtEpoch[v] != layer {
					mrc.nxtEpoch[v] = layer
					nxt[v] = 0
					next = append(next, v)
				}
				nxt[v] |= prop
				if acc != nil {
					base := int(v) << 6
					for p := prop; p != 0; p &= p - 1 {
						acc[base+bitsops.TrailingZeros64(p)]++
					}
				} else {
					for p := prop; p != 0; p &= p - 1 {
						counts[bitsops.TrailingZeros64(p)][v]++
					}
				}
			}
		}
		frontier, next = next, frontier
		cur, nxt = nxt, cur
		depth++
	}
	// Persist the (possibly reallocated) scratch for reuse.
	mrc.frontier, mrc.nextFront = frontier, next
	mrc.curMask, mrc.nxtMask = cur, nxt
}
