// Package sampler materializes possible worlds of an uncertain graph.
//
// A possible world G ⊑ G keeps each edge e independently with probability
// p(e). The package offers two complementary views:
//
//   - Implicit worlds (World): world i of a seeded stream is defined by
//     stateless hash coins, so edge presence can be queried on the fly
//     without storing anything. Depth-limited BFS runs directly on implicit
//     worlds.
//
//   - Label matrices (LabelSet): for connectivity queries repeated against
//     many nodes, the sampler computes per-world connected-component labels
//     with a union–find pass and caches them. Two nodes are connected in
//     world i iff their labels agree, so estimating Pr(u ~ c) for all u
//     against a center c is a single O(n) scan per world.
//
// Both views of the same (seed, world index) pair describe the same world:
// the label matrix is just a connectivity index over the implicit world.
//
// LabelSet is safe for concurrent use: worlds are immutable once
// materialized, Grow calls serialize, and readers observe atomic snapshots
// of the world list. ReachCounter owns mutable scratch and stays
// single-goroutine; create one per worker.
package sampler

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// World is an implicitly represented possible world: edge presence is
// decided by stateless hash coins keyed on (seed, index, edge).
type World struct {
	G     *graph.Uncertain
	Seed  uint64
	Index uint64
}

// Contains reports whether the edge with the given ID is present.
func (w World) Contains(edgeID int32) bool {
	return rng.EdgeCoin(w.Seed, w.Index, uint64(edgeID), w.G.CoinThreshold(edgeID))
}

// NumEdgesPresent counts the edges present in this world (testing helper;
// O(m)).
func (w World) NumEdgesPresent() int {
	c := 0
	for id := int32(0); id < int32(w.G.NumEdges()); id++ {
		if w.Contains(id) {
			c++
		}
	}
	return c
}

// ComponentLabels computes the connected-component labels of this world
// into out (length NumNodes). uf is scratch space and is reset.
func (w World) ComponentLabels(uf *graph.UnionFind, out []int32) {
	uf.Reset()
	for id, e := range w.G.Edges() {
		if rng.EdgeCoin(w.Seed, w.Index, uint64(id), w.G.CoinThreshold(int32(id))) {
			uf.Union(e.U, e.V)
		}
	}
	uf.Labels(out)
}

// BFSWithin visits all nodes at hop distance <= maxDepth from src in this
// world and calls visit(v, depth) for each (including src at depth 0).
// A maxDepth < 0 means unlimited. The two scratch slices must have length
// NumNodes; seen is an epoch array: entries equal to epoch mean "visited".
// Using epochs lets callers reuse the arrays across many BFS runs without
// clearing them.
func (w World) BFSWithin(src graph.NodeID, maxDepth int, seen []uint32, epoch uint32, queue []graph.NodeID, visit func(v graph.NodeID, depth int32)) {
	seen[src] = epoch
	queue = queue[:0]
	queue = append(queue, src)
	visit(src, 0)
	depth := int32(0)
	frontierEnd := 1
	i := 0
	for i < len(queue) {
		if maxDepth >= 0 && depth >= int32(maxDepth) {
			break
		}
		// Expand one full depth layer.
		for ; i < frontierEnd; i++ {
			u := queue[i]
			nodes, ids, _ := w.G.NeighborSlices(u)
			for j, v := range nodes {
				if seen[v] == epoch {
					continue
				}
				id := ids[j]
				if !rng.EdgeCoin(w.Seed, w.Index, uint64(id), w.G.CoinThreshold(id)) {
					continue
				}
				seen[v] = epoch
				queue = append(queue, v)
				visit(v, depth+1)
			}
		}
		depth++
		frontierEnd = len(queue)
	}
}

// LabelSet is a cache of per-world component labels for worlds
// [0, Worlds()) of a seeded stream. It supports deterministic extension:
// growing the set re-uses the exact same worlds and appends new ones, which
// is what the progressive sampling schedule of Section 4 requires.
//
// LabelSet is safe for concurrent use. Materialized worlds are immutable,
// so readers work against an atomically published snapshot of the world
// list while Grow calls serialize on an internal mutex; a reader holding an
// older snapshot simply sees a prefix of the stream, which is always a
// valid set of worlds.
type LabelSet struct {
	g    *graph.Uncertain
	seed uint64
	n    int

	mu  sync.Mutex                // serializes Grow
	lab atomic.Pointer[[][]int32] // published snapshot; lab[i] = labels of world i
}

// NewLabelSet returns an empty label cache for g under the given seed.
func NewLabelSet(g *graph.Uncertain, seed uint64) *LabelSet {
	ls := &LabelSet{g: g, seed: seed, n: g.NumNodes()}
	empty := make([][]int32, 0)
	ls.lab.Store(&empty)
	return ls
}

// Graph returns the underlying graph.
func (ls *LabelSet) Graph() *graph.Uncertain { return ls.g }

// Seed returns the stream seed.
func (ls *LabelSet) Seed() uint64 { return ls.seed }

// Worlds returns the number of materialized worlds.
func (ls *LabelSet) Worlds() int { return len(*ls.lab.Load()) }

// View returns a snapshot of the materialized worlds: View()[i] holds the
// component labels of world i. The snapshot stays valid (and immutable)
// across later Grow calls; callers must not modify the labels. Hot loops
// should grab one View instead of calling WorldLabels per world.
func (ls *LabelSet) View() [][]int32 { return *ls.lab.Load() }

// Grow extends the cache so that it holds at least r worlds. Worlds are
// computed in parallel across available CPUs. Growing never changes
// already-materialized worlds, and concurrent Grow calls serialize, so the
// stream is identical no matter how many goroutines extend it.
func (ls *LabelSet) Grow(r int) {
	if r <= len(*ls.lab.Load()) {
		return
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	old := *ls.lab.Load()
	cur := len(old)
	if r <= cur {
		return // another goroutine grew past r while we waited
	}
	add := r - cur
	newLab := make([][]int32, add)
	workers := runtime.GOMAXPROCS(0)
	if workers > add {
		workers = add
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, add)
	for i := 0; i < add; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			uf := graph.NewUnionFind(ls.n)
			for i := range next {
				out := make([]int32, ls.n)
				world := World{G: ls.g, Seed: ls.seed, Index: uint64(cur + i)}
				world.ComponentLabels(uf, out)
				newLab[i] = out
			}
		}()
	}
	wg.Wait()
	combined := make([][]int32, cur+add)
	copy(combined, old)
	copy(combined[cur:], newLab)
	ls.lab.Store(&combined)
}

// WorldLabels returns the component labels of world i. Callers must not
// modify the returned slice.
func (ls *LabelSet) WorldLabels(i int) []int32 { return (*ls.lab.Load())[i] }

// Connected reports whether u and v are connected in world i.
func (ls *LabelSet) Connected(i int, u, v graph.NodeID) bool {
	lab := (*ls.lab.Load())[i]
	return lab[u] == lab[v]
}

// CountConnectedFrom adds, for every node u, the number of worlds in
// [lo, hi) where u and c share a component, into counts (length NumNodes).
// counts is not cleared, so callers can accumulate across ranges.
func (ls *LabelSet) CountConnectedFrom(c graph.NodeID, lo, hi int, counts []int32) {
	view := *ls.lab.Load()
	for i := lo; i < hi; i++ {
		lab := view[i]
		lc := lab[c]
		for u, lu := range lab {
			if lu == lc {
				counts[u]++
			}
		}
	}
}

// EstimateFrom returns the Monte Carlo estimates of Pr(u ~ c) for all nodes
// u, using the first r worlds (growing the cache if needed).
func (ls *LabelSet) EstimateFrom(c graph.NodeID, r int) []float64 {
	ls.Grow(r)
	counts := make([]int32, ls.n)
	ls.CountConnectedFrom(c, 0, r, counts)
	out := make([]float64, ls.n)
	inv := 1 / float64(r)
	for i, cnt := range counts {
		out[i] = float64(cnt) * inv
	}
	return out
}

// EstimatePair returns the Monte Carlo estimate of Pr(u ~ v) using the
// first r worlds.
func (ls *LabelSet) EstimatePair(u, v graph.NodeID, r int) float64 {
	ls.Grow(r)
	view := *ls.lab.Load()
	cnt := 0
	for i := 0; i < r; i++ {
		if view[i][u] == view[i][v] {
			cnt++
		}
	}
	return float64(cnt) / float64(r)
}

// ReachCounter runs depth-limited reachability queries against the implicit
// worlds of a seeded stream. It owns reusable scratch buffers, so it is not
// safe for concurrent use; create one per goroutine.
type ReachCounter struct {
	g     *graph.Uncertain
	seed  uint64
	seen  []uint32
	epoch uint32
	queue []graph.NodeID
}

// NewReachCounter returns a counter over g's worlds under seed. It shares
// the world stream with a LabelSet built from the same (g, seed): world i
// has identical edges in both views.
func NewReachCounter(g *graph.Uncertain, seed uint64) *ReachCounter {
	return &ReachCounter{
		g:     g,
		seed:  seed,
		seen:  make([]uint32, g.NumNodes()),
		queue: make([]graph.NodeID, 0, g.NumNodes()),
	}
}

// CountWithin adds, for every node u, the number of worlds in [lo, hi) where
// u is within maxDepth hops of c, into counts (length NumNodes; not
// cleared). maxDepth < 0 means unconstrained reachability.
func (rc *ReachCounter) CountWithin(c graph.NodeID, maxDepth int, lo, hi int, counts []int32) {
	for i := lo; i < hi; i++ {
		rc.epoch++
		if rc.epoch == 0 { // wrapped; clear and restart epochs
			for j := range rc.seen {
				rc.seen[j] = 0
			}
			rc.epoch = 1
		}
		w := World{G: rc.g, Seed: rc.seed, Index: uint64(i)}
		w.BFSWithin(c, maxDepth, rc.seen, rc.epoch, rc.queue, func(v graph.NodeID, _ int32) {
			counts[v]++
		})
	}
}

// EstimateWithin returns Monte Carlo estimates of the d-connection
// probability Pr(u ~d c) for all u, over worlds [0, r).
func (rc *ReachCounter) EstimateWithin(c graph.NodeID, maxDepth, r int) []float64 {
	counts := make([]int32, rc.g.NumNodes())
	rc.CountWithin(c, maxDepth, 0, r, counts)
	out := make([]float64, len(counts))
	inv := 1 / float64(r)
	for i, cnt := range counts {
		out[i] = float64(cnt) * inv
	}
	return out
}
