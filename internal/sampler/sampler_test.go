package sampler

import (
	"math"
	"testing"

	"ucgraph/internal/graph"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Uncertain {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pathGraph(t *testing.T, n int, p float64) *graph.Uncertain {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1), P: p})
	}
	return mustGraph(t, n, edges)
}

func TestWorldDeterministic(t *testing.T) {
	g := pathGraph(t, 10, 0.5)
	w1 := World{G: g, Seed: 42, Index: 3}
	w2 := World{G: g, Seed: 42, Index: 3}
	for id := int32(0); id < int32(g.NumEdges()); id++ {
		if w1.Contains(id) != w2.Contains(id) {
			t.Fatalf("same world disagrees on edge %d", id)
		}
	}
}

func TestWorldsDiffer(t *testing.T) {
	g := pathGraph(t, 50, 0.5)
	w1 := World{G: g, Seed: 42, Index: 0}
	w2 := World{G: g, Seed: 42, Index: 1}
	diff := 0
	for id := int32(0); id < int32(g.NumEdges()); id++ {
		if w1.Contains(id) != w2.Contains(id) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("two different worlds have identical edge sets (49 coin flips)")
	}
}

func TestWorldEdgeFrequency(t *testing.T) {
	g := pathGraph(t, 2, 0.3)
	const r = 20000
	hits := 0
	for i := 0; i < r; i++ {
		if (World{G: g, Seed: 7, Index: uint64(i)}).Contains(0) {
			hits++
		}
	}
	got := float64(hits) / r
	sigma := math.Sqrt(0.3 * 0.7 / r)
	if math.Abs(got-0.3) > 6*sigma {
		t.Fatalf("edge frequency %v, want ~0.3", got)
	}
}

func TestCertainEdgesAlwaysPresent(t *testing.T) {
	g := pathGraph(t, 5, 1.0)
	for i := 0; i < 500; i++ {
		w := World{G: g, Seed: 9, Index: uint64(i)}
		if w.NumEdgesPresent() != g.NumEdges() {
			t.Fatalf("world %d dropped a p=1 edge", i)
		}
	}
}

func TestComponentLabelsMatchContains(t *testing.T) {
	// Labels must agree with a reachability check done via Contains.
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.5}, {U: 3, V: 4, P: 0.5},
		{U: 2, V: 3, P: 0.5}, {U: 4, V: 5, P: 0.5}, {U: 0, V: 5, P: 0.5},
	})
	uf := graph.NewUnionFind(6)
	labels := make([]int32, 6)
	for i := 0; i < 200; i++ {
		w := World{G: g, Seed: 11, Index: uint64(i)}
		w.ComponentLabels(uf, labels)
		// Reference: build adjacency from Contains, BFS from each node.
		reach := worldReachability(g, w)
		for u := int32(0); u < 6; u++ {
			for v := int32(0); v < 6; v++ {
				if (labels[u] == labels[v]) != reach[u][v] {
					t.Fatalf("world %d: labels and BFS disagree on (%d,%d)", i, u, v)
				}
			}
		}
	}
}

// worldReachability computes the full reachability matrix of a world by BFS
// over Contains — a slow reference implementation for tests.
func worldReachability(g *graph.Uncertain, w World) [][]bool {
	n := g.NumNodes()
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		seen := make([]bool, n)
		queue := []graph.NodeID{int32(s)}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			reach[s][u] = true
			nodes, ids, _ := g.NeighborSlices(u)
			for j, v := range nodes {
				if !seen[v] && w.Contains(ids[j]) {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return reach
}

func TestBFSWithinDepthLimit(t *testing.T) {
	// Certain path graph: BFSWithin(0, d) must reach exactly nodes 0..d.
	g := pathGraph(t, 10, 1.0)
	w := World{G: g, Seed: 1, Index: 0}
	seen := make([]uint32, 10)
	queue := make([]graph.NodeID, 0, 10)
	for d := 0; d < 10; d++ {
		reached := map[graph.NodeID]int32{}
		w.BFSWithin(0, d, seen, uint32(d+1), queue, func(v graph.NodeID, depth int32) {
			reached[v] = depth
		})
		if len(reached) != d+1 {
			t.Fatalf("depth %d reached %d nodes, want %d", d, len(reached), d+1)
		}
		for v, depth := range reached {
			if depth != int32(v) {
				t.Fatalf("node %d reported depth %d", v, depth)
			}
		}
	}
}

func TestBFSWithinUnlimitedMatchesLabels(t *testing.T) {
	g := mustGraph(t, 8, []graph.Edge{
		{U: 0, V: 1, P: 0.6}, {U: 1, V: 2, P: 0.6}, {U: 2, V: 3, P: 0.6},
		{U: 4, V: 5, P: 0.6}, {U: 5, V: 6, P: 0.6}, {U: 3, V: 4, P: 0.6},
		{U: 6, V: 7, P: 0.6}, {U: 0, V: 7, P: 0.6},
	})
	uf := graph.NewUnionFind(8)
	labels := make([]int32, 8)
	seen := make([]uint32, 8)
	queue := make([]graph.NodeID, 0, 8)
	for i := 0; i < 300; i++ {
		w := World{G: g, Seed: 5, Index: uint64(i)}
		w.ComponentLabels(uf, labels)
		got := make([]bool, 8)
		w.BFSWithin(0, -1, seen, uint32(i+1), queue, func(v graph.NodeID, _ int32) {
			got[v] = true
		})
		for v := int32(0); v < 8; v++ {
			want := labels[v] == labels[0]
			if got[v] != want {
				t.Fatalf("world %d node %d: BFS=%v labels=%v", i, v, got[v], want)
			}
		}
	}
}

func TestPresentEdgesMatchesContains(t *testing.T) {
	g := pathGraph(t, 12, 0.5)
	for i := 0; i < 50; i++ {
		w := World{G: g, Seed: 19, Index: uint64(i)}
		kept := w.PresentEdges()
		set := map[int32]bool{}
		for _, id := range kept {
			set[id] = true
		}
		for id := int32(0); id < int32(g.NumEdges()); id++ {
			if set[id] != w.Contains(id) {
				t.Fatalf("world %d edge %d: PresentEdges=%v Contains=%v",
					i, id, set[id], w.Contains(id))
			}
		}
	}
}

func TestReachCounterMatchesLabelsUnlimited(t *testing.T) {
	// With maxDepth < 0 the ReachCounter must agree exactly with the
	// component labels, world by world, because they share the coin stream.
	g := mustGraph(t, 7, []graph.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.4}, {U: 2, V: 3, P: 0.6},
		{U: 3, V: 4, P: 0.7}, {U: 4, V: 5, P: 0.5}, {U: 5, V: 6, P: 0.3},
		{U: 6, V: 0, P: 0.5},
	})
	const seed, r = 31, 500
	uf := graph.NewUnionFind(7)
	lab := make([]int32, 7)
	rc := NewReachCounter(g, seed)
	for _, c := range []graph.NodeID{0, 3, 6} {
		want := make([]int32, 7)
		for i := 0; i < r; i++ {
			w := World{G: g, Seed: seed, Index: uint64(i)}
			w.ComponentLabels(uf, lab)
			for u := range want {
				if lab[u] == lab[c] {
					want[u]++
				}
			}
		}
		got := make([]int32, 7)
		rc.CountWithin(c, -1, 0, r, got)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("center %d node %d: reach=%d labels=%d", c, u, got[u], want[u])
			}
		}
	}
}

func TestReachCounterDepthMonotone(t *testing.T) {
	// Counts must be nondecreasing in depth and bounded by unlimited.
	g := pathGraph(t, 8, 0.7)
	rc := NewReachCounter(g, 13)
	const r = 300
	prev := make([]int32, 8)
	rc.CountWithin(0, 0, 0, r, prev)
	for d := 1; d <= 8; d++ {
		cur := make([]int32, 8)
		rc.CountWithin(0, d, 0, r, cur)
		for u := range cur {
			if cur[u] < prev[u] {
				t.Fatalf("depth %d decreased count at node %d: %d -> %d", d, u, prev[u], cur[u])
			}
		}
		prev = cur
	}
	unlimited := make([]int32, 8)
	rc.CountWithin(0, -1, 0, r, unlimited)
	for u := range unlimited {
		if prev[u] != unlimited[u] {
			t.Fatalf("depth-8 counts differ from unlimited on an 8-path at node %d", u)
		}
	}
}

func TestReachCounterDepthLimitedPathProbability(t *testing.T) {
	// On a path, Pr(0 ~d i) = p^i for i <= d and 0 for i > d.
	g := pathGraph(t, 6, 0.6)
	rc := NewReachCounter(g, 17)
	const r = 30000
	est := rc.EstimateWithin(0, 2, r)
	wants := []float64{1, 0.6, 0.36, 0, 0, 0}
	for i, want := range wants {
		sigma := math.Sqrt(want*(1-want)/r) + 1e-9
		if math.Abs(est[i]-want) > 6*sigma {
			t.Fatalf("d=2 est[%d] = %v, want ~%v", i, est[i], want)
		}
	}
}

func TestReachCounterEpochWraparound(t *testing.T) {
	// Force epoch wraparound by setting it near the max and verify queries
	// still work. (White-box: manipulates the internal epoch.)
	g := pathGraph(t, 4, 1.0)
	rc := NewReachCounter(g, 21)
	rc.epoch = ^uint32(0) - 2
	counts := make([]int32, 4)
	rc.CountWithin(0, -1, 0, 10, counts)
	for u, c := range counts {
		if c != 10 {
			t.Fatalf("after epoch wrap, node %d count = %d, want 10", u, c)
		}
	}
}

func TestFillEdgeBitmapMatchesContains(t *testing.T) {
	// The bitmap is just a materialization of Contains: every bit must
	// agree with the hash coin, including edges past the last full word.
	g := pathGraph(t, 70, 0.5) // 69 edges: exercises a ragged final word
	bits := make([]uint64, EdgeBitmapWords(g.NumEdges()))
	for i := 0; i < 100; i++ {
		w := World{G: g, Seed: 23, Index: uint64(i)}
		w.FillEdgeBitmap(bits)
		for id := int32(0); id < int32(g.NumEdges()); id++ {
			if BitmapContains(bits, id) != w.Contains(id) {
				t.Fatalf("world %d edge %d: bitmap=%v Contains=%v",
					i, id, BitmapContains(bits, id), w.Contains(id))
			}
		}
	}
}

func TestFillEdgeBitmapClearsStaleBits(t *testing.T) {
	// Refilling a buffer for a different world must not leak bits.
	g := pathGraph(t, 40, 0.5)
	bits := make([]uint64, EdgeBitmapWords(g.NumEdges()))
	for i := range bits {
		bits[i] = ^uint64(0)
	}
	w := World{G: g, Seed: 3, Index: 5}
	w.FillEdgeBitmap(bits)
	for id := int32(0); id < int32(g.NumEdges()); id++ {
		if BitmapContains(bits, id) != w.Contains(id) {
			t.Fatalf("stale bit survived refill at edge %d", id)
		}
	}
}

func TestMultiReachCounterMatchesReachCounter(t *testing.T) {
	// The batched contract: looping CountWithinWorld over worlds must be
	// bit-identical to a per-center ReachCounter over the same range, for
	// limited and unlimited depths.
	g := mustGraph(t, 9, []graph.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.4}, {U: 2, V: 3, P: 0.6},
		{U: 3, V: 4, P: 0.7}, {U: 4, V: 5, P: 0.5}, {U: 5, V: 6, P: 0.3},
		{U: 6, V: 7, P: 0.5}, {U: 7, V: 8, P: 0.8}, {U: 8, V: 0, P: 0.4},
		{U: 1, V: 7, P: 0.6},
	})
	const seed, r = 29, 400
	cs := []graph.NodeID{0, 4, 7, 4} // includes a duplicate
	bits := make([]uint64, EdgeBitmapWords(g.NumEdges()))
	for _, depth := range []int{0, 1, 2, 3, -1} {
		mrc := NewMultiReachCounter(g)
		got := make([][]int32, len(cs))
		for j := range got {
			got[j] = make([]int32, g.NumNodes())
		}
		for i := 0; i < r; i++ {
			w := World{G: g, Seed: seed, Index: uint64(i)}
			w.FillEdgeBitmap(bits)
			mrc.CountWithinWorld(bits, cs, depth, got)
		}
		for j, c := range cs {
			rc := NewReachCounter(g, seed)
			want := make([]int32, g.NumNodes())
			rc.CountWithin(c, depth, 0, r, want)
			for u := range want {
				if got[j][u] != want[u] {
					t.Fatalf("depth=%d center %d node %d: multi=%d single=%d",
						depth, c, u, got[j][u], want[u])
				}
			}
		}
	}
}

func TestMultiReachCounterEpochWraparound(t *testing.T) {
	// White-box: force the shared epoch counter to wrap mid-batch and
	// verify the seen array is cleared rather than poisoned.
	g := pathGraph(t, 5, 1.0)
	mrc := NewMultiReachCounter(g)
	mrc.epoch = ^uint32(0) - 1
	bits := make([]uint64, EdgeBitmapWords(g.NumEdges()))
	cs := []graph.NodeID{0, 2, 4}
	counts := make([][]int32, len(cs))
	for j := range counts {
		counts[j] = make([]int32, 5)
	}
	for i := 0; i < 4; i++ {
		w := World{G: g, Seed: 7, Index: uint64(i)}
		w.FillEdgeBitmap(bits)
		mrc.CountWithinWorld(bits, cs, -1, counts)
	}
	for j := range cs {
		for u, c := range counts[j] {
			if c != 4 {
				t.Fatalf("after epoch wrap, center %d node %d count = %d, want 4",
					cs[j], u, c)
			}
		}
	}
}

func BenchmarkComponentLabels(b *testing.B) {
	edges := make([]graph.Edge, 0, 3000)
	for i := 0; i < 1000; i++ {
		edges = append(edges,
			graph.Edge{U: int32(i), V: int32((i + 1) % 1000), P: 0.5},
			graph.Edge{U: int32(i), V: int32((i + 37) % 1000), P: 0.3},
			graph.Edge{U: int32(i), V: int32((i + 111) % 1000), P: 0.7})
	}
	g, err := graph.FromEdges(1000, edges)
	if err != nil {
		b.Fatal(err)
	}
	uf := graph.NewUnionFind(1000)
	out := make([]int32, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := World{G: g, Seed: uint64(i), Index: uint64(i)}
		w.ComponentLabels(uf, out)
	}
}
