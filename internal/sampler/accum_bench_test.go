package sampler

import (
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/rng"
)

// The accumulate-kernel benchmarks behind BENCH_store.json (make
// bench-store): one world's 64-center depth-limited reach folded into the
// accumulator, bit-sliced vertical planes vs the legacy flat [n*64]int32
// block. Both kernels add identical integer indicators — the comparison
// is pure speed and memory (the planes use 64 bytes per node to flat's
// 256, which is what lifts the accumulate-path node cap 16x).

// benchAccumGraph builds a ring-with-chords graph sized so the BFS
// touches a realistic spread of nodes per world.
func benchAccumGraph(b *testing.B, n int) *graph.Uncertain {
	b.Helper()
	x := rng.NewXoshiro256(99)
	gb := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := gb.AddEdge(int32(i), int32((i+1)%n), 0.3+0.6*x.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < n/2; i++ {
		u, v := int32(x.Intn(n)), int32(x.Intn(n))
		if u != v {
			_ = gb.AddEdge(u, v, 0.2+0.7*x.Float64())
		}
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchmarkAccum(b *testing.B, flat bool, depth int) {
	const n, centers = 30000, 64
	g := benchAccumGraph(b, n)
	mrc := NewMultiReachCounter(g)
	mrc.setFlatAccum(flat)
	if !mrc.BeginAccum() {
		b.Fatal("BeginAccum refused the bench graph")
	}
	cs := make([]graph.NodeID, centers)
	x := rng.NewXoshiro256(7)
	for j := range cs {
		cs[j] = graph.NodeID(x.Intn(n))
	}
	counts := make([][]int32, centers)
	for j := range counts {
		counts[j] = make([]int32, n)
	}
	// A small rotation of pre-filled world bitmaps keeps the benchmark on
	// the accumulate kernel instead of the edge-coin hashing.
	const worlds = 8
	bitmaps := make([][]uint64, worlds)
	for i := range bitmaps {
		bitmaps[i] = make([]uint64, EdgeBitmapWords(g.NumEdges()))
		(World{G: g, Seed: 17, Index: uint64(i)}).FillEdgeBitmap(bitmaps[i])
	}
	capacity := mrc.AccumCapacity()
	pending := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mrc.AccumWorld(bitmaps[i%worlds], cs, depth)
		if pending++; pending == capacity {
			mrc.FlushAccum(counts)
			pending = 0
		}
	}
	if pending > 0 {
		mrc.FlushAccum(counts)
	}
}

// Full reach (depth -1) is the paper's primary estimator — per-world
// connected components, where a reached node's mask averages dozens of set
// centers and the bit-sliced kernel folds them in one ripple-carry add.
// Depth2 is the sparsest depth-limited probe: masks are mostly one bit,
// the flat kernel's best case.
func BenchmarkAccumBitSlicedFull(b *testing.B)   { benchmarkAccum(b, false, -1) }
func BenchmarkAccumFlatFull(b *testing.B)        { benchmarkAccum(b, true, -1) }
func BenchmarkAccumBitSlicedDepth2(b *testing.B) { benchmarkAccum(b, false, 2) }
func BenchmarkAccumFlatDepth2(b *testing.B)      { benchmarkAccum(b, true, 2) }
