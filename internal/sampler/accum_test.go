package sampler

import (
	"testing"

	"ucgraph/internal/graph"
)

// The accumulate-mode contracts: the bit-sliced vertical counters, the
// legacy flat accumulator and direct per-vector counting all add the same
// per-world reach indicators, so their counts are bit-identical; the
// planes hold exactly AccumCapacity worlds between flushes and refuse
// more instead of overflowing silently.

// accumCounts runs W worlds of cs through accumulate mode (flushing on
// the counter's capacity cadence) and returns the folded counts.
func accumCounts(t *testing.T, mrc *MultiReachCounter, g *graph.Uncertain, seed uint64, cs []graph.NodeID, depth, worlds int) [][]int32 {
	t.Helper()
	if !mrc.BeginAccum() {
		t.Fatal("BeginAccum refused a tiny graph")
	}
	counts := make([][]int32, len(cs))
	for j := range counts {
		counts[j] = make([]int32, g.NumNodes())
	}
	bits := make([]uint64, EdgeBitmapWords(g.NumEdges()))
	capacity := mrc.AccumCapacity()
	pending := 0
	for i := 0; i < worlds; i++ {
		w := World{G: g, Seed: seed, Index: uint64(i)}
		w.FillEdgeBitmap(bits)
		mrc.AccumWorld(bits, cs, depth)
		if pending++; pending == capacity {
			mrc.FlushAccum(counts)
			pending = 0
		}
	}
	if pending > 0 {
		mrc.FlushAccum(counts)
	}
	return counts
}

func TestAccumBitSlicedMatchesFlatAndDirect(t *testing.T) {
	g := mustGraph(t, 9, []graph.Edge{
		{U: 0, V: 1, P: 0.5}, {U: 1, V: 2, P: 0.4}, {U: 2, V: 3, P: 0.6},
		{U: 3, V: 4, P: 0.7}, {U: 4, V: 5, P: 0.5}, {U: 5, V: 6, P: 0.3},
		{U: 6, V: 7, P: 0.5}, {U: 7, V: 8, P: 0.8}, {U: 8, V: 0, P: 0.4},
		{U: 1, V: 7, P: 0.6},
	})
	const seed, r = 31, 700 // > AccumCapacity, so the cadence flush runs
	cs := []graph.NodeID{0, 4, 7, 4}
	for _, depth := range []int{0, 1, 2, -1} {
		direct := make([][]int32, len(cs))
		for j := range direct {
			direct[j] = make([]int32, g.NumNodes())
		}
		mrc := NewMultiReachCounter(g)
		bits := make([]uint64, EdgeBitmapWords(g.NumEdges()))
		for i := 0; i < r; i++ {
			w := World{G: g, Seed: seed, Index: uint64(i)}
			w.FillEdgeBitmap(bits)
			mrc.CountWithinWorld(bits, cs, depth, direct)
		}

		sliced := accumCounts(t, NewMultiReachCounter(g), g, seed, cs, depth, r)

		flat := NewMultiReachCounter(g)
		flat.setFlatAccum(true)
		flatCounts := accumCounts(t, flat, g, seed, cs, depth, r)

		for j := range cs {
			for u := range direct[j] {
				if sliced[j][u] != direct[j][u] {
					t.Fatalf("depth=%d center %d node %d: bit-sliced %d != direct %d",
						depth, j, u, sliced[j][u], direct[j][u])
				}
				if flatCounts[j][u] != direct[j][u] {
					t.Fatalf("depth=%d center %d node %d: flat %d != direct %d",
						depth, j, u, flatCounts[j][u], direct[j][u])
				}
			}
		}
	}
}

// TestAccumCapacitySaturatesAllPlanes drives every counter to exactly
// AccumCapacity (255) on a certain-edge graph, exercising carry chains
// through all planes of the ripple-carry add.
func TestAccumCapacitySaturatesAllPlanes(t *testing.T) {
	g := pathGraph(t, 6, 1.0)
	mrc := NewMultiReachCounter(g)
	if !mrc.BeginAccum() {
		t.Fatal("BeginAccum refused a tiny graph")
	}
	cs := []graph.NodeID{0, 3}
	capacity := mrc.AccumCapacity()
	if capacity != 255 {
		t.Fatalf("bit-sliced AccumCapacity = %d, want 255", capacity)
	}
	bits := make([]uint64, EdgeBitmapWords(g.NumEdges()))
	for i := 0; i < capacity; i++ {
		w := World{G: g, Seed: 1, Index: uint64(i)}
		w.FillEdgeBitmap(bits)
		mrc.AccumWorld(bits, cs, -1)
	}
	counts := [][]int32{make([]int32, g.NumNodes()), make([]int32, g.NumNodes())}
	mrc.FlushAccum(counts)
	for j := range cs {
		for u := 0; u < g.NumNodes(); u++ {
			if counts[j][u] != int32(capacity) {
				t.Fatalf("center %d node %d: count %d, want %d (all edges certain)",
					j, u, counts[j][u], capacity)
			}
		}
	}

	// One world past capacity without a flush must panic, not wrap.
	w := World{G: g, Seed: 1, Index: uint64(capacity)}
	w.FillEdgeBitmap(bits)
	mrc.AccumWorld(bits, cs, -1) // fine: the flush reset the cadence
	for i := 1; i < capacity; i++ {
		wi := World{G: g, Seed: 1, Index: uint64(capacity + i)}
		wi.FillEdgeBitmap(bits)
		mrc.AccumWorld(bits, cs, -1)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AccumWorld past AccumCapacity did not panic")
		}
	}()
	mrc.AccumWorld(bits, cs, -1)
}

// TestAccumFlushResetsPlanes: a flush zeroes the accumulator, so a second
// accumulate round starts from scratch instead of inheriting counts.
func TestAccumFlushResetsPlanes(t *testing.T) {
	g := pathGraph(t, 5, 1.0)
	mrc := NewMultiReachCounter(g)
	if !mrc.BeginAccum() {
		t.Fatal("BeginAccum refused")
	}
	cs := []graph.NodeID{0}
	bits := make([]uint64, EdgeBitmapWords(g.NumEdges()))
	(World{G: g, Seed: 2, Index: 0}).FillEdgeBitmap(bits)

	first := [][]int32{make([]int32, g.NumNodes())}
	mrc.AccumWorld(bits, cs, -1)
	mrc.FlushAccum(first)

	second := [][]int32{make([]int32, g.NumNodes())}
	mrc.AccumWorld(bits, cs, -1)
	mrc.FlushAccum(second)
	for u := range first[0] {
		if first[0][u] != 1 || second[0][u] != 1 {
			t.Fatalf("node %d: rounds %d/%d, want 1/1 (flush must reset)", u, first[0][u], second[0][u])
		}
	}
}
