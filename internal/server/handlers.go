package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/core"
	"ucgraph/internal/gmm"
	"ucgraph/internal/graph"
	"ucgraph/internal/knn"
	"ucgraph/internal/kpt"
	"ucgraph/internal/mcl"
	"ucgraph/internal/obs"
)

// ---- /healthz, /statsz, /v1/graphs ------------------------------------

// healthPingTimeout bounds the shard pings one readiness probe spends.
const healthPingTimeout = 2 * time.Second

// handleHealthz reports liveness — and, in a sharded deployment,
// readiness: until every configured shard worker answers a ping (for
// every served graph, with matching graph identity), the daemon reports
// not_ready with a 503 so load balancers keep traffic away from a
// coordinator whose workers are still coming up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSONStatus(w, http.StatusServiceUnavailable, map[string]any{
			"status":    "draining",
			"uptime_ms": time.Since(s.start).Milliseconds(),
			// Exclude this probe from the count the operator watches.
			"inflight": s.inflight.Load() - 1,
		})
		return
	}
	body := map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"graphs":    len(s.graphs),
	}
	if len(s.opts.Shards) > 0 {
		body["shards"] = len(s.opts.Shards)
		ctx, cancel := context.WithTimeout(r.Context(), healthPingTimeout)
		defer cancel()
		// All graphs ping concurrently (and each coordinator pings its
		// workers concurrently), so the probe costs one slowest
		// round-trip, not graphs x workers of them.
		errs := make([]error, len(s.names))
		var wg sync.WaitGroup
		for i, name := range s.names {
			wg.Add(1)
			go func(i int, h *graphHandle) {
				defer wg.Done()
				errs[i] = h.coord.Ping(ctx)
			}(i, s.graphs[name])
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			body["status"] = "not_ready"
			body["error"] = err.Error()
			s.writeJSONStatus(w, http.StatusServiceUnavailable, body)
			return
		}
	}
	s.writeJSON(w, body)
}

// storeStats mirrors worldstore.Stats with stable JSON names.
type storeStats struct {
	Worlds               int    `json:"worlds"`
	ResidentBlocks       int    `json:"resident_blocks"`
	ResidentLabelBlocks  int    `json:"resident_label_blocks"`
	ResidentBitmapBlocks int    `json:"resident_bitmap_blocks"`
	ResidentBytes        int64  `json:"resident_bytes"`
	BlockWorlds          int    `json:"block_worlds"`
	Hits                 uint64 `json:"hits"`
	Materializations     uint64 `json:"materializations"`
	Recomputes           uint64 `json:"recomputes"`
	ColdRecomputes       uint64 `json:"cold_recomputes"`
	PostSpillRecomputes  uint64 `json:"post_spill_recomputes"`
	Evictions            uint64 `json:"evictions"`
	DiskHits             uint64 `json:"disk_hits"`
	DiskBytes            int64  `json:"disk_bytes"`
	SpillWrites          uint64 `json:"spill_writes"`
	CorruptDropped       uint64 `json:"corrupt_dropped"`
	AccumWorlds          uint64 `json:"accum_worlds"`
	AccumFlushes         uint64 `json:"accum_flushes"`
	DirectWorlds         uint64 `json:"direct_worlds"`
	CacheDir             string `json:"cache_dir,omitempty"`
}

func (h *graphHandle) storeStats() storeStats {
	st := h.store.Stats()
	return storeStats{
		Worlds:               st.Worlds,
		ResidentBlocks:       st.ResidentBlocks,
		ResidentLabelBlocks:  st.ResidentLabelBlocks,
		ResidentBitmapBlocks: st.ResidentBitmapBlocks,
		ResidentBytes:        st.ResidentBytes,
		BlockWorlds:          st.BlockWorlds,
		Hits:                 st.Hits,
		Materializations:     st.Materializations,
		Recomputes:           st.Recomputes,
		ColdRecomputes:       st.ColdRecomputes,
		PostSpillRecomputes:  st.PostSpillRecomputes,
		Evictions:            st.Evictions,
		DiskHits:             st.DiskHits,
		DiskBytes:            st.DiskBytes,
		SpillWrites:          st.SpillWrites,
		CorruptDropped:       st.CorruptDropped,
		AccumWorlds:          st.AccumWorlds,
		AccumFlushes:         st.AccumFlushes,
		DirectWorlds:         st.DirectWorlds,
		CacheDir:             st.CacheDir,
	}
}

// shardStats mirrors shard.WorkerStats with stable JSON names — the
// per-graph shard health block of /statsz.
type shardStats struct {
	Addr             string `json:"addr"`
	State            string `json:"state"`
	Requests         uint64 `json:"requests"`
	Failures         uint64 `json:"failures"`
	Duplicates       uint64 `json:"duplicates"`
	RangesServed     uint64 `json:"ranges_served"`
	WorldsServed     uint64 `json:"worlds_served"`
	BreakerTrips     uint64 `json:"breaker_trips,omitempty"`
	BreakerOpen      bool   `json:"breaker_open,omitempty"`
	IntegrityRejects uint64 `json:"integrity_rejects,omitempty"`
	LastRTTMS        int64  `json:"last_rtt_ms"`
	LastOKMS         int64  `json:"last_ok_unix_ms,omitempty"`
	LastErr          string `json:"last_err,omitempty"`
}

func (h *graphHandle) shardStats() []shardStats {
	ws := h.coord.WorkerStats()
	out := make([]shardStats, len(ws))
	for i, st := range ws {
		out[i] = shardStats{
			Addr:             st.Addr,
			State:            st.State,
			Requests:         st.Requests,
			Failures:         st.Failures,
			Duplicates:       st.Duplicates,
			RangesServed:     st.RangesServed,
			WorldsServed:     st.WorldsServed,
			BreakerTrips:     st.BreakerTrips,
			BreakerOpen:      st.BreakerOpen,
			IntegrityRejects: st.IntegrityRejects,
			LastRTTMS:        st.LastRTT.Milliseconds(),
			LastErr:          st.LastErr,
		}
		if !st.LastOK.IsZero() {
			out[i].LastOKMS = st.LastOK.UnixMilli()
		}
	}
	return out
}

// fabricStats mirrors shard.FabricStats — coordinator-wide hedging and
// re-scatter counters for one graph.
type fabricStats struct {
	Hedges           uint64 `json:"hedges"`
	Duplicates       uint64 `json:"duplicates"`
	Rescatters       uint64 `json:"rescatters"`
	BreakerTrips     uint64 `json:"breaker_trips"`
	Quarantines      uint64 `json:"quarantines"`
	IntegrityRejects uint64 `json:"integrity_rejects"`
	Audits           uint64 `json:"audits"`
	AuditDivergences uint64 `json:"audit_divergences"`
}

func (h *graphHandle) fabricStats() fabricStats {
	fs := h.coord.FabricStats()
	return fabricStats{
		Hedges:           fs.Hedges,
		Duplicates:       fs.Duplicates,
		Rescatters:       fs.Rescatters,
		BreakerTrips:     fs.BreakerTrips,
		Quarantines:      fs.Quarantines,
		IntegrityRejects: fs.IntegrityRejects,
		Audits:           fs.Audits,
		AuditDivergences: fs.AuditDivergences,
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	graphs := make(map[string]any, len(s.graphs))
	for name, h := range s.graphs {
		gm := map[string]any{
			"nodes": h.g.NumNodes(),
			"edges": h.g.NumEdges(),
			"seed":  h.seed,
			"store": h.storeStats(),
		}
		if h.coord.Sharded() {
			gm["shards"] = h.shardStats()
			gm["fabric"] = h.fabricStats()
		}
		graphs[name] = gm
	}
	s.writeJSON(w, map[string]any{
		"uptime_ms":        time.Since(s.start).Milliseconds(),
		"build":            obs.BuildInfo(),
		"draining":         s.draining.Load(),
		"requests":         s.requests.Load(),
		"failures":         s.failures.Load(),
		"adaptive_queries": s.adaptiveQueries.Load(),
		"worlds_saved":     s.worldsSaved.Load(),
		"jobs":             s.jobs.counts(),
		"graphs":           graphs,
	})
}

// ---- /v1/shards ---------------------------------------------------------

// handleShardsGet reports the shard membership per graph: every worker's
// address, up/down/removed state and health counters, plus the fabric
// counters. On an unsharded daemon the lists are empty.
func (s *Server) handleShardsGet(w http.ResponseWriter, r *http.Request) {
	graphs := make(map[string]any, len(s.graphs))
	for name, h := range s.graphs {
		graphs[name] = map[string]any{
			"workers": h.shardStats(),
			"fabric":  h.fabricStats(),
		}
	}
	s.writeJSON(w, map[string]any{"graphs": graphs})
}

type shardsRequest struct {
	Add    []string `json:"add,omitempty"`
	Remove []string `json:"remove,omitempty"`
}

// handleShardsPost changes the shard membership without a restart:
// "add" joins workers (every served graph's coordinator starts striping
// fresh world blocks to them; re-adding a removed address revives it),
// "remove" drains them (their blocks re-stripe to the survivors; requests
// already in flight fail over through the retry rounds). Because every
// worker must serve every configured graph, membership changes apply to
// all graphs at once. Estimates are unaffected — see the bit-identity
// invariant in docs/SHARD_PROTOCOL.md.
func (s *Server) handleShardsPost(w http.ResponseWriter, r *http.Request) {
	var req shardsRequest
	if e := decode(r, &req); e != nil {
		s.writeError(w, e)
		return
	}
	if len(req.Add) == 0 && len(req.Remove) == 0 {
		s.writeError(w, badRequest("need \"add\" and/or \"remove\" worker addresses"))
		return
	}
	removed := make(map[string]bool, len(req.Remove))
	for _, name := range s.names {
		h := s.graphs[name]
		for _, addr := range req.Add {
			h.coord.AddWorker(addr)
		}
		for _, addr := range req.Remove {
			if h.coord.RemoveWorker(addr) {
				removed[addr] = true
			}
		}
	}
	for _, addr := range req.Remove {
		if !removed[addr] {
			s.writeError(w, &apiError{http.StatusNotFound, fmt.Sprintf("unknown worker %q", addr)})
			return
		}
	}
	s.handleShardsGet(w, r)
}

type graphInfo struct {
	Name   string `json:"name"`
	Nodes  int    `json:"nodes"`
	Edges  int    `json:"edges"`
	Seed   uint64 `json:"seed"`
	Worlds int    `json:"worlds"`
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	out := make([]graphInfo, 0, len(s.names))
	for _, name := range s.names {
		h := s.graphs[name]
		out = append(out, graphInfo{
			Name:   name,
			Nodes:  h.g.NumNodes(),
			Edges:  h.g.NumEdges(),
			Seed:   h.seed,
			Worlds: h.store.Worlds(),
		})
	}
	s.writeJSON(w, map[string]any{"graphs": out})
}

// ---- /v1/conn ----------------------------------------------------------

type connRequest struct {
	Graph   string  `json:"graph"`
	Source  *int32  `json:"source,omitempty"`
	Target  *int32  `json:"target,omitempty"`
	Centers []int32 `json:"centers,omitempty"`
	Targets []int32 `json:"targets,omitempty"`
	Depth   int     `json:"depth,omitempty"` // <= 0 means unlimited
	Samples int     `json:"samples,omitempty"`
	// Eps/Delta switch the request to confidence-target mode: stop as
	// soon as every estimate is within eps with confidence 1-delta,
	// consuming at most Samples worlds. Stream additionally turns the
	// response into SSE refinement frames (and implies the default
	// target when eps is omitted). See docs/API.md.
	Eps       float64 `json:"eps,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	Stream    bool    `json:"stream,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	// Explain returns the request's finished trace inline: a "trace"
	// field on the JSON response, or one trailing SSE frame after the
	// final estimate frame in streaming mode. The answer is unchanged.
	Explain bool `json:"explain,omitempty"`
}

// handleConn answers connection-probability queries: a pair query
// (source + target) or a batched multi-center query (centers, answered in
// one pass per world block through the shared FromCenters machinery —
// scattered across the shard workers when the daemon is the coordinator
// of a sharded deployment, with bit-identical results either way).
// Center queries go through the graph's long-lived estimator, so repeated
// centers across requests answer from cached tallies — when a cached tally
// already covers more worlds than requested, the higher-precision estimate
// is returned, exactly like the library's FromCenter.
func (s *Server) handleConn(w http.ResponseWriter, r *http.Request) {
	var req connRequest
	if e := decode(r, &req); e != nil {
		s.writeError(w, e)
		return
	}
	h, e := s.handle(req.Graph)
	if e == nil {
		var r2 int
		if r2, e = s.samples(req.Samples); e == nil {
			req.Samples = r2
		}
	}
	if e != nil {
		s.writeError(w, e)
		return
	}
	depth := req.Depth
	if depth <= 0 {
		depth = conn.Unlimited
	}
	// Confidence-target mode? The request's sample budget caps the
	// adaptive run, so admission prices both modes identically.
	ad, e := parseAdaptive(req.Eps, req.Delta, req.Stream, req.Samples)
	if e != nil {
		s.writeError(w, e)
		return
	}

	switch {
	case len(req.Centers) > 0:
		for _, c := range req.Centers {
			if e := validNode(h, "centers", c); e != nil {
				s.writeError(w, e)
				return
			}
		}
		for _, t := range req.Targets {
			if e := validNode(h, "targets", t); e != nil {
				s.writeError(w, e)
				return
			}
		}
		release, e := s.admitCost(r, req.Samples, len(req.Centers))
		if e != nil {
			s.writeError(w, e)
			return
		}
		defer release()
		ctx, cancel, e := s.deadline(r.Context(), req.TimeoutMS)
		if e != nil {
			s.writeError(w, e)
			return
		}
		defer cancel()
		ctx, tr := s.startTrace(ctx, "/v1/conn", h.name)
		defer s.finishTrace(tr)
		tr.Root().Set("kind", "centers")
		tr.Root().Set("centers", len(req.Centers))
		tr.Root().Set("samples", req.Samples)
		if err := h.admitTraced(ctx); err != nil {
			s.writeError(w, estimationError(err))
			return
		}
		defer h.release()
		if ad != nil {
			s.adaptiveConnCenters(ctx, w, h, req, depth, ad)
			return
		}
		ectx, fin := h.estimateSpan(ctx)
		ests, err := h.coord.FromCentersCtx(ectx, req.Centers, depth, req.Samples)
		fin(err)
		if err != nil {
			s.writeError(w, estimationError(err))
			return
		}
		// Project each estimate vector onto the requested targets.
		ests = project(ests, req.Targets)
		body := map[string]any{
			"graph":     h.name,
			"samples":   req.Samples,
			"depth":     req.Depth,
			"centers":   req.Centers,
			"targets":   req.Targets,
			"estimates": ests,
		}
		if req.Explain {
			body["trace"] = explainView(tr)
		}
		s.writeJSON(w, body)

	case req.Source != nil && req.Target != nil:
		if e := validNode(h, "source", *req.Source); e != nil {
			s.writeError(w, e)
			return
		}
		if e := validNode(h, "target", *req.Target); e != nil {
			s.writeError(w, e)
			return
		}
		release, e := s.admitCost(r, req.Samples, 1)
		if e != nil {
			s.writeError(w, e)
			return
		}
		defer release()
		ctx, cancel, e := s.deadline(r.Context(), req.TimeoutMS)
		if e != nil {
			s.writeError(w, e)
			return
		}
		defer cancel()
		ctx, tr := s.startTrace(ctx, "/v1/conn", h.name)
		defer s.finishTrace(tr)
		tr.Root().Set("kind", "pair")
		tr.Root().Set("samples", req.Samples)
		if err := h.admitTraced(ctx); err != nil {
			s.writeError(w, estimationError(err))
			return
		}
		defer h.release()
		if ad != nil {
			s.adaptiveConnPair(ctx, w, h, req, depth, ad)
			return
		}
		ectx, fin := h.estimateSpan(ctx)
		var p float64
		var err error
		if depth == conn.Unlimited {
			p, err = h.coord.PairCtx(ectx, *req.Source, *req.Target, req.Samples)
		} else {
			// Depth-limited pairs route through the cached center tallies.
			var est []float64
			est, err = h.coord.FromCenterCtx(ectx, *req.Source, depth, req.Samples)
			if err == nil {
				p = est[*req.Target]
			}
		}
		fin(err)
		if err != nil {
			s.writeError(w, estimationError(err))
			return
		}
		body := map[string]any{
			"graph":       h.name,
			"samples":     req.Samples,
			"depth":       req.Depth,
			"source":      *req.Source,
			"target":      *req.Target,
			"probability": p,
		}
		if req.Explain {
			body["trace"] = explainView(tr)
		}
		s.writeJSON(w, body)

	default:
		s.writeError(w, badRequest("need either \"centers\" or both \"source\" and \"target\""))
	}
}

// ---- /v1/cluster and /v1/jobs ------------------------------------------

type clusterRequest struct {
	Graph     string  `json:"graph"`
	Algo      string  `json:"algo,omitempty"` // mcp (default), acp, mcl, gmm, kpt
	K         int     `json:"k,omitempty"`
	Depth     int     `json:"depth,omitempty"` // <= 0 means unlimited
	Alpha     int     `json:"alpha,omitempty"`
	Seed      uint64  `json:"seed,omitempty"` // driver seed (candidate selection)
	Inflation float64 `json:"inflation,omitempty"`
	Async     bool    `json:"async,omitempty"`
	Samples   int     `json:"samples,omitempty"` // unused by mcp/acp (schedule-driven); reserved
	// Eps/Delta switch MCP/ACP candidate scoring to confidence-target
	// racing (core.AdaptiveScoring): candidates whose score intervals
	// separate stop consuming worlds. Stream turns the response into SSE
	// progress frames, one per selected center, ending in the full
	// result. See docs/API.md.
	Eps       float64 `json:"eps,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	Stream    bool    `json:"stream,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	// Explain returns the run's finished trace inline (a "trace" field
	// on the response, or on the final SSE frame when streaming).
	// Incompatible with async — poll jobs carry no trace.
	Explain bool `json:"explain,omitempty"`
}

type clusterStats struct {
	Invocations int     `json:"invocations"`
	OracleCalls int     `json:"oracle_calls"`
	FinalQ      float64 `json:"final_q"`
	MaxSamples  int     `json:"max_samples"`
}

type clusterResponse struct {
	Graph     string        `json:"graph"`
	Algo      string        `json:"algo"`
	K         int           `json:"k"`
	Centers   []int32       `json:"centers"`
	Assign    []int32       `json:"assign"`
	Prob      []float64     `json:"prob"`
	Covered   int           `json:"covered"`
	MinProb   float64       `json:"min_prob"`
	AvgProb   float64       `json:"avg_prob"`
	ElapsedMS int64         `json:"elapsed_ms"`
	Stats     *clusterStats `json:"stats,omitempty"`
	// Trace is the run's finished trace when the request asked for
	// "explain": true; omitted otherwise.
	Trace *obs.TraceView `json:"trace,omitempty"`
}

// handleCluster runs a clustering synchronously, or — with "async": true —
// as a job whose deadline is decoupled from the HTTP request, for runs
// longer than a client wants to block on. Async responses carry the job ID
// to poll at GET /v1/jobs/{id} (DELETE cancels).
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var req clusterRequest
	if e := decode(r, &req); e != nil {
		s.writeError(w, e)
		return
	}
	h, e := s.handle(req.Graph)
	if e != nil {
		s.writeError(w, e)
		return
	}
	switch req.Algo {
	case "", "mcp", "acp", "gmm", "mcl", "kpt":
	default:
		s.writeError(w, badRequest(fmt.Sprintf("unknown algorithm %q", req.Algo)))
		return
	}
	if req.Algo == "" {
		req.Algo = "mcp"
	}
	// Validate k up front so a client mistake reports as 400, not as an
	// estimation failure. MCP/ACP need 1 <= k < n; GMM allows k = n.
	switch n := h.g.NumNodes(); req.Algo {
	case "mcp", "acp":
		if req.K < 1 || req.K >= n {
			s.writeError(w, badRequest(fmt.Sprintf("\"k\" = %d out of range [1, %d)", req.K, n)))
			return
		}
	case "gmm":
		if req.K < 1 || req.K > n {
			s.writeError(w, badRequest(fmt.Sprintf("\"k\" = %d out of range [1, %d]", req.K, n)))
			return
		}
	}
	if req.TimeoutMS < 0 {
		s.writeError(w, badRequest("\"timeout_ms\" must be positive"))
		return
	}
	if req.Eps != 0 || req.Delta != 0 {
		if req.Algo != "mcp" && req.Algo != "acp" {
			s.writeError(w, badRequest(fmt.Sprintf("\"eps\"/\"delta\" apply to the sampling algorithms (mcp, acp), not %q", req.Algo)))
			return
		}
		// Reuse the conn-side validation and delta defaulting; the budget
		// for cluster scoring is schedule-driven, so only the target
		// matters here.
		ad, e := parseAdaptive(req.Eps, req.Delta, false, 0)
		if e != nil {
			s.writeError(w, e)
			return
		}
		req.Eps, req.Delta = ad.params.Eps, ad.params.Delta
	}
	if req.Stream && req.Async {
		s.writeError(w, badRequest("\"stream\" and \"async\" are mutually exclusive: poll /v1/jobs for async runs"))
		return
	}
	if req.Explain && req.Async {
		s.writeError(w, badRequest("\"explain\" and \"async\" are mutually exclusive: traces attach to the request that ran the query"))
		return
	}
	if req.Stream && req.Algo != "mcp" && req.Algo != "acp" {
		s.writeError(w, badRequest(fmt.Sprintf("\"stream\" applies to the sampling algorithms (mcp, acp), not %q", req.Algo)))
		return
	}

	// Cost-based admission: a clustering's world demand is schedule-driven,
	// so price it at the default sample budget per center driven. An async
	// job holds its client-quota slot until the job finishes, not until
	// the 202 goes out.
	release := func() {}
	if req.Algo == "mcp" || req.Algo == "acp" {
		var e *apiError
		if release, e = s.admitCost(r, s.opts.DefaultSamples, req.K); e != nil {
			s.writeError(w, e)
			return
		}
	}

	if req.Async {
		// The job's deadline runs against the background context: the
		// client disconnects after the 202, the job keeps computing.
		ctx, cancel, e := s.deadline(context.Background(), req.TimeoutMS)
		if e != nil {
			release()
			s.writeError(w, e)
			return
		}
		j := s.jobs.create(h.name, req.Algo, cancel)
		go func() {
			defer cancel()
			defer release()
			res, err := s.runCluster(ctx, h, req, nil)
			j.finish(res, err)
			s.jobs.noteFinished(j.id)
		}()
		s.writeJSONStatus(w, http.StatusAccepted, j.view())
		return
	}
	defer release()

	ctx, cancel, e := s.deadline(r.Context(), req.TimeoutMS)
	if e != nil {
		s.writeError(w, e)
		return
	}
	defer cancel()
	ctx, tr := s.startTrace(ctx, "/v1/cluster", h.name)
	defer s.finishTrace(tr)
	tr.Root().Set("algo", req.Algo)
	tr.Root().Set("k", req.K)
	if req.Stream {
		s.streamCluster(ctx, w, h, req)
		return
	}
	res, err := s.runCluster(ctx, h, req, nil)
	if err != nil {
		s.writeError(w, estimationError(err))
		return
	}
	if req.Explain {
		v := explainView(tr)
		res.Trace = &v
	}
	s.writeJSON(w, res)
}

// shardScoreChunk is the min-partial scoring batch size a sharded
// clustering run uses: larger than the in-process default because each
// batched FromCenters query costs a network scatter, so fewer, fatter
// batches amortize the round-trips. The chunk size never affects the
// clustering (see core.PartialParams.ScoreChunk).
const shardScoreChunk = 256

// runCluster executes one clustering request under the admission gate.
//
// MCP/ACP runs fork a PRIVATE estimator over the graph's long-lived
// coordinator: the expensive substrate (sampled worlds and their labels,
// local or on the shard workers) is amortized across all traffic, while
// the tally cache is per-run, so a clustering's result depends only on
// (graph, seed, request) — bit-identical to core.MCPCtx with a fresh
// conn.NewMonteCarlo(g, seed) — never on which center queries other
// clients happened to warm first. In a sharded deployment the fork keeps
// scattering to the same workers; only the cache is fresh.
func (s *Server) runCluster(ctx context.Context, h *graphHandle, req clusterRequest, progress func(core.ProgressEvent)) (*clusterResponse, error) {
	// Only the sampling algorithms drive world materialization; the
	// deterministic baselines (mcl/gmm/kpt) never touch the store, so they
	// bypass the admission gate instead of occupying the slots it reserves
	// for store traffic.
	if req.Algo == "mcp" || req.Algo == "acp" {
		if err := h.admitTraced(ctx); err != nil {
			return nil, err
		}
		defer h.release()
	}

	depth := req.Depth
	if depth <= 0 {
		depth = conn.Unlimited
	}
	t0 := time.Now()
	ctx, fin := h.estimateSpan(ctx)
	var (
		cl  *core.Clustering
		st  *clusterStats
		err error
	)
	switch req.Algo {
	case "mcp", "acp":
		oracle := h.coord.Fork()
		opt := core.Options{
			Seed: req.Seed, Depth: depth, Alpha: req.Alpha,
			Parallelism: s.opts.Parallelism,
			Progress:    progress,
		}
		if oracle.Sharded() {
			opt.ScoreChunk = shardScoreChunk
		}
		if req.Eps > 0 {
			opt.Adaptive = &core.AdaptiveScoring{Eps: req.Eps, Delta: req.Delta}
		}
		var cst core.Stats
		if req.Algo == "acp" {
			cl, cst, err = core.ACPCtx(ctx, oracle, req.K, opt)
		} else {
			cl, cst, err = core.MCPCtx(ctx, oracle, req.K, opt)
		}
		st = &clusterStats{
			Invocations: cst.Invocations,
			OracleCalls: cst.OracleCalls,
			FinalQ:      cst.FinalQ,
			MaxSamples:  cst.MaxSamples,
		}
	case "mcl":
		if err = ctx.Err(); err == nil {
			cl = mcl.Cluster(h.g, mcl.Options{Inflation: req.Inflation}).Clustering
		}
	case "gmm":
		if err = ctx.Err(); err == nil {
			cl, err = gmm.Cluster(h.g, req.K, req.Seed)
		}
	case "kpt":
		if err = ctx.Err(); err == nil {
			cl = kpt.Cluster(h.g, req.Seed)
		}
	}
	fin(err)
	if err != nil {
		return nil, err
	}
	return &clusterResponse{
		Graph:     h.name,
		Algo:      req.Algo,
		K:         cl.K(),
		Centers:   cl.Centers,
		Assign:    cl.Assign,
		Prob:      cl.Prob,
		Covered:   cl.Covered(),
		MinProb:   cl.MinProb(),
		AvgProb:   cl.AvgProb(),
		ElapsedMS: time.Since(t0).Milliseconds(),
		Stats:     st,
	}, nil
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &apiError{http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id"))})
		return
	}
	s.writeJSON(w, j.view())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &apiError{http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id"))})
		return
	}
	j.cancel()
	s.writeJSON(w, j.view())
}

// ---- /v1/knn -----------------------------------------------------------

type knnRequest struct {
	Graph     string `json:"graph"`
	Source    int32  `json:"source"`
	K         int    `json:"k,omitempty"`
	Measure   string `json:"measure,omitempty"` // median (default), majority, expected, reliability
	Samples   int    `json:"samples,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

type neighborView struct {
	Node        int32   `json:"node"`
	Distance    int32   `json:"distance"` // knn.Infinite (2^31-1) marks "unreachable"
	Reliability float64 `json:"reliability"`
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnRequest
	if e := decode(r, &req); e != nil {
		s.writeError(w, e)
		return
	}
	h, e := s.handle(req.Graph)
	if e != nil {
		s.writeError(w, e)
		return
	}
	if e := validNode(h, "source", req.Source); e != nil {
		s.writeError(w, e)
		return
	}
	var measure knn.Measure
	switch req.Measure {
	case "", "median":
		measure = knn.MedianDistance
	case "majority":
		measure = knn.MajorityDistance
	case "expected":
		measure = knn.ExpectedReliableDistance
	case "reliability":
		measure = knn.ByReliability
	default:
		s.writeError(w, badRequest(fmt.Sprintf("unknown measure %q", req.Measure)))
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	samples, e := s.samples(req.Samples)
	if e != nil {
		s.writeError(w, e)
		return
	}
	ctx, cancel, e := s.deadline(r.Context(), req.TimeoutMS)
	if e != nil {
		s.writeError(w, e)
		return
	}
	defer cancel()
	if err := h.admit(ctx); err != nil {
		s.writeError(w, estimationError(err))
		return
	}
	defer h.release()
	// The coordinator scatters the distance tallies to the shard workers
	// when configured, and runs knn.SampleStoreCtx on the local store
	// otherwise — identical distributions either way.
	dd, err := h.coord.DistancesCtx(ctx, req.Source, samples)
	if err != nil {
		s.writeError(w, estimationError(err))
		return
	}
	nbs := dd.KNN(req.K, measure)
	out := make([]neighborView, len(nbs))
	for i, nb := range nbs {
		out[i] = neighborView{Node: nb.Node, Distance: nb.Distance, Reliability: nb.Reliability}
	}
	s.writeJSON(w, map[string]any{
		"graph":     h.name,
		"source":    req.Source,
		"measure":   req.Measure,
		"samples":   samples,
		"neighbors": out,
	})
}

// ---- /v1/influence -----------------------------------------------------

type influenceRequest struct {
	Graph     string  `json:"graph"`
	K         int     `json:"k,omitempty"`     // greedy maximization when seeds omitted
	Seeds     []int32 `json:"seeds,omitempty"` // spread evaluation of a fixed seed set
	Samples   int     `json:"samples,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

func (s *Server) handleInfluence(w http.ResponseWriter, r *http.Request) {
	var req influenceRequest
	if e := decode(r, &req); e != nil {
		s.writeError(w, e)
		return
	}
	h, e := s.handle(req.Graph)
	if e != nil {
		s.writeError(w, e)
		return
	}
	samples, e := s.samples(req.Samples)
	if e != nil {
		s.writeError(w, e)
		return
	}
	for _, sd := range req.Seeds {
		if e := validNode(h, "seeds", sd); e != nil {
			s.writeError(w, e)
			return
		}
	}
	ctx, cancel, e := s.deadline(r.Context(), req.TimeoutMS)
	if e != nil {
		s.writeError(w, e)
		return
	}
	defer cancel()
	if err := h.admit(ctx); err != nil {
		s.writeError(w, estimationError(err))
		return
	}
	defer h.release()

	if len(req.Seeds) > 0 {
		spread, err := h.coord.SpreadCtx(ctx, req.Seeds, samples)
		if err != nil {
			s.writeError(w, estimationError(err))
			return
		}
		s.writeJSON(w, map[string]any{
			"graph": h.name, "samples": samples,
			"seeds": req.Seeds, "spread": spread,
		})
		return
	}
	if req.K <= 0 {
		s.writeError(w, badRequest("need \"k\" (greedy maximization) or \"seeds\" (spread evaluation)"))
		return
	}
	// Greedy maximization fans its marginal-gain tallies out to the shard
	// workers when configured (see shard.Coordinator.GreedyCtx).
	res, err := h.coord.GreedyCtx(ctx, req.K, samples)
	if err != nil {
		s.writeError(w, estimationError(err))
		return
	}
	s.writeJSON(w, map[string]any{
		"graph": h.name, "samples": samples,
		"seeds": res.Seeds, "spread": res.Spread, "evaluations": res.Evaluations,
	})
}

// ---- /v1/reliability ---------------------------------------------------

type reliabilityRequest struct {
	Graph     string  `json:"graph"`
	Kind      string  `json:"kind,omitempty"` // set, all_terminal, components, largest_component
	Set       []int32 `json:"set,omitempty"`
	Samples   int     `json:"samples,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

func (s *Server) handleReliability(w http.ResponseWriter, r *http.Request) {
	var req reliabilityRequest
	if e := decode(r, &req); e != nil {
		s.writeError(w, e)
		return
	}
	h, e := s.handle(req.Graph)
	if e != nil {
		s.writeError(w, e)
		return
	}
	samples, e := s.samples(req.Samples)
	if e != nil {
		s.writeError(w, e)
		return
	}
	for _, u := range req.Set {
		if e := validNode(h, "set", u); e != nil {
			s.writeError(w, e)
			return
		}
	}
	ctx, cancel, e := s.deadline(r.Context(), req.TimeoutMS)
	if e != nil {
		s.writeError(w, e)
		return
	}
	defer cancel()
	if err := h.admit(ctx); err != nil {
		s.writeError(w, estimationError(err))
		return
	}
	defer h.release()

	// Every kind routes through the coordinator: scattered to the shard
	// workers as integer tallies when the daemon coordinates a sharded
	// deployment, computed on the local store otherwise — bit-identical to
	// the metrics package either way.
	var (
		value float64
		err   error
	)
	switch req.Kind {
	case "set":
		if len(req.Set) == 0 {
			s.writeError(w, badRequest("kind \"set\" needs a non-empty \"set\""))
			return
		}
		set := make([]graph.NodeID, len(req.Set))
		for i, u := range req.Set {
			set[i] = u
		}
		value, err = h.coord.SetReliabilityCtx(ctx, set, samples)
	case "", "all_terminal":
		value, err = h.coord.AllTerminalReliabilityCtx(ctx, samples)
	case "components":
		value, err = h.coord.ExpectedComponentsCtx(ctx, samples)
	case "largest_component":
		value, err = h.coord.LargestComponentFractionCtx(ctx, samples)
	default:
		s.writeError(w, badRequest(fmt.Sprintf("unknown kind %q", req.Kind)))
		return
	}
	if err != nil {
		s.writeError(w, estimationError(err))
		return
	}
	s.writeJSON(w, map[string]any{
		"graph": h.name, "kind": req.Kind, "samples": samples, "value": value,
	})
}
