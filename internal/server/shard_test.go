package server

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"ucgraph/internal/graph"
	"ucgraph/internal/shard"
)

func mustUnmarshal(t testing.TB, raw string, into any) {
	t.Helper()
	if err := json.Unmarshal([]byte(raw), into); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
}

// startShardWorkers spins up count in-process shard workers serving g as
// "ring" under seed 7 (matching newTestServer) and returns their URLs.
func startShardWorkers(t testing.TB, g *graph.Uncertain, count int) []string {
	t.Helper()
	addrs := make([]string, count)
	for i := 0; i < count; i++ {
		w, err := shard.NewWorker([]shard.WorkerGraph{{Name: "ring", Graph: g, Seed: 7}}, shard.WorkerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(w)
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	return addrs
}

// TestShardedServerBitIdenticalToLocal runs the same /v1/conn,
// /v1/cluster, /v1/knn, /v1/influence and /v1/reliability requests against
// an unsharded daemon and a coordinator over 1, 2 and 4 workers, asserting identical
// response payloads — the end-to-end form of the determinism contract:
// sharding changes where tallies are computed, never what they sum to.
func TestShardedServerBitIdenticalToLocal(t *testing.T) {
	g := testGraph(t, 72, 5)
	_, plain := newTestServer(t, g, Options{})

	requests := []struct {
		path string
		body map[string]any
	}{
		{"/v1/conn", map[string]any{"graph": "ring", "source": 0, "target": 40, "samples": 700}},
		{"/v1/conn", map[string]any{"graph": "ring", "centers": []int32{1, 9, 33}, "samples": 700}},
		{"/v1/conn", map[string]any{"graph": "ring", "centers": []int32{1, 9, 33}, "depth": 2, "samples": 300}},
		{"/v1/conn", map[string]any{"graph": "ring", "source": 4, "target": 20, "depth": 3, "samples": 300}},
		{"/v1/cluster", map[string]any{"graph": "ring", "algo": "mcp", "k": 3, "seed": 11}},
		{"/v1/knn", map[string]any{"graph": "ring", "source": 2, "k": 8, "samples": 400}},
		{"/v1/knn", map[string]any{"graph": "ring", "source": 2, "k": 8, "measure": "reliability", "samples": 400}},
		{"/v1/influence", map[string]any{"graph": "ring", "seeds": []int32{3, 50}, "samples": 400}},
		{"/v1/influence", map[string]any{"graph": "ring", "k": 3, "samples": 300}},
		{"/v1/reliability", map[string]any{"graph": "ring", "kind": "set", "set": []int32{2, 19, 44}, "samples": 400}},
		{"/v1/reliability", map[string]any{"graph": "ring", "kind": "all_terminal", "samples": 400}},
		{"/v1/reliability", map[string]any{"graph": "ring", "kind": "components", "samples": 400}},
		{"/v1/reliability", map[string]any{"graph": "ring", "kind": "largest_component", "samples": 400}},
	}
	want := make([]string, len(requests))
	for i, req := range requests {
		code, raw := post(t, plain.URL+req.path, req.body, nil)
		if code != 200 {
			t.Fatalf("plain %s: code %d: %s", req.path, code, raw)
		}
		want[i] = raw
	}

	for _, nw := range []int{1, 2, 4} {
		s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 7}}, Options{
			Shards: startShardWorkers(t, g, nw),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		for i, req := range requests {
			code, raw := post(t, ts.URL+req.path, req.body, nil)
			if code != 200 {
				t.Fatalf("workers=%d %s: code %d: %s", nw, req.path, code, raw)
			}
			// Cluster responses carry elapsed_ms; everything else must be
			// byte-identical. For cluster, compare with timing stripped.
			if req.path == "/v1/cluster" {
				var a, b clusterResponse
				mustUnmarshal(t, want[i], &a)
				mustUnmarshal(t, raw, &b)
				a.ElapsedMS, b.ElapsedMS = 0, 0
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("workers=%d cluster response differs:\n%s\nvs\n%s", nw, want[i], raw)
				}
				continue
			}
			if raw != want[i] {
				t.Fatalf("workers=%d %s response differs:\n%s\nvs\n%s", nw, req.path, raw, want[i])
			}
		}
	}
}

// TestShardedHealthzReadiness: a coordinator with an unreachable worker
// reports not_ready (503) until every shard answers; with live workers it
// reports ok, and /statsz carries per-graph shard health.
func TestShardedHealthzReadiness(t *testing.T) {
	g := testGraph(t, 32, 2)

	dead := httptest.NewServer(nil)
	dead.Close()
	s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 7}}, Options{
		Shards: []string{dead.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	var health struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if code := get(t, ts.URL+"/healthz", &health); code != 503 || health.Status != "not_ready" || health.Error == "" {
		t.Fatalf("healthz with dead shard: code %d, %+v", code, health)
	}

	s2, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 7}}, Options{
		Shards: startShardWorkers(t, g, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	t.Cleanup(ts2.Close)
	health.Status, health.Error = "", ""
	if code := get(t, ts2.URL+"/healthz", &health); code != 200 || health.Status != "ok" {
		t.Fatalf("healthz with live shards: code %d, %+v", code, health)
	}

	// Drive one query so the shard stats show served ranges, then check
	// /statsz surfaces the shard health block.
	if code, raw := post(t, ts2.URL+"/v1/conn", map[string]any{
		"graph": "ring", "centers": []int32{0}, "samples": 300,
	}, nil); code != 200 {
		t.Fatalf("conn: code %d: %s", code, raw)
	}
	var statsz struct {
		Graphs map[string]struct {
			Shards []shardStats `json:"shards"`
		} `json:"graphs"`
	}
	if code := get(t, ts2.URL+"/statsz", &statsz); code != 200 {
		t.Fatal("statsz failed")
	}
	shs := statsz.Graphs["ring"].Shards
	if len(shs) != 2 {
		t.Fatalf("statsz shards: %+v", shs)
	}
	var worlds uint64
	for _, sh := range shs {
		if sh.Addr == "" {
			t.Fatalf("shard stat missing addr: %+v", sh)
		}
		worlds += sh.WorldsServed
	}
	if worlds < 300 {
		t.Fatalf("shards served %d worlds, want >= 300", worlds)
	}
}

// TestShardsMembershipEndpoint drives elastic membership over HTTP: a
// coordinator starts with one worker, a second joins via POST /v1/shards,
// the first is then removed — with every estimate along the way
// bit-identical to an unsharded daemon's.
func TestShardsMembershipEndpoint(t *testing.T) {
	g := testGraph(t, 48, 9)
	_, plain := newTestServer(t, g, Options{})
	workers := startShardWorkers(t, g, 2)

	s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 7}}, Options{
		Shards: workers[:1],
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	connReq := map[string]any{"graph": "ring", "centers": []int32{1, 30}, "samples": 500}
	_, want := post(t, plain.URL+"/v1/conn", connReq, nil)
	check := func(stage string) {
		t.Helper()
		code, raw := post(t, ts.URL+"/v1/conn", connReq, nil)
		if code != 200 || raw != want {
			t.Fatalf("%s: code %d\n%s\nvs\n%s", stage, code, raw, want)
		}
	}
	check("one worker")

	var membership struct {
		Graphs map[string]struct {
			Workers []shardStats `json:"workers"`
		} `json:"graphs"`
	}
	if code, raw := post(t, ts.URL+"/v1/shards", map[string]any{"add": []string{workers[1]}}, &membership); code != 200 {
		t.Fatalf("add worker: code %d: %s", code, raw)
	}
	if got := len(membership.Graphs["ring"].Workers); got != 2 {
		t.Fatalf("workers after add = %d, want 2", got)
	}
	check("after join")

	if code, raw := post(t, ts.URL+"/v1/shards", map[string]any{"remove": []string{workers[0]}}, &membership); code != 200 {
		t.Fatalf("remove worker: code %d: %s", code, raw)
	}
	states := map[string]string{}
	for _, wk := range membership.Graphs["ring"].Workers {
		states[wk.Addr] = wk.State
	}
	if states[workers[0]] != "removed" || states[workers[1]] != "up" {
		t.Fatalf("states after remove: %v", states)
	}
	check("after leave")

	// Removing an unknown worker is a 404; empty requests are a 400.
	if code, _ := post(t, ts.URL+"/v1/shards", map[string]any{"remove": []string{"nope:1"}}, nil); code != 404 {
		t.Fatalf("unknown remove: code %d", code)
	}
	if code, _ := post(t, ts.URL+"/v1/shards", map[string]any{}, nil); code != 400 {
		t.Fatalf("empty membership post: code %d", code)
	}
	var gotShards struct {
		Graphs map[string]struct {
			Workers []shardStats `json:"workers"`
			Fabric  fabricStats  `json:"fabric"`
		} `json:"graphs"`
	}
	if code := get(t, ts.URL+"/v1/shards", &gotShards); code != 200 {
		t.Fatal("GET /v1/shards failed")
	}
	if got := len(gotShards.Graphs["ring"].Workers); got != 2 {
		t.Fatalf("GET membership workers = %d, want 2", got)
	}
}
