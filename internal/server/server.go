// Package server implements the ucserve query daemon: a long-running HTTP
// frontend over one or more uncertain graphs and their shared possible-world
// stores, so that many clients amortize one store instead of re-sampling
// worlds per process (the scale step after the in-process Shared registry
// of internal/worldstore; see docs/SERVER.md for the endpoint reference).
//
// The daemon exposes the estimator surface as JSON endpoints:
//
//	GET  /healthz          liveness
//	GET  /statsz           server + per-graph world-store counters
//	GET  /v1/graphs        the served graphs
//	POST /v1/conn          connection probabilities (pair or multi-center)
//	POST /v1/cluster       MCP/ACP/MCL/GMM/KPT clustering (sync or async)
//	GET  /v1/jobs/{id}     async clustering job status/result
//	DELETE /v1/jobs/{id}   cancel an async job
//	POST /v1/knn           k-nearest neighbors under probabilistic distances
//	POST /v1/influence     influence spread / greedy maximization
//	POST /v1/reliability   network-reliability statistics
//
// Every estimating request carries a sample budget and a deadline, enforced
// through the context-aware entry points added across the library
// (worldstore.ScanCtx, conn.ContextOracle, core.MCPCtx/ACPCtx, ...): a
// request past its deadline aborts at the next chunk of sampled worlds and
// reports 504. Requests that complete return answers bit-identical to the
// corresponding library calls — the daemon adds transport and admission
// control, never approximation.
//
// A per-graph admission gate bounds how many requests may drive world
// materialization concurrently, so a traffic burst cannot multiply the
// store's resident label blocks past the -worldmem budget: excess requests
// queue on the gate (respecting their deadlines) instead of racing the
// evictor.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"ucgraph/internal/graph"
	"ucgraph/internal/obs"
	"ucgraph/internal/shard"
	"ucgraph/internal/worldstore"
)

// Options configures a Server. The zero value selects the documented
// defaults.
type Options struct {
	// DefaultSamples is the sample budget applied when a request omits one
	// (default 1000).
	DefaultSamples int
	// MaxSamples caps per-request sample budgets (default 1 << 20); larger
	// requests are rejected with 400 rather than silently clamped.
	MaxSamples int
	// DefaultTimeout is the per-request deadline applied when a request
	// omits timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps requested deadlines (default 5m).
	MaxTimeout time.Duration
	// Gate bounds, per graph, the number of requests concurrently driving
	// world materialization (default 2). Excess requests wait their turn,
	// still honoring their deadlines, so the store's memory budget holds
	// under bursts.
	Gate int
	// Parallelism is handed to every estimator the daemon builds (<= 0
	// selects GOMAXPROCS). Results do not depend on it.
	Parallelism int
	// Shards lists shard-worker base URLs ("host:port" or full URLs).
	// When non-empty the daemon runs as the scatter/gather coordinator of
	// a sharded deployment: /v1/conn, /v1/cluster (its min-partial
	// scoring), /v1/knn, /v1/influence and /v1/reliability fan world
	// ranges out to the workers and merge their integer tallies — answers
	// stay bit-identical to local execution, because merged tallies are
	// order-free integer sums over the same deterministic world stream.
	// Every worker must serve every configured graph under the same name
	// and seed (/healthz reports not-ready until they all answer a ping).
	// Membership is elastic: POST /v1/shards adds and removes workers at
	// runtime (see docs/SHARD_PROTOCOL.md).
	Shards []string
	// ShardRetries and ShardRequestTimeout tune the coordinator's retry
	// rounds and per-worker-request deadline; zero selects the shard
	// package defaults.
	ShardRetries        int
	ShardRequestTimeout time.Duration
	// ShardBreakerThreshold and ShardBreakerBackoff tune the per-worker
	// circuit breakers: a worker failing this many consecutive tallies is
	// taken out of assignment for an exponentially growing (seeded-jitter)
	// backoff. Zero selects the shard package defaults. Breaker state is
	// surfaced per worker at /statsz.
	ShardBreakerThreshold int
	ShardBreakerBackoff   time.Duration
	// ShardRetryBudget caps the total block re-scatters one query may
	// spend across its retry rounds (0 = package default): a melting fleet
	// fails queries crisply instead of retrying forever.
	ShardRetryBudget int
	// ShardAuditFraction, in [0, 1], samples completed scatter groups for
	// audit re-execution on a second worker with byte-for-byte tally
	// comparison; divergent workers are quarantined. 0 disables.
	ShardAuditFraction float64
	// ShardHedge, when positive, arms hedged requests: a scatter group
	// unanswered after this delay is duplicated to another live worker and
	// the first answer wins (the loser is a suppressed duplicate, never a
	// failure). Zero disables hedging. Results are unaffected — merged
	// tallies are bit-identical whichever copy wins.
	ShardHedge time.Duration
	// ShardPingInterval, when positive, starts a background membership
	// refresher per graph: workers are pinged on this cadence and marked
	// up/down, so scatters route around dead workers without waiting for a
	// failed request, and revived workers rejoin without a restart. Zero
	// disables the background pings (health probes still refresh on
	// demand).
	ShardPingInterval time.Duration
	// WorldCacheDir, when non-empty, attaches a disk tier to every served
	// graph's world store (the -worldcache flag): blocks evicted under the
	// -worldmem budget spill to checksummed segment files under
	// WorldCacheDir/<graph name>/ instead of being forgotten, and a
	// restarted daemon pointed at the same directory comes back hot —
	// misses load persisted blocks instead of recomputing them. Answers
	// are bit-identical with or without the cache.
	WorldCacheDir string
	// MaxCost caps the estimated cost of one estimating request, measured
	// in world-extensions: the sample (or adaptive world) budget times the
	// number of centers it drives (a pair query counts one center, a
	// clustering request its k). Requests above the cap are rejected with
	// 400 before touching the store — the cost-based admission layer on
	// top of the concurrency gate. <= 0 selects 1 << 28.
	MaxCost int64
	// ClientConcurrent caps how many estimating requests one client (the
	// X-API-Client header, else the remote host) may have running at once;
	// excess requests are rejected with 429. 0 disables the quota.
	ClientConcurrent int
	// ClientWorldsPerMin refills each client's cost-token bucket at this
	// rate (burst = one minute's worth): a client whose requests' summed
	// cost outruns the refill gets 429 until tokens return. 0 disables.
	ClientWorldsPerMin int64
	// SlowQuery, when positive, logs every traced request whose total
	// latency crosses it as a one-line JSON record (the full trace, via
	// log/slog) — the -slow-query flag. 0 disables.
	SlowQuery time.Duration
	// SlowLog receives the slow-query records; nil selects slog.Default().
	SlowLog *slog.Logger
	// TraceRing bounds how many recent finished traces /debug/traces
	// retains (default 64).
	TraceRing int
}

// withDefaults fills in the documented defaults.
func (o Options) withDefaults() Options {
	if o.DefaultSamples <= 0 {
		o.DefaultSamples = 1000
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = 1 << 20
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.Gate <= 0 {
		o.Gate = 2
	}
	if o.MaxCost <= 0 {
		o.MaxCost = 1 << 28
	}
	if o.TraceRing <= 0 {
		o.TraceRing = 64
	}
	return o
}

// GraphConfig is one graph served by the daemon.
type GraphConfig struct {
	// Name addresses the graph in requests ("graph" field).
	Name string
	// Graph is the uncertain graph itself.
	Graph *graph.Uncertain
	// Seed selects the possible-world stream. All queries against this
	// graph answer from the shared store of (Graph, Seed), so repeated and
	// concurrent clients observe the same worlds.
	Seed uint64
}

// graphHandle is the server-side state of one served graph.
type graphHandle struct {
	name  string
	g     *graph.Uncertain
	seed  uint64
	store *worldstore.Store
	// coord is the long-lived estimator answering /v1/conn center queries
	// (and, when shards are configured, every fanned-out surface): a
	// shard.Coordinator that scatters world ranges to the workers, or —
	// with no shards — transparently runs the same queries on the local
	// in-process estimator. Either way its tally cache persists across
	// requests, which is the point of a daemon: repeated centers answer
	// from cached (or higher-precision) tallies. Clustering requests fork
	// a private coordinator instead, so their results never depend on
	// what other clients warmed (see runCluster).
	coord *shard.Coordinator
	// gate is the admission semaphore bounding concurrent materialization.
	gate chan struct{}
}

// admit acquires an admission slot, giving up when ctx expires.
func (h *graphHandle) admit(ctx context.Context) error {
	select {
	case h.gate <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("admission queue: %w", ctx.Err())
	}
}

// release returns an admission slot.
func (h *graphHandle) release() { <-h.gate }

// Server is the query daemon. Create one with New, mount it as an
// http.Handler. Safe for concurrent use.
type Server struct {
	opts   Options
	graphs map[string]*graphHandle
	names  []string // sorted graph names
	jobs   *jobTable
	mux    *http.ServeMux
	start  time.Time
	stops  []func() // background ping refreshers, stopped by Close

	quotas *clientQuotas

	// metrics holds the /metricsz latency histograms; traces the
	// /debug/traces ring of recent finished query traces; slowLog the
	// slow-query logger (Options.SlowLog or slog.Default()).
	metrics *serverMetrics
	traces  *obs.Ring
	slowLog *slog.Logger

	// draining is set by StartDrain: /healthz answers 503 "draining" so
	// load balancers route away while in-flight requests — including open
	// SSE streams — run to completion. inflight counts every request the
	// mux is currently serving; Drain waits for it to hit zero.
	draining atomic.Bool
	inflight atomic.Int64

	requests atomic.Uint64
	failures atomic.Uint64
	// adaptiveQueries counts completed confidence-target requests;
	// worldsSaved sums their budget - consumed gaps — the observable
	// early-stopping win reported by /statsz.
	adaptiveQueries atomic.Uint64
	worldsSaved     atomic.Uint64
}

// New builds a Server over the given graphs. Every graph gets its shared
// world store (created through worldstore.Shared, so in-process consumers
// of the same (graph, seed) pair converge on it), a long-lived estimator
// and an admission gate.
func New(graphs []GraphConfig, opts Options) (*Server, error) {
	if len(graphs) == 0 {
		return nil, errors.New("server: no graphs to serve")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		graphs:  make(map[string]*graphHandle, len(graphs)),
		jobs:    newJobTable(),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		quotas:  newClientQuotas(opts.ClientConcurrent, opts.ClientWorldsPerMin),
		metrics: newServerMetrics(),
		traces:  obs.NewRing(opts.TraceRing),
		slowLog: opts.SlowLog,
	}
	if s.slowLog == nil {
		s.slowLog = slog.Default()
	}
	for _, gc := range graphs {
		if gc.Name == "" {
			return nil, errors.New("server: graph with empty name")
		}
		if gc.Graph == nil {
			return nil, fmt.Errorf("server: graph %q is nil", gc.Name)
		}
		if _, dup := s.graphs[gc.Name]; dup {
			return nil, fmt.Errorf("server: duplicate graph name %q", gc.Name)
		}
		coord := shard.NewCoordinator(gc.Name, gc.Graph, gc.Seed, opts.Shards, shard.CoordinatorOptions{
			Parallelism:      opts.Parallelism,
			Retries:          opts.ShardRetries,
			RequestTimeout:   opts.ShardRequestTimeout,
			HedgeDelay:       opts.ShardHedge,
			BreakerThreshold: opts.ShardBreakerThreshold,
			BreakerBackoff:   opts.ShardBreakerBackoff,
			RetryBudget:      opts.ShardRetryBudget,
			AuditFraction:    opts.ShardAuditFraction,
			OnWorkerRTT: func(addr string, rtt time.Duration) {
				s.metrics.workerRTT.Observe(rtt.Seconds(), addr)
			},
		})
		if coord.Sharded() && opts.ShardPingInterval > 0 {
			s.stops = append(s.stops, coord.StartPings(opts.ShardPingInterval))
		}
		if opts.WorldCacheDir != "" {
			dir := filepath.Join(opts.WorldCacheDir, gc.Name)
			if err := coord.Store().AttachCache(dir); err != nil {
				return nil, fmt.Errorf("server: graph %q: %w", gc.Name, err)
			}
		}
		s.graphs[gc.Name] = &graphHandle{
			name:  gc.Name,
			g:     gc.Graph,
			seed:  gc.Seed,
			store: coord.Store(),
			coord: coord,
			gate:  make(chan struct{}, opts.Gate),
		}
		s.names = append(s.names, gc.Name)
	}
	sort.Strings(s.names)

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	s.mux.HandleFunc("POST /v1/conn", s.handleConn)
	s.mux.HandleFunc("POST /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/knn", s.handleKNN)
	s.mux.HandleFunc("POST /v1/influence", s.handleInfluence)
	s.mux.HandleFunc("POST /v1/reliability", s.handleReliability)
	s.mux.HandleFunc("GET /v1/shards", s.handleShardsGet)
	s.mux.HandleFunc("POST /v1/shards", s.handleShardsPost)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	return s, nil
}

// Close stops the background membership refreshers and tears down the
// coordinators' persistent worker streams. For a graceful exit call
// StartDrain first and Drain (alongside http.Server.Shutdown) before
// Close, so open queries finish before their streams are severed.
func (s *Server) Close() {
	for _, stop := range s.stops {
		stop()
	}
	for _, h := range s.graphs {
		h.coord.Close()
	}
}

// StartDrain flips the daemon into draining: /healthz immediately answers
// 503 {"status":"draining"} so load balancers stop routing here, while
// every in-flight request — including open SSE refinement streams — keeps
// running. Pair with Drain to wait for them.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain blocks until every in-flight request has completed, or ctx
// expires (returning its error). Call after StartDrain; the HTTP
// listener's own Shutdown covers connection teardown, Drain covers the
// requests themselves.
func (s *Server) Drain(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %d request(s) still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-tick.C:
		}
	}
	return nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	t0 := time.Now()
	s.mux.ServeHTTP(w, r)
	s.metrics.request.Observe(time.Since(t0).Seconds(), endpointLabel(r.URL.Path))
}

// handle resolves the graph named in a request.
func (s *Server) handle(name string) (*graphHandle, *apiError) {
	if name == "" {
		return nil, badRequest("missing \"graph\"")
	}
	h, ok := s.graphs[name]
	if !ok {
		return nil, &apiError{http.StatusNotFound, fmt.Sprintf("unknown graph %q", name)}
	}
	return h, nil
}

// samples validates a request's sample budget, applying the default.
func (s *Server) samples(req int) (int, *apiError) {
	if req == 0 {
		return s.opts.DefaultSamples, nil
	}
	if req < 0 {
		return 0, badRequest("\"samples\" must be positive")
	}
	if req > s.opts.MaxSamples {
		return 0, badRequest(fmt.Sprintf("\"samples\" %d exceeds the server cap %d", req, s.opts.MaxSamples))
	}
	return req, nil
}

// deadline derives the request context: the caller's timeout_ms clamped to
// MaxTimeout, or DefaultTimeout when omitted, layered over parent (the
// HTTP request context, so client disconnects cancel too).
func (s *Server) deadline(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc, *apiError) {
	d := s.opts.DefaultTimeout
	switch {
	case timeoutMS < 0:
		return nil, nil, badRequest("\"timeout_ms\" must be positive")
	case timeoutMS > 0:
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.opts.MaxTimeout {
			d = s.opts.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(parent, d)
	return ctx, cancel, nil
}

// apiError is an HTTP error with a JSON body.
type apiError struct {
	code int
	msg  string
}

func badRequest(msg string) *apiError { return &apiError{http.StatusBadRequest, msg} }

// estimationError maps an estimation failure to an apiError: deadline
// overruns become 504, client-side cancellations 499 (nginx's convention),
// everything else 500.
func estimationError(err error) *apiError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{http.StatusGatewayTimeout, "deadline exceeded: " + err.Error()}
	case errors.Is(err, context.Canceled):
		return &apiError{499, "request cancelled: " + err.Error()}
	default:
		return &apiError{http.StatusInternalServerError, err.Error()}
	}
}

// writeJSON writes a 200 JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	s.writeJSONStatus(w, http.StatusOK, v)
}

func (s *Server) writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes an error response and counts it.
func (s *Server) writeError(w http.ResponseWriter, e *apiError) {
	s.failures.Add(1)
	s.writeJSONStatus(w, e.code, map[string]string{"error": e.msg})
}

// decode parses a bounded JSON request body.
func decode(r *http.Request, into any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err := dec.Decode(into); err != nil {
		return badRequest("invalid JSON body: " + err.Error())
	}
	return nil
}

// validNode checks a node ID against the graph.
func validNode(h *graphHandle, field string, v int32) *apiError {
	if v < 0 || int(v) >= h.g.NumNodes() {
		return badRequest(fmt.Sprintf("%q node %d out of range [0, %d)", field, v, h.g.NumNodes()))
	}
	return nil
}
