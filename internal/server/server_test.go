package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/core"
	"ucgraph/internal/graph"
	"ucgraph/internal/influence"
	"ucgraph/internal/knn"
	"ucgraph/internal/metrics"
	"ucgraph/internal/rng"
)

// testGraph builds a deterministic ring-with-chords uncertain graph.
func testGraph(t testing.TB, n int, seed uint64) *graph.Uncertain {
	t.Helper()
	x := rng.NewXoshiro256(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(int32(i), int32((i+1)%n), 0.3+0.65*x.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/4; i++ {
		u, v := int32(x.Intn(n)), int32(x.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v, 0.2+0.5*x.Float64()) // duplicate edges rejected, fine
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newTestServer serves one graph named "ring" under world seed 7.
func newTestServer(t testing.TB, g *graph.Uncertain, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 7}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON request and decodes the JSON response.
func post(t testing.TB, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", raw.String(), err)
		}
	}
	return resp.StatusCode, raw.String()
}

func get(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHealthzGraphsStatsz(t *testing.T) {
	g := testGraph(t, 64, 1)
	_, ts := newTestServer(t, g, Options{})

	var health struct {
		Status string `json:"status"`
		Graphs int    `json:"graphs"`
	}
	if code := get(t, ts.URL+"/healthz", &health); code != 200 || health.Status != "ok" || health.Graphs != 1 {
		t.Fatalf("healthz: code %d, %+v", code, health)
	}

	var graphs struct {
		Graphs []graphInfo `json:"graphs"`
	}
	if code := get(t, ts.URL+"/v1/graphs", &graphs); code != 200 {
		t.Fatalf("graphs: code %d", code)
	}
	if len(graphs.Graphs) != 1 || graphs.Graphs[0].Name != "ring" ||
		graphs.Graphs[0].Nodes != g.NumNodes() || graphs.Graphs[0].Seed != 7 {
		t.Fatalf("graphs: %+v", graphs)
	}

	// Drive some sampling, then statsz must report materializations.
	var pair struct {
		Probability float64 `json:"probability"`
	}
	if code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 5, "samples": 500,
	}, &pair); code != 200 {
		t.Fatalf("conn: code %d body %s", code, body)
	}
	var stats struct {
		Requests uint64 `json:"requests"`
		Graphs   map[string]struct {
			Store storeStats `json:"store"`
		} `json:"graphs"`
	}
	if code := get(t, ts.URL+"/statsz", &stats); code != 200 {
		t.Fatalf("statsz: code %d", code)
	}
	st := stats.Graphs["ring"].Store
	if st.Worlds < 500 || st.Materializations == 0 {
		t.Fatalf("statsz store counters not populated: %+v", st)
	}
	if stats.Requests == 0 {
		t.Fatal("request counter not populated")
	}
}

func TestConnPairMatchesLibrary(t *testing.T) {
	g := testGraph(t, 96, 2)
	_, ts := newTestServer(t, g, Options{})

	const r = 1200
	want := conn.NewMonteCarlo(g, 7).Pair(3, 40, r)
	var resp struct {
		Probability float64 `json:"probability"`
		Samples     int     `json:"samples"`
	}
	code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 3, "target": 40, "samples": r,
	}, &resp)
	if code != 200 {
		t.Fatalf("code %d body %s", code, body)
	}
	if resp.Probability != want || resp.Samples != r {
		t.Fatalf("server %v != library %v", resp.Probability, want)
	}
}

func TestConnCentersMatchesLibraryWithProjection(t *testing.T) {
	g := testGraph(t, 96, 3)
	_, ts := newTestServer(t, g, Options{})

	centers := []int32{0, 17, 33}
	targets := []int32{5, 80}
	const r = 900
	want := conn.NewMonteCarlo(g, 7).FromCenters(centers, conn.Unlimited, r)

	var resp struct {
		Estimates [][]float64 `json:"estimates"`
	}
	code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "centers": centers, "targets": targets, "samples": r,
	}, &resp)
	if code != 200 {
		t.Fatalf("code %d body %s", code, body)
	}
	if len(resp.Estimates) != len(centers) {
		t.Fatalf("want %d estimate vectors, got %d", len(centers), len(resp.Estimates))
	}
	for i := range centers {
		for j, tgt := range targets {
			if resp.Estimates[i][j] != want[i][tgt] {
				t.Fatalf("center %d target %d: server %v != library %v",
					centers[i], tgt, resp.Estimates[i][j], want[i][tgt])
			}
		}
	}
}

func TestConnDepthLimitedPair(t *testing.T) {
	g := testGraph(t, 64, 4)
	_, ts := newTestServer(t, g, Options{})

	const r, depth = 800, 2
	want := conn.NewMonteCarlo(g, 7).FromCenter(0, depth, r)[9]
	var resp struct {
		Probability float64 `json:"probability"`
	}
	code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 9, "depth": depth, "samples": r,
	}, &resp)
	if code != 200 {
		t.Fatalf("code %d body %s", code, body)
	}
	if resp.Probability != want {
		t.Fatalf("server %v != library %v", resp.Probability, want)
	}
}

// libraryCluster runs the library path the server must match bit for bit:
// a fresh estimator over the shared (g, seed) store, handed to the ctx
// driver with the same options as the daemon's.
func libraryCluster(t testing.TB, g *graph.Uncertain, algo string, k int, driverSeed uint64) (*core.Clustering, core.Stats) {
	t.Helper()
	oracle := conn.NewMonteCarlo(g, 7)
	opt := core.Options{Seed: driverSeed}
	var (
		cl  *core.Clustering
		st  core.Stats
		err error
	)
	if algo == "acp" {
		cl, st, err = core.ACPCtx(context.Background(), oracle, k, opt)
	} else {
		cl, st, err = core.MCPCtx(context.Background(), oracle, k, opt)
	}
	if err != nil {
		t.Fatal(err)
	}
	return cl, st
}

func checkClusterMatch(t testing.TB, resp *clusterResponse, want *core.Clustering, wantSt core.Stats) {
	t.Helper()
	if len(resp.Centers) != len(want.Centers) {
		t.Fatalf("centers: %v != %v", resp.Centers, want.Centers)
	}
	for i := range want.Centers {
		if resp.Centers[i] != want.Centers[i] {
			t.Fatalf("centers: %v != %v", resp.Centers, want.Centers)
		}
	}
	for u := range want.Assign {
		if resp.Assign[u] != want.Assign[u] || resp.Prob[u] != want.Prob[u] {
			t.Fatalf("node %d: server (%d, %v) != library (%d, %v)",
				u, resp.Assign[u], resp.Prob[u], want.Assign[u], want.Prob[u])
		}
	}
	if resp.Stats == nil || resp.Stats.FinalQ != wantSt.FinalQ ||
		resp.Stats.Invocations != wantSt.Invocations ||
		resp.Stats.OracleCalls != wantSt.OracleCalls {
		t.Fatalf("stats: server %+v != library %+v", resp.Stats, wantSt)
	}
}

func TestClusterSyncBitIdenticalToLibrary(t *testing.T) {
	g := testGraph(t, 96, 5)
	_, ts := newTestServer(t, g, Options{})

	for _, algo := range []string{"mcp", "acp"} {
		want, wantSt := libraryCluster(t, g, algo, 4, 11)
		var resp clusterResponse
		code, body := post(t, ts.URL+"/v1/cluster", map[string]any{
			"graph": "ring", "algo": algo, "k": 4, "seed": 11,
		}, &resp)
		if code != 200 {
			t.Fatalf("%s: code %d body %s", algo, code, body)
		}
		checkClusterMatch(t, &resp, want, wantSt)
	}
}

// TestConcurrentConnAndClusterBitIdentical is the end-to-end acceptance
// check: many clients hammer /v1/conn (pair + multi-center) and
// /v1/cluster concurrently against ONE shared store, and every single
// response must equal the corresponding library answer bit for bit.
func TestConcurrentConnAndClusterBitIdentical(t *testing.T) {
	g := testGraph(t, 96, 6)
	s, ts := newTestServer(t, g, Options{Gate: 3})

	// Library ground truth, computed before any server traffic.
	ref := conn.NewMonteCarlo(g, 7)
	wantPair := make([]float64, 8)
	for i := range wantPair {
		wantPair[i] = ref.Pair(int32(i), int32(90-i), 700)
	}
	centers := []int32{2, 30, 61}
	wantCenters := conn.NewMonteCarlo(g, 7).FromCenters(centers, conn.Unlimited, 650)
	wantMCP, wantMCPSt := libraryCluster(t, g, "mcp", 4, 21)
	wantACP, wantACPSt := libraryCluster(t, g, "acp", 3, 22)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var pr struct {
					Probability float64 `json:"probability"`
				}
				code, body := post(t, ts.URL+"/v1/conn", map[string]any{
					"graph": "ring", "source": i, "target": 90 - i, "samples": 700,
				}, &pr)
				if code != 200 {
					errs <- fmt.Sprintf("pair: code %d body %s", code, body)
					return
				}
				if pr.Probability != wantPair[i] {
					errs <- fmt.Sprintf("pair %d: %v != %v", i, pr.Probability, wantPair[i])
				}
				var ce struct {
					Estimates [][]float64 `json:"estimates"`
				}
				code, body = post(t, ts.URL+"/v1/conn", map[string]any{
					"graph": "ring", "centers": centers, "samples": 650,
				}, &ce)
				if code != 200 {
					errs <- fmt.Sprintf("centers: code %d body %s", code, body)
					return
				}
				for ci := range centers {
					for u := range wantCenters[ci] {
						if ce.Estimates[ci][u] != wantCenters[ci][u] {
							errs <- fmt.Sprintf("center %d node %d: %v != %v",
								centers[ci], u, ce.Estimates[ci][u], wantCenters[ci][u])
							return
						}
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				algo, k, seed := "mcp", 4, uint64(21)
				want, wantSt := wantMCP, wantMCPSt
				if w == 1 {
					algo, k, seed = "acp", 3, 22
					want, wantSt = wantACP, wantACPSt
				}
				var resp clusterResponse
				code, body := post(t, ts.URL+"/v1/cluster", map[string]any{
					"graph": "ring", "algo": algo, "k": k, "seed": seed,
				}, &resp)
				if code != 200 {
					errs <- fmt.Sprintf("cluster %s: code %d body %s", algo, code, body)
					return
				}
				checkClusterMatch(t, &resp, want, wantSt)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// All of that traffic ran against one store: the shared registry must
	// report exactly one store for (g, 7), and it must have seen reuse.
	st := s.graphs["ring"].store.Stats()
	if st.Hits == 0 {
		t.Fatalf("shared store saw no block reuse under concurrent traffic: %+v", st)
	}
}

func TestClusterAsyncJobLifecycle(t *testing.T) {
	g := testGraph(t, 96, 8)
	_, ts := newTestServer(t, g, Options{})

	want, wantSt := libraryCluster(t, g, "mcp", 4, 31)

	var accepted jobView
	code, body := post(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "mcp", "k": 4, "seed": 31, "async": true,
	}, &accepted)
	if code != http.StatusAccepted {
		t.Fatalf("async submit: code %d body %s", code, body)
	}
	if accepted.ID == "" || accepted.Status != JobRunning {
		t.Fatalf("async submit: %+v", accepted)
	}

	deadline := time.Now().Add(30 * time.Second)
	var j jobView
	for {
		if get(t, ts.URL+"/v1/jobs/"+accepted.ID, &j); j.Status != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck running: %+v", j)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if j.Status != JobDone || j.Result == nil {
		t.Fatalf("job did not finish cleanly: %+v", j)
	}
	checkClusterMatch(t, j.Result, want, wantSt)

	if code := get(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: code %d", code)
	}
}

func TestJobCancelWhileQueued(t *testing.T) {
	g := testGraph(t, 64, 9)
	s, ts := newTestServer(t, g, Options{Gate: 1})

	// Occupy the graph's only admission slot so the job queues.
	h := s.graphs["ring"]
	h.gate <- struct{}{}
	defer func() { <-h.gate }()

	var accepted jobView
	code, _ := post(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "mcp", "k": 3, "async": true,
	}, &accepted)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}

	// Cancel it; the queued admission must abort with a cancellation error.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+accepted.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 200 {
		t.Fatalf("cancel: %v %v", resp.StatusCode, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var j jobView
	for {
		if get(t, ts.URL+"/v1/jobs/"+accepted.ID, &j); j.Status != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled job stuck running: %+v", j)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if j.Status != JobError || !strings.Contains(j.Error, "context canceled") {
		t.Fatalf("want cancelled job, got %+v", j)
	}
}

func TestDeadlineExceededReturns504(t *testing.T) {
	g := testGraph(t, 512, 10)
	_, ts := newTestServer(t, g, Options{})

	code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 1,
		"samples": 1 << 19, "timeout_ms": 1,
	}, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d: %s", code, body)
	}
}

func TestAdmissionGateRespectsDeadline(t *testing.T) {
	g := testGraph(t, 64, 11)
	s, ts := newTestServer(t, g, Options{Gate: 1})
	h := s.graphs["ring"]
	h.gate <- struct{}{} // fill the gate
	defer func() { <-h.gate }()

	code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 1, "timeout_ms": 30,
	}, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("want 504 from admission queue, got %d: %s", code, body)
	}
}

func TestKNNMatchesLibrary(t *testing.T) {
	g := testGraph(t, 72, 12)
	s, ts := newTestServer(t, g, Options{})

	const r = 400
	dd := knn.SampleStore(s.graphs["ring"].store, 4, r)
	want := dd.KNN(5, knn.MedianDistance)

	var resp struct {
		Neighbors []neighborView `json:"neighbors"`
	}
	code, body := post(t, ts.URL+"/v1/knn", map[string]any{
		"graph": "ring", "source": 4, "k": 5, "measure": "median", "samples": r,
	}, &resp)
	if code != 200 {
		t.Fatalf("code %d body %s", code, body)
	}
	if len(resp.Neighbors) != len(want) {
		t.Fatalf("want %d neighbors, got %d", len(want), len(resp.Neighbors))
	}
	for i, nb := range want {
		got := resp.Neighbors[i]
		if got.Node != nb.Node || got.Distance != nb.Distance || got.Reliability != nb.Reliability {
			t.Fatalf("neighbor %d: %+v != %+v", i, got, nb)
		}
	}
}

func TestInfluenceMatchesLibrary(t *testing.T) {
	g := testGraph(t, 72, 13)
	s, ts := newTestServer(t, g, Options{})
	store := s.graphs["ring"].store
	const r = 300

	wantSpread := influence.Spread(store, []int32{0, 9}, r)
	var spreadResp struct {
		Spread float64 `json:"spread"`
	}
	code, body := post(t, ts.URL+"/v1/influence", map[string]any{
		"graph": "ring", "seeds": []int32{0, 9}, "samples": r,
	}, &spreadResp)
	if code != 200 {
		t.Fatalf("spread: code %d body %s", code, body)
	}
	if spreadResp.Spread != wantSpread {
		t.Fatalf("spread: %v != %v", spreadResp.Spread, wantSpread)
	}

	wantGreedy, err := influence.Greedy(store, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	var greedyResp struct {
		Seeds  []int32   `json:"seeds"`
		Spread []float64 `json:"spread"`
	}
	code, body = post(t, ts.URL+"/v1/influence", map[string]any{
		"graph": "ring", "k": 3, "samples": r,
	}, &greedyResp)
	if code != 200 {
		t.Fatalf("greedy: code %d body %s", code, body)
	}
	for i := range wantGreedy.Seeds {
		if greedyResp.Seeds[i] != wantGreedy.Seeds[i] || greedyResp.Spread[i] != wantGreedy.Spread[i] {
			t.Fatalf("greedy: %+v != %+v", greedyResp, wantGreedy)
		}
	}
}

func TestReliabilityMatchesLibrary(t *testing.T) {
	g := testGraph(t, 72, 14)
	s, ts := newTestServer(t, g, Options{})
	store := s.graphs["ring"].store
	const r = 350

	cases := []struct {
		kind string
		set  []int32
		want float64
	}{
		{"set", []int32{0, 5, 11}, metrics.SetReliability(store, []int32{0, 5, 11}, r)},
		{"all_terminal", nil, metrics.AllTerminalReliability(store, r)},
		{"components", nil, metrics.ExpectedComponents(store, r)},
		{"largest_component", nil, metrics.LargestComponentFraction(store, r)},
	}
	for _, c := range cases {
		var resp struct {
			Value float64 `json:"value"`
		}
		body := map[string]any{"graph": "ring", "kind": c.kind, "samples": r}
		if c.set != nil {
			body["set"] = c.set
		}
		code, raw := post(t, ts.URL+"/v1/reliability", body, &resp)
		if code != 200 {
			t.Fatalf("%s: code %d body %s", c.kind, code, raw)
		}
		if resp.Value != c.want {
			t.Fatalf("%s: %v != %v", c.kind, resp.Value, c.want)
		}
	}
}

func TestValidation(t *testing.T) {
	g := testGraph(t, 32, 15)
	_, ts := newTestServer(t, g, Options{MaxSamples: 1000})

	cases := []struct {
		name string
		path string
		body map[string]any
		code int
	}{
		{"unknown graph", "/v1/conn", map[string]any{"graph": "nope", "source": 0, "target": 1}, 404},
		{"missing graph", "/v1/conn", map[string]any{"source": 0, "target": 1}, 400},
		{"node out of range", "/v1/conn", map[string]any{"graph": "ring", "source": 0, "target": 99}, 400},
		{"center out of range", "/v1/conn", map[string]any{"graph": "ring", "centers": []int32{500}}, 400},
		{"no query shape", "/v1/conn", map[string]any{"graph": "ring"}, 400},
		{"samples over cap", "/v1/conn", map[string]any{"graph": "ring", "source": 0, "target": 1, "samples": 5000}, 400},
		{"negative samples", "/v1/conn", map[string]any{"graph": "ring", "source": 0, "target": 1, "samples": -1}, 400},
		{"bad algo", "/v1/cluster", map[string]any{"graph": "ring", "algo": "zap", "k": 2}, 400},
		{"k omitted", "/v1/cluster", map[string]any{"graph": "ring", "algo": "mcp"}, 400},
		{"k too large", "/v1/cluster", map[string]any{"graph": "ring", "algo": "mcp", "k": 32}, 400},
		{"gmm k over n", "/v1/cluster", map[string]any{"graph": "ring", "algo": "gmm", "k": 33}, 400},
		{"bad measure", "/v1/knn", map[string]any{"graph": "ring", "source": 0, "measure": "zap"}, 400},
		{"bad kind", "/v1/reliability", map[string]any{"graph": "ring", "kind": "zap"}, 400},
		{"empty set", "/v1/reliability", map[string]any{"graph": "ring", "kind": "set"}, 400},
		{"influence no shape", "/v1/influence", map[string]any{"graph": "ring"}, 400},
	}
	for _, c := range cases {
		if code, body := post(t, ts.URL+c.path, c.body, nil); code != c.code {
			t.Errorf("%s: want %d, got %d (%s)", c.name, c.code, code, body)
		}
	}
}

func TestJobTableRetainsBoundedFinishedJobs(t *testing.T) {
	tb := newJobTable()
	var first *job
	for i := 0; i < maxFinishedJobs+5; i++ {
		j := tb.create("g", "mcp", func() {})
		if first == nil {
			first = j
		}
		j.finish(&clusterResponse{}, nil)
		tb.noteFinished(j.id)
	}
	if _, ok := tb.get(first.id); ok {
		t.Fatal("oldest finished job should have been evicted")
	}
	if len(tb.jobs) != maxFinishedJobs {
		t.Fatalf("retained %d finished jobs, want %d", len(tb.jobs), maxFinishedJobs)
	}
	// The newest finished job is still pollable.
	if j, ok := tb.get(fmt.Sprintf("job-%d", maxFinishedJobs+5)); !ok || j.view().Status != JobDone {
		t.Fatal("newest finished job must remain pollable")
	}
}

func TestServerRejectsBadConfigs(t *testing.T) {
	g := testGraph(t, 16, 16)
	if _, err := New(nil, Options{}); err == nil {
		t.Error("no graphs accepted")
	}
	if _, err := New([]GraphConfig{{Name: "", Graph: g}}, Options{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New([]GraphConfig{{Name: "a", Graph: g}, {Name: "a", Graph: g}}, Options{}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := New([]GraphConfig{{Name: "a", Graph: nil}}, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}
