package server

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRequestCost(t *testing.T) {
	if c := requestCost(1000, 3); c != 3000 {
		t.Fatalf("cost = %d, want 3000", c)
	}
	// A pair query has no center list; it still drives one center.
	if c := requestCost(1000, 0); c != 1000 {
		t.Fatalf("zero-center cost = %d, want 1000", c)
	}
}

func TestClientQuotaConcurrency(t *testing.T) {
	q := newClientQuotas(2, 0)
	rel1, e := q.admit("alice", 100)
	if e != nil {
		t.Fatal(e.msg)
	}
	rel2, e := q.admit("alice", 100)
	if e != nil {
		t.Fatal(e.msg)
	}
	if _, e := q.admit("alice", 100); e == nil || e.code != 429 {
		t.Fatalf("third concurrent request admitted: %v", e)
	}
	// A different client has its own slots.
	relB, e := q.admit("bob", 100)
	if e != nil {
		t.Fatalf("bob rejected: %v", e.msg)
	}
	relB()
	// Releasing one of alice's slots readmits her.
	rel1()
	rel3, e := q.admit("alice", 100)
	if e != nil {
		t.Fatalf("readmission failed: %v", e.msg)
	}
	rel3()
	rel2()
}

func TestClientQuotaTokenBucket(t *testing.T) {
	q := newClientQuotas(0, 1000)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	rel, e := q.admit("alice", 600)
	if e != nil {
		t.Fatal(e.msg)
	}
	rel()
	// 400 tokens left: another 600-cost request must bounce with 429.
	if _, e := q.admit("alice", 600); e == nil || e.code != 429 {
		t.Fatalf("over-quota request admitted: %v", e)
	}
	// A cheap request still fits.
	rel, e = q.admit("alice", 300)
	if e != nil {
		t.Fatal(e.msg)
	}
	rel()
	// After 30s the bucket refills by 500 (1000/min): 600 fits again.
	now = now.Add(30 * time.Second)
	rel, e = q.admit("alice", 600)
	if e != nil {
		t.Fatalf("post-refill request rejected: %v", e.msg)
	}
	rel()
	// Refill is capped at the per-minute rate: an hour idle does not bank
	// an hour of tokens.
	now = now.Add(time.Hour)
	if _, e := q.admit("alice", 1500); e == nil {
		t.Fatal("banked more than one minute of tokens")
	}
}

func TestMaxCostRejectsOversizedRequest(t *testing.T) {
	g := testGraph(t, 32, 1)
	_, ts := newTestServer(t, g, Options{MaxCost: 10_000})

	// 2048 worlds x 8 centers = 16384 > 10000.
	code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "centers": []int{0, 1, 2, 3, 4, 5, 6, 7}, "samples": 2048,
	}, nil)
	if code != 400 {
		t.Fatalf("oversized request: code %d body %s", code, body)
	}
	// Under the cap it serves normally.
	if code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "centers": []int{0, 1}, "samples": 2048,
	}, nil); code != 200 {
		t.Fatalf("in-cap request: code %d body %s", code, body)
	}
}

func TestWorldsPerMinQuotaOverHTTP(t *testing.T) {
	g := testGraph(t, 32, 1)
	_, ts := newTestServer(t, g, Options{ClientWorldsPerMin: 1000})

	req := map[string]any{"graph": "ring", "source": 0, "target": 1, "samples": 600}
	if code, body := post(t, ts.URL+"/v1/conn", req, nil); code != 200 {
		t.Fatalf("first request: code %d body %s", code, body)
	}
	// Same client (same remote host): 400 tokens left, 600 needed.
	if code, _ := post(t, ts.URL+"/v1/conn", req, nil); code != 429 {
		t.Fatalf("second request: code %d, want 429", code)
	}
	// A different tenant behind the same gateway separates via the
	// X-API-Client header.
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/conn",
		strings.NewReader(`{"graph":"ring","source":0,"target":1,"samples":600}`))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-API-Client", "tenant-b")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("tenant-b request: code %d", resp.StatusCode)
	}
}
