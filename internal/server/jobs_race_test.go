package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// Lifecycle race tests for /v1/jobs: a job's terminal state must be
// written exactly once and every later observation — polls after a
// cancel, repeated cancels, cancels racing natural completion — must see
// that one state, never a torn or flip-flopping view. Run under -race
// these also prove the job table itself is data-race free.

func deleteJob(t *testing.T, url string) (int, jobView) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j jobView
	if resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, j
}

func pollUntilTerminal(t *testing.T, url string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var j jobView
		if code := get(t, url, &j); code != 200 {
			t.Fatalf("poll: code %d", code)
		} else if j.Status != JobRunning {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatal("job stuck running")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobPollAfterCancelIsStable(t *testing.T) {
	g := testGraph(t, 64, 9)
	s, ts := newTestServer(t, g, Options{Gate: 1})

	// Hold the graph's only admission slot so the job stays cancellable.
	h := s.graphs["ring"]
	h.gate <- struct{}{}
	defer func() { <-h.gate }()

	var accepted jobView
	if code, _ := post(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "mcp", "k": 3, "async": true,
	}, &accepted); code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	jobURL := ts.URL + "/v1/jobs/" + accepted.ID

	if code, _ := deleteJob(t, jobURL); code != 200 {
		t.Fatalf("cancel: code %d", code)
	}
	first := pollUntilTerminal(t, jobURL)
	if first.Status != JobError || !strings.Contains(first.Error, "context canceled") {
		t.Fatalf("cancelled job: %+v", first)
	}
	if first.FinishedAt == nil {
		t.Fatalf("terminal job without finished_at: %+v", first)
	}
	// Every later poll observes the identical terminal snapshot.
	for i := 0; i < 10; i++ {
		var j jobView
		if code := get(t, jobURL, &j); code != 200 {
			t.Fatalf("poll %d: code %d", i, code)
		}
		if j.Status != first.Status || j.Error != first.Error ||
			j.FinishedAt == nil || !j.FinishedAt.Equal(*first.FinishedAt) {
			t.Fatalf("terminal state drifted on poll %d: %+v vs %+v", i, j, first)
		}
	}
}

func TestJobDoubleCancelIsIdempotent(t *testing.T) {
	g := testGraph(t, 64, 9)
	s, ts := newTestServer(t, g, Options{Gate: 1})

	h := s.graphs["ring"]
	h.gate <- struct{}{}
	defer func() { <-h.gate }()

	var accepted jobView
	if code, _ := post(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "mcp", "k": 3, "async": true,
	}, &accepted); code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	jobURL := ts.URL + "/v1/jobs/" + accepted.ID

	if code, _ := deleteJob(t, jobURL); code != 200 {
		t.Fatalf("first cancel: code %d", code)
	}
	first := pollUntilTerminal(t, jobURL)
	// A second cancel is a no-op, not an error, and cannot rewrite the
	// terminal state.
	code, second := deleteJob(t, jobURL)
	if code != 200 {
		t.Fatalf("second cancel: code %d", code)
	}
	if second.Status != first.Status || second.Error != first.Error {
		t.Fatalf("second cancel rewrote the outcome: %+v vs %+v", second, first)
	}
}

func TestJobCancelAfterCompletionKeepsResult(t *testing.T) {
	g := testGraph(t, 48, 9)
	_, ts := newTestServer(t, g, Options{})

	var accepted jobView
	if code, _ := post(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "mcp", "k": 3, "async": true,
	}, &accepted); code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	jobURL := ts.URL + "/v1/jobs/" + accepted.ID
	done := pollUntilTerminal(t, jobURL)
	if done.Status != JobDone || done.Result == nil {
		t.Fatalf("job did not complete: %+v", done)
	}
	// Cancelling a finished job must not demote it to error or drop the
	// result (finish is first-writer-wins).
	code, after := deleteJob(t, jobURL)
	if code != 200 {
		t.Fatalf("cancel after done: code %d", code)
	}
	if after.Status != JobDone || after.Result == nil || after.Error != "" {
		t.Fatalf("cancel rewrote a finished job: %+v", after)
	}
}

func TestJobCompletionRacesConcurrentPollAndCancel(t *testing.T) {
	g := testGraph(t, 64, 9)
	_, ts := newTestServer(t, g, Options{})

	// Many short jobs, each hammered by concurrent pollers and cancellers
	// while it finishes naturally: whichever side wins, every observer
	// must see one coherent terminal state.
	for round := 0; round < 4; round++ {
		var accepted jobView
		if code, _ := post(t, ts.URL+"/v1/cluster", map[string]any{
			"graph": "ring", "algo": "mcp", "k": 2, "seed": round, "async": true,
		}, &accepted); code != http.StatusAccepted {
			t.Fatalf("submit: code %d", code)
		}
		jobURL := ts.URL + "/v1/jobs/" + accepted.ID

		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					var v jobView
					if code := get(t, jobURL, &v); code != 200 {
						t.Errorf("poll: code %d", code)
						return
					}
					switch v.Status {
					case JobRunning, JobDone, JobError:
					default:
						t.Errorf("impossible status %q", v.Status)
						return
					}
					if v.Status == JobDone && v.Result == nil {
						t.Error("done job without result")
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				if code, _ := deleteJob(t, jobURL); code != 200 {
					t.Errorf("cancel: code %d", code)
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		final := pollUntilTerminal(t, jobURL)
		switch final.Status {
		case JobDone:
			if final.Result == nil {
				t.Fatalf("done without result: %+v", final)
			}
		case JobError:
			if final.Error == "" {
				t.Fatalf("error without message: %+v", final)
			}
		default:
			t.Fatalf("non-terminal final state: %+v", final)
		}
	}
}
