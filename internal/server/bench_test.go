package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// connPairBody is the benchmark query: one pair probability over benchR
// worlds of a benchN-node ring.
const (
	benchN = 512
	benchR = 2048
)

func connPairBody(b *testing.B) []byte {
	b.Helper()
	body, err := json.Marshal(map[string]any{
		"graph": "ring", "source": 0, "target": benchN / 2, "samples": benchR,
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func serveConn(b *testing.B, s *Server, body []byte) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/conn", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("code %d: %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkConnColdStore measures a /v1/conn pair query against a cold
// world store: every iteration serves a distinct world-stream seed, so the
// request pays full block materialization — the first-query latency a
// client sees after a daemon (re)start.
func BenchmarkConnColdStore(b *testing.B) {
	g := testGraph(b, benchN, 1)
	body := connPairBody(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: uint64(i + 1)}}, Options{})
		if err != nil {
			b.Fatal(err)
		}
		serveConn(b, s, body)
	}
	b.ReportMetric(float64(benchR), "worlds/query")
}

// BenchmarkConnWarmStore measures the same query against a warm store: the
// label blocks are resident after the first request, so iterations pay
// only the per-world label scans — the steady-state latency the daemon
// exists to provide.
func BenchmarkConnWarmStore(b *testing.B) {
	g := testGraph(b, benchN, 1)
	s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 1}}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	body := connPairBody(b)
	serveConn(b, s, body) // warm the store
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveConn(b, s, body)
	}
	b.ReportMetric(float64(benchR), "worlds/query")
}

// benchAdaptiveBudget caps the adaptive benchmarks. The confidence target
// (eps = delta = 0.05) converges well before the cap on the benchmark
// ring — the gap between the two, reported as worlds-saved/query, is the
// point of the adaptive mode.
const benchAdaptiveBudget = 4096

func adaptivePairBody(b *testing.B) []byte {
	b.Helper()
	body, err := json.Marshal(map[string]any{
		"graph": "ring", "source": 0, "target": benchN / 2,
		"samples": benchAdaptiveBudget, "eps": 0.05, "delta": 0.05,
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// serveConnWorlds serves one /v1/conn request and returns the world count
// the response reports it consumed.
func serveConnWorlds(b *testing.B, s *Server, body []byte) int {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/conn", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("code %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Worlds int `json:"worlds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		b.Fatal(err)
	}
	return out.Worlds
}

// BenchmarkConnAdaptiveWarmStore measures the adaptive (eps, delta) pair
// query against a warm store: block-aligned doubling rounds until the
// empirical-Bernstein/Hoeffding interval closes to eps = 0.05 at
// confidence 0.95. worlds/query reports the worlds actually consumed,
// worlds-saved/query the early-stopping refund against the budget —
// compare with BenchmarkConnAdaptiveFixedBudget below.
func BenchmarkConnAdaptiveWarmStore(b *testing.B) {
	g := testGraph(b, benchN, 1)
	s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 1}}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	body := adaptivePairBody(b)
	worlds := serveConnWorlds(b, s, body) // warm the store
	if worlds >= benchAdaptiveBudget {
		b.Fatalf("adaptive run consumed the full budget (%d worlds); nothing to measure", worlds)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worlds = serveConnWorlds(b, s, body)
	}
	b.ReportMetric(float64(worlds), "worlds/query")
	b.ReportMetric(float64(benchAdaptiveBudget-worlds), "worlds-saved/query")
}

// BenchmarkConnAdaptiveFixedBudget is the control: the same pair query
// spending the adaptive benchmark's full world budget unconditionally.
// The worlds/query ratio against BenchmarkConnAdaptiveWarmStore is the
// world savings the confidence target buys at identical accuracy
// guarantees.
func BenchmarkConnAdaptiveFixedBudget(b *testing.B) {
	g := testGraph(b, benchN, 1)
	s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 1}}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"graph": "ring", "source": 0, "target": benchN / 2, "samples": benchAdaptiveBudget,
	})
	if err != nil {
		b.Fatal(err)
	}
	serveConn(b, s, body) // warm the store
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveConn(b, s, body)
	}
	b.ReportMetric(float64(benchAdaptiveBudget), "worlds/query")
}

// BenchmarkConnWarmStoreParallel measures warm-store queries under client
// concurrency — the serving regime the admission gate and the store's
// reader pinning are designed for.
func BenchmarkConnWarmStoreParallel(b *testing.B) {
	g := testGraph(b, benchN, 1)
	s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 1}, {Name: "unused", Graph: g, Seed: 2}}, Options{Gate: 8})
	if err != nil {
		b.Fatal(err)
	}
	body := connPairBody(b)
	serveConn(b, s, body)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			serveConn(b, s, body)
		}
	})
}
