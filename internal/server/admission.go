package server

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Cost-based admission and per-client quotas — the layers above the
// per-graph concurrency gate. Every estimating request is priced in
// world-extensions (its world budget times the centers it drives) before
// any store work happens:
//
//  1. a single request above Options.MaxCost is rejected with 400 — it
//     could never be admitted, so queueing it would only hold a slot;
//  2. a client already running Options.ClientConcurrent estimating
//     requests gets 429 until one finishes;
//  3. a client whose summed request cost outruns the
//     Options.ClientWorldsPerMin token refill gets 429 until tokens
//     return.
//
// Adaptive requests are priced at their world BUDGET, not their (unknown
// in advance) consumption: admission must bound the worst case, and the
// early-stopping refund shows up in the worlds_saved counter instead.

// requestCost prices an estimating request.
func requestCost(worlds, centers int) int64 {
	if centers < 1 {
		centers = 1
	}
	return int64(worlds) * int64(centers)
}

// clientQuotas tracks per-client concurrency and cost-token buckets.
// A zero limit disables the corresponding check.
type clientQuotas struct {
	maxConcurrent int
	worldsPerMin  int64

	mu      sync.Mutex
	running map[string]int
	buckets map[string]*costBucket
	now     func() time.Time // test hook
}

type costBucket struct {
	tokens float64
	last   time.Time
}

func newClientQuotas(maxConcurrent int, worldsPerMin int64) *clientQuotas {
	return &clientQuotas{
		maxConcurrent: maxConcurrent,
		worldsPerMin:  worldsPerMin,
		running:       make(map[string]int),
		buckets:       make(map[string]*costBucket),
		now:           time.Now,
	}
}

// enabled reports whether any quota is configured.
func (q *clientQuotas) enabled() bool {
	return q.maxConcurrent > 0 || q.worldsPerMin > 0
}

// admit charges one request to the client's quotas. On success the
// returned release must be called when the request finishes; on rejection
// it returns a 429 apiError and no release.
func (q *clientQuotas) admit(client string, cost int64) (func(), *apiError) {
	if !q.enabled() {
		return func() {}, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.maxConcurrent > 0 && q.running[client] >= q.maxConcurrent {
		return nil, &apiError{http.StatusTooManyRequests,
			fmt.Sprintf("client %q already has %d estimating requests running (quota %d)", client, q.running[client], q.maxConcurrent)}
	}
	if q.worldsPerMin > 0 {
		b, ok := q.buckets[client]
		now := q.now()
		if !ok {
			b = &costBucket{tokens: float64(q.worldsPerMin), last: now}
			q.buckets[client] = b
		} else {
			b.tokens += now.Sub(b.last).Minutes() * float64(q.worldsPerMin)
			if b.tokens > float64(q.worldsPerMin) {
				b.tokens = float64(q.worldsPerMin)
			}
			b.last = now
		}
		if b.tokens < float64(cost) {
			return nil, &apiError{http.StatusTooManyRequests,
				fmt.Sprintf("client %q cost quota exhausted: request costs %d world-extensions, %d available (refill %d/min)", client, cost, int64(b.tokens), q.worldsPerMin)}
		}
		b.tokens -= float64(cost)
	}
	q.running[client]++
	return func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		if q.running[client] <= 1 {
			delete(q.running, client)
		} else {
			q.running[client]--
		}
	}, nil
}

// clientKey identifies the requesting client: the X-API-Client header when
// present (how multi-tenant deployments separate tenants behind one
// gateway), else the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-API-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admitCost runs the cost cap and the client quotas for one estimating
// request. The returned release is non-nil exactly when the error is nil.
func (s *Server) admitCost(r *http.Request, worlds, centers int) (func(), *apiError) {
	cost := requestCost(worlds, centers)
	if cost > s.opts.MaxCost {
		return nil, badRequest(fmt.Sprintf(
			"request cost %d world-extensions (%d worlds x %d centers) exceeds the server cap %d; lower \"samples\" or split the centers",
			cost, worlds, centers, s.opts.MaxCost))
	}
	return s.quotas.admit(clientKey(r), cost)
}
