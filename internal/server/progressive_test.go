package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// sseFrames posts a JSON body and reads the SSE response, returning every
// decoded "data:" frame plus the terminal error event's payload (nil when
// the stream ended cleanly).
func sseFrames(t *testing.T, url string, body any) (frames []map[string]any, errEvent map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream request: code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inError := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: error":
			inError = true
		case strings.HasPrefix(line, "data: "):
			var m map[string]any
			if err := json.Unmarshal([]byte(line[len("data: "):]), &m); err != nil {
				t.Fatalf("bad frame %q: %v", line, err)
			}
			if inError {
				errEvent = m
				inError = false
			} else {
				frames = append(frames, m)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames, errEvent
}

func TestAdaptiveConnPairJSON(t *testing.T) {
	g := testGraph(t, 64, 1)
	_, ts := newTestServer(t, g, Options{})

	var out struct {
		Probability float64 `json:"probability"`
		HalfWidth   float64 `json:"half_width"`
		Worlds      int     `json:"worlds"`
		Budget      int     `json:"budget"`
		Converged   bool    `json:"converged"`
		Final       bool    `json:"final"`
	}
	code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 1, "samples": 4096,
		"eps": 0.05, "delta": 0.05,
	}, &out)
	if code != 200 {
		t.Fatalf("code %d body %s", code, body)
	}
	if !out.Final || !out.Converged {
		t.Fatalf("adaptive pair did not converge: %+v", out)
	}
	if out.Worlds <= 0 || out.Worlds >= 4096 {
		t.Fatalf("worlds = %d, want early stop inside (0, 4096)", out.Worlds)
	}
	if out.HalfWidth > 0.05 || out.HalfWidth <= 0 {
		t.Fatalf("half_width = %v, want in (0, eps]", out.HalfWidth)
	}
	if out.Probability < 0 || out.Probability > 1 {
		t.Fatalf("probability = %v out of range", out.Probability)
	}
}

func TestAdaptiveConnCentersStreamMatchesFixedBudget(t *testing.T) {
	g := testGraph(t, 64, 1)
	_, ts := newTestServer(t, g, Options{})

	frames, errEvent := sseFrames(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "centers": []int{0, 10}, "targets": []int{1, 11, 32},
		"samples": 4096, "eps": 0.05, "delta": 0.05, "stream": true,
	})
	if errEvent != nil {
		t.Fatalf("stream errored: %v", errEvent)
	}
	if len(frames) < 2 {
		t.Fatalf("want at least 2 refinement frames, got %d", len(frames))
	}
	// Worlds must strictly increase and the half-width strictly shrink
	// frame over frame (deterministic on a fixed seed, so no flake).
	for i := 1; i < len(frames); i++ {
		if frames[i]["worlds"].(float64) <= frames[i-1]["worlds"].(float64) {
			t.Fatalf("worlds not increasing at frame %d: %v -> %v", i, frames[i-1]["worlds"], frames[i]["worlds"])
		}
		if frames[i]["half_width"].(float64) >= frames[i-1]["half_width"].(float64) {
			t.Fatalf("half-width not shrinking at frame %d: %v -> %v", i, frames[i-1]["half_width"], frames[i]["half_width"])
		}
	}
	last := frames[len(frames)-1]
	if last["final"] != true || last["converged"] != true {
		t.Fatalf("last frame not converged+final: %v", last)
	}
	worlds := int(last["worlds"].(float64))
	if worlds >= 4096 {
		t.Fatalf("no early stop: consumed %d of 4096", worlds)
	}

	// The final frame must equal the fixed-budget answer at the same
	// consumed-world count — adaptive rounds reuse the shared tallies, so
	// the numbers are bit-identical, not merely close.
	var fixed struct {
		Estimates [][]float64 `json:"estimates"`
	}
	code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "centers": []int{0, 10}, "targets": []int{1, 11, 32},
		"samples": worlds,
	}, &fixed)
	if code != 200 {
		t.Fatalf("fixed query: code %d body %s", code, body)
	}
	got, err := json.Marshal(last["estimates"])
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(fixed.Estimates)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("final frame estimates %s != fixed-budget %s at %d worlds", got, want, worlds)
	}
}

func TestAdaptiveConnValidation(t *testing.T) {
	g := testGraph(t, 32, 1)
	_, ts := newTestServer(t, g, Options{})

	// delta without eps is ambiguous.
	if code, _ := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 1, "samples": 256, "delta": 0.1,
	}, nil); code != 400 {
		t.Fatalf("delta without eps: code %d, want 400", code)
	}
	// eps out of range.
	if code, _ := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 1, "samples": 256, "eps": 1.5,
	}, nil); code != 400 {
		t.Fatalf("eps out of range: code %d, want 400", code)
	}
	// stream alone implies an adaptive run with default targets.
	frames, errEvent := sseFrames(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 1, "samples": 2048, "stream": true,
	})
	if errEvent != nil || len(frames) == 0 {
		t.Fatalf("bare stream=true: frames=%d err=%v", len(frames), errEvent)
	}
	last := frames[len(frames)-1]
	if last["eps"].(float64) != defaultEpsDelta || last["delta"].(float64) != defaultEpsDelta {
		t.Fatalf("bare stream defaults: %v", last)
	}
}

func TestClusterStream(t *testing.T) {
	g := testGraph(t, 48, 1)
	_, ts := newTestServer(t, g, Options{})

	frames, errEvent := sseFrames(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "mcp", "k": 3, "seed": 5, "stream": true,
		"eps": 0.1, "delta": 0.1,
	})
	if errEvent != nil {
		t.Fatalf("stream errored: %v", errEvent)
	}
	if len(frames) < 2 {
		t.Fatalf("want progress + final frames, got %d", len(frames))
	}
	final := frames[len(frames)-1]
	if final["final"] != true {
		t.Fatalf("last frame not final: %v", final)
	}
	res, ok := final["result"].(map[string]any)
	if !ok {
		t.Fatalf("final frame carries no result: %v", final)
	}
	if res["k"].(float64) != 3 {
		t.Fatalf("result k = %v", res["k"])
	}
	for _, f := range frames[:len(frames)-1] {
		if f["final"] != false {
			t.Fatalf("non-terminal frame marked final: %v", f)
		}
		if f["centers"].(float64) < 1 || f["score_worlds"].(float64) <= 0 {
			t.Fatalf("implausible progress frame: %v", f)
		}
	}
}

func TestClusterStreamValidation(t *testing.T) {
	g := testGraph(t, 32, 1)
	_, ts := newTestServer(t, g, Options{})

	// stream+async cannot both hold: a job has no response stream.
	if code, _ := post(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "mcp", "k": 2, "stream": true, "async": true,
	}, nil); code != 400 {
		t.Fatalf("stream+async: code %d, want 400", code)
	}
	// eps/delta only make sense for the sampling algorithms.
	if code, _ := post(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "mcl", "k": 2, "eps": 0.1,
	}, nil); code != 400 {
		t.Fatalf("eps on mcl: code %d, want 400", code)
	}
	if code, _ := post(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "gmm", "k": 2, "stream": true,
	}, nil); code != 400 {
		t.Fatalf("stream on gmm: code %d, want 400", code)
	}
}

func TestStatszAdaptiveCounters(t *testing.T) {
	g := testGraph(t, 64, 1)
	_, ts := newTestServer(t, g, Options{})

	var stats struct {
		AdaptiveQueries uint64 `json:"adaptive_queries"`
		WorldsSaved     uint64 `json:"worlds_saved"`
	}
	if code := get(t, ts.URL+"/statsz", &stats); code != 200 {
		t.Fatalf("statsz: code %d", code)
	}
	if stats.AdaptiveQueries != 0 || stats.WorldsSaved != 0 {
		t.Fatalf("fresh daemon has adaptive counters: %+v", stats)
	}

	var out struct {
		Worlds int `json:"worlds"`
	}
	if code, body := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 1, "samples": 4096,
		"eps": 0.05, "delta": 0.05,
	}, &out); code != 200 {
		t.Fatalf("adaptive conn: code %d body %s", code, body)
	}
	if code := get(t, ts.URL+"/statsz", &stats); code != 200 {
		t.Fatal("statsz after adaptive query")
	}
	if stats.AdaptiveQueries != 1 {
		t.Fatalf("adaptive_queries = %d, want 1", stats.AdaptiveQueries)
	}
	if want := uint64(4096 - out.Worlds); stats.WorldsSaved != want {
		t.Fatalf("worlds_saved = %d, want budget-consumed = %d", stats.WorldsSaved, want)
	}
}
