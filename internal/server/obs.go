package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"ucgraph/internal/obs"
)

// Observability surface of the daemon: every estimating request on the
// explain endpoints (/v1/conn, /v1/cluster) runs under an obs.Trace whose
// spans cover admission, the estimate itself (with world-store tier
// attribution), and — through the context — the coordinator's scatter
// rounds, per-worker attempts and adaptive rounds. Finished traces feed
// the per-stage latency histograms, the /debug/traces ring, and (past
// Options.SlowQuery) a one-line JSON slog record. /metricsz renders the
// same counters /statsz reports, plus the latency histograms, in
// Prometheus text format. The standing invariant of internal/obs holds
// here too: observation never alters estimation — traced and untraced
// requests compute bit-identical answers.

// serverMetrics owns the accumulating metric state (histograms); the
// scrape-time gauges and counters are read straight from the same
// atomics /statsz reports, so the two endpoints can never disagree.
type serverMetrics struct {
	reg *obs.Registry
	// request observes total request latency per endpoint pattern.
	request *obs.HistogramVec
	// stage observes per-stage latency from finished traces' spans
	// (admission, estimate, scatter, scatter_round, worker, merge,
	// adaptive_round, audit, ...).
	stage *obs.HistogramVec
	// workerRTT observes per-shard-worker round-trip times, fed by the
	// coordinators' OnWorkerRTT hook.
	workerRTT *obs.HistogramVec
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg: reg,
		request: reg.Histogram("ucgraph_request_seconds",
			"HTTP request latency by endpoint.", obs.DefSecondsBuckets, "endpoint"),
		stage: reg.Histogram("ucgraph_stage_seconds",
			"Per-stage latency from finished query traces.", obs.DefSecondsBuckets, "stage"),
		workerRTT: reg.Histogram("ucgraph_shard_rtt_seconds",
			"Shard-worker tally round-trip time.", obs.DefSecondsBuckets, "worker"),
	}
}

// endpointLabel normalizes a request path to a bounded label set so the
// request histogram's cardinality cannot be driven by clients.
func endpointLabel(path string) string {
	switch {
	case strings.HasPrefix(path, "/v1/jobs/"):
		return "/v1/jobs"
	case strings.HasPrefix(path, "/debug/traces"):
		return "/debug/traces"
	}
	switch path {
	case "/healthz", "/statsz", "/metricsz", "/v1/graphs", "/v1/conn",
		"/v1/cluster", "/v1/knn", "/v1/influence", "/v1/reliability",
		"/v1/shards":
		return path
	}
	return "other"
}

// startTrace opens a trace for one estimating request and returns a
// context carrying its root span; estimation calls made with that
// context attach their spans (scatter rounds, worker attempts, adaptive
// rounds) automatically.
func (s *Server) startTrace(ctx context.Context, name, graphName string) (context.Context, *obs.Trace) {
	tr := obs.NewTrace(name)
	tr.Root().Set("graph", graphName)
	return obs.ContextWithSpan(ctx, tr.Root()), tr
}

// finishTrace closes a trace and publishes it: per-stage histogram
// observations, the /debug/traces ring, and the slow-query log when the
// total latency crosses Options.SlowQuery. Safe to call exactly once
// per trace (deferred from each traced handler); nil-safe.
func (s *Server) finishTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.Finish()
	for _, sd := range tr.SpanDurations() {
		s.metrics.stage.Observe(sd.D.Seconds(), sd.Name)
	}
	s.traces.Add(tr)
	if s.opts.SlowQuery > 0 && tr.Duration() >= s.opts.SlowQuery {
		s.slowLog.Warn("slow query",
			slog.String("trace_id", tr.ID),
			slog.String("name", tr.Name),
			slog.Float64("duration_ms", float64(tr.Duration())/float64(time.Millisecond)),
			slog.Any("trace", tr.View()),
		)
	}
}

// admitTraced is h.admit with an "admission" span around the queue wait,
// so gate contention is visible in a trace instead of blending into
// total latency. A no-op span on untraced requests.
func (h *graphHandle) admitTraced(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, "admission")
	err := h.admit(ctx)
	if err != nil {
		sp.Set("error", err.Error())
	}
	sp.End()
	return err
}

// estimateSpan opens the "estimate" span covering one estimation call
// and snapshots the graph's store counters; the returned finish closure
// attributes the store tier traffic the call generated (RAM hits, disk
// hits, recomputes, materializations — approximate when concurrent
// requests share the store, see worldstore.TierDelta) and ends the
// span. On untraced requests both halves are no-ops.
func (h *graphHandle) estimateSpan(ctx context.Context) (context.Context, func(err error)) {
	ectx, sp := obs.StartSpan(ctx, "estimate")
	if sp == nil {
		return ectx, func(error) {}
	}
	pre := h.store.Stats()
	return ectx, func(err error) {
		d := h.store.Stats().TierDelta(pre)
		sp.Set("store_ram_hits", int64(d.Hits))
		sp.Set("store_disk_hits", int64(d.DiskHits))
		sp.Set("store_recomputes", int64(d.Recomputes))
		sp.Set("store_materializations", int64(d.Materializations))
		if err != nil {
			sp.Set("error", err.Error())
		}
		sp.End()
	}
}

// explainView finishes the trace and returns its view for inline
// embedding in a response ("explain": true). The deferred finishTrace
// still publishes the (already finished, Finish is idempotent) trace.
func explainView(tr *obs.Trace) obs.TraceView {
	tr.Finish()
	return tr.View()
}

// ---- /metricsz ----------------------------------------------------------

// handleMetricsz serves the Prometheus text exposition: build info, the
// daemon counters and per-graph store/fabric/worker counters mirrored
// from the same atomics /statsz reads, and the latency histograms. The
// output is validated against the strict parser in internal/obs by the
// server tests, so a scrape always parses.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pw := obs.NewWriter(w)

	b := obs.BuildInfo()
	pw.Family("ucgraph_build_info", "Build metadata; value is always 1.", "gauge")
	pw.Sample("ucgraph_build_info", []obs.Label{
		{Name: "version", Value: b.Version},
		{Name: "commit", Value: b.Commit},
		{Name: "go_version", Value: b.GoVersion},
	}, 1)

	pw.Family("ucgraph_uptime_seconds", "Seconds since the daemon started.", "gauge")
	pw.Sample("ucgraph_uptime_seconds", nil, time.Since(s.start).Seconds())
	pw.Family("ucgraph_inflight_requests", "Requests currently being served.", "gauge")
	pw.Sample("ucgraph_inflight_requests", nil, float64(s.inflight.Load()))
	pw.Family("ucgraph_draining", "1 while the daemon is draining for shutdown.", "gauge")
	pw.Sample("ucgraph_draining", nil, b2f(s.draining.Load()))
	pw.Family("ucgraph_requests_total", "HTTP requests served.", "counter")
	pw.Sample("ucgraph_requests_total", nil, float64(s.requests.Load()))
	pw.Family("ucgraph_failures_total", "Requests answered with an error.", "counter")
	pw.Sample("ucgraph_failures_total", nil, float64(s.failures.Load()))
	pw.Family("ucgraph_adaptive_queries_total", "Completed confidence-target queries.", "counter")
	pw.Sample("ucgraph_adaptive_queries_total", nil, float64(s.adaptiveQueries.Load()))
	pw.Family("ucgraph_worlds_saved_total", "Worlds saved by adaptive early stopping.", "counter")
	pw.Sample("ucgraph_worlds_saved_total", nil, float64(s.worldsSaved.Load()))

	pw.Family("ucgraph_jobs", "Async clustering jobs by state.", "gauge")
	for _, state := range [...]string{"running", "done", "error", "cancelled"} {
		pw.Sample("ucgraph_jobs", []obs.Label{{Name: "state", Value: state}}, float64(s.jobs.counts()[state]))
	}

	s.writeStoreMetrics(pw)
	s.writeFabricMetrics(pw)
	s.metrics.reg.WriteTo(pw)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// storeMetricCols maps one storeStats snapshot onto Prometheus families.
// Counters and gauges are split so # TYPE stays truthful.
var storeMetricCols = []struct {
	name, help, typ string
	val             func(storeStats) float64
}{
	{"ucgraph_store_worlds", "Worlds materialized in the store so far.", "gauge", func(st storeStats) float64 { return float64(st.Worlds) }},
	{"ucgraph_store_resident_blocks", "World blocks resident in RAM.", "gauge", func(st storeStats) float64 { return float64(st.ResidentBlocks) }},
	{"ucgraph_store_resident_bytes", "Bytes of resident world data.", "gauge", func(st storeStats) float64 { return float64(st.ResidentBytes) }},
	{"ucgraph_store_hits_total", "Block requests answered from RAM.", "counter", func(st storeStats) float64 { return float64(st.Hits) }},
	{"ucgraph_store_materializations_total", "Blocks sampled for the first time.", "counter", func(st storeStats) float64 { return float64(st.Materializations) }},
	{"ucgraph_store_recomputes_total", "Blocks recomputed after eviction.", "counter", func(st storeStats) float64 { return float64(st.Recomputes) }},
	{"ucgraph_store_evictions_total", "Blocks evicted under the memory budget.", "counter", func(st storeStats) float64 { return float64(st.Evictions) }},
	{"ucgraph_store_disk_hits_total", "Blocks served from the disk tier.", "counter", func(st storeStats) float64 { return float64(st.DiskHits) }},
	{"ucgraph_store_spill_writes_total", "Blocks spilled to the disk tier.", "counter", func(st storeStats) float64 { return float64(st.SpillWrites) }},
	{"ucgraph_store_corrupt_dropped_total", "Disk-tier blocks dropped on checksum mismatch.", "counter", func(st storeStats) float64 { return float64(st.CorruptDropped) }},
}

func (s *Server) writeStoreMetrics(pw *obs.Writer) {
	for _, col := range storeMetricCols {
		pw.Family(col.name, col.help, col.typ)
		for _, name := range s.names {
			st := s.graphs[name].storeStats()
			pw.Sample(col.name, []obs.Label{{Name: "graph", Value: name}}, col.val(st))
		}
	}
}

// fabricMetricCols maps the coordinator-wide fabric counters of every
// sharded graph onto Prometheus counter families.
var fabricMetricCols = []struct {
	name, help string
	val        func(fabricStats) float64
}{
	{"ucgraph_fabric_hedges_total", "Hedged scatter requests armed.", func(fs fabricStats) float64 { return float64(fs.Hedges) }},
	{"ucgraph_fabric_duplicates_total", "Suppressed duplicate tally responses.", func(fs fabricStats) float64 { return float64(fs.Duplicates) }},
	{"ucgraph_fabric_rescatters_total", "Scatter blocks re-striped through retry rounds.", func(fs fabricStats) float64 { return float64(fs.Rescatters) }},
	{"ucgraph_fabric_breaker_trips_total", "Worker circuit breakers tripped.", func(fs fabricStats) float64 { return float64(fs.BreakerTrips) }},
	{"ucgraph_fabric_quarantines_total", "Workers quarantined after audit divergence.", func(fs fabricStats) float64 { return float64(fs.Quarantines) }},
	{"ucgraph_fabric_integrity_rejects_total", "Frames rejected by wire integrity checks.", func(fs fabricStats) float64 { return float64(fs.IntegrityRejects) }},
	{"ucgraph_fabric_audits_total", "Scatter groups re-executed for audit.", func(fs fabricStats) float64 { return float64(fs.Audits) }},
	{"ucgraph_fabric_audit_divergences_total", "Audits that observed divergent tallies.", func(fs fabricStats) float64 { return float64(fs.AuditDivergences) }},
}

func (s *Server) writeFabricMetrics(pw *obs.Writer) {
	sharded := false
	for _, name := range s.names {
		if s.graphs[name].coord.Sharded() {
			sharded = true
			break
		}
	}
	if !sharded {
		return
	}
	for _, col := range fabricMetricCols {
		pw.Family(col.name, col.help, "counter")
		for _, name := range s.names {
			h := s.graphs[name]
			if !h.coord.Sharded() {
				continue
			}
			pw.Sample(col.name, []obs.Label{{Name: "graph", Value: name}}, col.val(h.fabricStats()))
		}
	}
	for _, col := range []struct {
		name, help, typ string
		val             func(shardStats) float64
	}{
		{"ucgraph_shard_worker_up", "1 while the worker is marked up.", "gauge", func(ws shardStats) float64 { return b2f(ws.State == "up") }},
		{"ucgraph_shard_worker_requests_total", "Tally requests sent to the worker.", "counter", func(ws shardStats) float64 { return float64(ws.Requests) }},
		{"ucgraph_shard_worker_failures_total", "Tally requests the worker failed.", "counter", func(ws shardStats) float64 { return float64(ws.Failures) }},
		{"ucgraph_shard_worker_worlds_served_total", "Worlds tallied by the worker.", "counter", func(ws shardStats) float64 { return float64(ws.WorldsServed) }},
	} {
		pw.Family(col.name, col.help, col.typ)
		for _, name := range s.names {
			h := s.graphs[name]
			if !h.coord.Sharded() {
				continue
			}
			for _, ws := range h.shardStats() {
				pw.Sample(col.name, []obs.Label{
					{Name: "graph", Value: name},
					{Name: "worker", Value: ws.Addr},
				}, col.val(ws))
			}
		}
	}
}

// ---- /debug/traces ------------------------------------------------------

// handleTraces lists the recent finished traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]any{"traces": s.traces.Snapshot()})
}

// handleTraceGet returns one recent trace by ID.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.traces.Get(id)
	if !ok {
		s.writeError(w, &apiError{http.StatusNotFound, fmt.Sprintf("trace %q not in the recent-trace ring", id)})
		return
	}
	s.writeJSON(w, v)
}
