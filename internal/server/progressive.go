package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"ucgraph/internal/conn"
	"ucgraph/internal/core"
	"ucgraph/internal/obs"
)

// Progressive mode: /v1/conn and /v1/cluster requests that carry a
// confidence target ("eps"/"delta") run adaptively — worlds are consumed
// in block-aligned doubling rounds and the request stops as soon as the
// empirical-Bernstein/Hoeffding interval closes to eps (see
// conn.AdaptiveFromCenters; on a sharded daemon each round's extension
// scatters only the not-yet-consumed world range). With "stream": true the
// response is Server-Sent Events: one `data:` frame per refinement round,
// coarse to converged, each carrying the current estimate, half-width and
// worlds consumed; the last frame has "final": true. Without streaming the
// response is plain JSON for the final round only.

// adaptiveSpec is a request's parsed confidence target.
type adaptiveSpec struct {
	params conn.AdaptiveParams
	stream bool
}

// defaultEpsDelta is applied when "stream": true is requested without an
// explicit target: streaming is inherently adaptive, so it needs one.
const defaultEpsDelta = 0.05

// adaptiveSpec parses eps/delta/stream from a request. A request with
// neither eps, delta nor stream returns nil — the fixed-budget path.
// delta defaults to eps's companion value when only eps is given; eps is
// required whenever delta is. The request's sample budget becomes the
// adaptive world cap: adaptive mode never consumes more than the fixed
// path would, it only stops earlier.
func parseAdaptive(eps, delta float64, stream bool, budget int) (*adaptiveSpec, *apiError) {
	if eps == 0 && delta == 0 && !stream {
		return nil, nil
	}
	if eps == 0 && delta != 0 {
		return nil, badRequest("\"delta\" without \"eps\": a confidence target needs both (or just \"eps\")")
	}
	if eps == 0 {
		eps = defaultEpsDelta
	}
	if delta == 0 {
		delta = defaultEpsDelta
	}
	p := conn.AdaptiveParams{Eps: eps, Delta: delta, MaxWorlds: budget}
	if err := p.Validate(); err != nil {
		return nil, badRequest(err.Error())
	}
	return &adaptiveSpec{params: p, stream: stream}, nil
}

// noteAdaptive records a finished confidence-target run in the /statsz
// counters.
func (s *Server) noteAdaptive(st conn.AdaptiveStats) {
	s.adaptiveQueries.Add(1)
	if st.Budget > st.Worlds {
		s.worldsSaved.Add(uint64(st.Budget - st.Worlds))
	}
}

// sse wraps a streaming Server-Sent-Events response.
type sse struct {
	w  http.ResponseWriter
	fl http.Flusher
}

// startSSE switches the response to text/event-stream. It fails with 501
// only when the ResponseWriter cannot flush (no streaming transport).
func startSSE(w http.ResponseWriter) (*sse, *apiError) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil, &apiError{http.StatusNotImplemented, "streaming unsupported by this transport"}
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell reverse proxies not to buffer
	w.WriteHeader(http.StatusOK)
	return &sse{w: w, fl: fl}, nil
}

// frame writes one data frame and flushes it to the client.
func (e *sse) frame(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(e.w, "data: %s\n\n", data); err != nil {
		return err
	}
	e.fl.Flush()
	return nil
}

// errorFrame reports a mid-stream failure. The HTTP status is already
// written, so errors travel as a terminal event instead.
func (e *sse) errorFrame(ae *apiError) {
	data, _ := json.Marshal(map[string]any{"error": ae.msg, "code": ae.code})
	fmt.Fprintf(e.w, "event: error\ndata: %s\n\n", data)
	e.fl.Flush()
}

// project maps full estimate vectors onto the requested targets (no-op for
// an empty target list).
func project(ests [][]float64, targets []int32) [][]float64 {
	if len(targets) == 0 {
		return ests
	}
	out := make([][]float64, len(ests))
	for i, est := range ests {
		proj := make([]float64, len(targets))
		for j, t := range targets {
			proj[j] = est[t]
		}
		out[i] = proj
	}
	return out
}

// adaptiveConnCenters answers a multi-center /v1/conn request carrying a
// confidence target, streaming refinement frames when asked to.
func (s *Server) adaptiveConnCenters(ctx context.Context, w http.ResponseWriter, h *graphHandle, req connRequest, depth int, ad *adaptiveSpec) {
	base := map[string]any{
		"graph":   h.name,
		"depth":   req.Depth,
		"centers": req.Centers,
		"targets": req.Targets,
		"eps":     ad.params.Eps,
		"delta":   ad.params.Delta,
		"budget":  ad.params.MaxWorlds,
	}
	frame := func(snap conn.AdaptiveSnapshot) map[string]any {
		f := make(map[string]any, len(base)+5)
		for k, v := range base {
			f[k] = v
		}
		f["estimates"] = project(snap.Estimates, req.Targets)
		f["half_width"] = snap.HalfWidth
		f["worlds"] = snap.Worlds
		f["converged"] = snap.Converged
		f["final"] = snap.Final
		return f
	}
	tr := obs.SpanFromContext(ctx).Trace()
	if !ad.stream {
		ectx, fin := h.estimateSpan(ctx)
		ests, st, err := conn.AdaptiveFromCenters(ectx, h.coord, req.Centers, depth, req.Targets, ad.params, nil)
		fin(err)
		if err != nil {
			s.writeError(w, estimationError(err))
			return
		}
		s.noteAdaptive(st)
		f := frame(conn.AdaptiveSnapshot{
			Estimates: ests, HalfWidth: st.HalfWidth, Worlds: st.Worlds,
			Converged: st.Converged, Final: true,
		})
		if req.Explain {
			f["trace"] = explainView(tr)
		}
		s.writeJSON(w, f)
		return
	}
	stream, e := startSSE(w)
	if e != nil {
		s.writeError(w, e)
		return
	}
	ectx, fin := h.estimateSpan(ctx)
	_, st, err := conn.AdaptiveFromCenters(ectx, h.coord, req.Centers, depth, req.Targets, ad.params,
		func(snap conn.AdaptiveSnapshot) error { return stream.frame(frame(snap)) })
	fin(err)
	if err != nil {
		s.failures.Add(1)
		stream.errorFrame(estimationError(err))
		return
	}
	s.noteAdaptive(st)
	// With "explain": true one trailing frame carries the finished trace
	// after the final estimate frame.
	if req.Explain {
		_ = stream.frame(map[string]any{"explain": true, "trace": explainView(tr)})
	}
}

// adaptiveConnPair answers a pair /v1/conn request carrying a confidence
// target. The pair routes through the center-tally path (center = source,
// tracked target = target), so repeated adaptive pair queries extend the
// daemon's cached tallies instead of rescanning.
func (s *Server) adaptiveConnPair(ctx context.Context, w http.ResponseWriter, h *graphHandle, req connRequest, depth int, ad *adaptiveSpec) {
	base := map[string]any{
		"graph":  h.name,
		"depth":  req.Depth,
		"source": *req.Source,
		"target": *req.Target,
		"eps":    ad.params.Eps,
		"delta":  ad.params.Delta,
		"budget": ad.params.MaxWorlds,
	}
	frame := func(p float64, hw float64, worlds int, converged, final bool) map[string]any {
		f := make(map[string]any, len(base)+5)
		for k, v := range base {
			f[k] = v
		}
		f["probability"] = p
		f["half_width"] = hw
		f["worlds"] = worlds
		f["converged"] = converged
		f["final"] = final
		return f
	}
	var progress func(conn.AdaptiveSnapshot) error
	var stream *sse
	if ad.stream {
		var e *apiError
		if stream, e = startSSE(w); e != nil {
			s.writeError(w, e)
			return
		}
		progress = func(snap conn.AdaptiveSnapshot) error {
			return stream.frame(frame(snap.Estimates[0][*req.Target], snap.HalfWidth, snap.Worlds, snap.Converged, snap.Final))
		}
	}
	tr := obs.SpanFromContext(ctx).Trace()
	ectx, fin := h.estimateSpan(ctx)
	p, st, err := conn.AdaptivePairInterval(ectx, h.coord, *req.Source, *req.Target, depth, ad.params, progress)
	fin(err)
	if err != nil {
		if stream != nil {
			s.failures.Add(1)
			stream.errorFrame(estimationError(err))
		} else {
			s.writeError(w, estimationError(err))
		}
		return
	}
	s.noteAdaptive(st)
	if stream == nil {
		f := frame(p, st.HalfWidth, st.Worlds, st.Converged, true)
		if req.Explain {
			f["trace"] = explainView(tr)
		}
		s.writeJSON(w, f)
		return
	}
	if req.Explain {
		_ = stream.frame(map[string]any{"explain": true, "trace": explainView(tr)})
	}
}

// streamCluster runs one clustering request with progress streaming: one
// SSE frame per selected center (from the core.Progress hook), then a
// final frame embedding the regular cluster response.
func (s *Server) streamCluster(ctx context.Context, w http.ResponseWriter, h *graphHandle, req clusterRequest) {
	stream, e := startSSE(w)
	if e != nil {
		s.writeError(w, e)
		return
	}
	events := make(chan core.ProgressEvent, 64)
	type outcome struct {
		res *clusterResponse
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.runCluster(ctx, h, req, func(ev core.ProgressEvent) {
			// Drop frames rather than stall the driver if the writer
			// falls behind: progress frames are advisory, the final
			// frame is the answer.
			select {
			case events <- ev:
			default:
			}
		})
		close(events)
		done <- outcome{res, err}
	}()
	for ev := range events {
		if err := stream.frame(map[string]any{
			"graph": h.name, "algo": req.Algo,
			"centers": ev.Centers, "k": ev.K,
			"covered": ev.Covered, "nodes": ev.Nodes,
			"oracle_calls": ev.OracleCalls,
			"score_worlds": ev.ScoreWorlds,
			"final":        false,
		}); err != nil {
			// Client went away; the estimator aborts through ctx when the
			// connection drops, so just stop writing.
			break
		}
	}
	o := <-done
	if o.err != nil {
		s.failures.Add(1)
		stream.errorFrame(estimationError(o.err))
		return
	}
	final := map[string]any{"final": true, "result": o.res}
	if req.Explain {
		final["trace"] = explainView(obs.SpanFromContext(ctx).Trace())
	}
	_ = stream.frame(final)
}
