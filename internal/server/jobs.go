package server

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Job states. A job moves running -> done | error exactly once; cancelling
// a running job lands it in error with a cancellation message.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobError   = "error"
)

// jobView is the JSON snapshot of an async clustering job.
type jobView struct {
	ID         string           `json:"id"`
	Graph      string           `json:"graph"`
	Algo       string           `json:"algo"`
	Status     string           `json:"status"`
	CreatedAt  time.Time        `json:"created_at"`
	FinishedAt *time.Time       `json:"finished_at,omitempty"`
	Error      string           `json:"error,omitempty"`
	Result     *clusterResponse `json:"result,omitempty"`
}

// job is one async clustering run.
type job struct {
	id     string
	graph  string
	algo   string
	cancel context.CancelFunc

	mu       sync.Mutex
	status   string
	created  time.Time
	finished time.Time
	err      string
	result   *clusterResponse
}

// view snapshots the job for JSON encoding.
func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:        j.id,
		Graph:     j.graph,
		Algo:      j.algo,
		Status:    j.status,
		CreatedAt: j.created,
		Error:     j.err,
		Result:    j.result,
	}
	if !j.finished.IsZero() {
		f := j.finished
		v.FinishedAt = &f
	}
	return v
}

// finish records the outcome (first writer wins; a cancellation racing a
// natural completion keeps whichever landed first).
func (j *job) finish(res *clusterResponse, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobRunning {
		return
	}
	j.finished = time.Now()
	if err != nil {
		j.status = JobError
		j.err = err.Error()
		return
	}
	j.status = JobDone
	j.result = res
}

// maxFinishedJobs bounds how many finished jobs the table retains: a done
// clustering result holds O(n) assignment and probability slices, so an
// unbounded table would grow with async traffic for the daemon's whole
// lifetime. The oldest finished jobs are dropped first; running jobs are
// never dropped. 64 finished results is ample polling headroom — clients
// are expected to fetch a result shortly after completion.
const maxFinishedJobs = 64

// jobTable owns every async job of a server.
type jobTable struct {
	mu       sync.Mutex
	seq      int
	jobs     map[string]*job
	finished []string // finished job IDs, oldest first
}

func newJobTable() *jobTable {
	return &jobTable{jobs: make(map[string]*job)}
}

// noteFinished records that a job left the running state and evicts the
// oldest finished jobs beyond the retention cap.
func (t *jobTable) noteFinished(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished = append(t.finished, id)
	for len(t.finished) > maxFinishedJobs {
		delete(t.jobs, t.finished[0])
		t.finished = t.finished[1:]
	}
}

// create registers a new running job.
func (t *jobTable) create(graphName, algo string, cancel context.CancelFunc) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	j := &job{
		id:      fmt.Sprintf("job-%d", t.seq),
		graph:   graphName,
		algo:    algo,
		cancel:  cancel,
		status:  JobRunning,
		created: time.Now(),
	}
	t.jobs[j.id] = j
	return j
}

// get looks a job up by ID.
func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// counts reports how many jobs are in each state (for /statsz).
func (t *jobTable) counts() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[string]int{}
	for _, j := range t.jobs {
		j.mu.Lock()
		out[j.status]++
		j.mu.Unlock()
	}
	return out
}
