package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"ucgraph/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// traceOf decodes the "trace" field of a JSON response body.
func traceOf(t testing.TB, raw string) obs.TraceView {
	t.Helper()
	var resp struct {
		Trace *obs.TraceView `json:"trace"`
	}
	mustUnmarshal(t, raw, &resp)
	if resp.Trace == nil {
		t.Fatalf("no trace in explain response: %s", raw)
	}
	return *resp.Trace
}

// spanNames returns the distinct span names of a trace view.
func spanNames(v obs.TraceView) map[string]int {
	out := map[string]int{}
	for _, sp := range v.Spans {
		out[sp.Name]++
	}
	return out
}

// TestExplainConnTrace: "explain": true returns the finished trace
// inline — admission and estimate spans with store-tier attribution —
// and the estimates are byte-identical to the same query without
// explain (observation never alters estimation).
func TestExplainConnTrace(t *testing.T) {
	g := testGraph(t, 64, 1)
	_, ts := newTestServer(t, g, Options{})

	req := map[string]any{"graph": "ring", "centers": []int32{1, 9}, "samples": 400}
	code, plain := post(t, ts.URL+"/v1/conn", req, nil)
	if code != 200 {
		t.Fatalf("plain conn: %d: %s", code, plain)
	}
	req["explain"] = true
	code, raw := post(t, ts.URL+"/v1/conn", req, nil)
	if code != 200 {
		t.Fatalf("explain conn: %d: %s", code, raw)
	}
	tr := traceOf(t, raw)
	names := spanNames(tr)
	for _, want := range []string{"/v1/conn", "admission", "estimate"} {
		if names[want] == 0 {
			t.Fatalf("trace missing %q span: %v", want, names)
		}
	}
	var est obs.SpanView
	for _, sp := range tr.Spans {
		if sp.Name == "estimate" {
			est = sp
		}
	}
	for _, key := range []string{"store_ram_hits", "store_disk_hits", "store_recomputes", "store_materializations"} {
		if _, ok := est.Attrs[key]; !ok {
			t.Fatalf("estimate span missing %q: %+v", key, est.Attrs)
		}
	}

	// Strip the trace and the two answers must match exactly.
	var a, b map[string]any
	mustUnmarshal(t, plain, &a)
	mustUnmarshal(t, raw, &b)
	delete(b, "trace")
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("explain changed the answer:\n%s\nvs\n%s", ja, jb)
	}
}

// TestExplainShardedConnTrace is the acceptance path: against a sharded
// daemon, an explained /v1/conn returns a trace with at least one span
// per scatter round and per-worker child spans carrying the worker-side
// cache/tier attribution fetched over the v2 wire.
func TestExplainShardedConnTrace(t *testing.T) {
	g := testGraph(t, 72, 5)
	s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 7}}, Options{
		Shards: startShardWorkers(t, g, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	code, raw := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "centers": []int32{1, 33}, "samples": 600, "explain": true,
	}, nil)
	if code != 200 {
		t.Fatalf("sharded explain conn: %d: %s", code, raw)
	}
	tr := traceOf(t, raw)
	names := spanNames(tr)
	if names["scatter_round"] == 0 {
		t.Fatalf("sharded trace has no scatter_round span: %v", names)
	}
	workers, scanned := 0, 0.0
	for _, sp := range tr.Spans {
		if sp.Name != "worker" {
			continue
		}
		workers++
		if sp.Attrs["outcome"] != "won" {
			continue
		}
		n, ok := sp.Attrs["worker_worlds_scanned"].(float64)
		if !ok || n <= 0 {
			t.Fatalf("worker span missing wire-carried worlds-scanned: %+v", sp.Attrs)
		}
		scanned += n
		for _, key := range []string{"worker_cache_hits", "worker_cache_miss", "store_ram_hits"} {
			if _, ok := sp.Attrs[key]; !ok {
				t.Fatalf("worker span missing wire-carried %q: %+v", key, sp.Attrs)
			}
		}
	}
	if workers == 0 {
		t.Fatal("sharded trace has no per-worker child spans")
	}
	if scanned != 600 {
		t.Fatalf("worker spans account for %v scanned worlds, want 600", scanned)
	}
}

// TestExplainAdaptiveTraceAndStream: adaptive explained queries carry
// adaptive_round spans; in streaming mode the trace arrives as one
// trailing SSE frame after the final estimate frame.
func TestExplainAdaptiveTraceAndStream(t *testing.T) {
	g := testGraph(t, 48, 3)
	_, ts := newTestServer(t, g, Options{})

	code, raw := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 24,
		"eps": 0.2, "delta": 0.1, "samples": 4096, "explain": true,
	}, nil)
	if code != 200 {
		t.Fatalf("adaptive explain: %d: %s", code, raw)
	}
	if names := spanNames(traceOf(t, raw)); names["adaptive_round"] == 0 {
		t.Fatalf("adaptive trace has no adaptive_round span: %v", names)
	}

	body, _ := json.Marshal(map[string]any{
		"graph": "ring", "source": 0, "target": 24,
		"eps": 0.2, "delta": 0.1, "samples": 4096,
		"stream": true, "explain": true,
	})
	resp, err := http.Post(ts.URL+"/v1/conn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var frames []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			var f map[string]any
			mustUnmarshal(t, data, &f)
			frames = append(frames, f)
		}
	}
	if len(frames) < 2 {
		t.Fatalf("stream produced %d frames, want estimate frames plus a trace frame", len(frames))
	}
	last, prev := frames[len(frames)-1], frames[len(frames)-2]
	if last["trace"] == nil || last["explain"] != true {
		t.Fatalf("last frame is not the trace frame: %v", last)
	}
	if prev["final"] != true {
		t.Fatalf("frame before the trace frame is not final: %v", prev)
	}
}

// TestExplainClusterTrace: sync cluster explain returns the trace on the
// response; explain with async is rejected up front.
func TestExplainClusterTrace(t *testing.T) {
	g := testGraph(t, 48, 3)
	_, ts := newTestServer(t, g, Options{})

	var res clusterResponse
	code, raw := post(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "mcp", "k": 3, "seed": 11, "explain": true,
	}, &res)
	if code != 200 {
		t.Fatalf("cluster explain: %d: %s", code, raw)
	}
	if res.Trace == nil {
		t.Fatal("cluster explain response carries no trace")
	}
	names := spanNames(*res.Trace)
	for _, want := range []string{"/v1/cluster", "admission", "estimate"} {
		if names[want] == 0 {
			t.Fatalf("cluster trace missing %q span: %v", want, names)
		}
	}
	if code, _ := post(t, ts.URL+"/v1/cluster", map[string]any{
		"graph": "ring", "algo": "mcp", "k": 3, "async": true, "explain": true,
	}, nil); code != 400 {
		t.Fatalf("explain+async: code %d, want 400", code)
	}
}

// TestMetricszPrometheusParses scrapes a sharded daemon after real
// traffic and validates the exposition against the strict parser —
// counters, gauges, per-graph families, and the latency histograms.
func TestMetricszPrometheusParses(t *testing.T) {
	g := testGraph(t, 72, 5)
	s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 7}}, Options{
		Shards: startShardWorkers(t, g, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	if code, raw := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "centers": []int32{1}, "samples": 400, "explain": true,
	}, nil); code != 200 {
		t.Fatalf("traffic: %d: %s", code, raw)
	}
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := obs.LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("/metricsz is not valid Prometheus text: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"ucgraph_build_info{",
		"ucgraph_requests_total ",
		"ucgraph_store_worlds{graph=\"ring\"}",
		"ucgraph_fabric_hedges_total{graph=\"ring\"}",
		"ucgraph_shard_worker_up{graph=\"ring\",worker=",
		"ucgraph_request_seconds_bucket{endpoint=\"/v1/conn\",le=",
		"ucgraph_stage_seconds_bucket{stage=\"scatter_round\",le=",
		"ucgraph_shard_rtt_seconds_bucket{worker=",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("/metricsz missing %q:\n%s", want, buf.String())
		}
	}
}

// TestDebugTracesRing: finished traces land in the bounded ring, are
// retrievable by ID, and unknown IDs 404.
func TestDebugTracesRing(t *testing.T) {
	g := testGraph(t, 48, 3)
	_, ts := newTestServer(t, g, Options{TraceRing: 4})

	code, raw := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 20, "samples": 300, "explain": true,
	}, nil)
	if code != 200 {
		t.Fatalf("conn: %d: %s", code, raw)
	}
	id := traceOf(t, raw).TraceID

	var ring struct {
		Traces []obs.TraceView `json:"traces"`
	}
	if code := get(t, ts.URL+"/debug/traces", &ring); code != 200 {
		t.Fatal("/debug/traces failed")
	}
	if len(ring.Traces) == 0 || ring.Traces[0].TraceID != id {
		t.Fatalf("ring does not lead with the last trace %s: %+v", id, ring.Traces)
	}
	var one obs.TraceView
	if code := get(t, ts.URL+"/debug/traces/"+id, &one); code != 200 || one.TraceID != id {
		t.Fatalf("fetch by ID: code %d, trace %q", code, one.TraceID)
	}
	if code := get(t, ts.URL+"/debug/traces/ffffffffffffffff", nil); code != 404 {
		t.Fatalf("unknown trace ID: code %d, want 404", code)
	}
}

// TestSlowQueryLogging: a query slower than Options.SlowQuery emits one
// slog record carrying the trace.
func TestSlowQueryLogging(t *testing.T) {
	g := testGraph(t, 48, 3)
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, g, Options{SlowQuery: time.Nanosecond, SlowLog: logger})

	code, raw := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "source": 0, "target": 20, "samples": 300, "explain": true,
	}, nil)
	if code != 200 {
		t.Fatalf("conn: %d: %s", code, raw)
	}
	id := traceOf(t, raw).TraceID
	line := buf.String()
	if !strings.Contains(line, "slow query") || !strings.Contains(line, id) {
		t.Fatalf("slow-query log missing the trace: %q", line)
	}
	var rec map[string]any
	mustUnmarshal(t, strings.SplitN(line, "\n", 2)[0], &rec)
	if rec["trace_id"] != id {
		t.Fatalf("slow-query record trace_id = %v, want %s", rec["trace_id"], id)
	}
}

// ---- /statsz field audit ------------------------------------------------

var snakeRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// statszPaths walks a decoded /statsz body and records every object key
// path, normalizing the dynamic map levels (graph names) so the set is
// stable across deployments. Array elements share their parent's path.
func statszPaths(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix == "graphs" {
				p = "<graph>"
			}
			if prefix != "" {
				p = prefix + "." + p
			}
			out[p] = true
			// Job states are transient counts, not schema.
			if prefix == "" && k == "jobs" {
				continue
			}
			statszPaths(p, child, out)
		}
	case []any:
		for _, child := range x {
			statszPaths(prefix+"[]", child, out)
		}
	}
}

// TestStatszKeysGoldenAndDocumented pins the /statsz schema: every key
// is snake_case, the full key set matches the golden file (so adding or
// renaming a field is a conscious, reviewed act), and every leaf key is
// documented in the docs/OPERATIONS.md field table. Run with
// -update-golden after an intentional change.
func TestStatszKeysGoldenAndDocumented(t *testing.T) {
	g := testGraph(t, 72, 5)
	s, err := New([]GraphConfig{{Name: "ring", Graph: g, Seed: 7}}, Options{
		Shards: startShardWorkers(t, g, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	// Drive one query so conditional fields (shard health, last_ok) are
	// populated before the snapshot.
	if code, raw := post(t, ts.URL+"/v1/conn", map[string]any{
		"graph": "ring", "centers": []int32{1}, "samples": 300,
	}, nil); code != 200 {
		t.Fatalf("traffic: %d: %s", code, raw)
	}

	var statsz map[string]any
	if code := get(t, ts.URL+"/statsz", &statsz); code != 200 {
		t.Fatal("statsz failed")
	}
	set := map[string]bool{}
	statszPaths("", statsz, set)
	paths := make([]string, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	for _, p := range paths {
		leaf := p[strings.LastIndex(p, ".")+1:]
		leaf = strings.TrimSuffix(leaf, "[]")
		if leaf == "<graph>" {
			continue
		}
		if !snakeRE.MatchString(leaf) {
			t.Errorf("/statsz key %q (in %s) is not snake_case", leaf, p)
		}
	}

	golden := filepath.Join("testdata", "statsz_keys.golden")
	want := strings.Join(paths, "\n") + "\n"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	have, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if string(have) != want {
		t.Fatalf("/statsz key set changed — update docs/OPERATIONS.md and rerun with -update-golden.\ngolden:\n%s\ngot:\n%s", have, want)
	}

	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatalf("reading OPERATIONS.md: %v", err)
	}
	for _, p := range paths {
		leaf := strings.TrimSuffix(p[strings.LastIndex(p, ".")+1:], "[]")
		if leaf == "<graph>" {
			continue
		}
		if !bytes.Contains(doc, []byte("`"+leaf+"`")) {
			t.Errorf("/statsz key `%s` (path %s) is not documented in docs/OPERATIONS.md", leaf, p)
		}
	}
}

// TestVersionSurfaces: build info appears in /statsz and /metricsz.
func TestVersionSurfaces(t *testing.T) {
	g := testGraph(t, 32, 2)
	_, ts := newTestServer(t, g, Options{})
	var statsz struct {
		Build obs.Build `json:"build"`
	}
	if code := get(t, ts.URL+"/statsz", &statsz); code != 200 {
		t.Fatal("statsz failed")
	}
	if statsz.Build.GoVersion == "" || statsz.Build.Version == "" {
		t.Fatalf("statsz build info incomplete: %+v", statsz.Build)
	}
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("go_version=%q", statsz.Build.GoVersion)) {
		t.Fatalf("/metricsz build info disagrees with /statsz: %s", buf.String())
	}
}
