package shard

import (
	"context"
	"testing"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/obs"
)

// spansNamed returns the spans of v named name, in creation order.
func spansNamed(v obs.TraceView, name string) []obs.SpanView {
	var out []obs.SpanView
	for _, sp := range v.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// spanByID indexes a trace view's spans for parent lookups.
func spanByID(v obs.TraceView) map[uint64]obs.SpanView {
	out := make(map[uint64]obs.SpanView, len(v.Spans))
	for _, sp := range v.Spans {
		out[sp.ID] = sp
	}
	return out
}

// TestTraceWorkerAnnotationsOverWire runs a traced scatter over two live
// workers and checks the coordinator's trace carries the full fabric
// story: a scatter span, at least one scatter_round, one worker child
// span per scatter group with the worker-side annotations (worlds
// scanned, tally-cache and store-tier attribution) fetched over the v2
// wire, and a merge span — while the traced answer stays bit-identical
// to an untraced local run.
func TestTraceWorkerAnnotationsOverWire(t *testing.T) {
	g := testGraph(t, 64, 33)
	const seed = 17
	workers := startWorkers(t, "tg", g, seed, 2)
	coord := NewCoordinator("tg", g, seed, workers, CoordinatorOptions{})
	local := conn.NewMonteCarlo(g, seed)

	tr := obs.NewTrace("test-query")
	ctx := obs.ContextWithSpan(context.Background(), tr.Root())
	centers := []graph.NodeID{2, 40}
	const worlds = 600
	got, err := coord.FromCentersCtx(ctx, centers, conn.Unlimited, worlds)
	if err != nil {
		t.Fatalf("traced query: %v", err)
	}
	want := local.FromCenters(centers, conn.Unlimited, worlds)
	for i := range want {
		sameFloats(t, "traced scatter", got[i], want[i])
	}
	tr.Finish()
	v := tr.View()

	if len(spansNamed(v, "scatter")) == 0 {
		t.Fatalf("no scatter span in trace: %+v", v.Spans)
	}
	rounds := spansNamed(v, "scatter_round")
	if len(rounds) == 0 {
		t.Fatal("no scatter_round span in trace")
	}
	if len(spansNamed(v, "merge")) == 0 {
		t.Fatal("no merge span in trace")
	}

	byID := spanByID(v)
	wspans := spansNamed(v, "worker")
	if len(wspans) == 0 {
		t.Fatal("no worker spans in trace")
	}
	roundIDs := map[uint64]bool{}
	for _, r := range rounds {
		roundIDs[r.ID] = true
	}
	var scanned int64
	seen := map[string]bool{}
	for _, ws := range wspans {
		if !roundIDs[ws.ParentID] {
			t.Fatalf("worker span %d parented under %q, want a scatter_round", ws.ID, byID[ws.ParentID].Name)
		}
		addr, _ := ws.Attrs["addr"].(string)
		if addr == "" {
			t.Fatalf("worker span missing addr attr: %+v", ws.Attrs)
		}
		seen[addr] = true
		if ws.Attrs["outcome"] != "won" {
			continue
		}
		// The wire-carried worker annotations: the attempt that won must
		// report its scan and the tier it served from.
		n, ok := ws.Attrs["worker_worlds_scanned"].(int64)
		if !ok || n <= 0 {
			t.Fatalf("won worker span missing worlds-scanned annotation: %+v", ws.Attrs)
		}
		scanned += n
		for _, key := range []string{
			"worker_elapsed_ms", "worker_cache_hits", "worker_cache_miss",
			"store_ram_hits", "store_disk_hits", "store_recomputes",
			"store_materializations",
		} {
			if _, ok := ws.Attrs[key]; !ok {
				t.Fatalf("won worker span missing %q annotation: %+v", key, ws.Attrs)
			}
		}
	}
	if scanned != worlds {
		t.Fatalf("won worker spans scanned %d worlds, want %d", scanned, worlds)
	}
	if len(seen) != 2 {
		t.Fatalf("worker spans cover %d distinct workers, want 2: %v", len(seen), seen)
	}
}

// TestChaosTraceMatchesInjectionCounters flips one bit in a tally
// response at the TCP layer and checks the story the trace tells matches
// what the fault injector actually did: exactly Corruptions failed
// worker attempts on the proxied address, a retry round after the first,
// and the fabric's IntegrityRejects agreeing with both.
func TestChaosTraceMatchesInjectionCounters(t *testing.T) {
	g := testGraph(t, 64, 45)
	const seed = 29
	workers := startWorkers(t, "tg", g, seed, 2)
	proxy := newChaosProxy(t, workers[0])

	coord := NewCoordinator("tg", g, seed, []string{proxy.URL(), workers[1]}, CoordinatorOptions{
		Retries:        3,
		RequestTimeout: 5 * time.Second,
	})
	local := conn.NewMonteCarlo(g, seed)

	// Establish the stream with a clean query so the next corrupted
	// backend->client chunk is a tally frame, not the 101 handshake.
	if _, err := coord.FromCentersCtx(context.Background(), []graph.NodeID{3}, conn.Unlimited, 200); err != nil {
		t.Fatalf("warm query: %v", err)
	}

	proxy.CorruptNext(1)
	tr := obs.NewTrace("chaos-query")
	ctx := obs.ContextWithSpan(context.Background(), tr.Root())
	centers := []graph.NodeID{7, 51}
	got, err := coord.FromCentersCtx(ctx, centers, conn.Unlimited, 800)
	if err != nil {
		t.Fatalf("query with a corrupted response: %v", err)
	}
	want := local.FromCenters(centers, conn.Unlimited, 800)
	for i := range want {
		sameFloats(t, "corrupted response", got[i], want[i])
	}
	tr.Finish()
	v := tr.View()

	injected := proxy.Counters().Corruptions
	if injected != 1 {
		t.Fatalf("proxy injected %d corruptions, want 1 (test setup)", injected)
	}
	var failed uint64
	for _, ws := range spansNamed(v, "worker") {
		if ws.Attrs["outcome"] == "failed" && ws.Attrs["addr"] == proxy.URL() {
			failed++
		}
	}
	if failed != injected {
		t.Fatalf("trace shows %d failed attempts on the faulted worker, injector reports %d", failed, injected)
	}
	if fs := coord.FabricStats(); fs.IntegrityRejects != injected {
		t.Fatalf("IntegrityRejects = %d disagrees with injected corruptions %d", fs.IntegrityRejects, injected)
	}
	rounds := spansNamed(v, "scatter_round")
	if len(rounds) < 2 {
		t.Fatalf("trace has %d scatter rounds, want >= 2 (initial + retry)", len(rounds))
	}
	if _, ok := rounds[0].Attrs["failed_blocks"]; !ok {
		t.Fatalf("first round span does not record its failure: %+v", rounds[0].Attrs)
	}
}

// TestTraceHedgeSpansMatchFabricStats delays one worker past the hedge
// deadline and checks the trace's hedged worker attempts agree with the
// fabric's Hedges counter.
func TestTraceHedgeSpansMatchFabricStats(t *testing.T) {
	g := testGraph(t, 64, 51)
	const seed = 31
	workers := startWorkers(t, "tg", g, seed, 2)
	proxy := newChaosProxy(t, workers[0])

	coord := NewCoordinator("tg", g, seed, []string{proxy.URL(), workers[1]}, CoordinatorOptions{
		RequestTimeout: 5 * time.Second,
		HedgeDelay:     10 * time.Millisecond,
	})
	local := conn.NewMonteCarlo(g, seed)

	// Warm the streams, then throttle the proxied worker so its groups
	// straggle past the hedge deadline.
	if _, err := coord.FromCentersCtx(context.Background(), []graph.NodeID{5}, conn.Unlimited, 200); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	proxy.SetDelay(200 * time.Millisecond)

	tr := obs.NewTrace("hedged-query")
	ctx := obs.ContextWithSpan(context.Background(), tr.Root())
	centers := []graph.NodeID{9, 33}
	got, err := coord.FromCentersCtx(ctx, centers, conn.Unlimited, 800)
	if err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	want := local.FromCenters(centers, conn.Unlimited, 800)
	for i := range want {
		sameFloats(t, "hedged", got[i], want[i])
	}
	tr.Finish()

	var hedged uint64
	for _, ws := range spansNamed(tr.View(), "worker") {
		if ws.Attrs["hedged"] == true {
			hedged++
		}
	}
	fs := coord.FabricStats()
	if fs.Hedges == 0 {
		t.Fatal("no hedges fired (test setup: delay or hedge deadline wrong)")
	}
	if hedged != fs.Hedges {
		t.Fatalf("trace shows %d hedged attempts, fabric counted %d", hedged, fs.Hedges)
	}
}
