package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ucgraph/internal/graph"
	"ucgraph/internal/influence"
	"ucgraph/internal/knn"
	"ucgraph/internal/metrics"
	"ucgraph/internal/worldstore"
)

// WorkerGraph is one graph a worker serves tallies for. Worker processes
// of one deployment are all started with the same graphs and seed, so that
// every worker — and the coordinator — addresses the identical world
// stream.
type WorkerGraph struct {
	Name  string
	Graph *graph.Uncertain
	Seed  uint64
}

// WorkerOptions configures a Worker. The zero value selects the documented
// defaults.
type WorkerOptions struct {
	// MaxWorlds caps the highest world index a single tally request may
	// reach (default 1 << 20): a misbehaving coordinator cannot make a
	// worker materialize an unbounded stream.
	MaxWorlds int

	// TallyCacheBytes budgets the worker's per-range tally cache
	// (default 64 MiB; negative disables it). Repeated rounds over the
	// same (kind, graph, centers, range) — min-partial scoring loops,
	// greedy influence sweeps, hedged duplicates — are answered from
	// warm int32s instead of rescanning worlds.
	TallyCacheBytes int64

	// WorldCacheDir, when non-empty, attaches a disk tier to every served
	// graph's world store (the -worldcache flag): blocks evicted under
	// the memory budget spill to WorldCacheDir/<graph name>/ and a
	// restarted worker pointed at the same directory resumes hot.
	// Tallies are bit-identical with or without the cache.
	WorldCacheDir string

	// SlowTally, when positive, logs any tally request that takes at
	// least this long as a structured one-line JSON record (via SlowLog),
	// carrying the coordinator's trace ID when the request arrived with
	// flagTrace — so a slow worker correlates with the coordinator's
	// trace across machine boundaries. The -slow-query flag.
	SlowTally time.Duration

	// SlowLog receives slow-tally records; nil uses slog.Default().
	SlowLog *slog.Logger
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.MaxWorlds <= 0 {
		o.MaxWorlds = 1 << 20
	}
	if o.TallyCacheBytes == 0 {
		o.TallyCacheBytes = 64 << 20
	}
	return o
}

// errUnknownGraph marks tally requests naming a graph the worker does not
// serve.
var errUnknownGraph = errors.New("shard: unknown graph")

// workerGraph is the worker-side state of one served graph.
type workerGraph struct {
	name  string
	g     *graph.Uncertain
	seed  uint64
	store *worldstore.Store
}

// Worker serves the shard wire protocol over a private world store per
// graph: GET /shard/v1/ping for identity, POST /shard/v1/tally for JSON
// tallies (frozen v1, kept for debugging and old coordinators), POST
// /shard/v2/stream for the binary frame protocol, GET /healthz for plain
// liveness probes. It holds no assignment state — any worker can serve any
// range of the stream — which is what lets the coordinator re-stripe a
// departed worker's blocks onto the survivors and hedge stragglers without
// coordination. Safe for concurrent use; the store coordinates concurrent
// block materialization internally.
type Worker struct {
	opts   WorkerOptions
	graphs map[string]*workerGraph
	mux    *http.ServeMux
	cache  *tallyCache

	requests         atomic.Uint64
	failures         atomic.Uint64
	worlds           atomic.Uint64 // worlds actually tallied (cache hits excluded)
	cacheHits        atomic.Uint64
	cacheMiss        atomic.Uint64
	integrityRejects atomic.Uint64 // REQ frames failing their CRC32-C check

	// Drain state: once draining flips, new streams and new tally work are
	// refused while counted in-flight requests run to completion; Drain
	// then severs the registered hijacked streams (which
	// http.Server.Shutdown cannot see).
	draining atomic.Bool
	inflight atomic.Int64
	smu      sync.Mutex
	streams  map[*streamConn]struct{}
}

// NewWorker builds a Worker over the given graphs. Each graph gets a
// private (non-registry) world store: worker processes are the unit of
// memory isolation in a sharded deployment, so the store deliberately does
// not share blocks with other in-process consumers.
func NewWorker(graphs []WorkerGraph, opts WorkerOptions) (*Worker, error) {
	if len(graphs) == 0 {
		return nil, errors.New("shard: worker with no graphs to serve")
	}
	w := &Worker{
		opts:    opts.withDefaults(),
		graphs:  make(map[string]*workerGraph, len(graphs)),
		mux:     http.NewServeMux(),
		streams: make(map[*streamConn]struct{}),
	}
	if w.opts.TallyCacheBytes > 0 {
		w.cache = &tallyCache{max: w.opts.TallyCacheBytes, entries: make(map[string]*TallyResponse)}
	}
	for _, gc := range graphs {
		if gc.Name == "" {
			return nil, errors.New("shard: worker graph with empty name")
		}
		if gc.Graph == nil {
			return nil, fmt.Errorf("shard: worker graph %q is nil", gc.Name)
		}
		if _, dup := w.graphs[gc.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate worker graph name %q", gc.Name)
		}
		store := worldstore.New(gc.Graph, gc.Seed)
		if w.opts.WorldCacheDir != "" {
			dir := filepath.Join(w.opts.WorldCacheDir, gc.Name)
			if err := store.AttachCache(dir); err != nil {
				return nil, fmt.Errorf("shard: worker graph %q: %w", gc.Name, err)
			}
		}
		w.graphs[gc.Name] = &workerGraph{
			name:  gc.Name,
			g:     gc.Graph,
			seed:  gc.Seed,
			store: store,
		}
	}
	w.mux.HandleFunc("GET "+PathPing, w.handlePing)
	w.mux.HandleFunc("POST "+PathTally, w.handleTally)
	w.mux.HandleFunc("POST "+PathStream, w.handleStream)
	w.mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		if w.draining.Load() {
			writeJSON(rw, http.StatusServiceUnavailable, map[string]any{"status": "draining", "graphs": len(w.graphs)})
			return
		}
		writeJSON(rw, http.StatusOK, map[string]any{"status": "ok", "graphs": len(w.graphs)})
	})
	return w, nil
}

// trackStream registers a hijacked v2 stream for drain-time teardown.
func (w *Worker) trackStream(c *streamConn) {
	w.smu.Lock()
	w.streams[c] = struct{}{}
	w.smu.Unlock()
}

func (w *Worker) untrackStream(c *streamConn) {
	w.smu.Lock()
	delete(w.streams, c)
	w.smu.Unlock()
}

// Drain performs a graceful shutdown of the worker's tally surface:
// /healthz flips to 503 "draining" (so load balancers stop routing), new
// streams and new tally frames are refused, in-flight requests — the open
// scatter rounds the coordinator is waiting on — run to completion and
// flush their response frames, and only then are the hijacked v2 streams
// severed. Returns ctx.Err() if the deadline expires first, with the
// streams severed regardless: a drain timeout degrades to today's hard
// close, never a hang.
func (w *Worker) Drain(ctx context.Context) error {
	w.draining.Store(true)
	err := awaitZero(ctx, &w.inflight)
	w.smu.Lock()
	for c := range w.streams {
		c.nc.Close()
	}
	w.streams = make(map[*streamConn]struct{})
	w.smu.Unlock()
	return err
}

// awaitZero polls an in-flight counter down to zero. Polling (rather than
// a WaitGroup) sidesteps the Add-while-Wait race: requests keep arriving
// and being refused while the counter drains.
func awaitZero(ctx context.Context, n *atomic.Int64) error {
	for {
		if n.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	w.mux.ServeHTTP(rw, r)
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(v)
}

func (w *Worker) fail(rw http.ResponseWriter, code int, msg string) {
	w.failures.Add(1)
	writeJSON(rw, code, errorResponse{Error: msg})
}

func (w *Worker) handlePing(rw http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0, len(w.graphs))
	for name := range w.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	resp := PingResponse{Graphs: make([]PingGraph, 0, len(names))}
	for _, name := range names {
		wg := w.graphs[name]
		resp.Graphs = append(resp.Graphs, PingGraph{
			Name:        name,
			Nodes:       wg.g.NumNodes(),
			Edges:       wg.g.NumEdges(),
			Seed:        wg.seed,
			BlockWorlds: wg.store.BlockWorlds(),
			Worlds:      wg.store.Worlds(),
		})
	}
	writeJSON(rw, http.StatusOK, resp)
}

// validRanges checks the request's world ranges: ascending, disjoint,
// non-empty, under the MaxWorlds cap. Returns the total world count.
func (w *Worker) validRanges(ranges []Range) (int, error) {
	if len(ranges) == 0 {
		return 0, errors.New("empty \"ranges\"")
	}
	total, prev := 0, 0
	for i, r := range ranges {
		if r.Lo < 0 || r.Hi <= r.Lo {
			return 0, fmt.Errorf("invalid range [%d, %d)", r.Lo, r.Hi)
		}
		if i > 0 && r.Lo < prev {
			return 0, fmt.Errorf("ranges not ascending/disjoint at [%d, %d)", r.Lo, r.Hi)
		}
		if r.Hi > w.opts.MaxWorlds {
			return 0, fmt.Errorf("range [%d, %d) exceeds the worker world cap %d", r.Lo, r.Hi, w.opts.MaxWorlds)
		}
		total += r.Worlds()
		prev = r.Hi
	}
	return total, nil
}

func validNodes(g *graph.Uncertain, field string, nodes []int32) error {
	n := int32(g.NumNodes())
	for _, v := range nodes {
		if v < 0 || v >= n {
			return fmt.Errorf("%q node %d out of range [0, %d)", field, v, n)
		}
	}
	return nil
}

// handleTally is the frozen v1 JSON endpoint; it shares serveTally with
// the v2 stream, so both transports compute identical tallies.
func (w *Worker) handleTally(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		writeJSON(rw, http.StatusServiceUnavailable, errorResponse{Error: "worker draining"})
		return
	}
	var req TallyRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		w.fail(rw, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	resp, cached, err := w.serveTally(r.Context(), &req)
	if err != nil {
		var bad *badRequestError
		switch {
		case errors.As(err, &bad):
			writeJSON(rw, http.StatusBadRequest, errorResponse{Error: bad.msg})
		case errors.Is(err, errUnknownGraph):
			writeJSON(rw, http.StatusNotFound, errorResponse{Error: err.Error()})
		default:
			// Cancellation or deadline: the coordinator gave up on us.
			writeJSON(rw, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		}
		return
	}
	if cached {
		rw.Header().Set("X-Ucgraph-Cached", "1")
	}
	writeJSON(rw, http.StatusOK, resp)
}

// badRequestError marks validation failures inside the kind handlers.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badReq(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// serveTally validates req and computes its tallies range by range,
// consulting the per-range cache. The second result reports whether every
// range was served from cache. Both transports (v1 JSON, v2 stream) funnel
// through here; failure accounting happens here exactly once per request.
func (w *Worker) serveTally(ctx context.Context, req *TallyRequest) (*TallyResponse, bool, error) {
	resp, cached, _, err := w.serveTallyAnnot(ctx, req, false)
	return resp, cached, err
}

// serveTallyAnnot is serveTally plus, when traced, the worker-side
// execution annotation shipped back on a flagTrace response: wall time,
// worlds tallied, per-request cache hits/misses and the store tier
// activity observed while serving the request. The annotation is pure
// observation — traced and untraced requests run the identical code
// path and produce byte-identical tallies.
func (w *Worker) serveTallyAnnot(ctx context.Context, req *TallyRequest, traced bool) (*TallyResponse, bool, workerAnnot, error) {
	w.requests.Add(1)
	var annot workerAnnot
	var start time.Time
	if traced {
		start = time.Now()
	}
	resp, cached, err := w.tally(ctx, req, traced, &annot)
	if err != nil {
		w.failures.Add(1)
		return nil, false, annot, err
	}
	if traced {
		annot.ElapsedNS = uint64(time.Since(start))
		annot.Worlds = uint64(resp.Worlds)
	}
	return resp, cached, annot, nil
}

func (w *Worker) tally(ctx context.Context, req *TallyRequest, traced bool, annot *workerAnnot) (*TallyResponse, bool, error) {
	wg, ok := w.graphs[req.Graph]
	if !ok {
		return nil, false, fmt.Errorf("%w %q", errUnknownGraph, req.Graph)
	}
	if _, err := w.validRanges(req.Ranges); err != nil {
		return nil, false, badReq("%s", err)
	}
	if err := validTally(wg, req); err != nil {
		return nil, false, err
	}
	if traced {
		// Tier attribution by Stats snapshot diff. On a store shared by
		// concurrent requests the delta covers the whole window, not just
		// this request's share — approximate by design, and documented as
		// such (docs/OPERATIONS.md); it informs operators, never
		// estimates.
		pre := wg.store.Stats()
		defer func() {
			d := wg.store.Stats().TierDelta(pre)
			annot.StoreHits = d.Hits
			annot.DiskHits = d.DiskHits
			annot.Recomputes = d.Recomputes
			annot.Materializations = d.Materializations
		}()
	}

	resp := &TallyResponse{}
	cached := true
	var keyBuf []byte
	single := *req // per-range copy for cache keys
	for _, rg := range req.Ranges {
		var key string
		if w.cache != nil {
			single.Ranges = []Range{rg}
			kb, err := encodeRequestBody(keyBuf[:0], &single)
			if err != nil {
				return nil, false, badReq("%s", err)
			}
			keyBuf = kb
			key = string(kb)
			if part := w.cache.get(key); part != nil {
				w.cacheHits.Add(1)
				annot.CacheHits++
				mergeTally(resp, part, req.Kind)
				continue
			}
			w.cacheMiss.Add(1)
			annot.CacheMiss++
		}
		cached = false
		part, err := w.rangeTally(ctx, wg, req, rg)
		if err != nil {
			return nil, false, err
		}
		w.worlds.Add(uint64(rg.Worlds()))
		if w.cache != nil {
			w.cache.put(key, part)
		}
		mergeTally(resp, part, req.Kind)
	}
	return resp, cached, nil
}

// noteSlowTally emits the structured slow-tally record when the request
// crossed the SlowTally threshold. ref is the coordinator's trace ref
// (zero when the request was untraced).
func (w *Worker) noteSlowTally(req *TallyRequest, ref traceRef, elapsed time.Duration, err error) {
	if w.opts.SlowTally <= 0 || elapsed < w.opts.SlowTally {
		return
	}
	lg := w.opts.SlowLog
	if lg == nil {
		lg = slog.Default()
	}
	attrs := []any{
		slog.String("graph", req.Graph),
		slog.String("kind", req.Kind),
		slog.Int("ranges", len(req.Ranges)),
		slog.Duration("elapsed", elapsed),
	}
	if ref.TraceID != 0 {
		attrs = append(attrs,
			slog.String("trace_id", fmt.Sprintf("%016x", ref.TraceID)),
			slog.Uint64("parent_span", ref.SpanID))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	lg.Warn("slow tally", attrs...)
}

// validTally checks the kind-specific request fields, once per request.
func validTally(wg *workerGraph, req *TallyRequest) error {
	switch req.Kind {
	case KindConnected, KindWithin:
		if len(req.Centers) == 0 {
			return badReq("kind %q needs \"centers\"", req.Kind)
		}
		if err := validNodes(wg.g, "centers", req.Centers); err != nil {
			return badReq("%s", err)
		}
		if req.Kind == KindWithin && req.Depth < 0 {
			return badReq("kind %q needs a non-negative \"depth\"", req.Kind)
		}
	case KindPair:
		if err := validNodes(wg.g, "u/v", []int32{req.U, req.V}); err != nil {
			return badReq("%s", err)
		}
	case KindDistances:
		if err := validNodes(wg.g, "source", []int32{req.Source}); err != nil {
			return badReq("%s", err)
		}
	case KindSpread:
		if len(req.Seeds) == 0 {
			return badReq("kind %q needs \"seeds\"", req.Kind)
		}
		fallthrough
	case KindMarginal:
		if err := validNodes(wg.g, "seeds", req.Seeds); err != nil {
			return badReq("%s", err)
		}
		if err := validNodes(wg.g, "candidates", req.Candidates); err != nil {
			return badReq("%s", err)
		}
	case KindReliability:
		// Empty seeds means all-terminal (every node), mirroring the
		// empty-candidates convention of KindMarginal.
		if err := validNodes(wg.g, "seeds", req.Seeds); err != nil {
			return badReq("%s", err)
		}
	case KindComponents, KindLargest:
		// Range-only kinds: nothing beyond the ranges to validate.
	default:
		return badReq("unknown tally kind %q", req.Kind)
	}
	return nil
}

// rangeTally computes one kind's tallies over a single world range. The
// result is immutable once returned (it may be shared by the cache), and
// merging per-range results is plain integer addition — which is the whole
// bit-identity argument: integer sums are order-free, so any partitioning
// of [lo, hi) into ranges, workers, retries and hedges folds to the same
// totals.
func (w *Worker) rangeTally(ctx context.Context, wg *workerGraph, req *TallyRequest, rg Range) (*TallyResponse, error) {
	return rangeTally(ctx, wg.g, wg.store, req, rg)
}

// rangeTally is the transport-free tally kernel: one kind over one world
// range of the (graph, seed) stream behind store. It is shared by the
// worker (both wire versions) and by the coordinator's audit referee,
// which recomputes a divergent group locally over the same stream — the
// two sides agreeing byte-for-byte is the audit's ground truth.
func rangeTally(ctx context.Context, g *graph.Uncertain, store *worldstore.Store, req *TallyRequest, rg Range) (*TallyResponse, error) {
	resp := &TallyResponse{Worlds: rg.Worlds()}
	switch req.Kind {
	case KindConnected, KindWithin:
		n := g.NumNodes()
		counts := make([][]int32, len(req.Centers))
		buf := make([]int32, len(req.Centers)*n)
		lo := make([]int, len(req.Centers))
		for j := range counts {
			counts[j] = buf[j*n : (j+1)*n : (j+1)*n]
			lo[j] = rg.Lo
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if req.Kind == KindConnected {
			store.CountConnectedFromMulti(req.Centers, lo, rg.Hi, counts)
		} else {
			store.CountWithinMulti(req.Centers, req.Depth, lo, rg.Hi, counts)
		}
		resp.Counts = counts
	case KindPair:
		var cnt int64
		if err := store.ScanCtx(ctx, rg.Lo, rg.Hi, func(_ int, lab []int32) {
			if lab[req.U] == lab[req.V] {
				cnt++
			}
		}); err != nil {
			return nil, err
		}
		resp.Count = cnt
	case KindDistances:
		dd, err := knn.SampleRangeCtx(ctx, store, req.Source, rg.Lo, rg.Hi)
		if err != nil {
			return nil, err
		}
		n := g.NumNodes()
		resp.Hist = make([][]DistCount, n)
		resp.Unreachable = make([]int64, n)
		for v := 0; v < n; v++ {
			buckets := make([]DistCount, 0, len(dd.Hist[v]))
			for d, c := range dd.Hist[v] {
				buckets = append(buckets, DistCount{D: d, N: int64(c)})
			}
			sort.Slice(buckets, func(i, j int) bool { return buckets[i].D < buckets[j].D })
			resp.Hist[v] = buckets
			resp.Unreachable[v] = int64(dd.Unreachable[v])
		}
	case KindSpread:
		total, err := influence.SpreadTallyCtx(ctx, store, req.Seeds, rg.Lo, rg.Hi)
		if err != nil {
			return nil, err
		}
		resp.Totals = []int64{total}
	case KindMarginal:
		candidates := req.Candidates
		if len(candidates) == 0 {
			// Empty candidates means "all nodes" (see KindMarginal): the
			// initial greedy round asks about every node, and the
			// convention keeps n node IDs off the wire.
			candidates = make([]graph.NodeID, g.NumNodes())
			for v := range candidates {
				candidates[v] = graph.NodeID(v)
			}
		}
		totals, err := influence.MarginalTallyCtx(ctx, store, req.Seeds, candidates, rg.Lo, rg.Hi)
		if err != nil {
			return nil, err
		}
		resp.Totals = totals
	case KindReliability:
		var (
			tally int64
			err   error
		)
		if len(req.Seeds) == 0 {
			tally, err = metrics.AllTerminalReliabilityTallyCtx(ctx, store, rg.Lo, rg.Hi)
		} else {
			tally, err = metrics.SetReliabilityTallyCtx(ctx, store, req.Seeds, rg.Lo, rg.Hi)
		}
		if err != nil {
			return nil, err
		}
		resp.Totals = []int64{tally}
	case KindComponents:
		tally, err := metrics.ComponentsTallyCtx(ctx, store, rg.Lo, rg.Hi)
		if err != nil {
			return nil, err
		}
		resp.Totals = []int64{tally}
	case KindLargest:
		tally, err := metrics.LargestComponentTallyCtx(ctx, store, rg.Lo, rg.Hi)
		if err != nil {
			return nil, err
		}
		resp.Totals = []int64{tally}
	}
	return resp, nil
}

// mergeTally folds one per-range result into the accumulator. dst starts
// zero-valued; src is never mutated (it may live in the cache).
func mergeTally(dst, src *TallyResponse, kind string) {
	dst.Worlds += src.Worlds
	switch kind {
	case KindConnected, KindWithin:
		if dst.Counts == nil {
			rows, cols := len(src.Counts), 0
			if rows > 0 {
				cols = len(src.Counts[0])
			}
			buf := make([]int32, rows*cols)
			dst.Counts = make([][]int32, rows)
			for j := range dst.Counts {
				dst.Counts[j] = buf[j*cols : (j+1)*cols : (j+1)*cols]
			}
		}
		for j, row := range src.Counts {
			out := dst.Counts[j]
			for i, c := range row {
				out[i] += c
			}
		}
	case KindPair:
		dst.Count += src.Count
	case KindSpread, KindMarginal, KindReliability, KindComponents, KindLargest:
		if dst.Totals == nil {
			dst.Totals = make([]int64, len(src.Totals))
		}
		for i, t := range src.Totals {
			dst.Totals[i] += t
		}
	case KindDistances:
		if dst.Hist == nil {
			dst.Hist = make([][]DistCount, len(src.Hist))
			dst.Unreachable = make([]int64, len(src.Unreachable))
		}
		for v, buckets := range src.Hist {
			dst.Hist[v] = mergeBuckets(dst.Hist[v], buckets)
		}
		for v, u := range src.Unreachable {
			dst.Unreachable[v] += u
		}
	}
}

// mergeBuckets merges two distance histograms sorted ascending by D.
func mergeBuckets(a, b []DistCount) []DistCount {
	if len(a) == 0 {
		return append([]DistCount(nil), b...)
	}
	out := make([]DistCount, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].D < b[j].D:
			out = append(out, a[i])
			i++
		case a[i].D > b[j].D:
			out = append(out, b[j])
			j++
		default:
			out = append(out, DistCount{D: a[i].D, N: a[i].N + b[j].N})
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// tallyCache is the worker's per-range tally cache: FIFO eviction under a
// byte budget, keyed by the canonical binary encoding of a single-range
// request (so the key already covers kind, graph, centers/seeds, depth and
// range — see encodeRequestBody). Values are immutable.
type tallyCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[string]*TallyResponse
	order   []string
	head    int
}

func (c *tallyCache) get(key string) *TallyResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[key]
}

func (c *tallyCache) put(key string, resp *TallyResponse) {
	size := int64(len(key)) + respBytes(resp)
	if size > c.max {
		return // larger than the whole budget; never admit
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	for c.bytes+size > c.max && c.head < len(c.order) {
		old := c.order[c.head]
		c.head++
		if ev, ok := c.entries[old]; ok {
			delete(c.entries, old)
			c.bytes -= int64(len(old)) + respBytes(ev)
		}
	}
	if c.head > 1024 && c.head*2 > len(c.order) {
		c.order = append(c.order[:0], c.order[c.head:]...)
		c.head = 0
	}
	c.entries[key] = resp
	c.order = append(c.order, key)
	c.bytes += size
}

// respBytes approximates a response's resident size for the cache budget.
func respBytes(r *TallyResponse) int64 {
	var b int64 = 64
	for _, row := range r.Counts {
		b += int64(len(row))*4 + 24
	}
	b += int64(len(r.Totals)) * 8
	for _, h := range r.Hist {
		b += int64(len(h))*12 + 24
	}
	b += int64(len(r.Unreachable)) * 8
	return b
}

// WorkerCounters are the worker's observability counters.
type WorkerCounters struct {
	Requests  uint64
	Failures  uint64
	Worlds    uint64 // worlds tallied by scanning (cache hits excluded)
	CacheHits uint64
	CacheMiss uint64
	// IntegrityRejects counts REQ frames rejected for a CRC32-C mismatch
	// before decoding (each was answered with an integrity error frame, so
	// the coordinator re-sent rather than trusting mangled parameters).
	IntegrityRejects uint64
}

// Counters returns the worker's request counters.
func (w *Worker) Counters() WorkerCounters {
	return WorkerCounters{
		Requests:         w.requests.Load(),
		Failures:         w.failures.Load(),
		Worlds:           w.worlds.Load(),
		CacheHits:        w.cacheHits.Load(),
		CacheMiss:        w.cacheMiss.Load(),
		IntegrityRejects: w.integrityRejects.Load(),
	}
}
