package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"

	"ucgraph/internal/graph"
	"ucgraph/internal/influence"
	"ucgraph/internal/knn"
	"ucgraph/internal/worldstore"
)

// WorkerGraph is one graph a worker serves tallies for. Worker processes
// of one deployment are all started with the same graphs and seed, so that
// every worker — and the coordinator — addresses the identical world
// stream.
type WorkerGraph struct {
	Name  string
	Graph *graph.Uncertain
	Seed  uint64
}

// WorkerOptions configures a Worker. The zero value selects the documented
// defaults.
type WorkerOptions struct {
	// MaxWorlds caps the highest world index a single tally request may
	// reach (default 1 << 20): a misbehaving coordinator cannot make a
	// worker materialize an unbounded stream.
	MaxWorlds int
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.MaxWorlds <= 0 {
		o.MaxWorlds = 1 << 20
	}
	return o
}

// workerGraph is the worker-side state of one served graph.
type workerGraph struct {
	name  string
	g     *graph.Uncertain
	seed  uint64
	store *worldstore.Store
}

// Worker serves the shard wire protocol over a private world store per
// graph: GET /shard/v1/ping for identity, POST /shard/v1/tally for the
// integer tallies, GET /healthz for plain liveness probes. It holds no
// assignment state — any worker can serve any range of the stream — which
// is what lets the coordinator re-scatter a failed worker's ranges to the
// survivors. Safe for concurrent use; the store coordinates concurrent
// block materialization internally.
type Worker struct {
	opts   WorkerOptions
	graphs map[string]*workerGraph
	mux    *http.ServeMux

	requests atomic.Uint64
	failures atomic.Uint64
	worlds   atomic.Uint64 // total worlds tallied across requests
}

// NewWorker builds a Worker over the given graphs. Each graph gets a
// private (non-registry) world store: worker processes are the unit of
// memory isolation in a sharded deployment, so the store deliberately does
// not share blocks with other in-process consumers.
func NewWorker(graphs []WorkerGraph, opts WorkerOptions) (*Worker, error) {
	if len(graphs) == 0 {
		return nil, errors.New("shard: worker with no graphs to serve")
	}
	w := &Worker{
		opts:   opts.withDefaults(),
		graphs: make(map[string]*workerGraph, len(graphs)),
		mux:    http.NewServeMux(),
	}
	for _, gc := range graphs {
		if gc.Name == "" {
			return nil, errors.New("shard: worker graph with empty name")
		}
		if gc.Graph == nil {
			return nil, fmt.Errorf("shard: worker graph %q is nil", gc.Name)
		}
		if _, dup := w.graphs[gc.Name]; dup {
			return nil, fmt.Errorf("shard: duplicate worker graph name %q", gc.Name)
		}
		w.graphs[gc.Name] = &workerGraph{
			name:  gc.Name,
			g:     gc.Graph,
			seed:  gc.Seed,
			store: worldstore.New(gc.Graph, gc.Seed),
		}
	}
	w.mux.HandleFunc("GET "+PathPing, w.handlePing)
	w.mux.HandleFunc("POST "+PathTally, w.handleTally)
	w.mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]any{"status": "ok", "graphs": len(w.graphs)})
	})
	return w, nil
}

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	w.mux.ServeHTTP(rw, r)
}

func writeJSON(rw http.ResponseWriter, code int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(v)
}

func (w *Worker) fail(rw http.ResponseWriter, code int, msg string) {
	w.failures.Add(1)
	writeJSON(rw, code, errorResponse{Error: msg})
}

func (w *Worker) handlePing(rw http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0, len(w.graphs))
	for name := range w.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	resp := PingResponse{Graphs: make([]PingGraph, 0, len(names))}
	for _, name := range names {
		wg := w.graphs[name]
		resp.Graphs = append(resp.Graphs, PingGraph{
			Name:        name,
			Nodes:       wg.g.NumNodes(),
			Edges:       wg.g.NumEdges(),
			Seed:        wg.seed,
			BlockWorlds: wg.store.BlockWorlds(),
			Worlds:      wg.store.Worlds(),
		})
	}
	writeJSON(rw, http.StatusOK, resp)
}

// validRanges checks the request's world ranges: ascending, disjoint,
// non-empty, under the MaxWorlds cap. Returns the total world count.
func (w *Worker) validRanges(ranges []Range) (int, error) {
	if len(ranges) == 0 {
		return 0, errors.New("empty \"ranges\"")
	}
	total, prev := 0, 0
	for i, r := range ranges {
		if r.Lo < 0 || r.Hi <= r.Lo {
			return 0, fmt.Errorf("invalid range [%d, %d)", r.Lo, r.Hi)
		}
		if i > 0 && r.Lo < prev {
			return 0, fmt.Errorf("ranges not ascending/disjoint at [%d, %d)", r.Lo, r.Hi)
		}
		if r.Hi > w.opts.MaxWorlds {
			return 0, fmt.Errorf("range [%d, %d) exceeds the worker world cap %d", r.Lo, r.Hi, w.opts.MaxWorlds)
		}
		total += r.Worlds()
		prev = r.Hi
	}
	return total, nil
}

func validNodes(g *graph.Uncertain, field string, nodes []int32) error {
	n := int32(g.NumNodes())
	for _, v := range nodes {
		if v < 0 || v >= n {
			return fmt.Errorf("%q node %d out of range [0, %d)", field, v, n)
		}
	}
	return nil
}

func (w *Worker) handleTally(rw http.ResponseWriter, r *http.Request) {
	w.requests.Add(1)
	var req TallyRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		w.fail(rw, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	wg, ok := w.graphs[req.Graph]
	if !ok {
		w.fail(rw, http.StatusNotFound, fmt.Sprintf("unknown graph %q", req.Graph))
		return
	}
	total, err := w.validRanges(req.Ranges)
	if err != nil {
		w.fail(rw, http.StatusBadRequest, err.Error())
		return
	}

	resp := TallyResponse{Worlds: total}
	switch req.Kind {
	case KindConnected, KindWithin:
		err = w.tallyCenters(r.Context(), wg, &req, &resp)
	case KindPair:
		err = w.tallyPair(r.Context(), wg, &req, &resp)
	case KindDistances:
		err = w.tallyDistances(r.Context(), wg, &req, &resp)
	case KindSpread, KindMarginal:
		err = w.tallySpread(r.Context(), wg, &req, &resp)
	default:
		w.fail(rw, http.StatusBadRequest, fmt.Sprintf("unknown tally kind %q", req.Kind))
		return
	}
	if err != nil {
		var bad *badRequestError
		if errors.As(err, &bad) {
			w.fail(rw, http.StatusBadRequest, bad.msg)
		} else {
			// Cancellation or deadline: the coordinator gave up on us.
			w.fail(rw, http.StatusServiceUnavailable, err.Error())
		}
		return
	}
	w.worlds.Add(uint64(total))
	writeJSON(rw, http.StatusOK, resp)
}

// badRequestError marks validation failures inside the kind handlers.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badReq(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// tallyCenters answers KindConnected / KindWithin: per-center, per-node
// world counts over every requested range, through the exact batched
// store paths the in-process oracle uses (label scans for unlimited
// depth, edge-bitmap multi-center BFS for limited depth) — so a worker's
// partial counts are bit-identical to the slice of a local run they
// replace. Ctx is checked between ranges; the per-range store calls are
// the indivisible unit.
func (w *Worker) tallyCenters(ctx context.Context, wg *workerGraph, req *TallyRequest, resp *TallyResponse) error {
	if len(req.Centers) == 0 {
		return badReq("kind %q needs \"centers\"", req.Kind)
	}
	if err := validNodes(wg.g, "centers", req.Centers); err != nil {
		return badReq("%s", err)
	}
	if req.Kind == KindWithin && req.Depth < 0 {
		return badReq("kind %q needs a non-negative \"depth\"", req.Kind)
	}
	n := wg.g.NumNodes()
	counts := make([][]int32, len(req.Centers))
	buf := make([]int32, len(req.Centers)*n)
	for j := range counts {
		counts[j] = buf[j*n : (j+1)*n : (j+1)*n]
	}
	lo := make([]int, len(req.Centers))
	for _, rg := range req.Ranges {
		if err := ctx.Err(); err != nil {
			return err
		}
		for j := range lo {
			lo[j] = rg.Lo
		}
		if req.Kind == KindConnected {
			wg.store.CountConnectedFromMulti(req.Centers, lo, rg.Hi, counts)
		} else {
			wg.store.CountWithinMulti(req.Centers, req.Depth, lo, rg.Hi, counts)
		}
	}
	resp.Counts = counts
	return nil
}

// tallyPair answers KindPair: the count of worlds where U ~ V.
func (w *Worker) tallyPair(ctx context.Context, wg *workerGraph, req *TallyRequest, resp *TallyResponse) error {
	if err := validNodes(wg.g, "u/v", []int32{req.U, req.V}); err != nil {
		return badReq("%s", err)
	}
	var cnt int64
	for _, rg := range req.Ranges {
		if err := wg.store.ScanCtx(ctx, rg.Lo, rg.Hi, func(_ int, lab []int32) {
			if lab[req.U] == lab[req.V] {
				cnt++
			}
		}); err != nil {
			return err
		}
	}
	resp.Count = cnt
	return nil
}

// tallyDistances answers KindDistances: per-node hop-distance histograms
// from Source, merged across the worker's ranges.
func (w *Worker) tallyDistances(ctx context.Context, wg *workerGraph, req *TallyRequest, resp *TallyResponse) error {
	if err := validNodes(wg.g, "source", []int32{req.Source}); err != nil {
		return badReq("%s", err)
	}
	var dd *knn.DistanceDistribution
	for _, rg := range req.Ranges {
		part, err := knn.SampleRangeCtx(ctx, wg.store, req.Source, rg.Lo, rg.Hi)
		if err != nil {
			return err
		}
		if dd == nil {
			dd = part
		} else {
			dd.Merge(part)
		}
	}
	n := wg.g.NumNodes()
	resp.Hist = make([][]DistCount, n)
	resp.Unreachable = make([]int64, n)
	for v := 0; v < n; v++ {
		buckets := make([]DistCount, 0, len(dd.Hist[v]))
		for d, c := range dd.Hist[v] {
			buckets = append(buckets, DistCount{D: d, N: int64(c)})
		}
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].D < buckets[j].D })
		resp.Hist[v] = buckets
		resp.Unreachable[v] = int64(dd.Unreachable[v])
	}
	return nil
}

// tallySpread answers KindSpread (one total) and KindMarginal (one total
// per candidate, given the covered components of Seeds).
func (w *Worker) tallySpread(ctx context.Context, wg *workerGraph, req *TallyRequest, resp *TallyResponse) error {
	if err := validNodes(wg.g, "seeds", req.Seeds); err != nil {
		return badReq("%s", err)
	}
	if req.Kind == KindSpread {
		if len(req.Seeds) == 0 {
			return badReq("kind %q needs \"seeds\"", req.Kind)
		}
		var total int64
		for _, rg := range req.Ranges {
			part, err := influence.SpreadTallyCtx(ctx, wg.store, req.Seeds, rg.Lo, rg.Hi)
			if err != nil {
				return err
			}
			total += part
		}
		resp.Totals = []int64{total}
		return nil
	}
	candidates := req.Candidates
	if len(candidates) == 0 {
		// Empty candidates means "all nodes" (see KindMarginal): the
		// initial greedy round asks about every node, and the convention
		// keeps n node IDs off the wire.
		candidates = make([]graph.NodeID, wg.g.NumNodes())
		for v := range candidates {
			candidates[v] = graph.NodeID(v)
		}
	} else if err := validNodes(wg.g, "candidates", candidates); err != nil {
		return badReq("%s", err)
	}
	totals := make([]int64, len(candidates))
	for _, rg := range req.Ranges {
		part, err := influence.MarginalTallyCtx(ctx, wg.store, req.Seeds, candidates, rg.Lo, rg.Hi)
		if err != nil {
			return err
		}
		for i, t := range part {
			totals[i] += t
		}
	}
	resp.Totals = totals
	return nil
}

// WorkerCounters are the worker's observability counters.
type WorkerCounters struct {
	Requests uint64
	Failures uint64
	Worlds   uint64
}

// Counters returns the worker's request counters.
func (w *Worker) Counters() WorkerCounters {
	return WorkerCounters{
		Requests: w.requests.Load(),
		Failures: w.failures.Load(),
		Worlds:   w.worlds.Load(),
	}
}
