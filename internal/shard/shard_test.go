package shard

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/influence"
	"ucgraph/internal/knn"
	"ucgraph/internal/rng"
	"ucgraph/internal/worldstore"
)

// testGraph builds a deterministic ring-with-chords uncertain graph.
func testGraph(t testing.TB, n int, seed uint64) *graph.Uncertain {
	t.Helper()
	x := rng.NewXoshiro256(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(int32(i), int32((i+1)%n), 0.2+0.7*x.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/2; i++ {
		u, v := int32(x.Intn(n)), int32(x.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v, 0.1+0.6*x.Float64()) // duplicate edges rejected, fine
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// startWorkers spins up count in-process shard workers over g, each with
// its own private world store (modelling separate processes), and returns
// their base URLs.
func startWorkers(t testing.TB, name string, g *graph.Uncertain, seed uint64, count int) []string {
	t.Helper()
	addrs := make([]string, count)
	for i := 0; i < count; i++ {
		w, err := NewWorker([]WorkerGraph{{Name: name, Graph: g, Seed: seed}}, WorkerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(w)
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	return addrs
}

// sameFloats asserts bit-identical float slices.
func sameFloats(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] = %v, want %v (bit difference)", label, i, got[i], want[i])
		}
	}
}

func TestPartitionCoversExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ lo, hi, bw, nw, rot int }{
		{0, 1000, 256, 1, 0},
		{0, 1000, 256, 3, 0},
		{0, 1000, 256, 4, 1},
		{100, 900, 256, 2, 0},
		{500, 501, 256, 4, 2},
		{0, 2048, 64, 5, 3},
	} {
		parts := Partition(tc.lo, tc.hi, tc.bw, tc.nw, tc.rot)
		if len(parts) != tc.nw {
			t.Fatalf("%+v: %d parts", tc, len(parts))
		}
		covered := make([]int, tc.hi)
		for _, part := range parts {
			for _, rg := range part {
				if rg.Hi <= rg.Lo {
					t.Fatalf("%+v: empty range %+v", tc, rg)
				}
				for i := rg.Lo; i < rg.Hi; i++ {
					covered[i]++
				}
				// Interior boundaries must be block-aligned so ranges map
				// onto whole worker-side blocks.
				if rg.Lo != tc.lo && rg.Lo%tc.bw != 0 {
					t.Fatalf("%+v: unaligned range start %d", tc, rg.Lo)
				}
				if rg.Hi != tc.hi && rg.Hi%tc.bw != 0 {
					t.Fatalf("%+v: unaligned range end %d", tc, rg.Hi)
				}
			}
		}
		for i := tc.lo; i < tc.hi; i++ {
			if covered[i] != 1 {
				t.Fatalf("%+v: world %d covered %d times", tc, i, covered[i])
			}
		}
	}
	// Ownership is static under extension: the blocks of [0, r1) keep
	// their workers when the range grows to r2.
	p1 := Partition(0, 700, 256, 4, 0)
	p2 := Partition(0, 1500, 256, 4, 0)
	for w := range p1 {
		for _, rg := range p1[w] {
			for i := rg.Lo; i < rg.Hi; i++ {
				found := false
				for _, rg2 := range p2[w] {
					if i >= rg2.Lo && i < rg2.Hi {
						found = true
					}
				}
				if !found {
					t.Fatalf("world %d moved off worker %d when the range grew", i, w)
				}
			}
		}
	}
}

// TestCoordinatorBitIdentical is the acceptance test: coordinator
// estimates over 1, 2 and 4 workers (including worker counts that split
// the block ranges unevenly) are bit-identical to the single-process
// oracle, across depths, progressive extensions and pair queries.
func TestCoordinatorBitIdentical(t *testing.T) {
	g := testGraph(t, 96, 3)
	const seed = 11
	centers := []graph.NodeID{0, 7, 7, 41, 90, 13}
	// Sample sizes chosen to split unevenly across blocks (BlockWorlds is
	// 256 for a 96-node graph): r1 covers one partial block, r2 several.
	const r1, r2 = 170, 730

	for _, nw := range []int{1, 2, 3, 4} {
		local := conn.NewMonteCarlo(g, seed)
		coord := NewCoordinator("tg", g, seed, startWorkers(t, "tg", g, seed, nw), CoordinatorOptions{})
		if !coord.Sharded() {
			t.Fatal("coordinator should be sharded")
		}
		if err := coord.Ping(context.Background()); err != nil {
			t.Fatalf("ping: %v", err)
		}
		for _, depth := range []int{conn.Unlimited, 2} {
			want, err := local.FromCentersCtx(context.Background(), centers, depth, r1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.FromCentersCtx(context.Background(), centers, depth, r1)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				sameFloats(t, "FromCenters", got[i], want[i])
			}
			// Progressive extension: the coordinator scatters only
			// [r1, r2) and the merged tally still matches.
			want2 := local.FromCenters(centers, depth, r2)
			got2 := coord.FromCenters(centers, depth, r2)
			for i := range want2 {
				sameFloats(t, "FromCenters extension", got2[i], want2[i])
			}
			// A fresh single center after the batch.
			wantC := local.FromCenter(55, depth, r2)
			gotC := coord.FromCenter(55, depth, r2)
			sameFloats(t, "FromCenter", gotC, wantC)
		}
		wantP := local.Pair(3, 60, r2)
		gotP := coord.Pair(3, 60, r2)
		if math.Float64bits(wantP) != math.Float64bits(gotP) {
			t.Fatalf("workers=%d: Pair = %v, want %v", nw, gotP, wantP)
		}
	}
}

// TestCoordinatorMixedProgress exercises batches whose tallies sit at
// different sample counts (distinct scatter groups per rDone level).
func TestCoordinatorMixedProgress(t *testing.T) {
	g := testGraph(t, 64, 5)
	const seed = 9
	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, startWorkers(t, "tg", g, seed, 2), CoordinatorOptions{})

	// Warm center 1 to 300 worlds, center 2 to 100; then batch all three
	// (one cold) to 500.
	local.FromCenter(1, conn.Unlimited, 300)
	local.FromCenter(2, conn.Unlimited, 100)
	coord.FromCenter(1, conn.Unlimited, 300)
	coord.FromCenter(2, conn.Unlimited, 100)
	want := local.FromCenters([]graph.NodeID{1, 2, 3}, conn.Unlimited, 500)
	got := coord.FromCenters([]graph.NodeID{1, 2, 3}, conn.Unlimited, 500)
	for i := range want {
		sameFloats(t, "mixed progress", got[i], want[i])
	}
}

// TestCoordinatorRetriesWithoutDoubleCounting kills a worker (its chaos
// proxy drops every connection) for a whole query: the coordinator
// re-scatters the failed blocks onto the survivor and the merged
// estimates stay bit-identical (any double- or under-count would change
// the integer tallies). After the "restart" the worker serves again.
func TestCoordinatorRetriesWithoutDoubleCounting(t *testing.T) {
	g := testGraph(t, 80, 7)
	const seed = 4
	workers := startWorkers(t, "tg", g, seed, 2)
	proxy := newChaosProxy(t, workers[0])

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{proxy.URL(), workers[1]}, CoordinatorOptions{
		Retries:        3,
		RequestTimeout: 5 * time.Second,
	})

	proxy.SetDown(true) // the worker dies before the query
	centers := []graph.NodeID{2, 17, 44}
	want := local.FromCenters(centers, conn.Unlimited, 900)
	got, err := coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, 900)
	if err != nil {
		t.Fatalf("query with dead worker: %v", err)
	}
	for i := range want {
		sameFloats(t, "retried query", got[i], want[i])
	}
	// The dead worker's failures are visible in the health stats.
	var failures uint64
	for _, st := range coord.WorkerStats() {
		failures += st.Failures
	}
	if failures == 0 {
		t.Fatal("expected recorded worker failures")
	}
	// After the restart, the worker serves again: a follow-up query uses
	// both workers and still matches.
	proxy.SetDown(false)
	want2 := local.FromCenters(centers, 2, 400)
	got2 := coord.FromCenters(centers, 2, 400)
	for i := range want2 {
		sameFloats(t, "post-restart query", got2[i], want2[i])
	}
}

// TestCoordinatorRejectsMalformedResponses: a worker returning
// wrong-shaped tallies (version skew, or restarted with a different
// graph under the same name) is treated as a retriable failure — its
// ranges re-scatter to the healthy worker and the estimates stay exact —
// never merged and never a panic.
func TestCoordinatorRejectsMalformedResponses(t *testing.T) {
	g := testGraph(t, 48, 6)
	const seed = 8
	corrupt := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req TallyRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		worlds := 0
		for _, rg := range req.Ranges {
			worlds += rg.Worlds()
		}
		// Right world count, wrong payload shape.
		writeJSON(w, http.StatusOK, TallyResponse{Worlds: worlds, Counts: [][]int32{{1, 2, 3}}})
	})
	tsBad := httptest.NewServer(corrupt)
	t.Cleanup(tsBad.Close)
	good, err := NewWorker([]WorkerGraph{{Name: "tg", Graph: g, Seed: seed}}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tsGood := httptest.NewServer(good)
	t.Cleanup(tsGood.Close)

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{tsBad.URL, tsGood.URL}, CoordinatorOptions{Retries: 3})
	want := local.FromCenters([]graph.NodeID{0, 21}, conn.Unlimited, 900)
	got, err := coord.FromCentersCtx(context.Background(), []graph.NodeID{0, 21}, conn.Unlimited, 900)
	if err != nil {
		t.Fatalf("query with corrupt worker: %v", err)
	}
	for i := range want {
		sameFloats(t, "corrupt-worker query", got[i], want[i])
	}
	var sawMalformed bool
	for _, st := range coord.WorkerStats() {
		if st.Failures > 0 {
			sawMalformed = true
		}
	}
	if !sawMalformed {
		t.Fatal("malformed responses were not recorded as failures")
	}
}

// TestCoordinatorAllWorkersDown asserts a clean error — not a wrong or
// partial estimate — when every worker is unreachable.
func TestCoordinatorAllWorkersDown(t *testing.T) {
	g := testGraph(t, 32, 1)
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // dead on arrival
	coord := NewCoordinator("tg", g, 1, []string{ts.URL}, CoordinatorOptions{
		Retries:        1,
		RequestTimeout: 500 * time.Millisecond,
	})
	if _, err := coord.FromCenterCtx(context.Background(), 0, conn.Unlimited, 64); err == nil {
		t.Fatal("expected an error with all workers down")
	}
	if err := coord.Ping(context.Background()); err == nil {
		t.Fatal("expected ping to fail")
	}
}

// TestCoordinatorLocalFallback: with no workers configured, every surface
// answers locally and matches the library exactly.
func TestCoordinatorLocalFallback(t *testing.T) {
	g := testGraph(t, 48, 2)
	const seed = 6
	coord := NewCoordinator("tg", g, seed, nil, CoordinatorOptions{})
	if coord.Sharded() {
		t.Fatal("no workers -> not sharded")
	}
	local := conn.NewMonteCarlo(g, seed)
	sameFloats(t, "fallback FromCenter", coord.FromCenter(5, conn.Unlimited, 200), local.FromCenter(5, conn.Unlimited, 200))
	if got, want := coord.Pair(1, 30, 200), local.Pair(1, 30, 200); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("fallback Pair = %v, want %v", got, want)
	}
	dd, err := coord.DistancesCtx(context.Background(), 3, 120)
	if err != nil {
		t.Fatal(err)
	}
	want := knn.SampleStore(worldstore.Shared(g, seed), 3, 120)
	if !reflect.DeepEqual(dd, want) {
		t.Fatal("fallback distance distribution differs from local")
	}
}

// TestCoordinatorDistancesBitIdentical: the scattered k-NN distance
// distribution equals the local one exactly, for several worker counts.
func TestCoordinatorDistancesBitIdentical(t *testing.T) {
	g := testGraph(t, 72, 8)
	const seed = 13
	const r = 600
	want := knn.SampleStore(worldstore.Shared(g, seed), 2, r)
	for _, nw := range []int{1, 3} {
		coord := NewCoordinator("tg", g, seed, startWorkers(t, "tg", g, seed, nw), CoordinatorOptions{})
		dd, err := coord.DistancesCtx(context.Background(), 2, r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dd, want) {
			t.Fatalf("workers=%d: scattered distance distribution differs from local", nw)
		}
		for _, m := range []knn.Measure{knn.MedianDistance, knn.ByReliability} {
			if !reflect.DeepEqual(dd.KNN(10, m), want.KNN(10, m)) {
				t.Fatalf("workers=%d: KNN(measure %v) differs", nw, m)
			}
		}
	}
}

// TestCoordinatorInfluenceBitIdentical: scattered spread and greedy
// maximization match the local implementations exactly.
func TestCoordinatorInfluenceBitIdentical(t *testing.T) {
	g := testGraph(t, 56, 10)
	const seed = 17
	const r = 500
	ws := worldstore.Shared(g, seed)
	seeds := []graph.NodeID{4, 31}
	wantSpread := influence.Spread(ws, seeds, r)
	wantGreedy, err := influence.Greedy(ws, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, nw := range []int{1, 2, 4} {
		coord := NewCoordinator("tg", g, seed, startWorkers(t, "tg", g, seed, nw), CoordinatorOptions{})
		gotSpread, err := coord.SpreadCtx(context.Background(), seeds, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(gotSpread) != math.Float64bits(wantSpread) {
			t.Fatalf("workers=%d: spread = %v, want %v", nw, gotSpread, wantSpread)
		}
		gotGreedy, err := coord.GreedyCtx(context.Background(), 4, r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotGreedy, wantGreedy) {
			t.Fatalf("workers=%d: greedy = %+v, want %+v", nw, gotGreedy, wantGreedy)
		}
	}
}

// TestCoordinatorForkIsolation: a forked coordinator shares workers but
// not tallies, so its results do not depend on what the parent warmed.
func TestCoordinatorForkIsolation(t *testing.T) {
	g := testGraph(t, 40, 12)
	const seed = 3
	coord := NewCoordinator("tg", g, seed, startWorkers(t, "tg", g, seed, 2), CoordinatorOptions{})
	// Warm the parent's tally for center 0 to high precision.
	coord.FromCenter(0, conn.Unlimited, 800)
	// A fork must answer a smaller request at the requested precision,
	// exactly like a fresh estimator would.
	fresh := conn.NewMonteCarlo(g, seed)
	sameFloats(t, "forked coordinator", coord.Fork().FromCenter(0, conn.Unlimited, 100), fresh.FromCenter(0, conn.Unlimited, 100))
	// The parent itself answers at its cached precision (the documented
	// higher-precision contract).
	warm := conn.NewMonteCarlo(g, seed)
	warm.FromCenter(0, conn.Unlimited, 800)
	sameFloats(t, "warm coordinator", coord.FromCenter(0, conn.Unlimited, 100), warm.FromCenter(0, conn.Unlimited, 100))
}

// TestWorkerValidation: malformed tally requests report 400/404, not
// garbage tallies.
func TestWorkerValidation(t *testing.T) {
	g := testGraph(t, 16, 1)
	w, err := NewWorker([]WorkerGraph{{Name: "tg", Graph: g, Seed: 1}}, WorkerOptions{MaxWorlds: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w)
	t.Cleanup(ts.Close)
	wc := newWorkerClient(ts.URL, &http.Client{})

	cases := []TallyRequest{
		{Graph: "nope", Kind: KindConnected, Ranges: []Range{{0, 10}}, Centers: []int32{0}},
		{Graph: "tg", Kind: "bogus", Ranges: []Range{{0, 10}}},
		{Graph: "tg", Kind: KindConnected, Ranges: nil, Centers: []int32{0}},
		{Graph: "tg", Kind: KindConnected, Ranges: []Range{{5, 5}}, Centers: []int32{0}},
		{Graph: "tg", Kind: KindConnected, Ranges: []Range{{0, 2000}}, Centers: []int32{0}},
		{Graph: "tg", Kind: KindConnected, Ranges: []Range{{0, 10}}, Centers: []int32{99}},
		{Graph: "tg", Kind: KindConnected, Ranges: []Range{{20, 30}, {0, 10}}, Centers: []int32{0}},
		{Graph: "tg", Kind: KindPair, Ranges: []Range{{0, 10}}, U: 0, V: 77},
		{Graph: "tg", Kind: KindSpread, Ranges: []Range{{0, 10}}},
		{Graph: "tg", Kind: KindMarginal, Ranges: []Range{{0, 10}}, Candidates: []int32{99}},
	}
	for i, req := range cases {
		var resp TallyResponse
		if err := wc.do(context.Background(), PathTally, &req, &resp); err == nil {
			t.Fatalf("case %d: expected an error", i)
		}
	}
	if c := w.Counters(); c.Failures == 0 || c.Requests != uint64(len(cases)) {
		t.Fatalf("counters: %+v", c)
	}
}

// TestWorkerPing: the ping response carries the identity the coordinator
// verifies.
func TestWorkerPing(t *testing.T) {
	g := testGraph(t, 24, 1)
	w, err := NewWorker([]WorkerGraph{{Name: "tg", Graph: g, Seed: 5}}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w)
	t.Cleanup(ts.Close)
	wc := newWorkerClient(ts.URL, &http.Client{})
	var resp PingResponse
	if err := wc.do(context.Background(), PathPing, nil, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Graphs) != 1 || resp.Graphs[0].Name != "tg" ||
		resp.Graphs[0].Nodes != g.NumNodes() || resp.Graphs[0].Seed != 5 ||
		resp.Graphs[0].BlockWorlds <= 0 {
		t.Fatalf("ping: %+v", resp)
	}
	// A coordinator over a DIFFERENT seed must refuse the worker.
	bad := NewCoordinator("tg", g, 6, []string{ts.URL}, CoordinatorOptions{})
	if err := bad.Ping(context.Background()); err == nil {
		t.Fatal("expected a seed-mismatch ping error")
	}
}
