package shard

import (
	"bufio"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the v2 stream transport on both sides of the wire:
// a coordinator-side client that multiplexes tally requests over one
// long-lived connection per worker, and the worker-side connection loop.
// The stream is established by upgrading POST /shard/v2/stream (an HTTP/1.1
// 101 switch, so it routes through the same mux, port and load balancers
// as the JSON endpoints) and then carries nothing but the length-prefixed
// binary frames of wire.go in both directions. See docs/SHARD_PROTOCOL.md.

// streamDialTimeout bounds the TCP + upgrade handshake of one dial.
const streamDialTimeout = 10 * time.Second

// errStreamClosed reports a request abandoned because its underlying
// stream died (worker restart, network cut). It is retriable: the next
// attempt re-dials.
var errStreamClosed = errors.New("shard: stream closed")

// errIntegrity reports a frame rejected by its CRC32-C check: bits
// changed between the worker's encoder and our decoder. The payload is
// never decoded, never merged — the attempt fails and the range is
// re-scattered.
var errIntegrity = errors.New("shard: frame failed integrity check")

// checksumHeader is the negotiation header of the stream upgrade: the
// worker advertises it on the 101 response, and a coordinator that sees
// the expected algorithm seals its REQ frames (the worker then mirrors
// the seal on each response). Old peers simply never set the flag.
const checksumHeader = "X-Ucgraph-Checksum"

// traceHeader is the trace-negotiation header of the stream upgrade,
// advertised exactly like checksumHeader: a coordinator that sees it may
// set flagTrace on REQ frames of traced queries, and the worker mirrors
// the flag (with its annotation section) on each such response. Old
// peers on either side simply never set the flag — mixed fleets
// interoperate, untraced.
const traceHeader = "X-Ucgraph-Trace"

// streamResult is the outcome of one multiplexed request.
type streamResult struct {
	resp   *TallyResponse
	kind   string
	cached bool
	annot  *workerAnnot // non-nil only on flagTrace responses
	err    error
}

// streamConn is one live upgraded connection with its demultiplexer.
type streamConn struct {
	nc net.Conn
	bw *bufio.Writer

	// sum records the checksum negotiation outcome of this connection's
	// handshake: when set, outgoing frames are sealed with a CRC32-C
	// trailer and incoming checksummed frames are verified.
	sum bool
	// trace records the trace negotiation outcome: when set, REQ frames
	// of traced queries carry a trace ref and flagTrace.
	trace bool

	wmu sync.Mutex // serializes frame writes

	pmu     sync.Mutex
	pending map[uint64]chan streamResult
	closed  bool
	err     error
}

// streamClient manages the (re)dialed stream of one worker. Safe for
// concurrent use; concurrent requests share one connection.
type streamClient struct {
	scheme string // "http" or "https"
	host   string // host:port

	nextID atomic.Uint64

	mu   sync.Mutex
	conn *streamConn
}

// newStreamClient prepares a client for the worker at base (a normalized
// URL, as produced by newWorkerClient).
func newStreamClient(base string) (*streamClient, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("shard: worker address %q: %w", base, err)
	}
	host := u.Host
	if u.Port() == "" {
		switch u.Scheme {
		case "https":
			host = net.JoinHostPort(u.Hostname(), "443")
		default:
			host = net.JoinHostPort(u.Hostname(), "80")
		}
	}
	return &streamClient{scheme: u.Scheme, host: host}, nil
}

// get returns the live connection, dialing if needed.
func (sc *streamClient) get(ctx context.Context) (*streamConn, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.conn != nil && !sc.conn.dead() {
		return sc.conn, nil
	}
	conn, err := sc.dial(ctx)
	if err != nil {
		return nil, err
	}
	sc.conn = conn
	return conn, nil
}

// dial opens a TCP (or TLS) connection and performs the upgrade handshake.
func (sc *streamClient) dial(ctx context.Context) (*streamConn, error) {
	dctx, cancel := context.WithTimeout(ctx, streamDialTimeout)
	defer cancel()
	var (
		nc  net.Conn
		err error
	)
	d := &net.Dialer{}
	if sc.scheme == "https" {
		td := &tls.Dialer{NetDialer: d}
		nc, err = td.DialContext(dctx, "tcp", sc.host)
	} else {
		nc, err = d.DialContext(dctx, "tcp", sc.host)
	}
	if err != nil {
		return nil, err
	}
	deadline, _ := dctx.Deadline()
	_ = nc.SetDeadline(deadline) // handshake only; cleared below

	fmt.Fprintf(nc, "POST %s HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n",
		PathStream, sc.host, StreamProtocol)
	br := bufio.NewReader(nc)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodPost})
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("shard: stream handshake: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		nc.Close()
		return nil, fmt.Errorf("shard: stream upgrade refused: %s %s", resp.Status, body)
	}
	_ = nc.SetDeadline(time.Time{})

	conn := &streamConn{
		nc:      nc,
		bw:      bufio.NewWriter(nc),
		sum:     resp.Header.Get(checksumHeader) == ChecksumAlgorithm,
		trace:   resp.Header.Get(traceHeader) == TraceVersion,
		pending: make(map[uint64]chan streamResult),
	}
	// The demultiplexer: one goroutine per connection reads frames and
	// routes them to their waiting request by id. Any read error fails
	// every pending request (they retry on a fresh connection) and
	// retires the connection.
	go func() {
		// br may hold bytes buffered past the 101 response; keep using it.
		for {
			h, body, err := readFrame(br)
			if err != nil {
				conn.fail(fmt.Errorf("%w: %v", errStreamClosed, err))
				return
			}
			if body, err = verifyBody(h, body); err != nil {
				// A corrupt body fails only its own request: the frame
				// header delimited the stream correctly, so later frames
				// are still in sync. The waiter's attempt errors and the
				// coordinator re-scatters the range — the payload is
				// never decoded, let alone merged.
				conn.deliver(h.id, streamResult{err: fmt.Errorf("%w: %v", errIntegrity, err)})
				continue
			}
			var res streamResult
			switch h.ftype {
			case frameResp:
				// The worker-annotation section (if negotiated and the
				// request was traced) sits between the canonical body and
				// the checksum trailer; verifyBody already stripped the
				// trailer, so strip the annotation next, then decode the
				// canonical bytes.
				body, annot, aerr := splitWorkerAnnot(h, body)
				if aerr != nil {
					res = streamResult{err: aerr}
					break
				}
				kind, resp, err := decodeResponseBody(body)
				res = streamResult{resp: resp, kind: kind, cached: h.flags&flagCached != 0, annot: annot, err: err}
			case frameErr:
				code, msg, err := decodeErrorBody(body)
				if err != nil {
					res = streamResult{err: err}
				} else if code == errCodeIntegrity {
					res = streamResult{err: fmt.Errorf("%w: worker rejected request: %s", errIntegrity, msg)}
				} else {
					res = streamResult{err: fmt.Errorf("shard: worker error %d: %s", code, msg)}
				}
			default:
				// Unknown frame types are ignored for forward compat (a
				// future worker may push frames an old coordinator does
				// not know); they carry an id no one waits on.
				continue
			}
			conn.deliver(h.id, res)
		}
	}()
	return conn, nil
}

func (c *streamConn) dead() bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.closed
}

// fail closes the connection and errors out every pending request.
func (c *streamConn) fail(err error) {
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	pending := c.pending
	c.pending = nil
	c.pmu.Unlock()
	c.nc.Close()
	for _, ch := range pending {
		ch <- streamResult{err: err}
	}
}

// deliver routes one decoded result to its waiter, if still registered.
func (c *streamConn) deliver(id uint64, res streamResult) {
	c.pmu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.pmu.Unlock()
	if ok {
		ch <- res
	}
}

// register adds a waiter for id; the returned channel has capacity 1 so
// deliver never blocks.
func (c *streamConn) register(id uint64) (chan streamResult, error) {
	ch := make(chan streamResult, 1)
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.closed {
		return nil, c.err
	}
	c.pending[id] = ch
	return ch, nil
}

// deregister abandons a waiter (cancellation); reports whether it was
// still registered.
func (c *streamConn) deregister(id uint64) bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if _, ok := c.pending[id]; ok {
		delete(c.pending, id)
		return true
	}
	return false
}

// writeFrame writes one encoded frame, serialized against concurrent
// writers, and flushes it.
func (c *streamConn) writeFrame(frame []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	return c.bw.Flush()
}

// call performs one multiplexed tally request: encode, write one frame,
// wait for the matching response frame. ref, when non-nil and the worker
// negotiated tracing, rides as a flagTrace trailer on the REQ; the
// matching response then carries the worker's annotation (returned
// alongside the tallies, nil for untraced or old-peer responses). On ctx
// expiry it sends a best-effort CANCEL so the worker can stop computing,
// and returns ctx's error. Transport failures surface as
// errStreamClosed-wrapped errors; the next call re-dials.
func (sc *streamClient) call(ctx context.Context, req *TallyRequest, ref *traceRef) (*TallyResponse, bool, *workerAnnot, error) {
	conn, err := sc.get(ctx)
	if err != nil {
		return nil, false, nil, err
	}
	id := sc.nextID.Add(1)
	frame, err := encodeRequestFrame(id, req)
	if err != nil {
		return nil, false, nil, err
	}
	if ref != nil && conn.trace {
		// The trace ref is appended AFTER the canonical request bytes
		// (which double as worker cache keys and must stay byte-identical
		// for traced and untraced queries) and BEFORE the checksum
		// trailer (sealFrame runs last, so the CRC covers it).
		frame = appendTraceRef(frame, *ref)
		frame = setFlag(frame, flagTrace)
	}
	frame = sealFrame(frame, conn.sum)
	ch, err := conn.register(id)
	if err != nil {
		return nil, false, nil, err
	}
	if err := conn.writeFrame(frame); err != nil {
		conn.fail(fmt.Errorf("%w: %v", errStreamClosed, err))
		<-ch // fail delivered an error (or deliver raced; either way drain)
		return nil, false, nil, err
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, false, nil, res.err
		}
		if res.kind != req.Kind {
			return nil, false, nil, fmt.Errorf("shard: response kind %q for a %q request", res.kind, req.Kind)
		}
		return res.resp, res.cached, res.annot, nil
	case <-ctx.Done():
		if conn.deregister(id) {
			// Best effort: tell the worker to stop computing. A write
			// failure just means the stream is already dead.
			_ = conn.writeFrame(encodeCancelFrame(id))
		}
		return nil, false, nil, ctx.Err()
	}
}

// close tears down the current connection, if any.
func (sc *streamClient) close() {
	sc.mu.Lock()
	conn := sc.conn
	sc.conn = nil
	sc.mu.Unlock()
	if conn != nil {
		conn.fail(errStreamClosed)
	}
}

// ---- worker side ---------------------------------------------------------

// handleStream upgrades POST /shard/v2/stream and serves the binary frame
// protocol until the peer disconnects. Requests on one stream are served
// concurrently (the coordinator multiplexes a whole scatter round onto the
// stream); response frames are serialized by the write mutex. A CANCEL
// frame aborts the named request's context; a closed connection aborts
// them all.
func (w *Worker) handleStream(rw http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Upgrade") != StreamProtocol {
		w.fail(rw, http.StatusBadRequest, fmt.Sprintf("stream endpoint requires Upgrade: %s", StreamProtocol))
		return
	}
	if w.draining.Load() {
		w.fail(rw, http.StatusServiceUnavailable, "worker draining")
		return
	}
	hj, ok := rw.(http.Hijacker)
	if !ok {
		w.fail(rw, http.StatusInternalServerError, "server does not support connection upgrades")
		return
	}
	nc, buf, err := hj.Hijack()
	if err != nil {
		w.fail(rw, http.StatusInternalServerError, "hijack: "+err.Error())
		return
	}
	defer nc.Close()
	_ = nc.SetDeadline(time.Time{}) // the hijacked conn may carry server deadlines
	fmt.Fprintf(buf, "HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\nUpgrade: %s\r\n%s: %s\r\n%s: %s\r\n\r\n",
		StreamProtocol, checksumHeader, ChecksumAlgorithm, traceHeader, TraceVersion)
	if err := buf.Flush(); err != nil {
		return
	}

	conn := &streamConn{nc: nc, bw: buf.Writer}
	// Register the hijacked stream so Drain can find and close it after
	// in-flight requests complete — http.Server.Shutdown never sees
	// hijacked connections.
	w.trackStream(conn)
	defer w.untrackStream(conn)
	// Per-connection context: closing the stream cancels every in-flight
	// request spawned from it.
	ctx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()
	var (
		cmu     sync.Mutex
		cancels = make(map[uint64]context.CancelFunc)
		wg      sync.WaitGroup
	)
	defer wg.Wait()
	for {
		h, body, err := readFrame(buf.Reader)
		if err != nil {
			return // peer gone (or garbage); per-request contexts die via cancelAll
		}
		switch h.ftype {
		case frameReq:
			// sum: mirror the request's checksum choice on every frame we
			// send back for it — per-request, so one stream can serve
			// peers rolled out before and after the negotiation change.
			sum := h.flags&flagChecksum != 0
			body, verr := verifyBody(h, body)
			if verr != nil {
				w.integrityRejects.Add(1)
				_ = conn.writeFrame(sealFrame(encodeErrorFrame(h.id, errCodeIntegrity, verr.Error()), sum))
				continue
			}
			// traced/ref: mirror the request's trace choice like the
			// checksum choice — per-request, negotiated per-connection.
			// The trace ref trailer must come off before decode (the
			// decoder enforces exact consumption of the canonical bytes).
			body, ref, terr := splitTraceRef(h, body)
			if terr != nil {
				_ = conn.writeFrame(sealFrame(encodeErrorFrame(h.id, errCodeBadRequest, terr.Error()), sum))
				continue
			}
			traced := h.flags&flagTrace != 0
			req, err := decodeRequestBody(body)
			if err != nil {
				_ = conn.writeFrame(sealFrame(encodeErrorFrame(h.id, errCodeBadRequest, err.Error()), sum))
				continue
			}
			// Track in-flight work BEFORE the drain check: once counted, a
			// request is guaranteed to finish (and flush its response)
			// before Drain severs the stream.
			w.inflight.Add(1)
			if w.draining.Load() {
				w.inflight.Add(-1)
				_ = conn.writeFrame(sealFrame(encodeErrorFrame(h.id, errCodeInternal, "worker draining"), sum))
				continue
			}
			rctx, cancel := context.WithCancel(ctx)
			cmu.Lock()
			cancels[h.id] = cancel
			cmu.Unlock()
			wg.Add(1)
			go func(id uint64, req *TallyRequest, sum, traced bool, ref traceRef) {
				defer wg.Done()
				defer w.inflight.Add(-1)
				defer func() {
					cmu.Lock()
					delete(cancels, id)
					cmu.Unlock()
					cancel()
				}()
				start := time.Now()
				resp, cached, annot, err := w.serveTallyAnnot(rctx, req, traced)
				w.noteSlowTally(req, ref, time.Since(start), err)
				var frame []byte
				if err != nil {
					frame = encodeErrorFrame(id, errCode(err), err.Error())
				} else {
					frame = encodeResponseFrame(id, req.Kind, cached, resp)
					if traced {
						// Annotation after the canonical body, before the
						// seal — the mirror of the REQ layout.
						frame = appendWorkerAnnot(frame, annot)
						frame = setFlag(frame, flagTrace)
					}
				}
				if err := conn.writeFrame(sealFrame(frame, sum)); err != nil {
					cancelAll() // writer broken: stop everything on this stream
				}
			}(h.id, req, sum, traced, ref)
		case frameCancel:
			cmu.Lock()
			if cancel, ok := cancels[h.id]; ok {
				cancel()
			}
			cmu.Unlock()
		default:
			// Ignore unknown frame types for forward compatibility.
		}
	}
}

// errCode maps a serveTally error onto its wire error code.
func errCode(err error) uint16 {
	var bad *badRequestError
	switch {
	case errors.As(err, &bad):
		return errCodeBadRequest
	case errors.Is(err, errUnknownGraph):
		return errCodeUnknownGraph
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return errCodeCanceled
	default:
		return errCodeInternal
	}
}
