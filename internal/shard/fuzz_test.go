package shard

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedRequests covers every kind plus the optional-field corners, so
// the checked-in corpus exercises each decoder branch from the start.
func fuzzSeedRequests() []*TallyRequest {
	return []*TallyRequest{
		{Graph: "g", Kind: KindConnected, Centers: []int32{0, 3, 9}, Ranges: []Range{{Lo: 0, Hi: 64}}},
		{Graph: "g", Kind: KindWithin, Depth: 2, Centers: []int32{1}, Ranges: []Range{{Lo: 64, Hi: 128}, {Lo: 256, Hi: 320}}},
		{Graph: "ring", Kind: KindPair, U: 4, V: 17, Ranges: []Range{{Lo: 0, Hi: 100}}},
		{Graph: "g", Kind: KindDistances, Source: 7, Ranges: []Range{{Lo: 0, Hi: 32}}},
		{Graph: "g", Kind: KindSpread, Seeds: []int32{2, 5}, Ranges: []Range{{Lo: 0, Hi: 16}}},
		{Graph: "g", Kind: KindMarginal, Seeds: []int32{2}, Candidates: []int32{3, 4}, Ranges: []Range{{Lo: 0, Hi: 16}}},
		{Graph: "g", Kind: KindMarginal, Seeds: []int32{2}, Ranges: []Range{{Lo: 0, Hi: 16}}},
		{Graph: "g", Kind: KindReliability, Seeds: []int32{0, 1, 2}, Ranges: []Range{{Lo: 0, Hi: 8}}},
		{Graph: "g", Kind: KindReliability, Ranges: []Range{{Lo: 0, Hi: 8}}},
		{Graph: "g", Kind: KindComponents, Ranges: []Range{{Lo: 0, Hi: 8}}},
		{Graph: "g", Kind: KindLargest, Ranges: []Range{{Lo: 8, Hi: 24}}},
	}
}

// FuzzWireRequest checks the request codec round-trip: any body the
// decoder accepts must re-encode to a body that decodes to the same
// request. (Byte-equality of the re-encoding is NOT required — the decoder
// tolerates nonzero reserved bytes, which the canonical encoder zeroes.)
func FuzzWireRequest(f *testing.F) {
	for _, req := range fuzzSeedRequests() {
		body, err := encodeRequestBody(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := decodeRequestBody(b)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		re, err := encodeRequestBody(nil, req)
		if err != nil {
			t.Fatalf("decoded request failed to re-encode: %v", err)
		}
		req2, err := decodeRequestBody(re)
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatalf("round-trip mismatch:\n  first:  %+v\n  second: %+v", req, req2)
		}
	})
}

// FuzzWireFrame feeds arbitrary bytes through the frame reader and the
// per-type body decoders: no input may panic or over-allocate, and any
// accepted response body must survive a re-encode round-trip.
func FuzzWireFrame(f *testing.F) {
	for _, req := range fuzzSeedRequests() {
		frame, err := encodeRequestFrame(7, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add(encodeResponseFrame(3, KindConnected, true, &TallyResponse{
		Worlds: 64, Counts: [][]int32{{1, 2, 3}, {4, 5, 6}},
	}))
	f.Add(encodeResponseFrame(4, KindPair, false, &TallyResponse{Worlds: 10, Count: 9}))
	f.Add(encodeResponseFrame(5, KindSpread, false, &TallyResponse{Worlds: 8, Totals: []int64{40}}))
	f.Add(encodeResponseFrame(6, KindDistances, false, &TallyResponse{
		Worlds:      4,
		Hist:        [][]DistCount{{{D: 1, N: 3}, {D: 2, N: 1}}},
		Unreachable: []int64{0},
	}))
	f.Add(encodeErrorFrame(9, errCodeUnknownGraph, "no such graph"))
	f.Add(encodeCancelFrame(11))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, body, err := readFrame(bytes.NewReader(b))
		if err != nil {
			return
		}
		switch h.ftype {
		case frameReq:
			if _, err := decodeRequestBody(body); err != nil {
				return
			}
		case frameResp:
			kind, resp, err := decodeResponseBody(body)
			if err != nil {
				return
			}
			re := encodeResponseFrame(h.id, kind, h.flags&flagCached != 0, resp)
			h2, body2, err := readFrame(bytes.NewReader(re))
			if err != nil {
				t.Fatalf("re-encoded response frame unreadable: %v", err)
			}
			kind2, resp2, err := decodeResponseBody(body2)
			if err != nil {
				t.Fatalf("re-encoded response body undecodable: %v", err)
			}
			if kind2 != kind || h2.id != h.id {
				t.Fatalf("round-trip changed identity: kind %q->%q id %d->%d", kind, kind2, h.id, h2.id)
			}
			if !reflect.DeepEqual(resp, resp2) {
				t.Fatalf("response round-trip mismatch:\n  first:  %+v\n  second: %+v", resp, resp2)
			}
		case frameErr:
			decodeErrorBody(body)
		}
	})
}
