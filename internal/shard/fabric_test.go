package shard

import (
	"bufio"
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"testing"
	"time"

	"ucgraph/internal/conn"
	"ucgraph/internal/faultinject"
	"ucgraph/internal/graph"
	"ucgraph/internal/metrics"
	"ucgraph/internal/worldstore"
)

// newChaosProxy puts a faultinject.Proxy between the coordinator and one
// worker: the v2 transport is a persistent byte stream, so faults are
// injected at the connection layer — the layer real worker deaths and
// stragglers live at — instead of wrapping HTTP handlers.
func newChaosProxy(t testing.TB, backend string) *faultinject.Proxy {
	t.Helper()
	p, err := faultinject.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// ---- hedging -------------------------------------------------------------

// TestHedgedDuplicateNotAFailure is the regression test for the /statsz
// double-count bug: a hedged answer that loses the race is a suppressed
// duplicate — it must increment the Duplicates counters, never Failures.
func TestHedgedDuplicateNotAFailure(t *testing.T) {
	g := testGraph(t, 32, 2)
	const seed = 9
	coord := NewCoordinator("tg", g, seed, startWorkers(t, "tg", g, seed, 1), CoordinatorOptions{})

	grp := &scatterGroup{worlds: 64}
	grp.won.Store(true) // the hedged twin already answered
	m := coord.fleet.member(0)
	res := coord.attemptWorker(context.Background(), grp, m, &TallyRequest{
		Graph: "tg", Kind: KindPair, Ranges: []Range{{Lo: 0, Hi: 64}}, U: 0, V: 1,
	}, true)
	if !errors.Is(res.err, errDuplicate) {
		t.Fatalf("result = %+v, want errDuplicate", res)
	}
	st := coord.WorkerStats()[0]
	if st.Failures != 0 {
		t.Fatalf("hedged duplicate counted as %d worker failure(s)", st.Failures)
	}
	if st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", st.Duplicates)
	}
	if fs := coord.FabricStats(); fs.Duplicates != 1 {
		t.Fatalf("fabric Duplicates = %d, want 1", fs.Duplicates)
	}
}

// TestCoordinatorHedgedRoundsBitIdentical makes one worker a straggler:
// hedges fire, the fast worker wins every race, the estimates stay
// bit-identical, and no failure is recorded for the slow-but-healthy
// worker.
func TestCoordinatorHedgedRoundsBitIdentical(t *testing.T) {
	g := testGraph(t, 64, 15)
	const seed = 21
	workers := startWorkers(t, "tg", g, seed, 2)
	proxy := newChaosProxy(t, workers[0])
	proxy.SetDelay(300 * time.Millisecond)

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{proxy.URL(), workers[1]}, CoordinatorOptions{
		HedgeDelay:     25 * time.Millisecond,
		RequestTimeout: 10 * time.Second,
	})

	centers := []graph.NodeID{1, 9, 33}
	want := local.FromCenters(centers, conn.Unlimited, 700)
	got, err := coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, 700)
	if err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	for i := range want {
		sameFloats(t, "hedged query", got[i], want[i])
	}
	if fs := coord.FabricStats(); fs.Hedges == 0 {
		t.Fatal("expected hedges against the straggler")
	}
	var failures uint64
	for _, st := range coord.WorkerStats() {
		failures += st.Failures
	}
	if failures != 0 {
		t.Fatalf("straggler mitigation recorded %d failures; hedged losers must not count", failures)
	}
}

// ---- elastic membership --------------------------------------------------

// TestMembershipJoinAndLeave drives a progressive query schedule through
// membership changes: a worker joins between extensions (serving only
// fresh blocks), another leaves (its blocks re-stripe), and every estimate
// stays bit-identical to local — each world merged exactly once.
func TestMembershipJoinAndLeave(t *testing.T) {
	g := testGraph(t, 72, 19)
	const seed = 5
	workers := startWorkers(t, "tg", g, seed, 3)
	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, workers[:2], CoordinatorOptions{})

	centers := []graph.NodeID{3, 40, 68}
	got := coord.FromCenters(centers, conn.Unlimited, 300)
	want := local.FromCenters(centers, conn.Unlimited, 300)
	for i := range want {
		sameFloats(t, "before join", got[i], want[i])
	}

	// Join: the third worker picks up only unowned (new) blocks.
	coord.AddWorker(workers[2])
	if len(coord.Workers()) != 3 {
		t.Fatalf("workers = %v", coord.Workers())
	}
	got = coord.FromCenters(centers, conn.Unlimited, 1200)
	want = local.FromCenters(centers, conn.Unlimited, 1200)
	for i := range want {
		sameFloats(t, "after join", got[i], want[i])
	}
	var joinedServed uint64
	for _, st := range coord.WorkerStats() {
		if st.Addr == workers[2] {
			joinedServed = st.WorldsServed
		}
	}
	if joinedServed == 0 {
		t.Fatal("joined worker served nothing")
	}

	// Leave: the first worker's blocks re-stripe onto the survivors.
	if !coord.RemoveWorker(workers[0]) {
		t.Fatal("remove failed")
	}
	if len(coord.Workers()) != 2 {
		t.Fatalf("workers after remove = %v", coord.Workers())
	}
	got = coord.FromCenters(centers, conn.Unlimited, 2000)
	want = local.FromCenters(centers, conn.Unlimited, 2000)
	for i := range want {
		sameFloats(t, "after leave", got[i], want[i])
	}
	// Re-adding revives the same slot.
	coord.AddWorker(workers[0])
	got = coord.FromCenters(centers, 2, 500)
	want = local.FromCenters(centers, 2, 500)
	for i := range want {
		sameFloats(t, "after rejoin", got[i], want[i])
	}
}

// TestMembershipLeaveMidQuery removes a (slow) worker while a query is in
// flight: its in-flight groups fail over to the survivor via the retry
// rounds and the result is still bit-identical.
func TestMembershipLeaveMidQuery(t *testing.T) {
	g := testGraph(t, 64, 23)
	const seed = 31
	workers := startWorkers(t, "tg", g, seed, 2)
	proxy := newChaosProxy(t, workers[0])
	proxy.SetDelay(150 * time.Millisecond)

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{proxy.URL(), workers[1]}, CoordinatorOptions{
		Retries:        3,
		RequestTimeout: 10 * time.Second,
	})
	centers := []graph.NodeID{7, 50}
	want := local.FromCenters(centers, conn.Unlimited, 900)

	done := make(chan error, 1)
	var got [][]float64
	go func() {
		var err error
		got, err = coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, 900)
		done <- err
	}()
	time.Sleep(40 * time.Millisecond) // let the scatter take flight
	coord.RemoveWorker(proxy.URL())   // the slow worker leaves mid-query
	proxy.SetDown(true)               // and its process dies
	if err := <-done; err != nil {
		t.Fatalf("query with mid-flight leave: %v", err)
	}
	for i := range want {
		sameFloats(t, "mid-query leave", got[i], want[i])
	}
}

// TestMembershipFlappyPings flaps a worker through down/up ping cycles:
// queries keep answering bit-identically throughout (served by whoever is
// live), and the membership state tracks the flaps.
func TestMembershipFlappyPings(t *testing.T) {
	g := testGraph(t, 48, 27)
	const seed = 13
	workers := startWorkers(t, "tg", g, seed, 2)
	proxy := newChaosProxy(t, workers[0])

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{proxy.URL(), workers[1]}, CoordinatorOptions{
		Retries:        2,
		RequestTimeout: 5 * time.Second,
	})
	centers := []graph.NodeID{0, 25}
	stateOf := func(addr string) string {
		for _, st := range coord.WorkerStats() {
			if st.Addr == addr {
				return st.State
			}
		}
		return "?"
	}

	r := 0
	for flap := 0; flap < 3; flap++ {
		// Down: the refresher marks the worker down; scatters avoid it.
		proxy.SetDown(true)
		if err := coord.RefreshMembership(context.Background()); err == nil {
			t.Fatal("expected a refresh error while down")
		}
		if got := stateOf(proxy.URL()); got != "down" {
			t.Fatalf("flap %d: state = %q, want down", flap, got)
		}
		r += 300
		got, err := coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, r)
		if err != nil {
			t.Fatalf("flap %d (down): %v", flap, err)
		}
		want := local.FromCenters(centers, conn.Unlimited, r)
		for i := range want {
			sameFloats(t, "flap down", got[i], want[i])
		}

		// Up: the refresher revives it; it serves fresh blocks again.
		proxy.SetDown(false)
		if err := coord.RefreshMembership(context.Background()); err != nil {
			t.Fatalf("flap %d: refresh after revive: %v", flap, err)
		}
		if got := stateOf(proxy.URL()); got != "up" {
			t.Fatalf("flap %d: state = %q, want up", flap, got)
		}
		r += 300
		got, err = coord.FromCentersCtx(context.Background(), centers, conn.Unlimited, r)
		if err != nil {
			t.Fatalf("flap %d (up): %v", flap, err)
		}
		want = local.FromCenters(centers, conn.Unlimited, r)
		for i := range want {
			sameFloats(t, "flap up", got[i], want[i])
		}
	}
}

// TestStreamReconnects severs the persistent stream between queries: the
// next call re-dials transparently (at worst spending a retry round).
func TestStreamReconnects(t *testing.T) {
	g := testGraph(t, 40, 3)
	const seed = 17
	workers := startWorkers(t, "tg", g, seed, 1)
	proxy := newChaosProxy(t, workers[0])
	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{proxy.URL()}, CoordinatorOptions{
		Retries:        3,
		RequestTimeout: 5 * time.Second,
	})

	sameFloats(t, "before cut",
		coord.FromCenter(1, conn.Unlimited, 300),
		local.FromCenter(1, conn.Unlimited, 300))
	proxy.KillConns() // sever the stream, worker itself stays healthy
	sameFloats(t, "after cut",
		coord.FromCenter(2, conn.Unlimited, 300),
		local.FromCenter(2, conn.Unlimited, 300))
}

// ---- worker tally cache --------------------------------------------------

// TestWorkerTallyCache: repeated identical per-range tallies are served
// from the worker cache — same bytes, no worlds rescanned.
func TestWorkerTallyCache(t *testing.T) {
	g := testGraph(t, 32, 8)
	w, err := NewWorker([]WorkerGraph{{Name: "tg", Graph: g, Seed: 2}}, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	req := &TallyRequest{Graph: "tg", Kind: KindConnected, Centers: []int32{1, 5}, Ranges: []Range{{Lo: 0, Hi: 200}}}
	first, cached, err := w.serveTally(context.Background(), req)
	if err != nil || cached {
		t.Fatalf("first: cached=%v err=%v", cached, err)
	}
	worlds := w.Counters().Worlds
	second, cached, err := w.serveTally(context.Background(), req)
	if err != nil || !cached {
		t.Fatalf("second: cached=%v err=%v", cached, err)
	}
	if w.Counters().Worlds != worlds {
		t.Fatal("cache hit rescanned worlds")
	}
	if c := w.Counters(); c.CacheHits == 0 || c.CacheMiss == 0 {
		t.Fatalf("counters: %+v", c)
	}
	for j := range first.Counts {
		for u := range first.Counts[j] {
			if first.Counts[j][u] != second.Counts[j][u] {
				t.Fatal("cached tally differs")
			}
		}
	}
	// A partially-overlapping request hits only the warm range.
	req2 := &TallyRequest{Graph: "tg", Kind: KindConnected, Centers: []int32{1, 5}, Ranges: []Range{{Lo: 0, Hi: 200}, {Lo: 200, Hi: 400}}}
	_, cached, err = w.serveTally(context.Background(), req2)
	if err != nil || cached {
		t.Fatalf("extension: cached=%v err=%v (only one range is warm)", cached, err)
	}
}

// TestWorkerTallyCacheDisabled: a negative budget turns the cache off.
func TestWorkerTallyCacheDisabled(t *testing.T) {
	g := testGraph(t, 24, 4)
	w, err := NewWorker([]WorkerGraph{{Name: "tg", Graph: g, Seed: 2}}, WorkerOptions{TallyCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	req := &TallyRequest{Graph: "tg", Kind: KindPair, U: 0, V: 5, Ranges: []Range{{Lo: 0, Hi: 100}}}
	if _, cached, err := w.serveTally(context.Background(), req); err != nil || cached {
		t.Fatalf("cached=%v err=%v", cached, err)
	}
	if _, cached, err := w.serveTally(context.Background(), req); err != nil || cached {
		t.Fatalf("repeat with cache disabled: cached=%v err=%v", cached, err)
	}
	if c := w.Counters(); c.CacheHits != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestWorkerTallyCacheEviction: the FIFO ring respects its byte budget.
func TestWorkerTallyCacheEviction(t *testing.T) {
	g := testGraph(t, 64, 6)
	// Budget fits roughly two single-center responses (64 nodes * 4B +
	// overhead + key), so the third insert evicts the first.
	w, err := NewWorker([]WorkerGraph{{Name: "tg", Graph: g, Seed: 2}}, WorkerOptions{TallyCacheBytes: 1100})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(center int32) *TallyRequest {
		return &TallyRequest{Graph: "tg", Kind: KindConnected, Centers: []int32{center}, Ranges: []Range{{Lo: 0, Hi: 128}}}
	}
	for _, ctr := range []int32{1, 2, 3} {
		if _, _, err := w.serveTally(context.Background(), mk(ctr)); err != nil {
			t.Fatal(err)
		}
	}
	if _, cached, _ := w.serveTally(context.Background(), mk(1)); cached {
		t.Fatal("first entry should have been evicted")
	}
	if w.cache.bytes > 1100 {
		t.Fatalf("cache over budget: %d", w.cache.bytes)
	}
}

// ---- stream-level fault injection ----------------------------------------

// malformedStreamWorker speaks a correct v2 upgrade + framing but answers
// every request with a wrong-shaped (yet world-count-consistent) payload —
// the binary-era version-skew scenario.
func malformedStreamWorker(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				br := bufio.NewReader(nc)
				if req, err := http.ReadRequest(br); err != nil {
					return
				} else if req.URL.Path != PathStream {
					// Pings go to the real JSON endpoint in these tests;
					// this fake only serves streams.
					nc.Write([]byte("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"))
					return
				}
				nc.Write([]byte("HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\nUpgrade: " + StreamProtocol + "\r\n\r\n"))
				for {
					h, body, err := readFrame(br)
					if err != nil {
						return
					}
					if h.ftype != frameReq {
						continue
					}
					req, err := decodeRequestBody(body)
					if err != nil {
						return
					}
					worlds := 0
					for _, rg := range req.Ranges {
						worlds += rg.Worlds()
					}
					// Right world count, wrong payload shape.
					bad := &TallyResponse{Worlds: worlds, Counts: [][]int32{{1, 2, 3}}}
					if _, err := nc.Write(encodeResponseFrame(h.id, req.Kind, false, bad)); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return "http://" + ln.Addr().String()
}

// TestCoordinatorRejectsMalformedStreamResponses: wrong-shaped binary
// tallies are a retriable failure — re-scattered to the healthy worker,
// never merged, never a panic.
func TestCoordinatorRejectsMalformedStreamResponses(t *testing.T) {
	g := testGraph(t, 48, 16)
	const seed = 8
	bad := malformedStreamWorker(t)
	good := startWorkers(t, "tg", g, seed, 1)[0]

	local := conn.NewMonteCarlo(g, seed)
	coord := NewCoordinator("tg", g, seed, []string{bad, good}, CoordinatorOptions{Retries: 3})
	want := local.FromCenters([]graph.NodeID{0, 21}, conn.Unlimited, 900)
	got, err := coord.FromCentersCtx(context.Background(), []graph.NodeID{0, 21}, conn.Unlimited, 900)
	if err != nil {
		t.Fatalf("query with malformed worker: %v", err)
	}
	for i := range want {
		sameFloats(t, "malformed-stream query", got[i], want[i])
	}
	var sawMalformed bool
	for _, st := range coord.WorkerStats() {
		if st.Failures > 0 {
			sawMalformed = true
		}
	}
	if !sawMalformed {
		t.Fatal("malformed responses were not recorded as failures")
	}
}

// ---- reliability scattering ----------------------------------------------

// TestCoordinatorReliabilityBitIdentical: scattered reliability,
// component and largest-component estimates equal the local metrics
// package bit for bit, across worker counts.
func TestCoordinatorReliabilityBitIdentical(t *testing.T) {
	g := testGraph(t, 56, 29)
	const seed = 25
	const r = 700
	ws := worldstore.Shared(g, seed)
	set := []graph.NodeID{2, 19, 44}
	wantSet := metrics.SetReliability(ws, set, r)
	wantAll := metrics.AllTerminalReliability(ws, r)
	wantComp := metrics.ExpectedComponents(ws, r)
	wantFrac := metrics.LargestComponentFraction(ws, r)

	for _, nw := range []int{1, 2, 3} {
		coord := NewCoordinator("tg", g, seed, startWorkers(t, "tg", g, seed, nw), CoordinatorOptions{})
		ctx := context.Background()
		gotSet, err := coord.SetReliabilityCtx(ctx, set, r)
		if err != nil {
			t.Fatal(err)
		}
		gotAll, err := coord.AllTerminalReliabilityCtx(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		gotComp, err := coord.ExpectedComponentsCtx(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		gotFrac, err := coord.LargestComponentFractionCtx(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []struct {
			label     string
			got, want float64
		}{
			{"set reliability", gotSet, wantSet},
			{"all-terminal", gotAll, wantAll},
			{"components", gotComp, wantComp},
			{"largest fraction", gotFrac, wantFrac},
		} {
			if math.Float64bits(c.got) != math.Float64bits(c.want) {
				t.Fatalf("workers=%d: %s = %v, want %v", nw, c.label, c.got, c.want)
			}
		}
		// Singleton sets short-circuit to exactly 1 on both paths.
		one, err := coord.SetReliabilityCtx(ctx, set[:1], r)
		if err != nil || one != 1 {
			t.Fatalf("singleton reliability = %v, %v", one, err)
		}
	}
}
