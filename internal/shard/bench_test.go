package shard

import (
	"context"
	"fmt"
	"testing"

	"ucgraph/internal/conn"
	"ucgraph/internal/graph"
	"ucgraph/internal/obs"
)

// The bench-shard suite records the scatter/gather overhead of the
// coordinator against in-process execution over the same (warm) world
// stream: each iteration answers a fresh 32-center batch (a private tally
// cache, like one clustering run's scoring query), so the measured cost is
// per-query — partition, HTTP round-trips, JSON tallies, merge — not
// amortized cache hits. Workers run in-process over loopback HTTP, so the
// recorded overhead is a floor: real deployments add network latency but
// also real parallel hardware.

func benchCenters(n int) []graph.NodeID {
	cs := make([]graph.NodeID, 32)
	for i := range cs {
		cs[i] = graph.NodeID((i * 7) % n)
	}
	return cs
}

const (
	benchNodes  = 128
	benchSeed   = 21
	benchWorlds = 2048
)

// BenchmarkScatterLocal is the in-process baseline: a fresh estimator
// (private tally cache, shared warm store) per iteration.
func BenchmarkScatterLocal(b *testing.B) {
	g := testGraph(b, benchNodes, 2)
	cs := benchCenters(benchNodes)
	warm := conn.NewMonteCarlo(g, benchSeed)
	warm.FromCenters(cs, conn.Unlimited, benchWorlds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := conn.NewMonteCarlo(g, benchSeed)
		mc.FromCenters(cs, conn.Unlimited, benchWorlds)
	}
}

// BenchmarkScatterWorkers measures the same batch through a coordinator
// over 1, 2 and 4 loopback workers (forked per iteration for a private
// tally cache; worker stores stay warm across iterations).
func BenchmarkScatterWorkers(b *testing.B) {
	g := testGraph(b, benchNodes, 2)
	cs := benchCenters(benchNodes)
	for _, nw := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			coord := NewCoordinator("bg", g, benchSeed, startWorkers(b, "bg", g, benchSeed, nw), CoordinatorOptions{})
			coord.FromCenters(cs, conn.Unlimited, benchWorlds) // warm the worker stores
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				coord.Fork().FromCenters(cs, conn.Unlimited, benchWorlds)
			}
		})
	}
}

// BenchmarkScatterWorkersTraced is the 4-worker scatter with a live
// trace per iteration: span tree on the coordinator, flagTrace ref +
// annotation sections on the wire, worker-side Stats diffing. Compared
// against ScatterWorkers/workers=4 it is the end-to-end cost of
// tracing a query (the acceptance bar is <5% on this warm path).
func BenchmarkScatterWorkersTraced(b *testing.B) {
	g := testGraph(b, benchNodes, 2)
	cs := benchCenters(benchNodes)
	coord := NewCoordinator("bg", g, benchSeed, startWorkers(b, "bg", g, benchSeed, 4), CoordinatorOptions{})
	coord.FromCenters(cs, conn.Unlimited, benchWorlds) // warm the worker stores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace("bench-query")
		ctx := obs.ContextWithSpan(context.Background(), tr.Root())
		if _, err := coord.Fork().FromCentersCtx(ctx, cs, conn.Unlimited, benchWorlds); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}
